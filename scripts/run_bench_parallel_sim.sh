#!/usr/bin/env bash
# Run the partitioned-simulator scaling bench and the figure-sweep
# equivalence check:
#
#   1. parallel_sim_eval — bitwise-determinism gate (MCSS_THREADS 1/2/8
#      must produce identical fingerprints; hard failure anywhere), the
#      thread-count speedup sweep (bar conditional on host cores: 2.0x
#      at >= 8, 1.3x at >= 4, informational below), the LP-count sweep,
#      and the large population point (default 1,000,000 flows;
#      MCSS_PSIM_FLOWS lowers it for constrained hosts).
#   2. A real figure sweep (fig5_loss) run at MCSS_THREADS=1, 2, 8:
#      stdout AND the JSON-lines series must be byte-identical across
#      all three — the end-to-end determinism contract, checked on the
#      exact binaries the paper-reproduction artifacts come from.
#
# The bench JSON lands at <output-json> with run metadata under "_meta".
#
# Usage:
#   scripts/run_bench_parallel_sim.sh [build-dir] [output-json]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_parallel_sim.json}"
bench_bin="$build_dir/bench/parallel_sim_eval"
fig_bin="$build_dir/bench/fig5_loss"

for bin in "$bench_bin" "$fig_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== parallel_sim_eval =="
start=$(date +%s.%N)
"$bench_bin" --out "$work/doc.json"
end=$(date +%s.%N)
elapsed=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')

echo
echo "== fig5_loss at MCSS_THREADS in {1, 2, 8} =="
for t in 1 2 8; do
  echo "  running with MCSS_THREADS=$t ..."
  MCSS_THREADS="$t" MCSS_BENCH_JSONL="$work/fig-$t.jsonl" \
    "$fig_bin" > "$work/fig-$t.txt"
done
for t in 2 8; do
  if ! cmp -s "$work/fig-1.txt" "$work/fig-$t.txt"; then
    echo "FAIL: fig5_loss stdout differs between MCSS_THREADS=1 and $t" >&2
    diff "$work/fig-1.txt" "$work/fig-$t.txt" >&2 || true
    exit 1
  fi
  if ! cmp -s "$work/fig-1.jsonl" "$work/fig-$t.jsonl"; then
    echo "FAIL: fig5_loss JSONL differs between MCSS_THREADS=1 and $t" >&2
    exit 1
  fi
done
echo "  OK: stdout and JSONL bitwise identical across 1/2/8 threads"

python3 - "$out" "$work/doc.json" "$elapsed" <<'PY'
import json, multiprocessing, subprocess, sys

out_path, doc_path, elapsed = sys.argv[1:4]

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

doc = json.load(open(doc_path))
doc["_meta"] = {
    "commit": commit,
    "host_cores": multiprocessing.cpu_count(),
    "elapsed_s": float(elapsed),
    "fig_sweep_bitwise_identical": True,
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)
large = doc["large_point"]
print(f"wrote {out_path}: deterministic={doc['deterministic']}, "
      f"best speedup {doc['best_speedup']:.2f}x on "
      f"{doc['host_cores']} cores, large point {large['flows']} flows "
      f"in {large['wall_s']:.1f}s ({large['events_per_sec']/1e6:.2f}M events/s)")
PY
