#!/usr/bin/env bash
# Verify and record the parallel sweep engine's two guarantees:
#
#   1. Determinism — a figure sweep's stdout AND its JSON-lines series
#      are byte-identical between MCSS_THREADS=1 (the legacy sequential
#      path) and MCSS_THREADS=N.
#   2. Speedup — wall-clock for both runs, recorded (with the host core
#      count) in BENCH_sweeps.json. The >= 3x acceptance bar applies on
#      an 8-core runner; single-core hosts still verify determinism.
#
# Usage:
#   scripts/run_bench_sweeps.sh [build-dir] [output-json] [threads]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_sweeps.json}"
threads="${3:-8}"
bench="fig3_rate_identical"
bench_bin="$build_dir/bench/$bench"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target $bench)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

run_timed() {  # <threads> <stdout-file> <jsonl-file> -> seconds
  local t="$1" outfile="$2" jsonl="$3"
  local start end
  start=$(date +%s.%N)
  MCSS_THREADS="$t" MCSS_BENCH_JSONL="$jsonl" "$bench_bin" >"$outfile"
  end=$(date +%s.%N)
  echo "$end $start" | awk '{printf "%.3f", $1 - $2}'
}

echo "running $bench with MCSS_THREADS=1 ..."
seq_s=$(run_timed 1 "$work/seq.txt" "$work/seq.jsonl")
echo "running $bench with MCSS_THREADS=$threads ..."
par_s=$(run_timed "$threads" "$work/par.txt" "$work/par.jsonl")

if ! cmp -s "$work/seq.txt" "$work/par.txt"; then
  echo "FAIL: stdout differs between MCSS_THREADS=1 and MCSS_THREADS=$threads" >&2
  diff "$work/seq.txt" "$work/par.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$work/seq.jsonl" "$work/par.jsonl"; then
  echo "FAIL: JSONL differs between MCSS_THREADS=1 and MCSS_THREADS=$threads" >&2
  exit 1
fi
echo "OK: stdout and JSONL bitwise identical (1 vs $threads threads)"

rows=$(wc -l <"$work/seq.jsonl")
python3 - "$out" "$bench" "$threads" "$seq_s" "$par_s" "$rows" <<'PY'
import json, multiprocessing, subprocess, sys

out_path, bench, threads, seq_s, par_s, rows = sys.argv[1:7]
seq_s, par_s = float(seq_s), float(par_s)

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

try:
    doc = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

doc[bench] = {
    "commit": commit,
    "host_cores": multiprocessing.cpu_count(),
    "threads": int(threads),
    "sequential_s": seq_s,
    "parallel_s": par_s,
    "speedup": round(seq_s / par_s, 2) if par_s > 0 else None,
    "jsonl_rows": int(rows),
    "bitwise_identical": True,
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)
print(f"wrote {out_path}: seq {seq_s:.3f}s, par {par_s:.3f}s "
      f"({doc[bench]['speedup']}x on {doc[bench]['host_cores']} cores)")
PY
