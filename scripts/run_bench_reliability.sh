#!/usr/bin/env bash
# Run the reliability/privacy tradeoff bench and verify its determinism
# guarantee: stdout AND the BENCH_reliability.json document must be
# byte-identical between MCSS_THREADS=1 (sequential) and MCSS_THREADS=N
# — each mode is an independent seeded simulation, and all printing
# happens on the main thread in mode order.
#
# The bench's own shape gates (ARQ >= 99.9% delivery, exposure risk at
# or above the static plan risk, proactive plan feasible) make it exit
# nonzero on regression, so this script doubles as the CI reliability
# check. The verified JSON lands at <output-json> with run metadata
# merged in under "_meta".
#
# Usage:
#   scripts/run_bench_reliability.sh [build-dir] [output-json] [threads]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_reliability.json}"
threads="${3:-4}"
bench="reliability_eval"
bench_bin="$build_dir/bench/$bench"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target $bench)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

run_timed() {  # <threads> <stdout-file> <json-file> -> seconds
  local t="$1" outfile="$2" json="$3"
  local start end
  start=$(date +%s.%N)
  MCSS_THREADS="$t" "$bench_bin" --out "$json" >"$outfile"
  end=$(date +%s.%N)
  echo "$end $start" | awk '{printf "%.3f", $1 - $2}'
}

# Both runs write the same --out path (the bench echoes it to stdout,
# so distinct paths would trip the stdout comparison).
echo "running $bench with MCSS_THREADS=1 ..."
seq_s=$(run_timed 1 "$work/seq.txt" "$work/doc.json")
mv "$work/doc.json" "$work/seq.json"
echo "running $bench with MCSS_THREADS=$threads ..."
par_s=$(run_timed "$threads" "$work/par.txt" "$work/doc.json")
mv "$work/doc.json" "$work/par.json"

if ! cmp -s "$work/seq.txt" "$work/par.txt"; then
  echo "FAIL: stdout differs between MCSS_THREADS=1 and MCSS_THREADS=$threads" >&2
  diff "$work/seq.txt" "$work/par.txt" >&2 || true
  exit 1
fi
if ! cmp -s "$work/seq.json" "$work/par.json"; then
  echo "FAIL: JSON differs between MCSS_THREADS=1 and MCSS_THREADS=$threads" >&2
  exit 1
fi
echo "OK: stdout and JSON bitwise identical (1 vs $threads threads)"

python3 - "$out" "$work/seq.json" "$threads" "$seq_s" "$par_s" <<'PY'
import json, multiprocessing, subprocess, sys

out_path, doc_path, threads, seq_s, par_s = sys.argv[1:6]
seq_s, par_s = float(seq_s), float(par_s)

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

doc = json.load(open(doc_path))
doc["_meta"] = {
    "commit": commit,
    "host_cores": multiprocessing.cpu_count(),
    "threads": int(threads),
    "sequential_s": seq_s,
    "parallel_s": par_s,
    "bitwise_identical": True,
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)
arq = next(m for m in doc["modes"] if m["mode"] == "arq")
print(f"wrote {out_path}: ARQ delivery {arq['delivery']:.4f}, "
      f"{arq['retransmits']} retransmits, exposure_z {arq['exposure_risk_mean']:.4f} "
      f"vs static_z {arq['static_risk_mean']:.4f}")
PY
