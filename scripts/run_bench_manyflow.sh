#!/usr/bin/env bash
# Run the massive-flow session-layer bench: sweep 1k -> 100k concurrent
# ReMICSS flows with PCS-style churn on one SessionEndpoint over real
# loopback UDP, reporting flows/sec, p99 setup latency, and memory per
# flow. The bench's own gates (>= 10k flows sustained through churn,
# p99 setup <= 5 ms, mem/flow under the per-flow receiver cap at the
# largest point, single-flow ARQ delivery >= 99.9% through the session
# layer) make it exit nonzero on regression, so this script doubles as
# the CI manyflow check. The JSON lands at <output-json> with run
# metadata merged in under "_meta".
#
# The sweep ceiling can be lowered for constrained hosts with
# MCSS_MANYFLOW_MAX (e.g. MCSS_MANYFLOW_MAX=20000).
#
# Usage:
#   scripts/run_bench_manyflow.sh [build-dir] [output-json]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_manyflow.json}"
bench="manyflow_eval"
bench_bin="$build_dir/bench/$bench"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target $bench)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

start=$(date +%s.%N)
"$bench_bin" --out "$work/doc.json"
end=$(date +%s.%N)
elapsed=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')

python3 - "$out" "$work/doc.json" "$elapsed" <<'PY'
import json, multiprocessing, subprocess, sys

out_path, doc_path, elapsed = sys.argv[1:4]

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

doc = json.load(open(doc_path))
doc["_meta"] = {
    "commit": commit,
    "host_cores": multiprocessing.cpu_count(),
    "elapsed_s": float(elapsed),
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)
top = doc["sweep"][-1]
arq = doc["single_flow_arq"]
print(f"wrote {out_path}: {top['sustained_flows']} flows sustained at the "
      f"{top['target_flows']}-flow point, {top['flows_per_sec']:.0f} flows/s, "
      f"p99 setup {top['p99_setup_s']*1e6:.1f} us, "
      f"{top['mem_per_flow_bytes']:.0f} B/flow, "
      f"ARQ delivery {arq['delivered_fraction']:.4f}")
PY
