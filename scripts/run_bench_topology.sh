#!/usr/bin/env bash
# Run the routed-topology correlation bench and package its artifact:
#
#   topology_eval — correlated vs independent z(k, M) on the four named
#   topologies (equal on the disjoint control, strictly worse at the
#   catastrophic tail wherever paths share links), a Monte-Carlo
#   cross-check of the exact enumeration, routed delivery through
#   topo::Network on the sequential backend, and the partitioned-engine
#   determinism gate (router per LP, MCSS_THREADS 1/2/8 must produce
#   bitwise-identical arrival and loss fingerprints). Every gate is a
#   hard failure.
#
# The bench JSON lands at <output-json> with run metadata under "_meta".
# MCSS_TOPO_TRIALS overrides the Monte-Carlo sample count.
#
# Usage:
#   scripts/run_bench_topology.sh [build-dir] [output-json]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_topology.json}"
bench_bin="$build_dir/bench/topology_eval"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== topology_eval =="
start=$(date +%s.%N)
"$bench_bin" --out "$work/doc.json"
end=$(date +%s.%N)
elapsed=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')

python3 - "$out" "$work/doc.json" "$elapsed" <<'PY'
import json, multiprocessing, subprocess, sys

out_path, doc_path, elapsed = sys.argv[1:4]

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

doc = json.load(open(doc_path))
doc["_meta"] = {
    "commit": commit,
    "host_cores": multiprocessing.cpu_count(),
    "elapsed_s": float(elapsed),
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)

m = doc["channels"]
gaps = {t["topology"]: {row["k"]: row["gap"] for row in t["z"]}
        for t in doc["topologies"]}
worst = max((g[m], name) for name, g in gaps.items())
print(f"wrote {out_path}: deterministic={doc['deterministic']}, "
      f"largest k={m} correlation gap {worst[0]:+.4f} ({worst[1]}), "
      f"disjoint control gap {gaps['disjoint'][m]:+.1e}")
PY
