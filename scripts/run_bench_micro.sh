#!/usr/bin/env bash
# Run the substrate micro-benchmarks and refresh BENCH_micro.json — the
# repo's perf trajectory file. Usage:
#
#   scripts/run_bench_micro.sh [build-dir] [output-json]
#
# The script runs the kernel + Shamir benchmarks (the hot path the
# region-arithmetic layer optimizes), reduces google-benchmark's JSON to
# a compact {name: {ns, mb_per_s}} map, and merges it into the output
# file under "current" while preserving the committed "baseline" block
# (the seed scalar-path numbers). See EXPERIMENTS.md ("Microbenchmarks")
# for when to re-record.
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_micro.json}"
bench_bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (cmake --build $build_dir --target bench_micro)" >&2
  exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

"$bench_bin" \
  --benchmark_filter='BM_Gf|BM_RngFill|BM_Shamir(Split|Reconstruct)|BM_XorSplit' \
  --benchmark_format=json >"$raw"

python3 - "$raw" "$out" <<'PY'
import json, subprocess, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
raw = json.load(open(raw_path))

current = {}
for b in raw["benchmarks"]:
    entry = {"ns": round(b["real_time"], 1)}
    if "bytes_per_second" in b:
        entry["mb_per_s"] = round(b["bytes_per_second"] / 1e6, 1)
    if b.get("label"):
        entry["kernel"] = b["label"]
    current[b["name"]] = entry

try:
    doc = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True, check=True).stdout.strip()
except Exception:
    commit = "unknown"

doc.setdefault("baseline", {})
doc["current"] = {
    "commit": commit,
    "context": {k: raw["context"].get(k) for k in
                ("num_cpus", "mhz_per_cpu", "library_build_type")},
    "benchmarks": current,
}
json.dump(doc, open(out_path, "w"), indent=2, sort_keys=True)
print(f"wrote {out_path} ({len(current)} benchmarks, commit {commit})")
PY
