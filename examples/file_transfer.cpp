// file_transfer: move a 4 MB "file" across the Lossy testbed with
// ReMICSS and verify it arrives bit-exact, without retransmissions.
//
// The file is chunked into datagrams, each split into threshold shares.
// At kappa = 2, mu = 4, every chunk tolerates two lost shares AND forces
// an eavesdropper to tap two channels — choose different parameters on
// the command line to feel the tradeoff:
//
//   file_transfer [kappa] [mu]     (defaults: 2 4)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/rate.hpp"
#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "util/rng.hpp"
#include "workload/setups.hpp"

int main(int argc, char** argv) {
  using namespace mcss;

  const double kappa = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double mu = argc > 2 ? std::atof(argv[2]) : 4.0;

  // --- the "file" -------------------------------------------------------
  constexpr std::size_t kFileBytes = 4 << 20;
  constexpr std::size_t kChunk = 1400;
  Rng data_rng(1);
  std::vector<std::uint8_t> file(kFileBytes);
  for (auto& b : file) b = data_rng.byte();

  // --- network: the paper's Lossy testbed --------------------------------
  const auto setup = workload::lossy_setup();
  net::Simulator sim;
  Rng seeder(99);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (const auto& cfg : setup.channels) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
    wires.push_back(storage.back().get());
  }

  // --- endpoints ----------------------------------------------------------
  std::map<std::uint64_t, std::vector<std::uint8_t>> received;
  net::SimTime last_delivery = 0;
  proto::Receiver receiver(sim);
  for (auto* w : wires) receiver.attach(*w);
  receiver.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> chunk) {
    received[id] = std::move(chunk);
    last_delivery = sim.now();
  });

  proto::SenderConfig tx_cfg;
  tx_cfg.max_queue_packets = 64;
  proto::Sender sender(
      sim, wires,
      std::make_unique<proto::DynamicScheduler>(kappa, mu,
                                                setup.num_channels()),
      seeder.fork(), nullptr, tx_cfg);

  // --- drive: offer the next chunk whenever the sender has room ----------
  std::size_t offset = 0;
  std::uint64_t chunks_total = 0;
  std::function<void()> feed = [&] {
    while (offset < file.size() && sender.queued_packets() < 32) {
      const std::size_t len = std::min(kChunk, file.size() - offset);
      std::vector<std::uint8_t> chunk(file.begin() + static_cast<std::ptrdiff_t>(offset),
                                      file.begin() + static_cast<std::ptrdiff_t>(offset + len));
      if (!sender.send(std::move(chunk))) break;
      offset += len;
      ++chunks_total;
    }
    if (offset < file.size()) sim.schedule_in(net::from_micros(200), feed);
  };
  sim.schedule_at(0, feed);
  sim.run();

  // --- verify --------------------------------------------------------------
  std::vector<std::uint8_t> reassembled;
  reassembled.reserve(file.size());
  std::uint64_t missing = 0;
  for (std::uint64_t id = 1; id <= chunks_total; ++id) {
    const auto it = received.find(id);
    if (it == received.end()) {
      ++missing;
      // Best-effort transport: a real application layers FEC or selective
      // retransmission on top. Pad with zeros to keep offsets aligned.
      reassembled.resize(reassembled.size() + kChunk, 0);
    } else {
      reassembled.insert(reassembled.end(), it->second.begin(), it->second.end());
    }
  }

  // sim.now() at quiescence includes trailing reassembly timers; the
  // transfer finished at the last delivery.
  const double seconds = net::to_seconds(last_delivery);
  const auto& st = sender.stats();
  const ChannelSet model = setup.to_model(kChunk);
  std::printf("file transfer over the Lossy testbed\n");
  std::printf("  parameters:       kappa = %.2f, mu = %.2f (achieved %.2f / %.2f)\n",
              kappa, mu, st.achieved_kappa(), st.achieved_mu());
  std::printf("  file size:        %zu bytes in %llu chunks\n", file.size(),
              static_cast<unsigned long long>(chunks_total));
  std::printf("  transfer time:    %.2f s (%.1f Mbps goodput; optimal %.1f Mbps)\n",
              seconds, static_cast<double>(file.size()) * 8 / seconds / 1e6,
              optimal_rate(model, mu) * kChunk * 8 / 1e6);
  std::printf("  shares sent:      %llu (%llu per chunk avg)\n",
              static_cast<unsigned long long>(st.shares_sent),
              static_cast<unsigned long long>(st.shares_sent /
                                              std::max<std::uint64_t>(1, chunks_total)));
  std::printf("  chunks lost:      %llu of %llu (%.4f%%; shares lost on the\n"
              "                    wire were absorbed by the threshold scheme)\n",
              static_cast<unsigned long long>(missing),
              static_cast<unsigned long long>(chunks_total),
              100.0 * static_cast<double>(missing) / static_cast<double>(chunks_total));
  const bool intact = missing == 0 && reassembled == file;
  std::printf("  integrity:        %s\n",
              intact ? "bit-exact" : "incomplete (see chunks lost)");
  return 0;
}
