// Quickstart: the mcss library in ~60 lines.
//
//   1. Split a secret with Shamir threshold sharing and reconstruct it
//      from a subset of shares.
//   2. Describe a channel set and ask the model for its optimal
//      privacy/loss/delay/rate.
//   3. Send a message through the ReMICSS protocol over simulated
//      channels and get it back on the far side.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "obs/export.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "sss/shamir.hpp"

int main() {
  using namespace mcss;

  // --- 1. Threshold secret sharing ------------------------------------
  const std::string message = "three couriers, two betrayals tolerated";
  const std::vector<std::uint8_t> secret(message.begin(), message.end());
  Rng rng(2016);

  // 3-of-5: any 3 shares reconstruct; any 2 reveal nothing.
  const auto shares = sss::split(secret, /*k=*/3, /*m=*/5, rng);
  const std::vector<sss::Share> any_three{shares[4], shares[0], shares[2]};
  const auto recovered = sss::reconstruct(any_three);
  std::printf("reconstructed from 3 of 5 shares: \"%s\"\n",
              std::string(recovered.begin(), recovered.end()).c_str());

  // --- 2. The model -----------------------------------------------------
  // Channels as (risk, loss, delay, rate) quadruples.
  const ChannelSet channels{{0.10, 0.010, 0.0025, 425},
                            {0.25, 0.005, 0.00025, 1700},
                            {0.15, 0.010, 0.0125, 5100},
                            {0.30, 0.020, 0.0050, 5525},
                            {0.20, 0.030, 0.0005, 8500}};
  std::printf("best achievable risk  Z_C = %.6f (adversary needs every channel)\n",
              optimal_risk(channels));
  std::printf("best achievable loss  L_C = %.2e (symbol survives if any share does)\n",
              optimal_loss(channels));
  std::printf("best achievable delay D_C = %.3f ms\n", optimal_delay(channels) * 1e3);
  std::printf("max rate at mu = 1:   R_C = %.0f symbols/s\n",
              optimal_rate(channels, 1.0));
  std::printf("max rate at mu = 3:   R_C = %.0f symbols/s (Theorem 4)\n",
              optimal_rate(channels, 3.0));

  // --- 3. The protocol ---------------------------------------------------
  net::Simulator sim;
  Rng seeder(7);
  net::ChannelConfig link;
  link.rate_bps = 10e6;
  link.delay = net::from_millis(1);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 5; ++i) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, link, seeder.fork()));
    wires.push_back(storage.back().get());
  }

  proto::Receiver receiver(sim);
  for (auto* w : wires) receiver.attach(*w);
  receiver.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> payload) {
    std::printf("packet %llu delivered at t = %.3f ms: \"%s\"\n",
                static_cast<unsigned long long>(id),
                net::to_seconds(sim.now()) * 1e3,
                std::string(payload.begin(), payload.end()).c_str());
  });

  // kappa = 2.5, mu = 4: an adversary needs 2-3 channels per packet, and
  // 1-2 share losses per packet are absorbed without retransmission.
  proto::Sender sender(sim, wires,
                       std::make_unique<proto::DynamicScheduler>(2.5, 4.0, 5),
                       seeder.fork());
  sender.send(secret);
  sim.run();

  std::printf("sender used kappa = %.2f, mu = %.2f on average\n",
              sender.stats().achieved_kappa(), sender.stats().achieved_mu());

  // With MCSS_METRICS/MCSS_TRACE set, export what this run recorded
  // (the protocol hot paths publish into obs::Registry::global()).
  if (obs::metrics_enabled()) {
    auto& registry = obs::Registry::global();
    sender.publish_metrics(registry);
    receiver.publish_metrics(registry);
    for (const auto& wire : storage) publish(registry, wire->stats());
  }
  obs::dump_from_env("quickstart");
  return 0;
}
