// session_telemetry: the runtime telemetry plane on a live session
// endpoint, for poking with curl.
//
// Opens a population of flows over loopback UDP channels, keeps them
// churning (close + reopen with traffic), and serves the scrape
// endpoints while the loop runs:
//
//   http://127.0.0.1:<port>/metrics   Prometheus exposition text
//   http://127.0.0.1:<port>/flows     top-K flow drill-down JSON
//   http://127.0.0.1:<port>/healthz   event-loop health JSON
//
// Environment knobs:
//
//   MCSS_OBS_PORT      scrape port (default 9464; 0 = ephemeral)
//   MCSS_OBS_INTERVAL  sampler interval in ms (default 250)
//
//   examples/session_telemetry [seconds] [flows]
//
// While it runs, try:
//   curl -s localhost:9464/metrics | grep mcss_privacy
//   curl -s localhost:9464/flows | python3 -m json.tool
//   curl -s localhost:9464/healthz
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "session/session_endpoint.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace mcss;

  double seconds = 30.0;
  std::size_t flows = 500;
  if (argc > 1) seconds = std::atof(argv[1]);
  if (argc > 2) flows = static_cast<std::size_t>(std::atoi(argv[2]));

  std::uint16_t port = 9464;
  if (const char* env = std::getenv("MCSS_OBS_PORT");
      env != nullptr && *env != '\0') {
    port = static_cast<std::uint16_t>(std::atoi(env));
  }

  session::SessionConfig config;
  net::ChannelConfig clean;
  clean.rate_bps = 1e9;
  for (int i = 0; i < 3; ++i) {
    config.channels.push_back({clean, "lane" + std::to_string(i)});
  }
  config.reliability.enabled = true;
  config.telemetry.enabled = true;
  config.telemetry.port = port;
  // The paper's quantity of interest: per-channel compromise
  // probabilities z_i feed realized z(k, exposure) accounting. A real
  // deployment sets what it believes; the demo assumes one risky lane.
  config.telemetry.privacy.channel_risks = {0.05, 0.05, 0.30};
  session::SessionEndpoint ep(std::move(config));
  std::printf("scrape plane on http://127.0.0.1:%u  (/metrics /flows /healthz)\n",
              ep.telemetry()->port());

  session::FlowParams params;
  params.rate_pps = 10.0;
  params.payload_bytes = 128;
  std::vector<std::uint8_t> payload(128, 0x5a);
  std::vector<std::uint32_t> open;
  open.reserve(flows);
  while (open.size() < flows) {
    const auto cid = ep.open_flow(params);
    if (!cid) break;
    open.push_back(*cid);
    (void)ep.send(*cid, payload);
  }
  std::printf("opened %zu flows, churning for %.0f s...\n", open.size(),
              seconds);

  Rng rng(1);
  const std::int64_t start = ep.now_ns();
  const auto deadline =
      start + static_cast<std::int64_t>(seconds * 1e9);
  while (ep.now_ns() < deadline) {
    for (int b = 0; b < 8 && !open.empty(); ++b) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(open.size()));
      (void)ep.close_flow(open[victim]);
      const auto cid = ep.open_flow(params);
      if (cid) {
        open[victim] = *cid;
        (void)ep.send(*cid, payload);
      } else {
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    ep.run_for(50'000'000);  // pump 50 ms; scrapes are served in here
  }

  const auto& stats = ep.stats();
  std::printf("done: %llu opens, %llu packets sent, %llu delivered\n",
              static_cast<unsigned long long>(stats.flows_opened),
              static_cast<unsigned long long>(stats.packets_sent),
              static_cast<unsigned long long>(stats.packets_delivered));
  return 0;
}
