// live_loopback: smallest possible live-transport demo.
//
// Runs ReMICSS over five real loopback UDP sockets for a couple of
// seconds and prints what happened. Environment knobs:
//
//   MCSS_LIVE_IMPAIR     which Section VI channel mix to impose:
//                        none | identical | diverse | lossy | delayed
//                        (default lossy — the most instructive one)
//   MCSS_LIVE_PORT_BASE  bind RX ports base..base+4 instead of ephemeral
//                        (handy for watching with tcpdump -i lo)
//
//   examples/live_loopback [seconds]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "transport/live_endpoint.hpp"
#include "util/rng.hpp"
#include "workload/setups.hpp"

int main(int argc, char** argv) {
  using namespace mcss;

  double seconds = 2.0;
  if (argc > 1) seconds = std::atof(argv[1]);

  const char* impair_env = std::getenv("MCSS_LIVE_IMPAIR");
  const std::string impair = impair_env != nullptr ? impair_env : "lossy";
  workload::Setup setup;
  if (impair == "none" || impair == "identical") {
    setup = workload::identical_setup(100.0);
    if (impair == "none") {
      for (auto& ch : setup.channels) {
        ch.loss = 0.0;
        ch.delay = 0;
      }
    }
  } else if (impair == "diverse") {
    setup = workload::diverse_setup();
  } else if (impair == "lossy") {
    setup = workload::lossy_setup();
  } else if (impair == "delayed") {
    setup = workload::delayed_setup();
  } else {
    std::fprintf(stderr,
                 "MCSS_LIVE_IMPAIR=%s? use none|identical|diverse|lossy|"
                 "delayed\n",
                 impair.c_str());
    return 2;
  }

  transport::LiveConfig cfg;
  for (std::size_t i = 0; i < setup.channels.size(); ++i) {
    cfg.channels.push_back({setup.channels[i], "ch" + std::to_string(i)});
  }
  cfg.kappa = 2.0;
  cfg.mu = 3.0;
  cfg.seed = 7;
  cfg.port_base = transport::port_base_from_env(0);
  transport::LiveEndpoint ep(std::move(cfg));

  std::printf("live ReMICSS on %zu loopback channels (%s impairment), "
              "kappa=2 mu=3, %.1fs\n",
              ep.num_channels(), impair.c_str(), seconds);
  if (cfg.port_base != 0) {
    std::printf("rx ports start at %u\n", cfg.port_base);
  }

  std::uint64_t delivered = 0, delivered_bytes = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> payload) {
    ++delivered;
    delivered_bytes += payload.size();
  });

  // Offer ~2000 packets/s of 512-byte packets, paced.
  Rng rng(123);
  std::vector<std::uint8_t> payload(512);
  const std::int64_t interval_ns = 500'000;
  const std::int64_t t_end =
      ep.now_ns() + static_cast<std::int64_t>(seconds * 1e9);
  std::int64_t next_send = ep.now_ns();
  while (ep.now_ns() < t_end) {
    while (next_send <= ep.now_ns() && next_send < t_end) {
      rng.fill(payload);
      (void)ep.send(payload);
      next_send += interval_ns;
    }
    ep.run_for(2'000'000);
  }
  ep.run_for(100'000'000);  // drain

  const auto& ss = ep.sender_stats();
  const auto& rs = ep.receiver().stats();
  std::printf("\nsent      %llu packets (%llu shares, achieved kappa %.2f"
              " mu %.2f)\n",
              static_cast<unsigned long long>(ss.packets_sent),
              static_cast<unsigned long long>(ss.shares_sent),
              ss.achieved_kappa(), ss.achieved_mu());
  std::printf("delivered %llu packets (%.2f Mbps goodput, loss %.2f%%)\n",
              static_cast<unsigned long long>(delivered),
              static_cast<double>(delivered_bytes) * 8.0 / seconds / 1e6,
              ss.packets_sent == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(delivered) /
                                       static_cast<double>(ss.packets_sent)));
  std::printf("delay     %.3f ms median, %.3f ms p99\n",
              ep.delay_seconds().median() * 1e3,
              ep.delay_seconds().percentile(99.0) * 1e3);
  std::printf("receiver  %llu dup shares, %llu late, %llu malformed, "
              "%llu timeouts\n",
              static_cast<unsigned long long>(rs.duplicate_shares),
              static_cast<unsigned long long>(rs.late_shares),
              static_cast<unsigned long long>(rs.malformed_frames),
              static_cast<unsigned long long>(rs.packets_evicted_timeout));
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    const auto& is = ep.channel(i).impair_stats();
    const auto& us = ep.channel(i).stats();
    std::printf("  ch%zu: %6llu frames offered, %6llu delivered, "
                "%4llu lost, %5llu datagrams (%llu coalesced frames)\n",
                i, static_cast<unsigned long long>(is.frames_offered),
                static_cast<unsigned long long>(is.frames_delivered),
                static_cast<unsigned long long>(is.frames_dropped_loss),
                static_cast<unsigned long long>(us.datagrams_sent),
                static_cast<unsigned long long>(us.frames_coalesced));
  }
  return delivered > 0 ? 0 : 1;
}
