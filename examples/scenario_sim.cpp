// scenario_sim: run a text-file experiment scenario.
//
//   scenario_sim                  # runs the built-in demo scenario
//   scenario_sim myfile.txt       # runs your own (see scenario.hpp format)
//   scenario_sim --obs [file.txt] # + metrics snapshot and Chrome trace
//
// Prints the model's predictions (optimal rate, LP loss/delay at max
// rate) alongside the protocol's measured behavior — the whole paper
// workflow, driven by a config file.
//
// With --obs the run also enables the observability layer: at the end it
// prints the metrics snapshot (every component counter plus the latency
// histograms), breaks the measured per-share delay into its pipeline
// stages (split, channel queue wait, serialization, reassembly wait,
// reconstruct) against the LP's predicted delay, and writes a Chrome
// trace (scenario_trace.json) whose async spans show the same breakdown
// per individual share in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/lp_schedule.hpp"
#include "core/rate.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"

namespace {

/// Mean of a snapshot histogram in seconds, or -1 when it has no samples.
double hist_mean(const mcss::obs::MetricsSnapshot& snapshot,
                 const char* name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name && h.count > 0) {
      return h.sum / static_cast<double>(h.count);
    }
  }
  return -1.0;
}

void print_stage(const char* label, double seconds) {
  if (seconds >= 0.0) {
    std::printf("    %-24s %10.4f ms\n", label, seconds * 1e3);
  } else {
    std::printf("    %-24s %10s\n", label, "(no samples)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcss;

  bool obs_on = false;
  const char* scenario_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") == 0) {
      obs_on = true;
    } else {
      scenario_path = argv[i];
    }
  }

  if (obs_on) {
    obs::set_metrics_enabled(true);
    obs::Tracer::global().set_enabled(true);
  }

  std::string text;
  if (scenario_path != nullptr) {
    std::ifstream file(scenario_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", scenario_path);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    text = workload::demo_scenario_text();
    std::printf("(no file given; running the built-in demo scenario)\n\n");
  }

  workload::Scenario scenario;
  try {
    scenario = workload::parse_scenario(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  const auto& cfg = scenario.config;
  const ChannelSet model = cfg.setup.to_model(cfg.packet_bytes);
  const double optimal_pkts = optimal_rate(model, cfg.mu);
  const double optimal_mbps =
      optimal_pkts * static_cast<double>(cfg.packet_bytes) * 8.0 / 1e6;

  std::printf("scenario: %d channels, kappa = %.2f, mu = %.2f\n",
              model.size(), cfg.kappa, cfg.mu);
  std::printf("model predictions:\n");
  std::printf("  optimal rate (Theorem 4):        %.1f Mbps (%.0f pkts/s)\n",
              optimal_mbps, optimal_pkts);
  const auto lp_loss = solve_schedule_lp(model, {.objective = Objective::Loss,
                                                 .kappa = cfg.kappa,
                                                 .mu = cfg.mu,
                                                 .rate = RateConstraint::MaxRate});
  const auto lp_delay = solve_schedule_lp(model, {.objective = Objective::Delay,
                                                  .kappa = cfg.kappa,
                                                  .mu = cfg.mu,
                                                  .rate = RateConstraint::MaxRate});
  if (lp_loss.status == lp::Status::Optimal) {
    std::printf("  best loss at max rate (IV-D LP): %.4f%%\n",
                lp_loss.objective_value * 100);
  }
  if (lp_delay.status == lp::Status::Optimal) {
    std::printf("  best delay at max rate:          %.3f ms\n",
                lp_delay.objective_value * 1e3);
  }

  const auto result = workload::run_scenario(scenario);
  std::printf("measured (ReMICSS on the simulated channels):\n");
  std::printf("  rate:  %.1f Mbps (%.1f%% of optimal)\n", result.achieved_mbps,
              100.0 * result.achieved_mbps / optimal_mbps);
  std::printf("  loss:  %.4f%%\n", result.loss_fraction * 100);
  if (cfg.echo) {
    std::printf("  delay: %.3f ms mean, %.3f ms p99 (echo RTT / 2)\n",
                result.mean_delay_s * 1e3, result.p99_delay_s * 1e3);
  }
  std::printf("  kappa/mu achieved: %.2f / %.2f\n", result.achieved_kappa,
              result.achieved_mu);

  if (obs_on) {
    const auto snapshot = obs::Registry::global().snapshot();

    // Where a share's delay budget goes, stage by stage, next to what
    // the IV-D LP said the whole trip should cost.
    std::printf("\nper-share delay breakdown (mean per stage):\n");
    print_stage("split", hist_mean(snapshot, "mcss_sender_split_seconds"));
    print_stage("channel queue wait",
                hist_mean(snapshot, "mcss_channel_queue_wait_seconds"));
    print_stage("reassembly wait (k-th share)",
                hist_mean(snapshot, "mcss_receiver_reassembly_wait_seconds"));
    print_stage("reconstruct",
                hist_mean(snapshot, "mcss_receiver_reconstruct_seconds"));
    const double e2e = hist_mean(snapshot, "mcss_e2e_delay_seconds");
    print_stage("end-to-end", e2e);
    if (lp_delay.status == lp::Status::Optimal && e2e >= 0.0) {
      if (lp_delay.objective_value > 1e-9) {
        std::printf("    %-24s %10.4f ms (measured/predicted: %.2fx)\n",
                    "LP predicted delay", lp_delay.objective_value * 1e3,
                    e2e / lp_delay.objective_value);
      } else {
        std::printf("    %-24s %10.4f ms (model counts propagation only;\n"
                    "    %-24s %10s    measured adds queueing + host work)\n",
                    "LP predicted delay", lp_delay.objective_value * 1e3, "",
                    "");
      }
    }

    std::printf("\nmetrics snapshot (%zu counters, %zu gauges, %zu histograms):\n",
                snapshot.counters.size(), snapshot.gauges.size(),
                snapshot.histograms.size());
    std::printf("%s", obs::prometheus_text(snapshot).c_str());

    auto& tracer = obs::Tracer::global();
    const std::string trace_path = "scenario_trace.json";
    tracer.write_chrome_trace(trace_path);
    std::printf("# trace: %zu events -> %s (open in chrome://tracing)\n",
                tracer.collect().size(), trace_path.c_str());
    if (tracer.dropped() > 0) {
      std::printf("# trace ring wrapped: %llu oldest events dropped "
                  "(raise MCSS_TRACE_BUF)\n",
                  static_cast<unsigned long long>(tracer.dropped()));
    }
  }
  return 0;
}
