// scenario_sim: run a text-file experiment scenario.
//
//   scenario_sim                # runs the built-in demo scenario
//   scenario_sim myfile.txt    # runs your own (see scenario.hpp format)
//
// Prints the model's predictions (optimal rate, LP loss/delay at max
// rate) alongside the protocol's measured behavior — the whole paper
// workflow, driven by a config file.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/lp_schedule.hpp"
#include "core/rate.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mcss;

  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    text = workload::demo_scenario_text();
    std::printf("(no file given; running the built-in demo scenario)\n\n");
  }

  workload::Scenario scenario;
  try {
    scenario = workload::parse_scenario(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  const auto& cfg = scenario.config;
  const ChannelSet model = cfg.setup.to_model(cfg.packet_bytes);
  const double optimal_pkts = optimal_rate(model, cfg.mu);
  const double optimal_mbps =
      optimal_pkts * static_cast<double>(cfg.packet_bytes) * 8.0 / 1e6;

  std::printf("scenario: %d channels, kappa = %.2f, mu = %.2f\n",
              model.size(), cfg.kappa, cfg.mu);
  std::printf("model predictions:\n");
  std::printf("  optimal rate (Theorem 4):        %.1f Mbps (%.0f pkts/s)\n",
              optimal_mbps, optimal_pkts);
  const auto lp_loss = solve_schedule_lp(model, {.objective = Objective::Loss,
                                                 .kappa = cfg.kappa,
                                                 .mu = cfg.mu,
                                                 .rate = RateConstraint::MaxRate});
  const auto lp_delay = solve_schedule_lp(model, {.objective = Objective::Delay,
                                                  .kappa = cfg.kappa,
                                                  .mu = cfg.mu,
                                                  .rate = RateConstraint::MaxRate});
  if (lp_loss.status == lp::Status::Optimal) {
    std::printf("  best loss at max rate (IV-D LP): %.4f%%\n",
                lp_loss.objective_value * 100);
  }
  if (lp_delay.status == lp::Status::Optimal) {
    std::printf("  best delay at max rate:          %.3f ms\n",
                lp_delay.objective_value * 1e3);
  }

  const auto result = workload::run_scenario(scenario);
  std::printf("measured (ReMICSS on the simulated channels):\n");
  std::printf("  rate:  %.1f Mbps (%.1f%% of optimal)\n", result.achieved_mbps,
              100.0 * result.achieved_mbps / optimal_mbps);
  std::printf("  loss:  %.4f%%\n", result.loss_fraction * 100);
  if (cfg.echo) {
    std::printf("  delay: %.3f ms mean, %.3f ms p99 (echo RTT / 2)\n",
                result.mean_delay_s * 1e3, result.p99_delay_s * 1e3);
  }
  std::printf("  kappa/mu achieved: %.2f / %.2f\n", result.achieved_kappa,
              result.achieved_mu);
  return 0;
}
