// risk_adaptive: the full pipeline from raw telemetry to a running
// protocol, with nothing configured by hand.
//
//   1. SENSE    per-channel IDS alert streams are filtered through the
//               HMM risk model -> the z vector (paper Section III-A:
//               "estimated using network risk assessment techniques")
//   2. MEASURE  each channel is probed for loss/delay/rate, like the
//               paper's iperf pre-measurement -> the l, d, r vectors
//   3. PLAN     the planner searches (kappa, mu), solving the Section
//               IV-D LP with the operator's ceilings -> a share schedule
//   4. RUN      the schedule drives ReMICSS on the simulated testbed and
//               the measured behavior is compared with the plan
//
// Two channels in this scenario are under active attack (their alert
// streams are hot), so the planner must route around them statistically:
// watch the chosen schedule lean on the quiet channels.
#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "risk/channel_risk.hpp"
#include "util/rng.hpp"
#include "workload/estimator.hpp"
#include "workload/experiment.hpp"
#include "workload/setups.hpp"

int main() {
  using namespace mcss;

  // --- 1. sense ---------------------------------------------------------
  const auto model = risk::ChannelRiskModel::standard();
  Rng rng(2024);
  std::vector<std::vector<int>> alert_traces(5);
  for (int i = 0; i < 5; ++i) {
    // Channels 1 and 3 are being probed/intruded; the rest are quiet.
    for (int t = 0; t < 48; ++t) {
      const bool hot = (i == 1 || i == 3) && t >= 32;
      const double u = rng.uniform();
      int alert = risk::kNoAlert;
      if (hot) {
        alert = u < 0.45 ? risk::kIntrusion
                         : (u < 0.85 ? risk::kSuspicious : risk::kNoAlert);
      } else if (u < 0.07) {
        alert = risk::kSuspicious;  // background sensor noise
      }
      alert_traces[static_cast<std::size_t>(i)].push_back(alert);
    }
  }
  const auto risks = risk::assess_risks(model, alert_traces);
  std::printf("1. sensed risk vector z from alert streams:\n   ");
  for (const double z : risks) std::printf(" %.3f", z);
  std::printf("   (channels 1 and 3 are under attack)\n\n");

  // --- 2. measure --------------------------------------------------------
  auto setup = workload::lossy_setup();
  setup.risks = risks;
  workload::ProbeConfig probe;
  probe.pace_seconds = 1.0;
  const ChannelSet measured = workload::measure_setup(setup, probe);
  std::printf("2. probed channels (measured, not configured):\n");
  std::printf("   #   risk    loss     rate_pkts/s\n");
  for (int i = 0; i < measured.size(); ++i) {
    std::printf("   %d  %.3f  %.4f  %12.0f\n", i, measured[i].risk,
                measured[i].loss, measured[i].rate);
  }

  // --- 3. plan ------------------------------------------------------------
  PlannerGoal goal;
  goal.max_risk = 0.02;   // an adversary may read at most 2% of packets
  goal.max_loss = 0.02;
  goal.objective = PlannerGoal::Objective::MaxRate;
  const Plan plan = plan_parameters(measured, goal);
  if (!plan.feasible) {
    std::printf("\n3. no feasible plan for the stated goal\n");
    return 1;
  }
  std::printf("\n3. plan: kappa = %.2f, mu = %.2f -> rate %.0f pkts/s, "
              "risk %.4f, loss %.4f\n",
              plan.kappa, plan.mu, plan.rate, plan.risk, plan.loss);
  std::printf("   schedule channel usage:");
  for (int i = 0; i < measured.size(); ++i) {
    std::printf(" %.2f", plan.schedule->channel_usage(i));
  }
  std::printf("\n   (compare usage on the attacked channels 1 and 3 with "
              "the quiet ones)\n");

  // --- 4. run ---------------------------------------------------------------
  workload::ExperimentConfig cfg;
  cfg.setup = setup;
  cfg.kappa = plan.kappa;
  cfg.mu = plan.mu;
  cfg.scheduler = workload::SchedulerKind::Custom;
  cfg.custom_schedule = plan.schedule;
  cfg.offered_bps = 0.97 * plan.rate * static_cast<double>(cfg.packet_bytes) * 8;
  cfg.duration_s = 1.0;
  const auto result = workload::run_experiment(cfg);
  std::printf("\n4. measured: %.1f Mbps (planned %.1f), loss %.4f "
              "(planned %.4f), kappa/mu achieved %.2f / %.2f\n",
              result.achieved_mbps,
              plan.rate * static_cast<double>(cfg.packet_bytes) * 8 / 1e6,
              result.loss_fraction, plan.loss, result.achieved_kappa,
              result.achieved_mu);
  return 0;
}
