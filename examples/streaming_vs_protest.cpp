// streaming_vs_protest: the paper's motivating scenarios, side by side.
//
// The introduction contrasts two uses of the same network: streaming
// music ("the need for privacy ... is not so high as to warrant
// significant degradation") and organizing a protest against an
// oppressive regime ("merits whatever reduction in performance is
// necessary"). Both get the same five channels; only (kappa, mu) differs:
//
//   streaming  kappa = 1.2, mu = 1.5   performance-leaning
//   balanced   kappa = 2.0, mu = 3.0   middle of the continuum
//   protest    kappa = 5.0, mu = 5.0   maximum privacy (MICSS corner)
//
// For each profile we print the model's predictions (risk, loss at max
// rate, optimal rate) next to measured protocol behavior on the
// simulated testbed.
#include <cstdio>
#include <string>

#include "core/lp_schedule.hpp"
#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "workload/experiment.hpp"
#include "workload/setups.hpp"

namespace {

struct Profile {
  std::string name;
  double kappa;
  double mu;
};

}  // namespace

int main() {
  using namespace mcss;

  const auto setup = workload::lossy_setup();
  const std::size_t packet_bytes = 1470;
  const ChannelSet model = setup.to_model(packet_bytes);

  const Profile profiles[] = {
      {"streaming", 1.2, 1.5},
      {"balanced", 2.0, 3.0},
      {"protest", 5.0, 5.0},
  };

  std::printf("five channels (Lossy testbed), three privacy postures\n\n");
  std::printf(
      "profile    kappa  mu   pred_risk  pred_loss%%  pred_mbps | "
      "meas_mbps  meas_loss%%  channels_tapped_to_read\n");

  for (const Profile& p : profiles) {
    const auto lp = solve_schedule_lp(model, {.objective = Objective::Risk,
                                              .kappa = p.kappa,
                                              .mu = p.mu,
                                              .rate = RateConstraint::MaxRate});
    const auto lp_loss = solve_schedule_lp(model, {.objective = Objective::Loss,
                                                   .kappa = p.kappa,
                                                   .mu = p.mu,
                                                   .rate = RateConstraint::MaxRate});
    const double pred_mbps =
        optimal_rate(model, p.mu) * static_cast<double>(packet_bytes) * 8 / 1e6;

    workload::ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.kappa = p.kappa;
    cfg.mu = p.mu;
    cfg.packet_bytes = packet_bytes;
    cfg.offered_bps = 0.97 * pred_mbps * 1e6;
    cfg.duration_s = 1.0;
    cfg.seed = 42;
    const auto r = workload::run_experiment(cfg);

    std::printf("%-9s  %5.1f  %3.1f  %9.4f  %10.4f  %9.1f | %9.1f  %10.4f  %d\n",
                p.name.c_str(), p.kappa, p.mu,
                lp.status == lp::Status::Optimal ? lp.objective_value : -1.0,
                (lp_loss.status == lp::Status::Optimal ? lp_loss.objective_value
                                                       : -1.0) * 100,
                pred_mbps, r.achieved_mbps, r.loss_fraction * 100,
                static_cast<int>(p.kappa));
  }

  std::printf(
      "\nreading guide: 'streaming' keeps ~%.0f%% of the raw capacity and\n"
      "accepts that a single tapped channel often reveals packets;\n"
      "'protest' forces the adversary to tap all five channels at once\n"
      "(risk = product of all channel risks) and pays for it with the\n"
      "slowest channel's rate. The model quantifies every point between.\n",
      100.0 * optimal_rate(model, 1.5) / model.total_rate());
  return 0;
}
