// tradeoff_explorer: the model as a planning tool.
//
// Given a channel set (the built-in Lossy+Delayed testbed or one supplied
// on the command line), print the full privacy/loss/delay/rate tradeoff
// surface: for a grid of (kappa, mu), the optimal achievable rate
// (Theorem 4) and the best risk/loss/delay at that maximum rate (the
// Section IV-D linear program). This is how an operator would choose
// protocol parameters for a target privacy level or rate budget.
//
// Usage:
//   tradeoff_explorer                    # built-in 5-channel testbed
//   tradeoff_explorer z,l,d,r [z,l,d,r ...]
// Each channel is "risk,loss,delay_ms,rate_mbps", e.g. 0.2,0.01,5,100.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/lp_schedule.hpp"
#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "workload/setups.hpp"

namespace {

std::vector<mcss::Channel> parse_channels(int argc, char** argv) {
  std::vector<mcss::Channel> channels;
  for (int i = 1; i < argc; ++i) {
    double z, l, d_ms, r_mbps;
    if (std::sscanf(argv[i], "%lf,%lf,%lf,%lf", &z, &l, &d_ms, &r_mbps) != 4) {
      std::fprintf(stderr, "cannot parse channel '%s' (want z,l,d_ms,r_mbps)\n",
                   argv[i]);
      std::exit(2);
    }
    // Rate in packets/s for 1470-byte datagrams.
    channels.push_back({z, l, d_ms * 1e-3, r_mbps * 1e6 / (1470 * 8)});
  }
  return channels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcss;

  ChannelSet channels = [&] {
    if (argc > 1) return ChannelSet(parse_channels(argc, argv));
    // Built-in: the paper's Lossy testbed rates/losses plus the Delayed
    // testbed's delays.
    const auto lossy = workload::lossy_setup().to_model(1470);
    const auto delayed = workload::delayed_setup().to_model(1470);
    std::vector<Channel> merged;
    for (int i = 0; i < lossy.size(); ++i) {
      merged.push_back(
          {lossy[i].risk, lossy[i].loss, delayed[i].delay, lossy[i].rate});
    }
    return ChannelSet(std::move(merged));
  }();

  const int n = channels.size();
  std::printf("channel set (n = %d):\n", n);
  std::printf("  #   risk    loss    delay_ms  rate_pkts  rate_mbps\n");
  for (int i = 0; i < n; ++i) {
    std::printf("  %d  %5.2f  %6.3f  %8.2f  %9.0f  %9.1f\n", i,
                channels[i].risk, channels[i].loss, channels[i].delay * 1e3,
                channels[i].rate, channels[i].rate * 1470 * 8 / 1e6);
  }

  std::printf("\nglobal optima (free kappa, mu):\n");
  std::printf("  privacy: Z_C = %.3e at kappa = mu = n\n", optimal_risk(channels));
  std::printf("  loss:    L_C = %.3e at kappa = 1, mu = n\n", optimal_loss(channels));
  std::printf("  delay:   D_C = %.3f ms at kappa = 1, mu = n\n",
              optimal_delay(channels) * 1e3);
  std::printf("  rate:    R_C = %.0f pkts/s at kappa = mu = 1\n",
              channels.total_rate());
  std::printf("  full utilization possible while mu <= %.3f (Theorem 2)\n",
              full_utilization_mu_limit(channels));

  std::printf("\ntradeoff surface at maximum rate (Section IV-D LPs):\n");
  std::printf(
      "kappa   mu   rate_pkts  best_risk   best_loss   best_delay_ms\n");
  for (double kappa = 1.0; kappa <= n; kappa += 0.5) {
    for (double mu = kappa; mu <= n; mu += 0.5) {
      const double rate = optimal_rate(channels, mu);
      double best[3] = {-1, -1, -1};
      int idx = 0;
      for (const auto obj : {Objective::Risk, Objective::Loss, Objective::Delay}) {
        const auto r = solve_schedule_lp(channels, {.objective = obj,
                                                    .kappa = kappa,
                                                    .mu = mu,
                                                    .rate = RateConstraint::MaxRate});
        best[idx++] = r.status == lp::Status::Optimal ? r.objective_value : -1;
      }
      std::printf("%5.1f  %4.1f  %9.0f  %9.5f  %10.6f  %13.3f\n", kappa, mu,
                  rate, best[0], best[1], best[2] * 1e3);
    }
  }

  std::printf(
      "\nreading guide: pick the row whose best_risk meets your privacy\n"
      "requirement, then compare rate_pkts against your throughput budget;\n"
      "kappa - 1 channels can be eavesdropped and mu - kappa shares lost\n"
      "per packet without consequence.\n");
  return 0;
}
