file(REMOVE_RECURSE
  "../bench/fig3_rate_diverse"
  "../bench/fig3_rate_diverse.pdb"
  "CMakeFiles/fig3_rate_diverse.dir/fig3_rate_diverse.cpp.o"
  "CMakeFiles/fig3_rate_diverse.dir/fig3_rate_diverse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rate_diverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
