# Empty dependencies file for fig3_rate_diverse.
# This may be replaced when dependencies are built.
