file(REMOVE_RECURSE
  "../bench/fig5_loss"
  "../bench/fig5_loss.pdb"
  "CMakeFiles/fig5_loss.dir/fig5_loss.cpp.o"
  "CMakeFiles/fig5_loss.dir/fig5_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
