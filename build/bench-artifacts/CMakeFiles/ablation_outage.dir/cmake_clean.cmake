file(REMOVE_RECURSE
  "../bench/ablation_outage"
  "../bench/ablation_outage.pdb"
  "CMakeFiles/ablation_outage.dir/ablation_outage.cpp.o"
  "CMakeFiles/ablation_outage.dir/ablation_outage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
