# Empty compiler generated dependencies file for ablation_outage.
# This may be replaced when dependencies are built.
