file(REMOVE_RECURSE
  "../bench/fig2_schedule_packing"
  "../bench/fig2_schedule_packing.pdb"
  "CMakeFiles/fig2_schedule_packing.dir/fig2_schedule_packing.cpp.o"
  "CMakeFiles/fig2_schedule_packing.dir/fig2_schedule_packing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_schedule_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
