# Empty dependencies file for ablation_limited_schedule.
# This may be replaced when dependencies are built.
