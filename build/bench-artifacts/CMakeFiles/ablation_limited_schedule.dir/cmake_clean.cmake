file(REMOVE_RECURSE
  "../bench/ablation_limited_schedule"
  "../bench/ablation_limited_schedule.pdb"
  "CMakeFiles/ablation_limited_schedule.dir/ablation_limited_schedule.cpp.o"
  "CMakeFiles/ablation_limited_schedule.dir/ablation_limited_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_limited_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
