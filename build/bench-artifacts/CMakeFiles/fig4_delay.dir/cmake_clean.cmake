file(REMOVE_RECURSE
  "../bench/fig4_delay"
  "../bench/fig4_delay.pdb"
  "CMakeFiles/fig4_delay.dir/fig4_delay.cpp.o"
  "CMakeFiles/fig4_delay.dir/fig4_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
