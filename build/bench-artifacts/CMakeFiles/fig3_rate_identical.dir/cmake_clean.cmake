file(REMOVE_RECURSE
  "../bench/fig3_rate_identical"
  "../bench/fig3_rate_identical.pdb"
  "CMakeFiles/fig3_rate_identical.dir/fig3_rate_identical.cpp.o"
  "CMakeFiles/fig3_rate_identical.dir/fig3_rate_identical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rate_identical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
