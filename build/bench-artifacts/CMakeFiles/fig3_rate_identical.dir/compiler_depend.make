# Empty compiler generated dependencies file for fig3_rate_identical.
# This may be replaced when dependencies are built.
