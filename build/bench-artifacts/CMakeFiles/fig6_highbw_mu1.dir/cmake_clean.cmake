file(REMOVE_RECURSE
  "../bench/fig6_highbw_mu1"
  "../bench/fig6_highbw_mu1.pdb"
  "CMakeFiles/fig6_highbw_mu1.dir/fig6_highbw_mu1.cpp.o"
  "CMakeFiles/fig6_highbw_mu1.dir/fig6_highbw_mu1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_highbw_mu1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
