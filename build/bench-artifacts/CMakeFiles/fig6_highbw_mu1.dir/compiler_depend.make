# Empty compiler generated dependencies file for fig6_highbw_mu1.
# This may be replaced when dependencies are built.
