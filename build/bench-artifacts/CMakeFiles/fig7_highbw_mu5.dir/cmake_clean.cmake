file(REMOVE_RECURSE
  "../bench/fig7_highbw_mu5"
  "../bench/fig7_highbw_mu5.pdb"
  "CMakeFiles/fig7_highbw_mu5.dir/fig7_highbw_mu5.cpp.o"
  "CMakeFiles/fig7_highbw_mu5.dir/fig7_highbw_mu5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_highbw_mu5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
