# Empty compiler generated dependencies file for fig7_highbw_mu5.
# This may be replaced when dependencies are built.
