file(REMOVE_RECURSE
  "../examples/scenario_sim"
  "../examples/scenario_sim.pdb"
  "CMakeFiles/scenario_sim.dir/scenario_sim.cpp.o"
  "CMakeFiles/scenario_sim.dir/scenario_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
