# Empty dependencies file for streaming_vs_protest.
# This may be replaced when dependencies are built.
