file(REMOVE_RECURSE
  "../examples/streaming_vs_protest"
  "../examples/streaming_vs_protest.pdb"
  "CMakeFiles/streaming_vs_protest.dir/streaming_vs_protest.cpp.o"
  "CMakeFiles/streaming_vs_protest.dir/streaming_vs_protest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_vs_protest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
