# Empty compiler generated dependencies file for risk_adaptive.
# This may be replaced when dependencies are built.
