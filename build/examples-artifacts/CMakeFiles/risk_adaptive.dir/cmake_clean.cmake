file(REMOVE_RECURSE
  "../examples/risk_adaptive"
  "../examples/risk_adaptive.pdb"
  "CMakeFiles/risk_adaptive.dir/risk_adaptive.cpp.o"
  "CMakeFiles/risk_adaptive.dir/risk_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
