file(REMOVE_RECURSE
  "libmcss_util.a"
)
