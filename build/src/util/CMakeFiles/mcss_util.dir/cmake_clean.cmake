file(REMOVE_RECURSE
  "CMakeFiles/mcss_util.dir/rng.cpp.o"
  "CMakeFiles/mcss_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcss_util.dir/stats.cpp.o"
  "CMakeFiles/mcss_util.dir/stats.cpp.o.d"
  "libmcss_util.a"
  "libmcss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
