# Empty compiler generated dependencies file for mcss_util.
# This may be replaced when dependencies are built.
