# Empty compiler generated dependencies file for mcss_net.
# This may be replaced when dependencies are built.
