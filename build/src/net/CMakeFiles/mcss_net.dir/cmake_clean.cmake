file(REMOVE_RECURSE
  "CMakeFiles/mcss_net.dir/cpu_model.cpp.o"
  "CMakeFiles/mcss_net.dir/cpu_model.cpp.o.d"
  "CMakeFiles/mcss_net.dir/outage.cpp.o"
  "CMakeFiles/mcss_net.dir/outage.cpp.o.d"
  "CMakeFiles/mcss_net.dir/sim_channel.cpp.o"
  "CMakeFiles/mcss_net.dir/sim_channel.cpp.o.d"
  "CMakeFiles/mcss_net.dir/simulator.cpp.o"
  "CMakeFiles/mcss_net.dir/simulator.cpp.o.d"
  "libmcss_net.a"
  "libmcss_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
