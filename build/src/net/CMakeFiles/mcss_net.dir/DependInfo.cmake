
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cpu_model.cpp" "src/net/CMakeFiles/mcss_net.dir/cpu_model.cpp.o" "gcc" "src/net/CMakeFiles/mcss_net.dir/cpu_model.cpp.o.d"
  "/root/repo/src/net/outage.cpp" "src/net/CMakeFiles/mcss_net.dir/outage.cpp.o" "gcc" "src/net/CMakeFiles/mcss_net.dir/outage.cpp.o.d"
  "/root/repo/src/net/sim_channel.cpp" "src/net/CMakeFiles/mcss_net.dir/sim_channel.cpp.o" "gcc" "src/net/CMakeFiles/mcss_net.dir/sim_channel.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/mcss_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/mcss_net.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
