file(REMOVE_RECURSE
  "libmcss_net.a"
)
