file(REMOVE_RECURSE
  "CMakeFiles/mcss_workload.dir/adaptive.cpp.o"
  "CMakeFiles/mcss_workload.dir/adaptive.cpp.o.d"
  "CMakeFiles/mcss_workload.dir/estimator.cpp.o"
  "CMakeFiles/mcss_workload.dir/estimator.cpp.o.d"
  "CMakeFiles/mcss_workload.dir/experiment.cpp.o"
  "CMakeFiles/mcss_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/mcss_workload.dir/scenario.cpp.o"
  "CMakeFiles/mcss_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/mcss_workload.dir/setups.cpp.o"
  "CMakeFiles/mcss_workload.dir/setups.cpp.o.d"
  "CMakeFiles/mcss_workload.dir/traffic.cpp.o"
  "CMakeFiles/mcss_workload.dir/traffic.cpp.o.d"
  "libmcss_workload.a"
  "libmcss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
