file(REMOVE_RECURSE
  "libmcss_workload.a"
)
