# Empty dependencies file for mcss_workload.
# This may be replaced when dependencies are built.
