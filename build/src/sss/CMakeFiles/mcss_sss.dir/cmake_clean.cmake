file(REMOVE_RECURSE
  "CMakeFiles/mcss_sss.dir/blakley.cpp.o"
  "CMakeFiles/mcss_sss.dir/blakley.cpp.o.d"
  "CMakeFiles/mcss_sss.dir/shamir.cpp.o"
  "CMakeFiles/mcss_sss.dir/shamir.cpp.o.d"
  "CMakeFiles/mcss_sss.dir/shamir16.cpp.o"
  "CMakeFiles/mcss_sss.dir/shamir16.cpp.o.d"
  "CMakeFiles/mcss_sss.dir/xor_sharing.cpp.o"
  "CMakeFiles/mcss_sss.dir/xor_sharing.cpp.o.d"
  "libmcss_sss.a"
  "libmcss_sss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_sss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
