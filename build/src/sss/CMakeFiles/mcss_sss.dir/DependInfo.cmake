
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sss/blakley.cpp" "src/sss/CMakeFiles/mcss_sss.dir/blakley.cpp.o" "gcc" "src/sss/CMakeFiles/mcss_sss.dir/blakley.cpp.o.d"
  "/root/repo/src/sss/shamir.cpp" "src/sss/CMakeFiles/mcss_sss.dir/shamir.cpp.o" "gcc" "src/sss/CMakeFiles/mcss_sss.dir/shamir.cpp.o.d"
  "/root/repo/src/sss/shamir16.cpp" "src/sss/CMakeFiles/mcss_sss.dir/shamir16.cpp.o" "gcc" "src/sss/CMakeFiles/mcss_sss.dir/shamir16.cpp.o.d"
  "/root/repo/src/sss/xor_sharing.cpp" "src/sss/CMakeFiles/mcss_sss.dir/xor_sharing.cpp.o" "gcc" "src/sss/CMakeFiles/mcss_sss.dir/xor_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/field/CMakeFiles/mcss_field.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
