# Empty compiler generated dependencies file for mcss_sss.
# This may be replaced when dependencies are built.
