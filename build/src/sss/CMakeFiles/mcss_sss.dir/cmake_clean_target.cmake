file(REMOVE_RECURSE
  "libmcss_sss.a"
)
