
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/dither.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/dither.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/dither.cpp.o.d"
  "/root/repo/src/protocol/micss.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/micss.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/micss.cpp.o.d"
  "/root/repo/src/protocol/receiver.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/receiver.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/receiver.cpp.o.d"
  "/root/repo/src/protocol/scheduler.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/scheduler.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/scheduler.cpp.o.d"
  "/root/repo/src/protocol/sender.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/sender.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/sender.cpp.o.d"
  "/root/repo/src/protocol/tunnel.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/tunnel.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/tunnel.cpp.o.d"
  "/root/repo/src/protocol/wire.cpp" "src/protocol/CMakeFiles/mcss_protocol.dir/wire.cpp.o" "gcc" "src/protocol/CMakeFiles/mcss_protocol.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sss/CMakeFiles/mcss_sss.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mcss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mcss_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/mcss_field.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
