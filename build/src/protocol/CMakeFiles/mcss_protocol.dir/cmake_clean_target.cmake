file(REMOVE_RECURSE
  "libmcss_protocol.a"
)
