file(REMOVE_RECURSE
  "CMakeFiles/mcss_protocol.dir/dither.cpp.o"
  "CMakeFiles/mcss_protocol.dir/dither.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/micss.cpp.o"
  "CMakeFiles/mcss_protocol.dir/micss.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/receiver.cpp.o"
  "CMakeFiles/mcss_protocol.dir/receiver.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/scheduler.cpp.o"
  "CMakeFiles/mcss_protocol.dir/scheduler.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/sender.cpp.o"
  "CMakeFiles/mcss_protocol.dir/sender.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/tunnel.cpp.o"
  "CMakeFiles/mcss_protocol.dir/tunnel.cpp.o.d"
  "CMakeFiles/mcss_protocol.dir/wire.cpp.o"
  "CMakeFiles/mcss_protocol.dir/wire.cpp.o.d"
  "libmcss_protocol.a"
  "libmcss_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
