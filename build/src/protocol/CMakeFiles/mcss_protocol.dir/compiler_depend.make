# Empty compiler generated dependencies file for mcss_protocol.
# This may be replaced when dependencies are built.
