
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/mcss_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/lp_schedule.cpp" "src/core/CMakeFiles/mcss_core.dir/lp_schedule.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/lp_schedule.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/mcss_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/mcss_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/rate.cpp" "src/core/CMakeFiles/mcss_core.dir/rate.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/rate.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/mcss_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/subset_metrics.cpp" "src/core/CMakeFiles/mcss_core.dir/subset_metrics.cpp.o" "gcc" "src/core/CMakeFiles/mcss_core.dir/subset_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mcss_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
