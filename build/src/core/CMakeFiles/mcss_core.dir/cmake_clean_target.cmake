file(REMOVE_RECURSE
  "libmcss_core.a"
)
