file(REMOVE_RECURSE
  "CMakeFiles/mcss_core.dir/channel.cpp.o"
  "CMakeFiles/mcss_core.dir/channel.cpp.o.d"
  "CMakeFiles/mcss_core.dir/lp_schedule.cpp.o"
  "CMakeFiles/mcss_core.dir/lp_schedule.cpp.o.d"
  "CMakeFiles/mcss_core.dir/optimal.cpp.o"
  "CMakeFiles/mcss_core.dir/optimal.cpp.o.d"
  "CMakeFiles/mcss_core.dir/planner.cpp.o"
  "CMakeFiles/mcss_core.dir/planner.cpp.o.d"
  "CMakeFiles/mcss_core.dir/rate.cpp.o"
  "CMakeFiles/mcss_core.dir/rate.cpp.o.d"
  "CMakeFiles/mcss_core.dir/schedule.cpp.o"
  "CMakeFiles/mcss_core.dir/schedule.cpp.o.d"
  "CMakeFiles/mcss_core.dir/subset_metrics.cpp.o"
  "CMakeFiles/mcss_core.dir/subset_metrics.cpp.o.d"
  "libmcss_core.a"
  "libmcss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
