# Empty dependencies file for mcss_core.
# This may be replaced when dependencies are built.
