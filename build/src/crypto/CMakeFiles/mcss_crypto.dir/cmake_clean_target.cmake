file(REMOVE_RECURSE
  "libmcss_crypto.a"
)
