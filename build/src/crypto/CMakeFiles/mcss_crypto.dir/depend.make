# Empty dependencies file for mcss_crypto.
# This may be replaced when dependencies are built.
