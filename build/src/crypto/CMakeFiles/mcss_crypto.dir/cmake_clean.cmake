file(REMOVE_RECURSE
  "CMakeFiles/mcss_crypto.dir/siphash.cpp.o"
  "CMakeFiles/mcss_crypto.dir/siphash.cpp.o.d"
  "libmcss_crypto.a"
  "libmcss_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
