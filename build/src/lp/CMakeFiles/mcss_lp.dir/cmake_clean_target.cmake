file(REMOVE_RECURSE
  "libmcss_lp.a"
)
