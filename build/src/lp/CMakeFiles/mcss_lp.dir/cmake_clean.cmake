file(REMOVE_RECURSE
  "CMakeFiles/mcss_lp.dir/simplex.cpp.o"
  "CMakeFiles/mcss_lp.dir/simplex.cpp.o.d"
  "libmcss_lp.a"
  "libmcss_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
