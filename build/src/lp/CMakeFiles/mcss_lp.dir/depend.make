# Empty dependencies file for mcss_lp.
# This may be replaced when dependencies are built.
