# Empty compiler generated dependencies file for mcss_risk.
# This may be replaced when dependencies are built.
