
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/risk/channel_risk.cpp" "src/risk/CMakeFiles/mcss_risk.dir/channel_risk.cpp.o" "gcc" "src/risk/CMakeFiles/mcss_risk.dir/channel_risk.cpp.o.d"
  "/root/repo/src/risk/hmm.cpp" "src/risk/CMakeFiles/mcss_risk.dir/hmm.cpp.o" "gcc" "src/risk/CMakeFiles/mcss_risk.dir/hmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
