file(REMOVE_RECURSE
  "libmcss_risk.a"
)
