file(REMOVE_RECURSE
  "CMakeFiles/mcss_risk.dir/channel_risk.cpp.o"
  "CMakeFiles/mcss_risk.dir/channel_risk.cpp.o.d"
  "CMakeFiles/mcss_risk.dir/hmm.cpp.o"
  "CMakeFiles/mcss_risk.dir/hmm.cpp.o.d"
  "libmcss_risk.a"
  "libmcss_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
