
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/gf256.cpp" "src/field/CMakeFiles/mcss_field.dir/gf256.cpp.o" "gcc" "src/field/CMakeFiles/mcss_field.dir/gf256.cpp.o.d"
  "/root/repo/src/field/gf65536.cpp" "src/field/CMakeFiles/mcss_field.dir/gf65536.cpp.o" "gcc" "src/field/CMakeFiles/mcss_field.dir/gf65536.cpp.o.d"
  "/root/repo/src/field/gf_linalg.cpp" "src/field/CMakeFiles/mcss_field.dir/gf_linalg.cpp.o" "gcc" "src/field/CMakeFiles/mcss_field.dir/gf_linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
