file(REMOVE_RECURSE
  "libmcss_field.a"
)
