# Empty compiler generated dependencies file for mcss_field.
# This may be replaced when dependencies are built.
