file(REMOVE_RECURSE
  "CMakeFiles/mcss_field.dir/gf256.cpp.o"
  "CMakeFiles/mcss_field.dir/gf256.cpp.o.d"
  "CMakeFiles/mcss_field.dir/gf65536.cpp.o"
  "CMakeFiles/mcss_field.dir/gf65536.cpp.o.d"
  "CMakeFiles/mcss_field.dir/gf_linalg.cpp.o"
  "CMakeFiles/mcss_field.dir/gf_linalg.cpp.o.d"
  "libmcss_field.a"
  "libmcss_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcss_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
