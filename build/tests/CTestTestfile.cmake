# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_sss[1]_include.cmake")
include("/root/repo/build/tests/test_sss_extra[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_core_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_core_rate[1]_include.cmake")
include("/root/repo/build/tests/test_core_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_core_lp[1]_include.cmake")
include("/root/repo/build/tests/test_core_property[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_wire[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_risk[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_tunnel[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
