file(REMOVE_RECURSE
  "CMakeFiles/test_core_rate.dir/core_rate_test.cpp.o"
  "CMakeFiles/test_core_rate.dir/core_rate_test.cpp.o.d"
  "test_core_rate"
  "test_core_rate.pdb"
  "test_core_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
