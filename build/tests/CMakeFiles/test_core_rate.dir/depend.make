# Empty dependencies file for test_core_rate.
# This may be replaced when dependencies are built.
