file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_wire.dir/protocol_wire_test.cpp.o"
  "CMakeFiles/test_protocol_wire.dir/protocol_wire_test.cpp.o.d"
  "test_protocol_wire"
  "test_protocol_wire.pdb"
  "test_protocol_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
