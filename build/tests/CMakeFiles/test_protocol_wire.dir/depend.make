# Empty dependencies file for test_protocol_wire.
# This may be replaced when dependencies are built.
