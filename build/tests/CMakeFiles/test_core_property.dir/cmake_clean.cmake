file(REMOVE_RECURSE
  "CMakeFiles/test_core_property.dir/core_property_test.cpp.o"
  "CMakeFiles/test_core_property.dir/core_property_test.cpp.o.d"
  "test_core_property"
  "test_core_property.pdb"
  "test_core_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
