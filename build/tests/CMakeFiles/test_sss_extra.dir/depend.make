# Empty dependencies file for test_sss_extra.
# This may be replaced when dependencies are built.
