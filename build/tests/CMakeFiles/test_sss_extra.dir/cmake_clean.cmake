file(REMOVE_RECURSE
  "CMakeFiles/test_sss_extra.dir/sss_extra_test.cpp.o"
  "CMakeFiles/test_sss_extra.dir/sss_extra_test.cpp.o.d"
  "test_sss_extra"
  "test_sss_extra.pdb"
  "test_sss_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sss_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
