file(REMOVE_RECURSE
  "CMakeFiles/test_core_lp.dir/core_lp_test.cpp.o"
  "CMakeFiles/test_core_lp.dir/core_lp_test.cpp.o.d"
  "test_core_lp"
  "test_core_lp.pdb"
  "test_core_lp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
