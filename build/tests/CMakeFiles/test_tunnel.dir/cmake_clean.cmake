file(REMOVE_RECURSE
  "CMakeFiles/test_tunnel.dir/tunnel_test.cpp.o"
  "CMakeFiles/test_tunnel.dir/tunnel_test.cpp.o.d"
  "test_tunnel"
  "test_tunnel.pdb"
  "test_tunnel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
