
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/test_workload.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/risk/CMakeFiles/mcss_risk.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/mcss_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/sss/CMakeFiles/mcss_sss.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/mcss_field.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mcss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mcss_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
