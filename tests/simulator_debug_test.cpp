// Standalone _GLIBCXX_DEBUG regression test for the simulator core.
//
// The original event queue was a std::priority_queue popped via
// std::move(const_cast<Event&>(queue_.top())) — undefined behavior that
// libstdc++'s debug mode flags (mutating through a const reference into
// a container invalidates the heap's ordering invariants). The simulator
// now extracts from its own binary heap; this binary exercises the same
// push/pop/cascade patterns with debug-mode container checks on. It is
// assert-based and compiles src/net/simulator.cpp directly because
// _GLIBCXX_DEBUG changes container ABI: linking the prebuilt library or
// gtest would mix incompatible layouts.
#undef NDEBUG
#include <cassert>
#include <cstdint>
#include <vector>

#include "net/simulator.hpp"
#include "util/ensure.hpp"

using mcss::net::SimTime;
using mcss::net::Simulator;

namespace {

void ordering_and_ties() {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(20, [&] { order.push_back(4); });
  sim.run();
  assert((order == std::vector<int>{1, 2, 4, 3}));
  assert(sim.now() == 30);
}

void reentrant_cascades() {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_at(10, [&] {
      ++fired;
      sim.schedule_at(10, [&] { ++fired; });
    });
  });
  sim.run_until(10);
  assert(fired == 3);
  assert(sim.now() == 10);
}

void heavy_interleaved_churn() {
  // Many pushes racing pops through run_before windows: the pattern that
  // scrambled the old const_cast heap hardest.
  Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = (i * 7919) % 1000;
    sim.schedule_at(t, [&sim, &fired, t] {
      ++fired;
      if (t + 500 < 1000) sim.schedule_at(t + 500, [&fired] { ++fired; });
    });
  }
  SimTime window = 0;
  std::uint64_t processed = 0;
  while (sim.pending() > 0) {
    window += 100;
    processed += sim.run_before(window);
  }
  assert(processed == fired);
  assert(fired > 2000);
}

void run_before_boundary() {
  Simulator sim;
  int at_boundary = 0;
  sim.schedule_at(5, [] {});
  sim.schedule_at(10, [&] { ++at_boundary; });
  const std::uint64_t n = sim.run_before(10);
  assert(n == 1);
  assert(at_boundary == 0);
  assert(sim.now() == 5);
  sim.run();
  assert(at_boundary == 1);
}

void rejects_past() {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  bool threw = false;
  try {
    sim.schedule_at(5, [] {});
  } catch (const mcss::PreconditionError&) {
    threw = true;
  }
  assert(threw);
}

}  // namespace

int main() {
  ordering_and_ties();
  reentrant_cascades();
  heavy_interleaved_churn();
  run_before_boundary();
  rejects_past();
  return 0;
}
