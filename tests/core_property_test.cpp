// Randomized property suite for the model: invariants that must hold for
// ANY channel set, not just the paper's testbeds. Complements the
// example-based tests in core_*_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/channel.hpp"
#include "core/lp_schedule.hpp"
#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "core/schedule.hpp"
#include "core/subset_metrics.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

ChannelSet random_channels(Rng& rng, int n) {
  std::vector<Channel> cs;
  for (int i = 0; i < n; ++i) {
    cs.push_back({rng.uniform(), rng.uniform(0.0, 0.8), rng.uniform(0.0, 30.0),
                  rng.uniform(0.5, 200.0)});
  }
  return ChannelSet(std::move(cs));
}

/// A random valid schedule with EXACT marginals (kappa, mu): mix two
/// Theorem 5 constructions taken over different channel orderings. The
/// mixture of schedules with equal marginals keeps them.
ShareSchedule random_schedule(const ChannelSet& c, double kappa, double mu,
                              Rng& rng) {
  const auto base = limited_schedule_for(c, kappa, mu);
  // Second component: the same (k, m) atoms over REVERSED channel subsets.
  std::vector<ScheduleEntry> mixed;
  const double alpha = rng.uniform(0.2, 0.8);
  for (const auto& e : base.entries()) {
    mixed.push_back({e.k, e.channels, e.probability * alpha});
    // Mirror the subset: channels (n-1-i) for each member i.
    Mask mirrored = 0;
    for_each_member(e.channels, [&](int i) {
      mirrored |= Mask{1} << (c.size() - 1 - i);
    });
    mixed.push_back({e.k, mirrored, e.probability * (1.0 - alpha)});
  }
  return ShareSchedule(c, std::move(mixed));
}

class RandomModelTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_ = Rng(static_cast<std::uint64_t>(5000 + GetParam()));
    n_ = 3 + static_cast<int>(rng_.uniform_int(5));  // 3..7 channels
    channels_.emplace(random_channels(rng_, n_));
  }
  Rng rng_{0};
  int n_ = 0;
  std::optional<ChannelSet> channels_;
};

TEST_P(RandomModelTest, MetricsAreProbabilitiesAndOrdered) {
  const auto& c = *channels_;
  for (int k = 1; k <= n_; ++k) {
    const double z = subset_risk(c, k, c.all());
    const double l = subset_loss(c, k, c.all());
    EXPECT_GE(z, 0.0);
    EXPECT_LE(z, 1.0);
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
    EXPECT_GE(subset_delay(c, k, c.all()), 0.0);
  }
}

TEST_P(RandomModelTest, GrowingMWithFixedKNeverHurtsLossOrRisk) {
  // Adding a channel to M at fixed k: loss can only fall (more chances to
  // deliver k shares) and risk can only rise (more chances to observe k).
  const auto& c = *channels_;
  Mask m = 0b111;  // start from three channels
  for (int extra = 3; extra < n_; ++extra) {
    const Mask grown = m | (Mask{1} << extra);
    for (int k = 1; k <= 3; ++k) {
      EXPECT_LE(subset_loss(c, k, grown), subset_loss(c, k, m) + 1e-12);
      EXPECT_GE(subset_risk(c, k, grown), subset_risk(c, k, m) - 1e-12);
    }
    m = grown;
  }
}

TEST_P(RandomModelTest, ScheduleMetricsAreLinearInTheMixture) {
  // Z/L/D of a mixture equal the mixture of Z/L/D — the property that
  // makes the paper's optimization a LINEAR program.
  const auto& c = *channels_;
  const auto span = static_cast<double>(n_ - 1);
  const auto p = random_schedule(c, 1.0 + 0.2 * span, 1.0 + 0.5 * span, rng_);
  const auto q = random_schedule(c, 1.0 + 0.6 * span, 1.0 + 0.9 * span, rng_);
  const double alpha = rng_.uniform(0.1, 0.9);
  std::vector<ScheduleEntry> blended;
  for (const auto& e : p.entries()) {
    blended.push_back({e.k, e.channels, e.probability * alpha});
  }
  for (const auto& e : q.entries()) {
    blended.push_back({e.k, e.channels, e.probability * (1.0 - alpha)});
  }
  const ShareSchedule mix(c, std::move(blended));
  EXPECT_NEAR(schedule_risk(c, mix),
              alpha * schedule_risk(c, p) + (1 - alpha) * schedule_risk(c, q),
              1e-9);
  EXPECT_NEAR(schedule_loss(c, mix),
              alpha * schedule_loss(c, p) + (1 - alpha) * schedule_loss(c, q),
              1e-9);
  EXPECT_NEAR(schedule_delay(c, mix),
              alpha * schedule_delay(c, p) + (1 - alpha) * schedule_delay(c, q),
              1e-9);
  EXPECT_NEAR(mix.kappa(), alpha * p.kappa() + (1 - alpha) * q.kappa(), 1e-9);
  EXPECT_NEAR(mix.mu(), alpha * p.mu() + (1 - alpha) * q.mu(), 1e-9);
}

TEST_P(RandomModelTest, LpNeverLosesToARandomScheduleWithSameMarginals) {
  const auto& c = *channels_;
  const double kappa = 1.0 + rng_.uniform() * (n_ - 1);
  const double mu = kappa + rng_.uniform() * (n_ - kappa);
  const auto contender = random_schedule(c, kappa, mu, rng_);
  for (const auto objective : {Objective::Risk, Objective::Loss, Objective::Delay}) {
    const auto lp = solve_schedule_lp(
        c, {.objective = objective, .kappa = kappa, .mu = mu});
    ASSERT_EQ(lp.status, lp::Status::Optimal);
    double contender_value = 0.0;
    switch (objective) {
      case Objective::Risk:
        contender_value = schedule_risk(c, contender);
        break;
      case Objective::Loss:
        contender_value = schedule_loss(c, contender);
        break;
      case Objective::Delay:
        contender_value = schedule_delay(c, contender);
        break;
    }
    EXPECT_LE(lp.objective_value, contender_value + 1e-7)
        << "objective " << static_cast<int>(objective) << " kappa " << kappa
        << " mu " << mu;
  }
}

TEST_P(RandomModelTest, GlobalOptimaBoundTheLpEverywhere) {
  // Z_C, L_C, D_C are the best over ALL schedules; any constrained LP
  // solution respects them.
  const auto& c = *channels_;
  const double kappa = 1.0 + rng_.uniform() * (n_ - 1);
  const double mu = kappa + rng_.uniform() * (n_ - kappa);
  const auto risk_lp = solve_schedule_lp(
      c, {.objective = Objective::Risk, .kappa = kappa, .mu = mu});
  const auto loss_lp = solve_schedule_lp(
      c, {.objective = Objective::Loss, .kappa = kappa, .mu = mu});
  const auto delay_lp = solve_schedule_lp(
      c, {.objective = Objective::Delay, .kappa = kappa, .mu = mu});
  ASSERT_EQ(risk_lp.status, lp::Status::Optimal);
  EXPECT_GE(risk_lp.objective_value, optimal_risk(c) - 1e-9);
  EXPECT_GE(loss_lp.objective_value, optimal_loss(c) - 1e-9);
  // Delay's unconditional floor is min_i d_i, NOT D_C: conditional delay
  // of a fastest-channel singleton undercuts D_C (see optimal.hpp note).
  std::vector<double> delays = c.delays();
  EXPECT_GE(delay_lp.objective_value,
            *std::min_element(delays.begin(), delays.end()) - 1e-7);
}

TEST_P(RandomModelTest, RateIsMonotoneWithCorrectEndpoints) {
  // On each Theorem 4 segment R = prefix / (mu - n + |S|), so dR/dmu =
  // -R / (mu - n + |S|): steep (the denominator can approach 0) but
  // always NEGATIVE, and bounded below by Theorem 1 everywhere.
  const auto& c = *channels_;
  double prev = optimal_rate(c, 1.0);
  EXPECT_NEAR(prev, c.total_rate(), 1e-9);  // mu = 1: everything in parallel
  for (double mu = 1.0; mu < n_ - 0.011; mu += 0.01) {
    const double next = optimal_rate(c, mu + 0.01);
    EXPECT_LE(next, prev + 1e-9);  // monotone nonincreasing
    EXPECT_GE(next, rate_lower_bound(c, mu + 0.01) - 1e-9);  // Theorem 1
    prev = next;
  }
  // Lower endpoint at mu = n: the slowest channel paces every symbol.
  std::vector<double> rates = c.rates();
  EXPECT_NEAR(optimal_rate(c, static_cast<double>(n_)),
              *std::min_element(rates.begin(), rates.end()), 1e-9);
}

TEST_P(RandomModelTest, MaxRateLpIsExactlyFeasibleAtTheorem4Rate) {
  const auto& c = *channels_;
  const double mu = 1.0 + rng_.uniform() * (n_ - 1);
  const double kappa = 1.0 + rng_.uniform() * (mu - 1.0);
  const auto lp = solve_schedule_lp(c, {.objective = Objective::Risk,
                                        .kappa = kappa,
                                        .mu = mu,
                                        .rate = RateConstraint::MaxRate});
  ASSERT_EQ(lp.status, lp::Status::Optimal)
      << "IV-D must be feasible for every valid (kappa, mu): Theorem 5";
  const auto u = utilization(c, mu);
  for (int i = 0; i < n_; ++i) {
    EXPECT_NEAR(lp.schedule->channel_usage(i),
                u.fraction[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST_P(RandomModelTest, DitheredIntegerPairsAverageToAnyValidPoint) {
  // The protocol-side counterpart of Theorem 5 over random channel sets.
  const double kappa = 1.0 + rng_.uniform() * (n_ - 1);
  const double mu = kappa + rng_.uniform() * (n_ - kappa);
  const auto schedule = limited_schedule_for(*channels_, kappa, mu);
  EXPECT_NEAR(schedule.kappa(), kappa, 1e-9);
  EXPECT_NEAR(schedule.mu(), mu, 1e-9);
  EXPECT_TRUE(schedule.is_limited());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace mcss
