// Tests for the reliability subsystem (src/feedback): the report wire
// format, the receiver-side ReportBuilder, the RetransmitManager (RTO,
// Karn, backoff budget, replay, exposure accounting), the proactive
// redundancy planner, and the ReliableLink end-to-end simulator glue.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "feedback/redundancy.hpp"
#include "feedback/reliable_link.hpp"
#include "feedback/report.hpp"
#include "feedback/report_builder.hpp"
#include "feedback/retransmit.hpp"
#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "protocol/wire.hpp"
#include "sss/shamir.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::feedback {
namespace {

const crypto::SipHashKey kKey{1, 2,  3,  4,  5,  6,  7,  8,
                              9, 10, 11, 12, 13, 14, 15, 16};

ReceiverReport sample_report() {
  ReceiverReport r;
  r.seq = 7;
  r.receiver_time_ns = 123'456'789;
  r.packets_delivered = 42;
  r.sack_base = 17;
  r.sack = {0xDEADBEEFCAFEF00DULL, 0x1ULL};
  r.channels = {{100, 2}, {250, 0}, {9, 9}};
  r.delays = {{17, 1'000'000}, {18, 2'000'000}};
  return r;
}

// ------------------------------------------------------------ report codec

TEST(ReportCodec, RoundtripBasic) {
  const auto r = sample_report();
  const auto bytes = encode_report(r);
  EXPECT_EQ(bytes.size(), kReportHeaderSize + 8 * r.sack.size() +
                              16 * r.channels.size() + 16 * r.delays.size());
  const auto back = decode_report(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

TEST(ReportCodec, RoundtripMinimal) {
  ReceiverReport r;
  r.seq = 1;
  r.sack_base = 1;
  r.channels = {{0, 0}};  // one channel, nothing else
  const auto back = decode_report(encode_report(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
  EXPECT_TRUE(back->sack.empty());
  EXPECT_TRUE(back->delays.empty());
}

TEST(ReportCodec, SackAckSemantics) {
  ReceiverReport r;
  r.sack_base = 100;
  r.sack = {0b101};  // ids 100 and 102
  EXPECT_TRUE(r.acked(100));
  EXPECT_FALSE(r.acked(101));
  EXPECT_TRUE(r.acked(102));
  EXPECT_FALSE(r.acked(99));    // below the base: unknown, not negative
  EXPECT_FALSE(r.acked(164));   // beyond the window
}

TEST(ReportCodec, AuthenticatedRoundtripAndTamperRejection) {
  const auto r = sample_report();
  auto bytes = encode_report(r, &kKey);
  EXPECT_EQ(bytes.size(),
            kReportHeaderSize + 8 * r.sack.size() + 16 * r.channels.size() +
                16 * r.delays.size() + proto::kTagSize);

  const auto back = decode_report(bytes, &kKey);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);

  // A keyless consumer parses the tagged report, ignoring the tag
  // (mirrors the share codec's convention).
  EXPECT_TRUE(decode_report(bytes).has_value());

  // One flipped bit anywhere in the body fails authentication.
  auto tampered = bytes;
  tampered[kReportHeaderSize + 3] ^= 0x10;
  proto::DecodeStatus status = proto::DecodeStatus::Ok;
  EXPECT_FALSE(decode_report(tampered, &kKey, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::AuthFailed);

  // A keyed consumer refuses unauthenticated reports (downgrade).
  const auto untagged = encode_report(r);
  EXPECT_FALSE(decode_report(untagged, &kKey, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::AuthFailed);
}

TEST(ReportCodec, RejectsMalformed) {
  const auto good = encode_report(sample_report());
  proto::DecodeStatus status = proto::DecodeStatus::Ok;

  // Too short for a header.
  EXPECT_FALSE(
      decode_report(std::vector<std::uint8_t>(kReportHeaderSize - 1, 0),
                    nullptr, &status)
          .has_value());
  EXPECT_EQ(status, proto::DecodeStatus::Malformed);
  // Bad magic / version.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = good;
  bad[2] = 9;
  EXPECT_FALSE(decode_report(bad).has_value());
  // Unknown flag bits (0x01 = authenticated and 0x02 = connection id
  // are defined; 0x04 is the first reserved bit).
  bad = good;
  bad[3] = 0x04;
  EXPECT_FALSE(decode_report(bad).has_value());
  // Connection flag set without the 4 id bytes: truncated report.
  bad = good;
  bad[3] = kReportFlagConnection;
  EXPECT_FALSE(decode_report(bad).has_value());
  // Channel count out of range (0 and > 32).
  bad = good;
  bad[4] = 0;
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = good;
  bad[4] = 33;
  EXPECT_FALSE(decode_report(bad).has_value());
  // SACK word count over the wire limit.
  bad = good;
  bad[6] = 0xFF;
  bad[7] = 0xFF;
  EXPECT_FALSE(decode_report(bad).has_value());
  // Truncated body and trailing junk (strict decode).
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(decode_report(bad).has_value());
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode_report(bad).has_value());
  // The untouched report still parses.
  EXPECT_TRUE(decode_report(good).has_value());
}

TEST(ReportCodec, EncodeRejectsOverWireLimits) {
  ReceiverReport r;
  r.channels.clear();  // zero channels
  EXPECT_THROW((void)encode_report(r), PreconditionError);
  r.channels.assign(kMaxReportChannels + 1, {});
  EXPECT_THROW((void)encode_report(r), PreconditionError);
  r.channels.assign(1, {});
  r.sack.assign(kMaxSackWords + 1, 0);
  EXPECT_THROW((void)encode_report(r), PreconditionError);
  r.sack.clear();
  r.delays.assign(kMaxDelaySamples + 1, {});
  EXPECT_THROW((void)encode_report(r), PreconditionError);
}

TEST(ReportCodec, PrefixParsesCoalescedReports) {
  auto r1 = sample_report();
  ReceiverReport r2;
  r2.seq = 8;
  r2.sack_base = 1;
  r2.channels = {{1, 0}};
  std::vector<std::uint8_t> buf = encode_report(r1);
  const std::size_t first_size = buf.size();
  const auto b2 = encode_report(r2);
  buf.insert(buf.end(), b2.begin(), b2.end());

  std::size_t consumed = 0;
  auto parsed = decode_report_prefix(buf, &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r1);
  EXPECT_EQ(consumed, first_size);
  parsed = decode_report_prefix(std::span(buf).subspan(consumed), &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r2);

  // A malformed head consumes nothing: no resynchronization point.
  std::vector<std::uint8_t> junk(64, 0x55);
  consumed = 99;
  EXPECT_FALSE(decode_report_prefix(junk, &consumed).has_value());
  EXPECT_EQ(consumed, 0u);
}

TEST(ReportCodec, ConnectionIdRoundtrip) {
  auto r = sample_report();
  r.connection_id = 0xC0FFEE;
  const auto bytes = encode_report(r);
  EXPECT_EQ(bytes.size(), kReportHeaderSize + kReportConnectionIdSize +
                              8 * r.sack.size() + 16 * r.channels.size() +
                              16 * r.delays.size());
  EXPECT_EQ(bytes[3], kReportFlagConnection);
  const auto back = decode_report(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);

  // Authenticated: the tag covers the connection id — a forged demux
  // would let one flow's report ack another flow's packets.
  auto tagged = encode_report(r, &kKey);
  ASSERT_TRUE(decode_report(tagged, &kKey).has_value());
  tagged[kReportHeaderSize] ^= 0x01;  // first connection-id byte
  proto::DecodeStatus status = proto::DecodeStatus::Ok;
  EXPECT_FALSE(decode_report(tagged, &kKey, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::AuthFailed);
}

TEST(ReportCodec, ConnectionZeroIsByteIdenticalToLegacyEncoding) {
  // Single-flow reports must not change on the wire just because the
  // session layer exists: connection 0 omits the field.
  auto r = sample_report();
  ASSERT_EQ(r.connection_id, 0u);
  const auto bytes = encode_report(r);
  EXPECT_EQ(bytes[3], 0);  // no flag bits
  const auto back = decode_report(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->connection_id, 0u);
}

TEST(ReportCodec, NonCanonicalConnectionZeroRejected) {
  auto r = sample_report();
  r.connection_id = 1;
  auto bytes = encode_report(r);
  ASSERT_EQ(bytes[3], kReportFlagConnection);
  for (std::size_t i = 0; i < kReportConnectionIdSize; ++i) {
    bytes[kReportHeaderSize + i] = 0;  // id -> 0, flag still set
  }
  proto::DecodeStatus status = proto::DecodeStatus::Ok;
  EXPECT_FALSE(decode_report(bytes, nullptr, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::Malformed);
}

TEST(ReportCodec, RandomizedRoundtrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    ReceiverReport r;
    r.connection_id = static_cast<std::uint32_t>(rng.uniform_int(3) == 0
                                                     ? 0
                                                     : (rng() & 0xFFFFFFFF));
    r.seq = rng();
    r.receiver_time_ns = static_cast<std::int64_t>(rng() >> 1);
    r.packets_delivered = rng();
    r.sack_base = rng();
    r.sack.resize(rng.uniform_int(40));
    for (auto& w : r.sack) w = rng();
    r.channels.resize(1 + rng.uniform_int(kMaxReportChannels));
    for (auto& c : r.channels) c = {rng(), rng()};
    r.delays.resize(rng.uniform_int(11));
    for (auto& d : r.delays) {
      d = {rng(), static_cast<std::int64_t>(rng() >> 1)};
    }
    const bool keyed = rng.uniform_int(2) == 0;
    const auto bytes = encode_report(r, keyed ? &kKey : nullptr);
    const auto back = decode_report(bytes, keyed ? &kKey : nullptr);
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    EXPECT_EQ(*back, r) << "trial " << trial;
  }
}

TEST(ReportCodec, OneWayDelayDefinition) {
  EXPECT_DOUBLE_EQ(one_way_delay_seconds(1'000'000'000, 1'250'000'000), 0.25);
  // Serialization time excluded (the model's d is propagation only)...
  EXPECT_DOUBLE_EQ(one_way_delay_seconds(0, 300'000'000, 0.1), 0.2);
  // ...and clamped at zero rather than going negative.
  EXPECT_DOUBLE_EQ(one_way_delay_seconds(0, 50'000'000, 0.1), 0.0);
}

// ----------------------------------------------------------- ReportBuilder

TEST(ReportBuilder, SackAndCountersAccumulate) {
  ReportBuilder builder({.num_channels = 2});
  builder.on_channel_frame(0, true);
  builder.on_channel_frame(0, false);  // arrived but undecodable
  builder.on_channel_frame(1, true);
  builder.on_delivered(1, 10);
  builder.on_delivered(3, 20);

  EXPECT_TRUE(builder.acked(1));
  EXPECT_FALSE(builder.acked(2));
  EXPECT_TRUE(builder.acked(3));

  const auto r1 = builder.build(100);
  EXPECT_EQ(r1.seq, 1u);
  EXPECT_EQ(r1.receiver_time_ns, 100);
  EXPECT_EQ(r1.packets_delivered, 2u);
  EXPECT_TRUE(r1.acked(1));
  EXPECT_FALSE(r1.acked(2));
  EXPECT_TRUE(r1.acked(3));
  ASSERT_EQ(r1.channels.size(), 2u);
  EXPECT_EQ(r1.channels[0], (ChannelCounters{2, 1}));
  EXPECT_EQ(r1.channels[1], (ChannelCounters{1, 0}));
  ASSERT_EQ(r1.delays.size(), 2u);
  EXPECT_EQ(r1.delays[0], (DelaySample{1, 10}));

  // Reports are cumulative: the next build restates SACK and counters,
  // but delay samples were drained.
  const auto r2 = builder.build(200);
  EXPECT_EQ(r2.seq, 2u);
  EXPECT_TRUE(r2.acked(1));
  EXPECT_EQ(r2.channels[0], (ChannelCounters{2, 1}));
  EXPECT_TRUE(r2.delays.empty());
  EXPECT_EQ(builder.reports_built(), 2u);
}

TEST(ReportBuilder, WindowSlidesForwardInWordSteps) {
  ReportBuilder builder({.num_channels = 1, .sack_window_words = 2});
  builder.on_delivered(1, 0);
  EXPECT_EQ(builder.sack_base(), 1u);
  // 128 ids fit; id 129 forces the window one word forward.
  builder.on_delivered(129, 0);
  EXPECT_GT(builder.sack_base(), 1u);
  EXPECT_FALSE(builder.acked(1));  // aged out
  EXPECT_TRUE(builder.acked(129));

  // A huge jump takes the full-clear path but keeps the new id acked.
  builder.on_delivered(1'000'000, 0);
  EXPECT_TRUE(builder.acked(1'000'000));
  EXPECT_FALSE(builder.acked(129));
  // The builder's view and the encoded report agree after the slides.
  const auto r = builder.build(0);
  EXPECT_TRUE(r.acked(1'000'000));
  EXPECT_FALSE(r.acked(129));
  EXPECT_EQ(r.packets_delivered, 3u);
}

TEST(ReportBuilder, DelayRingKeepsNewestSamples) {
  ReportBuilder builder({.num_channels = 1, .max_delay_samples = 4});
  for (std::uint64_t id = 1; id <= 10; ++id) {
    builder.on_delivered(id, static_cast<std::int64_t>(id) * 100);
  }
  const auto r = builder.build(0);
  ASSERT_EQ(r.delays.size(), 4u);
  EXPECT_EQ(r.delays.front().packet_id, 7u);  // oldest kept
  EXPECT_EQ(r.delays.back().packet_id, 10u);  // newest
}

// -------------------------------------------------------- RetransmitManager

ReceiverReport ack_report(std::uint64_t seq, std::uint64_t sack_base,
                          std::vector<std::uint64_t> acked_ids,
                          std::size_t num_channels = 1) {
  ReceiverReport r;
  r.seq = seq;
  r.sack_base = sack_base;
  r.sack.assign(4, 0);
  for (std::uint64_t id : acked_ids) {
    const std::uint64_t off = id - sack_base;
    r.sack[static_cast<std::size_t>(off / 64)] |= std::uint64_t{1}
                                                  << (off % 64);
  }
  r.channels.assign(num_channels, {});
  return r;
}

TEST(RetransmitManager, AckClosesPacketAndSamplesRtt) {
  RetransmitManager mgr({}, Rng(1));
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const std::vector<int> channels{0, 2};
  mgr.on_packet_sent(1, 2, payload, channels, 0);
  EXPECT_EQ(mgr.outstanding(), 1u);

  mgr.on_report(ack_report(1, 1, {1}), 100'000'000);  // acked at t=100ms
  EXPECT_EQ(mgr.outstanding(), 0u);
  EXPECT_EQ(mgr.stats().packets_acked, 1u);
  EXPECT_EQ(mgr.stats().rtt_samples, 1u);
  EXPECT_NEAR(mgr.srtt_s(), 0.1, 1e-9);
  // RFC 6298 first sample: RTO = R + max(granularity, 4 * R/2) = 300ms.
  EXPECT_EQ(mgr.current_rto_ns(), 300'000'000);

  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].packet_id, 1u);
  EXPECT_TRUE(closed[0].acked);
  EXPECT_EQ(closed[0].retransmits, 0);
  EXPECT_EQ(closed[0].initial_mask, 0b101u);
  EXPECT_EQ(closed[0].exposure_mask, 0b101u);
  EXPECT_TRUE(mgr.drain_closed().empty());  // drained
}

TEST(RetransmitManager, TimeoutRetransmitsUntilBudgetThenAbandons) {
  RetransmitConfig config;
  config.max_retransmits = 2;
  config.initial_rto_ns = 100'000'000;
  RetransmitManager mgr(config, Rng(3));
  std::vector<std::uint8_t> seen_generations;
  mgr.set_retransmit([&](std::uint64_t id, std::uint8_t generation,
                         const std::vector<std::uint8_t>& payload, int k) {
    EXPECT_EQ(id, 1u);
    EXPECT_EQ(k, 2);
    EXPECT_EQ(payload, (std::vector<std::uint8_t>{9, 9}));
    seen_generations.push_back(generation);
  });

  const std::vector<int> channels{0, 1};
  mgr.on_packet_sent(1, 2, std::vector<std::uint8_t>{9, 9}, channels, 0);
  std::int64_t now = 0;
  // Drive the RTO clock: each advance at the pending deadline fires one
  // retransmission until the budget is gone, then the packet is dropped.
  for (int round = 0; round < 3; ++round) {
    const auto deadline = mgr.next_deadline();
    ASSERT_TRUE(deadline.has_value());
    EXPECT_GT(*deadline, now);
    now = *deadline;
    mgr.advance(now);
  }
  EXPECT_FALSE(mgr.next_deadline().has_value());
  EXPECT_EQ(seen_generations, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(mgr.stats().retransmits, 2u);
  EXPECT_EQ(mgr.stats().packets_abandoned, 1u);
  EXPECT_EQ(mgr.outstanding(), 0u);

  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_FALSE(closed[0].acked);
  EXPECT_EQ(closed[0].retransmits, 2);
}

TEST(RetransmitManager, TrackingOnlyModeAbandonsAtFirstTimeout) {
  RetransmitConfig config;
  config.max_retransmits = 0;  // ARQ off: exposure/ack accounting only
  RetransmitManager mgr(config, Rng(3));
  bool retransmitted = false;
  mgr.set_retransmit([&](auto, auto, const auto&, auto) {
    retransmitted = true;
  });
  const std::vector<int> channels{0};
  mgr.on_packet_sent(1, 1, std::vector<std::uint8_t>{1}, channels, 0);
  mgr.advance(*mgr.next_deadline());
  EXPECT_FALSE(retransmitted);
  EXPECT_EQ(mgr.stats().packets_abandoned, 1u);
}

TEST(RetransmitManager, KarnRuleExcludesRetransmittedPackets) {
  RetransmitConfig config;
  config.initial_rto_ns = 100'000'000;
  RetransmitManager mgr(config, Rng(5));
  mgr.set_retransmit([](auto, auto, const auto&, auto) {});
  const std::vector<int> channels{0};
  mgr.on_packet_sent(1, 1, std::vector<std::uint8_t>{1}, channels, 0);
  mgr.advance(*mgr.next_deadline());  // one retransmission
  EXPECT_EQ(mgr.stats().retransmits, 1u);

  // The eventual ack closes the packet but its RTT (and one-way delay
  // samples) are ambiguous and must not train the estimator.
  auto report = ack_report(1, 1, {1});
  report.delays = {{1, 500'000'000}};
  mgr.on_report(report, 500'000'000);
  EXPECT_EQ(mgr.stats().packets_acked, 1u);
  EXPECT_EQ(mgr.stats().rtt_samples, 0u);
  EXPECT_EQ(mgr.stats().delay.count(), 0u);
}

TEST(RetransmitManager, DelaySamplesJoinSendStamps) {
  RetransmitManager mgr({}, Rng(5));
  const std::vector<int> channels{0};
  mgr.on_packet_sent(4, 1, std::vector<std::uint8_t>{1}, channels,
                     10'000'000);
  auto report = ack_report(1, 4, {4});
  report.delays = {{4, 35'000'000}};  // delivered 25ms after send
  mgr.on_report(report, 40'000'000);
  EXPECT_EQ(mgr.stats().delay.count(), 1u);
  EXPECT_NEAR(mgr.stats().delay.mean(), 0.025, 1e-9);
}

TEST(RetransmitManager, ReplayedAndStaleReportsDropped) {
  RetransmitManager mgr({}, Rng(7));
  const std::vector<int> channels{0};
  mgr.on_packet_sent(1, 1, std::vector<std::uint8_t>{1}, channels, 0);
  mgr.on_packet_sent(2, 1, std::vector<std::uint8_t>{2}, channels, 0);

  mgr.on_report(ack_report(5, 1, {1}), 1000);
  EXPECT_EQ(mgr.stats().packets_acked, 1u);
  // Replay of seq 5 and a reordered stale seq 4: both dropped wholesale,
  // even though seq 4 would have acked packet 2.
  mgr.on_report(ack_report(5, 1, {1}), 2000);
  mgr.on_report(ack_report(4, 1, {2}), 3000);
  EXPECT_EQ(mgr.stats().reports_replayed, 2u);
  EXPECT_EQ(mgr.stats().packets_acked, 1u);
  EXPECT_EQ(mgr.outstanding(), 1u);
}

TEST(RetransmitManager, DatagramPathCountsMalformedAndAuthFailures) {
  RetransmitManager mgr({}, Rng(9));
  // Garbage datagram.
  mgr.on_report_datagram(std::vector<std::uint8_t>(32, 0xAB), 0);
  EXPECT_EQ(mgr.stats().reports_malformed, 1u);
  // Unauthenticated report hitting a keyed manager.
  const auto untagged = encode_report(ack_report(1, 1, {}));
  mgr.on_report_datagram(untagged, 0, &kKey);
  EXPECT_EQ(mgr.stats().reports_auth_failed, 1u);
  // Two coalesced valid reports parse in one datagram.
  auto buf = encode_report(ack_report(1, 1, {}), &kKey);
  const auto second = encode_report(ack_report(2, 1, {}), &kKey);
  buf.insert(buf.end(), second.begin(), second.end());
  mgr.on_report_datagram(buf, 0, &kKey);
  EXPECT_EQ(mgr.stats().reports_received, 2u);
}

TEST(RetransmitManager, SurvivesAReportStorm) {
  // Malformed, truncated, tampered, replayed, and valid reports
  // interleaved at random must leave the manager consistent: every
  // datagram lands in exactly one counter bucket and acks only move
  // forward.
  RetransmitConfig config;
  config.max_retransmits = 0;
  RetransmitManager mgr(config, Rng(11));
  Rng rng(77);
  const std::vector<int> channels{0};
  for (std::uint64_t id = 1; id <= 64; ++id) {
    mgr.on_packet_sent(id, 1, std::vector<std::uint8_t>{1}, channels, 0);
  }

  std::uint64_t valid_sent = 0;
  for (int i = 0; i < 500; ++i) {
    auto bytes = encode_report(
        ack_report(1 + rng.uniform_int(40), 1, {1 + rng.uniform_int(64)}), &kKey);
    switch (rng.uniform_int(4)) {
      case 0:  // valid (possibly replayed seq)
        ++valid_sent;
        break;
      case 1:  // truncated
        bytes.resize(bytes.size() / 2);
        break;
      case 2:  // tampered body (auth failure)
        bytes[kReportHeaderSize - 1] ^= 0x40;
        break;
      case 3:  // garbage head
        bytes[0] ^= 0xFF;
        break;
    }
    mgr.on_report_datagram(bytes, static_cast<std::int64_t>(i), &kKey);
  }
  const auto& s = mgr.stats();
  EXPECT_EQ(s.reports_received, valid_sent);
  EXPECT_EQ(s.reports_received + s.reports_malformed + s.reports_auth_failed,
            500u);
  EXPECT_LE(s.reports_replayed, s.reports_received);
  EXPECT_LE(s.packets_acked, 64u);
  EXPECT_EQ(mgr.outstanding(), 64u - s.packets_acked);
}

TEST(RetransmitManager, OverflowDisplacesTheOldestPacket) {
  RetransmitConfig config;
  config.max_outstanding = 2;
  RetransmitManager mgr(config, Rng(13));
  const std::vector<int> channels{0};
  for (std::uint64_t id = 1; id <= 3; ++id) {
    mgr.on_packet_sent(id, 1, std::vector<std::uint8_t>{1}, channels, 0);
  }
  EXPECT_EQ(mgr.outstanding(), 2u);
  EXPECT_EQ(mgr.stats().packets_displaced, 1u);
  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].packet_id, 1u);
  EXPECT_FALSE(closed[0].acked);
}

TEST(RetransmitManager, ExposureUnionsAcrossRetransmissions) {
  RetransmitManager mgr({}, Rng(15));
  const std::vector<int> initial{0, 1};
  mgr.on_packet_sent(1, 2, std::vector<std::uint8_t>{1}, initial, 0);
  EXPECT_EQ(mgr.exposure_mask(1), 0b011u);
  const std::vector<int> retry{1, 2, 3};
  mgr.note_exposure(1, retry);
  EXPECT_EQ(mgr.exposure_mask(1), 0b1111u);

  mgr.on_report(ack_report(1, 1, {1}), 1000);
  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].initial_mask, 0b011u);
  EXPECT_EQ(closed[0].exposure_mask, 0b1111u);
  EXPECT_EQ(mgr.stats().initial_channel_sum, 2u);
  EXPECT_EQ(mgr.stats().exposure_channel_sum, 4u);

  // Telemetry counted every share: 2 initial + 3 on the retry.
  const auto& telemetry = mgr.channel_telemetry();
  ASSERT_EQ(telemetry.size(), 4u);
  EXPECT_EQ(telemetry[1].shares_sent, 2u);
  EXPECT_EQ(telemetry[3].shares_sent, 1u);
}

TEST(RetransmitManager, SnapshotOpenCoversInFlightPackets) {
  RetransmitManager mgr({}, Rng(17));
  const std::vector<int> channels{0, 1};
  mgr.on_packet_sent(1, 2, std::vector<std::uint8_t>{1}, channels, 0);
  mgr.on_packet_sent(2, 2, std::vector<std::uint8_t>{2}, channels, 0);
  const auto open = mgr.snapshot_open();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_FALSE(open[0].acked);
  EXPECT_EQ(open[0].exposure_mask, 0b011u);
  EXPECT_EQ(mgr.outstanding(), 2u);  // snapshot does not close
}

TEST(RetransmitManager, LinkMapUnionsAcrossRetransmissions) {
  RetransmitManager mgr({}, Rng(19));
  // ch0 -> links {0,1}, ch1 -> links {1,2}, ch2 -> link {3}.
  mgr.set_link_map({0b011, 0b110, 0b1000});
  const std::vector<int> initial{0};
  mgr.on_packet_sent(1, 1, std::vector<std::uint8_t>{1}, initial, 0);
  EXPECT_EQ(mgr.link_exposure(1), 0b011u);
  const std::vector<int> retry{1};
  mgr.note_exposure(1, retry);
  // Link 1 is shared between ch0 and ch1: the union adds only link 2.
  EXPECT_EQ(mgr.link_exposure(1), 0b111u);

  mgr.on_report(ack_report(1, 1, {1}), 1000);
  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].initial_link_mask, 0b011u);
  EXPECT_EQ(closed[0].link_exposure_mask, 0b111u);
  EXPECT_EQ(mgr.stats().initial_link_sum, 2u);
  EXPECT_EQ(mgr.stats().exposure_link_sum, 3u);
}

TEST(RetransmitManager, LinkMapInstallRequiresNothingOutstanding) {
  RetransmitManager mgr({}, Rng(21));
  const std::vector<int> channels{0};
  mgr.on_packet_sent(1, 1, std::vector<std::uint8_t>{1}, channels, 0);
  EXPECT_THROW(mgr.set_link_map({0b1}), PreconditionError);
  // Without a map installed, link fields stay zero-valued.
  mgr.on_report(ack_report(1, 1, {1}), 1000);
  const auto closed = mgr.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].initial_link_mask, 0u);
  EXPECT_EQ(mgr.stats().initial_link_sum, 0u);
  EXPECT_FALSE(mgr.link_exposure(2).has_value());  // unknown packet
  mgr.set_link_map({0b1});  // legal again once everything closed
}

// -------------------------------------------------------------- redundancy

ChannelSet eval_channels() {
  // loss-sorted order: 1 (.005), 0 (.01), 2 (.02), 3 (.06), 4 (.10)
  return ChannelSet{{.risk = 0.2, .loss = 0.01, .delay = 0.01, .rate = 500},
                    {.risk = 0.3, .loss = 0.005, .delay = 0.01, .rate = 2000},
                    {.risk = 0.1, .loss = 0.02, .delay = 0.02, .rate = 1500},
                    {.risk = 0.2, .loss = 0.06, .delay = 0.03, .rate = 1500},
                    {.risk = 0.4, .loss = 0.10, .delay = 0.05, .rate = 3000}};
}

TEST(Redundancy, PicksSmallestFeasibleSubset) {
  const auto model = eval_channels();
  const RedundancyPlan plan =
      plan_redundancy(model, {.k = 2, .target_delivery = 0.999});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.k, 2);
  // k=2 over the two best channels misses 0.999 (loss ~ 1.5e-2 pairwise
  // ... actually l(2,{0,1}) = 1-(1-.01)(1-.005) ~ .015); three channels
  // suffice: l(2, {0,1,2}) ~ 3.5e-4 <= 1e-3.
  EXPECT_EQ(plan.channels, (std::vector<int>{0, 1, 2}));
  EXPECT_LE(plan.predicted_loss, 0.001);
  EXPECT_GT(plan.predicted_risk, 0.0);
  // Adding channels only helps loss, so the planner stopped at the
  // smallest m; m-1 must be infeasible.
  const Mask two_best = 0b10 | 0b01;
  EXPECT_GT(subset_loss(model, 2, two_best), 0.001);
}

TEST(Redundancy, RateFilterExcludesSlowChannels) {
  const auto model = eval_channels();
  // Offered 1000 pkt/s excludes channel 0 (500/s): the plan must not
  // contain it even though it is among the lowest-loss channels.
  const RedundancyPlan plan = plan_redundancy(
      model, {.k = 2, .target_delivery = 0.999, .offered_pps = 1000.0});
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(std::find(plan.channels.begin(), plan.channels.end(), 0) ==
              plan.channels.end());
  EXPECT_GE(plan.channels.size(), 2u);
}

TEST(Redundancy, InfeasibleGoalReturnsBestEffortPlan) {
  ChannelSet lossy{{.risk = 0.1, .loss = 0.4, .delay = 0.01, .rate = 100},
                   {.risk = 0.1, .loss = 0.4, .delay = 0.01, .rate = 100}};
  const RedundancyPlan plan =
      plan_redundancy(lossy, {.k = 2, .target_delivery = 0.999999});
  EXPECT_FALSE(plan.feasible);
  // Best effort: every eligible channel, with honest predictions.
  EXPECT_EQ(plan.channels, (std::vector<int>{0, 1}));
  EXPECT_GT(plan.predicted_loss, 1.0 - 0.999999);

  // Fewer than k eligible channels: empty plan.
  const RedundancyPlan none = plan_redundancy(
      lossy, {.k = 2, .target_delivery = 0.9, .offered_pps = 1000.0});
  EXPECT_FALSE(none.feasible);
  EXPECT_TRUE(none.channels.empty());
}

TEST(ProactiveScheduler, WaitsUntilEveryPlanChannelIsReady) {
  RedundancyPlan plan;
  plan.k = 2;
  plan.channels = {0, 2, 3};
  ProactiveScheduler sched(plan);
  std::vector<proto::ChannelView> view{
      {true, 0}, {true, 0}, {false, 0}, {true, 0}};
  EXPECT_FALSE(sched.next(view).has_value());  // channel 2 not ready
  view[2].ready = true;
  view[1].ready = false;  // non-plan channel may be busy
  const auto d = sched.next(view);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->k, 2);
  EXPECT_EQ(d->channels, (std::vector<int>{0, 2, 3}));
}

// ------------------------------------------------------------ ReliableLink

struct ReliableTestbed {
  net::Simulator sim;
  std::vector<std::unique_ptr<net::SimChannel>> channels;
  std::unique_ptr<net::SimChannel> feedback;
  std::unique_ptr<proto::Receiver> receiver;
  std::unique_ptr<proto::Sender> sender;
  std::unique_ptr<ReliableLink> link;
  std::map<std::uint64_t, std::vector<std::uint8_t>> delivered;

  ReliableTestbed(std::vector<net::ChannelConfig> configs,
                  net::ChannelConfig feedback_config,
                  std::unique_ptr<proto::ShareScheduler> scheduler,
                  ReliableLinkConfig link_config, std::uint64_t seed) {
    Rng seeder(seed);
    std::vector<net::SimChannel*> raw;
    for (auto& cfg : configs) {
      channels.push_back(
          std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
      raw.push_back(channels.back().get());
    }
    feedback = std::make_unique<net::SimChannel>(sim, feedback_config,
                                                 seeder.fork());
    receiver = std::make_unique<proto::Receiver>(sim);
    sender = std::make_unique<proto::Sender>(sim, raw, std::move(scheduler),
                                             seeder.fork());
    link = std::make_unique<ReliableLink>(sim, *sender, *receiver, raw,
                                          *feedback, std::move(link_config),
                                          seeder.fork());
    link->set_deliver([this](std::uint64_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
  }
};

std::vector<net::ChannelConfig> lossy_channels(int n, double loss) {
  net::ChannelConfig cfg;
  cfg.rate_bps = 20e6;
  cfg.loss = loss;
  cfg.delay = net::from_millis(1);
  std::vector<net::ChannelConfig> v(static_cast<std::size_t>(n), cfg);
  return v;
}

ReliableLinkConfig arq_config() {
  ReliableLinkConfig cfg;
  cfg.retransmit.max_retransmits = 6;
  cfg.retransmit.initial_rto_ns = 100'000'000;
  cfg.retransmit.min_rto_ns = 30'000'000;
  cfg.report_interval = net::from_millis(20);
  cfg.retransmit_extra = 1;
  return cfg;
}

TEST(ReliableLink, ArqRecoversPacketsBestEffortLoses) {
  // kappa = mu = 2 on 5%-lossy channels leaves zero share slack: ~9.7%
  // of packets die without ARQ. The reliable link must recover
  // essentially all of them within the run's drain time.
  const int count = 300;
  ReliableTestbed t(lossy_channels(3, 0.05), {.rate_bps = 10e6, .loss = 0.1},
                    std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 3),
                    arq_config(), /*seed=*/21);
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 1000),
                      [&t] { (void)t.sender->send({1, 2, 3, 4}); });
  }
  t.sim.run_until(net::from_seconds(4.0));

  EXPECT_GE(t.delivered.size(), static_cast<std::size_t>(count) - 1)
      << "ARQ should deliver >= 99.9%";
  const auto& stats = t.link->manager().stats();
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.packets_acked, 0u);
  EXPECT_GT(stats.rtt_samples, 0u);
  EXPECT_GT(t.link->stats().reports_sent, 0u);
  // Retransmissions widen realized exposure beyond the initial plan.
  EXPECT_GE(stats.exposure_channel_sum, stats.initial_channel_sum);
}

TEST(ReliableLink, ExposureNeverShrinksAndCoversInitial) {
  ReliableTestbed t(lossy_channels(3, 0.08), {.rate_bps = 10e6},
                    std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 3),
                    arq_config(), /*seed=*/33);
  for (int i = 0; i < 200; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 1000),
                      [&t] { (void)t.sender->send({5, 6, 7}); });
  }
  t.sim.run_until(net::from_seconds(3.0));

  auto packets = t.link->manager().drain_closed();
  const auto open = t.link->manager().snapshot_open();
  packets.insert(packets.end(), open.begin(), open.end());
  ASSERT_EQ(packets.size(), 200u);
  for (const auto& p : packets) {
    EXPECT_EQ(p.exposure_mask & p.initial_mask, p.initial_mask)
        << "packet " << p.packet_id;
    if (p.retransmits == 0) {
      EXPECT_EQ(p.exposure_mask, p.initial_mask);
    }
  }
}

TEST(ReliableLink, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    ReliableTestbed t(lossy_channels(3, 0.05),
                      {.rate_bps = 10e6, .loss = 0.1},
                      std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 3),
                      arq_config(), seed);
    for (int i = 0; i < 100; ++i) {
      t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 1000),
                        [&t] { (void)t.sender->send({1, 2}); });
    }
    t.sim.run_until(net::from_seconds(2.0));
    return std::tuple{t.delivered.size(),
                      t.link->manager().stats().retransmits,
                      t.link->manager().stats().packets_acked,
                      t.link->manager().stats().exposure_channel_sum};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // the loss draws actually differ
}

/// Link-mode testbed: 4 lossless forward channels, a feedback channel
/// whose delay exceeds the whole run (no report ever returns, so every
/// RTO fires and the retransmit path runs a fixed number of times), one
/// packet. The
/// dynamic scheduler picks the least-backlogged ready channels — {0, 1}
/// at an idle start — so the initial link set is known exactly.
ClosedPacket one_packet_link_run(std::vector<std::uint64_t> masks,
                                 std::vector<double> link_risks,
                                 int retransmit_extra) {
  ReliableLinkConfig cfg;
  cfg.retransmit.max_retransmits = 2;
  cfg.retransmit.initial_rto_ns = 100'000'000;
  cfg.retransmit.min_rto_ns = 30'000'000;
  cfg.report_interval = net::from_millis(20);
  cfg.retransmit_extra = retransmit_extra;
  cfg.channel_link_masks = std::move(masks);
  cfg.link_risks = std::move(link_risks);
  ReliableTestbed t(lossy_channels(4, 0.0),
                    {.rate_bps = 10e6, .delay = net::from_seconds(10.0)},
                    std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 4),
                    std::move(cfg), /*seed=*/27);
  (void)t.sender->send({1, 2, 3});
  t.sim.run_until(net::from_seconds(2.0));
  EXPECT_EQ(t.link->manager().stats().retransmits, 2u);
  EXPECT_EQ(t.link->manager().stats().packets_abandoned, 1u);
  auto closed = t.link->manager().drain_closed();
  EXPECT_EQ(closed.size(), 1u);
  return closed.empty() ? ClosedPacket{} : closed[0];
}

TEST(ReliableLink, RetransmitReusesAlreadyExposedLinks) {
  // Channels 0/1 share link 0 and channels 2/3 share link 1: after the
  // initial send on {0, 1}, retransmitting over {0, 1} again is free
  // (the adversary tapping link 0 learned those shares already), so the
  // realized link union must never widen past the initial one.
  const auto p = one_packet_link_run({0b01, 0b01, 0b10, 0b10}, {0.5, 0.5},
                                     /*retransmit_extra=*/0);
  EXPECT_EQ(p.initial_link_mask, 0b01u);
  EXPECT_EQ(p.link_exposure_mask, 0b01u);
  EXPECT_EQ(p.retransmits, 2u);
}

TEST(ReliableLink, RetransmitAddsTheCheapestFreshLink) {
  // Disjoint single-link paths with retransmit_extra = 1 force one
  // fresh channel per retransmit: the pick must be channel 3 (added
  // link risk 0.01), not channel 2 (0.4), on top of the free {0, 1}.
  const auto p =
      one_packet_link_run({0b0001, 0b0010, 0b0100, 0b1000},
                          {0.5, 0.5, 0.4, 0.01}, /*retransmit_extra=*/1);
  EXPECT_EQ(p.initial_link_mask, 0b0011u);
  EXPECT_EQ(p.link_exposure_mask, 0b1011u);
  EXPECT_EQ(p.exposure_mask, 0b1011u);
}

TEST(ReliableLink, AuthenticatedReportsRejectForgeries) {
  ReliableLinkConfig cfg = arq_config();
  cfg.report_auth_key = kKey;
  ReliableTestbed t(lossy_channels(2, 0.0), {.rate_bps = 10e6},
                    std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 2),
                    std::move(cfg), /*seed=*/9);
  (void)t.sender->send({1, 2, 3});
  // A forged (unkeyed) report injected onto the feedback channel must be
  // rejected; the genuine keyed reports keep flowing.
  t.sim.schedule_at(net::from_millis(5), [&t] {
    (void)t.feedback->try_send(encode_report(ack_report(99, 1, {1})));
  });
  t.sim.run_until(net::from_seconds(0.5));
  EXPECT_EQ(t.link->manager().stats().reports_auth_failed, 1u);
  EXPECT_GT(t.link->manager().stats().reports_received, 0u);
  EXPECT_EQ(t.delivered.size(), 1u);
}

// --------------------------------------------- re-split + receiver behavior

TEST(Resend, FreshShareBytesStillReconstruct) {
  // The ISSUE's acceptance test: a retransmitted share must carry
  // DIFFERENT bytes than the original (fresh polynomial), and the
  // retransmitted generation alone must reconstruct the packet.
  net::Simulator sim;
  Rng seeder(51);
  std::vector<std::unique_ptr<net::SimChannel>> channels;
  std::vector<net::SimChannel*> raw;
  for (int i = 0; i < 2; ++i) {
    channels.push_back(std::make_unique<net::SimChannel>(
        sim, net::ChannelConfig{.rate_bps = 10e6}, seeder.fork()));
    raw.push_back(channels.back().get());
  }
  std::vector<std::vector<std::uint8_t>> captured;
  for (auto* ch : raw) {
    ch->set_receiver(
        [&](std::vector<std::uint8_t> f) { captured.push_back(std::move(f)); });
  }
  proto::Sender sender(
      sim, raw, std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 2),
      seeder.fork());

  const std::vector<std::uint8_t> payload{10, 20, 30, 40, 50};
  ASSERT_TRUE(sender.send(payload));
  sim.run();
  ASSERT_EQ(captured.size(), 2u);  // generation-0 shares
  const auto originals = captured;

  captured.clear();
  const std::vector<int> both{0, 1};
  sender.resend(1, 1, payload, 2, both);
  sim.run();
  ASSERT_EQ(captured.size(), 2u);  // generation-1 shares

  std::map<std::uint8_t, proto::ShareFrame> gen0, gen1;
  for (const auto& bytes : originals) {
    auto f = proto::decode(bytes);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->generation, 0);
    gen0[f->share_index] = *f;
  }
  for (const auto& bytes : captured) {
    auto f = proto::decode(bytes);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->generation, 1);
    gen1[f->share_index] = *f;
    // Same (packet, index) across generations -> different share bytes.
    if (gen0.contains(f->share_index)) {
      EXPECT_NE(gen0[f->share_index].payload, f->payload);
    }
  }
  EXPECT_EQ(sender.stats().packets_retransmitted, 1u);
  EXPECT_EQ(sender.stats().shares_retransmitted, 2u);

  // The retransmitted generation reconstructs on its own.
  proto::Receiver rx(sim);
  std::vector<std::uint8_t> out;
  rx.set_deliver(
      [&](std::uint64_t, std::vector<std::uint8_t> p) { out = std::move(p); });
  for (const auto& bytes : captured) {
    rx.on_frame(bytes);
  }
  EXPECT_EQ(out, payload);
}

TEST(Resend, ReceiverSupersedesOldGenerationAndDropsStale) {
  // Mixing generations must never happen: a newer generation restarts
  // reassembly, an older one is dropped as stale.
  net::Simulator sim;
  Rng rng(61);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  auto gen_frames = [&](std::uint8_t generation) {
    auto shares = sss::split(payload, 2, 2, rng);
    std::vector<std::vector<std::uint8_t>> frames;
    for (const auto& s : shares) {
      proto::ShareFrame f;
      f.packet_id = 1;
      f.k = 2;
      f.share_index = s.index;
      f.generation = generation;
      f.payload = s.data;
      frames.push_back(proto::encode(f));
    }
    return frames;
  };

  proto::Receiver rx(sim);
  std::vector<std::uint8_t> out;
  rx.set_deliver(
      [&](std::uint64_t, std::vector<std::uint8_t> p) { out = std::move(p); });

  const auto old_gen = gen_frames(1);
  const auto new_gen = gen_frames(2);
  rx.on_frame(old_gen[0]);       // partial starts at generation 1
  rx.on_frame(new_gen[0]);       // generation 2 supersedes it
  EXPECT_EQ(rx.stats().partials_superseded, 1u);
  rx.on_frame(old_gen[1]);       // stale generation-1 share: dropped
  EXPECT_EQ(rx.stats().stale_generation_shares, 1u);
  EXPECT_TRUE(out.empty());      // one share of generation 2 held
  rx.on_frame(new_gen[1]);       // completes generation 2
  EXPECT_EQ(out, payload);
}

}  // namespace
}  // namespace mcss::feedback
