// Tests for the routed topology layer (src/topo): Topology validation
// and link-mask math, the named factory setups, correlated vs
// independent subset risk, SimLink arithmetic, routed delivery through
// topo::Network on both DES backends, and the partitioned backend's
// thread-count determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "net/parallel_sim/partitioned_sim.hpp"
#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "topo/network.hpp"
#include "topo/sim_link.hpp"
#include "topo/topology.hpp"
#include "util/ensure.hpp"
#include "util/link_risk.hpp"
#include "util/rng.hpp"

namespace mcss::topo {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(unsigned n) { runtime::set_threads(n); }
  ~ThreadGuard() { runtime::set_threads(1); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
};

/// Two-hop chain source -> relay -> sink carrying every channel over
/// both links (the smallest fully-shared topology).
Topology chain(int channels, double tap_risk = 0.1) {
  Topology t;
  t.name = "chain";
  t.num_nodes = 3;
  t.source = 0;
  t.sink = 1;
  LinkSpec first;
  first.src = 0;
  first.dst = 2;
  first.delay = net::from_millis(1);
  first.tap_risk = tap_risk;
  LinkSpec second = first;
  second.src = 2;
  second.dst = 1;
  t.links = {first, second};
  for (int c = 0; c < channels; ++c) t.paths.push_back({0, 1});
  t.validate();
  return t;
}

// ------------------------------------------------------------ Topology

TEST(Topology, ValidateRejectsBrokenPaths) {
  Topology t = chain(1);
  t.paths[0] = {1, 0};  // not contiguous from the source
  EXPECT_THROW(t.validate(), PreconditionError);

  t = chain(1);
  t.paths[0] = {0};  // ends at the relay, not the sink
  EXPECT_THROW(t.validate(), PreconditionError);

  t = chain(1);
  t.paths[0] = {0, 0};  // reuses a link (and is not contiguous)
  EXPECT_THROW(t.validate(), PreconditionError);

  t = chain(1);
  t.links[0].loss = 1.0;
  EXPECT_THROW(t.validate(), PreconditionError);

  t = chain(1);
  t.links[1].tap_risk = 1.5;
  EXPECT_THROW(t.validate(), PreconditionError);
}

TEST(Topology, MasksDelaysAndSharedLinks) {
  const Topology t = shared_bottleneck(3, 0.05);
  EXPECT_EQ(t.num_channels(), 3);
  EXPECT_EQ(t.num_links(), 7);
  // Every path crosses link 0; private fan-out links are unshared.
  EXPECT_EQ(t.shared_links(), LinkMask{1});
  EXPECT_EQ(t.channel_link_mask(0), 0b0000111u);
  EXPECT_EQ(t.channel_link_mask(2), 0b1100001u);
  for (int c = 0; c < t.num_channels(); ++c) {
    EXPECT_EQ(t.path_delay(c), 3 * net::from_millis(5));
  }
  const auto marginals = t.marginal_risks();
  ASSERT_EQ(marginals.size(), 3u);
  for (const double z : marginals) {
    EXPECT_NEAR(z, 1.0 - 0.95 * 0.95 * 0.95, 1e-12);
  }

  EXPECT_EQ(disjoint_control(4).shared_links(), LinkMask{0});
  EXPECT_EQ(diamond(4).shared_links(), full_link_mask(4));
}

TEST(Topology, DisjointControlMatchesPoissonBinomialExactly) {
  const Topology t = disjoint_control(4, 0.07);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(t.correlated_z(k), t.independent_z(k), 1e-15) << "k=" << k;
  }
}

TEST(Topology, SharedLinksMakeTheCatastrophicTailStrictlyWorse) {
  for (const Topology& t :
       {diamond(4, 0.05), shared_bottleneck(4, 0.05),
        multihomed_wan(4, 0.05)}) {
    EXPECT_GT(t.correlated_z(4), t.independent_z(4)) << t.name;
  }
  // Fully shared chain: one tapped link exposes everything, so
  // z(k) is the same for every k and equals P(any link tapped).
  const Topology c = chain(3, 0.1);
  const double any = 1.0 - 0.9 * 0.9;
  for (int k = 1; k <= 3; ++k) EXPECT_NEAR(c.correlated_z(k), any, 1e-15);
  EXPECT_LT(c.independent_z(3), c.correlated_z(3));
}

// ------------------------------------------------------------- SimLink

TEST(SimLink, SerializesTagsChannelsAndTailDrops) {
  net::Simulator sim;
  LinkSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.rate_bps = 8e6;  // 1000 bytes = 1 ms on the serializer
  spec.delay = 0;
  spec.queue_capacity_bytes = 2500;
  SimLink link(sim, spec, Rng(3), /*id=*/0);
  std::vector<std::tuple<int, net::SimTime>> departures;
  link.set_depart([&](int channel, std::vector<std::uint8_t>) {
    departures.emplace_back(channel, sim.now());
  });
  EXPECT_TRUE(link.try_send(4, std::vector<std::uint8_t>(1000, 1)));
  EXPECT_TRUE(link.try_send(9, std::vector<std::uint8_t>(1000, 2)));
  EXPECT_FALSE(link.try_send(4, std::vector<std::uint8_t>(1000, 3)));
  EXPECT_EQ(link.stats().frames_dropped_queue, 1u);
  sim.run();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0], (std::tuple{4, net::SimTime{1'000'000}}));
  EXPECT_EQ(departures[1], (std::tuple{9, net::SimTime{2'000'000}}));
  EXPECT_EQ(link.stats().frames_delivered, 2u);
}

TEST(SimLink, WritableEdgeFansOutToEverySubscriber) {
  net::Simulator sim;
  LinkSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.rate_bps = 8e6;
  spec.queue_capacity_bytes = 2000;  // watermark = 1000
  SimLink link(sim, spec, Rng(3), 0);
  link.set_depart([](int, std::vector<std::uint8_t>) {});
  int edges = 0;
  link.add_writable_subscriber([&] { ++edges; });
  link.add_writable_subscriber([&] { ++edges; });
  ASSERT_TRUE(link.try_send(0, std::vector<std::uint8_t>(1500, 0)));
  EXPECT_FALSE(link.ready());
  sim.run();
  EXPECT_TRUE(link.ready());
  EXPECT_EQ(edges, 2);  // both subscribers saw the one edge
}

// ------------------------------------------------------------- Network

TEST(Network, DeliversEveryFrameOnEveryNamedTopology) {
  for (Topology t : {disjoint_control(4), diamond(4), shared_bottleneck(4),
                     multihomed_wan(4)}) {
    net::Simulator sim;
    Network net(sim, t, Rng(11));
    std::vector<int> delivered(static_cast<std::size_t>(t.num_channels()), 0);
    for (int c = 0; c < net.num_channels(); ++c) {
      const net::SimTime floor = net.channel(c).path_delay();
      net.channel(c).set_receiver(
          [&delivered, &sim, c, floor](std::vector<std::uint8_t> frame) {
            ++delivered[static_cast<std::size_t>(c)];
            EXPECT_EQ(frame[0], static_cast<std::uint8_t>(c));
            EXPECT_GE(sim.now(), floor);
          });
      for (int seq = 0; seq < 8; ++seq) {
        std::vector<std::uint8_t> frame(128, 0);
        frame[0] = static_cast<std::uint8_t>(c);
        EXPECT_TRUE(net.channel(c).try_send(std::move(frame)));
      }
    }
    sim.run();
    for (const int n : delivered) EXPECT_EQ(n, 8) << t.name;
    EXPECT_EQ(net.stats().frames_delivered_end, 32u) << t.name;
    EXPECT_EQ(net.stats().frames_dropped_midpath, 0u) << t.name;
    EXPECT_GT(net.stats().frames_forwarded, 0u) << t.name;
  }
}

TEST(Network, MidpathQueueRefusalIsCountedNotFatal) {
  Topology t = chain(1);
  t.links[0].rate_bps = 80e6;  // fast first hop feeds...
  t.links[1].rate_bps = 8e6;   // ...a slow second hop
  t.links[1].queue_capacity_bytes = 1200;  // that can hold one frame
  net::Simulator sim;
  Network net(sim, t, Rng(5));
  int delivered = 0;
  net.channel(0).set_receiver(
      [&delivered](std::vector<std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.channel(0).try_send(std::vector<std::uint8_t>(1000, 7)));
  }
  sim.run();
  EXPECT_GT(net.stats().frames_dropped_midpath, 0u);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            net.stats().frames_delivered_end);
}

TEST(Network, SharedIngressBacklogGatesEveryEnteringChannel) {
  // All channels of shared_bottleneck enter on link 0: once one channel
  // fills the bottleneck past its watermark, the OTHERS see not-ready
  // too — the correlated-queueing half of shared links.
  Topology t = shared_bottleneck(2);
  t.links[0].queue_capacity_bytes = 3000;  // watermark = 1500
  net::Simulator sim;
  Network net(sim, t, Rng(2));
  for (int c = 0; c < 2; ++c) {
    net.channel(c).set_receiver([](std::vector<std::uint8_t>) {});
  }
  int writable_edges = 0;
  net.channel(1).set_writable_callback([&] { ++writable_edges; });
  ASSERT_TRUE(net.channel(0).try_send(std::vector<std::uint8_t>(2000, 1)));
  EXPECT_FALSE(net.channel(1).ready());
  EXPECT_GT(net.channel(1).backlog_time(), 0);
  sim.run();
  EXPECT_TRUE(net.channel(1).ready());
  EXPECT_EQ(writable_edges, 1);
}

TEST(Network, PublishesTopoMetrics) {
  obs::Registry::global().reset();
  net::Simulator sim;
  const Topology t = shared_bottleneck(2);
  Network net(sim, t, Rng(4));
  for (int c = 0; c < 2; ++c) {
    net.channel(c).set_receiver([](std::vector<std::uint8_t>) {});
    ASSERT_TRUE(net.channel(c).try_send(std::vector<std::uint8_t>(64, 0)));
  }
  sim.run();
  net.publish_metrics(obs::Registry::global());
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter_value("mcss_topo_frames_delivered_end"), 2u);
  EXPECT_GT(snap.counter_value("mcss_topo_frames_forwarded"), 0u);
  // Each frame is offered once per hop: 3 hops x 2 frames.
  EXPECT_EQ(snap.counter_value("mcss_topo_link_frames_offered"), 6u);
  bool saw_links_gauge = false;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "mcss_topo_links") {
      saw_links_gauge = true;
      // shared_bottleneck(2): the bottleneck plus two private links per
      // channel.
      EXPECT_EQ(gauge.value, 5.0);
    }
  }
  EXPECT_TRUE(saw_links_gauge);
  obs::Registry::global().reset();
}

// ------------------------------------------- Network on the partitioned sim

/// diamond() with one LP per node, 5% loss everywhere, staggered sends;
/// returns (delivered, arrival fingerprint, per-link loss counters).
std::tuple<std::uint64_t, std::uint64_t, std::vector<std::uint64_t>>
partitioned_run(unsigned threads) {
  ThreadGuard guard(threads);
  Topology t = diamond(4);
  for (LinkSpec& link : t.links) link.loss = 0.05;
  net::psim::PartitionedSimulator psim(4, net::from_millis(5));
  Network net(psim, {0, 1, 2, 3}, t, Rng(99));

  std::uint64_t delivered = 0;
  std::uint64_t fingerprint = 1469598103934665603ULL;
  net::Simulator& sink_sim = psim.lp(1).sim();
  for (int c = 0; c < net.num_channels(); ++c) {
    net.channel(c).set_receiver(
        [&, c](std::vector<std::uint8_t> frame) {
          ++delivered;
          fingerprint ^= static_cast<std::uint64_t>(sink_sim.now()) * 31u +
                         static_cast<std::uint64_t>(c) * 7u + frame[1];
          fingerprint *= 1099511628211ULL;
        });
  }
  net::Simulator& source_sim = psim.lp(0).sim();
  for (int c = 0; c < net.num_channels(); ++c) {
    for (int seq = 0; seq < 40; ++seq) {
      source_sim.schedule_at(net::from_millis(seq), [&net, c, seq] {
        std::vector<std::uint8_t> frame(200, 0);
        frame[0] = static_cast<std::uint8_t>(c);
        frame[1] = static_cast<std::uint8_t>(seq);
        (void)net.channel(c).try_send(std::move(frame));
      });
    }
  }
  psim.run();
  std::vector<std::uint64_t> losses;
  for (int l = 0; l < t.num_links(); ++l) {
    losses.push_back(net.link(l).stats().frames_dropped_loss);
  }
  return {delivered, fingerprint, losses};
}

TEST(NetworkPartitioned, BitwiseIdenticalAcrossThreadCounts) {
  const auto base = partitioned_run(1);
  EXPECT_GT(std::get<0>(base), 0u);
  EXPECT_EQ(partitioned_run(2), base);
  EXPECT_EQ(partitioned_run(8), base);
}

TEST(NetworkPartitioned, RejectsCrossLpLinkBelowLookahead) {
  Topology t = diamond(2);
  t.links[1].delay = net::from_millis(1);  // A -> sink crosses LPs
  net::psim::PartitionedSimulator psim(4, net::from_millis(5));
  EXPECT_THROW(Network(psim, {0, 1, 2, 3}, std::move(t), Rng(1)),
               PreconditionError);
}

TEST(NetworkPartitioned, ValidatesNodeLpMap) {
  net::psim::PartitionedSimulator psim(2, net::from_millis(5));
  EXPECT_THROW(Network(psim, {0, 1}, diamond(2), Rng(1)), PreconditionError);
  EXPECT_THROW(Network(psim, {0, 1, 0, 9}, diamond(2), Rng(1)),
               PreconditionError);
}

}  // namespace
}  // namespace mcss::topo
