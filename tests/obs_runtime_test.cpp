// Tests for src/obs/runtime: the scrape server's HTTP surface and fd
// hooks, sampler determinism (top-K ordering, bounded slices, publish
// hook ordering), privacy accounting cross-checked against the core
// Poisson-binomial tail, event-loop health counters, counter-delta
// publishing, the exporter's Prometheus edge cases, the delay-sample
// clamp-and-count paths, and one end-to-end scrape of a live session
// endpoint.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <limits>
#include <netinet/in.h>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "feedback/report.hpp"
#include "feedback/report_builder.hpp"
#include "feedback/retransmit.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime/health.hpp"
#include "obs/runtime/privacy.hpp"
#include "obs/runtime/sampler.hpp"
#include "obs/runtime/scrape_server.hpp"
#include "obs/runtime/telemetry.hpp"
#include "session/session_endpoint.hpp"
#include "util/ensure.hpp"
#include "util/link_risk.hpp"
#include "util/poisson_binomial.hpp"
#include "util/rng.hpp"

namespace mcss::obs::runtime {
namespace {

/// Restores the global metrics switch (and a clean registry) on exit.
struct MetricsGuard {
  explicit MetricsGuard(bool on) : was(metrics_enabled()) {
    Registry::global().reset();
    set_metrics_enabled(on);
  }
  ~MetricsGuard() {
    Registry::global().reset();
    set_metrics_enabled(was);
  }
  bool was;
};

// ------------------------------------------------------- ScrapeServer

/// A ScrapeServer wired to a fake poller: fd hooks record registered
/// fds, and pump() offers readiness to every one of them (nonblocking
/// sockets make speculative on_event calls harmless no-ops).
struct ServerHarness {
  // fds before server: ~ScrapeServer fires the remove hook, which must
  // land on a still-alive set.
  std::set<int> fds;
  ScrapeServer server;

  explicit ServerHarness(ScrapeServerConfig config = {}) : server(config) {
    server.set_fd_hooks([this](int fd, bool, bool) { fds.insert(fd); },
                        [](int, bool, bool) {},
                        [this](int fd) { fds.erase(fd); });
  }

  void pump() {
    // on_event may close a connection and mutate the set; iterate a copy.
    const std::set<int> snapshot = fds;
    for (int fd : snapshot) server.on_event(fd, true, true);
  }

  std::string get(std::string_view path) {
    return http_get_local(server.port(), path, [this] { pump(); });
  }

  /// Send raw request bytes (for methods / malformed heads that
  /// http_get_local cannot produce) and return the full response.
  std::string raw(std::string_view request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr);
    std::size_t sent = 0;
    std::string response;
    char buf[4096];
    for (int i = 0; i < 2000; ++i) {
      pump();
      if (sent < request.size()) {
        const auto n = ::send(fd, request.data() + sent,
                              request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) sent += static_cast<std::size_t>(n);
      }
      const auto n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        response.append(buf, static_cast<std::size_t>(n));
      } else if (n == 0 && sent == request.size()) {
        break;  // server closed: response complete
      }
    }
    ::close(fd);
    return response;
  }
};

TEST(ScrapeServer, ServesRoutedPathWithContentLength) {
  ServerHarness h;
  h.server.route("/metrics", [](const ScrapeRequest&) {
    ScrapeResponse r;
    r.body = "mcss_up 1\n";
    return r;
  });
  const std::string response = h.get("/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 10"), std::string::npos);
  EXPECT_EQ(http_body(response), "mcss_up 1\n");
  EXPECT_EQ(h.server.stats().requests_served, 1u);
  EXPECT_EQ(h.server.stats().connections_accepted, 1u);
}

TEST(ScrapeServer, StripsQueryStringBeforeRouting) {
  ServerHarness h;
  std::string seen;
  h.server.route("/metrics", [&](const ScrapeRequest& req) {
    seen = req.path;
    return ScrapeResponse{};
  });
  const std::string response = h.get("/metrics?debug=1&x=2");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(seen, "/metrics");
}

TEST(ScrapeServer, UnknownPathIs404) {
  ServerHarness h;
  h.server.route("/metrics", [](const ScrapeRequest&) {
    return ScrapeResponse{};
  });
  const std::string response = h.get("/nope");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_EQ(h.server.stats().requests_not_found, 1u);
}

TEST(ScrapeServer, NonGetMethodIsRejected) {
  ServerHarness h;
  h.server.route("/metrics", [](const ScrapeRequest&) {
    return ScrapeResponse{};
  });
  const std::string response =
      h.raw("POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos);
  EXPECT_EQ(h.server.stats().requests_bad, 1u);
  EXPECT_EQ(h.server.stats().requests_served, 0u);
}

TEST(ScrapeServer, MalformedRequestLineIs400) {
  ServerHarness h;
  const std::string response = h.raw("complete nonsense\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_EQ(h.server.stats().requests_bad, 1u);
}

TEST(ScrapeServer, OversizedRequestHeadIsRejected) {
  ScrapeServerConfig config;
  config.max_request_bytes = 128;
  ServerHarness h(config);
  const std::string request =
      "GET /" + std::string(512, 'a') + " HTTP/1.0\r\n\r\n";
  const std::string response = h.raw(request);
  EXPECT_EQ(h.server.stats().requests_bad, 1u);
  // The socket is closed either way; any response we did read is a 400.
  if (!response.empty()) {
    EXPECT_NE(response.find("400"), std::string::npos);
  }
  EXPECT_EQ(h.server.open_connections(), 0u);
}

TEST(ScrapeServer, ConnectionCapRejectsExtraClients) {
  ScrapeServerConfig config;
  config.max_connections = 1;
  ServerHarness h(config);
  h.server.route("/", [](const ScrapeRequest&) { return ScrapeResponse{}; });

  // First client connects but never sends, pinning the one slot.
  const int hog = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(hog, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)::connect(hog, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  for (int i = 0; i < 50 && h.server.open_connections() == 0; ++i) h.pump();
  ASSERT_EQ(h.server.open_connections(), 1u);

  const std::string response = h.get("/");
  EXPECT_TRUE(response.empty());
  EXPECT_GE(h.server.stats().connections_rejected, 1u);
  ::close(hog);
}

TEST(ScrapeServer, HttpBodyHelper) {
  EXPECT_EQ(http_body("HTTP/1.0 200 OK\r\nA: b\r\n\r\nhello"), "hello");
  EXPECT_EQ(http_body("HTTP/1.0 200 OK\r\n\r\n"), "");
  EXPECT_EQ(http_body("no blank line"), "");
}

// ------------------------------------------------------------ Sampler

/// Synthetic flow table: cid -> queued value; every other metric 0.
Sampler make_probed_sampler(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& flows,
    SamplerConfig config) {
  Sampler sampler(config);
  sampler.set_flow_probes(
      [flows](std::vector<std::uint32_t>& cids) {
        for (const auto& [cid, queued] : flows) cids.push_back(cid);
      },
      [flows](std::uint32_t cid, FlowSample& sample) {
        for (const auto& [c, queued] : flows) {
          if (c != cid) continue;
          sample.cid = cid;
          sample.queued_packets = queued;
          return true;
        }
        return false;
      });
  return sampler;
}

/// Order of "cid": values in the by_queue_depth array of a flows doc.
std::vector<std::uint32_t> queue_board_cids(const std::string& json) {
  std::vector<std::uint32_t> cids;
  const auto begin = json.find("\"by_queue_depth\":[");
  const auto end = json.find(']', begin);
  std::string_view section(json.data() + begin, end - begin);
  for (std::size_t pos = section.find("\"cid\":"); pos != std::string_view::npos;
       pos = section.find("\"cid\":", pos + 1)) {
    cids.push_back(static_cast<std::uint32_t>(
        std::strtoul(section.data() + pos + 6, nullptr, 10)));
  }
  return cids;
}

TEST(Sampler, TopKOrdersByValueDescThenCidAsc) {
  MetricsGuard guard(false);
  SamplerConfig config;
  config.top_k = 3;
  // Ties at value 5: cids 30 and 7 — 7 must sort first. Value 9 tops.
  Sampler sampler = make_probed_sampler(
      {{30, 5}, {2, 1}, {11, 9}, {7, 5}, {40, 0}}, config);
  sampler.sample_now(1000);
  EXPECT_EQ(queue_board_cids(sampler.flows_json()),
            (std::vector<std::uint32_t>{11, 7, 30}));
  EXPECT_EQ(sampler.flows_open(), 5u);
  EXPECT_EQ(sampler.sample_seq(), 1u);
}

TEST(Sampler, FullBoardFastRejectKeepsTieBreakSemantics) {
  MetricsGuard guard(false);
  SamplerConfig config;
  config.top_k = 2;
  // Probe order is collection order. Board fills with (8,cid 50),
  // (3,cid 60). Then cid 70 value 3 ties the minimum with a LARGER cid
  // (must be rejected) and cid 10 value 3 ties with a SMALLER cid (must
  // displace 60). A fast-reject that drops all ties would get 10 wrong.
  Sampler sampler = make_probed_sampler(
      {{50, 8}, {60, 3}, {70, 3}, {10, 3}}, config);
  sampler.sample_now(1000);
  EXPECT_EQ(queue_board_cids(sampler.flows_json()),
            (std::vector<std::uint32_t>{50, 10}));
}

TEST(Sampler, WalksInBoundedSlices) {
  MetricsGuard guard(false);
  SamplerConfig config;
  config.max_flows_per_slice = 2;
  config.top_k = 8;
  Sampler sampler = make_probed_sampler(
      {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}, config);
  sampler.poll(0);  // begins the walk; 5 flows / 2 per slice
  EXPECT_TRUE(sampler.sampling());
  EXPECT_EQ(sampler.sample_seq(), 0u);  // not finalized yet
  int polls = 0;
  while (sampler.sampling() && polls < 10) {
    sampler.poll(0);
    ++polls;
  }
  EXPECT_EQ(sampler.sample_seq(), 1u);
  EXPECT_GE(polls, 2);
  EXPECT_EQ(queue_board_cids(sampler.flows_json()),
            (std::vector<std::uint32_t>{5, 4, 3, 2, 1}));
}

TEST(Sampler, HonorsIntervalBetweenSamples) {
  MetricsGuard guard(false);
  SamplerConfig config;
  config.interval_ns = 1000;
  Sampler sampler = make_probed_sampler({{1, 1}}, config);
  sampler.sample_now(0);
  EXPECT_EQ(sampler.sample_seq(), 1u);
  sampler.poll(500);  // interval not elapsed
  EXPECT_FALSE(sampler.sampling());
  EXPECT_EQ(sampler.sample_seq(), 1u);
  EXPECT_EQ(sampler.next_due_ns(500), 1000);
  sampler.poll(1000);
  while (sampler.sampling()) sampler.poll(1000);
  EXPECT_EQ(sampler.sample_seq(), 2u);
}

TEST(Sampler, PublishHookRunsBeforeMetricsRender) {
  MetricsGuard guard(true);
  Sampler sampler = make_probed_sampler({}, {});
  sampler.set_publish([](Registry& registry) {
    registry.set(registry.gauge("mcss_test_publish_gauge"), 42.0);
  });
  sampler.sample_now(0);
  // A gauge set inside the hook must appear in the same sample's text.
  EXPECT_NE(sampler.metrics_text().find("mcss_test_publish_gauge 42"),
            std::string::npos);
}

TEST(Sampler, EnvIntervalParsing) {
  EXPECT_EQ(obs_interval_from_env(5), 5);  // unset -> fallback
  ::setenv("MCSS_OBS_INTERVAL", "250", 1);
  EXPECT_EQ(obs_interval_from_env(5), 250'000'000);
  ::setenv("MCSS_OBS_INTERVAL", "0.5", 1);
  EXPECT_EQ(obs_interval_from_env(5), 500'000);
  ::setenv("MCSS_OBS_INTERVAL", "-3", 1);
  EXPECT_EQ(obs_interval_from_env(5), 5);  // invalid -> fallback
  ::setenv("MCSS_OBS_INTERVAL", "junk", 1);
  EXPECT_EQ(obs_interval_from_env(5), 5);
  ::unsetenv("MCSS_OBS_INTERVAL");
}

// -------------------------------------------------- PrivacyAccountant

TEST(PrivacyAccountant, ZOfMatchesCorePoissonBinomial) {
  MetricsGuard guard(false);
  PrivacyConfig config;
  config.channel_risks = {0.1, 0.2, 0.3, 0.05};
  PrivacyAccountant accountant(config);
  // Alternate keys so both the one-entry memo and the map path run.
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t mask : {0b1011u, 0b0110u, 0b1111u, 0b0001u}) {
      for (int k : {1, 2, 3}) {
        std::vector<double> risks;
        for (std::size_t i = 0; i < config.channel_risks.size(); ++i) {
          if ((mask >> i) & 1u) risks.push_back(config.channel_risks[i]);
        }
        EXPECT_DOUBLE_EQ(accountant.z_of(k, mask),
                         poisson_binomial_tail_geq(risks, k))
            << "k=" << k << " mask=" << mask;
      }
    }
  }
}

TEST(PrivacyAccountant, AccountsWideningAgainstPerPacketPlans) {
  MetricsGuard guard(false);
  PrivacyConfig config;
  config.channel_risks = {0.1, 0.1, 0.1};
  PrivacyAccountant accountant(config);

  ExposureRecord clean;
  clean.k = 2;
  clean.initial_mask = 0b011;
  clean.exposure_mask = 0b011;
  ExposureRecord widened;  // a retransmit touched channel 2
  widened.k = 2;
  widened.initial_mask = 0b011;
  widened.exposure_mask = 0b111;
  widened.retransmits = 1;
  const std::vector<ExposureRecord> records{clean, widened};
  accountant.on_closed(records);

  const PrivacyTotals& totals = accountant.totals();
  EXPECT_EQ(totals.packets_accounted, 2u);
  EXPECT_EQ(totals.packets_widened, 1u);
  EXPECT_EQ(totals.degradations, 1u);

  const double z_plan = accountant.z_of(2, 0b011);
  const double z_wide = accountant.z_of(2, 0b111);
  ASSERT_GT(z_wide, z_plan);
  EXPECT_DOUBLE_EQ(totals.max_deficit, z_wide - z_plan);
  EXPECT_DOUBLE_EQ(accountant.mean_realized_z(), (z_plan + z_wide) / 2);
  // Per-packet plans: deficit = mean realized - mean planned.
  EXPECT_DOUBLE_EQ(accountant.deficit(), (z_wide - z_plan) / 2);
}

TEST(PrivacyAccountant, LinkModeMatchesCorrelatedSubsetRisk) {
  MetricsGuard guard(false);
  PrivacyConfig config;
  // ch0 -> links {0,1}, ch1 -> links {1,2}, ch2 -> link {3}: channels 0
  // and 1 share link 1, channel 2 rides a private link.
  config.link_risks = {0.05, 0.1, 0.2, 0.05};
  config.channel_link_masks = {0b0011, 0b0110, 0b1000};
  PrivacyAccountant accountant(config);
  ASSERT_TRUE(accountant.link_mode());

  for (std::uint32_t mask : {0b011u, 0b101u, 0b111u, 0b001u}) {
    for (int k : {1, 2, 3}) {
      std::vector<std::uint64_t> selected;
      for (std::size_t i = 0; i < config.channel_link_masks.size(); ++i) {
        if ((mask >> i) & 1u) {
          selected.push_back(config.channel_link_masks[i]);
        }
      }
      EXPECT_DOUBLE_EQ(accountant.z_of(k, mask),
                       correlated_subset_risk(config.link_risks, selected, k))
          << "k=" << k << " mask=" << mask;
    }
  }
  // The shared link makes the joint tail strictly dearer than the
  // independent-channel price of the same marginals.
  EXPECT_GT(accountant.z_of(2, 0b011),
            independent_subset_risk(config.link_risks,
                                    config.channel_link_masks, 2));

  // on_closed folds the link-mask unions into the link-mode totals.
  ExposureRecord record;
  record.k = 2;
  record.initial_mask = 0b011;
  record.exposure_mask = 0b111;
  record.retransmits = 1;
  record.initial_link_mask = 0b0011;
  record.link_exposure_mask = 0b0111;
  const std::vector<ExposureRecord> records{record};
  accountant.on_closed(records);
  EXPECT_EQ(accountant.totals().initial_link_sum, 2u);
  EXPECT_EQ(accountant.totals().exposure_link_sum, 3u);
}

TEST(PrivacyAccountant, AbsoluteTargetOverridesPerPacketPlans) {
  MetricsGuard guard(false);
  PrivacyConfig config;
  config.channel_risks = {0.2, 0.2};
  PrivacyAccountant accountant(config);
  accountant.set_planned_z(0.5);

  ExposureRecord record;
  record.k = 1;
  record.initial_mask = 0b11;
  record.exposure_mask = 0b11;
  const std::vector<ExposureRecord> records{record};
  accountant.on_closed(records);

  const double realized = accountant.z_of(1, 0b11);
  EXPECT_DOUBLE_EQ(accountant.deficit(), realized - 0.5);
  // Under target: no degradation even though exposure equals the mask.
  EXPECT_EQ(accountant.totals().degradations, 0u);
}

TEST(PrivacyAccountant, GaugesRefreshOnPublishNotPerFold) {
  MetricsGuard guard(true);
  PrivacyConfig config;
  config.channel_risks = {0.3, 0.3};
  PrivacyAccountant accountant(config);

  ExposureRecord record;
  record.k = 1;
  record.initial_mask = 0b01;
  record.exposure_mask = 0b11;
  const std::vector<ExposureRecord> records{record};
  accountant.on_closed(records);

  const auto gauge_value = [](std::string_view name) {
    for (const auto& g : Registry::global().snapshot().gauges) {
      if (g.name == name) return g.value;
    }
    return std::numeric_limits<double>::quiet_NaN();
  };
  // The fold updated histograms/counters but left the gauges alone.
  EXPECT_EQ(gauge_value("mcss_privacy_z_deficit"), 0.0);
  accountant.publish_gauges();
  EXPECT_DOUBLE_EQ(gauge_value("mcss_privacy_z_deficit"),
                   accountant.deficit());
  EXPECT_DOUBLE_EQ(gauge_value("mcss_privacy_z_realized_mean"),
                   accountant.mean_realized_z());
  EXPECT_GT(accountant.deficit(), 0.0);
}

// ----------------------------------------------------- EventLoopHealth

TEST(EventLoopHealth, WatchdogCountsOverBudgetPumps) {
  MetricsGuard guard(false);  // healthz counters work with metrics off
  HealthConfig config;
  config.pump_budget_ns = 1'000'000;
  EventLoopHealth health(config);
  health.on_pump(500'000);
  health.on_pump(2'000'000);
  health.on_pump(900'000);
  EXPECT_EQ(health.pump_iterations(), 3u);
  EXPECT_EQ(health.watchdog_stalls(), 1u);
  EXPECT_EQ(health.max_pump_ns(), 2'000'000);
}

TEST(EventLoopHealth, ObservesLoopHistogramsWhenEnabled) {
  MetricsGuard guard(true);
  EventLoopHealth health;
  health.on_wait(/*timeout_ms=*/1, /*blocked_ns=*/3'000'000);  // 2ms late
  health.on_pump(100'000);
  health.set_pool_occupancy(3, 8);
  const MetricsSnapshot snapshot = Registry::global().snapshot();
  bool saw_wait = false;
  bool saw_lag = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "mcss_loop_poll_wait_us") {
      saw_wait = true;
      std::uint64_t total = 0;
      for (const auto b : h.buckets) total += b;
      EXPECT_EQ(total, 1u);
    }
    if (h.name == "mcss_loop_poll_wake_lag_us") saw_lag = true;
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_lag);
  bool saw_pool = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "mcss_pool_frames_in_use") {
      saw_pool = true;
      EXPECT_EQ(g.value, 3.0);
    }
  }
  EXPECT_TRUE(saw_pool);
}

// ------------------------------------------------------- CounterDeltas

TEST(CounterDeltas, PublishesOnlyTheDelta) {
  MetricsGuard guard(true);
  CounterDeltas deltas;
  Registry& registry = Registry::global();
  deltas.add_total(registry, "mcss_test_total", 10);
  deltas.add_total(registry, "mcss_test_total", 25);
  deltas.add_total(registry, "mcss_test_total", 25);  // no change
  deltas.add_total(registry, "mcss_test_total", 20);  // non-monotone: clamp
  deltas.add_total(registry, "mcss_test_total", 30);
  for (const auto& c : registry.snapshot().counters) {
    if (c.name != "mcss_test_total") continue;
    // 10 + 15 + 0 + 0 + max(0, 30 - 20): converges to the last total.
    EXPECT_EQ(c.value, 35u);
    return;
  }
  FAIL() << "counter not found";
}

// ------------------------------------------- Prometheus exporter edges

TEST(PrometheusExport, BucketBoundValueIsInclusive) {
  MetricsGuard guard(true);
  Registry& registry = Registry::global();
  const auto id = registry.histogram("mcss_test_edge_us", {1.0, 10.0});
  registry.observe(id, 1.0);  // exactly on the first bound
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("mcss_test_edge_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mcss_test_edge_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mcss_test_edge_us_count 1"), std::string::npos);
}

TEST(PrometheusExport, NonFiniteGaugesUseExpositionSpellings) {
  MetricsGuard guard(true);
  Registry& registry = Registry::global();
  registry.set(registry.gauge("mcss_test_nan"),
               std::numeric_limits<double>::quiet_NaN());
  registry.set(registry.gauge("mcss_test_pinf"),
               std::numeric_limits<double>::infinity());
  registry.set(registry.gauge("mcss_test_ninf"),
               -std::numeric_limits<double>::infinity());
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("mcss_test_nan NaN"), std::string::npos);
  EXPECT_NE(text.find("mcss_test_pinf +Inf"), std::string::npos);
  EXPECT_NE(text.find("mcss_test_ninf -Inf"), std::string::npos);
  // The %g spellings the format rejects must not appear.
  EXPECT_EQ(text.find("inf\n"), std::string::npos);
  EXPECT_EQ(text.find("nan\n"), std::string::npos);
}

TEST(Registry, CrossTypeNameCollisionThrows) {
  MetricsGuard guard(true);
  Registry& registry = Registry::global();
  (void)registry.counter("mcss_test_collision");
  EXPECT_THROW((void)registry.gauge("mcss_test_collision"),
               PreconditionError);
  EXPECT_THROW((void)registry.histogram("mcss_test_collision", {1.0}),
               PreconditionError);
  // Same name, same type: idempotent, returns the same series.
  const auto a = registry.counter("mcss_test_collision");
  const auto b = registry.counter("mcss_test_collision");
  EXPECT_EQ(a.index, b.index);
}

// ------------------------------------------------- delay-sample clamps

TEST(RetransmitManager, ImpossibleDelaySamplesAreCountedNotAveraged) {
  feedback::RetransmitManager mgr({}, Rng(1));
  const std::vector<std::uint8_t> payload{1};
  const std::vector<int> channels{0};
  mgr.on_packet_sent(1, 1, payload, channels, /*now_ns=*/1000);
  mgr.on_packet_sent(2, 1, payload, channels, /*now_ns=*/1000);
  mgr.on_packet_sent(3, 1, payload, channels, /*now_ns=*/1000);

  feedback::ReceiverReport report;
  report.seq = 1;
  report.sack_base = 1;
  report.sack.assign(1, 0b111);  // acks 1, 2, 3
  report.channels.assign(1, {});
  report.receiver_time_ns = 5000;
  report.delays = {
      {1, 500},   // before the send stamp: impossible
      {2, 9000},  // after the report was built: impossible
      {3, 3000},  // plausible
  };
  mgr.on_report(report, /*now_ns=*/10'000);

  EXPECT_EQ(mgr.stats().delay_samples_clamped, 2u);
  EXPECT_EQ(mgr.stats().delay.count(), 1u);
  EXPECT_NEAR(mgr.stats().delay.mean(), 2e-6, 1e-12);  // 2000ns one-way
}

TEST(ReportBuilder, RegressingDeliveryStampsAreClampedMonotone) {
  feedback::ReportBuilderConfig config;
  config.num_channels = 1;
  feedback::ReportBuilder builder(config);
  builder.on_delivered(1, 1000);
  builder.on_delivered(2, 400);  // receiver clock stepped backwards
  builder.on_delivered(3, 1500);
  EXPECT_EQ(builder.delay_samples_clamped(), 1u);
  const feedback::ReceiverReport report = builder.build(2000);
  ASSERT_EQ(report.delays.size(), 3u);
  EXPECT_EQ(report.delays[0].recv_time_ns, 1000);
  EXPECT_EQ(report.delays[1].recv_time_ns, 1000);  // clamped up, kept
  EXPECT_EQ(report.delays[2].recv_time_ns, 1500);
  for (std::size_t i = 1; i < report.delays.size(); ++i) {
    EXPECT_GE(report.delays[i].recv_time_ns,
              report.delays[i - 1].recv_time_ns);
  }
}

// ------------------------------------------------- end-to-end session

TEST(SessionTelemetry, LiveEndpointServesAllRoutes) {
  MetricsGuard guard(false);  // the plane enables metrics itself
  session::SessionConfig config;
  net::ChannelConfig clean;
  clean.rate_bps = 1e9;
  for (int i = 0; i < 3; ++i) {
    config.channels.push_back({clean, "lane" + std::to_string(i)});
  }
  config.seed = 7;
  config.reliability.enabled = true;
  config.reliability.report_interval_ns = 10'000'000;
  config.telemetry.enabled = true;
  config.telemetry.port = 0;  // ephemeral
  config.telemetry.sampler.interval_ns = 20'000'000;
  session::SessionEndpoint ep(std::move(config));
  ASSERT_NE(ep.telemetry(), nullptr);
  const std::uint16_t port = ep.telemetry()->port();
  ASSERT_NE(port, 0);

  session::FlowParams params;
  params.rate_pps = 10.0;
  params.payload_bytes = 64;
  std::vector<std::uint8_t> payload(64, 0x5a);
  for (int i = 0; i < 20; ++i) {
    const auto cid = ep.open_flow(params);
    ASSERT_TRUE(cid.has_value());
    (void)ep.send(*cid, payload);
  }
  ep.run_for(60'000'000);  // a few sampler intervals of live traffic

  const auto pump = [&ep] { ep.run_for(1'000'000); };
  const std::string metrics =
      http_get_local(port, "/metrics", pump);
  const std::string_view body = http_body(metrics);
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(body.find("# TYPE "), std::string_view::npos);
  EXPECT_NE(body.find("mcss_privacy_z_deficit"), std::string_view::npos);
  EXPECT_NE(body.find("mcss_loop_poll_wait_us"), std::string_view::npos);
  EXPECT_NE(body.find("mcss_pool_frames_capacity"), std::string_view::npos);

  const std::string flows = http_get_local(port, "/flows", pump);
  const std::string_view fbody = http_body(flows);
  EXPECT_NE(fbody.find("\"flows_open\":20"), std::string_view::npos);
  EXPECT_NE(fbody.find("\"by_queue_depth\""), std::string_view::npos);
  EXPECT_NE(fbody.find("\"by_exposure_width\""), std::string_view::npos);

  const std::string healthz = http_get_local(port, "/healthz", pump);
  const std::string_view hbody = http_body(healthz);
  EXPECT_NE(hbody.find("\"status\":\"ok\""), std::string_view::npos);

  const std::string missing = http_get_local(port, "/nope", pump);
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
}

}  // namespace
}  // namespace mcss::obs::runtime
