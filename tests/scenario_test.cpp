// Tests for the scenario text format: units, defaults, validation, and
// end-to-end scenario execution.
#include <gtest/gtest.h>

#include <string>

#include "util/ensure.hpp"
#include "workload/scenario.hpp"

namespace mcss::workload {
namespace {

TEST(Scenario, ParsesDemoDocument) {
  const auto s = parse_scenario(demo_scenario_text());
  EXPECT_EQ(s.config.setup.num_channels(), 5);
  EXPECT_DOUBLE_EQ(s.config.kappa, 2.0);
  EXPECT_DOUBLE_EQ(s.config.mu, 3.0);
  EXPECT_TRUE(s.auto_offered);
  EXPECT_EQ(s.config.scheduler, SchedulerKind::Dynamic);
  EXPECT_DOUBLE_EQ(s.config.duration_s, 0.5);
  EXPECT_DOUBLE_EQ(s.config.warmup_s, 0.05);
  EXPECT_EQ(s.config.seed, 42u);
}

TEST(Scenario, ChannelAttributeUnits) {
  const auto s = parse_scenario(
      "channel rate=2.5Gbps loss=1.5% delay=250us risk=0.33 jitter=2ms corrupt=0.5%\n"
      "kappa 1\nmu 1\n");
  ASSERT_EQ(s.config.setup.num_channels(), 1);
  const auto& ch = s.config.setup.channels[0];
  EXPECT_DOUBLE_EQ(ch.rate_bps, 2.5e9);
  EXPECT_DOUBLE_EQ(ch.loss, 0.015);
  EXPECT_EQ(ch.delay, net::from_micros(250));
  EXPECT_EQ(ch.jitter, net::from_millis(2));
  EXPECT_DOUBLE_EQ(ch.corrupt, 0.005);
  EXPECT_DOUBLE_EQ(s.config.setup.risks[0], 0.33);
}

TEST(Scenario, LossAcceptsFractionOrPercent) {
  const auto pct = parse_scenario("channel rate=1Mbps loss=2%\nkappa 1\nmu 1\n");
  const auto frac = parse_scenario("channel rate=1Mbps loss=0.02\nkappa 1\nmu 1\n");
  EXPECT_DOUBLE_EQ(pct.config.setup.channels[0].loss,
                   frac.config.setup.channels[0].loss);
}

TEST(Scenario, DefaultsApply) {
  const auto s = parse_scenario("channel rate=10Mbps\nkappa 1\nmu 1\n");
  EXPECT_EQ(s.config.setup.channels[0].loss, 0.0);
  EXPECT_EQ(s.config.setup.channels[0].delay, 0);
  EXPECT_DOUBLE_EQ(s.config.setup.risks[0], 0.2);
  EXPECT_FALSE(s.auto_offered);
  EXPECT_FALSE(s.config.echo);
}

TEST(Scenario, SchedulerNames) {
  const std::pair<const char*, SchedulerKind> cases[] = {
      {"dynamic", SchedulerKind::Dynamic},
      {"lp-loss", SchedulerKind::StaticLp},
      {"lp-delay", SchedulerKind::StaticLp},
      {"lp-risk", SchedulerKind::StaticLp},
      {"proportional", SchedulerKind::Proportional},
      {"fixed", SchedulerKind::Fixed},
  };
  for (const auto& [name, kind] : cases) {
    const auto s = parse_scenario("channel rate=1Mbps\nkappa 1\nmu 1\nscheduler " +
                                  std::string(name) + "\n");
    EXPECT_EQ(s.config.scheduler, kind) << name;
  }
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  const auto s = parse_scenario(
      "# full-line comment\n"
      "\n"
      "channel rate=1Mbps  # trailing comment\n"
      "kappa 1\n"
      "mu 1\n");
  EXPECT_EQ(s.config.setup.num_channels(), 1);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario("channel rate=1Mbps\nkappa 1\nmu 1\nbogus directive\n");
    FAIL() << "expected a parse error";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(Scenario, RejectsMalformedInput) {
  // No channels.
  EXPECT_THROW((void)parse_scenario("kappa 1\nmu 1\n"), PreconditionError);
  // Channel without a rate.
  EXPECT_THROW((void)parse_scenario("channel loss=1%\nkappa 1\nmu 1\n"),
               PreconditionError);
  // Bad unit.
  EXPECT_THROW((void)parse_scenario("channel rate=5parsecs\nkappa 1\nmu 1\n"),
               PreconditionError);
  // Missing '='.
  EXPECT_THROW((void)parse_scenario("channel rate 5Mbps\nkappa 1\nmu 1\n"),
               PreconditionError);
  // kappa > mu.
  EXPECT_THROW(
      (void)parse_scenario("channel rate=1Mbps\nchannel rate=1Mbps\nkappa 2\nmu 1.5\n"),
      PreconditionError);
  // mu > n.
  EXPECT_THROW((void)parse_scenario("channel rate=1Mbps\nkappa 1\nmu 2\n"),
               PreconditionError);
  // Bad echo value.
  EXPECT_THROW(
      (void)parse_scenario("channel rate=1Mbps\nkappa 1\nmu 1\necho maybe\n"),
      PreconditionError);
  // Packet size out of range.
  EXPECT_THROW(
      (void)parse_scenario("channel rate=1Mbps\nkappa 1\nmu 1\npacket 4\n"),
      PreconditionError);
}

TEST(Scenario, RunScenarioEndToEnd) {
  auto s = parse_scenario(demo_scenario_text());
  s.config.duration_s = 0.2;  // keep the test fast
  const auto result = run_scenario(s);
  EXPECT_GT(result.achieved_mbps, 10.0);
  EXPECT_NEAR(result.achieved_kappa, 2.0, 0.05);
  EXPECT_NEAR(result.achieved_mu, 3.0, 0.05);
}

TEST(Scenario, AutoOfferedTracksOptimal) {
  auto s = parse_scenario(
      "channel rate=10Mbps\nchannel rate=10Mbps\n"
      "kappa 1\nmu 1\noffered auto\nduration 0.2s\n");
  const auto result = run_scenario(s);
  // auto = 97% of 20 Mbps optimum; the measured rate should be near it.
  EXPECT_NEAR(result.achieved_mbps, 0.97 * 20.0, 1.5);
}

}  // namespace
}  // namespace mcss::workload
