// Tests for the extended sharing substrates: GF(256) linear algebra,
// Blakley's hyperplane scheme, GF(2^16), and wide Shamir.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "field/gf65536.hpp"
#include "field/gf_linalg.hpp"
#include "sss/blakley.hpp"
#include "sss/shamir.hpp"
#include "sss/shamir16.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"
#include "util/subset.hpp"

namespace mcss {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (auto& b : v) b = rng.byte();
  return v;
}

// ---------------------------------------------------------------- linalg

TEST(GfLinalg, IdentityBehaviour) {
  gf::Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1;
  EXPECT_EQ(gf::rank(eye), 3u);
  const auto inv = gf::invert(eye);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, eye);
}

TEST(GfLinalg, SolveRoundtrip) {
  // Build A (random invertible) and x; solve A x = b and compare.
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(6);
    gf::Matrix a(n, n);
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.byte();
      }
    } while (gf::rank(a) != n);

    std::vector<gf::Elem> x(n);
    for (auto& v : x) v = rng.byte();
    // b = A x.
    std::vector<gf::Elem> b(n, 0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        b[r] = gf::add(b[r], gf::mul(a.at(r, c), x[c]));
      }
    }
    const auto solved = gf::solve(a, b);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(*solved, x);
  }
}

TEST(GfLinalg, SingularSystemsReported) {
  gf::Matrix a(2, 2);
  a.at(0, 0) = 3;
  a.at(0, 1) = 5;
  a.at(1, 0) = 3;
  a.at(1, 1) = 5;  // duplicate row
  EXPECT_EQ(gf::rank(a), 1u);
  EXPECT_FALSE(gf::solve(a, {1, 2}).has_value());
  EXPECT_FALSE(gf::invert(a).has_value());
}

TEST(GfLinalg, InverseTimesSelfIsIdentity) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(5);
    gf::Matrix a(n, n);
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.byte();
      }
    } while (gf::rank(a) != n);
    const auto inv = gf::invert(a);
    ASSERT_TRUE(inv.has_value());
    const auto product = gf::multiply(a, *inv);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(product.at(r, c), r == c ? 1 : 0);
      }
    }
  }
}

TEST(GfLinalg, MultiplyDimensionChecks) {
  gf::Matrix a(2, 3), b(2, 2);
  EXPECT_THROW((void)gf::multiply(a, b), PreconditionError);
  EXPECT_THROW((void)gf::solve(a, {1, 2}), PreconditionError);
  EXPECT_THROW((void)gf::invert(a), PreconditionError);
}

// ---------------------------------------------------------------- Blakley

struct KmParam {
  int k;
  int m;
};

class BlakleyKmTest : public ::testing::TestWithParam<KmParam> {};

TEST_P(BlakleyKmTest, EveryKSubsetReconstructs) {
  const auto [k, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 37 + m));
  const auto secret = random_bytes(rng, 24);
  const auto shares = sss::blakley_split(secret, k, m, rng);
  ASSERT_EQ(shares.size(), static_cast<std::size_t>(m));
  for_each_subset(full_mask(m), [&, k = k](Mask subset) {
    if (mask_size(subset) != k) return;
    std::vector<sss::BlakleyShare> chosen;
    for_each_member(subset, [&](int i) {
      chosen.push_back(shares[static_cast<std::size_t>(i)]);
    });
    EXPECT_EQ(sss::blakley_reconstruct(chosen), secret);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllValidKm, BlakleyKmTest,
    ::testing::ValuesIn([] {
      std::vector<KmParam> params;
      for (int m = 1; m <= 6; ++m) {
        for (int k = 1; k <= m; ++k) params.push_back({k, m});
      }
      return params;
    }()),
    [](const ::testing::TestParamInfo<KmParam>& p) {
      return "k" + std::to_string(p.param.k) + "m" + std::to_string(p.param.m);
    });

TEST(Blakley, AgreesWithShamirSemantics) {
  // Same secret shared by both schemes: both reconstruct it from any
  // threshold subset (cross-validation of two independent code paths).
  Rng rng(5);
  const auto secret = random_bytes(rng, 100);
  const auto blakley = sss::blakley_split(secret, 3, 5, rng);
  const auto shamir = sss::split(secret, 3, 5, rng);
  const std::vector<sss::BlakleyShare> b_pick{blakley[4], blakley[1], blakley[2]};
  const std::vector<sss::Share> s_pick{shamir[4], shamir[1], shamir[2]};
  EXPECT_EQ(sss::blakley_reconstruct(b_pick), secret);
  EXPECT_EQ(sss::reconstruct(s_pick), secret);
}

TEST(Blakley, ShareOffsetsAreSecretSized) {
  Rng rng(6);
  const auto secret = random_bytes(rng, 500);
  const auto shares = sss::blakley_split(secret, 2, 4, rng);
  for (const auto& s : shares) {
    EXPECT_EQ(s.offsets.size(), secret.size());
    EXPECT_EQ(s.normal.size(), 2u);  // k coefficients, amortized
  }
}

TEST(Blakley, SingleShareDoesNotDetermineSecret) {
  // With k = 2, one hyperplane constrains the point to a line; verify a
  // single share's offsets do not equal the secret (no trivial leak).
  Rng rng(7);
  const auto secret = random_bytes(rng, 64);
  const auto shares = sss::blakley_split(secret, 2, 3, rng);
  EXPECT_NE(shares[0].offsets, secret);
  EXPECT_NE(shares[1].offsets, secret);
}

TEST(Blakley, RejectsBadParameters) {
  Rng rng(8);
  const auto secret = random_bytes(rng, 8);
  EXPECT_THROW((void)sss::blakley_split(secret, 0, 3, rng), PreconditionError);
  EXPECT_THROW((void)sss::blakley_split(secret, 4, 3, rng), PreconditionError);
  EXPECT_THROW((void)sss::blakley_split(secret, 2, 17, rng), PreconditionError);

  auto shares = sss::blakley_split(secret, 2, 3, rng);
  std::vector<sss::BlakleyShare> dup{shares[0], shares[0]};
  EXPECT_THROW((void)sss::blakley_reconstruct(dup), PreconditionError);
  std::vector<sss::BlakleyShare> short_len{shares[0], shares[1]};
  short_len[1].offsets.pop_back();
  EXPECT_THROW((void)sss::blakley_reconstruct(short_len), PreconditionError);
  // Taking only 1 share of a k=2 split: normal length (2) != share count (1).
  std::vector<sss::BlakleyShare> too_few{shares[0]};
  EXPECT_THROW((void)sss::blakley_reconstruct(too_few), PreconditionError);
}

// ---------------------------------------------------------------- GF(2^16)

TEST(Gf65536, FieldAxiomsOnRandomSamples) {
  Rng rng(9);
  for (int t = 0; t < 3000; ++t) {
    const auto a = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    const auto b = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    const auto c = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    EXPECT_EQ(gf16::mul(a, b), gf16::mul(b, a));
    EXPECT_EQ(gf16::mul(gf16::mul(a, b), c), gf16::mul(a, gf16::mul(b, c)));
    EXPECT_EQ(gf16::mul(a, gf16::add(b, c)),
              gf16::add(gf16::mul(a, b), gf16::mul(a, c)));
    EXPECT_EQ(gf16::mul(a, 1), a);
    EXPECT_EQ(gf16::mul(a, 0), 0);
  }
}

TEST(Gf65536, InversesOnRandomSamples) {
  Rng rng(10);
  for (int t = 0; t < 3000; ++t) {
    auto a = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    if (a == 0) a = 1;
    EXPECT_EQ(gf16::mul(a, gf16::inv(a)), 1);
    EXPECT_EQ(gf16::mul(gf16::div(7, a), a), 7);
  }
  EXPECT_THROW((void)gf16::inv(0), PreconditionError);
  EXPECT_THROW((void)gf16::div(1, 0), PreconditionError);
}

TEST(Gf65536, MulAgainstBitwiseReference) {
  const auto slow_mul = [](gf16::Elem16 a, gf16::Elem16 b) {
    std::uint32_t acc = 0;
    for (int bit = 0; bit < 16; ++bit) {
      if (b & (1u << bit)) acc ^= static_cast<std::uint32_t>(a) << bit;
    }
    for (int bit = 31; bit >= 16; --bit) {
      if (acc & (1u << bit)) acc ^= 0x1100Bu << (bit - 16);
    }
    return static_cast<gf16::Elem16>(acc);
  };
  Rng rng(11);
  for (int t = 0; t < 5000; ++t) {
    const auto a = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    const auto b = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    EXPECT_EQ(gf16::mul(a, b), slow_mul(a, b));
  }
}

TEST(Gf65536, PowAndFermat) {
  Rng rng(12);
  for (int t = 0; t < 200; ++t) {
    auto a = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    if (a == 0) a = 1;
    EXPECT_EQ(gf16::pow(a, 65535), 1);  // a^(q-1) = 1
    EXPECT_EQ(gf16::pow(a, 0), 1);
  }
  EXPECT_EQ(gf16::pow(0, 5), 0);
}

TEST(Gf65536, LagrangeRecoversConstant) {
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    const int degree = static_cast<int>(rng.uniform_int(6));
    std::vector<gf16::Elem16> coeffs(static_cast<std::size_t>(degree) + 1);
    for (auto& c : coeffs) c = static_cast<gf16::Elem16>(rng() & 0xFFFF);
    std::vector<gf16::Elem16> xs, ys;
    for (int i = 0; i <= degree; ++i) {
      // Scattered large abscissae exercise the 16-bit range.
      const auto x = static_cast<gf16::Elem16>(1 + i * 9973);
      xs.push_back(x);
      ys.push_back(gf16::poly_eval(coeffs, x));
    }
    EXPECT_EQ(gf16::lagrange_at_zero(xs, ys), coeffs[0]);
  }
}

// ---------------------------------------------------------------- Shamir16

TEST(Shamir16, RoundtripBasic) {
  Rng rng(14);
  std::vector<std::uint16_t> secret(100);
  for (auto& s : secret) s = static_cast<std::uint16_t>(rng() & 0xFFFF);
  const auto shares = sss::split16(secret, 3, 7, rng);
  const std::vector<sss::Share16> pick{shares[6], shares[0], shares[3]};
  EXPECT_EQ(sss::reconstruct16(pick), secret);
}

TEST(Shamir16, SupportsHundredsOfShares) {
  // Beyond the GF(256) cap of 255: 1000 shares, threshold 4.
  Rng rng(15);
  std::vector<std::uint16_t> secret{0xBEEF, 0xCAFE, 0x1234};
  const auto shares = sss::split16(secret, 4, 1000, rng);
  EXPECT_EQ(shares.size(), 1000u);
  const std::vector<sss::Share16> pick{shares[999], shares[500], shares[256],
                                       shares[0]};
  EXPECT_EQ(sss::reconstruct16(pick), secret);
}

TEST(Shamir16, K1IsReplication) {
  Rng rng(16);
  const std::vector<std::uint16_t> secret{1, 2, 3};
  const auto shares = sss::split16(secret, 1, 5, rng);
  for (const auto& s : shares) EXPECT_EQ(s.data, secret);
}

TEST(Shamir16, RejectsBadInput) {
  Rng rng(17);
  const std::vector<std::uint16_t> secret{42};
  EXPECT_THROW((void)sss::split16(secret, 0, 1, rng), PreconditionError);
  EXPECT_THROW((void)sss::split16(secret, 3, 2, rng), PreconditionError);
  auto shares = sss::split16(secret, 2, 3, rng);
  std::vector<sss::Share16> dup{shares[0], shares[0]};
  EXPECT_THROW((void)sss::reconstruct16(dup), PreconditionError);
  EXPECT_THROW((void)sss::reconstruct16(std::vector<sss::Share16>{}),
               PreconditionError);
}

TEST(Shamir16, FewerThanKSharesYieldGarbage) {
  Rng rng(18);
  std::vector<std::uint16_t> secret(16);
  for (auto& s : secret) s = static_cast<std::uint16_t>(rng() & 0xFFFF);
  const auto shares = sss::split16(secret, 3, 5, rng);
  const std::vector<sss::Share16> too_few{shares[0], shares[1]};
  EXPECT_NE(sss::reconstruct16(too_few), secret);
}

}  // namespace
}  // namespace mcss
