// SessionEndpoint: flow multiplexing over one shared channel set.
//
// The properties under test are the session layer's safety claims:
// demux isolation (one flow's frames/reports never touch another flow's
// state — both flows deliberately reuse the same packet ids), admission
// accounting, per-flow memory degradation, and churn/teardown safety
// with timers in flight (the ASan leg is the real referee for the
// latter: these tests run under CI's sanitizer job).
#include "session/session_endpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "feedback/report.hpp"
#include "feedback/retransmit.hpp"
#include "net/sim_time.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

using session::FlowParams;
using session::SessionConfig;
using session::SessionEndpoint;

std::vector<std::uint8_t> pattern_payload(std::size_t size, std::uint8_t tag) {
  std::vector<std::uint8_t> payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>(tag ^ (i & 0xFF));
  }
  return payload;
}

SessionConfig clean_config(std::size_t num_channels = 3,
                           double rate_bps = 200e6) {
  SessionConfig config;
  for (std::size_t i = 0; i < num_channels; ++i) {
    net::ChannelConfig ch;
    ch.rate_bps = rate_bps;
    transport::LiveChannelSpec spec;
    spec.config = ch;
    spec.name = "ch" + std::to_string(i);
    config.channels.push_back(std::move(spec));
  }
  config.seed = 7;
  return config;
}

/// Pump the endpoint until `done()` or `wall_ms` of real time passes.
template <typename Pred>
bool run_until(SessionEndpoint& ep, Pred done, std::int64_t wall_ms = 2000) {
  const std::int64_t deadline = ep.now_ns() + wall_ms * 1'000'000;
  while (!done()) {
    if (ep.now_ns() >= deadline) return false;
    ep.run_for(2'000'000);
  }
  return true;
}

TEST(Session, SingleFlowDeliversThroughSessionLayer) {
  SessionConfig config = clean_config();
  config.auth_key = crypto::SipHashKey{{1, 2, 3, 4}};
  SessionEndpoint ep(std::move(config));

  std::map<std::uint64_t, std::vector<std::uint8_t>> delivered;
  std::uint32_t delivered_cid = 0;
  ep.set_deliver([&](std::uint32_t cid, std::uint64_t id,
                     std::vector<std::uint8_t> payload) {
    delivered_cid = cid;
    delivered[id] = std::move(payload);
  });

  const auto cid = ep.open_flow();
  ASSERT_TRUE(cid.has_value());
  EXPECT_NE(*cid, 0u);

  constexpr int kPackets = 12;
  std::map<std::uint64_t, std::vector<std::uint8_t>> sent;
  for (int i = 0; i < kPackets; ++i) {
    auto payload = pattern_payload(200 + static_cast<std::size_t>(i),
                                   static_cast<std::uint8_t>(i));
    sent[static_cast<std::uint64_t>(i + 1)] = payload;
    ASSERT_TRUE(ep.send(*cid, std::move(payload)));
  }
  ASSERT_TRUE(run_until(
      ep, [&] { return delivered.size() == kPackets; }));

  EXPECT_EQ(delivered_cid, *cid);
  EXPECT_EQ(delivered, sent);  // packet ids are flow-scoped, starting at 1
  EXPECT_GT(ep.stats().frames_demuxed, 0u);
  EXPECT_EQ(ep.stats().frames_unknown_connection, 0u);
  EXPECT_EQ(ep.stats().frames_without_connection, 0u);
  const proto::Receiver* rx = ep.flow_receiver(*cid);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->stats().packets_delivered, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(rx->stats().auth_failures, 0u);
}

TEST(Session, FlowsWithEqualPacketIdsNeverMix) {
  // Both flows number their packets 1..N; if demux ever leaked a share
  // across flows, the mixed reassembly would surface as conflicting
  // metadata (the payload sizes differ) or corrupted payloads.
  SessionEndpoint ep(clean_config());

  std::map<std::uint32_t, std::map<std::uint64_t, std::vector<std::uint8_t>>>
      delivered;
  ep.set_deliver([&](std::uint32_t cid, std::uint64_t id,
                     std::vector<std::uint8_t> payload) {
    delivered[cid][id] = std::move(payload);
  });

  const auto a = ep.open_flow();
  const auto b = ep.open_flow();
  ASSERT_TRUE(a && b);
  ASSERT_NE(*a, *b);

  constexpr int kPackets = 8;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(ep.send(*a, pattern_payload(96, 0xA0)));
    ASSERT_TRUE(ep.send(*b, pattern_payload(160, 0xB0)));
  }
  ASSERT_TRUE(run_until(ep, [&] {
    return delivered[*a].size() == kPackets && delivered[*b].size() == kPackets;
  }));

  for (const auto& [id, payload] : delivered[*a]) {
    EXPECT_EQ(payload, pattern_payload(96, 0xA0)) << "flow A packet " << id;
  }
  for (const auto& [id, payload] : delivered[*b]) {
    EXPECT_EQ(payload, pattern_payload(160, 0xB0)) << "flow B packet " << id;
  }
  for (const auto cid : {*a, *b}) {
    const proto::Receiver* rx = ep.flow_receiver(cid);
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(rx->stats().conflicting_metadata, 0u);
    EXPECT_EQ(rx->stats().packets_delivered,
              static_cast<std::uint64_t>(kPackets));
  }
}

TEST(Session, ReportDemuxNeverAcksAnotherFlowsPackets) {
  SessionConfig config = clean_config();
  config.reliability.enabled = true;
  SessionEndpoint ep(std::move(config));

  const auto a = ep.open_flow();
  const auto b = ep.open_flow();
  ASSERT_TRUE(a && b);

  // One packet on each flow; both are packet id 1 within their flows.
  // A single run_for(0) iteration dispatches (managers start tracking)
  // without receiving anything back yet.
  ASSERT_TRUE(ep.send(*a, pattern_payload(64, 0x0A)));
  ASSERT_TRUE(ep.send(*b, pattern_payload(64, 0x0B)));
  ep.run_for(0);
  feedback::RetransmitManager* ma = ep.flow_manager(*a);
  feedback::RetransmitManager* mb = ep.flow_manager(*b);
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  ASSERT_EQ(ma->outstanding(), 1u);
  ASSERT_EQ(mb->outstanding(), 1u);

  // A receiver report for flow A acking packet id 1.
  feedback::ReceiverReport report;
  report.connection_id = *a;
  report.seq = 1;
  report.receiver_time_ns = ep.now_ns();
  report.packets_delivered = 1;
  report.sack_base = 1;
  report.sack = {1};  // bit 0: packet id 1 delivered
  report.channels.resize(ep.num_channels());
  const auto bytes = feedback::encode_report(report);

  ep.on_feedback_datagram(bytes, ep.now_ns());
  // Flow A: acked and closed. Flow B: untouched, even though its packet
  // has the very same id the report acknowledged.
  EXPECT_EQ(ma->stats().packets_acked, 1u);
  EXPECT_EQ(ma->outstanding(), 0u);
  EXPECT_EQ(mb->stats().packets_acked, 0u);
  EXPECT_EQ(mb->stats().reports_received, 0u);
  EXPECT_EQ(mb->outstanding(), 1u);
  EXPECT_EQ(ep.stats().reports_demuxed, 1u);

  // Replaying the same report is dropped by flow A's own seq check.
  ep.on_feedback_datagram(bytes, ep.now_ns());
  EXPECT_EQ(ma->stats().reports_replayed, 1u);
  EXPECT_EQ(ma->stats().packets_acked, 1u);

  // A report without a connection id has no owner in a session: dropped
  // before ANY manager sees it (downgrade to the single-flow encoding
  // must not alias onto some arbitrary flow).
  feedback::ReceiverReport anonymous = report;
  anonymous.connection_id = 0;
  anonymous.seq = 2;
  ep.on_feedback_datagram(feedback::encode_report(anonymous), ep.now_ns());
  EXPECT_EQ(ep.stats().reports_without_connection, 1u);
  EXPECT_EQ(mb->stats().reports_received, 0u);

  // Unknown connection id (closed flow / forgery): likewise dropped.
  feedback::ReceiverReport stranger = report;
  stranger.connection_id = 0x7777;
  stranger.seq = 3;
  ep.on_feedback_datagram(feedback::encode_report(stranger), ep.now_ns());
  EXPECT_EQ(ep.stats().reports_unknown_connection, 1u);
  EXPECT_EQ(mb->outstanding(), 1u);
}

TEST(Session, AdmissionSharesRateBudgetAndRefusesBeyondIt) {
  // Small channels so the budget admits only a handful of flows.
  SessionConfig config = clean_config(3, 1e6);  // 3 x 125 kB/s
  SessionEndpoint ep(std::move(config));

  FlowParams params;
  params.rate_pps = 50.0;
  params.payload_bytes = 256;

  std::vector<std::uint32_t> admitted;
  while (true) {
    const auto cid = ep.open_flow(params);
    if (!cid) break;
    admitted.push_back(*cid);
    ASSERT_LT(admitted.size(), 1000u) << "admission never refused";
  }
  EXPECT_GT(admitted.size(), 0u);
  EXPECT_EQ(ep.stats().flows_rejected_rate, 1u);
  // The reservation ledger matches the budget: admitted rate fits, one
  // more flow would not.
  EXPECT_LE(ep.admitted_bytes_per_s(), ep.admission_budget_bytes_per_s());
  EXPECT_GT(ep.admitted_bytes_per_s() +
                ep.admitted_bytes_per_s() / static_cast<double>(admitted.size()),
            ep.admission_budget_bytes_per_s());

  // Closing a flow releases its reservation; the next open succeeds.
  ASSERT_TRUE(ep.close_flow(admitted.back()));
  const auto reopened = ep.open_flow(params);
  EXPECT_TRUE(reopened.has_value());

  // The capacity cap refuses independently of rate.
  SessionConfig tiny = clean_config();
  tiny.limits.max_flows = 2;
  SessionEndpoint small(std::move(tiny));
  EXPECT_TRUE(small.open_flow());
  EXPECT_TRUE(small.open_flow());
  EXPECT_FALSE(small.open_flow());
  EXPECT_EQ(small.stats().flows_rejected_capacity, 1u);
}

TEST(Session, MemoryPressureEvictsWithinTheOffendingFlowOnly) {
  // Channel 2 loses 90% of its frames. Flow A insists on k = m = 3, so
  // nearly every packet is stuck as a 2-share partial until its flow-
  // local memory cap evicts it. Flow B sends k = 1 singletons that
  // complete instantly. A's pressure must never evict B's state, and B
  // must keep delivering while A degrades.
  SessionConfig config = clean_config();
  config.channels[2].config.loss = 0.9;
  config.receiver.reassembly_timeout = net::from_millis(5000);
  config.limits.per_flow_memory_bytes = 4096;
  SessionEndpoint ep(std::move(config));

  std::map<std::uint32_t, std::size_t> delivered;
  ep.set_deliver([&](std::uint32_t cid, std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered[cid];
  });

  FlowParams heavy;
  heavy.kappa = 3.0;
  heavy.mu = 3.0;
  heavy.payload_bytes = 1024;
  FlowParams light;
  light.kappa = 1.0;
  light.mu = 1.0;
  light.payload_bytes = 64;
  const auto a = ep.open_flow(heavy);
  const auto b = ep.open_flow(light);
  ASSERT_TRUE(a && b);

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      ep.send(*a, pattern_payload(1024, 0xAA));
      ep.send(*b, pattern_payload(64, 0xBB));
    }
    ep.run_for(30'000'000);
  }

  const proto::Receiver* ra = ep.flow_receiver(*a);
  const proto::Receiver* rb = ep.flow_receiver(*b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  // The offending flow degraded within its own cap...
  EXPECT_GT(ra->stats().packets_evicted_memory +
                ra->stats().shares_dropped_memory,
            0u);
  EXPECT_LE(ra->buffered_bytes(), 4096u);
  // ...while its neighbour was untouched and kept delivering.
  EXPECT_EQ(rb->stats().packets_evicted_memory, 0u);
  EXPECT_EQ(rb->stats().shares_dropped_memory, 0u);
  EXPECT_GT(delivered[*b], 0u);
}

TEST(Session, TeardownBetweenArmAndFireIsSafe) {
  // A flow is closed while (a) its RTO timer is armed on the shared
  // wheel, (b) reassembly eviction timers for its partials are parked in
  // the shared timeline, and (c) its shares are still in flight. Running
  // well past every deadline afterwards must touch no freed state — the
  // CI sanitizer leg turns any violation into a failure.
  SessionConfig config = clean_config();
  config.channels[2].config.loss = 0.9;  // keep partials open at close
  config.reliability.enabled = true;
  config.receiver.reassembly_timeout = net::from_millis(50);
  SessionEndpoint ep(std::move(config));

  FlowParams stubborn;
  stubborn.kappa = 3.0;
  stubborn.mu = 3.0;
  const auto cid = ep.open_flow(stubborn);
  ASSERT_TRUE(cid.has_value());
  for (int i = 0; i < 6; ++i) {
    ep.send(*cid, pattern_payload(512, 0xCC));
  }
  ep.run_for(5'000'000);  // dispatch, deliver some shares, arm the RTO
  ASSERT_TRUE(ep.close_flow(*cid));
  EXPECT_EQ(ep.num_flows(), 0u);

  // Cross the RTO (200 ms default), the report interval, and the
  // reassembly timeout. Late shares of the closed flow must be counted
  // as unknown-connection, not fed to anything.
  ep.run_for(300'000'000);
  EXPECT_FALSE(ep.close_flow(*cid));  // already gone
  EXPECT_EQ(ep.stats().flows_closed, 1u);
}

TEST(Session, ManyflowChurnSoak) {
  // >= 1k concurrent flows with arrivals, departures, retransmission
  // machinery armed, and traffic on every flow — seeded, so the ASan leg
  // replays the same churn. This is the flow-scale regression net: leaks
  // of per-flow state, stale intrusive-list links, or timers outliving
  // their flow all surface here.
  SessionConfig config = clean_config(3, 2e9);
  config.reliability.enabled = true;
  config.limits.max_flows = 4096;
  SessionEndpoint ep(std::move(config));

  std::map<std::uint32_t, std::size_t> delivered;
  ep.set_deliver([&](std::uint32_t cid, std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered[cid];
  });

  FlowParams params;
  params.rate_pps = 5.0;
  params.payload_bytes = 64;

  Rng rng(42);
  std::vector<std::uint32_t> open;
  constexpr std::size_t kTarget = 1200;
  while (open.size() < kTarget) {
    for (int i = 0; i < 100 && open.size() < kTarget; ++i) {
      const auto cid = ep.open_flow(params);
      ASSERT_TRUE(cid.has_value());
      open.push_back(*cid);
      ep.send(*cid, pattern_payload(64, static_cast<std::uint8_t>(*cid)));
    }
    ep.run_for(1'000'000);
  }
  EXPECT_EQ(ep.num_flows(), kTarget);

  // Churn: replace 600 flows, one packet each, pumping as we go.
  constexpr std::size_t kChurn = 600;
  for (std::size_t i = 0; i < kChurn; ++i) {
    const std::size_t victim =
        static_cast<std::size_t>(rng.uniform_int(open.size()));
    ASSERT_TRUE(ep.close_flow(open[victim]));
    const auto cid = ep.open_flow(params);
    ASSERT_TRUE(cid.has_value());
    open[victim] = *cid;
    ep.send(*cid, pattern_payload(64, static_cast<std::uint8_t>(*cid)));
    if (i % 50 == 49) ep.run_for(2'000'000);
  }
  ep.run_for(100'000'000);  // drain

  EXPECT_EQ(ep.num_flows(), kTarget);
  EXPECT_EQ(ep.stats().flows_opened, kTarget + kChurn);
  EXPECT_EQ(ep.stats().flows_closed, kChurn);
  // The overwhelming majority of packets deliver; the losses are those
  // in flight when their flow was churned out (counted as unknown
  // connection at the demux, never misrouted).
  EXPECT_GT(ep.stats().packets_delivered,
            (8 * ep.stats().packets_sent) / 10);
  EXPECT_EQ(ep.stats().frames_without_connection, 0u);
  EXPECT_GT(ep.stats().reports_demuxed, 0u);

  std::size_t delivered_to_live = 0;
  for (const auto cid : open) delivered_to_live += delivered[cid];
  EXPECT_GT(delivered_to_live, 0u);

  for (const auto cid : open) ASSERT_TRUE(ep.close_flow(cid));
  EXPECT_EQ(ep.num_flows(), 0u);
  ep.run_for(50'000'000);  // let every orphaned timer fire as a no-op
}

}  // namespace
}  // namespace mcss
