// Tests for the deterministic parallel sweep substrate (src/runtime):
// ordered commits, full index coverage, the sequential fallback paths,
// exception propagation, and bitwise determinism across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace mcss::runtime {
namespace {

/// Restores the thread override on scope exit so tests do not leak their
/// parallelism setting into each other.
struct ThreadGuard {
  explicit ThreadGuard(unsigned n) { set_threads(n); }
  ~ThreadGuard() { set_threads(1); }
};

TEST(ThreadPool, DestructionDrainsTheQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }  // joins after running every queued task
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, OnWorkerIsTrueOnlyOnPoolThreads) {
  EXPECT_FALSE(ThreadPool::on_worker());
  ThreadPool pool(1);
  std::atomic<bool> seen{false};
  std::atomic<bool> value{false};
  pool.submit([&] {
    value = ThreadPool::on_worker();
    seen = true;
  });
  while (!seen.load()) std::this_thread::yield();
  EXPECT_TRUE(value.load());
  EXPECT_FALSE(ThreadPool::on_worker());
}

TEST(ForEachOrdered, CommitsEveryIndexInOrder) {
  ThreadGuard guard(4);
  const std::size_t n = 200;
  std::vector<std::size_t> committed;
  for_each_ordered(
      n, [](std::size_t i) { return i * i; },
      [&](std::size_t i, std::size_t value) {
        EXPECT_EQ(value, i * i);
        committed.push_back(i);
      });
  ASSERT_EQ(committed.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(committed[i], i);
}

TEST(ForEachOrdered, CommitRunsOnCallingThread) {
  ThreadGuard guard(4);
  const auto caller = std::this_thread::get_id();
  for_each_ordered(
      64, [](std::size_t i) { return i; },
      [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
      });
}

TEST(ForEachOrdered, SingleThreadUsesInlineSequentialPath) {
  ThreadGuard guard(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  for_each_ordered(
      10,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return i + 1;
      },
      [&](std::size_t i, std::size_t value) {
        EXPECT_EQ(value, i + 1);
        order.push_back(i);
      });
  EXPECT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ForEachOrdered, DeterministicAcrossThreadCounts) {
  // Every index owns its own seeded Rng — the sweep-point pattern. The
  // committed sequence must be identical for 1 and 8 threads.
  const auto run = [](unsigned threads) {
    ThreadGuard guard(threads);
    std::string transcript;
    for_each_ordered(
        50,
        [](std::size_t i) {
          Rng rng(1000 + static_cast<std::uint64_t>(i));
          return rng();
        },
        [&](std::size_t i, std::uint64_t v) {
          transcript += std::to_string(i) + ":" + std::to_string(v) + "\n";
        });
    return transcript;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ForEachOrdered, ComputeExceptionPropagatesToCaller) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      for_each_ordered(
          100,
          [](std::size_t i) -> int {
            if (i == 37) throw std::runtime_error("boom");
            return 0;
          },
          [](std::size_t, int) {}),
      std::runtime_error);
}

TEST(ForEachOrdered, CommitExceptionPropagatesToCaller) {
  ThreadGuard guard(4);
  std::size_t committed = 0;
  EXPECT_THROW(for_each_ordered(
                   100, [](std::size_t i) { return i; },
                   [&](std::size_t, std::size_t) {
                     if (++committed == 5) throw std::runtime_error("stop");
                   }),
               std::runtime_error);
  EXPECT_EQ(committed, 5u);
}

TEST(ForEachOrdered, NestedCallDegradesToSequential) {
  ThreadGuard guard(4);
  std::atomic<std::size_t> total{0};
  for_each_ordered(
      8,
      [&](std::size_t) {
        // Inside a pool worker the nested helper must not deadlock on
        // the same pool; it runs inline instead.
        std::size_t local = 0;
        for_each_ordered(
            4, [](std::size_t j) { return j; },
            [&](std::size_t, std::size_t v) { local += v; });
        return local;
      },
      [&](std::size_t, std::size_t v) { total += v; });
  EXPECT_EQ(total.load(), 8u * (0 + 1 + 2 + 3));
}

TEST(ParallelForIndexed, CoversAllIndicesExactlyOnce) {
  ThreadGuard guard(4);
  const std::size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_indexed(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Configure, SetThreadsOverridesAndZeroMeansOne) {
  set_threads(7);
  EXPECT_EQ(configured_threads(), 7u);
  set_threads(0);
  EXPECT_EQ(configured_threads(), 1u);
}

}  // namespace
}  // namespace mcss::runtime
