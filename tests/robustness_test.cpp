// Robustness suite: adversarial and random inputs against every
// wire-facing decoder and the receiver state machine. Nothing here may
// crash, hang, leak accounting, or deliver corrupted data.
#include <gtest/gtest.h>

#include <vector>

#include "net/simulator.hpp"
#include "protocol/micss.hpp"
#include "protocol/receiver.hpp"
#include "protocol/tunnel.hpp"
#include "protocol/wire.hpp"
#include "util/rng.hpp"

namespace mcss::proto {
namespace {

std::vector<std::uint8_t> random_buffer(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> buf(rng.uniform_int(max_len + 1));
  for (auto& b : buf) b = rng.byte();
  return buf;
}

// ---------------------------------------------------------------- decoders

TEST(Fuzz, ShareDecodeNeverCrashesOnRandomBytes) {
  Rng rng(1);
  int parsed = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto buf = random_buffer(rng, 64);
    const auto frame = decode(buf);
    if (frame) ++parsed;
  }
  // Random bytes essentially never satisfy magic+version+length checks.
  EXPECT_EQ(parsed, 0);
}

TEST(Fuzz, ShareDecodeOnMutatedValidFrames) {
  // Start from a valid frame; apply random mutations. Decode must either
  // reject or return a self-consistent frame — never crash.
  Rng rng(2);
  ShareFrame base;
  base.packet_id = 777;
  base.k = 3;
  base.share_index = 2;
  base.payload.assign(100, 0x5C);
  const auto pristine = encode(base);
  for (int i = 0; i < 100000; ++i) {
    auto buf = pristine;
    const int mutations = 1 + static_cast<int>(rng.uniform_int(4));
    for (int m = 0; m < mutations; ++m) {
      buf[rng.uniform_int(buf.size())] = rng.byte();
    }
    const auto frame = decode(buf);
    if (frame) {
      EXPECT_GE(frame->k, 1);
      EXPECT_GE(frame->share_index, 1);
      EXPECT_EQ(frame->payload.size(), 100u);
    }
  }
}

TEST(Fuzz, AuthenticatedDecodeRejectsAllMutations) {
  // With a key, ANY byte mutation must be rejected (tag over everything).
  Rng rng(3);
  crypto::SipHashKey key{};
  for (auto& b : key) b = rng.byte();
  ShareFrame base;
  base.packet_id = 5;
  base.k = 2;
  base.share_index = 1;
  base.payload.assign(64, 0xA1);
  const auto pristine = encode(base, &key);
  ASSERT_TRUE(decode(pristine, &key).has_value());
  for (int i = 0; i < 50000; ++i) {
    auto buf = pristine;
    const auto pos = rng.uniform_int(buf.size());
    const std::uint8_t flip = static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    buf[pos] ^= flip;
    EXPECT_FALSE(decode(buf, &key).has_value());
  }
}

TEST(Fuzz, AckAndTunnelDecodersNeverCrash) {
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    const auto buf = random_buffer(rng, 40);
    (void)decode_ack(buf);
    (void)decode_datagram(buf);
  }
  SUCCEED();
}

// ---------------------------------------------------------------- receiver

TEST(Fuzz, ReceiverSurvivesGarbageStorm) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 64 * 1024;
  cfg.reassembly_timeout = net::from_millis(5);
  Receiver rx(sim, cfg);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  Rng rng(5);
  ShareFrame valid;
  valid.payload.assign(200, 1);
  for (int i = 0; i < 50000; ++i) {
    switch (rng.uniform_int(4)) {
      case 0:  // pure garbage
        rx.on_frame(random_buffer(rng, 48));
        break;
      case 1: {  // valid frame, random identity
        valid.packet_id = rng.uniform_int(500);
        valid.k = static_cast<std::uint8_t>(1 + rng.uniform_int(5));
        valid.share_index = static_cast<std::uint8_t>(1 + rng.uniform_int(8));
        rx.on_frame(encode(valid));
        break;
      }
      case 2: {  // mutated valid frame
        auto buf = encode(valid);
        buf[rng.uniform_int(buf.size())] = rng.byte();
        rx.on_frame(std::move(buf));
        break;
      }
      default:  // let timers fire occasionally
        sim.run_until(sim.now() + net::from_micros(100));
        break;
    }
    // Memory accounting must never exceed the configured cap.
    ASSERT_LE(rx.buffered_bytes(), cfg.memory_limit_bytes);
  }
  sim.run();
  EXPECT_EQ(rx.buffered_bytes(), 0u);  // everything evicted or delivered
  EXPECT_GT(delivered, 0);             // some packets did complete
  const auto& stats = rx.stats();
  EXPECT_GT(stats.malformed_frames, 0u);
  // Counter consistency: every frame is accounted exactly once.
  EXPECT_GE(stats.frames_received,
            stats.malformed_frames + stats.duplicate_shares + stats.late_shares);
}

TEST(Fuzz, ReceiverAppendStormNeverExceedsMemoryCap) {
  // Append-heavy variant of the storm: a LONG timeout (so timer-driven
  // eviction cannot mask cap violations) and few packet ids with large
  // k, so most accepted shares APPEND to existing partials — the path
  // that historically bypassed the memory cap entirely.
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 4 * 1024;
  cfg.reassembly_timeout = net::from_seconds(1000);
  Receiver rx(sim, cfg);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  Rng rng(9);
  ShareFrame f;
  f.payload.assign(300, 2);
  for (int i = 0; i < 30000; ++i) {
    f.packet_id = rng.uniform_int(32);  // few ids -> mostly appends
    f.k = 5;
    f.share_index = static_cast<std::uint8_t>(1 + rng.uniform_int(8));
    rx.on_frame(encode(f));
    ASSERT_LE(rx.buffered_bytes(), cfg.memory_limit_bytes);
    ASSERT_EQ(rx.tracked_partials(), rx.pending_packets());
  }
  EXPECT_GT(delivered, 0);
  // The cap holds 13 shares and the storm keeps ~32 partials in flight,
  // so staying under it requires memory evictions — and with the timers
  // never firing, ONLY the memory path can have done the evicting.
  EXPECT_GT(rx.stats().packets_evicted_memory, 0u);
  EXPECT_EQ(rx.stats().packets_evicted_timeout, 0u);
}

TEST(Fuzz, ReceiverDeliversOnlyConsistentPackets) {
  // Mix two "versions" of shares for the same packet id with different
  // sizes: the receiver must keep the first and deliver an intact packet
  // of that version, never a franken-packet.
  net::Simulator sim;
  Receiver rx(sim);
  std::vector<std::uint8_t> got;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) { got = std::move(p); });

  Rng rng(6);
  sss::Share dummy;
  ShareFrame a;
  a.packet_id = 1;
  a.k = 2;
  a.share_index = 1;
  a.payload.assign(50, 0xAA);
  rx.on_frame(encode(a));
  ShareFrame conflicting = a;
  conflicting.share_index = 2;
  conflicting.payload.assign(60, 0xBB);  // different size: rejected
  rx.on_frame(encode(conflicting));
  EXPECT_TRUE(got.empty());
  ShareFrame b = a;
  b.share_index = 2;
  b.payload.assign(50, 0xBB);
  rx.on_frame(encode(b));
  EXPECT_EQ(got.size(), 50u);  // reconstructed from the consistent pair
}

// ---------------------------------------------------------------- MICSS

TEST(Fuzz, MicssReceiverSurvivesGarbage) {
  net::Simulator sim;
  Rng seeder(7);
  net::ChannelConfig cc;
  net::SimChannel data(sim, cc, seeder.fork());
  net::SimChannel ack(sim, cc, seeder.fork());
  std::vector<net::SimChannel*> data_in{&data};
  std::vector<net::SimChannel*> ack_out{&ack};
  MicssReceiver rx(sim, data_in, ack_out);

  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    // Inject directly through the channel to exercise the full path.
    auto buf = random_buffer(rng, 64);
    if (buf.empty()) continue;
    (void)data.try_send(std::move(buf));
  }
  sim.run();
  EXPECT_EQ(rx.stats().packets_delivered, 0u);
}

}  // namespace
}  // namespace mcss::proto
