// Full-stack integration scenarios: every subsystem composed at once.
// Uses only the umbrella header, which doubles as its compilation test.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "mcss.hpp"

namespace mcss {
namespace {

crypto::SipHashKey session_key() {
  crypto::SipHashKey key{};
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xC0 + i);
  }
  return key;
}

TEST(Integration, HostileNetworkFullStack) {
  // Authenticated ReMICSS + IP tunnel over five channels that are
  // simultaneously lossy, jittery, corrupting, duplicating, AND suffer a
  // silent outage — every delivered TCP-like datagram must be intact and
  // in order.
  net::Simulator sim;
  Rng root(77);

  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 5; ++i) {
    net::ChannelConfig cfg;
    cfg.rate_bps = 50e6;
    cfg.loss = 0.05;
    cfg.delay = net::from_millis(1);
    cfg.jitter = net::from_millis(2);
    cfg.corrupt = 0.02;
    cfg.duplicate = 0.02;
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
    wires.push_back(storage.back().get());
  }
  // Channel 2 goes dark for 200 ms mid-run.
  sim.schedule_at(net::from_millis(300), [&] { wires[2]->set_down(true); });
  sim.schedule_at(net::from_millis(500), [&] { wires[2]->set_down(false); });

  proto::ReceiverConfig rx_cfg;
  rx_cfg.auth_key = session_key();
  proto::SenderConfig tx_cfg;
  tx_cfg.auth_key = session_key();

  std::vector<proto::IpDatagram> delivered;
  proto::TunnelEgress egress(sim, {}, [&](const proto::IpDatagram& dg) {
    delivered.push_back(dg);
  });
  proto::Receiver rx(sim, rx_cfg);
  for (auto* w : wires) rx.attach(*w);
  rx.set_deliver(egress.receiver_hook());

  // kappa = 2, mu = 5: three shares of slack against loss+corruption+outage.
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(2.0, 5.0, 5),
                   root.fork(), nullptr, tx_cfg);
  proto::TunnelIngress ingress(tx);

  const int count = 1500;
  for (int i = 0; i < count; ++i) {
    sim.schedule_at(net::from_micros(static_cast<double>(i) * 600), [&, i] {
      proto::IpDatagram dg;
      dg.src = {10, 1, 1, 1};
      dg.dst = {10, 1, 1, 2};
      dg.protocol = 6;
      dg.payload = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8),
                    0x42};
      (void)ingress.send(dg);
    });
  }
  sim.run();

  // Corruption was detected and quarantined, not passed through.
  EXPECT_GT(rx.stats().auth_failures, 0u);
  // Despite ~5% loss + 2% corruption + an outage, the k=2/m=5 margin and
  // ordered egress deliver nearly everything, strictly in order.
  EXPECT_GT(delivered.size(), static_cast<std::size_t>(count) * 95 / 100);
  int expected = -1;
  for (const auto& dg : delivered) {
    const int seq = dg.payload[0] | (dg.payload[1] << 8);
    EXPECT_GT(seq, expected);  // strictly increasing (gaps allowed)
    expected = seq;
    EXPECT_EQ(dg.payload[2], 0x42);  // payload integrity
  }
}

TEST(Integration, RemicssOutperformsMicssUnderLoss) {
  // The paper's core protocol argument, as one assertion: on lossy
  // channels, best-effort threshold shares (ReMICSS) sustain multiples of
  // the goodput of reliable n-of-n transport (MICSS), which stalls on
  // every lost share.
  const double loss = 0.05;
  const double duration_s = 2.0;

  // --- ReMICSS at kappa = 3, mu = 5 (same privacy floor as MICSS k=n
  // against 2-channel adversaries is kappa >= 3; generous to MICSS).
  auto run_remicss = [&] {
    net::Simulator sim;
    Rng root(5);
    std::vector<std::unique_ptr<net::SimChannel>> storage;
    std::vector<net::SimChannel*> wires;
    for (int i = 0; i < 5; ++i) {
      net::ChannelConfig cfg;
      cfg.rate_bps = 20e6;
      cfg.loss = loss;
      cfg.delay = net::from_millis(1);
      storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
      wires.push_back(storage.back().get());
    }
    proto::Receiver rx(sim);
    for (auto* w : wires) rx.attach(*w);
    std::uint64_t bytes = 0;
    rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) {
      bytes += p.size();
    });
    proto::Sender tx(sim, wires,
                     std::make_unique<proto::DynamicScheduler>(3.0, 5.0, 5),
                     root.fork());
    workload::CbrSource source(sim, 100e6, 1470, 0,
                               net::from_seconds(duration_s),
                               [&](std::vector<std::uint8_t> p) {
                                 return tx.send(std::move(p));
                               });
    sim.run();
    return static_cast<double>(bytes) * 8 / duration_s / 1e6;
  };

  // --- MICSS (k = m = 5, reliable ARQ on every share).
  auto run_micss = [&] {
    net::Simulator sim;
    Rng root(6);
    std::vector<std::unique_ptr<net::SimChannel>> fwd_storage, rev_storage;
    std::vector<net::SimChannel*> fwd, rev;
    for (int i = 0; i < 5; ++i) {
      net::ChannelConfig cfg;
      cfg.rate_bps = 20e6;
      cfg.loss = loss;
      cfg.delay = net::from_millis(1);
      fwd_storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
      fwd.push_back(fwd_storage.back().get());
      rev_storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
      rev.push_back(rev_storage.back().get());
    }
    proto::MicssReceiver rx(sim, fwd, rev);
    std::uint64_t bytes = 0;
    rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) {
      bytes += p.size();
    });
    proto::MicssConfig cfg;
    cfg.rto = net::from_millis(10);
    cfg.window_packets = 64;
    proto::MicssSender tx(sim, fwd, rev, root.fork(), cfg);
    workload::CbrSource source(sim, 100e6, 1470, 0,
                               net::from_seconds(duration_s),
                               [&](std::vector<std::uint8_t> p) {
                                 return tx.send(std::move(p));
                               });
    sim.run();
    return static_cast<double>(bytes) * 8 / duration_s / 1e6;
  };

  const double remicss_mbps = run_remicss();
  const double micss_mbps = run_micss();
  // ReMICSS at mu = 5 over 5 x 20 Mbps: ~20 Mbps goodput ceiling, minus
  // the l(3, M) symbol loss. MICSS is also ceilinged at ~20 Mbps but
  // pays ARQ stalls on ~23% of packets (1 - 0.95^5).
  EXPECT_GT(remicss_mbps, 17.0);
  EXPECT_GT(remicss_mbps, micss_mbps * 1.15);
}

TEST(Integration, PlannerPredictionsHoldEndToEnd) {
  // plan_parameters -> custom schedule -> run_experiment: measured risk
  // proxy (kappa floor), loss, and rate must match the plan.
  const auto setup = workload::lossy_setup();
  const auto model = setup.to_model(1470);
  PlannerGoal goal;
  goal.max_loss = 0.01;
  goal.max_risk = 0.10;
  const auto plan = plan_parameters(model, goal);
  ASSERT_TRUE(plan.feasible);

  workload::ExperimentConfig cfg;
  cfg.setup = setup;
  cfg.kappa = plan.kappa;
  cfg.mu = plan.mu;
  cfg.scheduler = workload::SchedulerKind::Custom;
  cfg.custom_schedule = plan.schedule;
  cfg.offered_bps = 0.95 * plan.rate * 1470 * 8;
  cfg.duration_s = 1.0;
  const auto result = workload::run_experiment(cfg);

  EXPECT_NEAR(result.achieved_kappa, plan.kappa, 0.05);
  EXPECT_NEAR(result.achieved_mu, plan.mu, 0.05);
  EXPECT_LT(result.loss_fraction, 0.015);  // plan guaranteed <= 0.01 + noise
  EXPECT_GT(result.achieved_mbps, 0.90 * plan.rate * 1470 * 8 / 1e6);
}

TEST(Integration, RiskPipelineShiftsScheduleOffHotChannels) {
  // HMM risk -> model -> max-rate LP: channels flagged by the sensor
  // stream should carry no more than their rate quota, and the LP should
  // prefer arrangements where hot channels need co-conspirators.
  const auto risk_model = risk::ChannelRiskModel::standard();
  Rng rng(8);
  std::vector<std::vector<int>> traces(5, std::vector<int>(30, risk::kNoAlert));
  traces[1].assign(30, risk::kIntrusion);  // channel 1 is hot
  auto setup = workload::lossy_setup();
  setup.risks = risk::assess_risks(risk_model, traces);
  const auto model = setup.to_model(1470);
  ASSERT_GT(model[1].risk, 0.5);

  const auto lp = solve_schedule_lp(model, {.objective = Objective::Risk,
                                            .kappa = 2.0,
                                            .mu = 3.0,
                                            .rate = RateConstraint::MaxRate});
  ASSERT_EQ(lp.status, lp::Status::Optimal);
  // The max-rate constraint pins total usage per channel; what the LP
  // controls is WHICH (k, M) combinations include the hot channel. Verify
  // the hot channel never appears in a k = 1 singleton (which would hand
  // packets to the adversary outright).
  for (const auto& entry : lp.schedule->entries()) {
    if (mask_contains(entry.channels, 1)) {
      EXPECT_GE(entry.k, 2) << "hot channel used with k = 1";
    }
  }
}

TEST(Integration, ScenarioFileDrivesAuthenticatedEcho) {
  // Scenario parser -> experiment with echo; smoke-checks the composed
  // path used by the scenario_sim tool.
  auto scenario = workload::parse_scenario(
      "channel rate=30Mbps delay=2ms\n"
      "channel rate=30Mbps delay=1ms\n"
      "channel rate=30Mbps delay=4ms\n"
      "kappa 2\nmu 2\n"
      "offered 10Mbps\nduration 0.4s\necho on\n");
  const auto result = workload::run_scenario(scenario);
  EXPECT_GT(result.packets_delivered_window, 0u);
  // kappa = 2: reconstruction waits for the 2nd-fastest share; one-way
  // delay must be >= the 2nd-smallest channel delay under light load.
  EXPECT_GE(result.mean_delay_s, 0.002);
  EXPECT_LT(result.mean_delay_s, 0.006);
}

}  // namespace
}  // namespace mcss
