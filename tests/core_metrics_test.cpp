// Tests for channels and subset metrics z/l/d(k, M) — paper Section IV-A —
// including Monte Carlo validation against a direct simulation of the
// single-symbol protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/channel.hpp"
#include "core/optimal.hpp"
#include "core/subset_metrics.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

ChannelSet random_channels(Rng& rng, int n) {
  std::vector<Channel> cs;
  for (int i = 0; i < n; ++i) {
    cs.push_back({rng.uniform(), rng.uniform(0.0, 0.9), rng.uniform(0.0, 20.0),
                  rng.uniform(1.0, 100.0)});
  }
  return ChannelSet(std::move(cs));
}

// ---------------------------------------------------------------- ChannelSet

TEST(ChannelSet, ValidatesRanges) {
  EXPECT_THROW(ChannelSet({}), PreconditionError);
  EXPECT_THROW(ChannelSet({{-0.1, 0, 0, 1}}), PreconditionError);
  EXPECT_THROW(ChannelSet({{1.1, 0, 0, 1}}), PreconditionError);
  EXPECT_THROW(ChannelSet({{0, 1.0, 0, 1}}), PreconditionError);  // loss == 1 excluded
  EXPECT_THROW(ChannelSet({{0, -0.1, 0, 1}}), PreconditionError);
  EXPECT_THROW(ChannelSet({{0, 0, -1, 1}}), PreconditionError);
  EXPECT_THROW(ChannelSet({{0, 0, 0, 0}}), PreconditionError);  // rate == 0 excluded
  EXPECT_NO_THROW(ChannelSet({{0, 0, 0, 1}, {1, 0.99, 100, 0.001}}));
}

TEST(ChannelSet, AccessorsAndViews) {
  const ChannelSet c{{0.1, 0.01, 2.0, 5.0}, {0.2, 0.02, 9.0, 20.0}};
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.all(), 0b11u);
  EXPECT_EQ(c.risks(), (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(c.losses(), (std::vector<double>{0.01, 0.02}));
  EXPECT_EQ(c.delays(), (std::vector<double>{2.0, 9.0}));
  EXPECT_EQ(c.rates(), (std::vector<double>{5.0, 20.0}));
  EXPECT_DOUBLE_EQ(c.total_rate(), 25.0);
  EXPECT_DOUBLE_EQ(c.max_rate(), 20.0);
}

// ---------------------------------------------------------------- subset risk

TEST(SubsetRisk, SingleChannelIsItsRisk) {
  const ChannelSet c{{0.37, 0, 0, 1}};
  EXPECT_NEAR(subset_risk(c, 1, 0b1), 0.37, 1e-12);
}

TEST(SubsetRisk, ThresholdOneIsUnionBound) {
  // z(1, M) = 1 - prod(1 - z_i): adversary needs any one share.
  const ChannelSet c{{0.1, 0, 0, 1}, {0.2, 0, 0, 1}, {0.3, 0, 0, 1}};
  EXPECT_NEAR(subset_risk(c, 1, 0b111), 1.0 - 0.9 * 0.8 * 0.7, 1e-12);
}

TEST(SubsetRisk, FullThresholdIsProduct) {
  // z(|M|, M) = prod z_i: adversary needs every share.
  const ChannelSet c{{0.1, 0, 0, 1}, {0.2, 0, 0, 1}, {0.3, 0, 0, 1}};
  EXPECT_NEAR(subset_risk(c, 3, 0b111), 0.1 * 0.2 * 0.3, 1e-12);
}

TEST(SubsetRisk, MonotoneDecreasingInK) {
  Rng rng(1);
  const auto c = random_channels(rng, 6);
  const Mask m = c.all();
  for (int k = 1; k < 6; ++k) {
    EXPECT_GE(subset_risk(c, k, m), subset_risk(c, k + 1, m) - 1e-12);
  }
}

TEST(SubsetRisk, AddingRiskyChannelWithHigherKImprovesPrivacy) {
  // The k = m diagonal: every extra required share multiplies the risk down.
  const ChannelSet c{{0.5, 0, 0, 1}, {0.5, 0, 0, 1}, {0.5, 0, 0, 1}};
  EXPECT_NEAR(subset_risk(c, 1, 0b001), 0.5, 1e-12);
  EXPECT_NEAR(subset_risk(c, 2, 0b011), 0.25, 1e-12);
  EXPECT_NEAR(subset_risk(c, 3, 0b111), 0.125, 1e-12);
}

TEST(SubsetRisk, DpMatchesBruteforce) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    const auto c = random_channels(rng, n);
    for_each_nonempty_subset(n, [&](Mask m) {
      for (int k = 1; k <= mask_size(m); ++k) {
        EXPECT_NEAR(subset_risk(c, k, m), subset_risk_bruteforce(c, k, m), 1e-10);
      }
    });
  }
}

TEST(SubsetRisk, RejectsInvalidArguments) {
  const ChannelSet c{{0.1, 0, 0, 1}, {0.2, 0, 0, 1}};
  EXPECT_THROW((void)subset_risk(c, 1, 0), PreconditionError);       // empty M
  EXPECT_THROW((void)subset_risk(c, 0, 0b11), PreconditionError);    // k < 1
  EXPECT_THROW((void)subset_risk(c, 3, 0b11), PreconditionError);    // k > |M|
  EXPECT_THROW((void)subset_risk(c, 1, 0b100), PreconditionError);   // outside C
}

// ---------------------------------------------------------------- subset loss

TEST(SubsetLoss, SingleChannelIsItsLoss) {
  const ChannelSet c{{0, 0.25, 0, 1}};
  EXPECT_NEAR(subset_loss(c, 1, 0b1), 0.25, 1e-12);
}

TEST(SubsetLoss, ThresholdOneIsAllLost) {
  // l(1, M) = prod l_i: the symbol survives if any share does.
  const ChannelSet c{{0, 0.1, 0, 1}, {0, 0.2, 0, 1}, {0, 0.3, 0, 1}};
  EXPECT_NEAR(subset_loss(c, 1, 0b111), 0.1 * 0.2 * 0.3, 1e-12);
}

TEST(SubsetLoss, FullThresholdIsAnyLost) {
  // l(|M|, M) = 1 - prod(1 - l_i): losing any share loses the symbol.
  const ChannelSet c{{0, 0.1, 0, 1}, {0, 0.2, 0, 1}, {0, 0.3, 0, 1}};
  EXPECT_NEAR(subset_loss(c, 3, 0b111), 1.0 - 0.9 * 0.8 * 0.7, 1e-12);
}

TEST(SubsetLoss, MonotoneIncreasingInK) {
  Rng rng(3);
  const auto c = random_channels(rng, 6);
  for (int k = 1; k < 6; ++k) {
    EXPECT_LE(subset_loss(c, k, c.all()), subset_loss(c, k + 1, c.all()) + 1e-12);
  }
}

TEST(SubsetLoss, RedundancyHelps) {
  // Same k, growing M: adding channels can only reduce loss.
  const ChannelSet c{{0, 0.3, 0, 1}, {0, 0.3, 0, 1}, {0, 0.3, 0, 1}};
  EXPECT_GT(subset_loss(c, 1, 0b001), subset_loss(c, 1, 0b011));
  EXPECT_GT(subset_loss(c, 1, 0b011), subset_loss(c, 1, 0b111));
}

TEST(SubsetLoss, DpMatchesBruteforce) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    const auto c = random_channels(rng, n);
    for_each_nonempty_subset(n, [&](Mask m) {
      for (int k = 1; k <= mask_size(m); ++k) {
        EXPECT_NEAR(subset_loss(c, k, m), subset_loss_bruteforce(c, k, m), 1e-10);
      }
    });
  }
}

TEST(SubsetLoss, LosslessChannelsNeverLose) {
  const ChannelSet c{{0, 0, 0, 1}, {0, 0, 0, 1}};
  EXPECT_EQ(subset_loss(c, 2, 0b11), 0.0);
}

// ---------------------------------------------------------------- subset delay

TEST(SubsetDelay, LosslessCollapsesToOrderStatistic) {
  // Paper: with all l_i = 0, d(k, M) = delta_M(k), the k-th smallest delay.
  const ChannelSet c{{0, 0, 7.0, 1}, {0, 0, 2.0, 1}, {0, 0, 5.0, 1}};
  EXPECT_DOUBLE_EQ(subset_delay(c, 1, 0b111), 2.0);
  EXPECT_DOUBLE_EQ(subset_delay(c, 2, 0b111), 5.0);
  EXPECT_DOUBLE_EQ(subset_delay(c, 3, 0b111), 7.0);
}

TEST(SubsetDelay, SingleChannel) {
  const ChannelSet c{{0, 0.5, 11.0, 1}};
  // Conditioned on arrival, the delay is just d_i regardless of loss.
  EXPECT_DOUBLE_EQ(subset_delay(c, 1, 0b1), 11.0);
}

TEST(SubsetDelay, TwoChannelHandComputation) {
  // Channels (d=1, l=0.5) and (d=10, l=0). k=1:
  //   K={1,2} w=0.5 -> delay 1; K={2} w=0.5 -> delay 10.
  //   d = (0.5*1 + 0.5*10) / 1.0 = 5.5.
  const ChannelSet c{{0, 0.5, 1.0, 1}, {0, 0.0, 10.0, 1}};
  EXPECT_NEAR(subset_delay(c, 1, 0b11), 5.5, 1e-12);
}

TEST(SubsetDelay, LossShiftsDelayTowardSlowerChannels) {
  const ChannelSet lossless{{0, 0.0, 1.0, 1}, {0, 0.0, 10.0, 1}};
  const ChannelSet lossy{{0, 0.4, 1.0, 1}, {0, 0.0, 10.0, 1}};
  EXPECT_GT(subset_delay(lossy, 1, 0b11), subset_delay(lossless, 1, 0b11));
}

TEST(SubsetDelay, MonotoneIncreasingInK) {
  Rng rng(5);
  const auto c = random_channels(rng, 6);
  for (int k = 1; k < 6; ++k) {
    EXPECT_LE(subset_delay(c, k, c.all()), subset_delay(c, k + 1, c.all()) + 1e-12);
  }
}

// -------------------------------------------------- Monte Carlo ground truth

// Simulate the single-symbol protocol directly: one share per channel of M,
// each observed with probability z_i, lost with probability l_i, arriving
// after d_i. Estimate z/l/d(k, M) empirically and compare with the formulas.
struct MonteCarloResult {
  double risk;
  double loss;
  double delay;
};

MonteCarloResult simulate(const ChannelSet& c, int k, Mask m, Rng& rng,
                          int trials) {
  int observed = 0;
  int lost = 0;
  double delay_sum = 0.0;
  int delivered = 0;
  std::vector<double> arrivals;
  for (int t = 0; t < trials; ++t) {
    int eavesdropped = 0;
    arrivals.clear();
    for_each_member(m, [&](int i) {
      if (rng.bernoulli(c[i].risk)) ++eavesdropped;
      if (!rng.bernoulli(c[i].loss)) arrivals.push_back(c[i].delay);
    });
    if (eavesdropped >= k) ++observed;
    if (arrivals.size() < static_cast<std::size_t>(k)) {
      ++lost;
    } else {
      std::nth_element(arrivals.begin(), arrivals.begin() + (k - 1), arrivals.end());
      delay_sum += arrivals[static_cast<std::size_t>(k - 1)];
      ++delivered;
    }
  }
  return {static_cast<double>(observed) / trials,
          static_cast<double>(lost) / trials,
          delivered ? delay_sum / delivered : 0.0};
}

class SubsetMetricsMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetMetricsMonteCarloTest, FormulasMatchSimulation) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const int n = 3 + static_cast<int>(rng.uniform_int(3));
  const auto c = random_channels(rng, n);
  const Mask m = c.all();
  const int k = 1 + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(n)));
  const auto mc = simulate(c, k, m, rng, 200000);
  EXPECT_NEAR(mc.risk, subset_risk(c, k, m), 0.01);
  EXPECT_NEAR(mc.loss, subset_loss(c, k, m), 0.01);
  if (subset_loss(c, k, m) < 0.98) {
    EXPECT_NEAR(mc.delay, subset_delay(c, k, m), 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetMetricsMonteCarloTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------- optima

TEST(OptimalClosedForms, RiskIsProductOfAllRisks) {
  const ChannelSet c{{0.5, 0, 0, 1}, {0.25, 0, 0, 1}, {0.5, 0, 0, 1}};
  EXPECT_NEAR(optimal_risk(c), 0.0625, 1e-12);
  // Achieved by the p(n, C) = 1 schedule.
  EXPECT_NEAR(schedule_risk(c, max_privacy_schedule(c)), optimal_risk(c), 1e-12);
}

TEST(OptimalClosedForms, LossIsProductOfAllLosses) {
  const ChannelSet c{{0, 0.1, 0, 1}, {0, 0.2, 0, 1}};
  EXPECT_NEAR(optimal_loss(c), 0.02, 1e-12);
  EXPECT_NEAR(schedule_loss(c, min_loss_schedule(c)), optimal_loss(c), 1e-12);
}

TEST(OptimalClosedForms, DelayLosslessIsMinimum) {
  const ChannelSet c{{0, 0, 3.0, 1}, {0, 0, 1.5, 1}, {0, 0, 9.0, 1}};
  EXPECT_DOUBLE_EQ(optimal_delay(c), 1.5);
}

TEST(OptimalClosedForms, DelayClosedFormMatchesSubsetDelay) {
  // D_C must equal d(1, C): two independent implementations of the same
  // quantity (ordered-weighting closed form vs subset enumeration).
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(5));
    const auto c = random_channels(rng, n);
    EXPECT_NEAR(optimal_delay(c), subset_delay(c, 1, c.all()), 1e-9);
  }
}

TEST(OptimalClosedForms, DelayHandComputedWithLoss) {
  // Channels sorted by delay: (d=1, l=0.5), (d=4, l=0.25).
  // D = [0.5*1 + 0.5*0.75*4] / (1 - 0.125) = 2/0.875.
  const ChannelSet c{{0, 0.5, 1.0, 1}, {0, 0.25, 4.0, 1}};
  EXPECT_NEAR(optimal_delay(c), (0.5 * 1.0 + 0.5 * 0.75 * 4.0) / (1 - 0.5 * 0.25),
              1e-12);
}

TEST(OptimalClosedForms, ScheduleRiskNeverBeatsOptimal) {
  Rng rng(7);
  const auto c = random_channels(rng, 5);
  // Any schedule's risk is >= Z_C (it is the best achievable).
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 1 + static_cast<int>(rng.uniform_int(5));
    const int msize = k + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(6 - k)));
    Mask m = 0;
    while (mask_size(m) < msize) {
      m |= Mask{1} << rng.uniform_int(5);
    }
    const ShareSchedule p(c, {{k, m, 1.0}});
    EXPECT_GE(schedule_risk(c, p), optimal_risk(c) - 1e-12);
    EXPECT_GE(schedule_loss(c, p), optimal_loss(c) - 1e-12);
    // Conditional delay can undercut D_C on subsets that exclude lossy
    // slow channels; the unconditional floor is the fastest delay.
    std::vector<double> delays = c.delays();
    EXPECT_GE(schedule_delay(c, p),
              *std::min_element(delays.begin(), delays.end()) - 1e-9);
  }
}

}  // namespace
}  // namespace mcss
