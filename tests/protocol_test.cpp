// End-to-end tests for the ReMICSS protocol: schedulers, sender, receiver
// reassembly, loss tolerance, eviction, and the MICSS baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/micss.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "protocol/wire.hpp"
#include "util/rng.hpp"

namespace mcss::proto {
namespace {

/// A one-way testbed: n channels from sender to receiver.
struct Testbed {
  net::Simulator sim;
  std::vector<std::unique_ptr<net::SimChannel>> channels;
  std::unique_ptr<Receiver> receiver;
  std::unique_ptr<Sender> sender;
  std::map<std::uint64_t, std::vector<std::uint8_t>> delivered;

  Testbed(std::vector<net::ChannelConfig> configs,
          std::unique_ptr<ShareScheduler> scheduler,
          ReceiverConfig rx_config = {}, SenderConfig tx_config = {},
          std::uint64_t seed = 1) {
    Rng seeder(seed);
    std::vector<net::SimChannel*> raw;
    for (auto& cfg : configs) {
      channels.push_back(
          std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
      raw.push_back(channels.back().get());
    }
    receiver = std::make_unique<Receiver>(sim, rx_config);
    for (auto* ch : raw) receiver->attach(*ch);
    receiver->set_deliver([this](std::uint64_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
    sender = std::make_unique<Sender>(sim, raw, std::move(scheduler),
                                      seeder.fork(), nullptr, tx_config);
  }
};

std::vector<net::ChannelConfig> uniform_channels(int n, double rate_bps,
                                                 double loss = 0.0) {
  net::ChannelConfig cfg;
  cfg.rate_bps = rate_bps;
  cfg.loss = loss;
  cfg.delay = net::from_micros(100);
  cfg.queue_capacity_bytes = 64 * 1024;
  std::vector<net::ChannelConfig> v(static_cast<std::size_t>(n), cfg);
  return v;
}

std::vector<std::uint8_t> pattern_payload(std::size_t len, std::uint8_t seed) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return p;
}

// ---------------------------------------------------------------- schedulers

TEST(DynamicScheduler, PicksLeastBackloggedReadyChannels) {
  DynamicScheduler sched(2.0, 2.0, 4);
  const std::vector<ChannelView> view{{true, 400}, {true, 100}, {false, 0}, {true, 200}};
  const auto d = sched.next(view);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->k, 2);
  EXPECT_EQ(d->channels, (std::vector<int>{1, 3}));  // two least-backlogged ready
}

TEST(DynamicScheduler, EqualBacklogTiesBreakByChannelIndex) {
  // Regression: with every backlog equal (the startup state of every
  // sweep), the selected M must be the lowest channel indices — an
  // explicit total order, not an artifact of one stdlib's sort. A
  // divergent tiebreak here changes which channels carry shares and
  // fans out into every downstream measurement.
  DynamicScheduler sched(2.0, 3.0, 5);
  const std::vector<ChannelView> all_equal{
      {true, 700}, {true, 700}, {true, 700}, {true, 700}, {true, 700}};
  const auto d = sched.next(all_equal);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->channels, (std::vector<int>{0, 1, 2}));

  // Partial ties: channel 4's smaller backlog wins, then the tied pair
  // 1 < 3 fills the remaining slots.
  DynamicScheduler sched2(2.0, 3.0, 5);
  const std::vector<ChannelView> partial{
      {true, 900}, {true, 500}, {false, 0}, {true, 500}, {true, 100}};
  const auto d2 = sched2.next(partial);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->channels, (std::vector<int>{4, 1, 3}));
}

TEST(DynamicScheduler, DefersWhenTooFewReady) {
  DynamicScheduler sched(3.0, 3.0, 4);
  const std::vector<ChannelView> only_two{{true, 0}, {true, 0}, {false, 0}, {false, 0}};
  EXPECT_FALSE(sched.next(only_two).has_value());
  // Once enough channels free up, the SAME (k, m) decision is offered.
  const std::vector<ChannelView> three{{true, 0}, {true, 0}, {true, 0}, {false, 0}};
  const auto d = sched.next(three);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->channels.size(), 3u);
}

TEST(DynamicScheduler, DeferralDoesNotSkewAverages) {
  // Alternate readiness so every other call defers; kappa/mu of ACCEPTED
  // decisions must still match the targets.
  DynamicScheduler sched(1.5, 2.5, 4);
  const std::vector<ChannelView> all{{true, 0}, {true, 0}, {true, 0}, {true, 0}};
  const std::vector<ChannelView> none{{false, 0}, {false, 0}, {false, 0}, {false, 0}};
  double sum_k = 0, sum_m = 0;
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_FALSE(sched.next(none).has_value());
    const auto d = sched.next(all);
    ASSERT_TRUE(d.has_value());
    sum_k += d->k;
    sum_m += static_cast<double>(d->channels.size());
    ++accepted;
  }
  EXPECT_NEAR(sum_k / accepted, 1.5, 0.01);
  EXPECT_NEAR(sum_m / accepted, 2.5, 0.01);
}

TEST(StaticScheduler, WaitsForItsSampledSubset) {
  const ChannelSet cs{{0, 0, 0, 1}, {0, 0, 0, 1}};
  // Deterministic schedule: always (2, {0, 1}).
  StaticScheduler sched(ShareSchedule(cs, {{2, 0b11, 1.0}}), Rng(1));
  const std::vector<ChannelView> ch0_busy{{false, 0}, {true, 0}};
  EXPECT_FALSE(sched.next(ch0_busy).has_value());
  const std::vector<ChannelView> both{{true, 0}, {true, 0}};
  const auto d = sched.next(both);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->k, 2);
  EXPECT_EQ(d->channels, (std::vector<int>{0, 1}));
}

TEST(StaticScheduler, FullParkedPoolEvictsOldestInsteadOfWedging) {
  // Regression: once pool_limit_ undispatchable decisions were parked,
  // next() returned nullopt forever — even though the schedule could
  // still sample subsets that ARE writable. With channel 0 stuck busy,
  // the dominant (1, {0}) entry quickly fills the pool; the scheduler
  // must keep drawing (evicting stale parked entries) until it samples
  // the rare (1, {1}) entry that channel 1 can take.
  const ChannelSet cs{{0, 0, 0, 1}, {0, 0, 0, 1}};
  StaticScheduler sched(
      ShareSchedule(cs, {{1, 0b01, 0.999}, {1, 0b10, 0.001}}), Rng(7),
      /*pool_limit=*/4);
  const std::vector<ChannelView> ch0_busy{{false, 0}, {true, 0}};

  std::optional<ShareDecision> d;
  int calls = 0;
  for (; calls < 10000 && !d; ++calls) d = sched.next(ch0_busy);
  ASSERT_TRUE(d.has_value()) << "scheduler wedged after " << calls << " calls";
  EXPECT_EQ(d->channels, (std::vector<int>{1}));
  // The pool filled long before the rare entry came up, so progress
  // required evicting parked decisions.
  EXPECT_GT(sched.stats().parked_evicted, 0u);

  // Recovery: once channel 0 frees up, parked (1, {0}) work dispatches.
  const std::vector<ChannelView> both{{true, 0}, {true, 0}};
  const auto parked = sched.next(both);
  ASSERT_TRUE(parked.has_value());
  EXPECT_EQ(parked->channels, (std::vector<int>{0}));
  EXPECT_GT(sched.stats().parked_dispatched, 0u);
}

TEST(FixedScheduler, RequiresAllChannels) {
  FixedScheduler sched(3, 3);
  const std::vector<ChannelView> missing_one{{true, 0}, {true, 0}, {false, 0}};
  EXPECT_FALSE(sched.next(missing_one).has_value());
  const std::vector<ChannelView> all{{true, 0}, {true, 0}, {true, 0}};
  const auto d = sched.next(all);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->k, 3);
  EXPECT_EQ(d->channels, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------- end to end

TEST(EndToEnd, SinglePacketRoundtrip) {
  Testbed t(uniform_channels(3, 10e6),
            std::make_unique<DynamicScheduler>(2.0, 3.0, 3));
  const auto payload = pattern_payload(1000, 7);
  ASSERT_TRUE(t.sender->send(payload));
  t.sim.run();
  ASSERT_EQ(t.delivered.size(), 1u);
  EXPECT_EQ(t.delivered.begin()->second, payload);
}

TEST(EndToEnd, ManyPacketsAllDeliveredInLosslessNetwork) {
  Testbed t(uniform_channels(5, 100e6),
            std::make_unique<DynamicScheduler>(2.5, 3.5, 5));
  const int count = 500;
  std::map<std::uint64_t, std::vector<std::uint8_t>> sent;
  std::uint64_t id = 1;  // sender assigns ids 1..count in order
  for (int i = 0; i < count; ++i) {
    auto payload = pattern_payload(1200, static_cast<std::uint8_t>(i));
    // Pace offers so the bounded sender queue never rejects.
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 200),
                      [&t, p = payload] { ASSERT_TRUE(t.sender->send(p)); });
    sent[id++] = std::move(payload);
  }
  t.sim.run();
  EXPECT_EQ(t.delivered.size(), static_cast<std::size_t>(count));
  for (const auto& [pid, payload] : sent) {
    ASSERT_TRUE(t.delivered.contains(pid)) << "packet " << pid;
    EXPECT_EQ(t.delivered.at(pid), payload) << "packet " << pid;
  }
  EXPECT_EQ(t.receiver->stats().packets_delivered, static_cast<std::uint64_t>(count));
  EXPECT_EQ(t.receiver->stats().malformed_frames, 0u);
  EXPECT_EQ(t.sender->stats().shares_dropped_at_channel, 0u);
}

TEST(EndToEnd, AchievedKappaMuMatchTargets) {
  Testbed t(uniform_channels(5, 100e6),
            std::make_unique<DynamicScheduler>(1.7, 3.3, 5));
  for (int i = 0; i < 2000; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 150),
                      [&t] { (void)t.sender->send(pattern_payload(500, 1)); });
  }
  t.sim.run();
  EXPECT_NEAR(t.sender->stats().achieved_kappa(), 1.7, 0.01);
  EXPECT_NEAR(t.sender->stats().achieved_mu(), 3.3, 0.01);
}

TEST(EndToEnd, ToleratesMMinusKLosses) {
  // k=2, m=5 on channels with 20% loss: a packet dies only if 4+ of its 5
  // shares die. Over 1000 packets expect ~(loss cases) per subset loss
  // formula; verify the measured rate is close.
  auto configs = uniform_channels(5, 100e6, 0.2);
  Testbed t(configs, std::make_unique<DynamicScheduler>(2.0, 5.0, 5),
            ReceiverConfig{}, SenderConfig{}, /*seed=*/42);
  const int count = 4000;
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 200),
                      [&t] { (void)t.sender->send(pattern_payload(800, 3)); });
  }
  t.sim.run();
  // l(2, M) for 5 iid channels at 0.2: P(fewer than 2 arrive)
  //   = 0.2^5 + 5 * 0.8 * 0.2^4 = 0.00672.
  const double loss_rate =
      1.0 - static_cast<double>(t.delivered.size()) / count;
  EXPECT_NEAR(loss_rate, 0.00672, 0.006);
  // Every delivered packet is intact despite lost shares.
  for (const auto& [id, payload] : t.delivered) {
    EXPECT_EQ(payload, pattern_payload(800, 3));
  }
}

TEST(EndToEnd, HigherKappaIsMoreFragile) {
  // Same channels, kappa = mu = 5 (need every share): loss should be
  // 1 - 0.8^5 = 67%.
  Testbed t(uniform_channels(5, 100e6, 0.2),
            std::make_unique<DynamicScheduler>(5.0, 5.0, 5),
            ReceiverConfig{}, SenderConfig{}, 43);
  const int count = 3000;
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 300),
                      [&t] { (void)t.sender->send(pattern_payload(400, 5)); });
  }
  t.sim.run();
  const double loss_rate =
      1.0 - static_cast<double>(t.delivered.size()) / count;
  EXPECT_NEAR(loss_rate, 1.0 - std::pow(0.8, 5), 0.03);
}

TEST(EndToEnd, BackpressureWhenQueueFull) {
  SenderConfig small;
  small.max_queue_packets = 4;
  // One very slow channel: the queue must fill.
  Testbed t(uniform_channels(1, 1e4),
            std::make_unique<DynamicScheduler>(1.0, 1.0, 1), ReceiverConfig{},
            small);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    accepted += t.sender->send(pattern_payload(1000, 1));
  }
  EXPECT_LT(accepted, 100);
  EXPECT_EQ(t.sender->stats().packets_rejected,
            static_cast<std::uint64_t>(100 - accepted));
  t.sim.run();
}

TEST(EndToEnd, SenderRejectsOversizedPacket) {
  Testbed t(uniform_channels(2, 10e6),
            std::make_unique<DynamicScheduler>(1.0, 1.0, 2));
  EXPECT_THROW((void)t.sender->send(std::vector<std::uint8_t>(kMaxPayload + 1, 0)),
               PreconditionError);
}

// ---------------------------------------------------------------- receiver

TEST(Receiver, EvictsStalePartialsOnTimeout) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.reassembly_timeout = net::from_millis(10);
  Receiver rx(sim, cfg);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  // One share of a k=2 packet; the second never arrives.
  ShareFrame f;
  f.packet_id = 99;
  f.k = 2;
  f.share_index = 1;
  f.payload = {1, 2, 3};
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.pending_packets(), 1u);
  sim.run();
  EXPECT_EQ(rx.pending_packets(), 0u);
  EXPECT_EQ(rx.stats().packets_evicted_timeout, 1u);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx.buffered_bytes(), 0u);
}

TEST(Receiver, LateShareAfterTimeoutDoesNotResurrect) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.reassembly_timeout = net::from_millis(10);
  Receiver rx(sim, cfg);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  ShareFrame f;
  f.packet_id = 7;
  f.k = 2;
  f.share_index = 1;
  f.payload = {1};
  rx.on_frame(encode(f));
  sim.run_until(net::from_millis(20));  // timeout fires
  EXPECT_EQ(rx.stats().packets_evicted_timeout, 1u);
  // The second share arrives late: starts a NEW partial, times out again.
  f.share_index = 2;
  rx.on_frame(encode(f));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx.stats().packets_evicted_timeout, 2u);
}

TEST(Receiver, MemoryCapEvictsOldestFirst) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 3000;
  cfg.reassembly_timeout = net::from_seconds(100);
  Receiver rx(sim, cfg);

  // Three k=2 partials of 1000 bytes each fill the budget.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ShareFrame f;
    f.packet_id = id;
    f.k = 2;
    f.share_index = 1;
    f.payload.assign(1000, static_cast<std::uint8_t>(id));
    sim.schedule_in(net::from_millis(static_cast<double>(id)),
                    [&rx, f] { rx.on_frame(encode(f)); });
  }
  // run_until, not run(): run() would also fire the (distant) reassembly
  // timers and evict everything before we can assert on the memory cap.
  sim.run_until(net::from_millis(5));
  EXPECT_EQ(rx.pending_packets(), 3u);
  // A fourth forces out the oldest (id 1).
  ShareFrame f;
  f.packet_id = 4;
  f.k = 2;
  f.share_index = 1;
  f.payload.assign(1000, 4);
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.pending_packets(), 3u);
  EXPECT_EQ(rx.stats().packets_evicted_memory, 1u);

  // Completing id 2 still works (it was not evicted).
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t id2, std::vector<std::uint8_t>) {
    EXPECT_EQ(id2, 2u);
    ++delivered;
  });
  f.packet_id = 2;
  f.share_index = 2;
  f.payload.assign(1000, 2);
  rx.on_frame(encode(f));
  EXPECT_EQ(delivered, 1);
}

TEST(Receiver, AppendsRespectMemoryCap) {
  // Regression: the cap used to be enforced only when a NEW partial was
  // created; appends to existing partials grew buffered_bytes_ past the
  // limit unchecked. Two k=3 partials plus appends drive usage to 4x the
  // share size — above the old cap of 3x.
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 3000;
  cfg.reassembly_timeout = net::from_seconds(100);
  Receiver rx(sim, cfg);

  ShareFrame f;
  f.k = 3;
  f.payload.assign(1000, 0xab);
  f.packet_id = 1;
  f.share_index = 1;
  rx.on_frame(encode(f));
  f.packet_id = 2;
  rx.on_frame(encode(f));
  f.packet_id = 1;
  f.share_index = 2;
  rx.on_frame(encode(f));  // 3000 bytes buffered: exactly at the cap
  EXPECT_EQ(rx.buffered_bytes(), 3000u);
  EXPECT_EQ(rx.stats().packets_evicted_memory, 0u);

  // A third share for id 1 must evict id 2 (the only other partial),
  // never id 1 itself, and must keep the cap invariant.
  f.share_index = 3;
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t>) {
    EXPECT_EQ(id, 1u);
    ++delivered;
  });
  rx.on_frame(encode(f));  // completes id 1 with its three shares
  EXPECT_LE(rx.buffered_bytes(), cfg.memory_limit_bytes);
  EXPECT_EQ(rx.stats().packets_evicted_memory, 1u);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rx.pending_packets(), 0u);
}

TEST(Receiver, UnfittableShareIsDroppedNotBuffered) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 1500;
  cfg.reassembly_timeout = net::from_seconds(100);
  Receiver rx(sim, cfg);

  // An oversized first share can never fit: dropped, nothing tracked.
  ShareFrame f;
  f.packet_id = 1;
  f.k = 3;
  f.share_index = 1;
  f.payload.assign(2000, 1);
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().shares_dropped_memory, 1u);
  EXPECT_EQ(rx.pending_packets(), 0u);
  EXPECT_EQ(rx.buffered_bytes(), 0u);

  // An append that cannot fit even after evicting every OTHER partial
  // (there are none) is dropped; the partial it extends survives intact.
  f.payload.assign(1000, 2);
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.buffered_bytes(), 1000u);
  f.share_index = 2;
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().shares_dropped_memory, 2u);
  EXPECT_EQ(rx.buffered_bytes(), 1000u);
  EXPECT_EQ(rx.pending_packets(), 1u);
}

TEST(Receiver, CreationOrderIsPrunedOnCompletionAndEviction) {
  // Regression: creation_order_ used to leak one entry per completed or
  // timeout-evicted packet, so the eviction scan degraded over time.
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.reassembly_timeout = net::from_millis(10);
  Receiver rx(sim, cfg);
  rx.set_deliver([](std::uint64_t, std::vector<std::uint8_t>) {});

  ShareFrame f;
  f.k = 1;  // single share completes immediately
  f.payload = {42};
  for (std::uint64_t id = 1; id <= 100; ++id) {
    f.packet_id = id;
    f.share_index = 1;
    rx.on_frame(encode(f));
  }
  EXPECT_EQ(rx.stats().packets_delivered, 100u);
  EXPECT_EQ(rx.pending_packets(), 0u);
  EXPECT_EQ(rx.tracked_partials(), 0u);

  // Timeout evictions must prune their entries too.
  f.k = 2;
  f.packet_id = 200;
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.tracked_partials(), 1u);
  sim.run();
  EXPECT_EQ(rx.stats().packets_evicted_timeout, 1u);
  EXPECT_EQ(rx.tracked_partials(), 0u);
}

TEST(Receiver, TimeoutAndMemoryEvictionInterplay) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.memory_limit_bytes = 2500;
  cfg.reassembly_timeout = net::from_millis(10);
  Receiver rx(sim, cfg);

  const auto share = [](std::uint64_t id) {
    ShareFrame f;
    f.packet_id = id;
    f.k = 2;
    f.share_index = 1;
    f.payload.assign(1000, static_cast<std::uint8_t>(id));
    return encode(f);
  };
  rx.on_frame(share(1));
  sim.schedule_in(net::from_millis(5), [&] { rx.on_frame(share(2)); });
  // At 12 ms packet 1 has timed out; 2 is alive. Packets 3 and 4 then
  // arrive back to back: 3 fits next to 2, 4 must evict 2 (the oldest
  // SURVIVOR — the timeout already reclaimed 1's bytes).
  sim.schedule_in(net::from_millis(12), [&] {
    EXPECT_EQ(rx.stats().packets_evicted_timeout, 1u);
    EXPECT_EQ(rx.buffered_bytes(), 1000u);
    rx.on_frame(share(3));
    rx.on_frame(share(4));
    EXPECT_EQ(rx.stats().packets_evicted_memory, 1u);
    EXPECT_EQ(rx.pending_packets(), 2u);
    EXPECT_LE(rx.buffered_bytes(), cfg.memory_limit_bytes);
  });
  sim.run();
  // Everything eventually times out; bookkeeping must drain to zero.
  EXPECT_EQ(rx.pending_packets(), 0u);
  EXPECT_EQ(rx.tracked_partials(), 0u);
  EXPECT_EQ(rx.buffered_bytes(), 0u);
}

TEST(Receiver, CompletedHistoryIsBounded) {
  net::Simulator sim;
  ReceiverConfig cfg;
  cfg.completed_history = 4;
  Receiver rx(sim, cfg);
  rx.set_deliver([](std::uint64_t, std::vector<std::uint8_t>) {});

  ShareFrame f;
  f.k = 1;
  f.payload = {7};
  f.share_index = 1;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    f.packet_id = id;
    rx.on_frame(encode(f));
  }
  // Id 6 is still remembered: its replay is a late share. Id 1 has
  // fallen out of the 4-deep history: its replay starts a new partial
  // (delivered again immediately since k = 1 — duplicate delivery is
  // the documented cost of the bounded history).
  f.packet_id = 6;
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().late_shares, 1u);
  f.packet_id = 1;
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().late_shares, 1u);
  EXPECT_EQ(rx.stats().packets_delivered, 7u);
}

TEST(Receiver, DuplicateAndLateShareAccounting) {
  net::Simulator sim;
  Receiver rx(sim);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  ShareFrame f;
  f.packet_id = 5;
  f.k = 2;
  f.share_index = 1;
  f.payload = {1, 1};
  rx.on_frame(encode(f));
  rx.on_frame(encode(f));  // duplicate (same id, same index)
  EXPECT_EQ(rx.stats().duplicate_shares, 1u);

  f.share_index = 2;
  f.payload = {2, 2};
  rx.on_frame(encode(f));  // completes
  EXPECT_EQ(delivered, 1);

  f.share_index = 3;
  f.payload = {3, 3};
  rx.on_frame(encode(f));  // share for a completed packet
  EXPECT_EQ(rx.stats().late_shares, 1u);
  EXPECT_EQ(delivered, 1);
}

TEST(Receiver, ConflictingMetadataIsRejected) {
  net::Simulator sim;
  Receiver rx(sim);
  ShareFrame f;
  f.packet_id = 6;
  f.k = 3;
  f.share_index = 1;
  f.payload = {1, 2};
  rx.on_frame(encode(f));
  // Same packet id with a different threshold.
  f.k = 2;
  f.share_index = 2;
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().conflicting_metadata, 1u);
  // Same packet id with a different share size.
  f.k = 3;
  f.share_index = 3;
  f.payload = {1, 2, 3};
  rx.on_frame(encode(f));
  EXPECT_EQ(rx.stats().conflicting_metadata, 2u);
}

TEST(Receiver, MalformedFramesAreCounted) {
  net::Simulator sim;
  Receiver rx(sim);
  rx.on_frame({1, 2, 3});
  EXPECT_EQ(rx.stats().malformed_frames, 1u);
  EXPECT_EQ(rx.pending_packets(), 0u);
}

// ---------------------------------------------------------------- MICSS

struct MicssTestbed {
  net::Simulator sim;
  std::vector<std::unique_ptr<net::SimChannel>> forward;
  std::vector<std::unique_ptr<net::SimChannel>> reverse;
  std::unique_ptr<MicssReceiver> receiver;
  std::unique_ptr<MicssSender> sender;
  std::map<std::uint64_t, std::vector<std::uint8_t>> delivered;

  explicit MicssTestbed(int n, double loss, std::uint64_t seed = 1,
                        MicssConfig cfg = {}) {
    Rng seeder(seed);
    std::vector<net::SimChannel*> fwd, rev;
    for (int i = 0; i < n; ++i) {
      net::ChannelConfig c;
      c.rate_bps = 50e6;
      c.loss = loss;
      c.delay = net::from_millis(1);
      forward.push_back(std::make_unique<net::SimChannel>(sim, c, seeder.fork()));
      fwd.push_back(forward.back().get());
      c.loss = loss;  // acks can be lost too
      reverse.push_back(std::make_unique<net::SimChannel>(sim, c, seeder.fork()));
      rev.push_back(reverse.back().get());
    }
    receiver = std::make_unique<MicssReceiver>(sim, fwd, rev);
    receiver->set_deliver([this](std::uint64_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
    sender = std::make_unique<MicssSender>(sim, fwd, rev, seeder.fork(), cfg);
  }
};

TEST(Micss, DeliversWithoutLoss) {
  MicssTestbed t(3, 0.0);
  const auto payload = pattern_payload(500, 9);
  ASSERT_TRUE(t.sender->send(payload));
  t.sim.run();
  ASSERT_EQ(t.delivered.size(), 1u);
  EXPECT_EQ(t.delivered.begin()->second, payload);
  EXPECT_EQ(t.sender->stats().retransmissions, 0u);
  EXPECT_EQ(t.sender->stats().packets_completed, 1u);
  EXPECT_EQ(t.sender->in_flight(), 0u);
}

TEST(Micss, RecoversFromLossViaRetransmission) {
  MicssConfig cfg;
  cfg.window_packets = 1024;  // ample: no sends bounce off the window
  MicssTestbed t(4, 0.15, 7, cfg);
  const int count = 200;
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_millis(static_cast<double>(i)),
                      [&t] { ASSERT_TRUE(t.sender->send(pattern_payload(300, 2))); });
  }
  t.sim.run();
  // Reliable: EVERYTHING is eventually delivered, at the cost of
  // retransmissions (15% share loss + ack loss guarantees many).
  EXPECT_EQ(t.delivered.size(), static_cast<std::size_t>(count));
  EXPECT_GT(t.sender->stats().retransmissions, 50u);
  for (const auto& [id, payload] : t.delivered) {
    EXPECT_EQ(payload, pattern_payload(300, 2));
  }
}

TEST(Micss, WindowStallsUnderLoss) {
  MicssConfig cfg;
  cfg.window_packets = 2;
  cfg.rto = net::from_millis(100);
  MicssTestbed t(3, 0.5, 11, cfg);
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    accepted += t.sender->send(pattern_payload(100, 1));
  }
  // With a 2-packet window and heavy loss, most immediate sends bounce.
  EXPECT_LE(accepted, 2);
  EXPECT_GT(t.sender->stats().packets_rejected, 0u);
  t.sim.run();
}

}  // namespace
}  // namespace mcss::proto
