// Tests for the parameter planner and the LP metric-ceiling rows.
#include <gtest/gtest.h>

#include "core/lp_schedule.hpp"
#include "core/optimal.hpp"
#include "core/planner.hpp"
#include "core/rate.hpp"
#include "util/ensure.hpp"
#include "workload/setups.hpp"

namespace mcss {
namespace {

ChannelSet testbed() {
  // Lossy testbed rates/losses + Delayed testbed delays.
  const auto lossy = workload::lossy_setup().to_model(1470);
  const auto delayed = workload::delayed_setup().to_model(1470);
  std::vector<Channel> merged;
  for (int i = 0; i < lossy.size(); ++i) {
    merged.push_back(
        {lossy[i].risk, lossy[i].loss, delayed[i].delay, lossy[i].rate});
  }
  return ChannelSet(std::move(merged));
}

// ---------------------------------------------------------------- ceilings

TEST(LpCeilings, BindingRiskCeilingChangesOptimum) {
  const auto c = testbed();
  // Minimize risk with a delay ceiling: compare against the unconstrained
  // minimum-risk solution's delay.
  ScheduleLpSpec unconstrained{.objective = Objective::Risk,
                               .kappa = 2.0,
                               .mu = 3.0,
                               .rate = RateConstraint::MaxRate};
  const auto base = solve_schedule_lp(c, unconstrained);
  ASSERT_EQ(base.status, lp::Status::Optimal);
  const double base_delay = schedule_delay(c, *base.schedule);

  auto constrained = unconstrained;
  constrained.max_delay = base_delay * 0.5;  // force a different tradeoff
  const auto tight = solve_schedule_lp(c, constrained);
  if (tight.status == lp::Status::Optimal) {
    EXPECT_LE(schedule_delay(c, *tight.schedule), base_delay * 0.5 + 1e-9);
    EXPECT_GE(tight.objective_value, base.objective_value - 1e-9);
  } else {
    EXPECT_EQ(tight.status, lp::Status::Infeasible);
  }
}

TEST(LpCeilings, NonBindingCeilingIsFree) {
  const auto c = testbed();
  ScheduleLpSpec spec{.objective = Objective::Risk,
                      .kappa = 2.0,
                      .mu = 3.0,
                      .rate = RateConstraint::MaxRate};
  const auto base = solve_schedule_lp(c, spec);
  spec.max_loss = 1.0;   // trivially satisfied
  spec.max_delay = 1e9;  // trivially satisfied
  const auto loose = solve_schedule_lp(c, spec);
  ASSERT_EQ(base.status, lp::Status::Optimal);
  ASSERT_EQ(loose.status, lp::Status::Optimal);
  EXPECT_NEAR(base.objective_value, loose.objective_value, 1e-9);
}

TEST(LpCeilings, ImpossibleCeilingIsInfeasible) {
  const auto c = testbed();
  ScheduleLpSpec spec{.objective = Objective::Delay,
                      .kappa = 2.0,
                      .mu = 3.0,
                      .rate = RateConstraint::MaxRate};
  spec.max_risk = 1e-12;  // no schedule at kappa = 2 is this private
  EXPECT_EQ(solve_schedule_lp(c, spec).status, lp::Status::Infeasible);
}

// ---------------------------------------------------------------- planner

TEST(Planner, UnconstrainedMaxRatePicksMuOne) {
  const auto c = testbed();
  const auto plan = plan_parameters(c, {});
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.mu, 1.0, 1e-9);
  EXPECT_NEAR(plan.rate, c.total_rate(), 1e-6);
}

TEST(Planner, RiskRequirementForcesHigherKappa) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.max_risk = 0.01;
  const auto plan = plan_parameters(c, goal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.risk, 0.01 + 1e-9);
  EXPECT_GT(plan.kappa, 1.0);  // kappa = 1 cannot reach risk 0.01 here
  // And the planner should still have maximized rate subject to that.
  EXPECT_GT(plan.rate, 0.0);
}

TEST(Planner, RateFloorLimitsMu) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.objective = PlannerGoal::Objective::MinRisk;
  goal.min_rate = c.total_rate() / 2.0;
  const auto plan = plan_parameters(c, goal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.rate, c.total_rate() / 2.0 - 1e-6);
  // MinRisk with a rate floor: risk should beat the trivial kappa = 1 point.
  const auto trivial = plan_parameters(c, {});
  EXPECT_LT(plan.risk, trivial.risk + 1e-12);
}

TEST(Planner, ImpossibleGoalIsInfeasible) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.max_risk = 1e-9;               // essentially needs kappa = n...
  goal.min_rate = c.total_rate();     // ...which needs mu = 1 < kappa
  const auto plan = plan_parameters(c, goal);
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.schedule.has_value());
}

TEST(Planner, MinRiskUnconstrainedApproachesGlobalOptimum) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.objective = PlannerGoal::Objective::MinRisk;
  const auto plan = plan_parameters(c, goal);
  ASSERT_TRUE(plan.feasible);
  // Best privacy is kappa = mu = n with Z = prod z_i.
  EXPECT_NEAR(plan.kappa, 5.0, 1e-9);
  EXPECT_NEAR(plan.mu, 5.0, 1e-9);
  EXPECT_NEAR(plan.risk, optimal_risk(c), 1e-9);
}

TEST(Planner, PlanScheduleSatisfiesTheGoal) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.max_risk = 0.08;
  goal.max_loss = 0.01;
  goal.max_delay = 0.010;  // 10 ms
  const auto plan = plan_parameters(c, goal);
  ASSERT_TRUE(plan.feasible);
  ASSERT_TRUE(plan.schedule.has_value());
  EXPECT_LE(schedule_risk(c, *plan.schedule), 0.08 + 1e-7);
  EXPECT_LE(schedule_loss(c, *plan.schedule), 0.01 + 1e-7);
  EXPECT_LE(schedule_delay(c, *plan.schedule), 0.010 + 1e-7);
  // Reported metrics match the schedule.
  EXPECT_NEAR(plan.risk, schedule_risk(c, *plan.schedule), 1e-9);
  EXPECT_NEAR(plan.loss, schedule_loss(c, *plan.schedule), 1e-9);
  EXPECT_NEAR(plan.delay, schedule_delay(c, *plan.schedule), 1e-9);
  // The realized schedule hits the planned operating point exactly.
  EXPECT_NEAR(plan.schedule->kappa(), plan.kappa, 1e-7);
  EXPECT_NEAR(plan.schedule->mu(), plan.mu, 1e-7);
}

TEST(Planner, LimitedRestrictionIsRespected) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.max_risk = 0.05;
  goal.restriction = Restriction::Limited;
  const auto plan = plan_parameters(c, goal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.schedule->is_limited());
}

TEST(Planner, LimitedNeverBeatsUnrestricted) {
  const auto c = testbed();
  PlannerGoal goal;
  goal.objective = PlannerGoal::Objective::MinRisk;
  goal.min_rate = c.total_rate() / 4.0;
  const auto free = plan_parameters(c, goal);
  goal.restriction = Restriction::Limited;
  const auto limited = plan_parameters(c, goal);
  ASSERT_TRUE(free.feasible);
  ASSERT_TRUE(limited.feasible);
  EXPECT_GE(limited.risk, free.risk - 1e-9);
}

TEST(Planner, RejectsBadStep) {
  EXPECT_THROW((void)plan_parameters(testbed(), {.step = 0.0}), PreconditionError);
}

}  // namespace
}  // namespace mcss
