// Property tests for the GF(256) region kernels: every available kernel
// (portable + whatever SIMD the host dispatches to) must agree with the
// scalar gf::mul reference on random buffers — odd lengths, unaligned
// offsets, in-place operation, and the 0/1 scalar edge cases included.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "field/gf256.hpp"
#include "field/gf256_bulk.hpp"
#include "field/gf65536.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::gf {
namespace {

std::vector<bulk::Kernel> available_kernels() {
  std::vector<bulk::Kernel> ks;
  for (const bulk::Kernel k :
       {bulk::Kernel::Portable, bulk::Kernel::Ssse3, bulk::Kernel::Avx2}) {
    if (bulk::kernel_supported(k)) ks.push_back(k);
  }
  return ks;
}

// Lengths straddling every vector width plus odd stragglers.
const std::vector<std::size_t> kLengths = {0,  1,  7,   8,   15,  16,  17,
                                           31, 32, 33,  63,  64,  100, 255,
                                           256, 257, 1000, 1470};

TEST(Gf256Bulk, DispatchReportsSupportedKernel) {
  EXPECT_TRUE(bulk::kernel_supported(bulk::active_kernel()));
  EXPECT_TRUE(bulk::kernel_supported(bulk::Kernel::Portable));
  EXPECT_STRNE(bulk::kernel_name(bulk::active_kernel()), "");
}

TEST(Gf256Bulk, MulRowMatchesScalarMul) {
  for (int s = 0; s < 256; ++s) {
    const auto row = bulk::mul_row(static_cast<Elem>(s));
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(row[static_cast<std::size_t>(b)],
                mul(static_cast<Elem>(s), static_cast<Elem>(b)))
          << "s=" << s << " b=" << b;
    }
  }
}

TEST(Gf256Bulk, MulBufMatchesScalarReferenceOnEveryKernel) {
  Rng rng(101);
  for (const bulk::Kernel kernel : available_kernels()) {
    for (const std::size_t n : kLengths) {
      for (const int scalar_case : {0, 1, -1, -1, -1}) {
        const Elem s = scalar_case >= 0 ? static_cast<Elem>(scalar_case)
                                        : rng.byte();
        std::vector<Elem> src(n);
        for (auto& v : src) v = rng.byte();
        std::vector<Elem> dst(n, 0xEE);
        bulk::mul_buf(kernel, dst.data(), src.data(), s, n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(dst[i], mul(s, src[i]))
              << bulk::kernel_name(kernel) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(Gf256Bulk, MulAccBufMatchesScalarReferenceOnEveryKernel) {
  Rng rng(102);
  for (const bulk::Kernel kernel : available_kernels()) {
    for (const std::size_t n : kLengths) {
      for (const int scalar_case : {0, 1, -1, -1, -1}) {
        const Elem s = scalar_case >= 0 ? static_cast<Elem>(scalar_case)
                                        : rng.byte();
        std::vector<Elem> src(n);
        std::vector<Elem> dst(n);
        for (auto& v : src) v = rng.byte();
        for (auto& v : dst) v = rng.byte();
        const std::vector<Elem> before = dst;
        bulk::mul_acc_buf(kernel, dst.data(), src.data(), s, n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(dst[i], add(before[i], mul(s, src[i])))
              << bulk::kernel_name(kernel) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(Gf256Bulk, UnalignedOffsetsAgreeWithReference) {
  // Vector kernels use unaligned loads; walk every offset within a
  // vector width on a deliberately misaligned window.
  Rng rng(103);
  const std::size_t n = 333;
  std::vector<Elem> src_buf(n + 64);
  std::vector<Elem> dst_buf(n + 64);
  for (auto& v : src_buf) v = rng.byte();
  for (const bulk::Kernel kernel : available_kernels()) {
    for (std::size_t offset = 0; offset < 33; ++offset) {
      const Elem s = rng.byte();
      for (auto& v : dst_buf) v = rng.byte();
      const std::vector<Elem> before = dst_buf;
      bulk::mul_acc_buf(kernel, dst_buf.data() + offset,
                        src_buf.data() + offset, s, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst_buf[offset + i],
                  add(before[offset + i], mul(s, src_buf[offset + i])))
            << bulk::kernel_name(kernel) << " offset=" << offset;
      }
    }
  }
}

TEST(Gf256Bulk, InPlaceOperationIsSupported) {
  Rng rng(104);
  for (const bulk::Kernel kernel : available_kernels()) {
    std::vector<Elem> buf(777);
    for (auto& v : buf) v = rng.byte();
    const std::vector<Elem> original = buf;
    const Elem s = 0x37;
    bulk::mul_buf(kernel, buf.data(), buf.data(), s, buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], mul(s, original[i])) << bulk::kernel_name(kernel);
    }
  }
}

TEST(Gf256Bulk, AutoDispatchedEntryPointsMatchReference) {
  Rng rng(105);
  for (const std::size_t n : kLengths) {
    const Elem s = rng.byte();
    std::vector<Elem> src(n);
    std::vector<Elem> dst(n);
    for (auto& v : src) v = rng.byte();
    for (auto& v : dst) v = rng.byte();
    const std::vector<Elem> before = dst;
    bulk::mul_acc_buf(dst.data(), src.data(), s, n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], add(before[i], mul(s, src[i]))) << "n=" << n;
    }
    bulk::mul_buf(dst.data(), src.data(), s, n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], mul(s, src[i])) << "n=" << n;
    }
  }
}

TEST(Gf256Bulk, XorBufMatchesReference) {
  Rng rng(106);
  for (const std::size_t n : kLengths) {
    std::vector<Elem> src(n);
    std::vector<Elem> dst(n);
    for (auto& v : src) v = rng.byte();
    for (auto& v : dst) v = rng.byte();
    const std::vector<Elem> before = dst;
    bulk::xor_buf(dst.data(), src.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], static_cast<Elem>(before[i] ^ src[i])) << "n=" << n;
    }
  }
}

TEST(Gf256Bulk, ForcingUnsupportedKernelThrows) {
  for (const bulk::Kernel k : {bulk::Kernel::Ssse3, bulk::Kernel::Avx2}) {
    if (bulk::kernel_supported(k)) continue;
    std::vector<Elem> buf(16, 1);
    EXPECT_THROW(bulk::mul_buf(k, buf.data(), buf.data(), 2, buf.size()),
                 PreconditionError);
  }
}

TEST(Gf65536Bulk, MulAccBufMatchesScalarReference) {
  Rng rng(107);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{735}}) {
    for (const int scalar_case : {0, 1, -1, -1}) {
      const auto s = scalar_case >= 0
                         ? static_cast<gf16::Elem16>(scalar_case)
                         : static_cast<gf16::Elem16>(rng() & 0xFFFF);
      std::vector<gf16::Elem16> src(n);
      std::vector<gf16::Elem16> dst(n);
      for (auto& v : src) v = static_cast<gf16::Elem16>(rng() & 0xFFFF);
      for (auto& v : dst) v = static_cast<gf16::Elem16>(rng() & 0xFFFF);
      if (n > 0) src[0] = 0;  // exercise the zero-operand mask
      const std::vector<gf16::Elem16> before = dst;
      gf16::mul_acc_buf(dst.data(), src.data(), s, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], gf16::add(before[i], gf16::mul(s, src[i])))
            << "n=" << n << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace mcss::gf
