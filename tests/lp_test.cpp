// Tests for the two-phase simplex solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/simplex.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::lp {
namespace {

constexpr double kTol = 1e-7;

// Verify that the reported x satisfies every constraint and nonnegativity.
void expect_feasible(const Problem& p, const Solution& s) {
  ASSERT_EQ(s.status, Status::Optimal);
  ASSERT_EQ(s.x.size(), p.objective.size());
  for (const double v : s.x) EXPECT_GE(v, -kTol);
  for (const Constraint& c : p.constraints) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < c.coeffs.size(); ++j) lhs += c.coeffs[j] * s.x[j];
    switch (c.rel) {
      case Relation::LessEqual:
        EXPECT_LE(lhs, c.rhs + kTol);
        break;
      case Relation::GreaterEqual:
        EXPECT_GE(lhs, c.rhs - kTol);
        break;
      case Relation::Equal:
        EXPECT_NEAR(lhs, c.rhs, kTol);
        break;
    }
  }
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6; optimum (4, 0) value 12.
  Problem p;
  p.sense = Sense::Maximize;
  p.objective = {3, 2};
  p.add({1, 1}, Relation::LessEqual, 4);
  p.add({1, 3}, Relation::LessEqual, 6);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 12.0, kTol);
  EXPECT_NEAR(s.x[0], 4.0, kTol);
  EXPECT_NEAR(s.x[1], 0.0, kTol);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y st x + y >= 10, x >= 2; optimum (10, 0) value 20.
  Problem p;
  p.objective = {2, 3};
  p.add({1, 1}, Relation::GreaterEqual, 10);
  p.add({1, 0}, Relation::GreaterEqual, 2);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 20.0, kTol);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y + 3z st x + y + z = 1, x - y = 0; optimum x=y=0.5, z=0.
  Problem p;
  p.objective = {1, 2, 3};
  p.add({1, 1, 1}, Relation::Equal, 1);
  p.add({1, -1, 0}, Relation::Equal, 0);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 1.5, kTol);
  EXPECT_NEAR(s.x[0], 0.5, kTol);
  EXPECT_NEAR(s.x[1], 0.5, kTol);
  EXPECT_NEAR(s.x[2], 0.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  p.objective = {1, 1};
  p.add({1, 1}, Relation::LessEqual, 1);
  p.add({1, 1}, Relation::GreaterEqual, 3);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Problem p;
  p.objective = {1, 1};
  p.add({1, 1}, Relation::Equal, 1);
  p.add({2, 2}, Relation::Equal, 3);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  p.sense = Sense::Maximize;
  p.objective = {1, 0};
  p.add({0, 1}, Relation::LessEqual, 5);
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(Simplex, MinimizationBoundedBelowByNonnegativity) {
  // min x + y with only x + y <= 5: optimum is 0 at the origin.
  Problem p;
  p.objective = {1, 1};
  p.add({1, 1}, Relation::LessEqual, 5);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 0.0, kTol);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x - y <= -2  is  x + y >= 2; min x + y should be 2.
  Problem p;
  p.objective = {1, 1};
  p.add({-1, -1}, Relation::LessEqual, -2);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(Simplex, ShortConstraintRowsAreZeroPadded) {
  Problem p;
  p.sense = Sense::Maximize;
  p.objective = {1, 1, 1};
  p.add({1}, Relation::LessEqual, 2);        // x <= 2
  p.add({0, 1, 1}, Relation::LessEqual, 3);  // y + z <= 3
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 5.0, kTol);
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  Problem p;
  p.objective = {1, 2};
  p.add({1, 1}, Relation::Equal, 1);
  p.add({2, 2}, Relation::Equal, 2);  // same hyperplane
  p.add({1, 1}, Relation::LessEqual, 1);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 1.0, kTol);  // all weight on x
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Classic degeneracy: multiple constraints meet at the optimum.
  Problem p;
  p.sense = Sense::Maximize;
  p.objective = {1, 1};
  p.add({1, 0}, Relation::LessEqual, 1);
  p.add({0, 1}, Relation::LessEqual, 1);
  p.add({1, 1}, Relation::LessEqual, 2);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(Simplex, BealeCyclingExample) {
  // Beale's classic cycling LP; Bland's rule must terminate.
  Problem p;
  p.objective = {-0.75, 150, -0.02, 6};
  p.add({0.25, -60, -0.04, 9}, Relation::LessEqual, 0);
  p.add({0.5, -90, -0.02, 3}, Relation::LessEqual, 0);
  p.add({0, 0, 1, 0}, Relation::LessEqual, 1);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, -0.05, kTol);
}

TEST(Simplex, TransportationProblem) {
  // 2 sources (supply 20, 30) x 2 sinks (demand 25, 25), costs {{1,3},{4,2}}.
  // Optimal: x11=20, x21=5, x22=25 -> 20 + 20 + 50 = 90.
  Problem p;
  p.objective = {1, 3, 4, 2};  // x11 x12 x21 x22
  p.add({1, 1, 0, 0}, Relation::Equal, 20);
  p.add({0, 0, 1, 1}, Relation::Equal, 30);
  p.add({1, 0, 1, 0}, Relation::Equal, 25);
  p.add({0, 1, 0, 1}, Relation::Equal, 25);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 90.0, kTol);
}

TEST(Simplex, DistributionConstraintShape) {
  // The shape of the paper's schedule LPs: probabilities summing to 1 with
  // a fixed mean. min cost with mean exactly 2.5 over support {1,2,3,4}.
  Problem p;
  p.objective = {10, 1, 1, 10};
  p.add({1, 1, 1, 1}, Relation::Equal, 1);
  p.add({1, 2, 3, 4}, Relation::Equal, 2.5);
  const auto s = solve(p);
  expect_feasible(p, s);
  EXPECT_NEAR(s.objective, 1.0, kTol);  // split between supports 2 and 3
  EXPECT_NEAR(s.x[1], 0.5, kTol);
  EXPECT_NEAR(s.x[2], 0.5, kTol);
}

TEST(Simplex, MaximizeReturnsObjectiveInCallerSense) {
  Problem p;
  p.sense = Sense::Maximize;
  p.objective = {5};
  p.add({1}, Relation::LessEqual, 3);
  const auto s = solve(p);
  EXPECT_NEAR(s.objective, 15.0, kTol);  // not -15
}

TEST(Simplex, RejectsNonFiniteInput) {
  Problem p;
  p.objective = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)solve(p), PreconditionError);

  Problem q;
  q.objective = {1};
  q.add({std::nan("")}, Relation::LessEqual, 1);
  EXPECT_THROW((void)solve(q), PreconditionError);

  Problem r;
  r.objective = {1};
  r.add({1}, Relation::LessEqual, std::nan(""));
  EXPECT_THROW((void)solve(r), PreconditionError);
}

TEST(Simplex, RejectsOverlongConstraint) {
  Problem p;
  p.objective = {1};
  p.add({1, 2}, Relation::LessEqual, 1);
  EXPECT_THROW((void)solve(p), PreconditionError);
}

TEST(Simplex, EmptyProblemIsTriviallyOptimal) {
  Problem p;  // no variables, no constraints
  const auto s = solve(p);
  EXPECT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, 0.0);
}

// Property sweep: random bounded LPs must return feasible optima whose
// objective is no worse than a reference feasible point we construct.
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, OptimalBeatsKnownFeasiblePoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.uniform_int(5));
  const int m = 1 + static_cast<int>(rng.uniform_int(4));

  // Build constraints guaranteed feasible at a random point x0 >= 0.
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (double& v : x0) v = rng.uniform(0.0, 3.0);

  Problem p;
  p.objective.resize(static_cast<std::size_t>(n));
  for (double& c : p.objective) c = rng.uniform(-2.0, 2.0);
  p.sense = Sense::Minimize;

  for (int r = 0; r < m; ++r) {
    Constraint c;
    c.coeffs.resize(static_cast<std::size_t>(n));
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      c.coeffs[static_cast<std::size_t>(j)] = rng.uniform(0.1, 2.0);
      lhs += c.coeffs[static_cast<std::size_t>(j)] * x0[static_cast<std::size_t>(j)];
    }
    c.rel = Relation::LessEqual;  // all-positive rows keep the region bounded
    c.rhs = lhs + rng.uniform(0.0, 1.0);
    p.constraints.push_back(std::move(c));
  }
  // Bound the region so minimization with negative costs cannot be unbounded.
  p.add(std::vector<double>(static_cast<std::size_t>(n), 1.0), Relation::LessEqual,
        50.0);

  const auto s = solve(p);
  expect_feasible(p, s);
  double ref = 0.0;
  for (int j = 0; j < n; ++j) ref += p.objective[static_cast<std::size_t>(j)] * x0[static_cast<std::size_t>(j)];
  EXPECT_LE(s.objective, ref + kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace mcss::lp
