// Tests for Theorems 1-4 (Section IV-C): optimal multichannel rate,
// full-utilization limits, and utilization quotas. Uses the paper's own
// channel configurations where it gives them.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/channel.hpp"
#include "core/rate.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

ChannelSet rates_only(std::vector<double> rates) {
  std::vector<Channel> cs;
  cs.reserve(rates.size());
  for (const double r : rates) cs.push_back({0, 0, 0, r});
  return ChannelSet(std::move(cs));
}

/// The paper's Diverse testbed rates (Mbps).
ChannelSet diverse() { return rates_only({5, 20, 60, 65, 100}); }
/// The Figure 2 example.
ChannelSet fig2() { return rates_only({3, 4, 8}); }

// ---------------------------------------------------------------- Theorem 4

TEST(OptimalRate, MuOneIsTotalRate) {
  EXPECT_NEAR(optimal_rate(diverse(), 1.0), 250.0, 1e-9);
  EXPECT_NEAR(optimal_rate(fig2(), 1.0), 15.0, 1e-9);
}

TEST(OptimalRate, MuEqualsNIsSlowestChannel) {
  // Every symbol uses every channel: the slowest channel paces everyone.
  EXPECT_NEAR(optimal_rate(diverse(), 5.0), 5.0, 1e-9);
  EXPECT_NEAR(optimal_rate(fig2(), 3.0), 3.0, 1e-9);
}

TEST(OptimalRate, IdenticalChannelsScaleAsTotalOverMu) {
  // Corollary 1: identical rates are always fully utilized, R = n*r/mu.
  const auto c = rates_only({100, 100, 100, 100, 100});
  for (double mu = 1.0; mu <= 5.0; mu += 0.1) {
    EXPECT_NEAR(optimal_rate(c, mu), 500.0 / mu, 1e-9) << "mu=" << mu;
  }
}

TEST(OptimalRate, Figure2Example) {
  // r = (3, 4, 8): full utilization holds up to mu = 15/8.
  const auto c = fig2();
  EXPECT_NEAR(optimal_rate(c, 1.5), 10.0, 1e-9);          // 15 / 1.5
  EXPECT_NEAR(optimal_rate(c, 15.0 / 8.0), 8.0, 1e-9);    // knee
  // Beyond the knee the fastest channel is capped at R_C: with S={3,4},
  // R = 7 / (mu - 1).
  EXPECT_NEAR(optimal_rate(c, 2.0), 7.0, 1e-9);
  EXPECT_NEAR(optimal_rate(c, 2.5), 7.0 / 1.5, 1e-9);
}

TEST(OptimalRate, DiverseKneesMatchTheorem2Boundaries) {
  // Below the Theorem 2 limit, R = total/mu exactly.
  const auto c = diverse();
  const double limit = full_utilization_mu_limit(c);  // 250/100 = 2.5
  EXPECT_NEAR(limit, 2.5, 1e-12);
  for (double mu = 1.0; mu <= limit + 1e-9; mu += 0.05) {
    EXPECT_NEAR(optimal_rate(c, mu), 250.0 / mu, 1e-9) << "mu=" << mu;
  }
  // Above the limit, strictly less than total/mu.
  for (double mu = limit + 0.1; mu <= 5.0; mu += 0.1) {
    EXPECT_LT(optimal_rate(c, mu), 250.0 / mu - 1e-9) << "mu=" << mu;
  }
}

TEST(OptimalRate, PrefixFormMatchesBruteForce) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(7));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(0.5, 100.0);
    const auto c = rates_only(rates);
    const double mu = rng.uniform(1.0, static_cast<double>(n));
    EXPECT_NEAR(optimal_rate(c, mu), optimal_rate_bruteforce(c, mu), 1e-9)
        << "n=" << n << " mu=" << mu;
  }
}

TEST(OptimalRate, MonotoneDecreasingInMu) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(1.0, 50.0);
    const auto c = rates_only(rates);
    double prev = optimal_rate(c, 1.0);
    for (double mu = 1.1; mu <= n; mu += 0.1) {
      const double cur = optimal_rate(c, mu);
      EXPECT_LE(cur, prev + 1e-9);
      prev = cur;
    }
  }
}

TEST(OptimalRate, RejectsOutOfRangeMu) {
  const auto c = fig2();
  EXPECT_THROW((void)optimal_rate(c, 0.99), PreconditionError);
  EXPECT_THROW((void)optimal_rate(c, 3.01), PreconditionError);
}

// ---------------------------------------------------------------- Theorem 3

TEST(MuForRate, InvertsOptimalRate) {
  // Theorem 3 and Theorem 4 are two directions of the same relation.
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(1.0, 50.0);
    const auto c = rates_only(rates);
    const double mu = rng.uniform(1.0, static_cast<double>(n));
    EXPECT_NEAR(mu_for_rate(c, optimal_rate(c, mu)), mu, 1e-9);
  }
}

TEST(MuForRate, KnownValues) {
  const auto c = diverse();
  EXPECT_NEAR(mu_for_rate(c, 250.0), 1.0, 1e-12);  // everything at full tilt
  EXPECT_NEAR(mu_for_rate(c, 5.0), 5.0, 1e-12);    // paced by the slowest
  // R = 100: only the 100 Mbps channel is capped.
  EXPECT_NEAR(mu_for_rate(c, 100.0), 5.0 / 100 + 20.0 / 100 + 60.0 / 100 +
                                         65.0 / 100 + 1.0,
              1e-12);
}

TEST(MuForRate, MonotoneDecreasingInRate) {
  const auto c = diverse();
  double prev = mu_for_rate(c, 1.0);
  for (double rate = 2.0; rate < 300.0; rate += 1.0) {
    const double cur = mu_for_rate(c, rate);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(MuForRate, RejectsNonPositiveRate) {
  EXPECT_THROW((void)mu_for_rate(diverse(), 0.0), PreconditionError);
  EXPECT_THROW((void)mu_for_rate(diverse(), -5.0), PreconditionError);
}

// ---------------------------------------------------------------- Theorem 1

TEST(RateLowerBound, IsTheCeilMuThFastest) {
  const auto c = diverse();  // sorted desc: 100, 65, 60, 20, 5
  EXPECT_DOUBLE_EQ(rate_lower_bound(c, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(rate_lower_bound(c, 1.5), 65.0);
  EXPECT_DOUBLE_EQ(rate_lower_bound(c, 2.0), 65.0);
  EXPECT_DOUBLE_EQ(rate_lower_bound(c, 2.5), 60.0);
  EXPECT_DOUBLE_EQ(rate_lower_bound(c, 5.0), 5.0);
}

TEST(RateLowerBound, TheoremHolds) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(7));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(0.5, 100.0);
    const auto c = rates_only(rates);
    const double mu = rng.uniform(1.0, static_cast<double>(n));
    EXPECT_GE(optimal_rate(c, mu), rate_lower_bound(c, mu) - 1e-9);
  }
}

// ---------------------------------------------------------------- Theorem 2

TEST(FullUtilization, LimitMatchesDefinition) {
  EXPECT_NEAR(full_utilization_mu_limit(diverse()), 2.5, 1e-12);
  EXPECT_NEAR(full_utilization_mu_limit(fig2()), 15.0 / 8.0, 1e-12);
}

TEST(FullUtilization, Corollary1IdenticalRates) {
  const auto c = rates_only({42, 42, 42, 42});
  EXPECT_NEAR(full_utilization_mu_limit(c), 4.0, 1e-12);  // == n
}

TEST(FullUtilization, AtTheLimitEveryChannelIsFull) {
  const auto c = diverse();
  const double limit = full_utilization_mu_limit(c);
  const auto u = utilization(c, limit);
  for (int i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(u.r_prime[static_cast<std::size_t>(i)], c[i].rate, 1e-9);
  }
  EXPECT_EQ(u.fully_utilized, c.all());
}

// ---------------------------------------------------------------- utilization

TEST(Utilization, QuotasAndFractionsAreConsistent) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(1.0, 80.0);
    const auto c = rates_only(rates);
    const double mu = rng.uniform(1.0, static_cast<double>(n));
    const auto u = utilization(c, mu);

    EXPECT_NEAR(u.rate, optimal_rate(c, mu), 1e-12);
    double fraction_sum = 0.0;
    double share_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_LE(u.r_prime[idx], c[i].rate + 1e-12);   // Equation 2
      EXPECT_LE(u.r_prime[idx], u.rate + 1e-12);      // Equation 3
      EXPECT_LE(u.fraction[idx], 1.0 + 1e-12);
      fraction_sum += u.fraction[idx];
      share_sum += u.r_prime[idx];
    }
    EXPECT_NEAR(fraction_sum, mu, 1e-9);              // Theorem 3
    EXPECT_NEAR(share_sum / mu, u.rate, 1e-9);        // Equation 1
  }
}

TEST(Utilization, Corollary2FullyUtilizedSetSize) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_int(6));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (double& r : rates) r = rng.uniform(1.0, 80.0);
    const auto c = rates_only(rates);
    const double mu = rng.uniform(1.0, static_cast<double>(n));
    const auto u = utilization(c, mu);
    EXPECT_GT(mask_size(u.fully_utilized), static_cast<double>(n) - mu - 1e-9);
  }
}

TEST(Utilization, DiverseExampleAtMu4) {
  // mu=4 on (5,20,60,65,100): knees passed for 100 and 65.
  const auto c = diverse();
  const auto u = utilization(c, 4.0);
  // R solves Theorem 4; verify against brute force and check A membership.
  EXPECT_NEAR(u.rate, optimal_rate_bruteforce(c, 4.0), 1e-9);
  EXPECT_TRUE(mask_contains(u.fully_utilized, 0));  // 5 Mbps definitely full
  EXPECT_FALSE(mask_contains(u.fully_utilized, 4)); // 100 Mbps capped
}

}  // namespace
}  // namespace mcss
