// Tests for src/obs: registry semantics (counters, gauges, histograms),
// the thread-shard merge path and its determinism across MCSS_THREADS,
// trace ring wraparound, and exporter validity (Prometheus text and
// Chrome trace JSON are parsed/checked in-test).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace mcss::obs {
namespace {

// ------------------------------------------------------------ helpers

/// Restores the runtime thread override on scope exit.
struct ThreadGuard {
  explicit ThreadGuard(unsigned n) { runtime::set_threads(n); }
  ~ThreadGuard() { runtime::set_threads(1); }
};

/// Restores the global metrics switch on scope exit.
struct MetricsGuard {
  explicit MetricsGuard(bool on) : was(metrics_enabled()) {
    set_metrics_enabled(on);
  }
  ~MetricsGuard() { set_metrics_enabled(was); }
  bool was;
};

/// Restores the global trace switch on scope exit.
struct TraceGuard {
  explicit TraceGuard(bool on) : was(trace_enabled()) {
    Tracer::global().set_enabled(on);
  }
  ~TraceGuard() { Tracer::global().set_enabled(was); }
  bool was;
};

/// Minimal JSON syntax validator: accepts exactly the RFC 8259 grammar
/// (minus the \u surrogate-pair check), reports the first error offset.
/// Small enough to keep in-test, strict enough to catch a malformed
/// exporter (trailing commas, bare NaN, unescaped quotes...).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }
  [[nodiscard]] std::size_t error_at() const { return pos_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string()) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (pos_ >= s_.size() || s_[pos_++] != ',') return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (pos_ >= s_.size() || s_[pos_++] != ',') return false;
    }
  }
  bool string() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek('-')) {}
    if (!digits()) return false;
    if (peek('.') && !digits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (!peek('+')) peek('-');
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

::testing::AssertionResult is_valid_json(const std::string& text) {
  JsonChecker checker(text);
  if (checker.valid()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "invalid JSON at offset " << checker.error_at() << " near ..."
         << text.substr(checker.error_at() > 20 ? checker.error_at() - 20 : 0,
                        60);
}

// ------------------------------------------------------------ JsonRow

TEST(JsonRow, BasicFieldsAndEscaping) {
  JsonRow row;
  row.field("i", std::int64_t{-3})
      .field("u", std::uint64_t{7})
      .field("d", 1.5)
      .field("b", true)
      .field("s", std::string_view("a\"b\\c\n"));
  const std::string text = row.str();
  EXPECT_TRUE(is_valid_json(text));
  EXPECT_NE(text.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"s\":\"a\\\"b\\\\c\\n\""), std::string::npos);
}

TEST(JsonRow, NonFiniteDoublesEmitNull) {
  // Regression: NaN/Inf have no JSON literal; printf'ing them produced
  // rows like {"p99_delay_s":nan} that every parser rejects.
  JsonRow row;
  row.field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("pinf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .field("ok", 2.0);
  const std::string text = row.str();
  EXPECT_TRUE(is_valid_json(text));
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(text.find("\"pinf\":null"), std::string::npos);
  EXPECT_NE(text.find("\"ninf\":null"), std::string::npos);
  EXPECT_NE(text.find("\"ok\":2"), std::string::npos);
  // No bare printf spellings of the non-finite values leaked through.
  EXPECT_EQ(text.find(":nan"), std::string::npos);
  EXPECT_EQ(text.find(":inf"), std::string::npos);
  EXPECT_EQ(text.find(":-inf"), std::string::npos);
}

TEST(JsonRow, StringLiteralsAreStringsNotBools) {
  // Regression: const char* used to convert to bool in preference to
  // string_view, turning {"type":"counter"} into {"type":true}.
  JsonRow row;
  row.field("type", "counter");
  EXPECT_EQ(row.str(), "{\"type\":\"counter\"}");
}

TEST(JsonRow, RoundTripsDoublePrecision) {
  JsonRow row;
  row.field("x", 0.1234567890123456789);
  EXPECT_NE(row.str().find("0.12345678901234568"), std::string::npos);
}

// ----------------------------------------------------------- registry

TEST(Registry, CounterGetOrCreateAndAdd) {
  Registry registry;
  const CounterId a = registry.counter("test_total");
  const CounterId again = registry.counter("test_total");
  EXPECT_EQ(a.index, again.index);
  registry.add(a);          // default delta 1
  registry.add(a, 41);
  EXPECT_EQ(registry.snapshot().counter_value("test_total"), 42u);
}

TEST(Registry, InvalidIdsAreNoops) {
  Registry registry;
  registry.add(CounterId{});  // must not crash or register anything
  registry.set(GaugeId{}, 1.0);
  registry.observe(HistogramId{}, 1.0);
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Registry, GaugeLastWriteWins) {
  Registry registry;
  const GaugeId g = registry.gauge("test_gauge");
  registry.set(g, 1.0);
  registry.set(g, 2.5);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 2.5);
}

TEST(Registry, HistogramBucketsValuesAtBounds) {
  Registry registry;
  const HistogramId h = registry.histogram("test_hist", {1.0, 2.0, 4.0});
  // Bucket b counts values <= bounds[b]; the last bucket is +Inf.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 100.0}) registry.observe(h, v);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hist = snapshot.histograms[0];
  ASSERT_EQ(hist.buckets.size(), 4u);
  EXPECT_EQ(hist.buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(hist.buckets[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(hist.buckets[2], 1u);  // 3.0
  EXPECT_EQ(hist.buckets[3], 1u);  // 100.0 -> +Inf
  EXPECT_EQ(hist.count, 6u);
  EXPECT_DOUBLE_EQ(hist.sum, 108.0);
  EXPECT_DOUBLE_EQ(hist.min, 0.5);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry registry;
  registry.add(registry.counter("zeta"));
  registry.add(registry.counter("alpha"));
  registry.add(registry.counter("mid"));
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[1].name, "mid");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
}

TEST(Registry, TakeLocalDrainsAndMergeRestores) {
  Registry registry;
  const CounterId c = registry.counter("test_total");
  registry.add(c, 5);
  MetricShard shard = registry.take_local();
  EXPECT_FALSE(shard.empty());
  // The live shard was drained: only the merged copy counts.
  EXPECT_EQ(registry.snapshot().counter_value("test_total"), 0u);
  registry.merge(shard);
  registry.merge(shard);  // merging twice doubles the delta
  EXPECT_EQ(registry.snapshot().counter_value("test_total"), 10u);
}

TEST(Registry, ResetDropsSeriesAndOrphansStaleShards) {
  Registry registry;
  const CounterId old_id = registry.counter("test_total");
  registry.add(old_id, 3);
  registry.reset();
  EXPECT_TRUE(registry.snapshot().empty());
  // Writing through a pre-reset id must not corrupt the new epoch.
  registry.add(old_id, 9);
  const CounterId fresh = registry.counter("fresh_total");
  registry.add(fresh, 1);
  EXPECT_EQ(registry.snapshot().counter_value("fresh_total"), 1u);
}

TEST(Registry, ExpBoundsAreExponentialAndIncreasing) {
  const auto bounds = exp_bounds(1e-6, 2.0, 10);
  ASSERT_EQ(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 2.0, 1e-9);
  }
}

TEST(ScopeTimerTest, ObservesOnceOnDestruction) {
  MetricsGuard guard(true);  // the timer reads no clock when disabled
  Registry registry;
  const HistogramId h = registry.histogram("test_scope_seconds",
                                           exp_bounds(1e-9, 10.0, 12));
  {
    ScopeTimer timer(h, registry);
  }
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_GE(snapshot.histograms[0].sum, 0.0);
}

// --------------------------------------------- merge determinism

/// Exercise the global registry through the sweep engine and return the
/// exported Prometheus text — byte-for-byte comparable across runs.
std::string sweep_and_export(unsigned threads) {
  ThreadGuard guard(threads);
  auto& registry = Registry::global();
  registry.reset();
  const std::size_t n = 257;  // not a multiple of any pool size
  runtime::for_each_ordered(
      n,
      [&](std::size_t i) {
        registry.add(registry.counter("sweep_points_total"));
        registry.add(registry.counter("sweep_weight_total"), i);
        registry.set(registry.gauge("sweep_last_index"),
                     static_cast<double>(i));
        const HistogramId h =
            registry.histogram("sweep_value", exp_bounds(1e-3, 3.0, 8));
        // Irrational increments make the double sum order-sensitive:
        // only the in-order merge reproduces the sequential bytes.
        registry.observe(h, 1e-3 + static_cast<double>(i) * 0.137);
        registry.observe(h, std::sqrt(static_cast<double>(i + 1)));
        return i;
      },
      [](std::size_t, std::size_t) {});
  std::string text = prometheus_text(registry.snapshot());
  registry.reset();
  return text;
}

TEST(MergeDeterminism, PrometheusBytesIdenticalAcrossThreadCounts) {
  const std::string serial = sweep_and_export(1);
  EXPECT_NE(serial.find("sweep_points_total 257"), std::string::npos);
  EXPECT_NE(serial.find("sweep_weight_total 32896"), std::string::npos);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(sweep_and_export(threads), serial)
        << "diverged at MCSS_THREADS=" << threads;
  }
}

// ---------------------------------------------------------- tracing

TEST(Trace, DisabledEmitsNothing) {
  TraceGuard guard(false);
  Tracer tracer;
  tracer.complete("x", "test", 10, 5);
  tracer.instant("y", "test", 20);
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, RingWrapsKeepingNewestEvents) {
  TraceGuard guard(true);
  Tracer tracer;
  tracer.set_ring_capacity(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    tracer.instant("tick", "test", /*ts_ns=*/i, /*id=*/0, "i",
                   static_cast<std::uint64_t>(i));
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<std::int64_t>(12 + i));
  }
}

TEST(Trace, CollectOrdersByTimestamp) {
  TraceGuard guard(true);
  Tracer tracer;
  tracer.set_ring_capacity(64);
  tracer.complete("late", "test", 300, 10);
  tracer.instant("early", "test", 100);
  tracer.async_begin("mid", "test", /*id=*/7, /*ts_ns=*/200);
  tracer.async_end("mid", "test", /*id=*/7, /*ts_ns=*/250);
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(std::string(events[0].name), "early");
  EXPECT_EQ(std::string(events[1].name), "mid");
  EXPECT_EQ(events[2].phase, 'e');
  EXPECT_EQ(std::string(events[3].name), "late");
}

TEST(Trace, ClearDiscardsBufferedEvents) {
  TraceGuard guard(true);
  Tracer tracer;
  tracer.instant("x", "test", 1);
  EXPECT_EQ(tracer.collect().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  tracer.instant("y", "test", 2);
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Trace, ShareSpanIdCombinesPacketAndIndex) {
  EXPECT_EQ(share_span_id(0, 0), 0u);
  EXPECT_EQ(share_span_id(1, 2), (1u << 8) | 2u);
  EXPECT_NE(share_span_id(1, 0), share_span_id(0, 1));
}

// --------------------------------------------------------- exporters

MetricsSnapshot sample_snapshot() {
  // Bounds and values chosen exactly representable in binary, so the
  // %.17g round-trip formatting prints them in their short form.
  Registry registry;
  registry.add(registry.counter("demo_total"), 3);
  registry.set(registry.gauge("demo_gauge"), -1.25);
  const HistogramId h = registry.histogram("demo_seconds", {0.5, 2.0});
  registry.observe(h, 0.25);
  registry.observe(h, 1.0);
  registry.observe(h, 5.0);
  return registry.snapshot();
}

TEST(Exporters, PrometheusTextIsWellFormed) {
  const std::string text = prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# TYPE demo_total counter\ndemo_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge\ndemo_gauge -1.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_sum 6.25"), std::string::npos);
}

TEST(Exporters, MetricsJsonRowsAreValidJson) {
  const auto rows = metrics_json_rows(sample_snapshot());
  ASSERT_EQ(rows.size(), 3u);  // one per series
  bool saw_histogram = false;
  for (const auto& row : rows) {
    const std::string text = row.str();
    EXPECT_TRUE(is_valid_json(text));
    if (text.find("\"type\":\"histogram\"") != std::string::npos) {
      saw_histogram = true;
      EXPECT_NE(text.find("\"count\":3"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(Exporters, ChromeTraceJsonParsesAndCoversPhases) {
  TraceGuard guard(true);
  Tracer tracer;
  tracer.complete("serialize", "channel", 1000, 250, share_span_id(1, 0),
                  "bytes", 300);
  tracer.instant("drop_loss", "channel", 1500, share_span_id(1, 1));
  tracer.async_begin("share", "protocol", share_span_id(1, 0), 900, "ch", 2);
  tracer.async_end("share", "protocol", share_span_id(1, 0), 2000);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* phase : {"\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"b\"",
                            "\"ph\":\"e\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  // ts/dur are microsecond floats: 1000 ns -> 1.000.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos);
}

TEST(Exporters, EmptyTraceIsStillValidJson) {
  Tracer tracer;
  EXPECT_TRUE(is_valid_json(tracer.chrome_trace_json()));
}

}  // namespace
}  // namespace mcss::obs
