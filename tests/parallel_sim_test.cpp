// Tests for the partitioned logical-process engine and the multiflow
// population workload built on it: conservative-window correctness,
// cross-LP merge determinism across thread counts, and the simulator
// primitives (run_before, extractable heap) the engine relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "net/event_heap.hpp"
#include "net/parallel_sim/partitioned_sim.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "util/ensure.hpp"
#include "workload/multiflow.hpp"

namespace mcss::net {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(unsigned n) { runtime::set_threads(n); }
  ~ThreadGuard() { runtime::set_threads(1); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
};

// ---------------------------------------------------------------- EventHeap

TEST(EventHeap, PopsInTimeThenSequenceOrder) {
  EventHeap heap;
  std::vector<int> order;
  heap.push(Event{20, 0, [&] { order.push_back(20); }});
  heap.push(Event{10, 1, [&] { order.push_back(10); }});
  heap.push(Event{10, 2, [&] { order.push_back(11); }});
  heap.push(Event{5, 3, [&] { order.push_back(5); }});
  while (!heap.empty()) heap.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{5, 10, 11, 20}));
}

TEST(EventHeap, InterleavedPushPopKeepsInvariant) {
  EventHeap heap;
  std::uint64_t seq = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) {
      const SimTime t = (i * 7919 + round * 104729) % 1000;
      heap.push(Event{t, seq++, [] {}});
    }
    SimTime last = -1;
    for (int i = 0; i < 30; ++i) {
      ASSERT_GE(heap.min_time(), last);
      last = heap.min_time();
      (void)heap.pop();
    }
  }
  SimTime last = -1;
  while (!heap.empty()) {
    ASSERT_GE(heap.min_time(), last);
    last = heap.min_time();
    (void)heap.pop();
  }
}

// ---------------------------------------------- Simulator re-entrancy

TEST(Simulator, SameTimeScheduleDuringDispatchFiresThisPass) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    // Scheduled at exactly now() from inside a dispatch: legal, and it
    // fires later in the SAME pass, after already-queued time-10 events.
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunUntilDrainsSameTimeCascades) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_at(10, [&] {
      ++fired;
      sim.schedule_at(10, [&] { ++fired; });
    });
  });
  sim.run_until(10);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunBeforeExcludesBoundaryAndKeepsClockBehind) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(5); });
  sim.schedule_at(9, [&] { order.push_back(9); });
  sim.schedule_at(10, [&] { order.push_back(10); });
  EXPECT_EQ(sim.run_before(10), 2u);
  EXPECT_EQ(order, (std::vector<int>{5, 9}));
  // The boundary event stays queued and now() never advances to the
  // boundary: a barrier may still inject events at exactly 10 that must
  // interleave with it by (time, seq).
  EXPECT_EQ(sim.now(), 9);
  EXPECT_EQ(sim.pending(), 1u);
  sim.schedule_at(10, [&] { order.push_back(11); });
  EXPECT_EQ(sim.run_before(11), 2u);
  EXPECT_EQ(order, (std::vector<int>{5, 9, 10, 11}));
}

TEST(Simulator, RunBeforeDrainsCascadesBelowBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5, [&] {
    ++fired;
    sim.schedule_at(5, [&] {
      ++fired;
      sim.schedule_at(9, [&] { ++fired; });
    });
  });
  EXPECT_EQ(sim.run_before(10), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, SchedulePastRejectedAtWindowEdges) {
  Simulator sim;
  sim.schedule_at(10, [&] {
    // now() == 10: scheduling at now() is always legal...
    EXPECT_NO_THROW(sim.schedule_at(10, [] {}));
    // ...strictly before it never is, even mid-window.
    EXPECT_THROW(sim.schedule_at(9, [] {}), PreconditionError);
  });
  (void)sim.run_before(11);
  EXPECT_THROW(sim.schedule_at(5, [] {}), PreconditionError);
}

// ---------------------------------------------- PartitionedSimulator

TEST(PartitionedSim, ValidatesConstruction) {
  EXPECT_THROW(psim::PartitionedSimulator(0, 100), PreconditionError);
  EXPECT_THROW(psim::PartitionedSimulator(2, 0), PreconditionError);
  psim::PartitionedSimulator ps(2, 100);
  EXPECT_EQ(ps.num_lps(), 2u);
  EXPECT_THROW((void)ps.lp(2), PreconditionError);
}

TEST(PartitionedSim, SendValidatesLatencyAndDestination) {
  psim::PartitionedSimulator ps(2, 100);
  EXPECT_THROW(ps.lp(0).send(0, 99, [] {}), PreconditionError);
  EXPECT_THROW(ps.lp(0).send(2, 100, [] {}), PreconditionError);
  EXPECT_NO_THROW(ps.lp(0).send(1, 100, [] {}));
}

TEST(PartitionedSim, CrossEventsArriveAtLatency) {
  psim::PartitionedSimulator ps(2, 100);
  SimTime arrived_at = -1;
  ps.lp(0).sim().schedule_at(50, [&] {
    ps.lp(0).send(1, 100, [&] { arrived_at = ps.lp(1).sim().now(); });
  });
  ps.run();
  EXPECT_EQ(arrived_at, 150);
  EXPECT_EQ(ps.stats().cross_events, 1u);
  EXPECT_EQ(ps.lp(0).cross_events_sent(), 1u);
}

TEST(PartitionedSim, PingPongAcrossManyWindows) {
  psim::PartitionedSimulator ps(2, 10);
  int hops = 0;
  std::function<void(std::uint32_t)> hop = [&](std::uint32_t at) {
    if (++hops >= 100) return;
    ps.lp(at).send(1 - at, 10, [&hop, at] { hop(1 - at); });
  };
  ps.lp(0).sim().schedule_at(0, [&] { hop(0); });
  ps.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(ps.stats().cross_events, 99u);
  EXPECT_EQ(ps.lp(0).sim().now(), 980);
  EXPECT_EQ(ps.lp(1).sim().now(), 990);
}

TEST(PartitionedSim, RunUntilAlignsAllClocks) {
  psim::PartitionedSimulator ps(3, 10);
  int fired = 0;
  ps.lp(0).sim().schedule_at(5, [&] { ++fired; });
  ps.lp(1).sim().schedule_at(50, [&] { ++fired; });
  ps.lp(2).sim().schedule_at(51, [&] { ++fired; });
  ps.run_until(50);
  EXPECT_EQ(fired, 2);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(ps.lp(i).sim().now(), 50);
  ps.run_until(60);
  EXPECT_EQ(fired, 3);
  EXPECT_THROW(ps.run_until(59), PreconditionError);
}

/// Deterministic multi-LP fan-out: every LP multicasts to every other at
/// staggered times; each receipt appends to a per-LP log. The logs must
/// be identical for any thread count.
std::vector<std::string> fanout_trace(unsigned threads) {
  ThreadGuard guard(threads);
  constexpr std::uint32_t kLps = 5;
  psim::PartitionedSimulator ps(kLps, 7);
  std::vector<std::string> logs(kLps);
  for (std::uint32_t src = 0; src < kLps; ++src) {
    for (std::uint32_t burst = 0; burst < 20; ++burst) {
      ps.lp(src).sim().schedule_at(burst * 3 + src, [&ps, &logs, src] {
        const auto t = ps.lp(src).sim().now();
        for (std::uint32_t dst = 0; dst < ps.num_lps(); ++dst) {
          ps.lp(src).send(dst, 7 + (src + dst) % 3, [&ps, &logs, src, dst, t] {
            logs[dst] += std::to_string(src) + "@" + std::to_string(t) + "->" +
                         std::to_string(ps.lp(dst).sim().now()) + ";";
          });
        }
      });
    }
  }
  ps.run();
  return logs;
}

TEST(PartitionedSim, FanoutTraceBitwiseIdenticalAcrossThreadCounts) {
  const auto base = fanout_trace(1);
  EXPECT_EQ(fanout_trace(2), base);
  EXPECT_EQ(fanout_trace(8), base);
}

TEST(PartitionedSim, PublishExportsEngineTotals) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  psim::PartitionedSimulator ps(2, 100);
  ps.lp(0).sim().schedule_at(50, [&] { ps.lp(0).send(1, 100, [] {}); });
  ps.run();
  psim::publish(obs::Registry::global(), ps.stats());
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.counter_value("mcss_psim_windows"), ps.stats().windows);
  EXPECT_EQ(snap.counter_value("mcss_psim_cross_events"), 1u);
  EXPECT_EQ(snap.counter_value("mcss_psim_events_processed"),
            ps.stats().events_processed);
  bool saw_gauge = false;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "mcss_psim_max_window_events") {
      saw_gauge = true;
      EXPECT_EQ(gauge.value,
                static_cast<double>(ps.stats().max_window_events));
    }
  }
  EXPECT_TRUE(saw_gauge);
  obs::Registry::global().reset();
  obs::set_metrics_enabled(false);
}

/// LP events record counters and histogram observations whose
/// magnitudes span nine decades: any change in the order the per-LP
/// metric shards are folded at the window barrier would change the
/// bits of the committed double sum. Returns every order-sensitive
/// piece of the committed registry state.
std::tuple<std::uint64_t, std::uint64_t, double, double, double,
           std::vector<std::uint64_t>>
registry_merge_run(unsigned threads) {
  ThreadGuard guard(threads);
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  obs::set_metrics_enabled(true);
  const auto events = reg.counter("mcss_test_lp_events");
  const auto hist =
      reg.histogram("mcss_test_lp_value", {1.0, 100.0, 10'000.0, 1e6});

  constexpr std::uint32_t kLps = 5;
  psim::PartitionedSimulator ps(kLps, 7);
  for (std::uint32_t src = 0; src < kLps; ++src) {
    for (std::uint32_t burst = 0; burst < 20; ++burst) {
      ps.lp(src).sim().schedule_at(burst * 3 + src, [&, events, hist, src] {
        reg.add(events);
        reg.observe(hist, std::pow(10.0, src * 2) *
                              (1.0 + 1e-9 * static_cast<double>(
                                                 ps.lp(src).sim().now())));
        for (std::uint32_t dst = 0; dst < ps.num_lps(); ++dst) {
          ps.lp(src).send(dst, 7, [&reg, &ps, events, hist, dst] {
            reg.add(events);
            reg.observe(hist,
                        1e-3 * static_cast<double>(ps.lp(dst).sim().now()));
          });
        }
      });
    }
  }
  ps.run();

  const auto snap = reg.snapshot();
  std::tuple<std::uint64_t, std::uint64_t, double, double, double,
             std::vector<std::uint64_t>>
      out;
  std::get<0>(out) = snap.counter_value("mcss_test_lp_events");
  for (const auto& h : snap.histograms) {
    if (h.name == "mcss_test_lp_value") {
      out = {std::get<0>(out), h.count, h.sum, h.min, h.max, h.buckets};
    }
  }
  reg.reset();
  obs::set_metrics_enabled(false);
  return out;
}

TEST(PartitionedSim, RegistryMergeBitwiseIdenticalAcrossThreadCounts) {
  const auto base = registry_merge_run(1);
  EXPECT_EQ(std::get<0>(base), 600u);  // 100 direct + 500 cross events
  EXPECT_EQ(std::get<1>(base), 600u);
  EXPECT_EQ(registry_merge_run(2), base);
  EXPECT_EQ(registry_merge_run(8), base);
}

// ---------------------------------------------------------- Multiflow

workload::MultiflowConfig small_population() {
  workload::MultiflowConfig config;
  config.num_lps = 3;
  config.total_flows = 12;
  config.max_active_per_lp = 2;  // forces deferrals (churn path)
  config.offered_bps = 4e6;
  config.packet_bytes = 128;
  config.flow_duration_s = 0.01;
  config.arrival_window_s = 0.05;
  config.control_period_s = 0.01;
  config.seed = 7;
  return config;
}

TEST(Multiflow, RunsPopulationToCompletion) {
  const auto result = workload::run_multiflow(small_population());
  EXPECT_EQ(result.flows_started, 12u);
  EXPECT_EQ(result.flows_completed, 12u);
  EXPECT_GT(result.packets_sent, 0u);
  EXPECT_GT(result.packets_delivered, 0u);
  EXPECT_GE(result.loss_fraction, 0.0);
  EXPECT_LE(result.loss_fraction, 1.0);
  EXPECT_GT(result.partition.windows, 0u);
  EXPECT_GT(result.partition.cross_events, 0u);  // control plane traffic
  EXPECT_GT(result.control_rounds, 0u);
}

TEST(Multiflow, FingerprintBitwiseIdenticalAcrossThreadCounts) {
  std::uint64_t base = 0;
  {
    ThreadGuard guard(1);
    base = workload::run_multiflow(small_population()).fingerprint();
  }
  {
    ThreadGuard guard(2);
    EXPECT_EQ(workload::run_multiflow(small_population()).fingerprint(), base);
  }
  {
    ThreadGuard guard(8);
    EXPECT_EQ(workload::run_multiflow(small_population()).fingerprint(), base);
  }
}

TEST(Multiflow, SingleLpMatchesItselfAndControlCanBeDisabled) {
  auto config = small_population();
  config.num_lps = 1;
  const auto a = workload::run_multiflow(config);
  const auto b = workload::run_multiflow(config);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  config.control_plane = false;
  const auto quiet = workload::run_multiflow(config);
  EXPECT_EQ(quiet.control_rounds, 0u);
  EXPECT_EQ(quiet.partition.cross_events, 0u);
}

TEST(Multiflow, ValidatesConfig) {
  auto config = small_population();
  config.total_flows = 0;
  EXPECT_THROW((void)workload::run_multiflow(config), PreconditionError);
  config = small_population();
  config.packet_bytes = 4;
  EXPECT_THROW((void)workload::run_multiflow(config), PreconditionError);
}

}  // namespace
}  // namespace mcss::net
