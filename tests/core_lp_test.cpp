// Tests for the share-schedule linear programs (Sections IV-B, IV-D, IV-E),
// including the paper's own counterexample for limited schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/channel.hpp"
#include "core/lp_schedule.hpp"
#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "core/schedule.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

ChannelSet five() {
  return ChannelSet{{0.1, 0.010, 2.5, 5},
                    {0.2, 0.005, 0.25, 20},
                    {0.3, 0.010, 12.5, 60},
                    {0.1, 0.020, 5.0, 65},
                    {0.2, 0.030, 0.5, 100}};
}

// ---------------------------------------------------------------- IV-B LP

TEST(ScheduleLp, MaxPrivacyCornerRecoversClosedForm) {
  // kappa = mu = n forces p(n, C) = 1 with Z = prod z_i.
  const auto c = five();
  const auto r = solve_schedule_lp(
      c, {.objective = Objective::Risk, .kappa = 5.0, .mu = 5.0});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  EXPECT_NEAR(r.objective_value, optimal_risk(c), 1e-9);
  EXPECT_NEAR(r.schedule->kappa(), 5.0, 1e-9);
  EXPECT_NEAR(r.schedule->mu(), 5.0, 1e-9);
}

TEST(ScheduleLp, MinLossCornerRecoversClosedForm) {
  const auto c = five();
  const auto r = solve_schedule_lp(
      c, {.objective = Objective::Loss, .kappa = 1.0, .mu = 5.0});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  EXPECT_NEAR(r.objective_value, optimal_loss(c), 1e-9);
}

TEST(ScheduleLp, MinDelayCornerRecoversClosedForm) {
  const auto c = five();
  const auto r = solve_schedule_lp(
      c, {.objective = Objective::Delay, .kappa = 1.0, .mu = 5.0});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  EXPECT_NEAR(r.objective_value, optimal_delay(c), 1e-9);
}

TEST(ScheduleLp, SolutionRespectsMarginals) {
  const auto c = five();
  for (const double kappa : {1.0, 1.7, 2.5, 3.3}) {
    for (const double mu : {3.5, 4.2, 5.0}) {
      if (kappa > mu) continue;
      const auto r = solve_schedule_lp(
          c, {.objective = Objective::Risk, .kappa = kappa, .mu = mu});
      ASSERT_EQ(r.status, lp::Status::Optimal) << kappa << "," << mu;
      EXPECT_NEAR(r.schedule->kappa(), kappa, 1e-7);
      EXPECT_NEAR(r.schedule->mu(), mu, 1e-7);
      // Objective equals the schedule metric recomputed independently.
      EXPECT_NEAR(schedule_risk(c, *r.schedule), r.objective_value, 1e-7);
    }
  }
}

TEST(ScheduleLp, BeatsHandcraftedSchedulesWithSameMarginals) {
  const auto c = five();
  const double kappa = 2.3, mu = 3.6;
  const auto lp_result = solve_schedule_lp(
      c, {.objective = Objective::Risk, .kappa = kappa, .mu = mu});
  ASSERT_EQ(lp_result.status, lp::Status::Optimal);
  // The Theorem 5 construction has the same marginals; LP must not lose.
  const auto handcrafted = limited_schedule_for(c, kappa, mu);
  EXPECT_LE(lp_result.objective_value, schedule_risk(c, handcrafted) + 1e-9);
}

TEST(ScheduleLp, RiskDecreasesWithKappa) {
  // Raising the average threshold (same mu) can only improve privacy.
  const auto c = five();
  double prev = 1.0;
  for (const double kappa : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const auto r = solve_schedule_lp(
        c, {.objective = Objective::Risk, .kappa = kappa, .mu = 5.0});
    ASSERT_EQ(r.status, lp::Status::Optimal);
    EXPECT_LE(r.objective_value, prev + 1e-9);
    prev = r.objective_value;
  }
}

TEST(ScheduleLp, LossIncreasesWithKappaAtFixedMu) {
  const auto c = five();
  double prev = 0.0;
  for (const double kappa : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const auto r = solve_schedule_lp(
        c, {.objective = Objective::Loss, .kappa = kappa, .mu = 5.0});
    ASSERT_EQ(r.status, lp::Status::Optimal);
    EXPECT_GE(r.objective_value, prev - 1e-9);
    prev = r.objective_value;
  }
}

TEST(ScheduleLp, RejectsBadParameters) {
  const auto c = five();
  EXPECT_THROW((void)solve_schedule_lp(c, {.kappa = 0.5, .mu = 2.0}),
               PreconditionError);
  EXPECT_THROW((void)solve_schedule_lp(c, {.kappa = 3.0, .mu = 2.0}),
               PreconditionError);
  EXPECT_THROW((void)solve_schedule_lp(c, {.kappa = 2.0, .mu = 6.0}),
               PreconditionError);
}

// ---------------------------------------------------------------- IV-D LP

TEST(ScheduleLpMaxRate, UsageMatchesUtilizationFractions) {
  const auto c = five();
  const double kappa = 2.0, mu = 3.0;
  const auto r = solve_schedule_lp(c, {.objective = Objective::Loss,
                                       .kappa = kappa,
                                       .mu = mu,
                                       .rate = RateConstraint::MaxRate});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  const auto u = utilization(c, mu);
  EXPECT_NEAR(r.max_rate, u.rate, 1e-9);
  for (int i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(r.schedule->channel_usage(i),
                u.fraction[static_cast<std::size_t>(i)], 1e-7)
        << "channel " << i;
  }
  // mu constraint implied by the usage equalities.
  EXPECT_NEAR(r.schedule->mu(), mu, 1e-7);
  EXPECT_NEAR(r.schedule->kappa(), kappa, 1e-7);
}

TEST(ScheduleLpMaxRate, NeverBeatsUnconstrainedOptimum) {
  const auto c = five();
  for (const double kappa : {1.0, 1.5, 2.5}) {
    for (const double mu : {3.0, 4.0, 5.0}) {
      const ScheduleLpSpec base{.objective = Objective::Loss, .kappa = kappa, .mu = mu};
      auto spec_rate = base;
      spec_rate.rate = RateConstraint::MaxRate;
      const auto unconstrained = solve_schedule_lp(c, base);
      const auto constrained = solve_schedule_lp(c, spec_rate);
      ASSERT_EQ(unconstrained.status, lp::Status::Optimal);
      ASSERT_EQ(constrained.status, lp::Status::Optimal);
      EXPECT_GE(constrained.objective_value,
                unconstrained.objective_value - 1e-9);
    }
  }
}

TEST(ScheduleLpMaxRate, IdenticalChannelsAlwaysFeasible) {
  // Corollary 1: with identical rates, maximum rate is achievable for any
  // valid (kappa, mu) pair.
  const ChannelSet c{{0.1, 0.01, 1, 100},
                     {0.1, 0.01, 1, 100},
                     {0.1, 0.01, 1, 100},
                     {0.1, 0.01, 1, 100},
                     {0.1, 0.01, 1, 100}};
  for (double mu = 1.0; mu <= 5.0; mu += 0.5) {
    for (double kappa = 1.0; kappa <= mu; kappa += 0.5) {
      const auto r = solve_schedule_lp(c, {.objective = Objective::Risk,
                                           .kappa = kappa,
                                           .mu = mu,
                                           .rate = RateConstraint::MaxRate});
      EXPECT_EQ(r.status, lp::Status::Optimal) << kappa << "," << mu;
      EXPECT_NEAR(r.max_rate, 500.0 / mu, 1e-9);
    }
  }
}

TEST(ScheduleLpMaxRate, SpreadsLoadUnlikePureOptimum) {
  // Section IV-D motivation: the IV-B optimum often parks everything on a
  // single best (k, M); the max-rate program must use every channel at its
  // quota instead.
  const auto c = five();
  const auto pure = solve_schedule_lp(
      c, {.objective = Objective::Risk, .kappa = 2.0, .mu = 2.0});
  ASSERT_EQ(pure.status, lp::Status::Optimal);
  const auto spread = solve_schedule_lp(c, {.objective = Objective::Risk,
                                            .kappa = 2.0,
                                            .mu = 2.0,
                                            .rate = RateConstraint::MaxRate});
  ASSERT_EQ(spread.status, lp::Status::Optimal);
  // The pure optimum leaves at least one channel unused here.
  int pure_unused = 0, spread_unused = 0;
  for (int i = 0; i < c.size(); ++i) {
    if (pure.schedule->channel_usage(i) < 1e-9) ++pure_unused;
    if (spread.schedule->channel_usage(i) < 1e-9) ++spread_unused;
  }
  EXPECT_GT(pure_unused, 0);
  EXPECT_EQ(spread_unused, 0);
}

// ---------------------------------------------------------------- IV-E

TEST(ScheduleLpLimited, PaperDelayCounterexample) {
  // Three channels, negligible loss, d = (2, 9, 10), kappa = 2, mu = 3.
  // Limited schedules admit only p(2, C) = 1 with delay 9; unrestricted
  // mixing of (1, C) and (3, C) achieves 6.
  const ChannelSet c{{0.1, 0, 2, 10}, {0.1, 0, 9, 10}, {0.1, 0, 10, 10}};
  const auto unrestricted = solve_schedule_lp(
      c, {.objective = Objective::Delay, .kappa = 2.0, .mu = 3.0});
  ASSERT_EQ(unrestricted.status, lp::Status::Optimal);
  EXPECT_NEAR(unrestricted.objective_value, 6.0, 1e-9);

  const auto limited = solve_schedule_lp(c, {.objective = Objective::Delay,
                                             .kappa = 2.0,
                                             .mu = 3.0,
                                             .restriction = Restriction::Limited});
  ASSERT_EQ(limited.status, lp::Status::Optimal);
  EXPECT_NEAR(limited.objective_value, 9.0, 1e-9);
  EXPECT_TRUE(limited.schedule->is_limited());
}

TEST(ScheduleLpLimited, RatePreservedUnderRestriction) {
  // Section IV-E: "the optimal rate does remain the same" — the limited
  // LP with the max-rate constraint stays feasible at R_C.
  const auto c = five();
  const auto r = solve_schedule_lp(c, {.objective = Objective::Risk,
                                       .kappa = 2.0,
                                       .mu = 3.0,
                                       .rate = RateConstraint::MaxRate,
                                       .restriction = Restriction::Limited});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  EXPECT_NEAR(r.max_rate, optimal_rate(c, 3.0), 1e-9);
  EXPECT_TRUE(r.schedule->is_limited());
}

TEST(ScheduleLpLimited, NeverBeatsUnrestricted) {
  const auto c = five();
  for (const auto obj : {Objective::Risk, Objective::Loss, Objective::Delay}) {
    for (const double kappa : {1.5, 2.5}) {
      for (const double mu : {3.0, 4.5}) {
        ScheduleLpSpec spec{.objective = obj, .kappa = kappa, .mu = mu};
        const auto full = solve_schedule_lp(c, spec);
        spec.restriction = Restriction::Limited;
        const auto lim = solve_schedule_lp(c, spec);
        ASSERT_EQ(full.status, lp::Status::Optimal);
        ASSERT_EQ(lim.status, lp::Status::Optimal);
        EXPECT_GE(lim.objective_value, full.objective_value - 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------- Monte Carlo

TEST(ScheduleLp, OptimalScheduleMetricsMatchSimulation) {
  // Sample (k, M) from an LP-produced schedule, simulate the single-symbol
  // protocol, and verify the predicted Z(p)/L(p) appear empirically.
  const auto c = five();
  const auto r = solve_schedule_lp(c, {.objective = Objective::Risk,
                                       .kappa = 2.0,
                                       .mu = 3.0,
                                       .rate = RateConstraint::MaxRate});
  ASSERT_EQ(r.status, lp::Status::Optimal);
  const auto& schedule = *r.schedule;

  Rng rng(99);
  const int trials = 300000;
  int observed = 0, lost = 0;
  for (int t = 0; t < trials; ++t) {
    const auto& e = schedule.sample(rng);
    int eaves = 0, arrived = 0;
    for_each_member(e.channels, [&](int i) {
      if (rng.bernoulli(c[i].risk)) ++eaves;
      if (!rng.bernoulli(c[i].loss)) ++arrived;
    });
    if (eaves >= e.k) ++observed;
    if (arrived < e.k) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(observed) / trials, schedule_risk(c, schedule),
              0.005);
  EXPECT_NEAR(static_cast<double>(lost) / trials, schedule_loss(c, schedule),
              0.005);
}

}  // namespace
}  // namespace mcss
