// Tests for the adaptive controller: sensing drifting loss, re-planning,
// and live schedule swaps.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "feedback/reliable_link.hpp"
#include "feedback/retransmit.hpp"
#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "util/ensure.hpp"
#include "workload/adaptive.hpp"
#include "workload/setups.hpp"
#include "workload/traffic.hpp"

namespace mcss::workload {
namespace {

/// Five identical 20 Mbps channels; channel 0's loss jumps from 0 to 30%
/// at t = 1 s. Returns delivery fraction in the post-drift window
/// [2 s, 4 s] (giving the controller one second to react), plus the
/// controller itself via out-params for assertions.
struct DriftRun {
  double post_drift_delivery = 0.0;
  std::uint64_t replans = 0;
  std::vector<AdaptationEvent> history;
};

DriftRun run_drift(bool adaptive, std::uint64_t seed) {
  net::Simulator sim;
  Rng root(seed);
  const auto setup = identical_setup(20);

  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (const auto& cfg : setup.channels) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
    wires.push_back(storage.back().get());
  }

  proto::Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  std::uint64_t delivered_window = 0;
  const net::SimTime window_start = net::from_seconds(2.0);
  const net::SimTime window_end = net::from_seconds(4.0);
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    if (sim.now() >= window_start && sim.now() <= window_end) {
      ++delivered_window;
    }
  });

  // kappa = mu = 2: no redundancy; avoiding the lossy channel is the only
  // defense, which is exactly what the re-solved schedule should do.
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 5),
                   root.fork());

  std::unique_ptr<AdaptiveController> controller;
  if (adaptive) {
    AdaptiveConfig cfg;
    cfg.goal.objective = PlannerGoal::Objective::MaxRate;
    cfg.goal.max_loss = 0.02;
    cfg.goal.step = 0.5;
    cfg.interval = net::from_millis(200);
    cfg.smoothing = 0.6;
    cfg.stop_after = window_end;
    cfg.risks = setup.risks;
    controller = std::make_unique<AdaptiveController>(sim, tx, wires, cfg,
                                                      root.fork());
  }

  // Loss drift on channel 0.
  sim.schedule_at(net::from_seconds(1.0), [&] { wires[0]->set_loss(0.30); });

  // Offer ~60% of nominal capacity so the schedule has freedom to move.
  std::uint64_t sent_window = 0;
  CbrSource source(
      sim, 30e6, 1470, 0, window_end,
      [&](std::vector<std::uint8_t> p) {
        const bool ok = tx.send(std::move(p));
        return ok;
      },
      root.fork()());
  // Track packets sent in the window via a snapshot pair.
  std::uint64_t sent_at_start = 0;
  sim.schedule_at(window_start, [&] { sent_at_start = tx.stats().packets_sent; });
  sim.schedule_at(window_end, [&] {
    sent_window = tx.stats().packets_sent - sent_at_start;
  });

  sim.run();

  DriftRun result;
  result.post_drift_delivery =
      sent_window ? static_cast<double>(delivered_window) /
                        static_cast<double>(sent_window)
                  : 0.0;
  if (controller) {
    result.replans = controller->replans();
    result.history = controller->history();
  }
  return result;
}

TEST(Adaptive, RoutesAroundDriftingLoss) {
  const auto fixed = run_drift(false, 101);
  const auto adaptive = run_drift(true, 101);

  // Without adaptation, kappa = mu = 2 on 5 channels keeps ~2/5 of shares
  // on the lossy channel's rotation: measurable packet loss.
  EXPECT_LT(fixed.post_drift_delivery, 0.93);
  // With adaptation the planner shifts usage off channel 0 (and/or adds
  // redundancy) to honor max_loss = 2%.
  EXPECT_GT(adaptive.post_drift_delivery, 0.97);
  EXPECT_GT(adaptive.post_drift_delivery, fixed.post_drift_delivery + 0.03);
}

TEST(Adaptive, SensesTheLossEstimate) {
  const auto adaptive = run_drift(true, 202);
  ASSERT_FALSE(adaptive.history.empty());
  // Early ticks: channel 0 estimate near 0. Late ticks: near 0.30.
  const auto& first = adaptive.history.front();
  const auto& last = adaptive.history.back();
  EXPECT_LT(first.estimated_loss[0], 0.05);
  EXPECT_GT(last.estimated_loss[0], 0.15);
  // Untouched channels stay clean.
  EXPECT_LT(last.estimated_loss[1], 0.05);
}

TEST(Adaptive, StableConditionsNeedNoReplan) {
  // No drift: after the initial plan the operating point should not move.
  net::Simulator sim;
  Rng root(7);
  const auto setup = identical_setup(20);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (const auto& cfg : setup.channels) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
    wires.push_back(storage.back().get());
  }
  proto::Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(1.0, 1.0, 5),
                   root.fork());
  AdaptiveConfig cfg;
  cfg.goal.step = 0.5;
  cfg.interval = net::from_millis(100);
  cfg.stop_after = net::from_seconds(1.0);
  AdaptiveController controller(sim, tx, wires, cfg, root.fork());
  CbrSource source(sim, 20e6, 1470, 0, net::from_seconds(1.0),
                   [&](std::vector<std::uint8_t> p) { return tx.send(std::move(p)); });
  sim.run();
  EXPECT_EQ(controller.replans(), 1u);  // the initial plan only
  EXPECT_GE(controller.history().size(), 8u);
}

TEST(Adaptive, RejectsBadConfig) {
  net::Simulator sim;
  Rng root(9);
  net::ChannelConfig cc;
  net::SimChannel wire(sim, cc, root.fork());
  std::vector<net::SimChannel*> wires{&wire};
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(1.0, 1.0, 1),
                   root.fork());
  AdaptiveConfig bad;
  bad.interval = 0;
  EXPECT_THROW(AdaptiveController(sim, tx, wires, bad, root.fork()),
               PreconditionError);
  bad = AdaptiveConfig{};
  bad.smoothing = 0.0;
  EXPECT_THROW(AdaptiveController(sim, tx, wires, bad, root.fork()),
               PreconditionError);
}

TEST(Adaptive, SensesLossFromFeedbackReports) {
  // The feedback path: loss estimates come from RetransmitManager
  // telemetry (sender send counts joined with receiver report counts),
  // not from SimChannel counters — what a deployed sender can observe.
  net::Simulator sim;
  Rng root(303);
  net::ChannelConfig cc;
  cc.rate_bps = 20e6;
  cc.delay = net::from_millis(1);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 3; ++i) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cc, root.fork()));
    wires.push_back(storage.back().get());
  }
  net::SimChannel feedback_wire(sim, cc, root.fork());
  proto::Receiver rx(sim);  // the link attaches it to the wires
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 3),
                   root.fork());
  const net::SimTime end = net::from_seconds(2.0);
  feedback::ReliableLinkConfig link_cfg;
  link_cfg.retransmit.max_retransmits = 0;  // sense only, no repair traffic
  link_cfg.stop_after = end;
  feedback::ReliableLink link(sim, tx, rx, wires, feedback_wire, link_cfg,
                              root.fork());

  AdaptiveConfig cfg;
  cfg.goal.max_loss = 0.02;
  cfg.goal.step = 0.5;
  cfg.interval = net::from_millis(200);
  cfg.smoothing = 0.6;
  cfg.stop_after = end;
  AdaptiveController controller(sim, tx, wires, cfg, root.fork());
  controller.use_feedback(&link.manager());

  sim.schedule_at(net::from_seconds(0.5), [&] { wires[0]->set_loss(0.30); });
  CbrSource source(
      sim, 12e6, 1470, 0, end,
      [&](std::vector<std::uint8_t> p) { return tx.send(std::move(p)); },
      root.fork()());
  sim.run();

  // Most ticks saw fresh reports (reports every 20 ms, ticks every 200).
  EXPECT_GE(controller.feedback_ticks(), 5u);
  ASSERT_FALSE(controller.history().empty());
  const auto& last = controller.history().back();
  EXPECT_TRUE(last.from_reports);
  // The drifted channel was sensed through reports alone...
  EXPECT_GT(last.estimated_loss[0], 0.15);
  // ...without smearing loss onto the clean channels.
  EXPECT_LT(last.estimated_loss[1], 0.05);
  EXPECT_LT(last.estimated_loss[2], 0.05);
}

TEST(Adaptive, FallsBackToChannelCountersWhenReportsStall) {
  // A manager that never hears a report (dead feedback channel) must not
  // blind the controller: every tick falls back to the SimChannel
  // counters and still senses the drift.
  net::Simulator sim;
  Rng root(404);
  net::ChannelConfig cc;
  cc.rate_bps = 20e6;
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 3; ++i) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cc, root.fork()));
    wires.push_back(storage.back().get());
  }
  proto::Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(2.0, 2.0, 3),
                   root.fork());
  feedback::RetransmitManager silent_manager({}, Rng(1));

  AdaptiveConfig cfg;
  cfg.goal.max_loss = 0.02;
  cfg.goal.step = 0.5;
  cfg.interval = net::from_millis(100);
  cfg.smoothing = 0.6;
  cfg.stop_after = net::from_seconds(1.0);
  AdaptiveController controller(sim, tx, wires, cfg, root.fork());
  controller.use_feedback(&silent_manager);

  wires[0]->set_loss(0.30);
  CbrSource source(
      sim, 12e6, 1470, 0, net::from_seconds(1.0),
      [&](std::vector<std::uint8_t> p) { return tx.send(std::move(p)); },
      root.fork()());
  sim.run();

  EXPECT_EQ(controller.feedback_ticks(), 0u);
  ASSERT_FALSE(controller.history().empty());
  for (const auto& event : controller.history()) {
    EXPECT_FALSE(event.from_reports);
  }
  EXPECT_GT(controller.history().back().estimated_loss[0], 0.15);
}

TEST(SenderSchedulerSwap, MidStreamSwapKeepsDelivering) {
  net::Simulator sim;
  Rng root(11);
  const auto setup = identical_setup(20);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (const auto& cfg : setup.channels) {
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, root.fork()));
    wires.push_back(storage.back().get());
  }
  proto::Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  int delivered = 0;
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  proto::Sender tx(sim, wires,
                   std::make_unique<proto::DynamicScheduler>(1.0, 1.0, 5),
                   root.fork());
  // Swap to a very different policy mid-stream.
  sim.schedule_at(net::from_millis(50), [&] {
    tx.set_scheduler(std::make_unique<proto::DynamicScheduler>(3.0, 5.0, 5));
  });
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(net::from_micros(static_cast<double>(i) * 500),
                    [&] { (void)tx.send(std::vector<std::uint8_t>(500, 1)); });
  }
  sim.run();
  EXPECT_EQ(delivered, 200);
  // The aggregate kappa sits between the two policies' targets.
  EXPECT_GT(tx.stats().achieved_kappa(), 1.0);
  EXPECT_LT(tx.stats().achieved_kappa(), 3.0);
}

}  // namespace
}  // namespace mcss::workload
