// Tests for threshold secret sharing: roundtrips, subset reconstruction,
// perfect secrecy of the constructions, and error handling.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <span>
#include <vector>

#include "field/gf256.hpp"
#include "sss/shamir.hpp"
#include "sss/xor_sharing.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"
#include "util/subset.hpp"

namespace mcss::sss {
namespace {

std::vector<std::uint8_t> random_secret(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> s(len);
  for (auto& b : s) b = rng.byte();
  return s;
}

// ---------------------------------------------------------------- Shamir

struct KmParam {
  int k;
  int m;
};

class ShamirKmTest : public ::testing::TestWithParam<KmParam> {};

TEST_P(ShamirKmTest, RoundtripWithFirstKShares) {
  const auto [k, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 100 + m));
  const auto secret = random_secret(rng, 64);
  const auto shares = split(secret, k, m, rng);
  ASSERT_EQ(shares.size(), static_cast<std::size_t>(m));
  EXPECT_EQ(reconstruct_first_k(shares, k), secret);
}

TEST_P(ShamirKmTest, EveryKSubsetReconstructs) {
  const auto [k, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 1000 + m));
  const auto secret = random_secret(rng, 16);
  const auto shares = split(secret, k, m, rng);
  for_each_subset(full_mask(m), [&, k = k](Mask sub) {
    if (mask_size(sub) != k) return;
    std::vector<Share> chosen;
    for_each_member(sub, [&](int i) { chosen.push_back(shares[static_cast<std::size_t>(i)]); });
    EXPECT_EQ(reconstruct(chosen), secret);
  });
}

TEST_P(ShamirKmTest, MoreThanKSharesAlsoReconstruct) {
  const auto [k, m] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 7 + m));
  const auto secret = random_secret(rng, 8);
  const auto shares = split(secret, k, m, rng);
  EXPECT_EQ(reconstruct(shares), secret);  // all m shares
}

INSTANTIATE_TEST_SUITE_P(
    AllValidKm, ShamirKmTest,
    ::testing::ValuesIn([] {
      std::vector<KmParam> params;
      for (int m = 1; m <= 8; ++m) {
        for (int k = 1; k <= m; ++k) params.push_back({k, m});
      }
      return params;
    }()),
    [](const ::testing::TestParamInfo<KmParam>& p) {
      return "k" + std::to_string(p.param.k) + "m" + std::to_string(p.param.m);
    });

TEST(Shamir, SharesAreSecretSized) {
  Rng rng(1);
  const auto secret = random_secret(rng, 1000);
  const auto shares = split(secret, 3, 5, rng);
  for (const Share& s : shares) {
    EXPECT_EQ(s.data.size(), secret.size());  // H(Y) = H(X), no expansion
  }
}

TEST(Shamir, SplitIntoMatchesSplitByteForByte) {
  // The live sender's in-place path must consume the rng identically and
  // produce the same share bytes as the allocating split().
  Rng rng_a(71);
  Rng rng_b(71);
  const auto secret = random_secret(rng_a, 500);
  random_secret(rng_b, 500);  // keep the streams aligned

  const auto shares = split(secret, 3, 5, rng_a);

  std::vector<std::vector<std::uint8_t>> bufs(
      5, std::vector<std::uint8_t>(secret.size()));
  std::vector<std::span<std::uint8_t>> dests(bufs.begin(), bufs.end());
  std::vector<std::uint8_t> scratch;
  split_into(secret, 3, dests, scratch, rng_b);

  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(j)],
              shares[static_cast<std::size_t>(j)].data)
        << "share " << j;
  }
  // Scratch reuse across calls with a different k must stay correct.
  split_into(secret, 1, dests, scratch, rng_b);
  for (const auto& buf : bufs) EXPECT_EQ(buf, secret);  // k=1 replicates
}

TEST(Shamir, SplitIntoRejectsWrongSizedDestination) {
  Rng rng(72);
  const auto secret = random_secret(rng, 64);
  std::vector<std::uint8_t> short_buf(32);
  std::vector<std::span<std::uint8_t>> dests{std::span(short_buf)};
  std::vector<std::uint8_t> scratch;
  EXPECT_THROW(split_into(secret, 1, dests, scratch, rng),
               PreconditionError);
}

TEST(Shamir, EmptySecretRoundtrips) {
  Rng rng(2);
  const std::vector<std::uint8_t> empty;
  const auto shares = split(empty, 2, 3, rng);
  EXPECT_TRUE(reconstruct_first_k(shares, 2).empty());
}

TEST(Shamir, LargeSecretRoundtrips) {
  Rng rng(3);
  const auto secret = random_secret(rng, 65536);
  const auto shares = split(secret, 4, 7, rng);
  std::vector<Share> pick{shares[6], shares[0], shares[3], shares[5]};
  EXPECT_EQ(reconstruct(pick), secret);
}

TEST(Shamir, MaxMultiplicity) {
  Rng rng(4);
  const auto secret = random_secret(rng, 4);
  const auto shares = split(secret, 2, 255, rng);
  std::vector<Share> pick{shares[254], shares[0]};
  EXPECT_EQ(reconstruct(pick), secret);
}

TEST(Shamir, K1IsReplication) {
  Rng rng(5);
  const auto secret = random_secret(rng, 32);
  const auto shares = split(secret, 1, 4, rng);
  for (const Share& s : shares) {
    EXPECT_EQ(s.data, secret);  // degree-0 polynomial: every share IS the secret
  }
}

TEST(Shamir, FewerThanKSharesYieldWrongSecret) {
  Rng rng(6);
  const auto secret = random_secret(rng, 32);
  const auto shares = split(secret, 3, 5, rng);
  // Interpolating with only 2 of 3 required shares must not recover the
  // secret (except with probability ~2^-256, impossible for this seed).
  std::vector<Share> tooFew{shares[0], shares[1]};
  EXPECT_NE(reconstruct(tooFew), secret);
}

TEST(Shamir, PerfectSecrecyOfSingleShare) {
  // For k=2, a single share's value, over the random coefficient, is a
  // bijection of the coefficient: exactly uniform regardless of secret.
  // Enumerate all 256 coefficient values via a counting argument: fix the
  // secret byte; share at x=1 is s ^ c (c uniform) — every value once.
  for (int secret_byte : {0x00, 0x5A, 0xFF}) {
    std::set<gf::Elem> values;
    for (int c = 0; c < 256; ++c) {
      const std::vector<gf::Elem> coeffs{static_cast<gf::Elem>(secret_byte),
                                         static_cast<gf::Elem>(c)};
      values.insert(gf::poly_eval(coeffs, 1));
    }
    EXPECT_EQ(values.size(), 256u);  // uniform marginal: zero information
  }
}

TEST(Shamir, KMinusOneSharesJointlyIndependentOfSecret) {
  // k=3: enumerate ALL 65536 coefficient pairs (c1, c2) for a fixed secret
  // byte and record the joint value of two shares (x=1, x=2). The map
  // (c1, c2) -> (y1, y2) must be a bijection — every joint observation
  // occurs exactly once — so the joint distribution of any k-1 shares is
  // uniform and identical for every secret: zero information disclosed.
  for (int secret_byte : {0x00, 0x3C, 0xFF}) {
    std::array<int, 65536> joint_count{};
    for (int c1 = 0; c1 < 256; ++c1) {
      for (int c2 = 0; c2 < 256; ++c2) {
        const std::vector<gf::Elem> coeffs{static_cast<gf::Elem>(secret_byte),
                                           static_cast<gf::Elem>(c1),
                                           static_cast<gf::Elem>(c2)};
        const gf::Elem y1 = gf::poly_eval(coeffs, 1);
        const gf::Elem y2 = gf::poly_eval(coeffs, 2);
        joint_count[static_cast<std::size_t>(y1) * 256 + y2]++;
      }
    }
    for (const int count : joint_count) {
      ASSERT_EQ(count, 1);  // exactly uniform joint distribution
    }
  }
}

TEST(Shamir, SplitRejectsBadParameters) {
  Rng rng(7);
  const auto secret = random_secret(rng, 8);
  EXPECT_THROW((void)split(secret, 0, 3, rng), PreconditionError);
  EXPECT_THROW((void)split(secret, 4, 3, rng), PreconditionError);
  EXPECT_THROW((void)split(secret, 1, 256, rng), PreconditionError);
}

TEST(Shamir, ReconstructRejectsBadShares) {
  Rng rng(8);
  const auto secret = random_secret(rng, 8);
  auto shares = split(secret, 2, 3, rng);

  EXPECT_THROW((void)reconstruct(std::vector<Share>{}), PreconditionError);

  std::vector<Share> dup{shares[0], shares[0]};
  EXPECT_THROW((void)reconstruct(dup), PreconditionError);

  std::vector<Share> mismatched{shares[0], shares[1]};
  mismatched[1].data.pop_back();
  EXPECT_THROW((void)reconstruct(mismatched), PreconditionError);

  std::vector<Share> zero_index{shares[0], shares[1]};
  zero_index[0].index = 0;
  EXPECT_THROW((void)reconstruct(zero_index), PreconditionError);

  EXPECT_THROW((void)reconstruct_first_k(shares, 0), PreconditionError);
  EXPECT_THROW((void)reconstruct_first_k(shares, 4), PreconditionError);
}

TEST(Shamir, DeterministicGivenSeed) {
  const std::vector<std::uint8_t> secret{1, 2, 3, 4};
  Rng a(99), b(99);
  EXPECT_EQ(split(secret, 2, 4, a), split(secret, 2, 4, b));
}

TEST(Shamir, DifferentSeedsGiveDifferentShares) {
  const std::vector<std::uint8_t> secret{1, 2, 3, 4};
  Rng a(99), b(100);
  EXPECT_NE(split(secret, 2, 4, a), split(secret, 2, 4, b));
}

// ---------------------------------------------------------------- XOR sharing

TEST(XorSharing, RoundtripVariousM) {
  for (int m = 1; m <= 10; ++m) {
    Rng rng(static_cast<std::uint64_t>(m));
    const auto secret = random_secret(rng, 128);
    const auto shares = xor_split(secret, m, rng);
    ASSERT_EQ(shares.size(), static_cast<std::size_t>(m));
    EXPECT_EQ(xor_reconstruct(shares), secret);
  }
}

TEST(XorSharing, OrderIrrelevant) {
  Rng rng(11);
  const auto secret = random_secret(rng, 32);
  auto shares = xor_split(secret, 5, rng);
  std::swap(shares[0], shares[4]);
  std::swap(shares[1], shares[3]);
  EXPECT_EQ(xor_reconstruct(shares), secret);
}

TEST(XorSharing, MissingShareGivesGarbage) {
  Rng rng(12);
  const auto secret = random_secret(rng, 32);
  auto shares = xor_split(secret, 4, rng);
  shares.pop_back();
  EXPECT_NE(xor_reconstruct(shares), secret);
}

TEST(XorSharing, SingleShareIsSecretItself) {
  Rng rng(13);
  const auto secret = random_secret(rng, 16);
  const auto shares = xor_split(secret, 1, rng);
  EXPECT_EQ(shares[0].data, secret);
}

TEST(XorSharing, PadSharesAreUniformlyDistributed) {
  // First m-1 shares are raw pads: byte histogram should be flat.
  Rng rng(14);
  const auto secret = std::vector<std::uint8_t>(100000, 0xAA);  // constant secret
  const auto shares = xor_split(secret, 2, rng);
  std::array<int, 256> hist{};
  for (const auto b : shares[0].data) hist[b]++;
  for (const int count : hist) {
    EXPECT_NEAR(count, 100000 / 256, 150);
  }
}

TEST(XorSharing, RejectsBadInput) {
  Rng rng(15);
  const auto secret = random_secret(rng, 8);
  EXPECT_THROW((void)xor_split(secret, 0, rng), PreconditionError);
  EXPECT_THROW((void)xor_reconstruct(std::vector<Share>{}), PreconditionError);
  auto shares = xor_split(secret, 3, rng);
  shares[1].data.pop_back();
  EXPECT_THROW((void)xor_reconstruct(shares), PreconditionError);
}

}  // namespace
}  // namespace mcss::sss
