// Tests for share schedules: validation, kappa/mu marginals, sampling,
// channel usage, limited schedules, and the Theorem 5 construction.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/channel.hpp"
#include "core/optimal.hpp"
#include "core/schedule.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

ChannelSet five() {
  return ChannelSet{{0.1, 0.01, 2.5, 5},
                    {0.2, 0.005, 0.25, 20},
                    {0.3, 0.01, 12.5, 60},
                    {0.1, 0.02, 5.0, 65},
                    {0.2, 0.03, 0.5, 100}};
}

TEST(ShareSchedule, ValidatesEntries) {
  const auto c = five();
  // Probabilities must sum to 1.
  EXPECT_THROW(ShareSchedule(c, {{1, 0b1, 0.5}}), PreconditionError);
  // k > |M| invalid.
  EXPECT_THROW(ShareSchedule(c, {{2, 0b1, 1.0}}), PreconditionError);
  // Empty subset invalid.
  EXPECT_THROW(ShareSchedule(c, {{1, 0, 1.0}}), PreconditionError);
  // Channels outside the set invalid.
  EXPECT_THROW(ShareSchedule(c, {{1, 0b100000, 1.0}}), PreconditionError);
  // Negative probability invalid.
  EXPECT_THROW(ShareSchedule(c, {{1, 0b1, -0.2}, {1, 0b10, 1.2}}), PreconditionError);
  // Valid case.
  EXPECT_NO_THROW(ShareSchedule(c, {{1, 0b1, 0.5}, {2, 0b11, 0.5}}));
}

TEST(ShareSchedule, DropsZeroProbabilityAtoms) {
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b1, 1.0}, {2, 0b11, 0.0}});
  EXPECT_EQ(p.entries().size(), 1u);
}

TEST(ShareSchedule, RenormalizesWithinTolerance) {
  const auto c = five();
  // Sum is 1 + 4e-7: accepted and renormalized exactly.
  const ShareSchedule p(c, {{1, 0b1, 0.5 + 2e-7}, {1, 0b10, 0.5 + 2e-7}});
  double total = 0.0;
  for (const auto& e : p.entries()) total += e.probability;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(ShareSchedule, KappaMuMarginals) {
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b00001, 0.25},    // k=1, m=1
                            {2, 0b00111, 0.50},    // k=2, m=3
                            {5, 0b11111, 0.25}});  // k=5, m=5
  EXPECT_NEAR(p.kappa(), 0.25 * 1 + 0.5 * 2 + 0.25 * 5, 1e-12);
  EXPECT_NEAR(p.mu(), 0.25 * 1 + 0.5 * 3 + 0.25 * 5, 1e-12);
}

TEST(ShareSchedule, ChannelUsage) {
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b00011, 0.5}, {1, 0b00010, 0.5}});
  EXPECT_NEAR(p.channel_usage(0), 0.5, 1e-12);
  EXPECT_NEAR(p.channel_usage(1), 1.0, 1e-12);
  EXPECT_NEAR(p.channel_usage(2), 0.0, 1e-12);
}

TEST(ShareSchedule, UsageSumsToMu) {
  Rng rng(1);
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b10101, 0.3}, {2, 0b01111, 0.45}, {3, 0b11100, 0.25}});
  double usage = 0.0;
  for (int i = 0; i < c.size(); ++i) usage += p.channel_usage(i);
  EXPECT_NEAR(usage, p.mu(), 1e-12);
}

TEST(ShareSchedule, SamplingMatchesDistribution) {
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b00001, 0.2}, {2, 0b00011, 0.3}, {3, 0b00111, 0.5}});
  Rng rng(2);
  std::map<int, int> counts;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) counts[p.sample(rng).k]++;
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.5, 0.01);
}

TEST(ShareSchedule, SampledKappaMuConverge) {
  const auto c = five();
  const ShareSchedule p(c, {{1, 0b00111, 0.4}, {3, 0b11111, 0.6}});
  Rng rng(3);
  double ksum = 0.0, msum = 0.0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    const auto& e = p.sample(rng);
    ksum += e.k;
    msum += mask_size(e.channels);
  }
  EXPECT_NEAR(ksum / trials, p.kappa(), 0.01);
  EXPECT_NEAR(msum / trials, p.mu(), 0.01);
}

TEST(ShareSchedule, IsLimitedDetection) {
  const auto c = five();
  // kappa = 2, mu = 3, all entries have k >= 2 and |M| >= 3: limited.
  const ShareSchedule limited(c, {{2, 0b00111, 1.0}});
  EXPECT_TRUE(limited.is_limited());
  // kappa = 2, mu = 3 via mix of (1, C) and (3, C): NOT limited.
  const ShareSchedule mixed(c, {{1, 0b00111, 0.5}, {3, 0b00111, 0.5}});
  EXPECT_NEAR(mixed.kappa(), 2.0, 1e-12);
  EXPECT_FALSE(mixed.is_limited());
}

// ---------------------------------------------------------------- named schedules

TEST(NamedSchedules, MaxPrivacyUsesEverythingEverywhere) {
  const auto c = five();
  const auto p = max_privacy_schedule(c);
  EXPECT_NEAR(p.kappa(), 5.0, 1e-12);
  EXPECT_NEAR(p.mu(), 5.0, 1e-12);
}

TEST(NamedSchedules, MinLossIsOneOfN) {
  const auto c = five();
  const auto p = min_loss_schedule(c);
  EXPECT_NEAR(p.kappa(), 1.0, 1e-12);
  EXPECT_NEAR(p.mu(), 5.0, 1e-12);
}

TEST(NamedSchedules, MaxRateIsProportionalStriping) {
  const auto c = five();
  const auto p = max_rate_schedule(c);
  EXPECT_NEAR(p.kappa(), 1.0, 1e-12);
  EXPECT_NEAR(p.mu(), 1.0, 1e-12);
  // Usage proportional to rate: channel 4 (100 of 250) -> 0.4.
  EXPECT_NEAR(p.channel_usage(4), 0.4, 1e-12);
  EXPECT_NEAR(p.channel_usage(0), 0.02, 1e-12);
}

// ---------------------------------------------------------------- Theorem 5

class Theorem5Test : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Theorem5Test, ConstructionHitsExactMarginalsAndStaysLimited) {
  const auto [kappa, mu] = GetParam();
  const auto c = five();
  const auto p = limited_schedule_for(c, kappa, mu);
  EXPECT_NEAR(p.kappa(), kappa, 1e-9);
  EXPECT_NEAR(p.mu(), mu, 1e-9);
  EXPECT_TRUE(p.is_limited());
  // Every entry individually satisfies the courier-mode guarantee.
  const auto k_floor = static_cast<int>(std::floor(kappa + 1e-9));
  for (const auto& e : p.entries()) {
    EXPECT_GE(e.k, k_floor);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KappaMuGrid, Theorem5Test,
    ::testing::ValuesIn([] {
      std::vector<std::pair<double, double>> grid;
      for (double kappa = 1.0; kappa <= 5.0; kappa += 0.3) {
        for (double mu = kappa; mu <= 5.0; mu += 0.3) {
          grid.emplace_back(kappa, mu);
        }
      }
      // The tricky regions: frac(kappa) > frac(mu) and integer corners.
      grid.emplace_back(2.9, 3.2);
      grid.emplace_back(2.5, 2.7);
      grid.emplace_back(1.0, 1.0);
      grid.emplace_back(5.0, 5.0);
      grid.emplace_back(1.0, 5.0);
      grid.emplace_back(2.0, 4.0);
      return grid;
    }()));

TEST(Theorem5, RejectsInvalidParameters) {
  const auto c = five();
  EXPECT_THROW((void)limited_schedule_for(c, 0.5, 2.0), PreconditionError);
  EXPECT_THROW((void)limited_schedule_for(c, 3.0, 2.0), PreconditionError);  // kappa > mu
  EXPECT_THROW((void)limited_schedule_for(c, 2.0, 5.5), PreconditionError);  // mu > n
}

TEST(Theorem5, SubsetsAreFastestChannels) {
  const auto c = five();  // fastest = channel 4 (100), then 3 (65), 2 (60)...
  const auto p = limited_schedule_for(c, 2.0, 3.0);
  for (const auto& e : p.entries()) {
    EXPECT_EQ(e.channels, 0b11100u);  // channels 2, 3, 4
  }
}

}  // namespace
}  // namespace mcss
