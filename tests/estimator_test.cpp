// Tests for the channel prober: measured (l, d, r) must recover the
// configured truth within tight tolerances.
#include <gtest/gtest.h>

#include "util/ensure.hpp"
#include "workload/estimator.hpp"
#include "workload/setups.hpp"

namespace mcss::workload {
namespace {

net::ChannelConfig channel(double mbps, double loss, double delay_ms) {
  net::ChannelConfig cfg;
  cfg.rate_bps = mbps * 1e6;
  cfg.loss = loss;
  cfg.delay = net::from_millis(delay_ms);
  cfg.queue_capacity_bytes = 64 * 1024;
  cfg.ready_watermark_bytes = 8 * 1024;
  return cfg;
}

TEST(Estimator, RecoversRate) {
  const auto est = measure_channel(channel(60, 0.0, 0.0));
  // 60 Mbps of 1470-byte frames = 5102 frames/s.
  EXPECT_NEAR(est.rate_pps, 60e6 / (1470 * 8), 60e6 / (1470 * 8) * 0.03);
}

TEST(Estimator, RecoversLoss) {
  ProbeConfig probe;
  probe.pace_seconds = 5.0;  // more probes for tighter loss statistics
  const auto est = measure_channel(channel(60, 0.02, 0.0), probe);
  EXPECT_NEAR(est.loss, 0.02, 0.006);
  EXPECT_GT(est.probes_sent, 1000u);
}

TEST(Estimator, RecoversDelay) {
  const auto est = measure_channel(channel(60, 0.0, 7.5));
  EXPECT_NEAR(est.delay_s, 0.0075, 0.0002);
}

TEST(Estimator, LossCorrectedRateStaysAccurate) {
  // Loss consumes serializer slots; the estimator must still report the
  // configured capacity, not capacity * (1 - loss).
  const auto est = measure_channel(channel(40, 0.10, 1.0));
  EXPECT_NEAR(est.rate_pps, 40e6 / (1470 * 8), 40e6 / (1470 * 8) * 0.05);
  EXPECT_NEAR(est.loss, 0.10, 0.02);
}

TEST(Estimator, DeterministicGivenSeed) {
  const auto a = measure_channel(channel(30, 0.05, 2.0));
  const auto b = measure_channel(channel(30, 0.05, 2.0));
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.rate_pps, b.rate_pps);
  ProbeConfig other;
  other.seed = 99;
  const auto c = measure_channel(channel(30, 0.05, 2.0), other);
  EXPECT_NE(a.probes_received, c.probes_received);
}

TEST(Estimator, MeasuredSetupMatchesConfiguredModel) {
  // End-to-end: probe the whole Lossy setup and compare against the
  // configured ground truth used by Setup::to_model.
  const auto setup = lossy_setup();
  ProbeConfig probe;
  probe.pace_seconds = 3.0;
  const auto measured = measure_setup(setup, probe);
  const auto truth = setup.to_model(probe.frame_bytes);
  ASSERT_EQ(measured.size(), truth.size());
  for (int i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(measured[i].rate, truth[i].rate, truth[i].rate * 0.05) << i;
    EXPECT_NEAR(measured[i].loss, truth[i].loss, 0.01) << i;
    EXPECT_NEAR(measured[i].delay, truth[i].delay, 0.0005) << i;
    EXPECT_EQ(measured[i].risk, truth[i].risk) << i;  // risks pass through
  }
}

TEST(Estimator, RejectsBadProbeConfig) {
  ProbeConfig bad;
  bad.frame_bytes = 4;
  EXPECT_THROW((void)measure_channel(channel(10, 0, 0), bad), PreconditionError);
  bad = ProbeConfig{};
  bad.pace_fraction = 1.5;
  EXPECT_THROW((void)measure_channel(channel(10, 0, 0), bad), PreconditionError);
  bad = ProbeConfig{};
  bad.saturate_seconds = 0;
  EXPECT_THROW((void)measure_channel(channel(10, 0, 0), bad), PreconditionError);
}

}  // namespace
}  // namespace mcss::workload
