// Tests for the discrete-event simulator, channel model, and CPU model.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "net/cpu_model.hpp"
#include "net/outage.hpp"
#include "net/sim_channel.hpp"
#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "util/ensure.hpp"

namespace mcss::net {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.0), 1'000'000'000);
  EXPECT_EQ(from_millis(2.5), 2'500'000);
  EXPECT_EQ(from_micros(3.0), 3'000);
  EXPECT_DOUBLE_EQ(to_seconds(500'000'000), 0.5);
  EXPECT_DOUBLE_EQ(to_millis(1'000'000), 1.0);
}

TEST(SimTime, RoundsHalfwayCasesCorrectly) {
  // 0.49999999999999994 ns is the largest double below 0.5 ns: adding
  // 0.5 to it rounds UP to 1.0 under round-to-even (the old
  // `cast(x + 0.5)` idiom truncated that to 1 — off by one); llround
  // returns 0.
  EXPECT_EQ(from_seconds(0.49999999999999994e-9), 0);
  // Halfway cases round away from zero, negatives included (the +0.5
  // idiom rounded -2.5 ns toward zero instead).
  EXPECT_EQ(from_seconds(2.5e-9), 3);
  EXPECT_EQ(from_seconds(-2.5e-9), -3);
  EXPECT_EQ(from_millis(2.5e-6), 3);
  EXPECT_EQ(from_millis(-2.5e-6), -3);
  EXPECT_EQ(from_micros(2.5e-3), 3);
  EXPECT_EQ(from_micros(-2.5e-3), -3);
}

TEST(SimTime, SecondsRoundTripIsExact) {
  // from_seconds(to_seconds(t)) == t whenever t / 1e9 is exactly
  // representable relative to half-ULP of the product — guaranteed for
  // |t| <= 2^51 ns (~26 days). Deterministic xorshift sweep plus edges.
  const auto check = [](SimTime t) {
    EXPECT_EQ(from_seconds(to_seconds(t)), t) << "t = " << t;
  };
  check(0);
  check(1);
  check(-1);
  check((SimTime{1} << 51));
  check(-(SimTime{1} << 51));
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 10'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto t = static_cast<SimTime>(x & ((std::uint64_t{1} << 51) - 1));
    check(t);
    check(-t);
  }
}

TEST(SimTime, MillisAndMicrosAvoidDoubleRounding) {
  // from_millis/from_micros scale by a single exact power of ten; the
  // old implementation chained through from_seconds (ms / 1e3 first),
  // rounding twice. 1e-4 ms is exactly 100 ns.
  EXPECT_EQ(from_millis(1e-4), 100);
  EXPECT_EQ(from_micros(0.1), 100);
  for (int i = -1000; i <= 1000; ++i) {
    EXPECT_EQ(from_millis(static_cast<double>(i)), i * 1'000'000);
    EXPECT_EQ(from_micros(static_cast<double>(i)), i * 1'000);
  }
}

// ---------------------------------------------------------------- Simulator

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesDuringDispatch) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(42, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), PreconditionError);
}

TEST(Simulator, ProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.processed(), 7u);
}

// ---------------------------------------------------------------- SimChannel

ChannelConfig basic_config() {
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond: easy arithmetic
  cfg.loss = 0.0;
  cfg.delay = from_micros(100);
  cfg.queue_capacity_bytes = 10000;
  return cfg;
}

TEST(SimChannel, DeliversWithSerializationPlusPropagation) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(1));
  SimTime arrival = -1;
  ch.set_receiver([&](std::vector<std::uint8_t>) { arrival = sim.now(); });
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(1000, 0xAA)));
  sim.run();
  // 1000 bytes at 1 B/us = 1 ms serialization, + 100 us propagation.
  EXPECT_EQ(arrival, from_micros(1100));
}

TEST(SimChannel, PayloadArrivesIntact) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(2));
  const std::vector<std::uint8_t> sent{1, 2, 3, 4, 5};
  std::vector<std::uint8_t> got;
  ch.set_receiver([&](std::vector<std::uint8_t> f) { got = std::move(f); });
  ASSERT_TRUE(ch.try_send(sent));
  sim.run();
  EXPECT_EQ(got, sent);
}

TEST(SimChannel, FramesQueueFifoAndBackToBack) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(3));
  std::vector<SimTime> arrivals;
  std::vector<std::uint8_t> first_bytes;
  ch.set_receiver([&](std::vector<std::uint8_t> f) {
    arrivals.push_back(sim.now());
    first_bytes.push_back(f[0]);
  });
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(500, 1)));
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(500, 2)));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(first_bytes, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(arrivals[0], from_micros(600));   // 500 us serialize + 100 us
  EXPECT_EQ(arrivals[1], from_micros(1100));  // queued behind the first
}

TEST(SimChannel, AchievesConfiguredThroughput) {
  Simulator sim;
  ChannelConfig cfg;
  cfg.rate_bps = 100e6;
  cfg.queue_capacity_bytes = 1 << 20;
  SimChannel ch(sim, cfg, Rng(4));
  std::uint64_t received_bytes = 0;
  ch.set_receiver([&](std::vector<std::uint8_t> f) {
    if (sim.now() <= from_seconds(1.0)) received_bytes += f.size();
  });
  // Offer 2x the capacity for one second via a paced source.
  const std::size_t frame = 1470;
  std::function<void()> pump = [&] {
    (void)ch.try_send(std::vector<std::uint8_t>(frame, 0));
    if (sim.now() < from_seconds(1.0)) sim.schedule_in(from_micros(58), pump);
  };
  sim.schedule_at(0, pump);
  sim.run();
  const double achieved_bps = static_cast<double>(received_bytes) * 8.0 /
                              to_seconds(from_seconds(1.0));
  EXPECT_NEAR(achieved_bps, 100e6, 2e6);  // within 2% of the htb-style cap
}

TEST(SimChannel, TailDropsWhenQueueFull) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.queue_capacity_bytes = 1000;
  SimChannel ch(sim, cfg, Rng(5));
  int delivered = 0;
  ch.set_receiver([&](std::vector<std::uint8_t>) { ++delivered; });
  EXPECT_TRUE(ch.try_send(std::vector<std::uint8_t>(600, 0)));
  EXPECT_TRUE(ch.try_send(std::vector<std::uint8_t>(400, 0)));
  EXPECT_FALSE(ch.try_send(std::vector<std::uint8_t>(1, 0)));  // full
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(ch.stats().frames_dropped_queue, 1u);
  // After draining there is room again.
  EXPECT_TRUE(ch.try_send(std::vector<std::uint8_t>(1000, 0)));
}

TEST(SimChannel, LossRateIsStatisticallyCorrect) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.loss = 0.03;
  cfg.queue_capacity_bytes = 1 << 24;
  SimChannel ch(sim, cfg, Rng(6));
  int delivered = 0;
  ch.set_receiver([&](std::vector<std::uint8_t>) { ++delivered; });
  const int total = 100000;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(10, 0)));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(total - delivered) / total, 0.03, 0.003);
  EXPECT_EQ(ch.stats().frames_dropped_loss + ch.stats().frames_delivered,
            static_cast<std::uint64_t>(total));
}

TEST(SimChannel, LossIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    ChannelConfig cfg = basic_config();
    cfg.loss = 0.5;
    cfg.queue_capacity_bytes = 1 << 22;
    SimChannel ch(sim, cfg, Rng(seed));
    std::vector<int> pattern;
    ch.set_receiver([&](std::vector<std::uint8_t> f) { pattern.push_back(f[0]); });
    for (int i = 0; i < 100; ++i) {
      (void)ch.try_send(std::vector<std::uint8_t>(1, static_cast<std::uint8_t>(i)));
    }
    sim.run();
    return pattern;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimChannel, ReadinessFollowsWatermark) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.queue_capacity_bytes = 1000;
  cfg.ready_watermark_bytes = 500;
  SimChannel ch(sim, cfg, Rng(9));
  ch.set_receiver([](std::vector<std::uint8_t>) {});
  EXPECT_TRUE(ch.ready());
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(600, 0)));
  EXPECT_FALSE(ch.ready());  // 600 >= 500
  sim.run();
  EXPECT_TRUE(ch.ready());
}

TEST(SimChannel, WritableCallbackFiresOnTransition) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.queue_capacity_bytes = 2000;
  cfg.ready_watermark_bytes = 1000;
  SimChannel ch(sim, cfg, Rng(10));
  ch.set_receiver([](std::vector<std::uint8_t>) {});
  int wakeups = 0;
  ch.set_writable_callback([&] { ++wakeups; });
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(800, 0)));
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(800, 0)));  // now not ready
  EXPECT_FALSE(ch.ready());
  sim.run();
  EXPECT_TRUE(ch.ready());
  EXPECT_EQ(wakeups, 1);  // exactly one not-ready -> ready transition
}

TEST(SimChannel, BacklogTimeTracksQueue) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(11));  // 1 byte/us
  ch.set_receiver([](std::vector<std::uint8_t>) {});
  EXPECT_EQ(ch.backlog_time(), 0);
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(1000, 0)));
  // Head frame is on the serializer (free in 1000 us), queue empty.
  EXPECT_EQ(ch.backlog_time(), from_micros(1000));
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(2000, 0)));
  EXPECT_EQ(ch.backlog_time(), from_micros(3000));
}

TEST(SimChannel, RejectsInvalidConfigAndFrames) {
  Simulator sim;
  ChannelConfig bad = basic_config();
  bad.rate_bps = 0;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);
  bad = basic_config();
  bad.loss = 1.0;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);
  bad = basic_config();
  bad.delay = -1;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);

  SimChannel ok(sim, basic_config(), Rng(0));
  EXPECT_THROW((void)ok.try_send({}), PreconditionError);
}

// ------------------------------------------------------- netem extensions

TEST(SimChannel, JitterSpreadsAndReordersDeliveries) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.delay = from_millis(1);
  cfg.jitter = from_millis(5);
  cfg.queue_capacity_bytes = 1 << 22;
  SimChannel ch(sim, cfg, Rng(21));
  std::vector<std::uint8_t> order;
  ch.set_receiver([&](std::vector<std::uint8_t> f) { order.push_back(f[0]); });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(1, static_cast<std::uint8_t>(i))));
  }
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  // With 5 ms jitter over back-to-back 1 us frames, reordering is certain.
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(SimChannel, JitterDelayBounds) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.delay = from_millis(2);
  cfg.jitter = from_millis(3);
  SimChannel ch(sim, cfg, Rng(22));
  SimTime sent_serialized = from_micros(100);  // 100-byte frame at 1 B/us
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](std::vector<std::uint8_t>) { arrivals.push_back(sim.now()); });
  ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(100, 0)));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0], sent_serialized + from_millis(2));
  EXPECT_LE(arrivals[0], sent_serialized + from_millis(5));
}

TEST(SimChannel, CorruptionFlipsExactlyOneBit) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.corrupt = 1.0 - 1e-9;  // effectively always (must stay < 1)
  SimChannel ch(sim, cfg, Rng(23));
  const std::vector<std::uint8_t> sent(64, 0x00);
  std::vector<std::uint8_t> got;
  ch.set_receiver([&](std::vector<std::uint8_t> f) { got = std::move(f); });
  ASSERT_TRUE(ch.try_send(sent));
  sim.run();
  ASSERT_EQ(got.size(), sent.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    flipped_bits += std::popcount(static_cast<unsigned>(got[i] ^ sent[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(ch.stats().frames_corrupted, 1u);
}

TEST(SimChannel, CorruptionRateIsStatistical) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.corrupt = 0.10;
  cfg.queue_capacity_bytes = 1 << 24;
  SimChannel ch(sim, cfg, Rng(24));
  ch.set_receiver([](std::vector<std::uint8_t>) {});
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(4, 0)));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(ch.stats().frames_corrupted) / 20000, 0.10,
              0.01);
}

TEST(SimChannel, DuplicationDeliversTwice) {
  Simulator sim;
  ChannelConfig cfg = basic_config();
  cfg.duplicate = 0.5;
  cfg.queue_capacity_bytes = 1 << 24;
  SimChannel ch(sim, cfg, Rng(25));
  int deliveries = 0;
  ch.set_receiver([&](std::vector<std::uint8_t>) { ++deliveries; });
  const int frames = 20000;
  for (int i = 0; i < frames; ++i) {
    ASSERT_TRUE(ch.try_send(std::vector<std::uint8_t>(4, 0)));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(deliveries) / frames, 1.5, 0.02);
  EXPECT_NEAR(static_cast<double>(ch.stats().frames_duplicated) / frames, 0.5,
              0.02);
}

TEST(SimChannel, RejectsInvalidNetemExtensions) {
  Simulator sim;
  ChannelConfig bad = basic_config();
  bad.jitter = -1;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);
  bad = basic_config();
  bad.corrupt = 1.0;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);
  bad = basic_config();
  bad.duplicate = -0.1;
  EXPECT_THROW(SimChannel(sim, bad, Rng(0)), PreconditionError);
}

// ---------------------------------------------------------------- outages

TEST(Outage, DownChannelSilentlyDropsFrames) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(41));
  int delivered = 0;
  ch.set_receiver([&](std::vector<std::uint8_t>) { ++delivered; });
  ch.set_down(true);
  EXPECT_TRUE(ch.ready());  // silent: the sender can't tell
  EXPECT_TRUE(ch.try_send(std::vector<std::uint8_t>(100, 0)));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().frames_dropped_outage, 1u);
  ch.set_down(false);
  EXPECT_TRUE(ch.try_send(std::vector<std::uint8_t>(100, 0)));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Outage, ProcessTogglesWithConfiguredDutyCycle) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(42));
  ch.set_receiver([](std::vector<std::uint8_t>) {});
  OutageConfig cfg;
  cfg.mean_up_s = 1.0;
  cfg.mean_down_s = 0.25;
  OutageProcess outage(sim, ch, cfg, Rng(43));
  sim.schedule_at(from_seconds(200.0), [&] { outage.stop(); });
  sim.run_until(from_seconds(200.0));
  // Expected downtime fraction 0.25 / 1.25 = 20%.
  const double fraction = to_seconds(outage.downtime()) / 200.0;
  EXPECT_NEAR(fraction, 0.2, 0.05);
  EXPECT_GT(outage.transitions(), 100u);  // ~160 two-way transitions
}

TEST(Outage, StartDownAndStop) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(44));
  OutageConfig cfg;
  cfg.start_down = true;
  cfg.mean_up_s = 1.0;
  cfg.mean_down_s = 1.0;
  OutageProcess outage(sim, ch, cfg, Rng(45));
  EXPECT_TRUE(ch.is_down());
  outage.stop();
  sim.run();  // pending toggle is a no-op; queue drains
  EXPECT_TRUE(ch.is_down());  // state frozen by stop()
}

TEST(Outage, RejectsBadConfig) {
  Simulator sim;
  SimChannel ch(sim, basic_config(), Rng(46));
  OutageConfig bad;
  bad.mean_up_s = 0.0;
  EXPECT_THROW(OutageProcess(sim, ch, bad, Rng(0)), PreconditionError);
}

// ---------------------------------------------------------------- CpuModel

TEST(CpuModel, UnlimitedCompletesInstantly) {
  Simulator sim;
  CpuModel cpu(sim, CpuConfig{.unlimited = true});
  EXPECT_EQ(cpu.submit(1e9), sim.now());
}

TEST(CpuModel, SerializesWork) {
  Simulator sim;
  CpuConfig cfg;
  cfg.ops_per_sec = 1e6;  // 1 op = 1 us
  cfg.unlimited = false;
  CpuModel cpu(sim, cfg);
  EXPECT_EQ(cpu.submit(100), from_micros(100));
  EXPECT_EQ(cpu.submit(100), from_micros(200));  // queued behind the first
}

TEST(CpuModel, IdleGapsAreNotBanked) {
  Simulator sim;
  CpuConfig cfg;
  cfg.ops_per_sec = 1e6;
  cfg.unlimited = false;
  CpuModel cpu(sim, cfg);
  (void)cpu.submit(10);
  sim.schedule_at(from_micros(1000), [&] {
    // CPU has been idle; new work starts now, not at busy_until.
    EXPECT_EQ(cpu.submit(10), from_micros(1010));
  });
  sim.run();
}

TEST(CpuModel, CostFormulasScaleWithParameters) {
  Simulator sim;
  CpuModel cpu(sim, CpuConfig{});
  // Split cost grows with m and with k*m.
  EXPECT_LT(cpu.split_ops(1, 1), cpu.split_ops(1, 5));
  EXPECT_LT(cpu.split_ops(1, 5), cpu.split_ops(5, 5));
  // Reconstruct cost grows quadratically in k.
  const double c1 = cpu.reconstruct_ops(1);
  const double c2 = cpu.reconstruct_ops(2);
  const double c4 = cpu.reconstruct_ops(4);
  EXPECT_GT(c4 - c2, c2 - c1);
}

}  // namespace
}  // namespace mcss::net
