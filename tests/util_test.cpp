// Tests for src/util: rng, stats, subset helpers, Poisson binomial,
// backoff.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "util/backoff.hpp"
#include "util/ensure.hpp"
#include "util/link_risk.hpp"
#include "util/poisson_binomial.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/subset.hpp"

namespace mcss {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);  // not stuck, not repeating
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-2.5, 7.25);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.25);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(5);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 600);  // ~6 sigma for a fair die
  }
}

TEST(Rng, UniformIntZeroBound) {
  Rng r(5);
  EXPECT_EQ(r.uniform_int(0), 0u);
}

TEST(Rng, UniformIntBoundOne) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(13);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.005);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// ---------------------------------------------------------------- OnlineStats

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleValueHasZeroVariance) {
  OnlineStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.14);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng r(31);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-5, 5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

// ---------------------------------------------------------------- PercentileTracker

TEST(PercentileTracker, MedianOfOddCount) {
  PercentileTracker t;
  for (const double x : {5.0, 1.0, 3.0}) t.add(x);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
}

TEST(PercentileTracker, InterpolatesBetweenSamples) {
  PercentileTracker t;
  for (const double x : {0.0, 10.0}) t.add(x);
  EXPECT_DOUBLE_EQ(t.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.percentile(100.0), 10.0);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_EQ(t.percentile(50.0), 0.0);
}

TEST(PercentileTracker, AddAfterQueryResorts) {
  PercentileTracker t;
  t.add(10.0);
  EXPECT_DOUBLE_EQ(t.median(), 10.0);
  t.add(0.0);
  t.add(2.0);
  EXPECT_DOUBLE_EQ(t.median(), 2.0);
}

TEST(PercentileTracker, ClampsQueryRange) {
  PercentileTracker t;
  t.add(1.0);
  t.add(2.0);
  EXPECT_DOUBLE_EQ(t.percentile(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(200.0), 2.0);
}

TEST(PercentileTracker, ExactMergeConcatenates) {
  PercentileTracker a, b;
  for (const double x : {1.0, 3.0}) a.add(x);
  for (const double x : {2.0, 4.0}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.retained(), 4u);
  EXPECT_FALSE(a.is_reservoir());
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(a.median(), 2.5);
}

TEST(PercentileTracker, MergeEmptyIsNoop) {
  PercentileTracker a, empty;
  a.add(7.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.median(), 7.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.median(), 7.0);
}

TEST(PercentileTracker, ReservoirStaysBounded) {
  auto t = PercentileTracker::reservoir(64, 9);
  for (int i = 0; i < 10000; ++i) t.add(static_cast<double>(i));
  EXPECT_TRUE(t.is_reservoir());
  EXPECT_EQ(t.count(), 10000u);   // every value seen is counted
  EXPECT_EQ(t.retained(), 64u);   // memory stays at capacity
}

TEST(PercentileTracker, ReservoirBelowCapacityIsExactSample) {
  auto t = PercentileTracker::reservoir(100, 1);
  for (const double x : {5.0, 1.0, 3.0}) t.add(x);
  EXPECT_EQ(t.retained(), 3u);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);  // nothing evicted yet: exact
}

TEST(PercentileTracker, ReservoirIsDeterministicPerSeed) {
  auto a = PercentileTracker::reservoir(32, 42);
  auto b = PercentileTracker::reservoir(32, 42);
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  for (const double q : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), b.percentile(q));
  }
}

TEST(PercentileTracker, ReservoirEstimatesQuantiles) {
  // A uniform stream 0..9999: the reservoir median should land near
  // 5000. Generous tolerance — it is a 256-sample estimate.
  auto t = PercentileTracker::reservoir(256, 7);
  for (int i = 0; i < 10000; ++i) t.add(static_cast<double>(i));
  EXPECT_NEAR(t.median(), 5000.0, 1500.0);
  EXPECT_LT(t.percentile(10.0), t.percentile(90.0));
}

TEST(PercentileTracker, ReservoirMergeStaysBoundedAndCountsAll) {
  auto a = PercentileTracker::reservoir(64, 3);
  auto b = PercentileTracker::reservoir(64, 4);
  for (int i = 0; i < 1000; ++i) a.add(static_cast<double>(i));
  for (int i = 1000; i < 3000; ++i) b.add(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 3000u);
  EXPECT_LE(a.retained(), 64u);
  // b contributed 2/3 of the stream; the merged median should sit well
  // above a's original range midpoint.
  EXPECT_GT(a.median(), 750.0);
}

TEST(PercentileTracker, ReservoirMergeFromExactSource) {
  auto r = PercentileTracker::reservoir(8, 5);
  PercentileTracker exact;
  for (int i = 0; i < 100; ++i) exact.add(static_cast<double>(i));
  r.merge(exact);
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.retained(), 8u);
}

// ---------------------------------------------------------------- subset helpers

TEST(Subset, FullMask) {
  EXPECT_EQ(full_mask(0), 0u);
  EXPECT_EQ(full_mask(1), 0b1u);
  EXPECT_EQ(full_mask(5), 0b11111u);
  EXPECT_EQ(full_mask(32), ~Mask{0});
}

TEST(Subset, SizeAndContains) {
  const Mask m = 0b10110;
  EXPECT_EQ(mask_size(m), 3);
  EXPECT_FALSE(mask_contains(m, 0));
  EXPECT_TRUE(mask_contains(m, 1));
  EXPECT_TRUE(mask_contains(m, 2));
  EXPECT_FALSE(mask_contains(m, 3));
  EXPECT_TRUE(mask_contains(m, 4));
}

TEST(Subset, Members) {
  EXPECT_EQ(mask_members(0b10110), (std::vector<int>{1, 2, 4}));
  EXPECT_TRUE(mask_members(0).empty());
}

TEST(Subset, ForEachMemberVisitsAscending) {
  std::vector<int> seen;
  for_each_member(0b1011001, [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 4, 6}));
}

TEST(Subset, ForEachSubsetCountsPowerSet) {
  int count = 0;
  std::set<Mask> unique;
  for_each_subset(0b1101, [&](Mask k) {
    ++count;
    unique.insert(k);
    EXPECT_EQ(k & ~Mask{0b1101}, 0u);  // subset relation
  });
  EXPECT_EQ(count, 8);
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Subset, ForEachSubsetOfEmptyVisitsEmptyOnly) {
  int count = 0;
  for_each_subset(0, [&](Mask k) {
    ++count;
    EXPECT_EQ(k, 0u);
  });
  EXPECT_EQ(count, 1);
}

TEST(Subset, ForEachNonemptySubsetCount) {
  int count = 0;
  for_each_nonempty_subset(5, [&](Mask m) {
    ++count;
    EXPECT_NE(m, 0u);
    EXPECT_EQ(m & ~full_mask(5), 0u);
  });
  EXPECT_EQ(count, 31);
}

// ---------------------------------------------------------------- Poisson binomial

TEST(PoissonBinomial, MatchesBinomialClosedForm) {
  // Identical p: pmf[j] = C(5, j) p^j (1-p)^(5-j).
  const double p = 0.3;
  const std::vector<double> probs(5, p);
  const auto pmf = poisson_binomial_pmf(probs);
  ASSERT_EQ(pmf.size(), 6u);
  const double choose[6] = {1, 5, 10, 10, 5, 1};
  for (int j = 0; j <= 5; ++j) {
    EXPECT_NEAR(pmf[static_cast<std::size_t>(j)],
                choose[j] * std::pow(p, j) * std::pow(1 - p, 5 - j), 1e-12);
  }
}

TEST(PoissonBinomial, PmfSumsToOne) {
  Rng r(37);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> probs(static_cast<std::size_t>(1 + r.uniform_int(10)));
    for (double& p : probs) p = r.uniform();
    const auto pmf = poisson_binomial_pmf(probs);
    double sum = 0.0;
    for (const double v : pmf) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(PoissonBinomial, TailsAreComplementary) {
  Rng r(41);
  std::vector<double> probs(7);
  for (double& p : probs) p = r.uniform();
  for (int k = 0; k <= 8; ++k) {
    EXPECT_NEAR(poisson_binomial_tail_geq(probs, k) +
                    poisson_binomial_tail_lt(probs, k),
                1.0, 1e-12);
  }
}

TEST(PoissonBinomial, EdgeCases) {
  const std::vector<double> probs{0.2, 0.8};
  EXPECT_EQ(poisson_binomial_tail_geq(probs, 0), 1.0);
  EXPECT_EQ(poisson_binomial_tail_geq(probs, 3), 0.0);
  EXPECT_EQ(poisson_binomial_tail_lt(probs, 0), 0.0);
  EXPECT_NEAR(poisson_binomial_tail_lt(probs, 3), 1.0, 1e-12);
}

TEST(PoissonBinomial, DegenerateProbabilities) {
  const std::vector<double> certain{1.0, 1.0, 1.0};
  EXPECT_NEAR(poisson_binomial_tail_geq(certain, 3), 1.0, 1e-12);
  const std::vector<double> never{0.0, 0.0};
  EXPECT_NEAR(poisson_binomial_tail_geq(never, 1), 0.0, 1e-12);
  EXPECT_NEAR(poisson_binomial_tail_lt(never, 1), 1.0, 1e-12);
}

TEST(PoissonBinomial, MatchesMonteCarlo) {
  const std::vector<double> probs{0.1, 0.5, 0.9, 0.3};
  Rng r(43);
  const int trials = 300000;
  std::array<int, 5> counts{};
  for (int t = 0; t < trials; ++t) {
    int successes = 0;
    for (const double p : probs) successes += r.bernoulli(p);
    counts[static_cast<std::size_t>(successes)]++;
  }
  const auto pmf = poisson_binomial_pmf(probs);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / trials, pmf[j], 0.005);
  }
}

TEST(PoissonBinomial, EmptyTrialSet) {
  const std::vector<double> none;
  const auto pmf = poisson_binomial_pmf(none);
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_EQ(pmf[0], 1.0);
  EXPECT_EQ(poisson_binomial_tail_geq(none, 1), 0.0);
  EXPECT_EQ(poisson_binomial_tail_geq(none, 0), 1.0);
}

// ---------------------------------------------------------------- Backoff

TEST(Backoff, DelaysStayWithinBounds) {
  const BackoffConfig config{.base_ns = 1'000, .cap_ns = 50'000,
                             .multiplier = 3.0};
  Backoff backoff(config, Rng(7));
  for (int i = 0; i < 200; ++i) {
    const std::int64_t d = backoff.next();
    EXPECT_GE(d, config.base_ns);
    EXPECT_LE(d, config.cap_ns);
  }
  EXPECT_EQ(backoff.attempts(), 200u);
}

TEST(Backoff, ExpectedDelayGrowsUntilTheCap) {
  // The jitter window is [base, prev * mult]; averaged over many
  // independent sequences the n-th delay grows until the cap dominates.
  const BackoffConfig config{.base_ns = 1'000, .cap_ns = 1'000'000'000,
                             .multiplier = 3.0};
  constexpr int kRuns = 400;
  constexpr int kSteps = 6;
  std::array<double, kSteps> mean{};
  for (int run = 0; run < kRuns; ++run) {
    Backoff backoff(config, Rng(static_cast<std::uint64_t>(run) + 1));
    for (int s = 0; s < kSteps; ++s) {
      mean[static_cast<std::size_t>(s)] +=
          static_cast<double>(backoff.next()) / kRuns;
    }
  }
  for (int s = 1; s < kSteps; ++s) {
    EXPECT_GT(mean[static_cast<std::size_t>(s)],
              mean[static_cast<std::size_t>(s - 1)]);
  }
}

TEST(Backoff, ResetReturnsToTheBaseWindow) {
  const BackoffConfig config{.base_ns = 1'000, .cap_ns = 1'000'000'000,
                             .multiplier = 2.0};
  Backoff backoff(config, Rng(11));
  for (int i = 0; i < 20; ++i) (void)backoff.next();
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  // First post-reset delay is drawn from [base, base * mult] again.
  const std::int64_t d = backoff.next();
  EXPECT_GE(d, config.base_ns);
  EXPECT_LE(d, static_cast<std::int64_t>(
                   static_cast<double>(config.base_ns) * config.multiplier));
}

TEST(Backoff, TwoBackoffsDecorrelate) {
  // Decorrelated jitter exists so parties that failed together do not
  // retry together: two schedules from different seeds should disagree.
  const BackoffConfig config{.base_ns = 1'000, .cap_ns = 1'000'000'000,
                             .multiplier = 3.0};
  Backoff a(config, Rng(1));
  Backoff b(config, Rng(2));
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Backoff, StepIsDeterministicGivenRngState) {
  const BackoffConfig config{.base_ns = 500, .cap_ns = 10'000,
                             .multiplier = 2.0};
  Rng r1(3), r2(3);
  std::int64_t prev1 = config.base_ns;
  std::int64_t prev2 = config.base_ns;
  for (int i = 0; i < 50; ++i) {
    prev1 = Backoff::step(r1, config, prev1);
    prev2 = Backoff::step(r2, config, prev2);
    EXPECT_EQ(prev1, prev2);
    EXPECT_GE(prev1, config.base_ns);
    EXPECT_LE(prev1, config.cap_ns);
  }
}

TEST(Backoff, RejectsBadConfig) {
  EXPECT_THROW(Backoff({.base_ns = 0, .cap_ns = 10, .multiplier = 2.0}, Rng(1)),
               PreconditionError);
  EXPECT_THROW(Backoff({.base_ns = 10, .cap_ns = 5, .multiplier = 2.0}, Rng(1)),
               PreconditionError);
  EXPECT_THROW(
      Backoff({.base_ns = 10, .cap_ns = 20, .multiplier = 0.5}, Rng(1)),
      PreconditionError);
}

// ---------------------------------------------------------- link risk

TEST(LinkRisk, ExposedChannelMaskUnionsOverPaths) {
  // ch0 over links {0,1}, ch1 over {1,2}, ch2 over {3}.
  const std::vector<LinkMask> paths{0b0011, 0b0110, 0b1000};
  EXPECT_EQ(exposed_channel_mask(0b0000, paths), 0u);
  EXPECT_EQ(exposed_channel_mask(0b0001, paths), 0b001u);  // link 0 -> ch0
  EXPECT_EQ(exposed_channel_mask(0b0010, paths), 0b011u);  // shared link 1
  EXPECT_EQ(exposed_channel_mask(0b1000, paths), 0b100u);
  EXPECT_EQ(exposed_channel_mask(0b1111, paths), 0b111u);
}

TEST(LinkRisk, MarginalRisksAreSurvivalComplements) {
  const std::vector<double> w{0.1, 0.2, 0.5};
  const std::vector<LinkMask> paths{0b011, 0b100};
  const auto z = marginal_channel_risks(w, paths);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_NEAR(z[0], 1.0 - 0.9 * 0.8, 1e-15);
  EXPECT_NEAR(z[1], 0.5, 1e-15);
}

TEST(LinkRisk, CoverageGroupsMergeSameCoverageLinks) {
  // Links 0 and 1 both cover only ch0; link 2 covers both channels.
  const std::vector<double> w{0.1, 0.2, 0.3};
  const std::vector<LinkMask> paths{0b111, 0b100};
  const auto groups = link_coverage_groups(w, paths);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].covers, 0b01u);  // ascending coverage order
  EXPECT_NEAR(groups[0].tap_probability, 1.0 - 0.9 * 0.8, 1e-15);
  EXPECT_EQ(groups[1].covers, 0b11u);
  EXPECT_NEAR(groups[1].tap_probability, 0.3, 1e-15);
}

TEST(LinkRisk, DisjointPathsReduceToPoissonBinomial) {
  const std::vector<double> w{0.1, 0.2, 0.3, 0.05, 0.4, 0.15};
  const std::vector<LinkMask> paths{0b000011, 0b001100, 0b110000};
  const auto marginals = marginal_channel_risks(w, paths);
  for (int k = 0; k <= 4; ++k) {
    EXPECT_NEAR(correlated_subset_risk(w, paths, k),
                poisson_binomial_tail_geq(marginals, k), 1e-14)
        << "k=" << k;
  }
}

TEST(LinkRisk, SharedLinkRaisesTheJointTail) {
  // Both channels cross link 0; private links 1 and 2 complete them.
  const std::vector<double> w{0.2, 0.1, 0.1};
  const std::vector<LinkMask> paths{0b011, 0b101};
  const double corr = correlated_subset_risk(w, paths, 2);
  const double indep = independent_subset_risk(w, paths, 2);
  EXPECT_GT(corr, indep);
  // Exact by hand: both exposed <=> link 0 tapped, or both privates.
  const double expected = 0.2 + 0.8 * 0.1 * 0.1;
  EXPECT_NEAR(corr, expected, 1e-15);
  EXPECT_EQ(correlated_subset_risk(w, paths, 0), 1.0);
  EXPECT_EQ(correlated_subset_risk(w, paths, 3), 0.0);
}

TEST(LinkRisk, MonteCarloAgreesWithExactEnumeration) {
  const std::vector<double> w{0.05, 0.3, 0.1, 0.2, 0.15};
  const std::vector<LinkMask> paths{0b00011, 0b00110, 0b11000};
  Rng rng(77);
  constexpr int kTrials = 200'000;
  std::array<int, 4> hits{};
  for (int trial = 0; trial < kTrials; ++trial) {
    LinkMask tapped = 0;
    for (std::size_t l = 0; l < w.size(); ++l) {
      if (rng.bernoulli(w[l])) tapped |= LinkMask{1} << l;
    }
    const int exposed = mask_size(exposed_channel_mask(tapped, paths));
    for (int k = 1; k <= exposed && k <= 3; ++k) {
      ++hits[static_cast<std::size_t>(k)];
    }
  }
  for (int k = 1; k <= 3; ++k) {
    const double sampled =
        static_cast<double>(hits[static_cast<std::size_t>(k)]) / kTrials;
    EXPECT_NEAR(sampled, correlated_subset_risk(w, paths, k), 0.01)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace mcss
