// Live transport tests: timer wheel, poller backends, sockets, the
// userspace impairment shim, and end-to-end LiveEndpoint runs — all on
// unprivileged loopback, no netem, no fixed ports (everything binds
// ephemeral so suites can run in parallel).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "net/sim_channel.hpp"
#include "protocol/wire.hpp"
#include "transport/impairment.hpp"
#include "transport/live_endpoint.hpp"
#include "transport/poller.hpp"
#include "transport/timer_wheel.hpp"
#include "transport/udp_channel.hpp"
#include "transport/udp_socket.hpp"
#include "transport/wall_clock.hpp"
#include "util/rng.hpp"

namespace mcss::transport {
namespace {

using net::ChannelConfig;

// ---------------------------------------------------------------- wheel

TEST(TimerWheel, FiresInDeadlineOrderWithTiesInScheduleOrder) {
  TimerWheel wheel(1'000'000, 16);
  wheel.advance(0);
  std::vector<int> order;
  wheel.schedule_at(5'000'000, [&] { order.push_back(1); });
  wheel.schedule_at(3'000'000, [&] { order.push_back(2); });
  wheel.schedule_at(5'000'000, [&] { order.push_back(3); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.advance(10'000'000), 3u);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(1'000'000, 16);
  wheel.advance(10'000'000);
  bool fired = false;
  wheel.schedule_at(1'000'000, [&] { fired = true; });  // long past
  EXPECT_EQ(wheel.advance(10'000'000), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, LaterRotationsWaitTheirTurn) {
  // 4 slots of 1 ms = 4 ms per rotation; a 10 ms timer shares slot 2 with
  // tick 2 and must survive two early passes over that slot.
  TimerWheel wheel(1'000'000, 4);
  wheel.advance(0);
  int fired = 0;
  wheel.schedule_at(10'000'000, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(2'000'000), 0u);
  EXPECT_EQ(wheel.advance(6'000'000), 0u);
  EXPECT_EQ(wheel.advance(10'000'000), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, LaterDeadlineInTheSameTickIsNotStranded) {
  // Two timers inside one 1 ms tick; servicing the first must not carry
  // the wheel past the tick and orphan the second for a full rotation.
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  std::vector<int> order;
  wheel.schedule_at(100'000, [&] { order.push_back(1); });
  wheel.schedule_at(900'000, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.advance(500'000), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(wheel.advance(950'000), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, CallbackScheduledDueTimerFiresWithinTheSameAdvance) {
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  bool chained = false;
  wheel.schedule_at(2'000'000, [&] {
    wheel.schedule_at(3'000'000, [&] { chained = true; });  // already due
  });
  EXPECT_EQ(wheel.advance(5'000'000), 2u);
  EXPECT_TRUE(chained);
}

TEST(TimerWheel, NextDeadlineIsExact) {
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule_at(7'300'000, [] {});
  wheel.schedule_at(2'100'000, [] {});
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 2'100'000);
  wheel.advance(3'000'000);
  EXPECT_EQ(*wheel.next_deadline(), 7'300'000);
}

// --------------------------------------------------------------- poller

class PollerBackends : public ::testing::TestWithParam<Poller::Backend> {};

TEST_P(PollerBackends, ReportsReadinessAndHonorsInterest) {
  Poller poller(GetParam());
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());

  poller.add(rx.fd(), /*want_read=*/true, /*want_write=*/false);
  std::vector<Poller::Event> events;
  EXPECT_EQ(poller.wait(0, events), 0u);  // nothing queued yet

  const std::vector<std::uint8_t> ping{1, 2, 3};
  ASSERT_EQ(tx.send(ping), UdpSocket::IoResult::Ok);
  // Loopback delivery is immediate, but give the kernel a timeout anyway.
  ASSERT_EQ(poller.wait(1000, events), 1u);
  EXPECT_EQ(events[0].fd, rx.fd());
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  // A UDP socket with write interest is immediately writable.
  poller.modify(rx.fd(), /*want_read=*/true, /*want_write=*/true);
  ASSERT_GE(poller.wait(1000, events), 1u);
  EXPECT_TRUE(events[0].writable);

  poller.remove(rx.fd());
  std::uint8_t buf[16];
  std::size_t n = 0;
  ASSERT_EQ(rx.recv(buf, &n), UdpSocket::IoResult::Ok);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(poller.wait(0, events), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerBackends,
                         ::testing::Values(Poller::Backend::Epoll,
                                           Poller::Backend::Poll),
                         [](const auto& param_info) {
                           return param_info.param == Poller::Backend::Epoll
                                      ? "epoll"
                                      : "poll";
                         });

TEST(Poller, EnvForcesThePollFallback) {
  ASSERT_EQ(::setenv("MCSS_LIVE_POLLER", "poll", 1), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Poll);
  ASSERT_EQ(::unsetenv("MCSS_LIVE_POLLER"), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Epoll);
}

// --------------------------------------------------------------- socket

TEST(UdpSocket, RoundTripAndDrainToWouldBlock) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());

  const std::vector<std::uint8_t> msg{9, 8, 7, 6};
  ASSERT_EQ(tx.send(msg), UdpSocket::IoResult::Ok);
  std::uint8_t buf[64];
  std::size_t n = 0;
  // recv may race loopback delivery; retry briefly.
  UdpSocket::IoResult r = UdpSocket::IoResult::WouldBlock;
  for (int i = 0; i < 1000 && r == UdpSocket::IoResult::WouldBlock; ++i) {
    r = rx.recv(buf, &n);
  }
  ASSERT_EQ(r, UdpSocket::IoResult::Ok);
  EXPECT_EQ(n, 4u);
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf));
  EXPECT_EQ(rx.recv(buf, &n), UdpSocket::IoResult::WouldBlock);
}

TEST(UdpSocket, InjectedWouldBlockIsDeterministic) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());
  tx.inject_wouldblock(2);
  const std::vector<std::uint8_t> msg{1};
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::WouldBlock);
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::WouldBlock);
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::Ok);
}

// ----------------------------------------------------------- impairment

/// Steps the wheel in `step_ns` increments up to `until_ns`, recording the
/// advance-time at which each release lands.
struct ReleaseRecorder {
  std::vector<std::int64_t> at;
  std::int64_t now = 0;
  void step(TimerWheel& wheel, std::int64_t until_ns, std::int64_t step_ns) {
    for (; now <= until_ns; now += step_ns) wheel.advance(now);
  }
};

TEST(Impairment, PacesFramesAtTheConfiguredRate) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;  // 1000 bytes = 1 ms on the serializer
  cfg.delay = 0;
  ReleaseRecorder rec;
  Impairment impair(cfg, Rng(1), wheel,
                    [&](std::vector<std::uint8_t>) { rec.at.push_back(rec.now); });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(impair.offer(std::vector<std::uint8_t>(1000, 0xAB), 0));
  }
  EXPECT_EQ(impair.backlog_ns(0), 5'000'000);
  rec.step(wheel, 10'000'000, 50'000);
  ASSERT_EQ(rec.at.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const std::int64_t expected = (i + 1) * 1'000'000;
    EXPECT_NEAR(static_cast<double>(rec.at[static_cast<std::size_t>(i)]),
                static_cast<double>(expected), 200'000.0)
        << "frame " << i;
  }
  EXPECT_EQ(impair.stats().frames_delivered, 5u);
  EXPECT_EQ(impair.backlog_ns(10'000'000), 0);
}

TEST(Impairment, DelayPlusJitterStaysInBounds) {
  TimerWheel wheel(100'000, 256);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 1e12;  // serialization ~ 0
  cfg.delay = 5'000'000;
  cfg.jitter = 2'000'000;
  cfg.queue_capacity_bytes = 1 << 20;
  ReleaseRecorder rec;
  Impairment impair(cfg, Rng(7), wheel,
                    [&](std::vector<std::uint8_t>) { rec.at.push_back(rec.now); });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(impair.offer(std::vector<std::uint8_t>(64, 1), 0));
  }
  rec.step(wheel, 9'000'000, 50'000);
  ASSERT_EQ(rec.at.size(), 100u);
  const auto [lo, hi] = std::minmax_element(rec.at.begin(), rec.at.end());
  EXPECT_GE(*lo, 5'000'000);
  EXPECT_LE(*hi, 7'000'000 + 200'000);
  EXPECT_GT(*hi - *lo, 500'000) << "jitter should actually spread releases";
}

TEST(Impairment, TailDropsAndReadyWatermark) {
  TimerWheel wheel;
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.queue_capacity_bytes = 3000;  // watermark defaults to 1500
  int released = 0;
  Impairment impair(cfg, Rng(1), wheel,
                    [&](std::vector<std::uint8_t>) { ++released; });
  EXPECT_TRUE(impair.ready());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(impair.offer(std::vector<std::uint8_t>(1000, 2), 0));
  }
  EXPECT_FALSE(impair.ready());  // 3000 queued >= 1500 watermark
  EXPECT_FALSE(impair.offer(std::vector<std::uint8_t>(1000, 2), 0));
  EXPECT_EQ(impair.stats().frames_dropped_queue, 1u);
  wheel.advance(10'000'000);  // drain
  EXPECT_TRUE(impair.ready());
  EXPECT_EQ(released, 3);
}

TEST(Impairment, SeededBernoulliLossLandsNearTheConfiguredRate) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e9;  // 100 bytes = 100 ns; drains between offers
  cfg.loss = 0.3;
  Impairment impair(cfg, Rng(42), wheel, [](std::vector<std::uint8_t>) {});
  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    const std::int64_t t = static_cast<std::int64_t>(i) * 1000;
    ASSERT_TRUE(impair.offer(std::vector<std::uint8_t>(100, 3), t));
    wheel.advance(t + 1000);
  }
  wheel.advance(kFrames * 1000 + 10'000'000);
  const auto& s = impair.stats();
  EXPECT_EQ(s.frames_dropped_loss + s.frames_delivered,
            static_cast<std::uint64_t>(kFrames));
  const double measured =
      static_cast<double>(s.frames_dropped_loss) / kFrames;
  EXPECT_NEAR(measured, 0.3, 0.05);
}

// ---------------------------------------------------------- udp channel

TEST(UdpChannel, CoalescesOnBackpressureAndSplitsFramesOnReceive) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 1e12;
  UdpChannel ch(cfg, Rng(3), wheel, /*rx_port=*/0, "test");
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame([&](std::vector<std::uint8_t> f) { got.push_back(std::move(f)); });

  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint8_t i = 1; i <= 3; ++i) {
    proto::ShareFrame frame;
    frame.packet_id = i;
    frame.k = 2;
    frame.share_index = i;
    frame.payload = std::vector<std::uint8_t>(40, i);
    sent.push_back(proto::encode(frame));
  }
  // Park the first datagram deterministically so later releases coalesce
  // behind it.
  ch.tx_socket().inject_wouldblock(1);
  for (auto& f : sent) ASSERT_TRUE(ch.try_send(f, 0));
  wheel.advance(1'000'000);  // releases all three; flush retries coalesce
  EXPECT_TRUE(ch.wants_write() || ch.stats().datagrams_sent > 0);
  ch.on_writable();  // kernel was never actually full
  EXPECT_FALSE(ch.wants_write());
  EXPECT_EQ(ch.stats().send_wouldblock, 1u);
  EXPECT_GE(ch.stats().frames_coalesced, 1u);

  for (int spins = 0; spins < 2000 && got.size() < 3; ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
  }
  EXPECT_EQ(ch.stats().frames_forwarded, 3u);
  EXPECT_EQ(ch.stats().unparsed_forwarded, 0u);
}

TEST(UdpChannel, UndecodableDatagramIsForwardedWholeForAccounting) {
  TimerWheel wheel;
  wheel.advance(0);
  ChannelConfig cfg;
  UdpChannel ch(cfg, Rng(3), wheel, 0, "junk");
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame([&](std::vector<std::uint8_t> f) { got.push_back(std::move(f)); });

  UdpSocket attacker = UdpSocket::bound_loopback(0);
  attacker.connect_loopback(ch.rx_port());
  const std::vector<std::uint8_t> junk{'h', 'e', 'l', 'l', 'o'};
  ASSERT_EQ(attacker.send(junk), UdpSocket::IoResult::Ok);
  for (int spins = 0; spins < 2000 && got.empty(); ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], junk);
  EXPECT_EQ(ch.stats().unparsed_forwarded, 1u);
  EXPECT_EQ(ch.stats().frames_forwarded, 0u);
}

// --------------------------------------------------------- live endpoint

LiveConfig clean_config(std::size_t n, double mbps, std::uint64_t seed) {
  LiveConfig cfg;
  for (std::size_t i = 0; i < n; ++i) {
    ChannelConfig ch;
    ch.rate_bps = mbps * 1e6;
    cfg.channels.push_back({ch, "ch" + std::to_string(i)});
  }
  cfg.mu = std::min(3.0, static_cast<double>(n));
  cfg.kappa = std::min(2.0, cfg.mu);
  cfg.seed = seed;
  return cfg;
}

/// Runs the endpoint in small slices until `done` or ~`budget_ms` of wall
/// time has elapsed.
template <typename Done>
void run_until(LiveEndpoint& ep, int budget_ms, Done done) {
  for (int spent = 0; spent < budget_ms && !done(); spent += 10) {
    ep.run_for(10'000'000);
  }
}

TEST(LiveEndpoint, DeliversAllPacketsOverCleanLoopback) {
  LiveEndpoint ep(clean_config(3, 100.0, 11));
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> delivered;
  ep.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> p) {
    delivered[id] = std::move(p);
  });

  Rng rng(99);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> p(128);
    rng.fill(p);
    payloads.push_back(p);
    ASSERT_TRUE(ep.send(std::move(p)));
  }
  run_until(ep, 5000, [&] { return delivered.size() >= 50; });

  ASSERT_EQ(delivered.size(), 50u);
  // Packet ids are assigned in send order starting at 1.
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_TRUE(delivered.count(i + 1));
    EXPECT_EQ(delivered[i + 1], payloads[i]) << "packet " << i + 1;
  }
  EXPECT_EQ(ep.sender_stats().packets_sent, 50u);
  EXPECT_EQ(ep.receiver().stats().packets_delivered, 50u);
  EXPECT_EQ(ep.receiver().stats().malformed_frames, 0u);
  EXPECT_GT(ep.delay_seconds().count(), 0u);
}

TEST(LiveEndpoint, PollFallbackBackendDeliversToo) {
  LiveConfig cfg = clean_config(2, 100.0, 5);
  cfg.poller_backend = Poller::Backend::Poll;
  LiveEndpoint ep(std::move(cfg));
  ASSERT_EQ(ep.poller_backend(), Poller::Backend::Poll);
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(64, 0x5A)));
  }
  run_until(ep, 3000, [&] { return delivered >= 10; });
  EXPECT_EQ(delivered, 10u);
}

TEST(LiveEndpoint, InjectedEagainBackpressureDoesNotWedgeTheChannel) {
  LiveEndpoint ep(clean_config(3, 50.0, 21));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    ep.channel(i).tx_socket().inject_wouldblock(3);
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(100, 0x33)));
  }
  run_until(ep, 5000, [&] { return delivered >= 20; });
  EXPECT_EQ(delivered, 20u);
  std::uint64_t wouldblock = 0;
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    wouldblock += ep.channel(i).stats().send_wouldblock;
    EXPECT_FALSE(ep.channel(i).wants_write());
  }
  EXPECT_GT(wouldblock, 0u);
}

TEST(LiveEndpoint, KeyedReceiverSurvivesAMalformedDatagramStorm) {
  const crypto::SipHashKey good_key{1, 2,  3,  4,  5,  6,  7,  8,
                                    9, 10, 11, 12, 13, 14, 15, 16};
  const crypto::SipHashKey bad_key{16, 15, 14, 13, 12, 11, 10, 9,
                                   8,  7,  6,  5,  4,  3,  2,  1};
  LiveConfig cfg = clean_config(2, 100.0, 31);
  cfg.auth_key = good_key;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  // The storm: junk bytes and frames signed with the wrong key, fired at
  // every RX port while legitimate traffic flows.
  std::vector<UdpSocket> attackers;
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    UdpSocket s = UdpSocket::bound_loopback(0);
    s.connect_loopback(ep.channel(i).rx_port());
    attackers.push_back(std::move(s));
  }
  proto::ShareFrame forged;
  forged.packet_id = 7777;
  forged.k = 2;
  forged.share_index = 1;
  forged.payload = std::vector<std::uint8_t>(32, 0xEE);
  const auto forged_bytes = proto::encode(forged, &bad_key);
  Rng rng(1234);

  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(96, 0x11)));
    }
    for (auto& attacker : attackers) {
      std::vector<std::uint8_t> junk(48);
      rng.fill(junk);
      ASSERT_EQ(attacker.send(junk), UdpSocket::IoResult::Ok);
      ASSERT_EQ(attacker.send(forged_bytes), UdpSocket::IoResult::Ok);
    }
    ep.run_for(10'000'000);
  }
  run_until(ep, 5000, [&] { return delivered >= 30; });

  EXPECT_EQ(delivered, 30u);
  const auto& rs = ep.receiver().stats();
  EXPECT_EQ(rs.packets_delivered, 30u);
  EXPECT_GT(rs.malformed_frames, 0u) << "junk datagrams must be counted";
  EXPECT_GT(rs.auth_failures, 0u) << "wrong-key frames must be counted";
}

TEST(LiveEndpoint, SeededImpairedRunMatchesConfiguredLossAndDelay) {
  // Five impaired channels in the Section VI style: diverse rates, loss,
  // and delay. Measured per-channel loss must track the Bernoulli
  // parameter; end-to-end delay must be bounded by the channel delays.
  const double rates_mbps[5] = {20, 20, 40, 40, 80};
  const double losses[5] = {0.05, 0.10, 0.02, 0.08, 0.0};
  const std::int64_t delays_ns[5] = {2'000'000, 4'000'000, 6'000'000,
                                     8'000'000, 10'000'000};
  LiveConfig cfg;
  for (int i = 0; i < 5; ++i) {
    ChannelConfig ch;
    ch.rate_bps = rates_mbps[i] * 1e6;
    ch.loss = losses[i];
    ch.delay = delays_ns[i];
    cfg.channels.push_back({ch, "impaired" + std::to_string(i)});
  }
  cfg.kappa = 2.0;
  cfg.mu = 3.0;
  cfg.seed = 77;
  cfg.max_queue_packets = 512;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  const int kPackets = 300;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(256, 0x77)));
  }
  // A few packets may legitimately lose > m - k shares, so do not wait
  // for a full house — settle for all-but-a-handful, then drain.
  run_until(ep, 6000,
            [&] { return delivered + 15 >= static_cast<std::size_t>(kPackets); });
  ep.run_for(30'000'000);  // let the last delayed shares land

  // k=2-of-m=3 over <=10% lossy channels: requiring >=90% end-to-end
  // delivery leaves a wide margin (the expected failure rate is <1%).
  EXPECT_GE(delivered, static_cast<std::size_t>(kPackets * 9 / 10));

  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    const auto& s = ep.channel(i).impair_stats();
    const std::uint64_t decided = s.frames_dropped_loss + s.frames_delivered;
    if (decided < 50) continue;  // too few samples to judge
    const double measured =
        static_cast<double>(s.frames_dropped_loss) / static_cast<double>(decided);
    EXPECT_NEAR(measured, losses[i], 0.06) << "channel " << i;
  }

  auto& delay = ep.delay_seconds();
  ASSERT_GT(delay.count(), 0u);
  // A packet needs k=2 shares, so its delay is at least the second-share
  // channel delay; the fastest pair is 2 ms + 4 ms -> >= ~2 ms. Loopback
  // scheduling noise only adds. Upper bound: slowest channel plus ample
  // pacing slack.
  EXPECT_GE(delay.percentile(10.0), 0.0015);
  EXPECT_LE(delay.median(), 0.060);
}

TEST(LiveEndpoint, TinyKernelBuffersDoNotWedgeTheLoop) {
  LiveConfig cfg = clean_config(2, 200.0, 41);
  cfg.max_queue_packets = 512;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    // The kernel clamps these to its floor (~2 KB), still small enough to
    // pressure a burst of coalesced datagrams.
    ep.channel(i).tx_socket().set_send_buffer(1);
    ep.channel(i).rx_socket().set_recv_buffer(1);
  }
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(512, 0x9C)));
  }
  run_until(ep, 3000, [&] {
    return ep.queued_packets() == 0 &&
           delivered >= static_cast<std::size_t>(kPackets) * 8 / 10;
  });
  ep.run_for(20'000'000);

  // Datagrams may be dropped at the tiny receive buffer (that is loss,
  // which the protocol absorbs); the loop itself must make progress and
  // the books must balance.
  EXPECT_EQ(ep.sender_stats().packets_sent,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(delivered, 0u);
  EXPECT_LE(delivered, static_cast<std::size_t>(kPackets));
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    EXPECT_EQ(ep.channel(i).stats().send_errors, 0u) << "channel " << i;
  }
}

TEST(LiveEndpoint, PortBaseFromEnvParsesAndFallsBack) {
  ASSERT_EQ(::unsetenv("MCSS_LIVE_PORT_BASE"), 0);
  EXPECT_EQ(port_base_from_env(0), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "23456", 1), 0);
  EXPECT_EQ(port_base_from_env(0), 23456);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "not-a-port", 1), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "70000", 1), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::unsetenv("MCSS_LIVE_PORT_BASE"), 0);
}

TEST(LiveEndpoint, ReliabilityRecoversLossesOverRealSockets) {
  // End-to-end ARQ over real UDP loopback: lossy forward channels with
  // zero share slack (kappa = mu = 2), a lossy feedback channel, and the
  // RetransmitManager repairing the difference.
  LiveConfig cfg = clean_config(3, 50.0, 61);
  for (auto& spec : cfg.channels) {
    spec.config.loss = 0.05;
  }
  cfg.mu = 2.0;
  cfg.kappa = 2.0;
  cfg.reliability.enabled = true;
  cfg.reliability.retransmit.max_retransmits = 6;
  cfg.reliability.retransmit.initial_rto_ns = 60'000'000;
  cfg.reliability.retransmit.min_rto_ns = 30'000'000;
  cfg.reliability.report_interval_ns = 10'000'000;
  cfg.reliability.feedback_channel.loss = 0.05;
  LiveEndpoint ep(std::move(cfg));
  ASSERT_NE(ep.retransmit_manager(), nullptr);
  ASSERT_NE(ep.feedback_channel(), nullptr);

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> delivered;
  ep.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> p) {
    delivered[id] = std::move(p);
  });
  Rng rng(7);
  const int count = 60;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < count; ++i) {
    std::vector<std::uint8_t> p(256);
    rng.fill(p);
    payloads.push_back(p);
    ASSERT_TRUE(ep.send(std::move(p)));
  }
  run_until(ep, 15000, [&] {
    return delivered.size() >= static_cast<std::size_t>(count);
  });

  // With 5% loss per share and no slack, ~10% of packets need a repair;
  // six retransmission rounds make residual failure negligible.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(delivered[static_cast<std::uint64_t>(i) + 1],
              payloads[static_cast<std::size_t>(i)]);
  }
  const auto& stats = ep.retransmit_manager()->stats();
  EXPECT_GT(ep.reports_sent(), 0u);
  EXPECT_GT(stats.reports_received, 0u);
  EXPECT_GT(stats.packets_acked, 0u);
  // Realized exposure can only widen relative to the initial dispatch.
  EXPECT_GE(stats.exposure_channel_sum, stats.initial_channel_sum);
}

TEST(LiveEndpoint, ReliabilityWorksOnThePollBackend) {
  // Same loop under the poll() fallback poller (the CI matrix runs the
  // whole suite under MCSS_LIVE_POLLER=poll as well; this pins the
  // combination even on the default matrix leg).
  LiveConfig cfg = clean_config(2, 50.0, 71);
  cfg.poller_backend = Poller::Backend::Poll;
  cfg.reliability.enabled = true;
  cfg.reliability.report_interval_ns = 10'000'000;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(64, 0x5A)));
  }
  run_until(ep, 5000, [&] {
    return delivered >= 20 &&
           ep.retransmit_manager()->stats().reports_received > 0;
  });
  EXPECT_EQ(delivered, 20u);
  EXPECT_GT(ep.reports_sent(), 0u);
  EXPECT_GT(ep.retransmit_manager()->stats().reports_received, 0u);
  EXPECT_EQ(ep.poller_backend(), Poller::Backend::Poll);
}

}  // namespace
}  // namespace mcss::transport
