// Live transport tests: timer wheel, poller backends, sockets, the
// userspace impairment shim, and end-to-end LiveEndpoint runs — all on
// unprivileged loopback, no netem, no fixed ports (everything binds
// ephemeral so suites can run in parallel).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <cstring>
#include <new>
#include <unordered_map>
#include <vector>

#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/wire.hpp"
#include "sss/shamir.hpp"
#include "transport/frame_pool.hpp"
#include "transport/impairment.hpp"
#include "transport/live_endpoint.hpp"
#include "transport/poller.hpp"
#include "transport/timer_wheel.hpp"
#include "transport/udp_channel.hpp"
#include "transport/udp_socket.hpp"
#include "transport/uring_poller.hpp"
#include "transport/wall_clock.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

// ---- allocation-counting hook ----------------------------------------
//
// Replacing the global allocator is binary-wide, so counting is gated on
// a flag that SteadyStateFastPathDoesNotAllocateAfterWarmup flips around
// its measured region. Everything else pays one relaxed load per new.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// noinline keeps GCC from pairing an inlined free() against new
// expressions elsewhere and warning about a mismatch that is not one
// (this new IS malloc-based).
#define MCSS_TEST_NOINLINE __attribute__((noinline))

MCSS_TEST_NOINLINE void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
MCSS_TEST_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}
MCSS_TEST_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
MCSS_TEST_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
MCSS_TEST_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
MCSS_TEST_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace mcss::transport {
namespace {

using net::ChannelConfig;

/// Pool-backed frame full of `fill`. Tests size their pools so that
/// acquisition cannot fail.
FrameRef make_frame(FramePool& pool, std::size_t size, std::uint8_t fill) {
  FrameRef f = pool.acquire();
  MCSS_ENSURE(f, "test pool exhausted");
  f.resize(size);
  std::memset(f.data(), fill, size);
  return f;
}

// ---------------------------------------------------------------- wheel

TEST(TimerWheel, FiresInDeadlineOrderWithTiesInScheduleOrder) {
  TimerWheel wheel(1'000'000, 16);
  wheel.advance(0);
  std::vector<int> order;
  wheel.schedule_at(5'000'000, [&] { order.push_back(1); });
  wheel.schedule_at(3'000'000, [&] { order.push_back(2); });
  wheel.schedule_at(5'000'000, [&] { order.push_back(3); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.advance(10'000'000), 3u);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(1'000'000, 16);
  wheel.advance(10'000'000);
  bool fired = false;
  wheel.schedule_at(1'000'000, [&] { fired = true; });  // long past
  EXPECT_EQ(wheel.advance(10'000'000), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, LaterRotationsWaitTheirTurn) {
  // 4 slots of 1 ms = 4 ms per rotation; a 10 ms timer shares slot 2 with
  // tick 2 and must survive two early passes over that slot.
  TimerWheel wheel(1'000'000, 4);
  wheel.advance(0);
  int fired = 0;
  wheel.schedule_at(10'000'000, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(2'000'000), 0u);
  EXPECT_EQ(wheel.advance(6'000'000), 0u);
  EXPECT_EQ(wheel.advance(10'000'000), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, LaterDeadlineInTheSameTickIsNotStranded) {
  // Two timers inside one 1 ms tick; servicing the first must not carry
  // the wheel past the tick and orphan the second for a full rotation.
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  std::vector<int> order;
  wheel.schedule_at(100'000, [&] { order.push_back(1); });
  wheel.schedule_at(900'000, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.advance(500'000), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(wheel.advance(950'000), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, CallbackScheduledDueTimerFiresWithinTheSameAdvance) {
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  bool chained = false;
  wheel.schedule_at(2'000'000, [&] {
    wheel.schedule_at(3'000'000, [&] { chained = true; });  // already due
  });
  EXPECT_EQ(wheel.advance(5'000'000), 2u);
  EXPECT_TRUE(chained);
}

TEST(TimerWheel, NextDeadlineIsExact) {
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule_at(7'300'000, [] {});
  wheel.schedule_at(2'100'000, [] {});
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 2'100'000);
  wheel.advance(3'000'000);
  EXPECT_EQ(*wheel.next_deadline(), 7'300'000);
}

TEST(TimerWheel, CancelPreventsFiringAndIsIdempotent) {
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  bool fired = false;
  const auto id = wheel.schedule_at(2'000'000, [&] { fired = true; });
  EXPECT_NE(id, TimerWheel::kNoTimer);
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  EXPECT_EQ(wheel.advance(5'000'000), 0u);
  EXPECT_FALSE(fired);
  // Double-cancel, cancel-after-fire, and garbage ids are safe no-ops.
  EXPECT_FALSE(wheel.cancel(id));
  const auto id2 = wheel.schedule_at(6'000'000, [] {});
  wheel.advance(7'000'000);
  EXPECT_FALSE(wheel.cancel(id2));
  EXPECT_FALSE(wheel.cancel(12345));
  EXPECT_FALSE(wheel.cancel(TimerWheel::kNoTimer));
}

TEST(TimerWheel, CancelledTimerDoesNotMaskLaterDeadlines) {
  // next_deadline() must not report a cancelled timer's deadline: the
  // pump loop would wake early and fire nothing.
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  const auto early = wheel.schedule_at(2'000'000, [] {});
  int fired = 0;
  wheel.schedule_at(5'000'000, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(early));
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 5'000'000);
  EXPECT_EQ(wheel.advance(5'000'000), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, TeardownBetweenArmAndFireDoesNotTouchFreedState) {
  // Regression (ISSUE 7): a flow torn down with a pending retransmit
  // timer left the callback to fire against freed per-flow state. The
  // callback below dereferences the flow's memory — without cancel()
  // this test dies under ASan as heap-use-after-free.
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  struct FlowState {
    int rto_count = 0;
  };
  auto flow = std::make_unique<FlowState>();
  FlowState* raw = flow.get();
  const auto id = wheel.schedule_at(2'000'000, [raw] { ++raw->rto_count; });
  // Teardown: free the flow, cancel its armed timer.
  flow.reset();
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.advance(10'000'000), 0u);
}

TEST(TimerWheel, CancelFromCallbackSuppressesLaterEntryInSameBatch) {
  // Both timers are due in ONE advance(): the first callback tears the
  // "flow" down and cancels the second timer, which advance() has
  // already pulled into its due batch. The second callback must not run
  // (it touches the freed state — ASan-visible without the fix).
  TimerWheel wheel(1'000'000, 8);
  wheel.advance(0);
  auto flow = std::make_unique<int>(0);
  int* raw = flow.get();
  TimerWheel::TimerId second = TimerWheel::kNoTimer;
  wheel.schedule_at(2'000'000, [&] {
    flow.reset();
    EXPECT_TRUE(wheel.cancel(second));
  });
  second = wheel.schedule_at(3'000'000, [raw] { *raw = 99; });
  EXPECT_EQ(wheel.advance(5'000'000), 1u);  // only the teardown fired
  EXPECT_EQ(wheel.pending(), 0u);
}

// --------------------------------------------------------------- poller

class PollerBackends : public ::testing::TestWithParam<Poller::Backend> {};

TEST_P(PollerBackends, ReportsReadinessAndHonorsInterest) {
  Poller poller(GetParam());
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());

  poller.add(rx.fd(), /*want_read=*/true, /*want_write=*/false);
  std::vector<Poller::Event> events;
  EXPECT_EQ(poller.wait(0, events), 0u);  // nothing queued yet

  const std::vector<std::uint8_t> ping{1, 2, 3};
  ASSERT_EQ(tx.send(ping), UdpSocket::IoResult::Ok);
  // Loopback delivery is immediate, but give the kernel a timeout anyway.
  ASSERT_EQ(poller.wait(1000, events), 1u);
  EXPECT_EQ(events[0].fd, rx.fd());
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  // A UDP socket with write interest is immediately writable.
  poller.modify(rx.fd(), /*want_read=*/true, /*want_write=*/true);
  ASSERT_GE(poller.wait(1000, events), 1u);
  EXPECT_TRUE(events[0].writable);

  poller.remove(rx.fd());
  std::uint8_t buf[16];
  std::size_t n = 0;
  ASSERT_EQ(rx.recv(buf, &n), UdpSocket::IoResult::Ok);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(poller.wait(0, events), 0u);
}

// The uring leg exercises the io_uring backend where the kernel provides
// one; where it does not, Poller falls back (with a logged reason) and
// the leg degenerates into a second epoll run — still a valid check of
// the fallback contract.
INSTANTIATE_TEST_SUITE_P(Backends, PollerBackends,
                         ::testing::Values(Poller::Backend::Epoll,
                                           Poller::Backend::Poll,
                                           Poller::Backend::Uring),
                         [](const auto& param_info) -> std::string {
                           switch (param_info.param) {
                             case Poller::Backend::Epoll:
                               return "epoll";
                             case Poller::Backend::Poll:
                               return "poll";
                             case Poller::Backend::Uring:
                               return "uring";
                           }
                           return "unknown";
                         });

TEST(Poller, EnvSelectsEachBackendAndFallsBackToEpoll) {
  ASSERT_EQ(::setenv("MCSS_LIVE_POLLER", "poll", 1), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Poll);
  ASSERT_EQ(::setenv("MCSS_LIVE_POLLER", "uring", 1), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Uring);
  ASSERT_EQ(::setenv("MCSS_LIVE_POLLER", "epoll", 1), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Epoll);
  ASSERT_EQ(::unsetenv("MCSS_LIVE_POLLER"), 0);
  EXPECT_EQ(Poller::default_backend(), Poller::Backend::Epoll);
}

TEST(Poller, UringRequestFallsBackGracefullyWhenUnsupported) {
  Poller poller(Poller::Backend::Uring);
  if (UringCore::supported()) {
    EXPECT_EQ(poller.backend(), Poller::Backend::Uring);
  } else {
    // The constructor must not throw; it logs and degrades.
    EXPECT_NE(poller.backend(), Poller::Backend::Uring);
  }
  // Whatever it resolved to must actually poll.
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());
  poller.add(rx.fd(), /*want_read=*/true, /*want_write=*/false);
  ASSERT_EQ(tx.send(std::vector<std::uint8_t>{1}), UdpSocket::IoResult::Ok);
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.wait(1000, events), 1u);
  EXPECT_TRUE(events[0].readable);
  EXPECT_GT(poller.wait_calls(), 0u);
}

// --------------------------------------------------------------- socket

TEST(UdpSocket, RoundTripAndDrainToWouldBlock) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());

  const std::vector<std::uint8_t> msg{9, 8, 7, 6};
  ASSERT_EQ(tx.send(msg), UdpSocket::IoResult::Ok);
  std::uint8_t buf[64];
  std::size_t n = 0;
  // recv may race loopback delivery; retry briefly.
  UdpSocket::IoResult r = UdpSocket::IoResult::WouldBlock;
  for (int i = 0; i < 1000 && r == UdpSocket::IoResult::WouldBlock; ++i) {
    r = rx.recv(buf, &n);
  }
  ASSERT_EQ(r, UdpSocket::IoResult::Ok);
  EXPECT_EQ(n, 4u);
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf));
  EXPECT_EQ(rx.recv(buf, &n), UdpSocket::IoResult::WouldBlock);
}

TEST(UdpSocket, InjectedWouldBlockIsDeterministic) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());
  tx.inject_wouldblock(2);
  const std::vector<std::uint8_t> msg{1};
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::WouldBlock);
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::WouldBlock);
  EXPECT_EQ(tx.send(msg), UdpSocket::IoResult::Ok);
}

TEST(UdpSocket, SendManyRecvManyMoveWholeBatchesInOneSyscallEach) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());

  // Three distinct datagrams, one sendmmsg.
  std::array<std::array<std::uint8_t, 8>, 3> out;
  std::array<iovec, 3> out_iov;
  std::array<mmsghdr, 3> out_msgs{};
  for (std::size_t i = 0; i < 3; ++i) {
    out[i].fill(static_cast<std::uint8_t>(0x40 + i));
    out_iov[i] = {out[i].data(), out[i].size()};
    out_msgs[i].msg_hdr.msg_iov = &out_iov[i];
    out_msgs[i].msg_hdr.msg_iovlen = 1;
  }
  const auto sent = tx.send_many(out_msgs);
  ASSERT_EQ(sent.result, UdpSocket::IoResult::Ok);
  EXPECT_EQ(sent.completed, 3u);
  EXPECT_EQ(tx.syscalls_send(), 1u);
  for (const auto& m : out_msgs) EXPECT_EQ(m.msg_len, 8u);

  // Drain with recvmmsg into four slots; loopback may deliver in pieces,
  // so accumulate until all three arrive.
  std::array<std::array<std::uint8_t, 64>, 4> in;
  std::array<iovec, 4> in_iov;
  std::array<mmsghdr, 4> in_msgs{};
  for (std::size_t i = 0; i < 4; ++i) {
    in_iov[i] = {in[i].data(), in[i].size()};
    in_msgs[i].msg_hdr.msg_iov = &in_iov[i];
    in_msgs[i].msg_hdr.msg_iovlen = 1;
  }
  std::vector<std::uint8_t> first_bytes;
  for (int spins = 0; spins < 5000 && first_bytes.size() < 3; ++spins) {
    const auto got = rx.recv_many(in_msgs);
    if (got.result != UdpSocket::IoResult::Ok) continue;
    for (unsigned i = 0; i < got.completed; ++i) {
      ASSERT_EQ(in_msgs[i].msg_len, 8u);
      first_bytes.push_back(in[i][0]);
    }
  }
  std::sort(first_bytes.begin(), first_bytes.end());
  EXPECT_EQ(first_bytes, (std::vector<std::uint8_t>{0x40, 0x41, 0x42}));
  EXPECT_GT(rx.syscalls_recv(), 0u);
}

TEST(UdpSocket, InjectedAcceptLimitShortensOneBatch) {
  UdpSocket rx = UdpSocket::bound_loopback(0);
  UdpSocket tx = UdpSocket::bound_loopback(0);
  tx.connect_loopback(rx.local_port());
  std::array<std::uint8_t, 4> payload{1, 2, 3, 4};
  std::array<iovec, 3> iov;
  std::array<mmsghdr, 3> msgs{};
  for (std::size_t i = 0; i < 3; ++i) {
    iov[i] = {payload.data(), payload.size()};
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  tx.inject_accept_limit(2);
  auto batch = tx.send_many(msgs);
  EXPECT_EQ(batch.result, UdpSocket::IoResult::Ok);
  EXPECT_EQ(batch.completed, 2u);  // kernel "took" only the head
  batch = tx.send_many(msgs);      // hook is one-shot
  EXPECT_EQ(batch.result, UdpSocket::IoResult::Ok);
  EXPECT_EQ(batch.completed, 3u);
}

// ----------------------------------------------------------- frame pool

TEST(FramePool, AcquireRecycleAndHighWater) {
  FramePool pool(256, 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  {
    FrameRef a = pool.acquire();
    FrameRef b = pool.acquire();
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_NE(a.slot(), b.slot());
    a.resize(100);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(pool.in_use(), 2u);
  }
  // Both refs dropped: slots recycled, high-water remembers the peak.
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().high_water, 2u);
  // Data pointers are arena-stable: reacquiring reuses the same memory.
  FrameRef c = pool.acquire();
  ASSERT_TRUE(c);
  EXPECT_GE(c.data(), pool.arena_data());
  EXPECT_LT(c.data(), pool.arena_data() + pool.arena_bytes());
}

TEST(FramePool, CopiesShareTheSlotUntilTheLastRefDrops) {
  FramePool pool(128, 2);
  FrameRef a = pool.acquire();
  ASSERT_TRUE(a);
  a.resize(5);
  std::memcpy(a.data(), "hello", 5);
  FrameRef b = a;  // refcount bump, same slot
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(a.data(), b.data());
  a.reset();
  EXPECT_EQ(pool.in_use(), 1u) << "slot must survive the first release";
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(std::memcmp(b.data(), "hello", 5), 0);
  b.reset();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(FramePool, ExhaustionReturnsNullAndCounts) {
  FramePool pool(64, 2);
  FrameRef a = pool.acquire();
  FrameRef b = pool.acquire();
  ASSERT_TRUE(a && b);
  FrameRef c = pool.acquire();
  EXPECT_FALSE(c);
  EXPECT_EQ(pool.stats().exhausted, 1u);
  // Oversize copies can never be pooled; same degrade, same stat.
  const std::vector<std::uint8_t> big(65, 0xAA);
  a.reset();
  EXPECT_FALSE(pool.acquire_copy(big));
  EXPECT_EQ(pool.stats().exhausted, 2u);
  // A fitting copy lands byte-for-byte.
  const std::vector<std::uint8_t> ok(64, 0xBB);
  FrameRef d = pool.acquire_copy(ok);
  ASSERT_TRUE(d);
  EXPECT_EQ(d.size(), 64u);
  EXPECT_TRUE(std::equal(ok.begin(), ok.end(), d.data()));
}

// ----------------------------------------------------------- impairment

/// Steps the wheel in `step_ns` increments up to `until_ns`, recording the
/// advance-time at which each release lands.
struct ReleaseRecorder {
  std::vector<std::int64_t> at;
  std::int64_t now = 0;
  void step(TimerWheel& wheel, std::int64_t until_ns, std::int64_t step_ns) {
    for (; now <= until_ns; now += step_ns) wheel.advance(now);
  }
};

TEST(Impairment, PacesFramesAtTheConfiguredRate) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;  // 1000 bytes = 1 ms on the serializer
  cfg.delay = 0;
  ReleaseRecorder rec;
  FramePool pool(2048, 8);
  Impairment impair(cfg, Rng(1), wheel,
                    [&](FrameRef, std::int64_t) { rec.at.push_back(rec.now); });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(impair.offer(make_frame(pool, 1000, 0xAB), 0));
  }
  EXPECT_EQ(impair.backlog_ns(0), 5'000'000);
  rec.step(wheel, 10'000'000, 50'000);
  ASSERT_EQ(rec.at.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const std::int64_t expected = (i + 1) * 1'000'000;
    EXPECT_NEAR(static_cast<double>(rec.at[static_cast<std::size_t>(i)]),
                static_cast<double>(expected), 200'000.0)
        << "frame " << i;
  }
  EXPECT_EQ(impair.stats().frames_delivered, 5u);
  EXPECT_EQ(impair.backlog_ns(10'000'000), 0);
}

TEST(Impairment, DelayPlusJitterStaysInBounds) {
  TimerWheel wheel(100'000, 256);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 1e12;  // serialization ~ 0
  cfg.delay = 5'000'000;
  cfg.jitter = 2'000'000;
  cfg.queue_capacity_bytes = 1 << 20;
  ReleaseRecorder rec;
  FramePool pool(256, 128);
  Impairment impair(cfg, Rng(7), wheel,
                    [&](FrameRef, std::int64_t) { rec.at.push_back(rec.now); });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(impair.offer(make_frame(pool, 64, 1), 0));
  }
  rec.step(wheel, 9'000'000, 50'000);
  ASSERT_EQ(rec.at.size(), 100u);
  const auto [lo, hi] = std::minmax_element(rec.at.begin(), rec.at.end());
  EXPECT_GE(*lo, 5'000'000);
  EXPECT_LE(*hi, 7'000'000 + 200'000);
  EXPECT_GT(*hi - *lo, 500'000) << "jitter should actually spread releases";
}

TEST(Impairment, TailDropsAndReadyWatermark) {
  TimerWheel wheel;
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.queue_capacity_bytes = 3000;  // watermark defaults to 1500
  int released = 0;
  FramePool pool(2048, 8);
  Impairment impair(cfg, Rng(1), wheel,
                    [&](FrameRef, std::int64_t) { ++released; });
  EXPECT_TRUE(impair.ready());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(impair.offer(make_frame(pool, 1000, 2), 0));
  }
  EXPECT_FALSE(impair.ready());  // 3000 queued >= 1500 watermark
  EXPECT_FALSE(impair.offer(make_frame(pool, 1000, 2), 0));
  EXPECT_EQ(impair.stats().frames_dropped_queue, 1u);
  wheel.advance(10'000'000);  // drain
  EXPECT_TRUE(impair.ready());
  EXPECT_EQ(released, 3);
}

TEST(Impairment, SeededBernoulliLossLandsNearTheConfiguredRate) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e9;  // 100 bytes = 100 ns; drains between offers
  cfg.loss = 0.3;
  FramePool pool(256, 8);
  Impairment impair(cfg, Rng(42), wheel, [](FrameRef, std::int64_t) {});
  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    const std::int64_t t = static_cast<std::int64_t>(i) * 1000;
    ASSERT_TRUE(impair.offer(make_frame(pool, 100, 3), t));
    wheel.advance(t + 1000);
  }
  wheel.advance(kFrames * 1000 + 10'000'000);
  const auto& s = impair.stats();
  EXPECT_EQ(s.frames_dropped_loss + s.frames_delivered,
            static_cast<std::uint64_t>(kFrames));
  const double measured =
      static_cast<double>(s.frames_dropped_loss) / kFrames;
  EXPECT_NEAR(measured, 0.3, 0.05);
}

// ------------------------------------------------------ shared-link loss

TEST(SharedLinkLoss, BadSojournsDropEveryFrameAndCluster) {
  // Hard-outage chain (drop_in_bad = 1): a frame drops exactly when the
  // link is in a bad sojourn, and with mean sojourns of 200us good /
  // 100us bad sampled every 10us the drops must arrive in runs, not as
  // independent coin flips.
  SharedLinkLoss shared({.mean_good_ns = 200'000,
                         .mean_bad_ns = 100'000,
                         .drop_in_bad = 1.0},
                        Rng(5));
  const int kSamples = 20'000;
  int drops = 0;
  int runs = 0;
  bool prev = false;
  for (int i = 0; i < kSamples; ++i) {
    const bool drop = shared.should_drop(static_cast<std::int64_t>(i) * 10'000);
    EXPECT_EQ(drop, shared.in_burst());
    if (drop && !prev) ++runs;
    prev = drop;
    if (drop) ++drops;
  }
  EXPECT_EQ(shared.stats().frames_seen, static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(shared.stats().frames_dropped, static_cast<std::uint64_t>(drops));
  // The chain may enter and leave a burst between samples; the observed
  // run count can only undercount the true transitions.
  EXPECT_GE(shared.stats().bursts, static_cast<std::uint64_t>(runs));
  // Long-run drop fraction: mean_bad / (mean_good + mean_bad) = 1/3.
  EXPECT_NEAR(static_cast<double>(drops) / kSamples, 1.0 / 3.0, 0.1);
  ASSERT_GT(runs, 0);
  // Clustering: each burst spans ~10 samples, so runs << drops.
  EXPECT_LT(runs * 3, drops);
}

TEST(Impairment, SharedLinkLossCorrelatesDropsAcrossChannels) {
  // Two channels over one shared link: with a hard-outage chain their
  // drops must co-occur frame-for-frame — the signature per-channel
  // netem loss cannot produce.
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  ChannelConfig cfg;
  cfg.rate_bps = 8e9;  // 100 bytes = 100 ns; drains between offers
  SharedLinkLoss shared({.mean_good_ns = 200'000,
                         .mean_bad_ns = 100'000,
                         .drop_in_bad = 1.0},
                        Rng(11));
  FramePool pool(256, 8);
  Impairment a(cfg, Rng(1), wheel, [](FrameRef, std::int64_t) {});
  Impairment b(cfg, Rng(2), wheel, [](FrameRef, std::int64_t) {});
  a.set_shared_loss(&shared);
  b.set_shared_loss(&shared);
  EXPECT_EQ(a.shared_loss(), &shared);

  const int kFrames = 2000;
  int either = 0;
  int both = 0;
  for (int i = 0; i < kFrames; ++i) {
    const std::int64_t t = static_cast<std::int64_t>(i) * 10'000;
    const auto da = a.stats().frames_dropped_shared_link;
    const auto db = b.stats().frames_dropped_shared_link;
    ASSERT_TRUE(a.offer(make_frame(pool, 100, 1), t));
    ASSERT_TRUE(b.offer(make_frame(pool, 100, 2), t));
    wheel.advance(t + 5'000);
    const bool dropped_a = a.stats().frames_dropped_shared_link > da;
    const bool dropped_b = b.stats().frames_dropped_shared_link > db;
    if (dropped_a || dropped_b) ++either;
    if (dropped_a && dropped_b) ++both;
  }
  ASSERT_GT(either, 0);
  // Both frames depart at the same instant, so they see the same chain
  // state: every drop is a joint drop.
  EXPECT_EQ(both, either);
  EXPECT_NEAR(static_cast<double>(either) / kFrames, 1.0 / 3.0, 0.1);
  EXPECT_EQ(a.stats().frames_dropped_loss, 0u);
  EXPECT_EQ(b.stats().frames_dropped_loss, 0u);
  EXPECT_EQ(shared.stats().frames_seen,
            static_cast<std::uint64_t>(2 * kFrames));
}

// ---------------------------------------------------------- udp channel

/// Span consumer that materializes each forwarded frame for comparison.
UdpChannel::FrameFn collect_into(std::vector<std::vector<std::uint8_t>>& got) {
  return [&got](std::span<const std::uint8_t> f) {
    got.emplace_back(f.begin(), f.end());
  };
}

TEST(UdpChannel, CoalescesOnBackpressureAndSplitsFramesOnReceive) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 64);
  ChannelConfig cfg;
  cfg.rate_bps = 1e12;
  UdpChannel ch(cfg, Rng(3), wheel, pool, /*rx_port=*/0, "test");
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame(collect_into(got));

  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint8_t i = 1; i <= 3; ++i) {
    proto::ShareFrame frame;
    frame.packet_id = i;
    frame.k = 2;
    frame.share_index = i;
    frame.payload = std::vector<std::uint8_t>(40, i);
    sent.push_back(proto::encode(frame));
  }
  for (auto& f : sent) {
    ASSERT_TRUE(ch.try_send(std::span<const std::uint8_t>(f), 0));
  }
  wheel.advance(1'000'000);  // all three land in the pending ring
  // Park deterministically: the first sendmmsg hits an injected EAGAIN.
  ch.tx_socket().inject_wouldblock(1);
  ch.flush(1'000'000);
  EXPECT_TRUE(ch.wants_write());
  EXPECT_EQ(ch.stats().send_wouldblock, 1u);
  ch.on_writable(1'000'000);  // kernel was never actually full
  EXPECT_FALSE(ch.wants_write());
  // All three frames fit one datagram: coalesced behind the head.
  EXPECT_EQ(ch.stats().datagrams_sent, 1u);
  EXPECT_GE(ch.stats().frames_coalesced, 2u);

  for (int spins = 0; spins < 2000 && got.size() < 3; ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
  }
  EXPECT_EQ(ch.stats().frames_forwarded, 3u);
  EXPECT_EQ(ch.stats().unparsed_forwarded, 0u);
}

TEST(UdpChannel, UndecodableDatagramIsForwardedWholeForAccounting) {
  TimerWheel wheel;
  wheel.advance(0);
  FramePool pool(2048, 40);
  ChannelConfig cfg;
  UdpChannel ch(cfg, Rng(3), wheel, pool, 0, "junk");
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame(collect_into(got));

  UdpSocket attacker = UdpSocket::bound_loopback(0);
  attacker.connect_loopback(ch.rx_port());
  const std::vector<std::uint8_t> junk{'h', 'e', 'l', 'l', 'o'};
  ASSERT_EQ(attacker.send(junk), UdpSocket::IoResult::Ok);
  for (int spins = 0; spins < 2000 && got.empty(); ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], junk);
  EXPECT_EQ(ch.stats().unparsed_forwarded, 1u);
  EXPECT_EQ(ch.stats().frames_forwarded, 0u);
}

/// One wire frame whose encoding is large enough that two never share a
/// 1400-byte datagram — each pending frame becomes its own datagram.
std::vector<std::uint8_t> big_frame_bytes(std::uint64_t id) {
  proto::ShareFrame frame;
  frame.packet_id = id;
  frame.k = 2;
  frame.share_index = 1;
  frame.payload = std::vector<std::uint8_t>(800, static_cast<std::uint8_t>(id));
  return proto::encode(frame);
}

TEST(UdpChannel, ShortSendmmsgRetiresTheHeadAndResendsTheTail) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 64);
  ChannelConfig cfg;
  cfg.rate_bps = 1e15;  // transparent: releases happen inside try_send
  UdpChannel ch(cfg, Rng(5), wheel, pool, 0, "short");
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame(collect_into(got));

  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(ch.try_send(
        std::span<const std::uint8_t>(big_frame_bytes(i)), 0));
  }
  // The kernel "takes" only 2 of the 5 datagrams from the first
  // sendmmsg; flush must retire exactly those and re-offer the tail in
  // a follow-up call, not drop or resend the head.
  ch.tx_socket().inject_accept_limit(2);
  ch.flush(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 5u);
  EXPECT_EQ(ch.stats().sendmmsg_short, 1u);
  EXPECT_EQ(ch.syscalls_send(), 2u) << "short batch + one follow-up";
  EXPECT_FALSE(ch.wants_write());

  for (int spins = 0; spins < 5000 && got.size() < 5; ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(got[i - 1], big_frame_bytes(i)) << "frame " << i;
  }
}

TEST(UdpChannel, EagainOnSlotZeroParksTheWholeBatch) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 64);
  ChannelConfig cfg;
  cfg.rate_bps = 1e15;
  UdpChannel ch(cfg, Rng(5), wheel, pool, 0, "slot0");
  std::size_t frames_seen = 0;
  ch.set_on_frame([&](std::span<const std::uint8_t>) { ++frames_seen; });

  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(ch.try_send(
        std::span<const std::uint8_t>(big_frame_bytes(i)), 0));
  }
  ch.tx_socket().inject_wouldblock(1);  // EAGAIN before any slot completes
  ch.flush(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 0u);
  EXPECT_EQ(ch.stats().send_wouldblock, 1u);
  EXPECT_TRUE(ch.wants_write());
  ch.on_writable(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 4u);
  EXPECT_FALSE(ch.wants_write());
}

TEST(UdpChannel, EagainMidBatchRetiresTheHeadAndParksTheTail) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 64);
  ChannelConfig cfg;
  cfg.rate_bps = 1e15;
  UdpChannel ch(cfg, Rng(5), wheel, pool, 0, "slotk");
  ch.set_on_frame([](std::span<const std::uint8_t>) {});

  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(ch.try_send(
        std::span<const std::uint8_t>(big_frame_bytes(i)), 0));
  }
  // sendmmsg semantics for a mid-batch EAGAIN: the call returns short
  // (the error surfaces at the head of the NEXT call). Model it as a
  // short accept followed by an injected EAGAIN.
  ch.tx_socket().inject_accept_limit(2);
  ch.tx_socket().inject_wouldblock(1);
  ch.flush(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 2u) << "head must be retired";
  EXPECT_EQ(ch.stats().sendmmsg_short, 1u);
  EXPECT_EQ(ch.stats().send_wouldblock, 1u);
  EXPECT_TRUE(ch.wants_write()) << "tail parks until EPOLLOUT";
  ch.on_writable(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 5u);
  EXPECT_FALSE(ch.wants_write());
}

TEST(UdpChannel, RecvmmsgDrainsBurstsLargerThanTheBatch) {
  TimerWheel wheel;
  wheel.advance(0);
  FramePool pool(2048, 32);
  ChannelConfig cfg;
  UdpChannel ch(cfg, Rng(7), wheel, pool, 0, "burst", 1400,
                /*send_batch=*/32, /*recv_batch=*/4);
  std::vector<std::vector<std::uint8_t>> got;
  ch.set_on_frame(collect_into(got));

  UdpSocket peer = UdpSocket::bound_loopback(0);
  peer.connect_loopback(ch.rx_port());
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ASSERT_EQ(peer.send(big_frame_bytes(i)), UdpSocket::IoResult::Ok);
  }
  for (int spins = 0; spins < 5000 && got.size() < 10; ++spins) {
    ch.on_readable();
  }
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(ch.stats().datagrams_received, 10u);
  EXPECT_EQ(ch.stats().frames_forwarded, 10u);
  // 10 datagrams through 4-deep recvmmsg: at least three kernel visits,
  // far fewer than the 10 the unbatched path would make.
  EXPECT_GE(ch.syscalls_recv(), 3u);
}

TEST(UdpChannel, PoolExhaustionUnderStormDegradesToDropWithStat) {
  TimerWheel wheel;
  wheel.advance(0);
  // 6 slots; the channel pins 2 for its receive batch, leaving 4 for TX.
  FramePool pool(2048, 6);
  ChannelConfig cfg;
  cfg.rate_bps = 1e15;
  UdpChannel ch(cfg, Rng(9), wheel, pool, 0, "storm", 1400,
                /*send_batch=*/32, /*recv_batch=*/2);
  ch.set_on_frame([](std::span<const std::uint8_t>) {});

  const auto frame = big_frame_bytes(1);
  std::size_t accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (ch.try_send(std::span<const std::uint8_t>(frame), 0)) ++accepted;
  }
  EXPECT_EQ(accepted, 4u) << "exactly the free slots";
  EXPECT_EQ(ch.stats().frames_dropped_pool, 6u);
  EXPECT_EQ(pool.stats().exhausted, 6u);
  EXPECT_EQ(pool.available(), 0u);

  // Flushing returns the slots; the channel recovers without help.
  ch.flush(0);
  EXPECT_EQ(ch.stats().datagrams_sent, 4u);
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_TRUE(ch.try_send(std::span<const std::uint8_t>(frame), 0));
}

TEST(UdpChannel, WholeBatchDepartureKeepsPerFrameReleaseStamps) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 40);  // 32 pinned receive slots + TX headroom
  ChannelConfig cfg;
  cfg.rate_bps = 8e6;  // 1000 bytes = 1 ms on the serializer
  UdpChannel ch(cfg, Rng(11), wheel, pool, 0, "stamps");
  ch.set_on_frame([](std::span<const std::uint8_t>) {});

  for (std::uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ch.try_send(make_frame(pool, 1000, i), 0));
  }
  wheel.advance(10'000'000);  // serializer releases at 1, 2, 3 ms
  ch.flush(10'000'000);
  // 1000-byte frames do not share a 1400-byte datagram: three datagrams,
  // ONE sendmmsg — yet each retired frame keeps the release stamp the
  // serializer gave it, not one smeared batch-departure time.
  EXPECT_EQ(ch.stats().datagrams_sent, 3u);
  EXPECT_EQ(ch.syscalls_send(), 1u);
  const auto stamps = ch.last_flush_release_ns();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 1'000'000);
  EXPECT_EQ(stamps[1], 2'000'000);
  EXPECT_EQ(stamps[2], 3'000'000);
}

TEST(UdpChannel, SteadyStateFastPathDoesNotAllocateAfterWarmup) {
  TimerWheel wheel(100'000, 64);
  wheel.advance(0);
  FramePool pool(2048, 80);
  ChannelConfig cfg;
  cfg.rate_bps = 1e15;  // transparent channel: no wheel, no closures
  UdpChannel ch(cfg, Rng(13), wheel, pool, 0, "hot");
  std::size_t frames_seen = 0;
  ch.set_on_frame([&frames_seen](std::span<const std::uint8_t>) {
    ++frames_seen;
  });
  const auto frame = big_frame_bytes(42);

  // One round = stage 8 frames into pool slots, one sendmmsg out, drain
  // the RX socket through the pinned recvmmsg slots.
  const auto round = [&](std::int64_t t, std::size_t expect_seen) {
    for (int i = 0; i < 8; ++i) {
      (void)ch.try_send(std::span<const std::uint8_t>(frame), t);
    }
    ch.flush(t);
    for (int spins = 0; spins < 200000 && frames_seen < expect_seen;
         ++spins) {
      ch.on_readable();
    }
  };

  for (int r = 0; r < 3; ++r) {  // warmup: pools, freelists, socket bufs
    round(r * 1'000'000, static_cast<std::size_t>(r + 1) * 8);
  }
  ASSERT_EQ(frames_seen, 24u);

  g_allocs.store(0);
  g_count_allocs.store(true);
  for (int r = 3; r < 8; ++r) {
    round(r * 1'000'000, static_cast<std::size_t>(r + 1) * 8);
  }
  g_count_allocs.store(false);
  ASSERT_EQ(frames_seen, 64u);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the warmed-up pool/batch/split path must never touch the heap";
}

TEST(Receiver, ArenaReassemblyAppendsDoNotAllocate) {
  // Regression (ISSUE 7): partials used to heap-allocate a vector per
  // appended share. With an arena, the partial lives in one pool slot
  // (k index bytes + k share regions) and appends are a byte write plus
  // a memcpy — zero heap traffic.
  net::Simulator sim;
  FramePool pool(4096, 16);
  proto::ReceiverConfig rc;
  rc.arena = &pool;
  proto::Receiver receiver(sim, rc);

  // k = 8 shares of 256 bytes: 8 * (1 + 256) = 2056 bytes, fits a slot.
  Rng rng(7);
  std::vector<std::uint8_t> secret(256);
  rng.fill(secret);
  const auto shares = sss::split(secret, 8, 8, rng);
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& s : shares) {
    proto::ShareFrame f;
    f.packet_id = 1;
    f.k = 8;
    f.share_index = s.index;
    f.payload = s.data;
    frames.push_back(proto::encode(f));
  }

  std::vector<std::uint8_t> delivered;
  receiver.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) {
    delivered = std::move(p);
  });

  // First share creates the partial (map node, order node, slot acquire
  // — the "warmup" for this packet).
  receiver.on_frame(std::span<const std::uint8_t>(frames[0]));
  ASSERT_EQ(receiver.stats().partials_in_arena, 1u);
  ASSERT_EQ(receiver.stats().partials_on_heap, 0u);
  ASSERT_EQ(pool.in_use(), 1u);

  g_allocs.store(0);
  g_count_allocs.store(true);
  for (int i = 1; i < 7; ++i) {  // appends only — completion is separate
    receiver.on_frame(std::span<const std::uint8_t>(frames[i]));
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "arena-backed reassembly appends must never touch the heap";
  EXPECT_EQ(receiver.pending_packets(), 1u);

  // The k-th share completes the packet and releases the slot.
  receiver.on_frame(std::span<const std::uint8_t>(frames[7]));
  EXPECT_EQ(delivered, secret);
  EXPECT_EQ(receiver.stats().packets_delivered, 1u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(Receiver, OversizePartialFallsBackToHeapAndStillDelivers) {
  // A partial that cannot fit one slot (k * (1 + share_size) too big)
  // degrades to heap vectors — a policy change, never a drop. Same for
  // pool exhaustion.
  net::Simulator sim;
  FramePool pool(512, 2);  // 3 * (1 + 256) = 771 > 512 -> heap
  proto::ReceiverConfig rc;
  rc.arena = &pool;
  proto::Receiver receiver(sim, rc);

  Rng rng(11);
  std::vector<std::uint8_t> secret(256);
  rng.fill(secret);
  const auto shares = sss::split(secret, 3, 3, rng);

  std::vector<std::uint8_t> delivered;
  receiver.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) {
    delivered = std::move(p);
  });
  for (const auto& s : shares) {
    proto::ShareFrame f;
    f.packet_id = 9;
    f.k = 3;
    f.share_index = s.index;
    f.payload = s.data;
    const auto bytes = proto::encode(f);
    receiver.on_frame(std::span<const std::uint8_t>(bytes));
  }
  EXPECT_EQ(delivered, secret);
  EXPECT_EQ(receiver.stats().partials_on_heap, 1u);
  EXPECT_EQ(receiver.stats().partials_in_arena, 0u);
  EXPECT_EQ(pool.in_use(), 0u);

  // Exhaustion: tiny pool with every slot taken -> heap fallback too.
  FrameRef hog1 = pool.acquire();
  FrameRef hog2 = pool.acquire();
  ASSERT_TRUE(hog1);
  ASSERT_TRUE(hog2);
  proto::ShareFrame small;
  small.packet_id = 10;
  small.k = 2;
  small.share_index = 1;
  small.payload = {1, 2, 3, 4};
  const auto bytes = proto::encode(small);
  receiver.on_frame(std::span<const std::uint8_t>(bytes));
  EXPECT_EQ(receiver.pending_packets(), 1u);
  EXPECT_EQ(receiver.stats().partials_on_heap, 2u);
}

// --------------------------------------------------------- live endpoint

LiveConfig clean_config(std::size_t n, double mbps, std::uint64_t seed) {
  LiveConfig cfg;
  for (std::size_t i = 0; i < n; ++i) {
    ChannelConfig ch;
    ch.rate_bps = mbps * 1e6;
    cfg.channels.push_back({ch, "ch" + std::to_string(i)});
  }
  cfg.mu = std::min(3.0, static_cast<double>(n));
  cfg.kappa = std::min(2.0, cfg.mu);
  cfg.seed = seed;
  return cfg;
}

/// Runs the endpoint in small slices until `done` or ~`budget_ms` of wall
/// time has elapsed.
template <typename Done>
void run_until(LiveEndpoint& ep, int budget_ms, Done done) {
  for (int spent = 0; spent < budget_ms && !done(); spent += 10) {
    ep.run_for(10'000'000);
  }
}

TEST(LiveEndpoint, PortBaseWraparoundIsRejectedAtSetup) {
  // Regression (ISSUE 7): channel i binds port_base + i with uint16_t
  // arithmetic, so a high base silently wrapped to a low port. The
  // endpoint must refuse the configuration up front instead.
  {
    LiveConfig cfg = clean_config(3, 100.0, 7);
    cfg.port_base = 65534;  // lanes at 65534, 65535, 65536 -> wrap
    EXPECT_THROW((void)LiveEndpoint(std::move(cfg)), PreconditionError);
  }
  {
    // Boundary: the LAST channel exactly at 65535 is fine.
    LiveConfig cfg = clean_config(3, 100.0, 7);
    cfg.port_base = 65533;  // lanes at 65533, 65534, 65535
    EXPECT_NO_THROW((void)LiveEndpoint(std::move(cfg)));
  }
  {
    // Reliability adds a feedback lane at port_base + n: a base that
    // fits the share channels alone must still be refused.
    LiveConfig cfg = clean_config(3, 100.0, 7);
    cfg.port_base = 65533;
    cfg.reliability.enabled = true;  // feedback lane at 65536 -> wrap
    EXPECT_THROW((void)LiveEndpoint(std::move(cfg)), PreconditionError);
  }
  {
    LiveConfig cfg = clean_config(3, 100.0, 7);
    cfg.port_base = 65532;  // shares 65532..65534, feedback 65535
    cfg.reliability.enabled = true;
    EXPECT_NO_THROW((void)LiveEndpoint(std::move(cfg)));
  }
}

TEST(LiveEndpoint, DeliversAllPacketsOverCleanLoopback) {
  LiveEndpoint ep(clean_config(3, 100.0, 11));
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> delivered;
  ep.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> p) {
    delivered[id] = std::move(p);
  });

  Rng rng(99);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> p(128);
    rng.fill(p);
    payloads.push_back(p);
    ASSERT_TRUE(ep.send(std::move(p)));
  }
  run_until(ep, 5000, [&] { return delivered.size() >= 50; });

  ASSERT_EQ(delivered.size(), 50u);
  // Packet ids are assigned in send order starting at 1.
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_TRUE(delivered.count(i + 1));
    EXPECT_EQ(delivered[i + 1], payloads[i]) << "packet " << i + 1;
  }
  EXPECT_EQ(ep.sender_stats().packets_sent, 50u);
  EXPECT_EQ(ep.receiver().stats().packets_delivered, 50u);
  EXPECT_EQ(ep.receiver().stats().malformed_frames, 0u);
  EXPECT_GT(ep.delay_seconds().count(), 0u);
}

TEST(LiveEndpoint, PollFallbackBackendDeliversToo) {
  LiveConfig cfg = clean_config(2, 100.0, 5);
  cfg.poller_backend = Poller::Backend::Poll;
  LiveEndpoint ep(std::move(cfg));
  ASSERT_EQ(ep.poller_backend(), Poller::Backend::Poll);
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(64, 0x5A)));
  }
  run_until(ep, 3000, [&] { return delivered >= 10; });
  EXPECT_EQ(delivered, 10u);
}

TEST(LiveEndpoint, InjectedEagainBackpressureDoesNotWedgeTheChannel) {
  LiveEndpoint ep(clean_config(3, 50.0, 21));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    ep.channel(i).tx_socket().inject_wouldblock(3);
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(100, 0x33)));
  }
  run_until(ep, 5000, [&] { return delivered >= 20; });
  EXPECT_EQ(delivered, 20u);
  std::uint64_t wouldblock = 0;
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    wouldblock += ep.channel(i).stats().send_wouldblock;
    EXPECT_FALSE(ep.channel(i).wants_write());
  }
  EXPECT_GT(wouldblock, 0u);
}

TEST(LiveEndpoint, KeyedReceiverSurvivesAMalformedDatagramStorm) {
  const crypto::SipHashKey good_key{1, 2,  3,  4,  5,  6,  7,  8,
                                    9, 10, 11, 12, 13, 14, 15, 16};
  const crypto::SipHashKey bad_key{16, 15, 14, 13, 12, 11, 10, 9,
                                   8,  7,  6,  5,  4,  3,  2,  1};
  LiveConfig cfg = clean_config(2, 100.0, 31);
  cfg.auth_key = good_key;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  // The storm: junk bytes and frames signed with the wrong key, fired at
  // every RX port while legitimate traffic flows.
  std::vector<UdpSocket> attackers;
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    UdpSocket s = UdpSocket::bound_loopback(0);
    s.connect_loopback(ep.channel(i).rx_port());
    attackers.push_back(std::move(s));
  }
  proto::ShareFrame forged;
  forged.packet_id = 7777;
  forged.k = 2;
  forged.share_index = 1;
  forged.payload = std::vector<std::uint8_t>(32, 0xEE);
  const auto forged_bytes = proto::encode(forged, &bad_key);
  Rng rng(1234);

  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(96, 0x11)));
    }
    for (auto& attacker : attackers) {
      std::vector<std::uint8_t> junk(48);
      rng.fill(junk);
      ASSERT_EQ(attacker.send(junk), UdpSocket::IoResult::Ok);
      ASSERT_EQ(attacker.send(forged_bytes), UdpSocket::IoResult::Ok);
    }
    ep.run_for(10'000'000);
  }
  run_until(ep, 5000, [&] { return delivered >= 30; });

  EXPECT_EQ(delivered, 30u);
  const auto& rs = ep.receiver().stats();
  EXPECT_EQ(rs.packets_delivered, 30u);
  EXPECT_GT(rs.malformed_frames, 0u) << "junk datagrams must be counted";
  EXPECT_GT(rs.auth_failures, 0u) << "wrong-key frames must be counted";
}

TEST(LiveEndpoint, SeededImpairedRunMatchesConfiguredLossAndDelay) {
  // Five impaired channels in the Section VI style: diverse rates, loss,
  // and delay. Measured per-channel loss must track the Bernoulli
  // parameter; end-to-end delay must be bounded by the channel delays.
  const double rates_mbps[5] = {20, 20, 40, 40, 80};
  const double losses[5] = {0.05, 0.10, 0.02, 0.08, 0.0};
  const std::int64_t delays_ns[5] = {2'000'000, 4'000'000, 6'000'000,
                                     8'000'000, 10'000'000};
  LiveConfig cfg;
  for (int i = 0; i < 5; ++i) {
    ChannelConfig ch;
    ch.rate_bps = rates_mbps[i] * 1e6;
    ch.loss = losses[i];
    ch.delay = delays_ns[i];
    cfg.channels.push_back({ch, "impaired" + std::to_string(i)});
  }
  cfg.kappa = 2.0;
  cfg.mu = 3.0;
  cfg.seed = 77;
  cfg.max_queue_packets = 1024;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });

  // Enough packets that even the least-preferred channel decides a few
  // hundred frames — at n >= 200 draws, the 0.06 tolerance sits beyond
  // 3 sigma of a Bernoulli(0.10) estimate.
  const int kPackets = 600;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(256, 0x77)));
  }
  // A few packets may legitimately lose > m - k shares, so do not wait
  // for a full house — settle for all-but-a-handful, then drain.
  run_until(ep, 6000,
            [&] { return delivered + 15 >= static_cast<std::size_t>(kPackets); });
  ep.run_for(30'000'000);  // let the last delayed shares land

  // k=2-of-m=3 over <=10% lossy channels: requiring >=90% end-to-end
  // delivery leaves a wide margin (the expected failure rate is <1%).
  EXPECT_GE(delivered, static_cast<std::size_t>(kPackets * 9 / 10));

  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    const auto& s = ep.channel(i).impair_stats();
    const std::uint64_t decided = s.frames_dropped_loss + s.frames_delivered;
    if (decided < 200) continue;  // too few samples to judge
    const double measured =
        static_cast<double>(s.frames_dropped_loss) / static_cast<double>(decided);
    EXPECT_NEAR(measured, losses[i], 0.06) << "channel " << i;
  }

  auto& delay = ep.delay_seconds();
  ASSERT_GT(delay.count(), 0u);
  // A packet needs k=2 shares, so its delay is at least the second-share
  // channel delay; the fastest pair is 2 ms + 4 ms -> >= ~2 ms. Loopback
  // scheduling noise only adds. Upper bound: slowest channel plus ample
  // pacing slack.
  EXPECT_GE(delay.percentile(10.0), 0.0015);
  EXPECT_LE(delay.median(), 0.060);
}

TEST(LiveEndpoint, TinyKernelBuffersDoNotWedgeTheLoop) {
  LiveConfig cfg = clean_config(2, 200.0, 41);
  cfg.max_queue_packets = 512;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    // The kernel clamps these to its floor (~2 KB), still small enough to
    // pressure a burst of coalesced datagrams.
    ep.channel(i).tx_socket().set_send_buffer(1);
    ep.channel(i).rx_socket().set_recv_buffer(1);
  }
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(512, 0x9C)));
  }
  run_until(ep, 3000, [&] {
    return ep.queued_packets() == 0 &&
           delivered >= static_cast<std::size_t>(kPackets) * 8 / 10;
  });
  ep.run_for(20'000'000);

  // Datagrams may be dropped at the tiny receive buffer (that is loss,
  // which the protocol absorbs); the loop itself must make progress and
  // the books must balance.
  EXPECT_EQ(ep.sender_stats().packets_sent,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(delivered, 0u);
  EXPECT_LE(delivered, static_cast<std::size_t>(kPackets));
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    EXPECT_EQ(ep.channel(i).stats().send_errors, 0u) << "channel " << i;
  }
}

TEST(LiveEndpoint, BatchFromEnvParsesAndFallsBack) {
  // Save the caller's value: under the CI leg that runs the whole suite
  // with MCSS_LIVE_BATCH=1, this test must not strip the override from
  // the tests that run after it.
  const char* prior = ::getenv("MCSS_LIVE_BATCH");
  const std::string saved = prior ? prior : "";
  ASSERT_EQ(::unsetenv("MCSS_LIVE_BATCH"), 0);
  EXPECT_EQ(batch_from_env(), 32u);
  EXPECT_EQ(batch_from_env(8), 8u);
  ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", "1", 1), 0);
  EXPECT_EQ(batch_from_env(), 1u) << "legacy escape hatch";
  ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", "64", 1), 0);
  EXPECT_EQ(batch_from_env(), 64u);
  ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", "0", 1), 0);
  EXPECT_EQ(batch_from_env(), 32u) << "zero is not a batch";
  ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", "garbage", 1), 0);
  EXPECT_EQ(batch_from_env(), 32u);
  ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", "4096", 1), 0);
  EXPECT_EQ(batch_from_env(), 32u) << "beyond the sane cap";
  if (prior) {
    ASSERT_EQ(::setenv("MCSS_LIVE_BATCH", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(::unsetenv("MCSS_LIVE_BATCH"), 0);
  }
}

TEST(LiveEndpoint, LegacyUnbatchedModeStillDelivers) {
  // send_batch = recv_batch = 1 is the pre-batching transport, kept as
  // the bench baseline and the MCSS_LIVE_BATCH=1 escape hatch.
  LiveConfig cfg = clean_config(2, 100.0, 17);
  cfg.send_batch = 1;
  cfg.recv_batch = 1;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(96, 0x2F)));
  }
  run_until(ep, 3000, [&] { return delivered >= 20; });
  EXPECT_EQ(delivered, 20u);
  EXPECT_EQ(ep.receiver().stats().malformed_frames, 0u);
}

TEST(LiveEndpoint, UringBackendDeliversOrFallsBackCleanly) {
  LiveConfig cfg = clean_config(2, 100.0, 19);
  cfg.poller_backend = Poller::Backend::Uring;
  LiveEndpoint ep(std::move(cfg));
  if (UringCore::supported()) {
    ASSERT_EQ(ep.poller_backend(), Poller::Backend::Uring);
  } else {
    ASSERT_NE(ep.poller_backend(), Poller::Backend::Uring)
        << "unsupported kernels must fall back, not wedge";
  }
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(80, 0x6B)));
  }
  run_until(ep, 3000, [&] { return delivered >= 20; });
  EXPECT_EQ(delivered, 20u);
}

TEST(LiveEndpoint, SyscallAndPoolAccountingIsPopulated) {
  LiveEndpoint ep(clean_config(2, 100.0, 23));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(128, 0x3C)));
  }
  run_until(ep, 3000, [&] { return delivered >= 30; });
  ASSERT_EQ(delivered, 30u);

  EXPECT_GT(ep.poller().wait_calls(), 0u);
  std::uint64_t socket_calls = 0;
  std::uint64_t datagrams = 0;
  for (std::size_t i = 0; i < ep.num_channels(); ++i) {
    socket_calls +=
        ep.channel(i).syscalls_send() + ep.channel(i).syscalls_recv();
    datagrams += ep.channel(i).stats().datagrams_sent;
  }
  EXPECT_GT(socket_calls, 0u);
  EXPECT_GT(datagrams, 0u);
  // Every TX frame was encoded straight into the shared arena.
  EXPECT_GT(ep.pool().stats().acquired, 0u);
  EXPECT_EQ(ep.pool().stats().exhausted, 0u) << "auto-sizing left slack";
  EXPECT_GT(ep.pool().stats().high_water, 0u);
}

TEST(LiveEndpoint, PortBaseFromEnvParsesAndFallsBack) {
  ASSERT_EQ(::unsetenv("MCSS_LIVE_PORT_BASE"), 0);
  EXPECT_EQ(port_base_from_env(0), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "23456", 1), 0);
  EXPECT_EQ(port_base_from_env(0), 23456);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "not-a-port", 1), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::setenv("MCSS_LIVE_PORT_BASE", "70000", 1), 0);
  EXPECT_EQ(port_base_from_env(4000), 4000);
  ASSERT_EQ(::unsetenv("MCSS_LIVE_PORT_BASE"), 0);
}

TEST(LiveEndpoint, ReliabilityRecoversLossesOverRealSockets) {
  // End-to-end ARQ over real UDP loopback: lossy forward channels with
  // zero share slack (kappa = mu = 2), a lossy feedback channel, and the
  // RetransmitManager repairing the difference.
  LiveConfig cfg = clean_config(3, 50.0, 61);
  for (auto& spec : cfg.channels) {
    spec.config.loss = 0.05;
  }
  cfg.mu = 2.0;
  cfg.kappa = 2.0;
  cfg.reliability.enabled = true;
  cfg.reliability.retransmit.max_retransmits = 6;
  cfg.reliability.retransmit.initial_rto_ns = 60'000'000;
  cfg.reliability.retransmit.min_rto_ns = 30'000'000;
  cfg.reliability.report_interval_ns = 10'000'000;
  cfg.reliability.feedback_channel.loss = 0.05;
  LiveEndpoint ep(std::move(cfg));
  ASSERT_NE(ep.retransmit_manager(), nullptr);
  ASSERT_NE(ep.feedback_channel(), nullptr);

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> delivered;
  ep.set_deliver([&](std::uint64_t id, std::vector<std::uint8_t> p) {
    delivered[id] = std::move(p);
  });
  Rng rng(7);
  const int count = 60;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < count; ++i) {
    std::vector<std::uint8_t> p(256);
    rng.fill(p);
    payloads.push_back(p);
    ASSERT_TRUE(ep.send(std::move(p)));
  }
  run_until(ep, 15000, [&] {
    return delivered.size() >= static_cast<std::size_t>(count);
  });

  // With 5% loss per share and no slack, ~10% of packets need a repair;
  // six retransmission rounds make residual failure negligible.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(delivered[static_cast<std::uint64_t>(i) + 1],
              payloads[static_cast<std::size_t>(i)]);
  }
  const auto& stats = ep.retransmit_manager()->stats();
  EXPECT_GT(ep.reports_sent(), 0u);
  EXPECT_GT(stats.reports_received, 0u);
  EXPECT_GT(stats.packets_acked, 0u);
  // Realized exposure can only widen relative to the initial dispatch.
  EXPECT_GE(stats.exposure_channel_sum, stats.initial_channel_sum);
}

TEST(LiveEndpoint, ReliabilityWorksOnThePollBackend) {
  // Same loop under the poll() fallback poller (the CI matrix runs the
  // whole suite under MCSS_LIVE_POLLER=poll as well; this pins the
  // combination even on the default matrix leg).
  LiveConfig cfg = clean_config(2, 50.0, 71);
  cfg.poller_backend = Poller::Backend::Poll;
  cfg.reliability.enabled = true;
  cfg.reliability.report_interval_ns = 10'000'000;
  LiveEndpoint ep(std::move(cfg));
  std::size_t delivered = 0;
  ep.set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ep.send(std::vector<std::uint8_t>(64, 0x5A)));
  }
  run_until(ep, 5000, [&] {
    return delivered >= 20 &&
           ep.retransmit_manager()->stats().reports_received > 0;
  });
  EXPECT_EQ(delivered, 20u);
  EXPECT_GT(ep.reports_sent(), 0u);
  EXPECT_GT(ep.retransmit_manager()->stats().reports_received, 0u);
  EXPECT_EQ(ep.poller_backend(), Poller::Backend::Poll);
}

}  // namespace
}  // namespace mcss::transport
