// Tests for the share wire format and the (kappa, mu) dither.
#include <gtest/gtest.h>

#include <vector>

#include "protocol/dither.hpp"
#include "protocol/micss.hpp"
#include "protocol/wire.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {
namespace {

// ---------------------------------------------------------------- wire

TEST(Wire, RoundtripBasic) {
  ShareFrame f;
  f.packet_id = 0x0123456789ABCDEFULL;
  f.k = 3;
  f.share_index = 7;
  f.payload = {1, 2, 3, 4, 5};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + 5);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Wire, RoundtripEmptyPayload) {
  ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Wire, RoundtripMaxPayload) {
  ShareFrame f;
  f.packet_id = 42;
  f.k = 255;
  f.share_index = 255;
  f.payload.assign(kMaxPayload, 0x5A);
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload.size(), kMaxPayload);
}

TEST(Wire, EncodeRejectsInvalid) {
  ShareFrame f;
  f.k = 0;
  f.share_index = 1;
  EXPECT_THROW((void)encode(f), PreconditionError);
  f.k = 1;
  f.share_index = 0;
  EXPECT_THROW((void)encode(f), PreconditionError);
}

TEST(Wire, DecodeRejectsMalformed) {
  ShareFrame f;
  f.packet_id = 7;
  f.k = 2;
  f.share_index = 3;
  f.payload = {9, 9, 9};
  auto good = encode(f);

  // Too short.
  EXPECT_FALSE(decode(std::vector<std::uint8_t>(kHeaderSize - 1, 0)).has_value());
  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode(bad).has_value());
  // Bad version.
  bad = good;
  bad[2] = 99;
  EXPECT_FALSE(decode(bad).has_value());
  // Zero threshold.
  bad = good;
  bad[3] = 0;
  EXPECT_FALSE(decode(bad).has_value());
  // Zero share index.
  bad = good;
  bad[12] = 0;
  EXPECT_FALSE(decode(bad).has_value());
  // Unknown flags.
  bad = good;
  bad[13] = 1;
  EXPECT_FALSE(decode(bad).has_value());
  // Length mismatch: truncated payload.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(decode(bad).has_value());
  // Length mismatch: trailing junk.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode(bad).has_value());
  // The untouched frame still parses.
  EXPECT_TRUE(decode(good).has_value());
}

TEST(Wire, AckRoundtrip) {
  const AckFrame ack{0xDEADBEEFCAFEF00DULL, 5};
  const auto back = decode_ack(encode_ack(ack));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->packet_id, ack.packet_id);
  EXPECT_EQ(back->share_index, ack.share_index);
}

TEST(Wire, AckRejectsMalformed) {
  const auto good = encode_ack({1, 1});
  EXPECT_FALSE(decode_ack(std::vector<std::uint8_t>(5, 0)).has_value());
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_ack(bad).has_value());
  bad = good;
  bad[10] = 0;  // zero index
  EXPECT_FALSE(decode_ack(bad).has_value());
  // A data frame is not an ack.
  ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  EXPECT_FALSE(decode_ack(encode(f)).has_value());
}

// ---------------------------------------------------------------- dither

class DitherGridTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DitherGridTest, AveragesConvergeAndInvariantsHold) {
  const auto [kappa, mu] = GetParam();
  KappaMuDither dither(kappa, mu, 5);
  double sum_k = 0, sum_m = 0;
  const int symbols = 100000;
  for (int i = 0; i < symbols; ++i) {
    const auto [k, m] = dither.next();
    ASSERT_GE(k, 1);
    ASSERT_LE(k, m);  // every individual symbol is a valid threshold scheme
    ASSERT_LE(m, 5);
    sum_k += k;
    sum_m += m;
  }
  EXPECT_NEAR(sum_k / symbols, kappa, 1e-4);
  EXPECT_NEAR(sum_m / symbols, mu, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    KappaMuGrid, DitherGridTest,
    ::testing::ValuesIn([] {
      std::vector<std::pair<double, double>> grid;
      for (double kappa = 1.0; kappa <= 5.0; kappa += 0.7) {
        for (double mu = kappa; mu <= 5.0; mu += 0.7) grid.emplace_back(kappa, mu);
      }
      grid.emplace_back(2.9, 3.2);  // frac(kappa) > frac(mu)
      grid.emplace_back(2.5, 2.7);
      grid.emplace_back(1.0, 5.0);
      grid.emplace_back(5.0, 5.0);
      grid.emplace_back(3.4, 3.4);  // the paper's anomalous neighborhood
      return grid;
    }()));

TEST(Dither, IntegerParametersAreConstant) {
  KappaMuDither dither(2.0, 4.0, 5);
  for (int i = 0; i < 100; ++i) {
    const auto [k, m] = dither.next();
    EXPECT_EQ(k, 2);
    EXPECT_EQ(m, 4);
  }
}

TEST(Dither, ShortRunConvergence) {
  // Largest-remainder dithering must be accurate even over tens of
  // symbols, not just asymptotically.
  KappaMuDither dither(1.5, 3.5, 5);
  double sum_k = 0, sum_m = 0;
  for (int i = 0; i < 40; ++i) {
    const auto [k, m] = dither.next();
    sum_k += k;
    sum_m += m;
  }
  EXPECT_NEAR(sum_k / 40, 1.5, 0.05);
  EXPECT_NEAR(sum_m / 40, 3.5, 0.05);
}

TEST(Dither, RejectsInvalidParameters) {
  EXPECT_THROW(KappaMuDither(0.5, 2.0, 5), PreconditionError);
  EXPECT_THROW(KappaMuDither(3.0, 2.0, 5), PreconditionError);
  EXPECT_THROW(KappaMuDither(2.0, 5.5, 5), PreconditionError);
}

TEST(Dither, IsDeterministic) {
  KappaMuDither a(2.3, 3.7, 5), b(2.3, 3.7, 5);
  for (int i = 0; i < 1000; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    EXPECT_EQ(pa.k, pb.k);
    EXPECT_EQ(pa.m, pb.m);
  }
}

}  // namespace
}  // namespace mcss::proto
