// Tests for the share wire format and the (kappa, mu) dither.
#include <gtest/gtest.h>

#include <vector>

#include "protocol/dither.hpp"
#include "protocol/micss.hpp"
#include "protocol/wire.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {
namespace {

// ---------------------------------------------------------------- wire

TEST(Wire, RoundtripBasic) {
  ShareFrame f;
  f.packet_id = 0x0123456789ABCDEFULL;
  f.k = 3;
  f.share_index = 7;
  f.payload = {1, 2, 3, 4, 5};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + 5);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Wire, RoundtripEmptyPayload) {
  ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Wire, RoundtripMaxPayload) {
  ShareFrame f;
  f.packet_id = 42;
  f.k = 255;
  f.share_index = 255;
  f.payload.assign(kMaxPayload, 0x5A);
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload.size(), kMaxPayload);
}

TEST(Wire, EncodeRejectsInvalid) {
  ShareFrame f;
  f.k = 0;
  f.share_index = 1;
  EXPECT_THROW((void)encode(f), PreconditionError);
  f.k = 1;
  f.share_index = 0;
  EXPECT_THROW((void)encode(f), PreconditionError);
}

TEST(Wire, DecodeRejectsMalformed) {
  ShareFrame f;
  f.packet_id = 7;
  f.k = 2;
  f.share_index = 3;
  f.payload = {9, 9, 9};
  auto good = encode(f);

  // Too short.
  EXPECT_FALSE(decode(std::vector<std::uint8_t>(kHeaderSize - 1, 0)).has_value());
  // Bad magic.
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode(bad).has_value());
  // Bad version.
  bad = good;
  bad[2] = 99;
  EXPECT_FALSE(decode(bad).has_value());
  // Zero threshold.
  bad = good;
  bad[3] = 0;
  EXPECT_FALSE(decode(bad).has_value());
  // Zero share index.
  bad = good;
  bad[12] = 0;
  EXPECT_FALSE(decode(bad).has_value());
  // Unknown flags (0x01 = authenticated, 0x02 = generation, and
  // 0x04 = connection id are defined; 0x08 is the first reserved bit).
  bad = good;
  bad[13] = 0x08;
  EXPECT_FALSE(decode(bad).has_value());
  // Connection flag set without the 4 id bytes: truncated frame.
  bad = good;
  bad[13] = kFlagConnectionId;
  EXPECT_FALSE(decode(bad).has_value());
  // Length mismatch: truncated payload.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(decode(bad).has_value());
  // Length mismatch: trailing junk.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode(bad).has_value());
  // The untouched frame still parses.
  EXPECT_TRUE(decode(good).has_value());
}

ShareFrame sample_frame(std::uint64_t id, std::uint8_t index,
                        std::size_t payload_len) {
  ShareFrame f;
  f.packet_id = id;
  f.k = 2;
  f.share_index = index;
  f.payload.assign(payload_len, static_cast<std::uint8_t>(0xA0 + index));
  return f;
}

// ------------------------------------------------------------- generation

TEST(Wire, HeaderThenSealMatchesEncode) {
  // The sender's split-into-slot path writes the header first, fills the
  // payload in place, and seals; the bytes must match one-shot encode()
  // in both keyed and unkeyed modes.
  ShareFrame f;
  f.packet_id = 0xFEEDFACECAFEULL;
  f.k = 2;
  f.share_index = 3;
  f.generation = 5;
  f.payload = {9, 8, 7, 6};
  const crypto::SipHashKey key{1, 2,  3,  4,  5,  6,  7,  8,
                               9, 10, 11, 12, 13, 14, 15, 16};
  for (const bool keyed : {false, true}) {
    const crypto::SipHashKey* kp = keyed ? &key : nullptr;
    const auto expected = encode(f, kp);

    const FrameMeta meta{f.packet_id, f.k, f.share_index, f.generation};
    ASSERT_EQ(encoded_size(f.payload.size(), f.generation, keyed),
              expected.size());
    std::vector<std::uint8_t> got(expected.size());
    const std::size_t off =
        encode_header_into(meta, f.payload.size(), got, keyed);
    std::copy(f.payload.begin(), f.payload.end(),
              got.begin() + static_cast<std::ptrdiff_t>(off));
    if (keyed) seal_frame(got, key);
    EXPECT_EQ(got, expected) << (keyed ? "keyed" : "unkeyed");
  }
}

TEST(Wire, GenerationRoundtrip) {
  ShareFrame f;
  f.packet_id = 99;
  f.k = 3;
  f.share_index = 4;
  f.generation = 7;
  f.payload = {1, 2, 3};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + 1 + 3);  // extension byte present
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
  EXPECT_EQ(back->generation, 7);

  // Authenticated retransmissions: tag covers the extension byte too.
  const crypto::SipHashKey key{1, 2,  3,  4,  5,  6,  7,  8,
                               9, 10, 11, 12, 13, 14, 15, 16};
  auto tagged = encode(f, &key);
  const auto back2 = decode(tagged, &key);
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(*back2, f);
  tagged[kHeaderSize] ^= 0x01;  // flip the generation byte
  EXPECT_FALSE(decode(tagged, &key).has_value());
}

TEST(Wire, GenerationZeroIsByteIdenticalToLegacyEncoding) {
  // Original transmissions must not change on the wire just because the
  // reliability layer exists: generation 0 omits the extension byte.
  ShareFrame f;
  f.packet_id = 5;
  f.k = 2;
  f.share_index = 1;
  f.payload = {0xAA, 0xBB};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + 2);
  EXPECT_EQ(bytes[13], 0);  // no flag bits
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->generation, 0);
}

TEST(Wire, NonCanonicalGenerationZeroRejected) {
  // The flag set with generation byte 0 would give one frame two
  // encodings; the canonical form omits the byte, the other is refused.
  ShareFrame f;
  f.packet_id = 5;
  f.k = 2;
  f.share_index = 1;
  f.generation = 1;
  f.payload = {0xAA};
  auto bytes = encode(f);
  ASSERT_EQ(bytes[13], kFlagGeneration);
  bytes[kHeaderSize] = 0;  // generation byte -> 0, flag still set
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode(bytes, nullptr, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::Malformed);
}

// ------------------------------------------------------------ connection id

TEST(Wire, ConnectionIdRoundtrip) {
  ShareFrame f;
  f.packet_id = 77;
  f.k = 3;
  f.share_index = 2;
  f.connection_id = 0xDEADBEEF;
  f.payload = {4, 5, 6};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + kConnectionIdSize + 3);
  EXPECT_EQ(bytes[13], kFlagConnectionId);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);

  // Generation + connection id together: generation byte first, then the
  // 4 id bytes, per the header layout.
  f.generation = 9;
  const auto both = encode(f);
  EXPECT_EQ(both.size(), kHeaderSize + 1 + kConnectionIdSize + 3);
  EXPECT_EQ(both[13], kFlagGeneration | kFlagConnectionId);
  EXPECT_EQ(both[kHeaderSize], 9);
  const auto back2 = decode(both);
  ASSERT_TRUE(back2.has_value());
  EXPECT_EQ(*back2, f);

  // Authenticated: the tag covers the connection id, so flipping one of
  // its bytes must fail auth (a forged demux would misroute shares).
  const crypto::SipHashKey key{1, 2,  3,  4,  5,  6,  7,  8,
                               9, 10, 11, 12, 13, 14, 15, 16};
  auto tagged = encode(f, &key);
  ASSERT_TRUE(decode(tagged, &key).has_value());
  tagged[kHeaderSize + 1] ^= 0x01;  // first connection-id byte
  EXPECT_FALSE(decode(tagged, &key).has_value());
}

TEST(Wire, ConnectionZeroIsByteIdenticalToLegacyEncoding) {
  // Single-flow frames must not change on the wire just because the
  // session layer exists: connection 0 omits the field.
  ShareFrame f;
  f.packet_id = 5;
  f.k = 2;
  f.share_index = 1;
  f.payload = {0xAA, 0xBB};
  const auto bytes = encode(f);
  EXPECT_EQ(bytes.size(), kHeaderSize + 2);
  EXPECT_EQ(bytes[13], 0);  // no flag bits
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->connection_id, 0u);
}

TEST(Wire, NonCanonicalConnectionZeroRejected) {
  // The flag set with a zero id would give one frame two encodings; the
  // canonical form omits the field, the other is refused.
  ShareFrame f;
  f.packet_id = 5;
  f.k = 2;
  f.share_index = 1;
  f.connection_id = 1;
  f.payload = {0xAA};
  auto bytes = encode(f);
  ASSERT_EQ(bytes[13], kFlagConnectionId);
  for (std::size_t i = 0; i < kConnectionIdSize; ++i) {
    bytes[kHeaderSize + i] = 0;  // id -> 0, flag still set
  }
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode(bytes, nullptr, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::Malformed);
}

TEST(Wire, FrameViewDecodesInPlace) {
  // The zero-copy path: the view's payload must be a span into the
  // caller's buffer, not a copy, with every header field intact.
  ShareFrame f;
  f.packet_id = 1234;
  f.k = 4;
  f.share_index = 6;
  f.generation = 2;
  f.connection_id = 42;
  f.payload = {10, 20, 30, 40, 50};
  const crypto::SipHashKey key{1, 2,  3,  4,  5,  6,  7,  8,
                               9, 10, 11, 12, 13, 14, 15, 16};
  for (const bool keyed : {false, true}) {
    const crypto::SipHashKey* kp = keyed ? &key : nullptr;
    const auto bytes = encode(f, kp);
    const auto view = decode_view(bytes, kp);
    ASSERT_TRUE(view.has_value()) << (keyed ? "keyed" : "unkeyed");
    EXPECT_EQ(view->packet_id, f.packet_id);
    EXPECT_EQ(view->k, f.k);
    EXPECT_EQ(view->share_index, f.share_index);
    EXPECT_EQ(view->generation, f.generation);
    EXPECT_EQ(view->connection_id, f.connection_id);
    ASSERT_EQ(view->payload.size(), f.payload.size());
    EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                           f.payload.begin()));
    // Zero-copy: the span aliases the encode buffer.
    EXPECT_GE(view->payload.data(), bytes.data());
    EXPECT_LE(view->payload.data() + view->payload.size(),
              bytes.data() + bytes.size());
  }
}

TEST(WirePrefix, ConnectionFramesConcatenate) {
  // Coalesced datagrams interleave flows: prefix parsing must walk
  // mixed-flow frames (cid, no cid, different cid) one at a time.
  auto f1 = sample_frame(30, 1, 4);
  f1.connection_id = 7;
  auto f2 = sample_frame(31, 2, 4);  // single-flow frame behind it
  auto f3 = sample_frame(32, 1, 4);
  f3.connection_id = 1000000;
  std::vector<std::uint8_t> buf = encode(f1);
  for (const ShareFrame* f : {&f2, &f3}) {
    const auto b = encode(*f);
    buf.insert(buf.end(), b.begin(), b.end());
  }

  std::span<const std::uint8_t> rest(buf);
  for (const ShareFrame* want : {&f1, &f2, &f3}) {
    std::size_t consumed = 0;
    const auto parsed = decode_prefix(rest, &consumed);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, *want);
    rest = rest.subspan(consumed);
  }
  EXPECT_TRUE(rest.empty());
}

TEST(WirePrefix, GenerationFramesConcatenate) {
  const auto f1 = [] {
    auto f = sample_frame(20, 1, 4);
    f.generation = 2;
    return f;
  }();
  const auto f2 = sample_frame(21, 2, 4);  // generation 0 behind it
  std::vector<std::uint8_t> buf = encode(f1);
  const std::size_t first_size = buf.size();
  const auto b2 = encode(f2);
  buf.insert(buf.end(), b2.begin(), b2.end());

  std::size_t consumed = 0;
  auto parsed = decode_prefix(buf, &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f1);
  EXPECT_EQ(consumed, first_size);
  parsed = decode_prefix(std::span(buf).subspan(consumed), &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f2);
}

// ------------------------------------------------------------ decode_prefix

TEST(WirePrefix, ConcatenatedFramesParseOneAtATime) {
  // Regression: a recv that coalesces two frames used to fail strict
  // decode() and drop both. decode_prefix walks the buffer frame by
  // frame.
  const auto f1 = sample_frame(10, 1, 5);
  const auto f2 = sample_frame(11, 2, 0);  // empty payload frame
  const auto f3 = sample_frame(12, 3, 300);
  std::vector<std::uint8_t> buf = encode(f1);
  const auto b2 = encode(f2);
  const auto b3 = encode(f3);
  buf.insert(buf.end(), b2.begin(), b2.end());
  buf.insert(buf.end(), b3.begin(), b3.end());

  std::span<const std::uint8_t> rest(buf);
  std::vector<ShareFrame> parsed;
  while (!rest.empty()) {
    std::size_t consumed = 0;
    DecodeStatus status = DecodeStatus::Ok;
    auto f = decode_prefix(rest, &consumed, nullptr, &status);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(status, DecodeStatus::Ok);
    ASSERT_GT(consumed, 0u);
    parsed.push_back(std::move(*f));
    rest = rest.subspan(consumed);
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], f1);
  EXPECT_EQ(parsed[1], f2);
  EXPECT_EQ(parsed[2], f3);
}

TEST(WirePrefix, TrailingJunkDoesNotPoisonTheFrame) {
  const auto f = sample_frame(77, 9, 16);
  auto buf = encode(f);
  const std::size_t frame_size = buf.size();
  buf.insert(buf.end(), {0xDE, 0xAD, 0xBE});  // padding / torn next frame

  std::size_t consumed = 0;
  const auto parsed = decode_prefix(buf, &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
  EXPECT_EQ(consumed, frame_size);

  // Strict decode still refuses the same buffer (delegation preserved
  // the exact-size contract).
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode(buf, nullptr, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::Malformed);
}

TEST(WirePrefix, AuthenticatedFramesConcatenate) {
  const crypto::SipHashKey key{1, 2,  3,  4,  5,  6,  7,  8,
                               9, 10, 11, 12, 13, 14, 15, 16};
  const auto f1 = sample_frame(1, 1, 8);
  const auto f2 = sample_frame(2, 2, 8);
  std::vector<std::uint8_t> buf = encode(f1, &key);
  const std::size_t first_size = buf.size();
  const auto b2 = encode(f2, &key);
  buf.insert(buf.end(), b2.begin(), b2.end());

  std::size_t consumed = 0;
  DecodeStatus status = DecodeStatus::Ok;
  auto parsed = decode_prefix(buf, &consumed, &key, &status);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f1);
  EXPECT_EQ(consumed, first_size);  // tag bytes counted as consumed
  EXPECT_EQ(status, DecodeStatus::Ok);

  // The tag covers only the first frame, so the concatenation must not
  // break authentication; and a flipped bit inside the first frame's
  // extent still fails even with a healthy second frame behind it.
  auto tampered = buf;
  tampered[kHeaderSize] ^= 0x01;
  EXPECT_FALSE(decode_prefix(tampered, &consumed, &key, &status).has_value());
  EXPECT_EQ(status, DecodeStatus::AuthFailed);
  EXPECT_EQ(consumed, 0u);
}

TEST(WirePrefix, MalformedHeadConsumesNothing) {
  std::vector<std::uint8_t> junk(64, 0x55);
  std::size_t consumed = 99;
  DecodeStatus status = DecodeStatus::Ok;
  EXPECT_FALSE(decode_prefix(junk, &consumed, nullptr, &status).has_value());
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(status, DecodeStatus::Malformed);

  // A truncated frame (header promises more payload than the buffer
  // holds) is malformed, not a partial success.
  auto truncated = encode(sample_frame(5, 5, 100));
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(decode_prefix(truncated, &consumed, nullptr, &status).has_value());
  EXPECT_EQ(consumed, 0u);
}

TEST(Wire, AckRoundtrip) {
  const AckFrame ack{0xDEADBEEFCAFEF00DULL, 5};
  const auto back = decode_ack(encode_ack(ack));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->packet_id, ack.packet_id);
  EXPECT_EQ(back->share_index, ack.share_index);
}

TEST(Wire, AckRejectsMalformed) {
  const auto good = encode_ack({1, 1});
  EXPECT_FALSE(decode_ack(std::vector<std::uint8_t>(5, 0)).has_value());
  auto bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_ack(bad).has_value());
  bad = good;
  bad[10] = 0;  // zero index
  EXPECT_FALSE(decode_ack(bad).has_value());
  // A data frame is not an ack.
  ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  EXPECT_FALSE(decode_ack(encode(f)).has_value());
}

// ---------------------------------------------------------------- dither

class DitherGridTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DitherGridTest, AveragesConvergeAndInvariantsHold) {
  const auto [kappa, mu] = GetParam();
  KappaMuDither dither(kappa, mu, 5);
  double sum_k = 0, sum_m = 0;
  const int symbols = 100000;
  for (int i = 0; i < symbols; ++i) {
    const auto [k, m] = dither.next();
    ASSERT_GE(k, 1);
    ASSERT_LE(k, m);  // every individual symbol is a valid threshold scheme
    ASSERT_LE(m, 5);
    sum_k += k;
    sum_m += m;
  }
  EXPECT_NEAR(sum_k / symbols, kappa, 1e-4);
  EXPECT_NEAR(sum_m / symbols, mu, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    KappaMuGrid, DitherGridTest,
    ::testing::ValuesIn([] {
      std::vector<std::pair<double, double>> grid;
      for (double kappa = 1.0; kappa <= 5.0; kappa += 0.7) {
        for (double mu = kappa; mu <= 5.0; mu += 0.7) grid.emplace_back(kappa, mu);
      }
      grid.emplace_back(2.9, 3.2);  // frac(kappa) > frac(mu)
      grid.emplace_back(2.5, 2.7);
      grid.emplace_back(1.0, 5.0);
      grid.emplace_back(5.0, 5.0);
      grid.emplace_back(3.4, 3.4);  // the paper's anomalous neighborhood
      return grid;
    }()));

TEST(Dither, IntegerParametersAreConstant) {
  KappaMuDither dither(2.0, 4.0, 5);
  for (int i = 0; i < 100; ++i) {
    const auto [k, m] = dither.next();
    EXPECT_EQ(k, 2);
    EXPECT_EQ(m, 4);
  }
}

TEST(Dither, ShortRunConvergence) {
  // Largest-remainder dithering must be accurate even over tens of
  // symbols, not just asymptotically.
  KappaMuDither dither(1.5, 3.5, 5);
  double sum_k = 0, sum_m = 0;
  for (int i = 0; i < 40; ++i) {
    const auto [k, m] = dither.next();
    sum_k += k;
    sum_m += m;
  }
  EXPECT_NEAR(sum_k / 40, 1.5, 0.05);
  EXPECT_NEAR(sum_m / 40, 3.5, 0.05);
}

TEST(Dither, RejectsInvalidParameters) {
  EXPECT_THROW(KappaMuDither(0.5, 2.0, 5), PreconditionError);
  EXPECT_THROW(KappaMuDither(3.0, 2.0, 5), PreconditionError);
  EXPECT_THROW(KappaMuDither(2.0, 5.5, 5), PreconditionError);
}

TEST(Dither, IsDeterministic) {
  KappaMuDither a(2.3, 3.7, 5), b(2.3, 3.7, 5);
  for (int i = 0; i < 1000; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    EXPECT_EQ(pa.k, pb.k);
    EXPECT_EQ(pa.m, pb.m);
  }
}

}  // namespace
}  // namespace mcss::proto
