// Tests for the DIBS-style IP tunnel: codec, flow demultiplexing,
// per-flow ordering, gap timeouts, and end-to-end over jittery channels.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "protocol/tunnel.hpp"
#include "util/rng.hpp"

namespace mcss::proto {
namespace {

IpDatagram make_datagram(std::uint8_t proto, std::uint8_t flow_tag,
                         std::uint8_t marker) {
  IpDatagram dg;
  dg.src = {10, 0, 0, flow_tag};
  dg.dst = {10, 0, 1, 1};
  dg.protocol = proto;
  dg.payload = {marker, 0xAB, 0xCD};
  return dg;
}

// ---------------------------------------------------------------- codec

TEST(TunnelCodec, Roundtrip) {
  const auto dg = make_datagram(6, 1, 42);
  const auto bytes = encode_datagram(dg, 0xDEADBEEF);
  const auto back = decode_datagram(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->datagram, dg);
  EXPECT_EQ(back->seq, 0xDEADBEEFu);
}

TEST(TunnelCodec, EmptyPayload) {
  IpDatagram dg = make_datagram(17, 2, 0);
  dg.payload.clear();
  const auto back = decode_datagram(encode_datagram(dg, 7));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->datagram.payload.empty());
}

TEST(TunnelCodec, RejectsMalformed) {
  const auto good = encode_datagram(make_datagram(6, 1, 1), 0);
  EXPECT_FALSE(decode_datagram(std::vector<std::uint8_t>(4, 0)).has_value());
  auto bad = good;
  bad[0] = 9;  // version
  EXPECT_FALSE(decode_datagram(bad).has_value());
  bad = good;
  bad.pop_back();  // length mismatch
  EXPECT_FALSE(decode_datagram(bad).has_value());
}

// ---------------------------------------------------------------- egress

struct EgressFixture {
  net::Simulator sim;
  std::vector<IpDatagram> delivered;
  TunnelEgress egress{sim, {}, [this](const IpDatagram& dg) {
                        delivered.push_back(dg);
                      }};

  void feed(const IpDatagram& dg, std::uint32_t seq) {
    egress.on_packet(encode_datagram(dg, seq));
  }
};

TEST(TunnelEgress, UnorderedProtocolDeliversImmediately) {
  EgressFixture f;
  // UDP-like: sequence numbers are ignored, arrival order preserved.
  f.feed(make_datagram(17, 1, 2), 2);
  f.feed(make_datagram(17, 1, 0), 0);
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0].payload[0], 2);
  EXPECT_EQ(f.delivered[1].payload[0], 0);
}

TEST(TunnelEgress, OrderedProtocolReordersWithinFlow) {
  EgressFixture f;
  f.feed(make_datagram(6, 1, 0), 0);
  f.feed(make_datagram(6, 1, 2), 2);  // early: held
  EXPECT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.egress.buffered(), 1u);
  f.feed(make_datagram(6, 1, 1), 1);  // fills the gap: 1 then 2 release
  ASSERT_EQ(f.delivered.size(), 3u);
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.delivered[i].payload[0], i);
  }
  EXPECT_EQ(f.egress.stats().reordered_held, 1u);
}

TEST(TunnelEgress, GapTimeoutSkipsMissingDatagram) {
  EgressFixture f;
  f.feed(make_datagram(6, 1, 0), 0);
  f.feed(make_datagram(6, 1, 2), 2);  // seq 1 lost forever
  f.feed(make_datagram(6, 1, 3), 3);
  EXPECT_EQ(f.delivered.size(), 1u);
  f.sim.run();  // gap timer fires
  ASSERT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.delivered[1].payload[0], 2);
  EXPECT_EQ(f.delivered[2].payload[0], 3);
  EXPECT_EQ(f.egress.stats().gaps_skipped, 1u);
  EXPECT_EQ(f.egress.buffered(), 0u);
}

TEST(TunnelEgress, LateArrivalBeforeTimeoutCancelsSkip) {
  EgressFixture f;
  f.feed(make_datagram(6, 1, 0), 0);
  f.feed(make_datagram(6, 1, 2), 2);
  // Deliver the missing datagram before the timer fires.
  f.sim.schedule_at(net::from_millis(50),
                    [&] { f.feed(make_datagram(6, 1, 1), 1); });
  f.sim.run();
  ASSERT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.egress.stats().gaps_skipped, 0u);
}

TEST(TunnelEgress, FlowsAreIsolated) {
  EgressFixture f;
  // Flow A has a hole; flow B keeps flowing.
  f.feed(make_datagram(6, 1, 0), 0);
  f.feed(make_datagram(6, 1, 5), 5);  // A stalls
  f.feed(make_datagram(6, 2, 0), 0);
  f.feed(make_datagram(6, 2, 1), 1);
  EXPECT_EQ(f.delivered.size(), 3u);  // A:0 plus both of B
}

TEST(TunnelEgress, DuplicatesAreDropped) {
  EgressFixture f;
  f.feed(make_datagram(6, 1, 0), 0);
  f.feed(make_datagram(6, 1, 0), 0);  // late duplicate of released seq
  f.feed(make_datagram(6, 1, 2), 2);
  f.feed(make_datagram(6, 1, 2), 2);  // duplicate of a held datagram
  EXPECT_EQ(f.egress.stats().duplicates_dropped, 2u);
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(TunnelEgress, BufferOverflowSkipsImmediately) {
  net::Simulator sim;
  EgressConfig cfg;
  cfg.max_buffered = 4;
  std::vector<IpDatagram> delivered;
  TunnelEgress egress(sim, cfg,
                      [&](const IpDatagram& dg) { delivered.push_back(dg); });
  // seq 0 missing; 5 early arrivals overflow the 4-slot buffer.
  for (std::uint32_t seq = 1; seq <= 5; ++seq) {
    egress.on_packet(encode_datagram(
        make_datagram(6, 1, static_cast<std::uint8_t>(seq)), seq));
  }
  EXPECT_EQ(delivered.size(), 5u);  // released without waiting for timers
  EXPECT_GE(egress.stats().gaps_skipped, 1u);
}

TEST(TunnelEgress, MalformedPacketsCounted) {
  EgressFixture f;
  f.egress.on_packet(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(f.egress.stats().malformed, 1u);
}

TEST(TunnelEgress, SequenceNumbersWrapWithoutStalling) {
  // Regression: plain uint32_t ordering treated every post-wrap sequence
  // number as "before" the pre-wrap next_seq, so seq 0 after seq
  // 0xFFFFFFFF was dropped as a duplicate and the flow stalled behind
  // the gap timeout forever. Serial comparison must carry the flow
  // seamlessly across 2^32.
  EgressFixture f;
  const FlowKey key{{10, 0, 0, 1}, {10, 0, 1, 1}, 6};
  f.egress.prime_flow(key, 0xFFFFFFFEu);

  f.feed(make_datagram(6, 1, 1), 0xFFFFFFFFu);  // early: held (FFFE missing)
  f.feed(make_datagram(6, 1, 3), 0x00000001u);  // early, post-wrap: held
  f.feed(make_datagram(6, 1, 2), 0x00000000u);  // early, the wrap itself
  EXPECT_EQ(f.delivered.size(), 0u);
  EXPECT_EQ(f.egress.buffered(), 3u);

  f.feed(make_datagram(6, 1, 0), 0xFFFFFFFEu);  // fills the gap
  ASSERT_EQ(f.delivered.size(), 4u);
  for (std::uint8_t i = 0; i < 4; ++i) {
    EXPECT_EQ(f.delivered[i].payload[0], i);  // FFFE, FFFF, 0, 1 in order
  }
  EXPECT_EQ(f.egress.stats().gaps_skipped, 0u);
  EXPECT_EQ(f.egress.buffered(), 0u);

  // Late duplicates from before the wrap are still recognized as old.
  f.feed(make_datagram(6, 1, 0), 0xFFFFFFFEu);
  EXPECT_EQ(f.egress.stats().duplicates_dropped, 1u);
  EXPECT_EQ(f.delivered.size(), 4u);

  // And the flow keeps going on the far side of the wrap.
  f.feed(make_datagram(6, 1, 4), 0x00000002u);
  EXPECT_EQ(f.delivered.size(), 5u);
}

TEST(TunnelEgress, GapTimeoutSkipsAcrossTheWrap) {
  // A real loss exactly at the wrap boundary: the gap timer must skip it
  // and resume with the post-wrap sequence numbers.
  EgressFixture f;
  const FlowKey key{{10, 0, 0, 1}, {10, 0, 1, 1}, 6};
  f.egress.prime_flow(key, 0xFFFFFFFFu);

  f.feed(make_datagram(6, 1, 1), 0x00000000u);  // seq FFFFFFFF lost forever
  f.feed(make_datagram(6, 1, 2), 0x00000001u);
  EXPECT_EQ(f.delivered.size(), 0u);
  f.sim.run();  // gap timer fires, skips the pre-wrap hole
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0].payload[0], 1);
  EXPECT_EQ(f.delivered[1].payload[0], 2);
  EXPECT_EQ(f.egress.stats().gaps_skipped, 1u);
}

TEST(TunnelSeq, SerialComparisonProperties) {
  EXPECT_TRUE(seq_before(0xFFFFFFFFu, 0x00000000u));   // across the wrap
  EXPECT_TRUE(seq_before(0x00000000u, 0x00000001u));
  EXPECT_FALSE(seq_before(0x00000001u, 0xFFFFFF00u));  // 1 is AFTER FFFFFF00
  EXPECT_FALSE(seq_before(5u, 5u));                    // irreflexive
  EXPECT_TRUE(seq_before(100u, 200u));
  EXPECT_FALSE(seq_before(200u, 100u));
}

// ---------------------------------------------------------------- ingress

TEST(TunnelIngress, SequencesPerFlow) {
  net::Simulator sim;
  Rng seeder(3);
  net::ChannelConfig cfg;
  cfg.rate_bps = 100e6;
  net::SimChannel wire(sim, cfg, seeder.fork());
  std::vector<net::SimChannel*> wires{&wire};

  std::vector<DecodedDatagram> seen;
  Receiver rx(sim);
  rx.attach(wire);
  rx.set_deliver([&](std::uint64_t, std::vector<std::uint8_t> p) {
    const auto d = decode_datagram(p);
    ASSERT_TRUE(d.has_value());
    seen.push_back(*d);
  });
  Sender tx(sim, wires, std::make_unique<DynamicScheduler>(1.0, 1.0, 1),
            seeder.fork());
  TunnelIngress ingress(tx);

  // Two flows interleaved: sequence numbers must advance independently.
  EXPECT_TRUE(ingress.send(make_datagram(6, 1, 0)));
  EXPECT_TRUE(ingress.send(make_datagram(6, 2, 0)));
  EXPECT_TRUE(ingress.send(make_datagram(6, 1, 1)));
  EXPECT_TRUE(ingress.send(make_datagram(6, 2, 1)));
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].seq, 0u);
  EXPECT_EQ(seen[1].seq, 0u);
  EXPECT_EQ(seen[2].seq, 1u);
  EXPECT_EQ(seen[3].seq, 1u);
  EXPECT_EQ(ingress.datagrams_sent(), 4u);
}

// ---------------------------------------------------------------- end to end

TEST(TunnelEndToEnd, TcpLikeFlowSurvivesJitterReordering) {
  net::Simulator sim;
  Rng seeder(9);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 3; ++i) {
    net::ChannelConfig cfg;
    cfg.rate_bps = 50e6;
    cfg.delay = net::from_millis(1);
    cfg.jitter = net::from_millis(4);  // heavy reordering across channels
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
    wires.push_back(storage.back().get());
  }

  std::vector<IpDatagram> delivered;
  TunnelEgress egress(sim, {}, [&](const IpDatagram& dg) {
    delivered.push_back(dg);
  });
  Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  rx.set_deliver(egress.receiver_hook());

  Sender tx(sim, wires, std::make_unique<DynamicScheduler>(1.0, 1.0, 3),
            seeder.fork());
  TunnelIngress ingress(tx);

  const int count = 300;
  for (int i = 0; i < count; ++i) {
    sim.schedule_at(net::from_micros(static_cast<double>(i) * 120), [&, i] {
      IpDatagram dg;
      dg.src = {192, 168, 0, 1};
      dg.dst = {192, 168, 0, 2};
      dg.protocol = 6;
      dg.payload = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
      (void)ingress.send(dg);
    });
  }
  sim.run();

  // Every datagram arrives, in order, despite multichannel jitter.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)].payload[0],
              static_cast<std::uint8_t>(i));
  }
  EXPECT_GT(egress.stats().reordered_held, 0u);  // jitter really reordered
  EXPECT_EQ(egress.stats().gaps_skipped, 0u);    // no losses, no skips
}

TEST(TunnelEndToEnd, UdpLikeFlowToleratesLoss) {
  net::Simulator sim;
  Rng seeder(10);
  std::vector<std::unique_ptr<net::SimChannel>> storage;
  std::vector<net::SimChannel*> wires;
  for (int i = 0; i < 3; ++i) {
    net::ChannelConfig cfg;
    cfg.rate_bps = 50e6;
    cfg.loss = 0.10;
    storage.push_back(std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
    wires.push_back(storage.back().get());
  }
  std::vector<IpDatagram> delivered;
  TunnelEgress egress(sim, {}, [&](const IpDatagram& dg) {
    delivered.push_back(dg);
  });
  Receiver rx(sim);
  for (auto* w : wires) rx.attach(*w);
  rx.set_deliver(egress.receiver_hook());
  // kappa = 1, mu = 2: each datagram survives unless both copies die.
  Sender tx(sim, wires, std::make_unique<DynamicScheduler>(1.0, 2.0, 3),
            seeder.fork());
  TunnelIngress ingress(tx);

  const int count = 2000;
  for (int i = 0; i < count; ++i) {
    sim.schedule_at(net::from_micros(static_cast<double>(i) * 100), [&] {
      (void)ingress.send(make_datagram(17, 1, 7));
    });
  }
  sim.run();
  // Loss ~ 0.1^2 = 1%; assert the redundancy clearly beat raw loss.
  EXPECT_GT(delivered.size(), static_cast<std::size_t>(count) * 97 / 100);
  EXPECT_LT(delivered.size(), static_cast<std::size_t>(count));
}

}  // namespace
}  // namespace mcss::proto
