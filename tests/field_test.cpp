// Tests for GF(2^8) arithmetic: field axioms, table consistency, and the
// Lagrange interpolation used by Shamir reconstruction.
#include <gtest/gtest.h>

#include <vector>

#include "field/gf256.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::gf {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x99);
  EXPECT_EQ(add(0xFF, 0xFF), 0x00);
  EXPECT_EQ(add(0x00, 0xAB), 0xAB);
}

TEST(Gf256, AdditionIsItsOwnInverse) {
  for (int a = 0; a < 256; ++a) {
    for (int b : {0, 1, 77, 128, 255}) {
      const auto ea = static_cast<Elem>(a);
      const auto eb = static_cast<Elem>(b);
      EXPECT_EQ(add(add(ea, eb), eb), ea);
    }
  }
}

TEST(Gf256, KnownAesProducts) {
  // Standard AES-field test vectors.
  EXPECT_EQ(mul(0x53, 0xCA), 0x01);  // 0x53 and 0xCA are inverses
  EXPECT_EQ(mul(0x02, 0x80), 0x1B);  // xtime overflow reduces by 0x11B
  EXPECT_EQ(mul(0x57, 0x83), 0xC1);
  EXPECT_EQ(mul(0x57, 0x13), 0xFE);
}

TEST(Gf256, MultiplicationByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    const auto ea = static_cast<Elem>(a);
    EXPECT_EQ(mul(ea, 0), 0);
    EXPECT_EQ(mul(0, ea), 0);
    EXPECT_EQ(mul(ea, 1), ea);
    EXPECT_EQ(mul(1, ea), ea);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  Rng r(1);
  for (int t = 0; t < 5000; ++t) {
    const Elem a = r.byte();
    const Elem b = r.byte();
    EXPECT_EQ(mul(a, b), mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  Rng r(2);
  for (int t = 0; t < 5000; ++t) {
    const Elem a = r.byte();
    const Elem b = r.byte();
    const Elem c = r.byte();
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, MultiplicationDistributesOverAddition) {
  Rng r(3);
  for (int t = 0; t < 5000; ++t) {
    const Elem a = r.byte();
    const Elem b = r.byte();
    const Elem c = r.byte();
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, MulAgainstBitwiseReference) {
  // Carry-less multiply + reduction by 0x11B, entirely independent of the
  // log/exp tables.
  const auto slow_mul = [](Elem a, Elem b) {
    unsigned acc = 0;
    unsigned aa = a;
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (1 << bit)) acc ^= aa << bit;
    }
    for (int bit = 15; bit >= 8; --bit) {
      if (acc & (1u << bit)) acc ^= 0x11Bu << (bit - 8);
    }
    return static_cast<Elem>(acc);
  };
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; b += 7) {  // sampled full-range sweep
      EXPECT_EQ(mul(static_cast<Elem>(a), static_cast<Elem>(b)),
                slow_mul(static_cast<Elem>(a), static_cast<Elem>(b)));
    }
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ea = static_cast<Elem>(a);
    EXPECT_EQ(mul(ea, inv(ea)), 1) << "a=" << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW((void)inv(0), PreconditionError);
}

TEST(Gf256, DivisionConsistentWithMultiplication) {
  Rng r(4);
  for (int t = 0; t < 5000; ++t) {
    const Elem a = r.byte();
    Elem b = r.byte();
    if (b == 0) b = 1;
    EXPECT_EQ(mul(div(a, b), b), a);
  }
  EXPECT_THROW((void)div(1, 0), PreconditionError);
  EXPECT_EQ(div(0, 17), 0);
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a : {0, 1, 2, 3, 77, 255}) {
    Elem acc = 1;
    for (unsigned e = 0; e < 40; ++e) {
      EXPECT_EQ(pow(static_cast<Elem>(a), e), acc) << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, PowZeroExponentIsOne) {
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(123, 0), 1);
}

TEST(Gf256, FermatLittleTheorem) {
  // a^255 == 1 for all nonzero a in GF(256).
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(pow(static_cast<Elem>(a), 255), 1) << "a=" << a;
  }
}

TEST(Gf256, PolyEvalAgainstNaive) {
  Rng r(5);
  for (int t = 0; t < 1000; ++t) {
    std::vector<Elem> coeffs(1 + r.uniform_int(8));
    for (Elem& c : coeffs) c = r.byte();
    const Elem x = r.byte();
    Elem expect = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      expect = add(expect, mul(coeffs[i], pow(x, static_cast<unsigned>(i))));
    }
    EXPECT_EQ(poly_eval(coeffs, x), expect);
  }
}

TEST(Gf256, PolyEvalAtZeroGivesConstantTerm) {
  const std::vector<Elem> coeffs{0xAB, 0x13, 0x77};
  EXPECT_EQ(poly_eval(coeffs, 0), 0xAB);
}

TEST(Gf256, PolyEvalEmptyIsZero) {
  EXPECT_EQ(poly_eval({}, 42), 0);
}

TEST(Gf256, LagrangeRecoversConstantTerm) {
  Rng r(6);
  for (int degree = 0; degree < 8; ++degree) {
    for (int t = 0; t < 200; ++t) {
      std::vector<Elem> coeffs(static_cast<std::size_t>(degree) + 1);
      for (Elem& c : coeffs) c = r.byte();
      // Evaluate at degree+1 distinct nonzero points.
      std::vector<Elem> xs, ys;
      for (int i = 0; i <= degree; ++i) {
        const auto x = static_cast<Elem>(i + 1);
        xs.push_back(x);
        ys.push_back(poly_eval(coeffs, x));
      }
      EXPECT_EQ(lagrange_at_zero(xs, ys), coeffs[0]);
    }
  }
}

TEST(Gf256, LagrangeWithScatteredAbscissae) {
  // Interpolation must not depend on the abscissae being 1..k.
  Rng r(7);
  const std::vector<Elem> coeffs{0x42, 0x99, 0x07};
  const std::vector<Elem> xs{5, 200, 131};
  std::vector<Elem> ys;
  for (const Elem x : xs) ys.push_back(poly_eval(coeffs, x));
  EXPECT_EQ(lagrange_at_zero(xs, ys), 0x42);
}

TEST(Gf256, LagrangeWeightsMatchDirectInterpolation) {
  const std::vector<Elem> coeffs{0x11, 0x22, 0x33, 0x44};
  const std::vector<Elem> xs{3, 17, 99, 254};
  std::vector<Elem> ys;
  for (const Elem x : xs) ys.push_back(poly_eval(coeffs, x));
  std::vector<Elem> weights(xs.size());
  lagrange_weights_at_zero(xs, weights);
  Elem acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = add(acc, mul(weights[i], ys[i]));
  }
  EXPECT_EQ(acc, lagrange_at_zero(xs, ys));
  EXPECT_EQ(acc, 0x11);
}

TEST(Gf256, LagrangeRejectsBadInput) {
  const std::vector<Elem> ys{1, 2};
  EXPECT_THROW((void)lagrange_at_zero({}, {}), PreconditionError);
  EXPECT_THROW((void)lagrange_at_zero(std::vector<Elem>{1, 1}, ys),
               PreconditionError);  // duplicate abscissa
  EXPECT_THROW((void)lagrange_at_zero(std::vector<Elem>{0, 1}, ys),
               PreconditionError);  // zero abscissa
  EXPECT_THROW((void)lagrange_at_zero(std::vector<Elem>{1, 2, 3}, ys),
               PreconditionError);  // size mismatch
}

TEST(Gf256, LagrangeSinglePoint) {
  // A degree-0 polynomial: the value at any point IS the constant.
  EXPECT_EQ(lagrange_at_zero(std::vector<Elem>{7}, std::vector<Elem>{0x5A}), 0x5A);
}

}  // namespace
}  // namespace mcss::gf
