// Tests for the HMM library and the channel risk estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "risk/channel_risk.hpp"
#include "risk/hmm.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::risk {
namespace {

/// The classic two-state textbook HMM (Rabiner-style): states Rainy /
/// Sunny, observations Walk / Shop / Clean.
Hmm weather() {
  Hmm hmm;
  hmm.transition = {{0.7, 0.3}, {0.4, 0.6}};
  hmm.emission = {{0.1, 0.4, 0.5}, {0.6, 0.3, 0.1}};
  hmm.initial = {0.6, 0.4};
  return hmm;
}

/// Brute-force P(obs) by summing over all hidden paths.
double brute_likelihood(const Hmm& hmm, const std::vector<int>& obs) {
  const int n = hmm.num_states();
  const std::size_t t_max = obs.size();
  double total = 0.0;
  std::vector<int> path(t_max, 0);
  const auto paths = static_cast<std::uint64_t>(std::pow(n, static_cast<double>(t_max)));
  for (std::uint64_t code = 0; code < paths; ++code) {
    std::uint64_t c = code;
    for (std::size_t t = 0; t < t_max; ++t) {
      path[t] = static_cast<int>(c % static_cast<std::uint64_t>(n));
      c /= static_cast<std::uint64_t>(n);
    }
    double p = hmm.initial[static_cast<std::size_t>(path[0])] *
               hmm.emission[static_cast<std::size_t>(path[0])][static_cast<std::size_t>(obs[0])];
    for (std::size_t t = 1; t < t_max; ++t) {
      p *= hmm.transition[static_cast<std::size_t>(path[t - 1])][static_cast<std::size_t>(path[t])] *
           hmm.emission[static_cast<std::size_t>(path[t])][static_cast<std::size_t>(obs[t])];
    }
    total += p;
  }
  return total;
}

// ---------------------------------------------------------------- validation

TEST(Hmm, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(weather().validate());
}

TEST(Hmm, ValidateRejectsMalformed) {
  Hmm bad = weather();
  bad.initial = {0.5, 0.4};  // sums to 0.9
  EXPECT_THROW(bad.validate(), PreconditionError);

  bad = weather();
  bad.transition[0] = {0.7, 0.4};  // row sums to 1.1
  EXPECT_THROW(bad.validate(), PreconditionError);

  bad = weather();
  bad.emission[1] = {0.6, 0.3};  // ragged
  EXPECT_THROW(bad.validate(), PreconditionError);

  bad = weather();
  bad.transition[1] = {-0.1, 1.1};  // negative entry
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(Hmm, RejectsOutOfRangeObservations) {
  const auto hmm = weather();
  const std::vector<int> bad{0, 3};
  EXPECT_THROW((void)forward_filter(hmm, bad), PreconditionError);
  EXPECT_THROW((void)log_likelihood(hmm, bad), PreconditionError);
  EXPECT_THROW((void)viterbi(hmm, bad), PreconditionError);
}

// ---------------------------------------------------------------- forward

TEST(Hmm, ForwardFilterHandComputedOneStep) {
  // P(state | obs = Walk): unnormalized (0.6*0.1, 0.4*0.6) = (0.06, 0.24).
  const auto posterior = forward_filter(weather(), std::vector<int>{0});
  EXPECT_NEAR(posterior[0], 0.06 / 0.30, 1e-12);
  EXPECT_NEAR(posterior[1], 0.24 / 0.30, 1e-12);
}

TEST(Hmm, ForwardFilterEmptySequenceIsInitial) {
  const auto posterior = forward_filter(weather(), std::vector<int>{});
  EXPECT_NEAR(posterior[0], 0.6, 1e-12);
  EXPECT_NEAR(posterior[1], 0.4, 1e-12);
}

TEST(Hmm, PosteriorAlwaysNormalized) {
  Rng rng(1);
  const auto hmm = weather();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> obs(1 + rng.uniform_int(30));
    for (auto& o : obs) o = static_cast<int>(rng.uniform_int(3));
    const auto posterior = forward_filter(hmm, obs);
    double sum = 0.0;
    for (const double p : posterior) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Hmm, LikelihoodMatchesBruteForce) {
  Rng rng(2);
  const auto hmm = weather();
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> obs(1 + rng.uniform_int(8));
    for (auto& o : obs) o = static_cast<int>(rng.uniform_int(3));
    EXPECT_NEAR(std::exp(log_likelihood(hmm, obs)), brute_likelihood(hmm, obs),
                1e-12);
  }
}

TEST(Hmm, LikelihoodOfEmptySequenceIsOne) {
  EXPECT_DOUBLE_EQ(log_likelihood(weather(), std::vector<int>{}), 0.0);
}

// ---------------------------------------------------------------- viterbi

TEST(Hmm, ViterbiMatchesBruteForceOnShortSequences) {
  Rng rng(3);
  const auto hmm = weather();
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> obs(1 + rng.uniform_int(6));
    for (auto& o : obs) o = static_cast<int>(rng.uniform_int(3));

    // Brute-force best path.
    const int n = hmm.num_states();
    double best_p = -1.0;
    std::vector<int> best_path;
    std::vector<int> path(obs.size());
    const auto paths = static_cast<std::uint64_t>(
        std::pow(n, static_cast<double>(obs.size())));
    for (std::uint64_t code = 0; code < paths; ++code) {
      std::uint64_t c = code;
      for (std::size_t t = 0; t < obs.size(); ++t) {
        path[t] = static_cast<int>(c % static_cast<std::uint64_t>(n));
        c /= static_cast<std::uint64_t>(n);
      }
      double p = hmm.initial[static_cast<std::size_t>(path[0])] *
                 hmm.emission[static_cast<std::size_t>(path[0])][static_cast<std::size_t>(obs[0])];
      for (std::size_t t = 1; t < obs.size(); ++t) {
        p *= hmm.transition[static_cast<std::size_t>(path[t - 1])][static_cast<std::size_t>(path[t])] *
             hmm.emission[static_cast<std::size_t>(path[t])][static_cast<std::size_t>(obs[t])];
      }
      if (p > best_p) {
        best_p = p;
        best_path = path;
      }
    }
    EXPECT_EQ(viterbi(hmm, obs), best_path);
  }
}

TEST(Hmm, ViterbiEmptySequence) {
  EXPECT_TRUE(viterbi(weather(), std::vector<int>{}).empty());
}

// ---------------------------------------------------------------- stationary

TEST(Hmm, StationaryIsFixedPoint) {
  const auto hmm = weather();
  const auto pi = stationary(hmm);
  // pi * T == pi
  for (std::size_t j = 0; j < pi.size(); ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      acc += pi[i] * hmm.transition[i][j];
    }
    EXPECT_NEAR(acc, pi[j], 1e-10);
  }
  // Known closed form: pi = (4/7, 3/7) for this chain.
  EXPECT_NEAR(pi[0], 4.0 / 7.0, 1e-9);
  EXPECT_NEAR(pi[1], 3.0 / 7.0, 1e-9);
}

// ---------------------------------------------------------------- training

TEST(BaumWelch, LikelihoodIsNonDecreasing) {
  // Track likelihood across individual EM steps by running with
  // increasing iteration caps; each must do at least as well.
  const auto truth = ChannelRiskModel::standard().hmm();
  Rng rng(31);
  std::vector<std::vector<int>> data;
  const auto sampler = ChannelRiskModel::standard();
  for (int s = 0; s < 20; ++s) data.push_back(sampler.sample_alerts(60, rng));

  Hmm init = weather();  // wrong-but-valid 2-state starting point? No:
  // dimensions must match (3 symbols ok, but 2 states is allowed — EM
  // just fits a 2-state model). Use a perturbed 3-state start instead.
  init = truth;
  init.transition = {{0.4, 0.3, 0.3}, {0.3, 0.4, 0.3}, {0.3, 0.3, 0.4}};
  init.emission = {{0.5, 0.3, 0.2}, {0.2, 0.5, 0.3}, {0.3, 0.2, 0.5}};
  init.initial = {0.4, 0.3, 0.3};

  double prev = -1e300;
  for (int iters = 1; iters <= 20; iters += 3) {
    const auto r = baum_welch(init, data, iters, 0.0);
    EXPECT_GE(r.log_likelihood, prev - 1e-6) << "iters=" << iters;
    prev = r.log_likelihood;
  }
}

TEST(BaumWelch, ImprovesOnABadStartingPoint) {
  const auto sampler = ChannelRiskModel::standard();
  Rng rng(32);
  std::vector<std::vector<int>> data;
  for (int s = 0; s < 30; ++s) data.push_back(sampler.sample_alerts(80, rng));

  Hmm init = sampler.hmm();
  init.transition = {{0.34, 0.33, 0.33}, {0.33, 0.34, 0.33}, {0.33, 0.33, 0.34}};
  init.emission = {{0.4, 0.3, 0.3}, {0.3, 0.4, 0.3}, {0.3, 0.3, 0.4}};
  init.initial = {1.0 / 3, 1.0 / 3, 1.0 / 3};

  double init_ll = 0.0;
  for (const auto& seq : data) init_ll += log_likelihood(init, seq);
  const auto trained = baum_welch(init, data, 60);
  EXPECT_GT(trained.log_likelihood, init_ll + 10.0);
  EXPECT_NO_THROW(trained.model.validate());
}

TEST(BaumWelch, ApproachesTrueModelLikelihood) {
  // The trained model's likelihood on the training data should come
  // close to (usually exceed — EM overfits) the generating model's.
  const auto sampler = ChannelRiskModel::standard();
  Rng rng(33);
  std::vector<std::vector<int>> data;
  for (int s = 0; s < 40; ++s) data.push_back(sampler.sample_alerts(60, rng));

  double truth_ll = 0.0;
  for (const auto& seq : data) truth_ll += log_likelihood(sampler.hmm(), seq);

  Hmm init = sampler.hmm();
  init.transition = {{0.8, 0.15, 0.05}, {0.3, 0.5, 0.2}, {0.1, 0.2, 0.7}};
  const auto trained = baum_welch(init, data, 100);
  EXPECT_GT(trained.log_likelihood, truth_ll - std::abs(truth_ll) * 0.02);
}

TEST(BaumWelch, ConvergesAndStops) {
  const auto sampler = ChannelRiskModel::standard();
  Rng rng(34);
  std::vector<std::vector<int>> data{sampler.sample_alerts(100, rng)};
  const auto r = baum_welch(sampler.hmm(), data, 500, 1e-7);
  EXPECT_LT(r.iterations, 500);  // tolerance stop, not the cap
}

TEST(BaumWelch, RejectsBadInput) {
  const auto hmm = weather();
  EXPECT_THROW((void)baum_welch(hmm, std::vector<std::vector<int>>{}, 10),
               PreconditionError);
  const std::vector<std::vector<int>> empty_seq{{}};
  EXPECT_THROW((void)baum_welch(hmm, empty_seq, 10), PreconditionError);
  const std::vector<std::vector<int>> bad_symbol{{0, 7}};
  EXPECT_THROW((void)baum_welch(hmm, bad_symbol, 10), PreconditionError);
  const std::vector<std::vector<int>> ok{{0, 1}};
  EXPECT_THROW((void)baum_welch(hmm, ok, 0), PreconditionError);
}

TEST(BaumWelch, SingleStateDegenerateCase) {
  Hmm tiny;
  tiny.transition = {{1.0}};
  tiny.emission = {{0.5, 0.5}};
  tiny.initial = {1.0};
  const std::vector<std::vector<int>> data{{0, 1, 0, 0, 1}};
  const auto r = baum_welch(tiny, data, 10);
  // Emission converges to the empirical symbol frequencies (3/5, 2/5).
  EXPECT_NEAR(r.model.emission[0][0], 0.6, 1e-9);
  EXPECT_NEAR(r.model.emission[0][1], 0.4, 1e-9);
}

// ---------------------------------------------------------------- channel risk

/// Two-state model where symbol 2 has zero emission probability under
/// EVERY state — the pathological column that used to 0/0 the filter.
Hmm impossible_symbol_model() {
  Hmm hmm;
  hmm.transition = {{0.9, 0.1}, {0.2, 0.8}};
  hmm.emission = {{0.7, 0.3, 0.0}, {0.4, 0.6, 0.0}};
  hmm.initial = {0.5, 0.5};
  return hmm;
}

TEST(Hmm, ZeroLikelihoodObservationFallsBackToPrediction) {
  const Hmm hmm = impossible_symbol_model();
  // First observation impossible: the fallback is the (normalized)
  // predicted distribution, here the initial one.
  std::uint64_t zeros = 0;
  auto posterior = forward_filter(hmm, std::vector<int>{2}, &zeros);
  EXPECT_EQ(zeros, 1u);
  ASSERT_EQ(posterior.size(), 2u);
  EXPECT_DOUBLE_EQ(posterior[0], 0.5);
  EXPECT_DOUBLE_EQ(posterior[1], 0.5);

  // Impossible mid-sequence: the step is discarded but the transition
  // still advances the state estimate; filtering continues NaN-free and
  // the posterior matches running the same trace without the bad symbol
  // but with one extra transition step applied at its position.
  zeros = 0;
  posterior = forward_filter(hmm, std::vector<int>{0, 2, 1}, &zeros);
  EXPECT_EQ(zeros, 1u);
  for (const double p : posterior) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
  }
  EXPECT_NEAR(posterior[0] + posterior[1], 1.0, 1e-12);

  std::vector<double> manual = forward_filter(hmm, std::vector<int>{0});
  std::vector<double> stepped(manual);
  EXPECT_FALSE(forward_filter_step(hmm, stepped, 2, true));
  EXPECT_TRUE(forward_filter_step(hmm, stepped, 1, true));
  EXPECT_DOUBLE_EQ(posterior[0], stepped[0]);
  EXPECT_DOUBLE_EQ(posterior[1], stepped[1]);
}

TEST(Hmm, ZeroLikelihoodSequenceHasMinusInfinityLogLikelihood) {
  const Hmm hmm = impossible_symbol_model();
  const double ll = log_likelihood(hmm, std::vector<int>{0, 2, 1});
  EXPECT_TRUE(std::isinf(ll));
  EXPECT_LT(ll, 0.0);
  // Possible sequences are unaffected.
  EXPECT_TRUE(std::isfinite(log_likelihood(hmm, std::vector<int>{0, 1, 0})));
}

TEST(Hmm, ForwardFilterCountsAreOptional) {
  const Hmm hmm = impossible_symbol_model();
  // Null counter: same posterior, no crash.
  const auto posterior = forward_filter(hmm, std::vector<int>{2, 2});
  EXPECT_NEAR(posterior[0] + posterior[1], 1.0, 1e-12);
}

TEST(ChannelRisk, CountsZeroLikelihoodAlerts) {
  // A risk model whose sensors can never report symbol 2.
  Hmm hmm;
  hmm.transition = {
      {0.95, 0.045, 0.005}, {0.30, 0.60, 0.10}, {0.02, 0.08, 0.90}};
  hmm.emission = {{0.9, 0.1, 0.0}, {0.5, 0.5, 0.0}, {0.3, 0.7, 0.0}};
  hmm.initial = {0.98, 0.015, 0.005};
  const ChannelRiskModel model{std::move(hmm)};

  const std::vector<int> alerts{0, 2, 1, 2, 0};
  const double z = model.assess(alerts);
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_GE(z, 0.0);
  EXPECT_LE(z, 1.0);
  EXPECT_EQ(model.zero_likelihood_alerts(), 2u);
  (void)model.assess(alerts);
  EXPECT_EQ(model.zero_likelihood_alerts(), 4u);
}

TEST(ChannelRisk, QuietChannelHasLowRisk) {
  const auto model = ChannelRiskModel::standard();
  const std::vector<int> quiet(50, kNoAlert);
  EXPECT_LT(model.assess(quiet), 0.02);
}

TEST(ChannelRisk, IntrusionAlertsRaiseRisk) {
  const auto model = ChannelRiskModel::standard();
  const std::vector<int> quiet(20, kNoAlert);
  std::vector<int> noisy = quiet;
  for (int i = 0; i < 10; ++i) noisy.push_back(kIntrusion);
  EXPECT_GT(model.assess(noisy), model.assess(quiet) * 5);
  EXPECT_GT(model.assess(noisy), 0.3);
}

TEST(ChannelRisk, RiskDecaysAfterAlertsStop) {
  const auto model = ChannelRiskModel::standard();
  std::vector<int> alerts(10, kIntrusion);
  const double hot = model.assess(alerts);
  for (int i = 0; i < 60; ++i) alerts.push_back(kNoAlert);
  const double cooled = model.assess(alerts);
  EXPECT_LT(cooled, hot / 3);
}

TEST(ChannelRisk, PriorMatchesStationary) {
  const auto model = ChannelRiskModel::standard();
  EXPECT_NEAR(model.prior(), stationary(model.hmm())[kCompromised], 1e-9);
}

TEST(ChannelRisk, EstimatesTrackGroundTruthOnSampledTraces) {
  // Sample traces from the model itself; the average assessed risk over
  // traces whose final TRUE state is Compromised must far exceed the
  // average over traces ending Safe (the estimator discriminates).
  const auto model = ChannelRiskModel::standard();
  Rng rng(7);
  double risk_when_compromised = 0.0, risk_when_safe = 0.0;
  int compromised_count = 0, safe_count = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<int> states;
    const auto alerts = model.sample_alerts(40, rng, &states);
    const double risk = model.assess(alerts);
    if (states.back() == kCompromised) {
      risk_when_compromised += risk;
      ++compromised_count;
    } else if (states.back() == kSafe) {
      risk_when_safe += risk;
      ++safe_count;
    }
  }
  ASSERT_GT(compromised_count, 10);
  ASSERT_GT(safe_count, 10);
  risk_when_compromised /= compromised_count;
  risk_when_safe /= safe_count;
  EXPECT_GT(risk_when_compromised, 4 * risk_when_safe);
}

TEST(ChannelRisk, EstimatorIsCalibratedOnAverage) {
  // Over many sampled traces, mean assessed risk ~ empirical frequency of
  // the compromised state (posterior calibration, a property of exact
  // Bayesian filtering on the true model).
  const auto model = ChannelRiskModel::standard();
  Rng rng(8);
  double mean_risk = 0.0;
  double frequency = 0.0;
  const int trials = 5000;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<int> states;
    const auto alerts = model.sample_alerts(30, rng, &states);
    mean_risk += model.assess(alerts);
    frequency += states.back() == kCompromised ? 1.0 : 0.0;
  }
  mean_risk /= trials;
  frequency /= trials;
  EXPECT_NEAR(mean_risk, frequency, 0.02);
}

TEST(ChannelRisk, AssessRisksVectorizes) {
  const auto model = ChannelRiskModel::standard();
  const std::vector<std::vector<int>> traces{
      std::vector<int>(30, kNoAlert),
      std::vector<int>(30, kIntrusion),
      {},
  };
  const auto risks = assess_risks(model, traces);
  ASSERT_EQ(risks.size(), 3u);
  EXPECT_LT(risks[0], risks[1]);
  for (const double z : risks) {
    EXPECT_GE(z, 0.0);
    EXPECT_LE(z, 1.0);
  }
}

TEST(ChannelRisk, RequiresCompromisedState) {
  Hmm tiny;
  tiny.transition = {{1.0}};
  tiny.emission = {{1.0}};
  tiny.initial = {1.0};
  EXPECT_THROW(ChannelRiskModel{tiny}, PreconditionError);
}

}  // namespace
}  // namespace mcss::risk
