// Equivalence tests between the slice-major region-kernel Shamir paths
// and the per-byte scalar reference paths: both consume the Rng
// identically (one bulk coefficient fill per packet), so for equal seeds
// split() and split_scalar() must be byte-identical, and reconstruct()
// must invert both.
#include <gtest/gtest.h>

#include <vector>

#include "sss/shamir.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss::sss {
namespace {

std::vector<std::uint8_t> random_secret(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> s(len);
  rng.fill(s);
  return s;
}

TEST(ShamirKernel, SplitMatchesScalarReferenceAcrossRandomDraws) {
  Rng meta(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 1 + static_cast<int>(meta.uniform_int(16));
    const int k = 1 + static_cast<int>(meta.uniform_int(static_cast<std::uint64_t>(m)));
    const std::size_t len = meta.uniform_int(2000);
    const std::uint64_t seed = meta();

    Rng secret_rng(seed);
    const auto secret = random_secret(secret_rng, len);
    Rng a(seed + 1);
    Rng b(seed + 1);
    const auto fast = split(secret, k, m, a);
    const auto reference = split_scalar(secret, k, m, b);
    ASSERT_EQ(fast.size(), reference.size()) << "k=" << k << " m=" << m;
    for (std::size_t j = 0; j < fast.size(); ++j) {
      ASSERT_EQ(fast[j].index, reference[j].index);
      ASSERT_EQ(fast[j].data, reference[j].data)
          << "k=" << k << " m=" << m << " len=" << len << " share=" << j;
    }
  }
}

TEST(ShamirKernel, ReconstructMatchesScalarReference) {
  Rng meta(2025);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = 1 + static_cast<int>(meta.uniform_int(12));
    const int k = 1 + static_cast<int>(meta.uniform_int(static_cast<std::uint64_t>(m)));
    const std::size_t len = 1 + meta.uniform_int(1470);

    Rng rng(meta());
    const auto secret = random_secret(rng, len);
    const auto shares = split(secret, k, m, rng);
    const auto first_k = std::vector<Share>(shares.begin(), shares.begin() + k);
    EXPECT_EQ(reconstruct(first_k), reconstruct_scalar(first_k));
    EXPECT_EQ(reconstruct(first_k), secret);
  }
}

TEST(ShamirKernel, CrossPathRoundtrips) {
  // Fast split -> scalar reconstruct and scalar split -> fast reconstruct
  // must both recover the secret.
  Rng rng(7);
  const auto secret = random_secret(rng, 1470);
  const auto fast_shares = split(secret, 3, 5, rng);
  EXPECT_EQ(reconstruct_scalar(
                std::vector<Share>(fast_shares.begin(), fast_shares.begin() + 3)),
            secret);
  const auto ref_shares = split_scalar(secret, 3, 5, rng);
  EXPECT_EQ(reconstruct(
                std::vector<Share>(ref_shares.begin(), ref_shares.begin() + 3)),
            secret);
}

TEST(ShamirKernel, ScalarPathValidatesLikeFastPath) {
  Rng rng(8);
  const auto secret = random_secret(rng, 8);
  EXPECT_THROW((void)split_scalar(secret, 0, 3, rng), PreconditionError);
  EXPECT_THROW((void)split_scalar(secret, 4, 3, rng), PreconditionError);
  EXPECT_THROW((void)reconstruct_scalar(std::vector<Share>{}),
               PreconditionError);
}

TEST(RngFill, MatchesGeneratorStream) {
  // fill() packs eight bytes per 64-bit draw, little-endian, and burns
  // one draw for any tail — pinned here so split determinism is stable.
  Rng a(42);
  Rng b(42);
  std::vector<std::uint8_t> buf(19);
  a.fill(buf);
  for (std::size_t i = 0; i < 16; i += 8) {
    const std::uint64_t v = b();
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(buf[i + j], static_cast<std::uint8_t>(v >> (8 * j)));
    }
  }
  const std::uint64_t tail = b();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(buf[16 + j], static_cast<std::uint8_t>(tail >> (8 * j)));
  }
  EXPECT_EQ(a(), b());  // streams stay in lockstep afterwards
}

}  // namespace
}  // namespace mcss::sss
