// Tests for the workload harness: setups, sources, and the experiment
// runner — including the headline model-vs-protocol rate comparison.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimal.hpp"
#include "core/rate.hpp"
#include "net/simulator.hpp"
#include "protocol/wire.hpp"
#include "util/ensure.hpp"
#include "workload/experiment.hpp"
#include "workload/setups.hpp"
#include "workload/traffic.hpp"

namespace mcss::workload {
namespace {

// ---------------------------------------------------------------- setups

TEST(Setups, PaperConfigurations) {
  const auto identical = identical_setup(100);
  ASSERT_EQ(identical.num_channels(), 5);
  for (const auto& ch : identical.channels) {
    EXPECT_DOUBLE_EQ(ch.rate_bps, 100e6);
    EXPECT_EQ(ch.loss, 0.0);
    EXPECT_EQ(ch.delay, 0);
  }

  const auto diverse = diverse_setup();
  EXPECT_DOUBLE_EQ(diverse.channels[0].rate_bps, 5e6);
  EXPECT_DOUBLE_EQ(diverse.channels[4].rate_bps, 100e6);

  const auto lossy = lossy_setup();
  EXPECT_DOUBLE_EQ(lossy.channels[1].loss, 0.005);
  EXPECT_DOUBLE_EQ(lossy.channels[4].loss, 0.03);

  const auto delayed = delayed_setup();
  EXPECT_EQ(delayed.channels[2].delay, net::from_millis(12.5));
  EXPECT_EQ(delayed.channels[1].delay, net::from_micros(250));
}

TEST(Setups, ModelConversion) {
  const auto model = diverse_setup().to_model(1250);  // 10000 bits/packet
  EXPECT_EQ(model.size(), 5);
  EXPECT_DOUBLE_EQ(model[0].rate, 500.0);    // 5e6 / 1e4 packets/s
  EXPECT_DOUBLE_EQ(model[4].rate, 10000.0);  // 100e6 / 1e4
  const auto lossy = lossy_setup().to_model(1250);
  EXPECT_DOUBLE_EQ(lossy[3].loss, 0.02);
  const auto delayed = delayed_setup().to_model(1250);
  EXPECT_NEAR(delayed[2].delay, 0.0125, 1e-12);
}

// ---------------------------------------------------------------- traffic

TEST(Traffic, TimestampRoundtrip) {
  std::vector<std::uint8_t> p(16, 0);
  stamp_payload(p, 123456789012345LL);
  EXPECT_EQ(payload_timestamp(p), 123456789012345LL);
  EXPECT_THROW((void)payload_timestamp(std::vector<std::uint8_t>(4)),
               PreconditionError);
}

TEST(Traffic, CbrPacingIsExact) {
  net::Simulator sim;
  int count = 0;
  // 8 Mbps of 1000-byte packets = exactly 1000 packets/s for 1 s.
  CbrSource src(sim, 8e6, 1000, 0, net::from_seconds(1.0),
                [&](std::vector<std::uint8_t>) {
                  ++count;
                  return true;
                });
  sim.run();
  EXPECT_NEAR(count, 1000, 1);
  EXPECT_EQ(src.stats().packets_offered, static_cast<std::uint64_t>(count));
}

TEST(Traffic, CbrHandlesAwkwardRates) {
  // 7 Mbps of 1470-byte packets: interval has a fractional nanosecond
  // part; the residue accumulator must keep the long-run rate exact.
  net::Simulator sim;
  int count = 0;
  CbrSource src(sim, 7e6, 1470, 0, net::from_seconds(2.0),
                [&](std::vector<std::uint8_t>) {
                  ++count;
                  return true;
                });
  sim.run();
  const double expected = 7e6 * 2.0 / (1470 * 8);
  EXPECT_NEAR(count, expected, 2);
}

TEST(Traffic, CbrRespectsStartAndStop) {
  net::Simulator sim;
  std::vector<net::SimTime> arrivals;
  CbrSource src(sim, 8e6, 1000, net::from_millis(100), net::from_millis(200),
                [&](std::vector<std::uint8_t>) {
                  arrivals.push_back(sim.now());
                  return true;
                });
  sim.run();
  ASSERT_FALSE(arrivals.empty());
  EXPECT_GE(arrivals.front(), net::from_millis(100));
  EXPECT_LT(arrivals.back(), net::from_millis(200));
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 100.0, 2.0);
}

TEST(Traffic, CbrCountsRejections) {
  net::Simulator sim;
  CbrSource src(sim, 8e6, 1000, 0, net::from_millis(10),
                [](std::vector<std::uint8_t>) { return false; });
  sim.run();
  EXPECT_GT(src.stats().packets_offered, 0u);
  EXPECT_EQ(src.stats().packets_accepted, 0u);
}

TEST(Traffic, PoissonMeanRate) {
  net::Simulator sim;
  int count = 0;
  PoissonSource src(sim, 8e6, 1000, 0, net::from_seconds(5.0),
                    [&](std::vector<std::uint8_t>) {
                      ++count;
                      return true;
                    },
                    7);
  sim.run();
  EXPECT_NEAR(count, 5000, 300);  // ~4 sigma for Poisson(5000)
}

TEST(Traffic, PayloadsCarryCurrentTimestamp) {
  net::Simulator sim;
  CbrSource src(sim, 8e6, 100, 0, net::from_millis(5),
                [&](std::vector<std::uint8_t> p) {
                  EXPECT_EQ(payload_timestamp(p), sim.now());
                  return true;
                });
  sim.run();
}

// ---------------------------------------------------------------- experiments

/// Payload-rate ceiling implied by the 16-byte share header: the channel
/// carries payload + header bits for every payload bit of goodput.
double header_efficiency(std::size_t packet_bytes) {
  return static_cast<double>(packet_bytes) /
         static_cast<double>(packet_bytes + proto::kHeaderSize);
}

TEST(Experiment, MaxRateOnIdenticalChannels) {
  ExperimentConfig cfg;
  cfg.setup = identical_setup(100);
  cfg.kappa = 1.0;
  cfg.mu = 1.0;
  cfg.duration_s = 0.4;
  const auto r = run_experiment(cfg);
  // Optimal: 500 Mbps of payload, less the header overhead (~1%).
  const double ceiling = 500.0 * header_efficiency(cfg.packet_bytes);
  EXPECT_GT(r.achieved_mbps, ceiling * 0.96);
  EXPECT_LE(r.achieved_mbps, 500.0 + 1.0);
  EXPECT_NEAR(r.achieved_kappa, 1.0, 1e-9);
  EXPECT_NEAR(r.achieved_mu, 1.0, 1e-9);
  EXPECT_LT(r.loss_fraction, 0.001);
}

TEST(Experiment, FullSharingOnIdenticalChannels) {
  ExperimentConfig cfg;
  cfg.setup = identical_setup(100);
  cfg.kappa = 5.0;
  cfg.mu = 5.0;
  cfg.duration_s = 0.4;
  const auto r = run_experiment(cfg);
  // mu = 5: every packet uses every channel, R = 100 Mbps of payload.
  const double ceiling = 100.0 * header_efficiency(cfg.packet_bytes);
  EXPECT_GT(r.achieved_mbps, ceiling * 0.95);
  EXPECT_LE(r.achieved_mbps, 100.0 + 1.0);
}

class ExperimentRateSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ExperimentRateSweep, DynamicSchedulerTracksTheorem4) {
  const auto [kappa, mu] = GetParam();
  ExperimentConfig cfg;
  cfg.setup = diverse_setup();
  cfg.kappa = kappa;
  cfg.mu = mu;
  cfg.duration_s = 0.4;
  const auto r = run_experiment(cfg);
  const auto model = cfg.setup.to_model(cfg.packet_bytes);
  const double optimal_mbps = optimal_rate(model, mu) *
                              static_cast<double>(cfg.packet_bytes) * 8.0 / 1e6;
  // Headline claim territory: within a few percent of optimal, and never
  // meaningfully above it.
  EXPECT_GT(r.achieved_mbps, optimal_mbps * 0.90)
      << "kappa=" << kappa << " mu=" << mu;
  EXPECT_LE(r.achieved_mbps, optimal_mbps * 1.02);
  EXPECT_NEAR(r.achieved_kappa, kappa, 0.02);
  EXPECT_NEAR(r.achieved_mu, mu, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    KappaMuPoints, ExperimentRateSweep,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{1.0, 2.5},
                      std::pair{2.0, 3.0}, std::pair{2.5, 2.5},
                      std::pair{1.5, 4.0}, std::pair{3.0, 5.0},
                      std::pair{5.0, 5.0}));

TEST(Experiment, LossTracksModelOnLossySetup) {
  ExperimentConfig cfg;
  cfg.setup = lossy_setup();
  cfg.kappa = 1.0;
  cfg.mu = 2.0;
  cfg.duration_s = 1.0;
  const auto model = cfg.setup.to_model(cfg.packet_bytes);
  cfg.offered_bps =
      optimal_rate(model, cfg.mu) * static_cast<double>(cfg.packet_bytes) * 8.0;
  const auto r = run_experiment(cfg);
  // The IV-D LP gives the best possible loss at max rate; the dynamic
  // scheduler should be in its neighborhood (the paper: close for most
  // parameters). Sanity: between half the optimum and 5x the optimum,
  // and far below the worst single channel.
  const auto lp = solve_schedule_lp(model, {.objective = Objective::Loss,
                                            .kappa = cfg.kappa,
                                            .mu = cfg.mu,
                                            .rate = RateConstraint::MaxRate});
  ASSERT_EQ(lp.status, lp::Status::Optimal);
  EXPECT_GT(r.loss_fraction, lp.objective_value * 0.2);
  EXPECT_LT(r.loss_fraction, 0.03);
}

TEST(Experiment, EchoMeasuresDelay) {
  ExperimentConfig cfg;
  cfg.setup = delayed_setup();
  cfg.kappa = 1.0;
  cfg.mu = 1.0;
  cfg.echo = true;
  cfg.duration_s = 0.5;
  // Light load so queueing does not dominate propagation.
  cfg.offered_bps = 2e6;
  const auto r = run_experiment(cfg);
  // One-way delay must be at least the fastest channel's propagation
  // (0.25 ms) and below the slowest (12.5 ms) at kappa = 1 under light load.
  EXPECT_GE(r.mean_delay_s, 0.00025);
  EXPECT_LT(r.mean_delay_s, 0.0125);
  EXPECT_GT(r.p99_delay_s, 0.0);
}

TEST(Experiment, CpuBudgetCapsThroughput) {
  ExperimentConfig cfg;
  cfg.setup = identical_setup(400);  // 2 Gbps of channel capacity
  cfg.kappa = 1.0;
  cfg.mu = 1.0;
  cfg.duration_s = 0.3;
  cfg.offered_bps = 2.5e9;
  cfg.cpu.unlimited = false;
  // split(1,1) = base 15.6 + per_share 0.07 = 15.67 ops; at 1e6 ops/s the
  // sender caps at ~63.8k packets/s ~ 750 Mbps, below channel capacity.
  cfg.cpu.ops_per_sec = 1e6;
  const auto capped = run_experiment(cfg);
  const double expected_pkts = 1e6 / 15.67;
  const double expected_mbps =
      expected_pkts * static_cast<double>(cfg.packet_bytes) * 8.0 / 1e6;
  EXPECT_NEAR(capped.achieved_mbps, expected_mbps, expected_mbps * 0.05);

  cfg.cpu.unlimited = true;
  const auto uncapped = run_experiment(cfg);
  EXPECT_GT(uncapped.achieved_mbps, capped.achieved_mbps * 1.5);
}

TEST(Experiment, StaticLpSchedulerRuns) {
  ExperimentConfig cfg;
  cfg.setup = lossy_setup();
  cfg.kappa = 2.0;
  cfg.mu = 3.0;
  cfg.scheduler = SchedulerKind::StaticLp;
  cfg.lp_objective = Objective::Loss;
  cfg.duration_s = 0.4;
  const auto model = cfg.setup.to_model(cfg.packet_bytes);
  cfg.offered_bps =
      optimal_rate(model, cfg.mu) * static_cast<double>(cfg.packet_bytes) * 8.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.packets_delivered_window, 0u);
  EXPECT_NEAR(r.achieved_kappa, 2.0, 0.05);
  EXPECT_NEAR(r.achieved_mu, 3.0, 0.05);
}

TEST(Experiment, ProportionalSchedulerMatchesMptcpIdeal) {
  ExperimentConfig cfg;
  cfg.setup = diverse_setup();
  cfg.scheduler = SchedulerKind::Proportional;
  cfg.duration_s = 0.4;
  const auto r = run_experiment(cfg);
  const double ceiling = 250.0 * header_efficiency(cfg.packet_bytes);
  EXPECT_GT(r.achieved_mbps, ceiling * 0.93);
  EXPECT_NEAR(r.achieved_mu, 1.0, 1e-9);
}

TEST(Experiment, FixedSchedulerUsesAllChannels) {
  ExperimentConfig cfg;
  cfg.setup = identical_setup(50);
  cfg.kappa = 5.0;
  cfg.mu = 5.0;
  cfg.scheduler = SchedulerKind::Fixed;
  cfg.duration_s = 0.3;
  const auto r = run_experiment(cfg);
  EXPECT_NEAR(r.achieved_kappa, 5.0, 1e-9);
  EXPECT_NEAR(r.achieved_mu, 5.0, 1e-9);
  EXPECT_GT(r.achieved_mbps, 40.0);
}

TEST(Experiment, DeterministicGivenSeed) {
  ExperimentConfig cfg;
  cfg.setup = lossy_setup();
  cfg.kappa = 1.5;
  cfg.mu = 2.5;
  cfg.duration_s = 0.2;
  cfg.seed = 77;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.achieved_mbps, b.achieved_mbps);
  EXPECT_EQ(a.loss_fraction, b.loss_fraction);
  EXPECT_EQ(a.packets_delivered_window, b.packets_delivered_window);
  cfg.seed = 78;
  const auto c = run_experiment(cfg);
  EXPECT_NE(a.packets_delivered_window, c.packets_delivered_window);
}

TEST(Experiment, RejectsBadConfig) {
  ExperimentConfig cfg;
  cfg.setup = identical_setup(100);
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)run_experiment(cfg), PreconditionError);
  cfg.duration_s = 0.1;
  cfg.packet_bytes = 4;
  EXPECT_THROW((void)run_experiment(cfg), PreconditionError);
}

}  // namespace
}  // namespace mcss::workload
