// Tests for SipHash-2-4 and the authenticated wire mode, including
// end-to-end behavior over corrupting (Byzantine) channels.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "crypto/siphash.hpp"
#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "protocol/wire.hpp"
#include "util/rng.hpp"

namespace mcss {
namespace {

crypto::SipHashKey test_key() {
  crypto::SipHashKey key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return key;
}

// ---------------------------------------------------------------- SipHash

TEST(SipHash, ReferenceVectors) {
  // First eight vectors_sip64 entries from the reference implementation:
  // key = 00 01 .. 0f, input = first n bytes of 00 01 02 ...
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL,
  };
  const auto key = test_key();
  std::vector<std::uint8_t> input;
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_EQ(crypto::siphash24(input, key), expected[n]) << "length " << n;
    input.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, LongInputsAreStable) {
  // Multi-block inputs (> 8 bytes) exercise the block loop; determinism
  // and avalanche checked against a second computation.
  const auto key = test_key();
  std::vector<std::uint8_t> data(1000);
  Rng rng(1);
  for (auto& b : data) b = rng.byte();
  const auto h1 = crypto::siphash24(data, key);
  EXPECT_EQ(h1, crypto::siphash24(data, key));
  data[500] ^= 0x01;
  EXPECT_NE(h1, crypto::siphash24(data, key));
}

TEST(SipHash, KeySensitivity) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  auto k1 = test_key();
  auto k2 = test_key();
  k2[15] ^= 0x80;
  EXPECT_NE(crypto::siphash24(data, k1), crypto::siphash24(data, k2));
}

TEST(SipHash, AvalancheOnSingleBitFlips) {
  // Every single-bit flip of a 64-byte message must change the tag.
  const auto key = test_key();
  std::vector<std::uint8_t> data(64);
  Rng rng(2);
  for (auto& b : data) b = rng.byte();
  const auto baseline = crypto::siphash24(data, key);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crypto::siphash24(data, key), baseline) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

TEST(SipHash, TagHelpersRoundtrip) {
  const auto key = test_key();
  const std::vector<std::uint8_t> data{9, 8, 7};
  const auto tag = crypto::siphash24_tag(data, key);
  EXPECT_TRUE(crypto::tag_equal(tag, crypto::siphash24_tag(data, key)));
  auto other = tag;
  other[0] ^= 1;
  EXPECT_FALSE(crypto::tag_equal(tag, other));
  EXPECT_FALSE(crypto::tag_equal(tag, std::vector<std::uint8_t>{1, 2}));
}

// ---------------------------------------------------------------- wire auth

TEST(WireAuth, TaggedRoundtrip) {
  const auto key = test_key();
  proto::ShareFrame f;
  f.packet_id = 7;
  f.k = 2;
  f.share_index = 3;
  f.payload = {1, 2, 3, 4};
  const auto bytes = proto::encode(f, &key);
  EXPECT_EQ(bytes.size(), proto::kHeaderSize + 4 + proto::kTagSize);

  proto::DecodeStatus status;
  const auto back = proto::decode(bytes, &key, &status);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(status, proto::DecodeStatus::Ok);
  EXPECT_EQ(*back, f);
}

TEST(WireAuth, TamperedFrameFailsAuthentication) {
  const auto key = test_key();
  proto::ShareFrame f;
  f.packet_id = 7;
  f.k = 2;
  f.share_index = 3;
  f.payload = {1, 2, 3, 4};
  auto bytes = proto::encode(f, &key);

  for (const std::size_t at : {std::size_t{3},                   // header (k)
                               proto::kHeaderSize + 1,           // payload
                               bytes.size() - 1}) {              // tag itself
    auto tampered = bytes;
    tampered[at] ^= 0x40;
    proto::DecodeStatus status;
    EXPECT_FALSE(proto::decode(tampered, &key, &status).has_value()) << at;
    EXPECT_EQ(status, proto::DecodeStatus::AuthFailed) << at;
  }
}

TEST(WireAuth, KeyedReceiverRejectsUnauthenticatedFrames) {
  const auto key = test_key();
  proto::ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  f.payload = {5};
  const auto plain = proto::encode(f);  // no tag
  proto::DecodeStatus status;
  EXPECT_FALSE(proto::decode(plain, &key, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::AuthFailed);
}

TEST(WireAuth, WrongKeyFailsAuthentication) {
  const auto key = test_key();
  auto wrong = key;
  wrong[0] ^= 1;
  proto::ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  f.payload = {5};
  const auto bytes = proto::encode(f, &key);
  proto::DecodeStatus status;
  EXPECT_FALSE(proto::decode(bytes, &wrong, &status).has_value());
  EXPECT_EQ(status, proto::DecodeStatus::AuthFailed);
}

TEST(WireAuth, UnkeyedDecodeParsesTaggedFrame) {
  // Observation tooling without the key can still parse (not verify).
  const auto key = test_key();
  proto::ShareFrame f;
  f.packet_id = 1;
  f.k = 1;
  f.share_index = 1;
  f.payload = {5};
  const auto bytes = proto::encode(f, &key);
  const auto back = proto::decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, f.payload);
}

// ------------------------------------------------- end to end, Byzantine

struct AuthTestbed {
  net::Simulator sim;
  std::vector<std::unique_ptr<net::SimChannel>> channels;
  std::unique_ptr<proto::Receiver> receiver;
  std::unique_ptr<proto::Sender> sender;
  std::map<std::uint64_t, std::vector<std::uint8_t>> delivered;

  AuthTestbed(double corrupt_prob, bool keyed) {
    Rng seeder(11);
    std::vector<net::SimChannel*> raw;
    for (int i = 0; i < 5; ++i) {
      net::ChannelConfig cfg;
      cfg.rate_bps = 100e6;
      cfg.corrupt = corrupt_prob;
      channels.push_back(std::make_unique<net::SimChannel>(sim, cfg, seeder.fork()));
      raw.push_back(channels.back().get());
    }
    proto::ReceiverConfig rx_cfg;
    proto::SenderConfig tx_cfg;
    if (keyed) {
      rx_cfg.auth_key = test_key();
      tx_cfg.auth_key = test_key();
    }
    receiver = std::make_unique<proto::Receiver>(sim, rx_cfg);
    for (auto* ch : raw) receiver->attach(*ch);
    receiver->set_deliver([this](std::uint64_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
    sender = std::make_unique<proto::Sender>(
        sim, raw, std::make_unique<proto::DynamicScheduler>(2.0, 4.0, 5),
        seeder.fork(), nullptr, tx_cfg);
  }
};

std::vector<std::uint8_t> marked_payload(int i) {
  std::vector<std::uint8_t> p(600);
  for (std::size_t j = 0; j < p.size(); ++j) {
    p[j] = static_cast<std::uint8_t>(i * 7 + static_cast<int>(j));
  }
  return p;
}

TEST(WireAuth, CorruptionSilentlyPoisonsUnauthenticatedPackets) {
  // Without authentication, a corrupted share reconstructs to garbage
  // with NO error: at least one delivered payload differs from what was
  // sent. This is the failure mode the authenticated mode exists for.
  AuthTestbed t(/*corrupt_prob=*/0.05, /*keyed=*/false);
  const int count = 400;
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 300),
                      [&t, i] { (void)t.sender->send(marked_payload(i)); });
  }
  t.sim.run();
  int poisoned = 0;
  for (const auto& [id, payload] : t.delivered) {
    if (payload != marked_payload(static_cast<int>(id) - 1)) ++poisoned;
  }
  EXPECT_GT(poisoned, 0);
  EXPECT_EQ(t.receiver->stats().auth_failures, 0u);
}

TEST(WireAuth, AuthenticationQuarantinesCorruptedShares) {
  // Same Byzantine network, keyed endpoints: every delivered packet is
  // intact; corrupted shares are counted and dropped, and packets whose
  // surviving share count fell below k are lost, not poisoned.
  AuthTestbed t(/*corrupt_prob=*/0.05, /*keyed=*/true);
  const int count = 400;
  for (int i = 0; i < count; ++i) {
    t.sim.schedule_at(net::from_micros(static_cast<double>(i) * 300),
                      [&t, i] { (void)t.sender->send(marked_payload(i)); });
  }
  t.sim.run();
  EXPECT_GT(t.receiver->stats().auth_failures, 0u);
  for (const auto& [id, payload] : t.delivered) {
    ASSERT_EQ(payload, marked_payload(static_cast<int>(id) - 1)) << id;
  }
  // k=2, m=4 tolerates two corrupted shares per packet: most packets
  // still make it.
  EXPECT_GT(t.delivered.size(), static_cast<std::size_t>(count) * 9 / 10);
}

TEST(WireAuth, KeyMismatchDeliversNothing) {
  AuthTestbed t(0.0, /*keyed=*/true);
  // Rewire the receiver with a different key.
  proto::ReceiverConfig rx_cfg;
  auto other = test_key();
  other[7] ^= 0xFF;
  rx_cfg.auth_key = other;
  auto fresh = std::make_unique<proto::Receiver>(t.sim, rx_cfg);
  for (auto& ch : t.channels) fresh->attach(*ch);
  int delivered = 0;
  fresh->set_deliver([&](std::uint64_t, std::vector<std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    (void)t.sender->send(marked_payload(i));
  }
  t.sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_GT(fresh->stats().auth_failures, 0u);
}

}  // namespace
}  // namespace mcss
