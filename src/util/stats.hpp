// Streaming statistics used by the measurement harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mcss {

/// Welford online mean/variance plus min/max, in O(1) space.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers percentile queries; sorts lazily on demand.
class PercentileTracker {
 public:
  explicit PercentileTracker(std::size_t reserve = 0) { samples_.reserve(reserve); }

  void add(double x) { samples_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Linear-interpolated percentile, q in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double q);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace mcss
