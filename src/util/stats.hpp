// Streaming statistics used by the measurement harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace mcss {

/// Welford online mean/variance plus min/max, in O(1) space.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers percentile queries; sorts lazily on demand.
///
/// Two modes:
///   - exact (default): every sample is kept, percentiles are exact.
///     Memory grows with the stream; identical behavior to the original
///     tracker, bit for bit.
///   - reservoir(capacity, seed): bounded memory. Keeps a uniform random
///     sample of at most `capacity` values via Algorithm R, driven by a
///     seeded mcss::Rng so runs are reproducible. Percentiles become
///     estimates; count() still reports every value ever seen.
class PercentileTracker {
 public:
  explicit PercentileTracker(std::size_t reserve = 0) { samples_.reserve(reserve); }

  /// Bounded-memory tracker keeping a uniform sample of `capacity`
  /// values (capacity must be positive).
  [[nodiscard]] static PercentileTracker reservoir(std::size_t capacity,
                                                   std::uint64_t seed = 1);

  void add(double x);
  /// Values observed (not values retained).
  [[nodiscard]] std::size_t count() const noexcept { return seen_; }
  /// Values currently retained (== count() in exact mode).
  [[nodiscard]] std::size_t retained() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] bool is_reservoir() const noexcept { return capacity_ != 0; }

  /// Fold another tracker's samples into this one. Exact + exact
  /// concatenates (still exact). A reservoir target resamples: the
  /// other's retained values are taken as representatives of its
  /// count() stream values and accepted with the weighted probability
  /// that makes the merged reservoir a uniform sample of both streams.
  void merge(const PercentileTracker& other);

  /// Linear-interpolated percentile, q in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double q);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
  std::size_t seen_ = 0;
  std::size_t capacity_ = 0;  ///< 0 = exact mode
  Rng rng_{1};
};

}  // namespace mcss
