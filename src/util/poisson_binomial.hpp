// Poisson binomial distribution (sum of independent non-identical
// Bernoulli trials).
//
// The paper's subset risk z(k,M) is the upper tail of this distribution
// with success probabilities z_i, and subset loss l(k,M) is the lower tail
// with probabilities 1-l_i. The O(m^2) dynamic program here scales far
// beyond the exact 2^m subset enumeration, and the two are cross-checked
// in tests.
#pragma once

#include <span>
#include <vector>

namespace mcss {

/// PMF of the Poisson binomial: result[j] = P(exactly j successes),
/// j in [0, probs.size()]. O(m^2) time, O(m) extra space.
[[nodiscard]] inline std::vector<double> poisson_binomial_pmf(
    std::span<const double> probs) {
  std::vector<double> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t used = 0;
  for (const double p : probs) {
    ++used;
    // Walk backwards so each trial is applied exactly once.
    for (std::size_t j = used; j > 0; --j) {
      pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
    }
    pmf[0] *= (1.0 - p);
  }
  return pmf;
}

/// P(at least k successes). k <= 0 gives 1; k > m gives 0.
[[nodiscard]] inline double poisson_binomial_tail_geq(
    std::span<const double> probs, int k) {
  if (k <= 0) return 1.0;
  if (static_cast<std::size_t>(k) > probs.size()) return 0.0;
  const auto pmf = poisson_binomial_pmf(probs);
  double tail = 0.0;
  for (std::size_t j = static_cast<std::size_t>(k); j < pmf.size(); ++j) {
    tail += pmf[j];
  }
  return tail;
}

/// P(fewer than k successes). Complement of the upper tail, computed
/// directly to avoid cancellation for tiny probabilities.
[[nodiscard]] inline double poisson_binomial_tail_lt(
    std::span<const double> probs, int k) {
  if (k <= 0) return 0.0;
  const auto pmf = poisson_binomial_pmf(probs);
  double tail = 0.0;
  const auto stop = std::min(pmf.size(), static_cast<std::size_t>(k));
  for (std::size_t j = 0; j < stop; ++j) tail += pmf[j];
  return tail;
}

}  // namespace mcss
