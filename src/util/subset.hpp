// Bitmask subset utilities.
//
// Channel subsets M ⊆ C are represented as 32-bit masks over channel
// indices; the model code enumerates subsets, iterates members, and walks
// sub-subsets with these helpers. All functions are constexpr and
// allocation-free except `mask_members`.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace mcss {

/// A subset of channel indices, bit i set <=> channel i is a member.
using Mask = std::uint32_t;

/// Number of channels in the subset.
[[nodiscard]] constexpr int mask_size(Mask m) noexcept { return std::popcount(m); }

/// Mask containing channels [0, n).
[[nodiscard]] constexpr Mask full_mask(int n) noexcept {
  return n >= 32 ? ~Mask{0} : (Mask{1} << n) - 1;
}

/// True if channel i is in the subset.
[[nodiscard]] constexpr bool mask_contains(Mask m, int i) noexcept {
  return (m >> i) & 1u;
}

/// Index of the lowest set bit; undefined for m == 0.
[[nodiscard]] constexpr int mask_first(Mask m) noexcept { return std::countr_zero(m); }

/// Member indices of the subset, ascending.
[[nodiscard]] inline std::vector<int> mask_members(Mask m) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(mask_size(m)));
  while (m != 0) {
    out.push_back(mask_first(m));
    m &= m - 1;
  }
  return out;
}

/// Invoke f(i) for each member index i of the subset, ascending.
template <typename F>
constexpr void for_each_member(Mask m, F&& f) {
  while (m != 0) {
    f(mask_first(m));
    m &= m - 1;
  }
}

/// Invoke f(K) for every subset K of the given mask, including the empty
/// set and the mask itself. Enumeration is the standard subset-walk; the
/// number of calls is 2^|mask|, so callers guard |mask| (the model caps
/// exact enumeration at 20 channels).
template <typename F>
constexpr void for_each_subset(Mask mask, F&& f) {
  Mask sub = mask;
  for (;;) {
    f(static_cast<Mask>(mask & ~sub));  // visits subsets in increasing order
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

/// Invoke f(M) for every nonempty subset M of channels [0, n).
template <typename F>
constexpr void for_each_nonempty_subset(int n, F&& f) {
  const Mask all = full_mask(n);
  for (Mask m = 1; m <= all && m != 0; ++m) f(m);
}

}  // namespace mcss
