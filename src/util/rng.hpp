// Deterministic pseudo-random number generation for simulations.
//
// Everything random in this library flows from a seeded Xoshiro256** stream,
// so every experiment is reproducible from its seed. The generator satisfies
// std::uniform_random_bit_generator and adds the distributions the protocol
// and simulator actually need (uniform, Bernoulli, exponential).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <span>

namespace mcss {

/// SplitMix64 step; used to expand a single seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG (Blackman/Vigna).
///
/// Deterministic given a seed; never produces an all-zero state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so similar seeds diverge.
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed value with the given mean (>0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Random byte, convenient for filling secret/share payloads.
  [[nodiscard]] std::uint8_t byte() noexcept {
    return static_cast<std::uint8_t>((*this)() >> 56);
  }

  /// Fill `out` with uniform bytes, eight per generator step — the bulk
  /// counterpart of byte() (which burns a whole 64-bit draw per byte).
  /// One call per packet keeps coefficient generation off the split hot
  /// path.
  void fill(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
      const std::uint64_t v = (*this)();
      std::memcpy(out.data() + i, &v, 8);
    }
    if (i < out.size()) {
      std::uint64_t v = (*this)();
      for (; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
      }
    }
  }

  /// Derive an independent child stream (for per-component RNGs).
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mcss
