#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcss {

void OnlineStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

PercentileTracker PercentileTracker::reservoir(std::size_t capacity,
                                               std::uint64_t seed) {
  PercentileTracker t;
  t.capacity_ = capacity ? capacity : 1;
  t.samples_.reserve(t.capacity_);
  t.rng_ = Rng(seed);
  return t;
}

void PercentileTracker::add(double x) {
  ++seen_;
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: element number `seen_` survives with probability
  // capacity/seen_, replacing a uniformly chosen resident.
  const std::uint64_t j = rng_.uniform_int(seen_);
  if (j < capacity_) {
    samples_[j] = x;
    sorted_ = false;
  }
}

void PercentileTracker::merge(const PercentileTracker& other) {
  if (other.seen_ == 0) return;
  if (capacity_ == 0) {
    // Exact target: concatenate whatever the other retained (its full
    // stream when it is exact too, an unbiased sample otherwise).
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    seen_ += other.seen_;
    sorted_ = false;
    return;
  }
  if (!other.is_reservoir()) {
    // The other's retained values ARE its stream; feeding them through
    // add() continues Algorithm R exactly.
    for (const double x : other.samples_) add(x);
    return;
  }
  // Reservoir + reservoir: draw the merged reservoir from the two pools
  // with stream-size-proportional weights. Each retained value stands
  // for seen/retained stream values; retained values within a reservoir
  // are exchangeable, so consuming them in stored order is unbiased.
  const std::vector<double> a = std::move(samples_);
  const std::vector<double>& b = other.samples_;
  const double per_a =
      a.empty() ? 0.0 : static_cast<double>(seen_) / static_cast<double>(a.size());
  const double per_b = b.empty() ? 0.0
                                 : static_cast<double>(other.seen_) /
                                       static_cast<double>(b.size());
  double wa = static_cast<double>(seen_);
  double wb = static_cast<double>(other.seen_);
  std::size_t ia = 0;
  std::size_t ib = 0;
  samples_.clear();
  while (samples_.size() < capacity_ && (ia < a.size() || ib < b.size())) {
    bool take_a;
    if (ia >= a.size()) {
      take_a = false;
    } else if (ib >= b.size()) {
      take_a = true;
    } else {
      take_a = rng_.uniform() * (wa + wb) < wa;
    }
    if (take_a) {
      samples_.push_back(a[ia++]);
      wa = std::max(0.0, wa - per_a);
    } else {
      samples_.push_back(b[ib++]);
      wb = std::max(0.0, wb - per_b);
    }
  }
  seen_ += other.seen_;
  sorted_ = false;
}

double PercentileTracker::percentile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace mcss
