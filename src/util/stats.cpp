#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcss {

void OnlineStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PercentileTracker::percentile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace mcss
