#include "util/rng.hpp"

#include <cmath>

namespace mcss {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; 1 - uniform() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace mcss
