// Precondition and invariant checking helpers.
//
// Library entry points validate their arguments with `ensure`, which throws
// std::invalid_argument on violation; internal invariants use `ensure_state`,
// which throws std::logic_error. Both include the offending expression text
// so failures are diagnosable from the what() string alone.
#pragma once

#include <stdexcept>
#include <string>

namespace mcss {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg) {
  throw PreconditionError("precondition failed: " + std::string(expr) +
                          (msg.empty() ? "" : " (" + msg + ")"));
}
[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg) {
  throw InvariantError("invariant violated: " + std::string(expr) +
                       (msg.empty() ? "" : " (" + msg + ")"));
}
}  // namespace detail

}  // namespace mcss

/// Validate a caller-supplied precondition; throws mcss::PreconditionError.
#define MCSS_ENSURE(expr, msg)                         \
  do {                                                 \
    if (!(expr)) {                                     \
      ::mcss::detail::throw_precondition(#expr, msg);  \
    }                                                  \
  } while (false)

/// Validate an internal invariant; throws mcss::InvariantError.
#define MCSS_INVARIANT(expr, msg)                   \
  do {                                              \
    if (!(expr)) {                                  \
      ::mcss::detail::throw_invariant(#expr, msg);  \
    }                                               \
  } while (false)
