#include "util/frame_pool.hpp"

#include <algorithm>
#include <cstring>

#include "util/ensure.hpp"

namespace mcss::util {

FramePool::FramePool(std::size_t slot_bytes, std::size_t slots)
    : slot_bytes_(slot_bytes) {
  MCSS_ENSURE(slot_bytes > 0, "pool slots need a nonzero size");
  MCSS_ENSURE(slots > 0, "pool needs at least one slot");
  MCSS_ENSURE(slots < kNone, "slot count exceeds the index space");
  arena_.resize(slot_bytes_ * slots);
  refs_.assign(slots, 0);
  sizes_.assign(slots, 0);
  next_free_.resize(slots);
  // Thread the freelist in ascending order so fresh pools hand out
  // ascending slots (nicer cache behavior, deterministic tests).
  for (std::size_t i = 0; i + 1 < slots; ++i) {
    next_free_[i] = static_cast<std::uint32_t>(i + 1);
  }
  next_free_[slots - 1] = kNone;
  free_head_ = 0;
}

FrameRef FramePool::acquire() noexcept {
  if (free_head_ == kNone) {
    ++stats_.exhausted;
    return {};
  }
  const std::uint32_t slot = free_head_;
  free_head_ = next_free_[slot];
  refs_[slot] = 1;
  sizes_[slot] = 0;
  ++in_use_;
  ++stats_.acquired;
  stats_.high_water = std::max(stats_.high_water, in_use_);
  return FrameRef(this, slot);
}

FrameRef FramePool::acquire_copy(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() > slot_bytes_) {
    ++stats_.exhausted;
    return {};
  }
  FrameRef ref = acquire();
  if (ref) {
    std::memcpy(ref.data(), bytes.data(), bytes.size());
    ref.resize(bytes.size());
  }
  return ref;
}

void FramePool::release(std::uint32_t slot) noexcept {
  if (--refs_[slot] == 0) {
    next_free_[slot] = free_head_;
    free_head_ = slot;
    --in_use_;
  }
}

}  // namespace mcss::util
