// Fixed-slab frame arena for the batched datagram fast path.
//
// Every byte buffer on the live transport's hot path — encoded share
// frames waiting behind the impairment serializer, datagrams parked on a
// full kernel buffer, recvmmsg receive slots, and the protocol
// receiver's reassembly partials — lives in one of these pools instead
// of an ad-hoc std::vector. (The pool started life in mcss::transport;
// it moved down to util when proto::Receiver grew arena-backed partial
// storage, since protocol sits below transport in the layering.
// transport/frame_pool.hpp forwards the old names.) The design is the classic
// fixed-size allocator (netsim's Alloc/mem.h idiom): one contiguous
// arena carved into equal slots, a singly-linked freelist threaded
// through the slot headers, O(1) acquire/release, and no malloc after
// construction. Exhaustion is a *policy*, not an error: acquire()
// returns a null FrameRef, the caller drops the frame and bumps a stat,
// and the transport degrades exactly like a full qdisc — never by
// falling back to heap allocation on the hot path.
//
// FrameRef is a ref-counted handle (copying bumps a plain counter; the
// pool is single-event-loop property, so counts are not atomic). The
// impairment's duplicate knob and a parked TX batch can thus alias one
// slot without copying bytes. The arena is one mmap-able block on
// purpose: the io_uring poller backend registers it with
// IORING_REGISTER_BUFFERS so fixed-buffer reads can target slots
// directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mcss::util {

class FramePool;

/// Handle to one pool slot. Null (default-constructed, or from an
/// exhausted pool) refs are falsy and safe to destroy. Copies share the
/// slot; the slot returns to the freelist when the last ref drops.
class FrameRef {
 public:
  FrameRef() = default;
  ~FrameRef() { reset(); }
  FrameRef(const FrameRef& other) noexcept;
  FrameRef& operator=(const FrameRef& other) noexcept;
  FrameRef(FrameRef&& other) noexcept
      : pool_(other.pool_), slot_(other.slot_) {
    other.pool_ = nullptr;
  }
  FrameRef& operator=(FrameRef&& other) noexcept;

  [[nodiscard]] explicit operator bool() const noexcept {
    return pool_ != nullptr;
  }

  /// Slot payload. data() is stable for the life of the ref (slots never
  /// move); size() is the logical frame length set via resize().
  [[nodiscard]] std::uint8_t* data() noexcept;
  [[nodiscard]] const std::uint8_t* data() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;
  /// Set the logical length; must not exceed the pool's slot_bytes().
  void resize(std::size_t n) noexcept;
  [[nodiscard]] std::span<std::uint8_t> span() noexcept {
    return {data(), size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> cspan() const noexcept {
    return {data(), size()};
  }

  /// Index of the slot inside the pool arena (for registered-buffer I/O).
  [[nodiscard]] std::uint32_t slot() const noexcept { return slot_; }

  /// Drop this reference (slot freed when it was the last one).
  void reset() noexcept;

 private:
  friend class FramePool;
  FrameRef(FramePool* pool, std::uint32_t slot) noexcept
      : pool_(pool), slot_(slot) {}

  FramePool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
};

class FramePool {
 public:
  struct Stats {
    std::uint64_t acquired = 0;    ///< successful acquire()s
    std::uint64_t exhausted = 0;   ///< acquire()s that found no free slot
    std::size_t high_water = 0;    ///< peak slots simultaneously in use
  };

  /// One arena of `slots` slots of `slot_bytes` each. All memory is
  /// allocated here; the hot path never touches the heap again.
  FramePool(std::size_t slot_bytes, std::size_t slots);

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// O(1). Null ref when every slot is in use (counted in stats).
  [[nodiscard]] FrameRef acquire() noexcept;

  /// acquire() + copy `bytes` into the slot. Null ref when exhausted or
  /// when `bytes` exceeds slot_bytes() (both counted as exhaustion —
  /// oversize frames cannot ever be pooled, and callers treat both as
  /// the same drop).
  [[nodiscard]] FrameRef acquire_copy(
      std::span<const std::uint8_t> bytes) noexcept;

  [[nodiscard]] std::size_t slot_bytes() const noexcept { return slot_bytes_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return refs_.size(); }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t available() const noexcept {
    return capacity() - in_use_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The contiguous arena, for IORING_REGISTER_BUFFERS.
  [[nodiscard]] std::uint8_t* arena_data() noexcept { return arena_.data(); }
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.size();
  }

 private:
  friend class FrameRef;
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  [[nodiscard]] std::uint8_t* slot_data(std::uint32_t slot) noexcept {
    return arena_.data() + static_cast<std::size_t>(slot) * slot_bytes_;
  }
  void retain(std::uint32_t slot) noexcept { ++refs_[slot]; }
  void release(std::uint32_t slot) noexcept;

  std::size_t slot_bytes_;
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint32_t> refs_;       ///< 0 = free
  std::vector<std::uint32_t> sizes_;      ///< logical frame length per slot
  std::vector<std::uint32_t> next_free_;  ///< freelist links
  std::uint32_t free_head_ = kNone;
  std::size_t in_use_ = 0;
  Stats stats_;
};

// -- FrameRef inline bodies that need FramePool's definition ------------

inline FrameRef::FrameRef(const FrameRef& other) noexcept
    : pool_(other.pool_), slot_(other.slot_) {
  if (pool_ != nullptr) pool_->retain(slot_);
}

inline FrameRef& FrameRef::operator=(const FrameRef& other) noexcept {
  if (this != &other) {
    if (other.pool_ != nullptr) other.pool_->retain(other.slot_);
    reset();
    pool_ = other.pool_;
    slot_ = other.slot_;
  }
  return *this;
}

inline FrameRef& FrameRef::operator=(FrameRef&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = other.pool_;
    slot_ = other.slot_;
    other.pool_ = nullptr;
  }
  return *this;
}

inline std::uint8_t* FrameRef::data() noexcept {
  return pool_->slot_data(slot_);
}

inline const std::uint8_t* FrameRef::data() const noexcept {
  return pool_->slot_data(slot_);
}

inline std::size_t FrameRef::size() const noexcept {
  return pool_->sizes_[slot_];
}

inline void FrameRef::resize(std::size_t n) noexcept {
  pool_->sizes_[slot_] = static_cast<std::uint32_t>(n);
}

inline void FrameRef::reset() noexcept {
  if (pool_ != nullptr) {
    pool_->release(slot_);
    pool_ = nullptr;
  }
}

}  // namespace mcss::util
