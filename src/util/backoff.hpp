// Exponential backoff with decorrelated jitter.
//
// The retry schedule shared by the reliability layer (RTO escalation in
// feedback::RetransmitManager) and the live transport (EAGAIN re-flush
// pacing in transport::UdpChannel). Plain exponential backoff
// synchronizes retriers — every party that failed together retries
// together — so each delay is drawn uniformly from [base, prev * mult]
// and capped ("decorrelated jitter"): the expected delay still grows
// geometrically, but two backoffs started by the same event drift apart
// immediately. Seeded by Rng, so simulator-driven schedules stay
// deterministic.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace mcss {

struct BackoffConfig {
  std::int64_t base_ns = 1'000'000;     ///< first delay; also the floor
  std::int64_t cap_ns = 1'000'000'000;  ///< ceiling on any delay
  double multiplier = 3.0;              ///< growth of the jitter window
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig config, Rng rng)
      : config_(config), rng_(rng), prev_ns_(config.base_ns) {
    MCSS_ENSURE(config_.base_ns > 0, "backoff base must be positive");
    MCSS_ENSURE(config_.cap_ns >= config_.base_ns,
                "backoff cap must be at least the base");
    MCSS_ENSURE(config_.multiplier >= 1.0, "backoff multiplier must be >= 1");
  }

  /// Next delay: min(cap, uniform(base, prev * multiplier)). The first
  /// call draws from [base, base * multiplier].
  [[nodiscard]] std::int64_t next() noexcept {
    prev_ns_ = step(rng_, config_, prev_ns_);
    ++attempts_;
    return prev_ns_;
  }

  /// Success: the next failure starts over from the base delay.
  void reset() noexcept {
    prev_ns_ = config_.base_ns;
    attempts_ = 0;
  }

  [[nodiscard]] std::uint32_t attempts() const noexcept { return attempts_; }

  /// The single decorrelated-jitter step, for callers that keep per-item
  /// `prev` state externally (e.g. one RetransmitManager tracking many
  /// outstanding packets with one shared Rng).
  [[nodiscard]] static std::int64_t step(Rng& rng, const BackoffConfig& config,
                                         std::int64_t prev_ns) noexcept {
    const double hi = static_cast<double>(std::max(prev_ns, config.base_ns)) *
                      config.multiplier;
    const double drawn =
        rng.uniform(static_cast<double>(config.base_ns),
                    std::min(hi, static_cast<double>(config.cap_ns)));
    return std::clamp(static_cast<std::int64_t>(drawn), config.base_ns,
                      config.cap_ns);
  }

 private:
  BackoffConfig config_;
  Rng rng_;
  std::int64_t prev_ns_;
  std::uint32_t attempts_ = 0;
};

}  // namespace mcss
