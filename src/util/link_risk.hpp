// Correlated subset risk over shared links.
//
// The paper's z(k, M) assumes channels are compromised independently, so
// the subset risk is a Poisson-binomial tail over per-channel z_i. On a
// routed topology the adversary taps LINKS, not channels: link l is
// tapped independently with probability w_l, and a channel is exposed
// iff ANY link on its path is tapped. Channels whose paths share a link
// are exposed together — positively correlated — and the independent
// model is optimistic exactly there.
//
// Exact computation: group the links by their channel-coverage mask
// (the set of channels whose paths traverse the link). All links in one
// group are exchangeable for exposure purposes — what matters is
// whether AT LEAST one of them is tapped, which happens with
// probability p_g = 1 - prod_{l in g} (1 - w_l). Exposure outcomes are
// then a product measure over the G groups; enumerating the 2^G group
// subsets and unioning coverage masks gives the exact distribution of
// the exposed-channel set. G is at most min(#links, 2^M - 1) and in
// practice small (each distinct path-overlap pattern is one group);
// enumeration is capped at kMaxLinkGroups like the model's exact
// subset-risk cap.
//
// When no two paths share a link every group covers exactly one
// channel, the measure factorizes, and correlated_subset_risk equals
// poisson_binomial_tail_geq over the marginal path risks — the
// disjoint-path control the topology bench gates on.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ensure.hpp"
#include "util/poisson_binomial.hpp"
#include "util/subset.hpp"

namespace mcss {

/// A subset of link ids, bit l set <=> link l is a member. Links are
/// 64-wide (channels stay 32-wide, see util/subset.hpp).
using LinkMask = std::uint64_t;

/// Number of links in the subset.
[[nodiscard]] constexpr int link_mask_size(LinkMask m) noexcept {
  return std::popcount(m);
}

/// Mask containing links [0, n).
[[nodiscard]] constexpr LinkMask full_link_mask(int n) noexcept {
  return n >= 64 ? ~LinkMask{0} : (LinkMask{1} << n) - 1;
}

/// True if link l is in the subset.
[[nodiscard]] constexpr bool link_mask_contains(LinkMask m, int l) noexcept {
  return (m >> l) & 1u;
}

/// Channels exposed when exactly the links in `tapped` are tapped: the
/// union over channels whose path intersects the tapped set.
[[nodiscard]] inline Mask exposed_channel_mask(
    LinkMask tapped, std::span<const LinkMask> channel_links) {
  Mask exposed = 0;
  for (std::size_t i = 0; i < channel_links.size(); ++i) {
    if ((channel_links[i] & tapped) != 0) {
      exposed |= Mask{1} << i;
    }
  }
  return exposed;
}

/// Marginal per-channel exposure probability: P(any link of channel i's
/// path is tapped) = 1 - prod_{l in path_i} (1 - w_l). Feeding these to
/// poisson_binomial_tail_geq yields the INDEPENDENT-channel prediction,
/// which ignores that shared links expose several channels at once.
[[nodiscard]] inline std::vector<double> marginal_channel_risks(
    std::span<const double> link_risks,
    std::span<const LinkMask> channel_links) {
  std::vector<double> z(channel_links.size(), 0.0);
  for (std::size_t i = 0; i < channel_links.size(); ++i) {
    double survive = 1.0;
    LinkMask m = channel_links[i];
    while (m != 0) {
      const int l = std::countr_zero(m);
      m &= m - 1;
      MCSS_ENSURE(static_cast<std::size_t>(l) < link_risks.size(),
                  "channel path references an unknown link");
      survive *= 1.0 - link_risks[static_cast<std::size_t>(l)];
    }
    z[i] = 1.0 - survive;
  }
  return z;
}

/// Exact-enumeration cap: at most this many coverage groups (2^20 group
/// subsets), mirroring the model's 20-channel exact subset-risk cap.
inline constexpr int kMaxLinkGroups = 20;

/// One coverage group: the channels its links expose, and the
/// probability that at least one of its links is tapped.
struct LinkGroup {
  Mask covers = 0;
  double tap_probability = 0.0;
};

/// Collapse links into coverage groups (see the header comment). Links
/// with empty coverage (on no channel's path) are dropped — they can
/// never expose anything. Groups come out keyed by ascending coverage
/// mask so the result is deterministic.
[[nodiscard]] inline std::vector<LinkGroup> link_coverage_groups(
    std::span<const double> link_risks,
    std::span<const LinkMask> channel_links) {
  MCSS_ENSURE(channel_links.size() <= 32, "at most 32 channels");
  MCSS_ENSURE(link_risks.size() <= 64, "at most 64 links");
  // survive[mask] = prod over links covering exactly `mask` of (1 - w_l)
  std::unordered_map<Mask, double> survive;
  for (std::size_t l = 0; l < link_risks.size(); ++l) {
    MCSS_ENSURE(link_risks[l] >= 0.0 && link_risks[l] <= 1.0,
                "link risk outside [0, 1]");
    Mask covers = 0;
    for (std::size_t i = 0; i < channel_links.size(); ++i) {
      if (link_mask_contains(channel_links[i], static_cast<int>(l))) {
        covers |= Mask{1} << i;
      }
    }
    if (covers == 0) continue;
    auto [it, inserted] = survive.try_emplace(covers, 1.0);
    it->second *= 1.0 - link_risks[l];
  }
  std::vector<LinkGroup> groups;
  groups.reserve(survive.size());
  for (const auto& [covers, s] : survive) {
    groups.push_back({covers, 1.0 - s});
  }
  std::sort(groups.begin(), groups.end(),
            [](const LinkGroup& a, const LinkGroup& b) {
              return a.covers < b.covers;
            });
  return groups;
}

/// Exact P(at least k channels exposed) when link l is tapped
/// independently with probability link_risks[l] and channel i's path is
/// channel_links[i]. This is the correlated generalization of the
/// paper's z(k, M); with disjoint paths it reduces to the
/// Poisson-binomial tail over marginal_channel_risks.
[[nodiscard]] inline double correlated_subset_risk(
    std::span<const double> link_risks,
    std::span<const LinkMask> channel_links, int k) {
  if (k <= 0) return 1.0;
  if (static_cast<std::size_t>(k) > channel_links.size()) return 0.0;
  const auto groups = link_coverage_groups(link_risks, channel_links);
  const int g = static_cast<int>(groups.size());
  MCSS_ENSURE(g <= kMaxLinkGroups,
              "too many distinct link-coverage groups for exact "
              "enumeration (cap 20)");
  double risk = 0.0;
  // Enumerate which GROUPS fire (have >= 1 tapped link); outcomes are
  // independent across groups, and the exposed set is the union of the
  // firing groups' coverage masks.
  for_each_subset(full_mask(g), [&](Mask fired) {
    double p = 1.0;
    Mask exposed = 0;
    for (int j = 0; j < g; ++j) {
      const auto& grp = groups[static_cast<std::size_t>(j)];
      if (mask_contains(fired, j)) {
        p *= grp.tap_probability;
        exposed |= grp.covers;
      } else {
        p *= 1.0 - grp.tap_probability;
      }
    }
    if (mask_size(exposed) >= k) risk += p;
  });
  return risk;
}

/// The independent-channel prediction for the same inputs — what the
/// paper's model would report if it saw only per-channel marginals.
/// correlated_subset_risk >= this wherever paths overlap (for k >= 2),
/// with equality on disjoint paths; the topology bench gates on the gap.
[[nodiscard]] inline double independent_subset_risk(
    std::span<const double> link_risks,
    std::span<const LinkMask> channel_links, int k) {
  const auto z = marginal_channel_risks(link_risks, channel_links);
  return poisson_binomial_tail_geq(z, k);
}

}  // namespace mcss
