#include "net/simulator.hpp"

#include <utility>

#include "util/ensure.hpp"

namespace mcss::net {

void Simulator::schedule_at(SimTime t, Callback fn) {
  MCSS_ENSURE(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(SimTime delay, Callback fn) {
  MCSS_ENSURE(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::dispatch(Event&& e) {
  now_ = e.time;
  ++processed_;
  e.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    dispatch(queue_.pop());
  }
}

void Simulator::run_until(SimTime t) {
  MCSS_ENSURE(t >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.min_time() <= t) {
    dispatch(queue_.pop());
  }
  now_ = t;
}

std::uint64_t Simulator::run_before(SimTime t) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && queue_.min_time() < t) {
    dispatch(queue_.pop());
    ++processed;
  }
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  dispatch(queue_.pop());
  return true;
}

}  // namespace mcss::net
