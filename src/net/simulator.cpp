#include "net/simulator.hpp"

#include <utility>

#include "util/ensure.hpp"

namespace mcss::net {

void Simulator::schedule_at(SimTime t, Callback fn) {
  MCSS_ENSURE(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(SimTime delay, Callback fn) {
  MCSS_ENSURE(delay >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::dispatch(Event&& e) {
  now_ = e.time;
  ++processed_;
  e.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(e));
  }
}

void Simulator::run_until(SimTime t) {
  MCSS_ENSURE(t >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(e));
  }
  now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  dispatch(std::move(e));
  return true;
}

}  // namespace mcss::net
