// Extractable event store for the discrete-event simulator.
//
// A binary min-heap keyed by (time, sequence number). Unlike
// std::priority_queue — whose const top() forced the old
// `std::move(const_cast<Event&>(queue_.top()))` pattern, undefined
// behavior that _GLIBCXX_DEBUG rejects — pop() extracts the minimum
// element BY VALUE: the element is moved out of the backing vector
// before the heap is re-established, so no const object is ever
// mutated. Shared by the sequential net::Simulator and every logical
// process of net::psim::PartitionedSimulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/sim_time.hpp"

namespace mcss::net {

/// One scheduled callback. Events at equal times fire in scheduling
/// (sequence-number) order, which keeps runs bit-reproducible.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
};

class EventHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Timestamp of the earliest event. Precondition: !empty().
  [[nodiscard]] SimTime min_time() const noexcept {
    return slots_.front().time;
  }

  void reserve(std::size_t n) { slots_.reserve(n); }
  void clear() noexcept { slots_.clear(); }

  void push(Event e) {
    slots_.push_back(std::move(e));
    sift_up(slots_.size() - 1);
  }

  /// Extract the (time, seq)-minimum event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    Event out = std::move(slots_.front());
    if (slots_.size() > 1) {
      slots_.front() = std::move(slots_.back());
      slots_.pop_back();
      sift_down(0);
    } else {
      slots_.pop_back();
    }
    return out;
  }

 private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) noexcept {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(slots_[i], slots_[parent])) break;
      std::swap(slots_[i], slots_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = slots_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t smallest = left;
      if (right < n && before(slots_[right], slots_[left])) smallest = right;
      if (!before(slots_[smallest], slots_[i])) break;
      std::swap(slots_[i], slots_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> slots_;
};

}  // namespace mcss::net
