// Simulation time: signed 64-bit nanoseconds.
//
// Integer time makes event ordering exact and runs reproducible; doubles
// are converted only at the measurement boundary.
#pragma once

#include <cstdint>

namespace mcss::net {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosPerSecond = 1'000'000'000;

[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  // Round to the nearest nanosecond; plain truncation turns exact values
  // like 1e-4 s (which is 99999.999... in binary) into off-by-one ticks.
  const double scaled = s * static_cast<double>(kNanosPerSecond);
  return static_cast<SimTime>(scaled < 0 ? scaled - 0.5 : scaled + 0.5);
}

[[nodiscard]] constexpr SimTime from_millis(double ms) noexcept {
  return from_seconds(ms * 1e-3);
}

[[nodiscard]] constexpr SimTime from_micros(double us) noexcept {
  return from_seconds(us * 1e-6);
}

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSecond);
}

[[nodiscard]] constexpr double to_millis(SimTime t) noexcept {
  return to_seconds(t) * 1e3;
}

}  // namespace mcss::net
