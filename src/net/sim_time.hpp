// Simulation time: signed 64-bit nanoseconds.
//
// Integer time makes event ordering exact and runs reproducible; doubles
// are converted only at the measurement boundary.
#pragma once

#include <cmath>
#include <cstdint>

namespace mcss::net {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosPerSecond = 1'000'000'000;

// Each conversion scales by ONE exactly-representable power of ten and
// rounds with llround (half away from zero, no double rounding). The old
// `cast(scaled + 0.5)` idiom was subtly wrong: adding 0.5 can itself
// round up — from_seconds(0.49999999999999994e-9) used to yield 1 ns —
// and chaining from_millis through from_seconds double-rounded. Correct
// rounding also makes the round trip exact: for |t| <= 2^51 ns (~26
// days), from_seconds(to_seconds(t)) == t, so (time, seq) event order
// survives conversion round trips (pinned by a property test).

[[nodiscard]] inline SimTime from_seconds(double s) noexcept {
  return std::llround(s * 1e9);
}

[[nodiscard]] inline SimTime from_millis(double ms) noexcept {
  return std::llround(ms * 1e6);
}

[[nodiscard]] inline SimTime from_micros(double us) noexcept {
  return std::llround(us * 1e3);
}

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSecond);
}

[[nodiscard]] constexpr double to_millis(SimTime t) noexcept {
  return to_seconds(t) * 1e3;
}

}  // namespace mcss::net
