// The sender-facing channel abstraction.
//
// The protocol endpoints (proto::Sender, proto::Receiver, the feedback
// layer's ReliableLink) only ever need five operations from a channel:
// offer a frame, ask whether it is writable, ask how long its backlog
// would take to drain, install the far-end delivery callback, and
// install the writability-edge callback. ChannelPort names exactly that
// surface, so the same endpoints drive
//
//   - net::SimChannel        a point-to-point simulated link (the
//                            paper's model: one dedicated wire per
//                            channel), and
//   - topo::RoutedChannel    a multi-hop path through a routed
//                            topology, where several logical channels
//                            may share physical links (src/topo).
//
// without knowing which world they are in. The port is deliberately
// narrow: per-implementation surface (stats, set_loss, outage control,
// link drill-down) stays on the concrete types, which callers that
// configure or measure a channel keep holding by name.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/sim_time.hpp"

namespace mcss::net {

class ChannelPort {
 public:
  using DeliverFn = std::function<void(std::vector<std::uint8_t>)>;
  using WritableFn = std::function<void()>;

  virtual ~ChannelPort() = default;

  /// Offer a frame. False means the ingress queue refused it (tail
  /// drop); true means the frame entered the channel and will arrive,
  /// or be lost, per the channel's model.
  virtual bool try_send(std::vector<std::uint8_t> frame) = 0;

  /// epoll-style writability: ingress backlog below the watermark.
  [[nodiscard]] virtual bool ready() const noexcept = 0;

  /// Time to drain everything queued or serializing at the ingress —
  /// the dynamic scheduler's "least backlog" key.
  [[nodiscard]] virtual SimTime backlog_time() const noexcept = 0;

  /// Install the delivery callback (the far end).
  virtual void set_receiver(DeliverFn fn) = 0;

  /// Install the writability callback, fired on the not-ready -> ready
  /// transition.
  virtual void set_writable_callback(WritableFn fn) = 0;
};

}  // namespace mcss::net
