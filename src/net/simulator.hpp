// Deterministic discrete-event simulator.
//
// A single-threaded event loop over an extractable binary heap keyed by
// (time, sequence number): events at equal times fire in scheduling
// order, so runs are bit-reproducible. All simulated components (channels,
// protocol endpoints, traffic sources) schedule callbacks here.
//
// Re-entrancy invariants the run loops guarantee (and the parallel
// logical-process engine in net/parallel_sim relies on):
//   - A callback may schedule new events, including at exactly now();
//     those fire later in the SAME pass, in sequence order.
//   - run_until(t) drains same-time cascades: events scheduled at t by
//     events running at t still fire before the call returns.
//   - schedule_at rejects times strictly before now(); scheduling at
//     now() from within a dispatch is always legal.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/event_heap.hpp"
#include "net/sim_time.hpp"

namespace mcss::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Advances only while events run.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier throws).
  void schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  void schedule_in(SimTime delay, Callback fn);

  /// Run events until the queue is empty.
  void run();

  /// Run all events with time <= `t`, then set now() = t.
  void run_until(SimTime t);

  /// Run all events with time strictly < `t` (including cascades those
  /// events schedule below `t`), leaving now() at the last dispatched
  /// event — it never advances to `t`. This is the conservative-window
  /// primitive of the parallel engine: events at exactly `t` stay
  /// queued so cross-partition events injected at the window barrier
  /// (due >= t) merge ahead of or between them purely by (time, seq).
  /// Returns the number of events processed.
  std::uint64_t run_before(SimTime t);

  /// Process a single event; returns false if the queue was empty.
  bool step();

  /// Timestamp of the earliest pending event, if any.
  [[nodiscard]] std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.min_time();
  }

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

 private:
  void dispatch(Event&& e);

  EventHeap queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mcss::net
