// Deterministic discrete-event simulator.
//
// A single-threaded event loop over a priority queue keyed by
// (time, sequence number): events at equal times fire in scheduling
// order, so runs are bit-reproducible. All simulated components (channels,
// protocol endpoints, traffic sources) schedule callbacks here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/sim_time.hpp"

namespace mcss::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Advances only while events run.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier throws).
  void schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0).
  void schedule_in(SimTime delay, Callback fn);

  /// Run events until the queue is empty.
  void run();

  /// Run all events with time <= `t`, then set now() = t.
  void run_until(SimTime t);

  /// Process a single event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void dispatch(Event&& e);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mcss::net
