#include "net/outage.hpp"

#include "util/ensure.hpp"

namespace mcss::net {

OutageProcess::OutageProcess(Simulator& sim, SimChannel& channel,
                             OutageConfig config, Rng rng)
    : sim_(sim), channel_(channel), config_(config), rng_(rng) {
  MCSS_ENSURE(config_.mean_up_s > 0.0 && config_.mean_down_s > 0.0,
              "mean up/down durations must be positive");
  channel_.set_down(config_.start_down);
  if (config_.start_down) down_since_ = sim_.now();
  arm_next();
}

SimTime OutageProcess::downtime() const noexcept {
  SimTime total = accumulated_down_;
  if (channel_.is_down()) total += sim_.now() - down_since_;
  return total;
}

void OutageProcess::arm_next() {
  const double mean =
      channel_.is_down() ? config_.mean_down_s : config_.mean_up_s;
  sim_.schedule_in(from_seconds(rng_.exponential(mean)), [this] {
    if (stopped_) return;
    const bool was_down = channel_.is_down();
    if (was_down) {
      accumulated_down_ += sim_.now() - down_since_;
    } else {
      down_since_ = sim_.now();
    }
    channel_.set_down(!was_down);
    ++transitions_;
    arm_next();
  });
}

}  // namespace mcss::net
