#include "net/sim_channel.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ensure.hpp"

namespace mcss::net {

namespace {

/// Sim-time a frame waited in the transmit queue before serialization.
/// Invalid (a no-op to observe) while metrics are disabled.
obs::HistogramId queue_wait_hist() {
  if (!obs::metrics_enabled()) return {};
  return obs::Registry::global().histogram(
      "mcss_channel_queue_wait_seconds", obs::exp_bounds(1e-6, 2.0, 24));
}

}  // namespace

void publish(obs::Registry& registry, const ChannelStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_channel_frames_offered", stats.frames_offered);
  add("mcss_channel_frames_queued", stats.frames_queued);
  add("mcss_channel_frames_dropped_queue", stats.frames_dropped_queue);
  add("mcss_channel_frames_dropped_loss", stats.frames_dropped_loss);
  add("mcss_channel_frames_dropped_outage", stats.frames_dropped_outage);
  add("mcss_channel_frames_dropped_shared_link",
      stats.frames_dropped_shared_link);
  add("mcss_channel_frames_delivered", stats.frames_delivered);
  add("mcss_channel_frames_corrupted", stats.frames_corrupted);
  add("mcss_channel_frames_duplicated", stats.frames_duplicated);
  add("mcss_channel_bytes_delivered", stats.bytes_delivered);
  add("mcss_channel_bytes_queued_total", stats.bytes_queued_total);
}

SimChannel::SimChannel(Simulator& sim, ChannelConfig config, Rng rng,
                       std::string name)
    : sim_(sim), config_(config), rng_(rng), name_(std::move(name)) {
  MCSS_ENSURE(config_.rate_bps > 0.0, "channel rate must be positive");
  MCSS_ENSURE(config_.loss >= 0.0 && config_.loss < 1.0,
              "channel loss must be in [0, 1)");
  MCSS_ENSURE(config_.delay >= 0, "channel delay must be nonnegative");
  MCSS_ENSURE(config_.jitter >= 0, "jitter must be nonnegative");
  MCSS_ENSURE(config_.corrupt >= 0.0 && config_.corrupt < 1.0,
              "corruption probability must be in [0, 1)");
  MCSS_ENSURE(config_.duplicate >= 0.0 && config_.duplicate < 1.0,
              "duplication probability must be in [0, 1)");
  MCSS_ENSURE(config_.queue_capacity_bytes > 0, "queue capacity must be positive");
  watermark_ = config_.ready_watermark_bytes != 0
                   ? config_.ready_watermark_bytes
                   : std::max<std::size_t>(1, config_.queue_capacity_bytes / 2);
}

void SimChannel::set_loss(double loss) {
  MCSS_ENSURE(loss >= 0.0 && loss < 1.0, "channel loss must be in [0, 1)");
  config_.loss = loss;
}

SimTime SimChannel::serialization_time(std::size_t bytes) const noexcept {
  const double seconds = static_cast<double>(bytes) * 8.0 / config_.rate_bps;
  return from_seconds(seconds);
}

SimTime SimChannel::backlog_time() const noexcept {
  // Remaining time on the serializer plus the queued-but-not-yet-serializing
  // bytes (queued_bytes_ still includes the in-flight head frame).
  SimTime t = std::max<SimTime>(0, serializer_free_at_ - sim_.now());
  t += serialization_time(queued_bytes_ - serializing_bytes_);
  return t;
}

bool SimChannel::try_send(std::vector<std::uint8_t> frame) {
  ++stats_.frames_offered;
  MCSS_ENSURE(!frame.empty(), "cannot send an empty frame");
  if (queued_bytes_ + frame.size() > config_.queue_capacity_bytes) {
    ++stats_.frames_dropped_queue;
    if (obs::trace_enabled()) {
      obs::Tracer::global().instant("drop_queue", "channel", sim_.now(), 0,
                                    "bytes", frame.size());
    }
    return false;
  }
  queued_bytes_ += frame.size();
  stats_.bytes_queued_total += frame.size();
  ++stats_.frames_queued;
  was_ready_ = ready();
  queue_.push_back({std::move(frame), sim_.now()});
  if (!transmitting_) start_transmission();
  return true;
}

void SimChannel::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  // Serialize the head-of-line frame; completion pops it and recurses.
  const std::size_t bytes = queue_.front().bytes.size();
  serializing_bytes_ = bytes;
  const SimTime start = sim_.now();
  const SimTime done = start + serialization_time(bytes);
  serializer_free_at_ = done;
  sim_.schedule_at(done, [this, start] {
    std::vector<std::uint8_t> frame = std::move(queue_.front().bytes);
    const SimTime enqueued_at = queue_.front().enqueued_at;
    queue_.pop_front();
    queued_bytes_ -= frame.size();
    serializing_bytes_ = 0;

    if (obs::metrics_enabled()) {
      obs::Registry::global().observe(queue_wait_hist(),
                                      to_seconds(start - enqueued_at));
    }
    if (obs::trace_enabled()) {
      obs::Tracer::global().complete("serialize", "channel", start,
                                     sim_.now() - start, 0, "bytes",
                                     frame.size(), "waited_ns",
                                     static_cast<std::uint64_t>(start - enqueued_at));
    }

    // netem-equivalent loss: decided as the frame leaves the serializer.
    if (down_) {
      ++stats_.frames_dropped_outage;
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("drop_outage", "channel", sim_.now(), 0,
                                      "bytes", frame.size());
      }
    } else if (rng_.bernoulli(config_.loss)) {
      ++stats_.frames_dropped_loss;
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("drop_loss", "channel", sim_.now(), 0,
                                      "bytes", frame.size());
      }
    } else {
      // netem corrupt: flip one uniformly random bit.
      if (rng_.bernoulli(config_.corrupt)) {
        ++stats_.frames_corrupted;
        const auto bit = rng_.uniform_int(frame.size() * 8);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      const int copies = rng_.bernoulli(config_.duplicate) ? 2 : 1;
      if (copies == 2) ++stats_.frames_duplicated;
      for (int copy = 0; copy < copies; ++copy) {
        ++stats_.frames_delivered;
        stats_.bytes_delivered += frame.size();
        if (deliver_) {
          // Jitter draws independently per copy, so duplicates (and
          // successive frames) can reorder, as with real netem.
          SimTime extra = config_.delay;
          if (config_.jitter > 0) {
            extra += static_cast<SimTime>(
                rng_.uniform_int(static_cast<std::uint64_t>(config_.jitter) + 1));
          }
          sim_.schedule_in(extra, [this, f = frame]() mutable {
            deliver_(std::move(f));
          });
        }
      }
    }

    const bool now_ready = ready();
    if (now_ready && !was_ready_ && writable_) {
      was_ready_ = true;
      writable_();
    } else {
      was_ready_ = now_ready;
    }
    start_transmission();
  });
}

}  // namespace mcss::net
