// A simulated unidirectional network channel.
//
// Equivalent to the paper's testbed configuration: a dedicated wire whose
// rate is capped by Linux htb and whose loss/delay are injected by netem.
// The model here is:
//   - serialization: a frame of B bytes occupies the link for 8B/rate_bps
//     seconds; frames queue FIFO behind the one being serialized,
//   - a bounded transmit queue with tail drop (htb's queue),
//   - independent Bernoulli loss per frame (netem loss),
//   - constant propagation delay (netem delay), applied after
//     serialization; frames are delivered in order.
//
// "Ready for writing" mirrors epoll semantics on a socket buffer: the
// channel is writable while its queued backlog is below a watermark.
// Writability callbacks let a sender block until channels free up, which
// is exactly how the ReMICSS dynamic share schedule picks its M.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/channel_port.hpp"
#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::net {

/// Static configuration of a simulated channel (one direction).
struct ChannelConfig {
  double rate_bps = 100e6;     ///< link rate, bits per second
  double loss = 0.0;           ///< frame loss probability in [0, 1)
  SimTime delay = 0;           ///< one-way propagation delay
  std::size_t queue_capacity_bytes = 64 * 1024;  ///< transmit queue bound
  /// Writability watermark: ready() while backlog < watermark. Defaults to
  /// half the queue capacity when 0.
  std::size_t ready_watermark_bytes = 0;

  // netem's remaining knobs, for the robustness experiments:
  SimTime jitter = 0;        ///< uniform extra delay in [0, jitter]; allows reordering
  double corrupt = 0.0;      ///< P(one random bit of the frame is flipped)
  double duplicate = 0.0;    ///< P(frame is delivered twice)
};

/// Counters exposed for measurement and tests.
struct ChannelStats {
  std::uint64_t frames_offered = 0;    ///< try_send calls
  std::uint64_t frames_queued = 0;     ///< accepted into the queue
  std::uint64_t frames_dropped_queue = 0;  ///< tail drops (queue full)
  std::uint64_t frames_dropped_loss = 0;   ///< netem-style random loss
  std::uint64_t frames_dropped_outage = 0; ///< sent while the channel was down
  /// Dropped by a SHARED link's loss burst (the live Impairment's
  /// transport::SharedLinkLoss mode; always 0 for SimChannel, whose
  /// routed counterpart counts these per topo::SimLink instead).
  std::uint64_t frames_dropped_shared_link = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_queued_total = 0;
};

/// Add this channel's counter totals into the registry under
/// mcss_channel_* names. Counters are additive, so publishing several
/// channels (or calling once per run per channel) aggregates them.
void publish(obs::Registry& registry, const ChannelStats& stats);

class SimChannel final : public ChannelPort {
 public:
  using DeliverFn = ChannelPort::DeliverFn;
  using WritableFn = ChannelPort::WritableFn;

  /// `rng` seeds this channel's private loss stream.
  SimChannel(Simulator& sim, ChannelConfig config, Rng rng,
             std::string name = {});

  SimChannel(const SimChannel&) = delete;
  SimChannel& operator=(const SimChannel&) = delete;

  /// Install the delivery callback (the far end).
  void set_receiver(DeliverFn fn) override { deliver_ = std::move(fn); }

  /// Install the epoll-like writability callback, fired when the channel
  /// transitions from not-ready to ready.
  void set_writable_callback(WritableFn fn) override {
    writable_ = std::move(fn);
  }

  /// Offer a frame. Returns false (and counts a tail drop) when the
  /// transmit queue cannot take it; otherwise the frame will serialize,
  /// possibly be lost, and otherwise arrive delay + serialization later.
  bool try_send(std::vector<std::uint8_t> frame) override;

  /// epoll-style writability: backlog below the watermark.
  [[nodiscard]] bool ready() const noexcept override {
    return queued_bytes_ < watermark_;
  }

  /// Change the loss probability mid-run (drifting network conditions;
  /// the adaptive-control experiments use this). Must stay in [0, 1).
  void set_loss(double loss);

  /// Silent outage control (Blakley's "abnegated courier"): while down,
  /// frames that leave the serializer vanish. The sender keeps seeing a
  /// writable channel — exactly the failure the m - k redundancy margin
  /// exists to absorb. Driven externally (see net::OutageProcess).
  void set_down(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool is_down() const noexcept { return down_; }

  /// Time needed to drain everything currently queued or in flight on the
  /// serializer — the dynamic scheduler's "least backlog" key.
  [[nodiscard]] SimTime backlog_time() const noexcept override;

  [[nodiscard]] std::size_t queued_bytes() const noexcept { return queued_bytes_; }
  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  void start_transmission();
  [[nodiscard]] SimTime serialization_time(std::size_t bytes) const noexcept;

  Simulator& sim_;
  ChannelConfig config_;
  Rng rng_;
  std::string name_;
  DeliverFn deliver_;
  WritableFn writable_;

  struct QueuedFrame {
    std::vector<std::uint8_t> bytes;
    SimTime enqueued_at = 0;  ///< for the queue-wait histogram / trace span
  };

  std::deque<QueuedFrame> queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t serializing_bytes_ = 0;
  std::size_t watermark_ = 0;
  bool transmitting_ = false;
  bool down_ = false;
  bool was_ready_ = true;
  SimTime serializer_free_at_ = 0;
  ChannelStats stats_;
};

}  // namespace mcss::net
