#include "net/parallel_sim/partitioned_sim.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "util/ensure.hpp"

namespace mcss::net::psim {

void publish(obs::Registry& registry, const PartitionStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_psim_windows", stats.windows);
  add("mcss_psim_cross_events", stats.cross_events);
  add("mcss_psim_events_processed", stats.events_processed);
  registry.set(registry.gauge("mcss_psim_max_window_events"),
               static_cast<double>(stats.max_window_events));
}

void LogicalProcess::send(std::uint32_t dst, SimTime latency,
                          Simulator::Callback fn) {
  MCSS_ENSURE(owner_ != nullptr, "logical process is not attached");
  MCSS_ENSURE(dst < owner_->num_lps(), "cross-LP destination out of range");
  MCSS_ENSURE(latency >= owner_->lookahead(),
              "cross-LP latency below the conservative lookahead");
  outbox_.push_back(
      OutEvent{sim_.now() + latency, dst, next_out_seq_++, std::move(fn)});
}

PartitionedSimulator::PartitionedSimulator(std::uint32_t num_lps,
                                           SimTime lookahead)
    : lookahead_(lookahead) {
  MCSS_ENSURE(num_lps >= 1, "need at least one logical process");
  MCSS_ENSURE(lookahead > 0, "lookahead must be positive");
  lps_.reserve(num_lps);
  for (std::uint32_t i = 0; i < num_lps; ++i) {
    lps_.emplace_back(new LogicalProcess(this, i));
  }
  window_processed_.resize(num_lps, 0);
}

LogicalProcess& PartitionedSimulator::lp(std::uint32_t i) {
  MCSS_ENSURE(i < lps_.size(), "logical process index out of range");
  return *lps_[i];
}

void PartitionedSimulator::commit_outboxes() {
  // Gather, then order by (due, src, seq): a total order (per-source
  // seqs are unique) that does not depend on how the previous window's
  // LPs interleaved on the pool. Destination schedule_at calls therefore
  // assign identical sequence numbers for every thread count — the merge
  // is bitwise deterministic.
  struct Tagged {
    SimTime due;
    std::uint32_t src;
    std::uint64_t seq;
    std::uint32_t dst;
    Simulator::Callback fn;
  };
  std::vector<Tagged> inbox;
  for (auto& lp : lps_) {
    for (auto& ev : lp->outbox_) {
      inbox.push_back(Tagged{ev.due, lp->id_, ev.seq, ev.dst, std::move(ev.fn)});
    }
    lp->outbox_.clear();
  }
  if (inbox.empty()) return;
  std::sort(inbox.begin(), inbox.end(), [](const Tagged& a, const Tagged& b) {
    if (a.due != b.due) return a.due < b.due;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (auto& ev : inbox) {
    // The conservative guarantee: nothing may land in simulated time the
    // engine has already executed past. latency >= lookahead makes this
    // unbreakable from inside a window; a violation here is an engine bug.
    MCSS_INVARIANT(ev.due >= committed_before_,
                   "cross-LP event due inside an already-executed window");
    lps_[ev.dst]->sim_.schedule_at(ev.due, std::move(ev.fn));
    ++stats_.cross_events;
  }
}

bool PartitionedSimulator::min_pending(SimTime* t) const {
  bool any = false;
  SimTime best = std::numeric_limits<SimTime>::max();
  for (const auto& lp : lps_) {
    if (const auto next = lp->sim_.next_event_time()) {
      any = true;
      best = std::min(best, *next);
    }
  }
  if (any) *t = best;
  return any;
}

void PartitionedSimulator::run_windows(bool bounded, SimTime horizon) {
  for (;;) {
    // Barrier state: commit cross-LP traffic (including events queued by
    // setup code before the first window) so it participates in the
    // window-placement minimum below.
    commit_outboxes();

    SimTime t_min = 0;
    if (!min_pending(&t_min)) break;
    if (bounded && t_min > horizon) break;

    // Window [t_min, w_end): every event in it has time >= t_min, so any
    // cross-LP send it performs lands at >= t_min + lookahead = w_end.
    SimTime w_end;
    if (t_min > std::numeric_limits<SimTime>::max() - lookahead_) {
      w_end = std::numeric_limits<SimTime>::max();
    } else {
      w_end = t_min + lookahead_;
    }
    if (bounded && horizon < std::numeric_limits<SimTime>::max() &&
        w_end > horizon + 1) {
      w_end = horizon + 1;  // run_until semantics: include events at t == horizon
    }

    runtime::parallel_for_indexed(lps_.size(), [&](std::size_t i) {
      window_processed_[i] = lps_[i]->sim_.run_before(w_end);
    });

    committed_before_ = std::max(committed_before_, w_end);
    ++stats_.windows;
    std::uint64_t window_total = 0;
    for (const std::uint64_t n : window_processed_) window_total += n;
    stats_.events_processed += window_total;
    stats_.max_window_events = std::max(stats_.max_window_events, window_total);
  }
}

void PartitionedSimulator::run() {
  run_windows(/*bounded=*/false, /*horizon=*/0);
}

void PartitionedSimulator::run_until(SimTime t) {
  for (const auto& lp : lps_) {
    MCSS_ENSURE(t >= lp->sim_.now(), "cannot run backwards");
  }
  run_windows(/*bounded=*/true, /*horizon=*/t);
  // All events with time <= t have run (the final window's exclusive end
  // was t + 1); align every LP clock to the horizon, sequential-style.
  for (const auto& lp : lps_) lp->sim_.run_until(t);
}

}  // namespace mcss::net::psim
