// Partitioned discrete-event simulation: conservative logical processes
// with a bitwise-deterministic cross-LP merge.
//
// A PartitionedSimulator splits one simulation into `num_lps` logical
// processes (LPs). Each LP is a sealed sequential net::Simulator — its
// components (channels, protocol endpoints, sources) must reference ONLY
// that LP's simulator and state, so LPs can execute concurrently without
// sharing anything mutable. The one sanctioned coupling is
// LogicalProcess::send(dst, latency, fn): a cross-LP event that fires on
// the destination LP `latency` later.
//
// Synchronization is conservative (ROOT-Sim's Time-Warp family, minus
// the rollback): every cross-LP latency must be at least the `lookahead`
// — in a network simulation, the smallest fixed propagation delay on any
// cross-partition link — so the engine can run all LPs in lockstep
// windows of exactly that width. Window w covers [T, T + lookahead)
// where T is the global minimum pending event time; any cross-LP event
// sent from inside the window has due time >= T + lookahead, i.e. it
// can never land in a window that is already executing. At each window
// barrier the buffered cross-LP events are committed into their
// destination heaps in (due time, source LP, source sequence) order —
// a total order independent of execution interleaving — so destination
// sequence numbers, and therefore all downstream (time, seq) event
// ordering, are identical for every MCSS_THREADS value. MCSS_THREADS=1
// runs the same windows inline: bitwise-identical output, by
// construction, to any parallel run.
//
// Windows execute on the shared runtime thread pool via
// runtime::parallel_for_indexed; per-LP obs metric shards merge in LP
// index order on both the sequential and parallel paths (see
// runtime/parallel.hpp), keeping registry contents bit-reproducible too.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/sim_time.hpp"
#include "net/simulator.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::net::psim {

class PartitionedSimulator;

/// One logical process: a sealed sequential simulator plus an outbox of
/// cross-LP events awaiting the next window barrier.
class LogicalProcess {
 public:
  LogicalProcess(const LogicalProcess&) = delete;
  LogicalProcess& operator=(const LogicalProcess&) = delete;

  /// This LP's private event loop. Everything simulated inside the LP
  /// schedules here and must never touch another LP's simulator.
  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Simulator& sim() const noexcept { return sim_; }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Schedule `fn` on LP `dst` at sim().now() + latency. `latency` must
  /// be >= the engine's lookahead (the conservative-safety contract) and
  /// `dst` must be a valid LP id (self-sends are allowed and go through
  /// the same deterministic barrier commit). Buffered until the current
  /// window's barrier; committed in (due, src, seq) order.
  void send(std::uint32_t dst, SimTime latency, Simulator::Callback fn);

  /// Cross-LP events this LP has sent so far.
  [[nodiscard]] std::uint64_t cross_events_sent() const noexcept {
    return next_out_seq_;
  }

 private:
  friend class PartitionedSimulator;

  struct OutEvent {
    SimTime due = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;  ///< per-source sequence (merge tiebreak)
    Simulator::Callback fn;
  };

  LogicalProcess(PartitionedSimulator* owner, std::uint32_t id)
      : id_(id), owner_(owner) {}

  Simulator sim_;
  std::uint32_t id_ = 0;
  PartitionedSimulator* owner_ = nullptr;
  std::vector<OutEvent> outbox_;
  std::uint64_t next_out_seq_ = 0;
};

struct PartitionStats {
  std::uint64_t windows = 0;          ///< lookahead windows executed
  std::uint64_t cross_events = 0;     ///< cross-LP events committed
  std::uint64_t events_processed = 0; ///< total events across all LPs
  std::uint64_t max_window_events = 0;///< busiest single window (all LPs)
};

/// Add engine totals into the registry under mcss_psim_* names. The
/// per-window counters are additive (several engines, or one engine
/// published per run, aggregate); the busiest-window figure is a gauge
/// and publishes last-writer-wins.
void publish(obs::Registry& registry, const PartitionStats& stats);

class PartitionedSimulator {
 public:
  /// `lookahead` must be positive: it is both the window width and the
  /// floor every cross-LP latency is validated against.
  PartitionedSimulator(std::uint32_t num_lps, SimTime lookahead);

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  [[nodiscard]] std::uint32_t num_lps() const noexcept {
    return static_cast<std::uint32_t>(lps_.size());
  }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] LogicalProcess& lp(std::uint32_t i);

  /// Run windows until every LP heap and every outbox is empty.
  void run();

  /// Run all events with time <= t (cross-LP ones included), then
  /// advance every LP clock to exactly t. Callable repeatedly with
  /// non-decreasing t.
  void run_until(SimTime t);

  [[nodiscard]] const PartitionStats& stats() const noexcept { return stats_; }

 private:
  /// Inject every buffered cross-LP event into its destination heap, in
  /// (due, src, seq) order. Single-threaded; called at barriers only.
  void commit_outboxes();
  /// Earliest pending local event across LPs; false when all idle.
  [[nodiscard]] bool min_pending(SimTime* t) const;
  void run_windows(bool bounded, SimTime horizon);

  SimTime lookahead_;
  /// Exclusive upper bound of simulated-and-committed time: no event
  /// before this may ever be created again (the conservative guarantee,
  /// asserted at every commit).
  SimTime committed_before_ = 0;
  std::vector<std::unique_ptr<LogicalProcess>> lps_;
  std::vector<std::uint64_t> window_processed_;  ///< scratch, per LP
  PartitionStats stats_;
};

}  // namespace mcss::net::psim
