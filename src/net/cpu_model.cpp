#include "net/cpu_model.hpp"

// Header-only logic; this translation unit anchors the library target.
