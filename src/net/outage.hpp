// Markov on/off channel outages.
//
// Drives SimChannel::set_down with alternating exponentially-distributed
// up and down periods — the network analogue of Blakley's lost couriers.
// An outage is SILENT: the sender sees a writable channel and keeps
// spending shares on it; only the threshold scheme's m - k margin (or a
// higher layer) saves the traffic. The resilience study
// (bench/ablation_outage) sweeps (kappa, mu) against this process.
#pragma once

#include "net/sim_channel.hpp"
#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace mcss::net {

struct OutageConfig {
  double mean_up_s = 10.0;    ///< mean time between failures
  double mean_down_s = 0.5;   ///< mean outage duration
  bool start_down = false;
};

class OutageProcess {
 public:
  /// Begins driving `channel` immediately; the first toggle is scheduled
  /// an exponential period from now. The channel must outlive this.
  OutageProcess(Simulator& sim, SimChannel& channel, OutageConfig config,
                Rng rng);

  OutageProcess(const OutageProcess&) = delete;
  OutageProcess& operator=(const OutageProcess&) = delete;

  /// Stop toggling (the channel keeps its current state). Outstanding
  /// scheduled toggles become no-ops.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }
  /// Total simulated time spent down so far.
  [[nodiscard]] SimTime downtime() const noexcept;

 private:
  void arm_next();

  Simulator& sim_;
  SimChannel& channel_;
  OutageConfig config_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t transitions_ = 0;
  SimTime down_since_ = 0;
  SimTime accumulated_down_ = 0;
};

}  // namespace mcss::net
