// Endpoint processing-capacity model.
//
// The paper's high-bandwidth experiments (Figures 6-7) show throughput
// leveling off when the hosts, not the channels, become the bottleneck,
// and falling off sooner for larger thresholds kappa. We model the
// endpoint as a serial processing resource with a fixed budget of
// abstract operations per second and per-packet costs that scale with the
// secret sharing work:
//
//   split cost (sender):      base + per_share * m + per_coef * k * m
//     (Horner evaluation of a degree-(k-1) polynomial at m points)
//   reconstruct cost (receiver): base + per_share * k + per_coef * k^2
//     (Lagrange weights over k shares)
//
// A CpuModel instance answers "when will this work finish if submitted
// now", serializing submissions like a single busy core.
#pragma once

#include "net/sim_time.hpp"
#include "net/simulator.hpp"

namespace mcss::net {

/// Cost model in abstract operations. Defaults are calibrated so a
/// kappa = mu = 1 sender saturates around the paper's observed ~63k
/// packets/s (750 Mbps of 1470-byte datagrams) — see workload/setups.
struct CpuConfig {
  double ops_per_sec = 1.0e6;  ///< processing budget
  double base_ops = 10.0;      ///< fixed per-packet overhead
  double per_share_ops = 2.0;  ///< per share touched (I/O, headers)
  double per_coef_ops = 1.0;   ///< per field-coefficient operation
  /// Disable the model entirely (infinite CPU) — the quiescent-network
  /// experiments of Figures 3-5 run in this mode.
  bool unlimited = true;
};

class CpuModel {
 public:
  CpuModel(Simulator& sim, CpuConfig config) : sim_(sim), config_(config) {}

  /// Cost formulas.
  [[nodiscard]] double split_ops(int k, int m) const noexcept {
    return config_.base_ops + config_.per_share_ops * m +
           config_.per_coef_ops * static_cast<double>(k) * m;
  }
  [[nodiscard]] double reconstruct_ops(int k) const noexcept {
    return config_.base_ops + config_.per_share_ops * k +
           config_.per_coef_ops * static_cast<double>(k) * k;
  }

  /// Submit `ops` of work now; returns its completion time. Work is
  /// serialized: a busy CPU delays subsequent submissions.
  SimTime submit(double ops) noexcept {
    if (config_.unlimited) return sim_.now();
    const SimTime start = busy_until_ > sim_.now() ? busy_until_ : sim_.now();
    const auto duration =
        from_seconds(ops / config_.ops_per_sec);
    busy_until_ = start + duration;
    return busy_until_;
  }

  /// When the CPU will next be idle.
  [[nodiscard]] SimTime busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] const CpuConfig& config() const noexcept { return config_; }

 private:
  Simulator& sim_;
  CpuConfig config_;
  SimTime busy_until_ = 0;
};

}  // namespace mcss::net
