// Endpoint processing-capacity model.
//
// The paper's high-bandwidth experiments (Figures 6-7) show throughput
// leveling off when the hosts, not the channels, become the bottleneck,
// and falling off sooner for larger thresholds kappa. We model the
// endpoint as a serial processing resource with a fixed budget of
// abstract operations per second and per-packet costs that scale with the
// secret sharing work:
//
//   split cost (sender):      base + per_share * m + per_coef * (k-1) * m
//     (one share emit per share, one coefficient-slice region pass per
//      share per random coefficient — the slice-major sharer's shape)
//   reconstruct cost (receiver): base + per_share * k + per_weight * k^2
//     (one region axpy per share, k^2 scalar ops for Lagrange weights)
//
// A CpuModel instance answers "when will this work finish if submitted
// now", serializing submissions like a single busy core.
#pragma once

#include "net/sim_time.hpp"
#include "net/simulator.hpp"

namespace mcss::net {

/// Cost model in abstract operations. At the default budget 1 op = 1 µs.
/// The sharing costs are recalibrated from the measured slice-major
/// region-kernel sharer on 1470-byte packets (BENCH_micro.json, AVX2
/// host): split 0.085 µs (k=m=1), 1.7 µs (3,5), 3.3 µs (5,5);
/// reconstruct 0.19-0.84 µs for k = 1..8. The seed scalar sharer was
/// ~25x slower; pacing with its constants would overstate CPU pressure.
/// `base_ops` is not a kernel cost: it models the per-packet host path
/// (UDP send, interrupts, framing) that dominated the paper's T7600
/// endpoints, calibrated so a k = m = 1 sender sustains ~63.8k packets/s
/// — the ~750 Mbps level-off of Figure 6. Without it the GF work alone
/// (sub-µs) would predict hosts ~50x faster than the paper's, and the
/// Figure 7 "threshold barely matters in normal operation" region would
/// vanish.
struct CpuConfig {
  double ops_per_sec = 1.0e6;    ///< processing budget
  double base_ops = 15.6;        ///< per-packet host-path overhead
  double per_share_ops = 0.07;   ///< per share: copy + emit (region pass)
  double per_coef_ops = 0.14;    ///< per coefficient-slice region pass
  double per_weight_ops = 0.004; ///< per scalar Lagrange-weight op
  /// Disable the model entirely (infinite CPU) — the quiescent-network
  /// experiments of Figures 3-5 run in this mode.
  bool unlimited = true;
};

class CpuModel {
 public:
  CpuModel(Simulator& sim, CpuConfig config) : sim_(sim), config_(config) {}

  /// Cost formulas.
  [[nodiscard]] double split_ops(int k, int m) const noexcept {
    return config_.base_ops + config_.per_share_ops * m +
           config_.per_coef_ops * static_cast<double>(k - 1) * m;
  }
  [[nodiscard]] double reconstruct_ops(int k) const noexcept {
    return config_.base_ops + config_.per_share_ops * k +
           config_.per_weight_ops * static_cast<double>(k) * k;
  }

  /// Submit `ops` of work now; returns its completion time. Work is
  /// serialized: a busy CPU delays subsequent submissions.
  SimTime submit(double ops) noexcept {
    if (config_.unlimited) return sim_.now();
    const SimTime start = busy_until_ > sim_.now() ? busy_until_ : sim_.now();
    const auto duration =
        from_seconds(ops / config_.ops_per_sec);
    busy_until_ = start + duration;
    return busy_until_;
  }

  /// When the CPU will next be idle.
  [[nodiscard]] SimTime busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] const CpuConfig& config() const noexcept { return config_; }

 private:
  Simulator& sim_;
  CpuConfig config_;
  SimTime busy_until_ = 0;
};

}  // namespace mcss::net
