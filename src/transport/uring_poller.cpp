#include "transport/uring_poller.hpp"

#if MCSS_HAVE_URING

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/ensure.hpp"

namespace mcss::transport {

namespace {

// Sentinel user_data values that never collide with (gen << 32 | fd):
// generation 0 is never issued to a registration.
constexpr std::uint64_t kTimeoutUd = 0x0000000000000001ull;
constexpr std::uint64_t kIgnoreUd = 0x0000000000000002ull;

constexpr unsigned kRingEntries = 64;

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr,
                                    std::size_t{0}));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::uint64_t make_ud(std::uint32_t gen, int fd) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace

bool UringCore::supported() noexcept {
  static const bool ok = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

UringCore::UringCore() {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(kRingEntries, &params);
  if (ring_fd_ < 0) throw_errno("io_uring_setup");

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_ && cq_ring_bytes_ > sq_ring_bytes_) {
    sq_ring_bytes_ = cq_ring_bytes_;
  }

  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    ::close(ring_fd_);
    ring_fd_ = -1;
    throw_errno("mmap(IORING_OFF_SQ_RING)");
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      ::munmap(sq_ring_, sq_ring_bytes_);
      sq_ring_ = nullptr;
      ::close(ring_fd_);
      ring_fd_ = -1;
      throw_errno("mmap(IORING_OFF_CQ_RING)");
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    if (!single_mmap_) ::munmap(cq_ring_, cq_ring_bytes_);
    ::munmap(sq_ring_, sq_ring_bytes_);
    cq_ring_ = sq_ring_ = nullptr;
    ::close(ring_fd_);
    ring_fd_ = -1;
    throw_errno("mmap(IORING_OFF_SQES)");
  }

  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_entries_ = params.sq_entries;
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;
}

UringCore::~UringCore() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && !single_mmap_) ::munmap(cq_ring_, cq_ring_bytes_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

void* UringCore::next_sqe() {
  // Single-threaded submitter: our tail is private until the release
  // store; only head moves under us (kernel side, hence the acquire).
  unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  unsigned tail = *sq_tail_;
  if (tail - head >= sq_entries_) {
    // SQ full: flush what is queued, then the slot must exist (the
    // kernel consumes all submitted entries on enter without SQPOLL).
    enter(0, false);
    head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    tail = *sq_tail_;
    MCSS_INVARIANT(tail - head < sq_entries_, "SQ still full after flush");
  }
  const unsigned idx = tail & sq_mask_;
  auto* sqe = static_cast<io_uring_sqe*>(sqes_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  ++pending_submit_;
  return sqe;
}

void UringCore::push_poll_add(int fd, Reg& reg) {
  if (!reg.want_read && !reg.want_write) return;
  auto* sqe = static_cast<io_uring_sqe*>(next_sqe());
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = (reg.want_read ? POLLIN : 0u) |
                       (reg.want_write ? POLLOUT : 0u);
  sqe->user_data = make_ud(reg.gen, fd);
  reg.armed = true;
}

void UringCore::push_poll_remove(std::uint64_t target_user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(next_sqe());
  sqe->opcode = IORING_OP_POLL_REMOVE;
  sqe->fd = -1;
  sqe->addr = target_user_data;
  sqe->user_data = kIgnoreUd;
}

void UringCore::push_timeout(int timeout_ms) {
  timeout_ts_[0] = timeout_ms / 1000;
  timeout_ts_[1] = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
  auto* sqe = static_cast<io_uring_sqe*>(next_sqe());
  sqe->opcode = IORING_OP_TIMEOUT;
  sqe->fd = -1;
  sqe->addr = reinterpret_cast<std::uintptr_t>(&timeout_ts_[0]);
  sqe->len = 1;    // one timespec
  sqe->off = 1;    // ...or complete after 1 CQE, so no stale timers linger
  sqe->user_data = kTimeoutUd;
}

void UringCore::enter(unsigned min_complete, bool getevents) {
  for (;;) {
    const unsigned flags = getevents ? IORING_ENTER_GETEVENTS : 0u;
    const int n = sys_io_uring_enter(ring_fd_, pending_submit_, min_complete,
                                     flags);
    if (n >= 0) {
      pending_submit_ -= static_cast<unsigned>(n) <= pending_submit_
                             ? static_cast<unsigned>(n)
                             : pending_submit_;
      return;
    }
    if (errno == EINTR) continue;
    // EBUSY: CQ backlogged — the caller's drain makes room; ETIME: the
    // wait timed out at the enter layer. Neither is a failure.
    if (errno == EBUSY || errno == ETIME) return;
    throw_errno("io_uring_enter");
  }
}

void UringCore::drain(std::vector<Poller::Event>& out) {
  unsigned head = *cq_head_;
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const auto* cqe =
        static_cast<const io_uring_cqe*>(cqes_) + (head & cq_mask_);
    ++head;
    const std::uint64_t ud = cqe->user_data;
    if (ud == kTimeoutUd || ud == kIgnoreUd) continue;
    const int fd = static_cast<int>(ud & 0xFFFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(ud >> 32);
    if (fd < 0 || static_cast<std::size_t>(fd) >= regs_.size() ||
        !reg_live_[static_cast<std::size_t>(fd)]) {
      continue;  // completion for a registration that no longer exists
    }
    Reg& reg = regs_[static_cast<std::size_t>(fd)];
    if (reg.gen != gen) continue;  // ghost from a cancelled arming

    if (cqe->res < 0) {
      if (cqe->res == -ECANCELED) continue;
      Poller::Event e;
      e.fd = fd;
      e.error = true;
      out.push_back(e);
      push_poll_add(fd, reg);  // keep watching; errors are level-ish too
      continue;
    }

    const auto mask = static_cast<unsigned>(cqe->res);
    Poller::Event e;
    e.fd = fd;
    e.readable = (mask & POLLIN) != 0;
    e.writable = (mask & POLLOUT) != 0;
    e.error = (mask & (POLLERR | POLLHUP)) != 0;
    out.push_back(e);
    // Re-arm: the fresh POLL_ADD re-runs vfs_poll, so readiness that is
    // still pending (data left unread) posts again — level-triggered,
    // like epoll/poll.
    reg.armed = false;
    push_poll_add(fd, reg);
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
}

void UringCore::add(int fd, bool want_read, bool want_write) {
  MCSS_ENSURE(fd >= 0, "adding an invalid fd");
  const auto idx = static_cast<std::size_t>(fd);
  if (idx >= regs_.size()) {
    regs_.resize(idx + 1);
    reg_live_.resize(idx + 1, false);
  }
  MCSS_ENSURE(!reg_live_[idx], "fd already registered");
  reg_live_[idx] = true;
  regs_[idx] = Reg{};
  regs_[idx].want_read = want_read;
  regs_[idx].want_write = want_write;
  regs_[idx].gen = next_gen_++;
  push_poll_add(fd, regs_[idx]);
}

void UringCore::modify(int fd, bool want_read, bool want_write) {
  const auto idx = static_cast<std::size_t>(fd);
  MCSS_ENSURE(fd >= 0 && idx < regs_.size() && reg_live_[idx],
              "modifying an unregistered fd");
  Reg& reg = regs_[idx];
  if (reg.want_read == want_read && reg.want_write == want_write) return;
  if (reg.armed) push_poll_remove(make_ud(reg.gen, fd));
  reg.want_read = want_read;
  reg.want_write = want_write;
  reg.gen = next_gen_++;
  reg.armed = false;
  push_poll_add(fd, reg);
}

void UringCore::remove(int fd) {
  const auto idx = static_cast<std::size_t>(fd);
  MCSS_ENSURE(fd >= 0 && idx < regs_.size() && reg_live_[idx],
              "removing an unregistered fd");
  Reg& reg = regs_[idx];
  if (reg.armed) push_poll_remove(make_ud(reg.gen, fd));
  reg_live_[idx] = false;
  regs_[idx] = Reg{};
}

std::size_t UringCore::wait(int timeout_ms, std::vector<Poller::Event>& out) {
  out.clear();
  // CQEs may already be posted from a previous enter (multishot polls
  // fire without us asking). Drain first so a hot loop never blocks on
  // events it already has.
  drain(out);
  if (!out.empty()) return out.size();
  // Re-arm/cancel SQEs queued by the PREVIOUS drain submit here, after
  // the consumer has had its chance to drain the sockets — arming runs
  // vfs_poll at submit time, so this ordering is what makes readiness
  // level-accurate instead of one cycle stale.
  if (timeout_ms == 0) {
    enter(0, true);
  } else if (timeout_ms > 0) {
    push_timeout(timeout_ms);
    enter(1, true);
  } else {
    enter(1, true);
  }
  drain(out);
  return out.size();
}

bool UringCore::register_buffers(const void* data,
                                 std::size_t bytes) noexcept {
  if (data == nullptr || bytes == 0) return false;
  iovec iov{};
  iov.iov_base = const_cast<void*>(data);
  iov.iov_len = bytes;
  buffers_registered_ =
      sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, &iov, 1) == 0;
  return buffers_registered_;
}

}  // namespace mcss::transport

#else  // !MCSS_HAVE_URING

#include <system_error>

namespace mcss::transport {

bool UringCore::supported() noexcept { return false; }

UringCore::UringCore() {
  throw std::system_error(std::make_error_code(std::errc::function_not_supported),
                          "io_uring support not compiled in");
}

UringCore::~UringCore() = default;
void UringCore::add(int, bool, bool) {}
void UringCore::modify(int, bool, bool) {}
void UringCore::remove(int) {}
std::size_t UringCore::wait(int, std::vector<Poller::Event>&) { return 0; }
bool UringCore::register_buffers(const void*, std::size_t) noexcept {
  return false;
}

}  // namespace mcss::transport

#endif  // MCSS_HAVE_URING
