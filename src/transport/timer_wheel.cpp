#include "transport/timer_wheel.hpp"

#include <algorithm>
#include <utility>

#include "util/ensure.hpp"

namespace mcss::transport {

TimerWheel::TimerWheel(std::int64_t tick_ns, std::size_t slots)
    : tick_ns_(tick_ns), slots_(slots), current_tick_(0) {
  MCSS_ENSURE(tick_ns_ > 0, "tick must be positive");
  MCSS_ENSURE(slots >= 2, "wheel needs at least two slots");
}

void TimerWheel::anchor(std::int64_t t_ns) {
  if (!started_) {
    MCSS_ENSURE(t_ns >= 0, "wheel time must be non-negative");
    current_tick_ = t_ns / tick_ns_;
    started_ = true;
  }
}

TimerWheel::TimerId TimerWheel::schedule_at(std::int64_t deadline_ns,
                                            Callback fn) {
  MCSS_ENSURE(fn != nullptr, "null timer callback");
  anchor(deadline_ns);
  // Past deadlines land in the current tick's slot so the next advance()
  // fires them immediately.
  const std::int64_t tick =
      std::max(deadline_ns / tick_ns_, current_tick_);
  const std::size_t slot = slot_of(tick);
  const TimerId id = next_seq_++;
  slots_[slot].push_back(Entry{deadline_ns, id, std::move(fn)});
  live_.emplace(id, static_cast<std::uint32_t>(slot));
  ++pending_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;  // fired, cancelled, or unknown
  auto& slot = slots_[it->second];
  const auto pos = std::find_if(
      slot.begin(), slot.end(), [id](const Entry& e) { return e.seq == id; });
  if (pos != slot.end()) {
    slot.erase(pos);
  } else {
    // Not parked in its slot: advance() has already pulled it into the
    // current due batch (we are being called from a callback). Flag it
    // so the firing loop skips it.
    cancelled_inflight_.insert(id);
  }
  live_.erase(it);
  --pending_;
  return true;
}

std::size_t TimerWheel::advance(std::int64_t now_ns) {
  anchor(now_ns);
  const std::int64_t target_tick = now_ns / tick_ns_;
  if (target_tick < current_tick_) return 0;  // this tick already serviced
  std::size_t fired_total = 0;
  // Loop until quiescent: a fired callback may schedule a timer that is
  // already due (zero-delay release chains), which must not wait for the
  // caller's next advance(). schedule_at() clamps past deadlines to
  // current_tick_, so the rescan of the target slot picks them up.
  for (;;) {
    std::vector<Entry> due;
    const std::int64_t span = target_tick - current_tick_ + 1;
    // A gap longer than one rotation visits every slot exactly once.
    const std::int64_t steps =
        std::min<std::int64_t>(span, static_cast<std::int64_t>(slots_.size()));
    for (std::int64_t i = 0; i < steps; ++i) {
      auto& slot = slots_[slot_of(current_tick_ + i)];
      auto keep = slot.begin();
      for (auto& entry : slot) {
        if (entry.deadline_ns <= now_ns) {
          due.push_back(std::move(entry));
        } else {
          // A later rotation, or later within the still-running target
          // tick; stays parked.
          *keep++ = std::move(entry);
        }
      }
      slot.erase(keep, slot.end());
    }
    // The target tick has not fully elapsed: it stays current so entries
    // due later within it (and new past-deadline schedules) are seen by
    // the next advance() instead of waiting out a whole rotation.
    current_tick_ = target_tick;

    if (due.empty()) break;
    // Slot order approximates deadline order; make it exact (ties fire
    // in schedule order, mirroring the simulator's (time, seq) rule).
    std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
      return a.deadline_ns != b.deadline_ns ? a.deadline_ns < b.deadline_ns
                                            : a.seq < b.seq;
    });
    for (Entry& entry : due) {
      // An earlier callback of this very batch may have cancelled this
      // timer (flow teardown between arm and fire) — suppress it.
      if (!cancelled_inflight_.empty() &&
          cancelled_inflight_.erase(entry.seq) > 0) {
        continue;
      }
      live_.erase(entry.seq);
      --pending_;
      ++fired_total;
      entry.fn();
    }
  }
  return fired_total;
}

std::optional<std::int64_t> TimerWheel::next_deadline() const {
  if (pending_ == 0) return std::nullopt;
  std::optional<std::int64_t> best;
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      if (!best || entry.deadline_ns < *best) best = entry.deadline_ns;
    }
  }
  return best;
}

}  // namespace mcss::transport
