#include "transport/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/ensure.hpp"

namespace mcss::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpSocket UdpSocket::bound_loopback(std::uint16_t port) {
  UdpSocket s;
#ifdef SOCK_NONBLOCK
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (s.fd_ < 0) throw_errno("socket(AF_INET, SOCK_DGRAM)");
#else
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) throw_errno("socket(AF_INET, SOCK_DGRAM)");
  const int flags = ::fcntl(s.fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
#endif
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(s.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind(127.0.0.1)");
  }
  return s;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    inject_wouldblock_ = other.inject_wouldblock_;
    inject_accept_limit_ = other.inject_accept_limit_;
    inject_accept_armed_ = other.inject_accept_armed_;
    syscalls_send_ = other.syscalls_send_;
    syscalls_recv_ = other.syscalls_recv_;
    other.fd_ = -1;
    other.inject_wouldblock_ = 0;
    other.inject_accept_limit_ = 0;
    other.inject_accept_armed_ = false;
    other.syscalls_send_ = 0;
    other.syscalls_recv_ = 0;
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint16_t UdpSocket::local_port() const {
  MCSS_ENSURE(valid(), "local_port() on a closed socket");
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

void UdpSocket::connect_loopback(std::uint16_t port) {
  MCSS_ENSURE(valid(), "connect_loopback() on a closed socket");
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("connect(127.0.0.1)");
  }
}

UdpSocket::IoResult UdpSocket::send(std::span<const std::uint8_t> datagram) {
  MCSS_ENSURE(valid(), "send() on a closed socket");
  if (inject_wouldblock_ > 0) {
    --inject_wouldblock_;
    return IoResult::WouldBlock;
  }
  for (;;) {
    ++syscalls_send_;
    const ssize_t n = ::send(fd_, datagram.data(), datagram.size(), 0);
    if (n >= 0) return IoResult::Ok;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::WouldBlock;
    if (errno == ECONNREFUSED) return IoResult::Refused;
    return IoResult::Error;
  }
}

UdpSocket::BatchResult UdpSocket::send_many(std::span<mmsghdr> msgs) {
  MCSS_ENSURE(valid(), "send_many() on a closed socket");
  if (msgs.empty()) return {IoResult::Ok, 0};
  // The accept-limit hook consumes BEFORE the wouldblock hook: arming
  // both models a mid-batch EAGAIN exactly as the kernel sequences it —
  // this call returns short after really sending the head, the NEXT call
  // reports the error.
  std::span<mmsghdr> window = msgs;
  if (inject_accept_armed_) {
    inject_accept_armed_ = false;
    const auto k = static_cast<std::size_t>(
        inject_accept_limit_ < 0 ? 0 : inject_accept_limit_);
    if (k < msgs.size()) {
      // Really send the first k, then report short — the same observable
      // the kernel produces when slot k fails mid-batch.
      if (k == 0) return {IoResult::Ok, 0};
      window = msgs.first(k);
    }
  } else if (inject_wouldblock_ > 0) {
    --inject_wouldblock_;
    return {IoResult::WouldBlock, 0};
  }
  for (;;) {
    ++syscalls_send_;
    const int n = ::sendmmsg(fd_, window.data(),
                             static_cast<unsigned>(window.size()), 0);
    if (n >= 0) return {IoResult::Ok, static_cast<unsigned>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::WouldBlock, 0};
    }
    if (errno == ECONNREFUSED) return {IoResult::Refused, 0};
    return {IoResult::Error, 0};
  }
}

UdpSocket::BatchResult UdpSocket::recv_many(std::span<mmsghdr> msgs) {
  MCSS_ENSURE(valid(), "recv_many() on a closed socket");
  if (msgs.empty()) return {IoResult::Ok, 0};
  for (;;) {
    ++syscalls_recv_;
    const int n = ::recvmmsg(fd_, msgs.data(),
                             static_cast<unsigned>(msgs.size()), 0, nullptr);
    if (n >= 0) return {IoResult::Ok, static_cast<unsigned>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::WouldBlock, 0};
    }
    if (errno == ECONNREFUSED) return {IoResult::Refused, 0};
    return {IoResult::Error, 0};
  }
}

UdpSocket::IoResult UdpSocket::recv(std::span<std::uint8_t> buf,
                                    std::size_t* received) {
  MCSS_ENSURE(valid(), "recv() on a closed socket");
  MCSS_ENSURE(received != nullptr, "recv() needs a length out-param");
  *received = 0;
  for (;;) {
    ++syscalls_recv_;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n >= 0) {
      *received = static_cast<std::size_t>(n);
      return IoResult::Ok;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::WouldBlock;
    // ECONNREFUSED surfaces on connected UDP receive too (pending ICMP
    // error); report it so callers can count and move on.
    if (errno == ECONNREFUSED) return IoResult::Refused;
    return IoResult::Error;
  }
}

void UdpSocket::set_send_buffer(int bytes) {
  MCSS_ENSURE(valid(), "setsockopt on a closed socket");
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

void UdpSocket::set_recv_buffer(int bytes) {
  MCSS_ENSURE(valid(), "setsockopt on a closed socket");
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) < 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
}

}  // namespace mcss::transport
