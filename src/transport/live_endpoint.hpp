// LiveEndpoint: the ReMICSS protocol over real loopback UDP sockets.
//
// The glue the tentpole is named for. One LiveEndpoint owns both ends of
// a Section VI-style testbed run inside one process: n impaired
// UdpChannels, a ShareScheduler (ReMICSS dynamic by default), and a
// proto::Receiver. Source packets go scheduler -> sss::split ->
// wire::encode -> UdpChannel::try_send; the pump loop parks in
// Poller::wait until a socket turns readable/writable or the impairment
// TimerWheel needs service; received datagrams come back through
// wire::decode_prefix and into the unmodified Receiver.
//
// Reusing the simulator's Receiver verbatim is deliberate — its
// reassembly timeouts, memory cap, and duplicate suppression are the
// logic under test. The trick is a private net::Simulator driven in
// lockstep with the wall clock: every pump iteration calls
// run_until(now - epoch), so "sim time" IS wall time and the Receiver's
// schedule_in()-based eviction timers fire at the right real moments.
//
// Determinism note: protocol decisions (dither sequence, share
// coefficients, impairment draws) are all seeded, but *scheduling* is
// real — which channels are ready when depends on actual socket timing.
// Live runs are statistically, not bitwise, reproducible; that is the
// point of having both this and the simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/siphash.hpp"
#include "feedback/report_builder.hpp"
#include "feedback/retransmit.hpp"
#include "net/simulator.hpp"
#include "obs/runtime/telemetry.hpp"
#include "protocol/receiver.hpp"
#include "protocol/scheduler.hpp"
#include "protocol/sender.hpp"
#include "transport/poller.hpp"
#include "transport/timer_wheel.hpp"
#include "transport/udp_channel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::transport {

struct LiveChannelSpec {
  net::ChannelConfig config;
  std::string name;
};

/// Reliability add-on for a live endpoint: a feedback UdpChannel carries
/// periodic receiver reports back to the sender side, which acks, learns
/// RTT, and retransmits over the RetransmitManager's RTO timers.
struct LiveReliabilityConfig {
  bool enabled = false;
  feedback::RetransmitConfig retransmit;
  /// ReportBuilder sizing (num_channels is filled in by the endpoint).
  std::size_t sack_window_words = 16;
  std::size_t max_delay_samples = 64;
  std::int64_t report_interval_ns = 20'000'000;
  /// Shares beyond k on each retransmission.
  int retransmit_extra = 1;
  /// Impairment of the report path (feedback can be lossy too). The
  /// default ChannelConfig is a clean fast channel.
  net::ChannelConfig feedback_channel;
  /// Tag reports with SipHash; unauthenticated/tampered ones are
  /// rejected and counted.
  std::optional<crypto::SipHashKey> report_auth_key;
};

/// MCSS_LIVE_BATCH as a positive size (it seeds both send_batch and
/// recv_batch defaults below), or `fallback` when unset/unparsable.
[[nodiscard]] std::size_t batch_from_env(std::size_t fallback = 32);

struct LiveConfig {
  std::vector<LiveChannelSpec> channels;
  /// DynamicScheduler targets; ignored when `scheduler` is set.
  double kappa = 2.0;
  double mu = 3.0;
  /// Optional explicit scheduler (e.g. a StaticScheduler sampling an LP
  /// solution). Null = DynamicScheduler(kappa, mu, n).
  std::unique_ptr<proto::ShareScheduler> scheduler;
  /// First RX port; channel i binds port_base + i. 0 = kernel-assigned
  /// ephemeral ports (the default; use port_base_from_env() to honor
  /// MCSS_LIVE_PORT_BASE).
  std::uint16_t port_base = 0;
  /// When set, frames carry SipHash-2-4 tags and the receiver is keyed.
  std::optional<crypto::SipHashKey> auth_key;
  std::size_t max_queue_packets = 256;
  proto::ReceiverConfig receiver;
  std::uint64_t seed = 1;
  std::size_t max_datagram_bytes = 1400;
  Poller::Backend poller_backend = Poller::default_backend();
  LiveReliabilityConfig reliability;
  /// Datagrams per sendmmsg / recvmmsg. 1 = the legacy unbatched path
  /// (one syscall per datagram, assembly copies) — kept as the honest
  /// before/after baseline for bench/live_eval and as the escape hatch
  /// if a batched syscall misbehaves: MCSS_LIVE_BATCH overrides these
  /// defaults, and an explicit assignment overrides the env.
  std::size_t send_batch = batch_from_env(32);
  std::size_t recv_batch = batch_from_env(32);
  /// FramePool sizing. 0 = auto: slots from channel count and batch
  /// depths (receive pins + transmit in flight, with slack), slot bytes
  /// from max_datagram_bytes. Every share frame must fit one slot;
  /// larger frames are dropped-with-stat, so raise pool_slot_bytes when
  /// sending payloads beyond the defaults.
  std::size_t pool_slots = 0;
  std::size_t pool_slot_bytes = 0;
  /// Runtime telemetry plane (scrape server + sampler + privacy
  /// accounting + loop health); off by default. The single protocol
  /// pipeline appears in /flows as pseudo-flow cid 0.
  obs::runtime::RuntimeTelemetryConfig telemetry;
};

/// MCSS_LIVE_PORT_BASE as uint16, or `fallback` when unset/unparsable.
[[nodiscard]] std::uint16_t port_base_from_env(std::uint16_t fallback = 0);

class LiveEndpoint {
 public:
  using DeliverFn = proto::Receiver::DeliverFn;

  explicit LiveEndpoint(LiveConfig config);

  LiveEndpoint(const LiveEndpoint&) = delete;
  LiveEndpoint& operator=(const LiveEndpoint&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Offer one source packet. False = send queue full (backpressure).
  bool send(std::vector<std::uint8_t> payload);

  /// Run the event loop for `wall_ns` of real time: pump queued packets,
  /// service impairment timers, move datagrams, feed the receiver. Call
  /// repeatedly; an extra call with the queue empty drains in-flight
  /// shares and lets reassembly timeouts fire.
  void run_for(std::int64_t wall_ns);

  /// Monotonic nanoseconds since construction (the endpoint's timeline).
  [[nodiscard]] std::int64_t now_ns() const;

  [[nodiscard]] const proto::SenderStats& sender_stats() const noexcept {
    return sender_stats_;
  }
  [[nodiscard]] const proto::Receiver& receiver() const noexcept {
    return receiver_;
  }
  [[nodiscard]] proto::Receiver& receiver() noexcept { return receiver_; }
  [[nodiscard]] std::size_t queued_packets() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t num_channels() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] UdpChannel& channel(std::size_t i) { return *channels_.at(i); }
  /// End-to-end packet delay samples (seconds), send() time to delivery.
  [[nodiscard]] PercentileTracker& delay_seconds() noexcept { return delay_; }
  [[nodiscard]] Poller::Backend poller_backend() const noexcept {
    return poller_.backend();
  }
  /// The readiness source (e.g. wait_calls() for syscall accounting).
  [[nodiscard]] const Poller& poller() const noexcept { return poller_; }
  /// The shared frame arena all channels draw from.
  [[nodiscard]] const FramePool& pool() const noexcept { return *pool_; }
  /// Reliability internals (null/absent unless reliability.enabled).
  [[nodiscard]] feedback::RetransmitManager* retransmit_manager() noexcept {
    return manager_.get();
  }
  [[nodiscard]] UdpChannel* feedback_channel() noexcept {
    return feedback_ch_.get();
  }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept {
    return reports_sent_;
  }

  /// Publish sender, receiver, per-channel impairment, and socket-layer
  /// counters into the registry (end-of-run hook).
  void publish_metrics(obs::Registry& registry) const;

  /// The runtime telemetry plane; null unless config.telemetry.enabled.
  [[nodiscard]] obs::runtime::RuntimeTelemetry* telemetry() noexcept {
    return telemetry_.get();
  }

 private:
  void init_telemetry();
  void arm_sampler_timer();
  /// Drain closed-packet exposure records into the privacy accountant.
  void fold_closed();
  void pump(std::int64_t now);
  void dispatch(std::vector<std::uint8_t> payload,
                const proto::ShareDecision& decision, std::int64_t now);
  void sync_timeline(std::int64_t now);
  void update_write_interest();
  [[nodiscard]] int poll_timeout_ms(std::int64_t now,
                                    std::int64_t deadline) const;
  void emit_report();
  void resend(std::uint64_t id, std::uint8_t generation,
              const std::vector<std::uint8_t>& payload, int k);
  /// Serialize `frame` straight into a pool slot and hand it to
  /// `channel`. False = dropped (pool exhausted, frame larger than a
  /// slot, or impairment-queue tail drop) — callers count the share.
  bool encode_and_send(const proto::ShareFrame& frame, UdpChannel& channel,
                       std::int64_t now);

  LiveConfig config_;
  std::int64_t epoch_ns_;
  Poller poller_;
  /// Declared before wheel_ and channels_: every FrameRef still alive at
  /// destruction — receive pins, parked frames, and impairment timer
  /// callbacks pending in the wheel — must release into a live pool.
  std::unique_ptr<FramePool> pool_;
  TimerWheel wheel_;
  Rng rng_;
  std::unique_ptr<proto::ShareScheduler> scheduler_;
  std::vector<std::unique_ptr<UdpChannel>> channels_;
  std::vector<bool> write_interest_;  ///< current EPOLLOUT state per channel
  std::unordered_map<int, std::size_t> fd_to_channel_;

  /// Wall-driven timeline: run_until(now - epoch) each iteration, so the
  /// Receiver's reassembly timers see real time.
  net::Simulator timeline_;
  proto::Receiver receiver_;
  DeliverFn deliver_;

  std::deque<std::vector<std::uint8_t>> queue_;
  std::uint64_t next_packet_id_ = 1;
  proto::SenderStats sender_stats_;
  std::unordered_map<std::uint64_t, std::int64_t> sent_at_ns_;
  /// (id, sent-at) in send order, for pruning timestamps of packets the
  /// receiver can no longer deliver.
  std::deque<std::pair<std::uint64_t, std::int64_t>> sent_order_;
  PercentileTracker delay_;
  std::vector<Poller::Event> events_;  ///< reused across wait() calls

  /// Reliability plumbing (engaged only when reliability.enabled).
  std::unique_ptr<UdpChannel> feedback_ch_;
  bool feedback_write_interest_ = false;
  std::optional<feedback::ReportBuilder> builder_;
  std::unique_ptr<feedback::RetransmitManager> manager_;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t reports_dropped_at_channel_ = 0;
  /// Frames whose encoding exceeds the pool's slot size (see
  /// LiveConfig::pool_slot_bytes).
  std::uint64_t pool_oversize_drops_ = 0;
  /// Pump iterations that parked instead of dispatching because the
  /// arena lacked headroom for a full share fan-out (backpressure, not
  /// loss — the packet stays queued).
  std::uint64_t pool_defers_ = 0;

  std::unique_ptr<obs::runtime::RuntimeTelemetry> telemetry_;
  std::vector<obs::runtime::ExposureRecord> closed_scratch_;

  /// Steady-state dispatch scratch, sized once: the per-pump scheduler
  /// view, the per-packet slot handles and payload windows of the
  /// split-into-slot fast path, and the splitter's coefficient slices.
  std::vector<proto::ChannelView> view_scratch_;
  std::vector<FrameRef> tx_slots_;
  std::vector<std::span<std::uint8_t>> tx_spans_;
  std::vector<std::uint8_t> split_scratch_;
};

}  // namespace mcss::transport
