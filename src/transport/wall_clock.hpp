// Wall time for the live transport.
//
// The simulator's SimTime is signed 64-bit nanoseconds; the live
// transport keeps the same unit so the two sides of the sim-vs-live
// boundary speak one clock type. monotonic_ns() is CLOCK_MONOTONIC-based
// (std::chrono::steady_clock), so it never jumps backwards; callers
// subtract a run-start origin to get small, SimTime-compatible values.
#pragma once

#include <chrono>
#include <cstdint>

namespace mcss::transport {

/// Nanoseconds on the monotonic clock (arbitrary epoch).
[[nodiscard]] inline std::int64_t monotonic_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mcss::transport
