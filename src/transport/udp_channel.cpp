#include "transport/udp_channel.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "net/sim_time.hpp"
#include "obs/metrics.hpp"
#include "protocol/wire.hpp"
#include "util/ensure.hpp"

namespace mcss::transport {

namespace {

// These ids sit on per-frame / per-syscall paths, so they are resolved
// once and cached (function-local static, the hot-path convention): a
// registry lookup per datagram burst costs a mutex and two allocations
// at rates where that is measurable. Callers gate on metrics_enabled();
// after a Registry::reset() the cached ids are inert no-ops by design.

/// Wall-clock time a released frame waited in the pending ring before
/// the kernel took it.
obs::HistogramId tx_queue_wait_hist() {
  static const obs::HistogramId id = obs::Registry::global().histogram(
      "mcss_transport_tx_queue_wait_seconds", obs::exp_bounds(1e-7, 4.0, 20));
  return id;
}

/// Datagrams moved per sendmmsg/recvmmsg that moved any — the batching
/// efficiency distribution (1 = the syscall carried a single datagram).
obs::HistogramId send_batch_hist() {
  static const obs::HistogramId id = obs::Registry::global().histogram(
      "mcss_transport_send_batch_datagrams", obs::exp_bounds(1.0, 2.0, 8));
  return id;
}

obs::HistogramId recv_batch_hist() {
  static const obs::HistogramId id = obs::Registry::global().histogram(
      "mcss_transport_recv_batch_datagrams", obs::exp_bounds(1.0, 2.0, 8));
  return id;
}

}  // namespace

UdpChannel::UdpChannel(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
                       FramePool& pool, std::uint16_t rx_port,
                       std::string name, std::size_t max_datagram_bytes,
                       std::size_t send_batch, std::size_t recv_batch)
    : name_(std::move(name)),
      max_datagram_bytes_(max_datagram_bytes),
      send_batch_(send_batch),
      recv_batch_(recv_batch),
      rx_(UdpSocket::bound_loopback(rx_port)),
      tx_(UdpSocket::bound_loopback(0)),
      wheel_(wheel),
      pool_(pool),
      impair_(config, rng, wheel,
              [this](FrameRef frame, std::int64_t release_ns) {
                release(std::move(frame), release_ns);
              }),
      // Seed the retry pacer from (not with) the impairment stream so the
      // two stay independent. Waits are short: kernel buffers drain fast.
      retry_backoff_({.base_ns = 500'000, .cap_ns = 20'000'000,
                      .multiplier = 2.0},
                     Rng(rng())) {
  MCSS_ENSURE(max_datagram_bytes_ >= proto::kHeaderSize + proto::kTagSize,
              "max datagram too small for one frame");
  MCSS_ENSURE(send_batch_ >= 1, "send batch must be at least 1");
  MCSS_ENSURE(recv_batch_ >= 1, "recv batch must be at least 1");
  tx_.connect_loopback(rx_.local_port());

  // Deep kernel buffers for the batched path: one pump can flush every
  // free pool slot in a single sendmmsg burst, and the RX side has to
  // hold that burst until the next recvmmsg wakeup. Sized to the arena
  // (the true in-flight bound), best effort — the kernel silently clamps
  // to net.core.{w,r}mem_max, and a clamped buffer only means earlier
  // EAGAIN on TX or kernel drops on RX, both of which the transport
  // already treats as backpressure and loss.
  const auto want = static_cast<int>(std::clamp<std::size_t>(
      pool_.capacity() * pool_.slot_bytes(), 256u << 10, 4u << 20));
  tx_.set_send_buffer(want);
  rx_.set_recv_buffer(want);

  // Every allocation the steady state needs happens HERE, once. The ring
  // bound is every pool slot in flight at once, duplicated (the
  // impairment's duplicate knob shares slots between two pending
  // entries), plus slack for the RX pins not being in the ring.
  ring_.resize(2 * pool_.capacity() + 4);
  last_flush_release_ns_.reserve(ring_.size());
  tx_msgs_.resize(send_batch_);
  tx_takes_.resize(send_batch_);
  tx_iovs_.resize(ring_.size());
  if (recv_batch_ > 1) {
    rx_slots_.reserve(recv_batch_);
    rx_msgs_.resize(recv_batch_);
    rx_iovs_.resize(recv_batch_);
    for (std::size_t i = 0; i < recv_batch_; ++i) {
      FrameRef slot = pool_.acquire();
      MCSS_ENSURE(slot,
                  "frame pool too small to pin this channel's receive slots");
      rx_iovs_[i].iov_base = slot.data();
      rx_iovs_[i].iov_len = pool_.slot_bytes();
      std::memset(&rx_msgs_[i].msg_hdr, 0, sizeof(rx_msgs_[i].msg_hdr));
      rx_msgs_[i].msg_hdr.msg_iov = &rx_iovs_[i];
      rx_msgs_[i].msg_hdr.msg_iovlen = 1;
      rx_slots_.push_back(std::move(slot));
    }
  }
}

UdpChannel::~UdpChannel() = default;

bool UdpChannel::try_send(FrameRef frame, std::int64_t now_ns) {
  last_now_ns_ = now_ns;
  return impair_.offer(std::move(frame), now_ns);
}

bool UdpChannel::try_send(std::span<const std::uint8_t> frame,
                          std::int64_t now_ns) {
  FrameRef staged = pool_.acquire_copy(frame);
  if (!staged) {
    ++stats_.frames_dropped_pool;
    return false;
  }
  return try_send(std::move(staged), now_ns);
}

bool UdpChannel::ready(std::int64_t now_ns) const noexcept {
  (void)now_ns;
  // Bytes parked behind a full kernel buffer count against the watermark
  // exactly as queued-at-the-serializer bytes do: both are backlog the
  // scheduler should steer new shares away from.
  return impair_.queued_bytes() + pending_out_bytes_ <
         (impair_.config().ready_watermark_bytes != 0
              ? impair_.config().ready_watermark_bytes
              : std::max<std::size_t>(1,
                                      impair_.config().queue_capacity_bytes / 2));
}

std::int64_t UdpChannel::backlog_ns(std::int64_t now_ns) const noexcept {
  std::int64_t t = impair_.backlog_ns(now_ns);
  if (pending_out_bytes_ > 0) {
    // Parked bytes have already been paced; charge them at line rate as a
    // proxy for the kernel buffer draining.
    t += net::from_seconds(static_cast<double>(pending_out_bytes_) * 8.0 /
                           impair_.config().rate_bps);
  }
  return t;
}

void UdpChannel::release(FrameRef frame, std::int64_t release_ns) {
  if (ring_count_ == ring_.size()) {
    // Pathological park (kernel jammed for ages): degrade is tail drop
    // with a stat, never an allocation.
    ++stats_.frames_dropped_pool;
    return;
  }
  pending_out_bytes_ += frame.size();
  Pending& slot = ring_[(ring_head_ + ring_count_) % ring_.size()];
  slot.ref = std::move(frame);
  slot.release_ns = release_ns;
  ++ring_count_;
  // Legacy mode keeps the old send-on-release behavior; the batched mode
  // waits for the endpoint's per-pump flush unless a full sendmmsg's
  // worth is already pending.
  if (send_batch_ == 1 || ring_count_ >= send_batch_) flush(release_ns);
}

void UdpChannel::flush(std::int64_t now_ns) {
  last_flush_release_ns_.clear();
  if (send_batch_ == 1) {
    flush_legacy(now_ns);
  } else {
    flush_batched(now_ns);
  }
}

void UdpChannel::retire_front_frames(std::size_t frames, std::int64_t now_ns,
                                     bool sent) {
  const bool metrics = sent && obs::metrics_enabled();
  for (std::size_t i = 0; i < frames; ++i) {
    Pending& p = ring_[ring_head_];
    pending_out_bytes_ -= p.ref.size();
    if (sent) {
      last_flush_release_ns_.push_back(p.release_ns);
      if (metrics) {
        const std::int64_t wait = now_ns - p.release_ns;
        obs::Registry::global().observe(tx_queue_wait_hist(),
                                        net::to_seconds(wait > 0 ? wait : 0));
      }
    }
    p.ref.reset();
    ring_head_ = (ring_head_ + 1) % ring_.size();
    --ring_count_;
  }
}

void UdpChannel::flush_batched(std::int64_t now_ns) {
  while (ring_count_ > 0) {
    // Build up to send_batch_ datagrams: greedy head-first coalescing,
    // each frame an iovec pointing straight into its pool slot — the
    // kernel gathers, we never assemble.
    std::size_t iov_idx = 0;
    std::size_t frame_idx = 0;
    unsigned ndg = 0;
    while (ndg < send_batch_ && frame_idx < ring_count_) {
      const std::size_t start_iov = iov_idx;
      // The head frame always goes (even if it alone exceeds the budget
      // — UDP will take it or EMSGSIZE will tell us); later frames join
      // while they fit.
      FrameRef& head = ring_at(frame_idx).ref;
      std::size_t total = head.size();
      std::size_t take = 1;
      tx_iovs_[iov_idx].iov_base = head.data();
      tx_iovs_[iov_idx].iov_len = head.size();
      ++iov_idx;
      while (frame_idx + take < ring_count_ &&
             total + ring_at(frame_idx + take).ref.size() <=
                 max_datagram_bytes_) {
        FrameRef& next = ring_at(frame_idx + take).ref;
        tx_iovs_[iov_idx].iov_base = next.data();
        tx_iovs_[iov_idx].iov_len = next.size();
        total += next.size();
        ++iov_idx;
        ++take;
      }
      mmsghdr& m = tx_msgs_[ndg];
      std::memset(&m.msg_hdr, 0, sizeof(m.msg_hdr));
      m.msg_hdr.msg_iov = &tx_iovs_[start_iov];
      m.msg_hdr.msg_iovlen = take;
      m.msg_len = 0;
      tx_takes_[ndg] = take;
      ++ndg;
      frame_idx += take;
    }

    const auto batch = tx_.send_many({tx_msgs_.data(), ndg});
    if (batch.completed > 0) {
      for (unsigned i = 0; i < batch.completed; ++i) {
        ++stats_.datagrams_sent;
        stats_.bytes_sent += tx_msgs_[i].msg_len;
        stats_.frames_coalesced += tx_takes_[i] - 1;
        retire_front_frames(tx_takes_[i], now_ns, /*sent=*/true);
      }
      if (obs::metrics_enabled()) {
        obs::Registry::global().observe(
            send_batch_hist(), static_cast<double>(batch.completed));
      }
      // The kernel accepted datagrams, so the congestion episode is
      // over; the next one starts from the base wait.
      retry_backoff_.reset();
    }
    switch (batch.result) {
      case UdpSocket::IoResult::Ok:
        if (batch.completed == ndg) continue;  // full batch; maybe more
        // Short return: a mid-batch slot failed. Per sendmmsg(2) the
        // error surfaces as the HEAD errno of the next call, so just
        // loop — the requeued tail goes out again and the verdict
        // (WouldBlock/Refused/...) lands in one of the cases below.
        ++stats_.sendmmsg_short;
        if (batch.completed == 0) {
          // Zero progress with no errno (only the inject_accept_limit
          // hook produces this): park rather than spin.
          arm_retry();
          return;
        }
        continue;
      case UdpSocket::IoResult::WouldBlock:
        // Kernel buffer full: park everything and wait for EPOLLOUT,
        // with a backoff-paced wheel retry as a backstop.
        ++stats_.send_wouldblock;
        arm_retry();
        return;
      case UdpSocket::IoResult::Refused:
        // ICMP port unreachable from an earlier datagram, charged to the
        // head: best-effort loss, not an error. The shares are gone; the
        // threshold scheme absorbs it.
        ++stats_.send_refused;
        retire_front_frames(tx_takes_[0], now_ns, /*sent=*/false);
        continue;
      case UdpSocket::IoResult::Error:
        ++stats_.send_errors;
        retire_front_frames(tx_takes_[0], now_ns, /*sent=*/false);
        continue;
    }
  }
}

void UdpChannel::flush_legacy(std::int64_t now_ns) {
  // The pre-batching path, preserved verbatim (assembly copy, one send()
  // per datagram) as the bench's before/after baseline.
  std::vector<std::uint8_t> datagram;
  while (ring_count_ > 0) {
    std::size_t take = 1;
    std::size_t total = ring_at(0).ref.size();
    while (take < ring_count_ &&
           total + ring_at(take).ref.size() <= max_datagram_bytes_) {
      total += ring_at(take).ref.size();
      ++take;
    }
    datagram.clear();
    datagram.reserve(total);
    for (std::size_t i = 0; i < take; ++i) {
      const auto bytes = ring_at(i).ref.cspan();
      datagram.insert(datagram.end(), bytes.begin(), bytes.end());
    }

    switch (tx_.send(datagram)) {
      case UdpSocket::IoResult::Ok:
        ++stats_.datagrams_sent;
        stats_.bytes_sent += datagram.size();
        stats_.frames_coalesced += take - 1;
        retire_front_frames(take, now_ns, /*sent=*/true);
        break;
      case UdpSocket::IoResult::WouldBlock:
        ++stats_.send_wouldblock;
        arm_retry();
        return;
      case UdpSocket::IoResult::Refused:
        ++stats_.send_refused;
        retire_front_frames(take, now_ns, /*sent=*/false);
        break;
      case UdpSocket::IoResult::Error:
        ++stats_.send_errors;
        retire_front_frames(take, now_ns, /*sent=*/false);
        break;
    }
    retry_backoff_.reset();
  }
}

void UdpChannel::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  const std::int64_t at = last_now_ns_ + retry_backoff_.next();
  wheel_.schedule_at(at, [this, at] {
    retry_armed_ = false;
    if (ring_count_ > 0) {
      ++stats_.send_retries;
      flush(at);
    }
  });
}

void UdpChannel::on_writable(std::int64_t now_ns) { flush(now_ns); }

void UdpChannel::on_readable() {
  if (recv_batch_ == 1) {
    on_readable_legacy();
  } else {
    on_readable_batched();
  }
}

void UdpChannel::on_readable_batched() {
  for (;;) {
    const auto batch = rx_.recv_many({rx_msgs_.data(), recv_batch_});
    switch (batch.result) {
      case UdpSocket::IoResult::Ok:
        break;
      case UdpSocket::IoResult::WouldBlock:
        return;  // drained
      case UdpSocket::IoResult::Refused:
        ++stats_.recv_refused;
        continue;  // pending ICMP error consumed; keep draining
      case UdpSocket::IoResult::Error:
        ++stats_.recv_errors;
        return;
    }
    if (obs::metrics_enabled() && batch.completed > 0) {
      obs::Registry::global().observe(recv_batch_hist(),
                                      static_cast<double>(batch.completed));
    }
    for (unsigned i = 0; i < batch.completed; ++i) {
      const mmsghdr& m = rx_msgs_[i];
      if ((m.msg_hdr.msg_flags & MSG_TRUNC) != 0) {
        // Datagram overflowed its pool slot: the tail is gone and frame
        // boundaries with it. Count and drop; slots are sized for the
        // endpoint's own datagrams, so this flags a mis-sized pool.
        ++stats_.recv_truncated;
        continue;
      }
      const std::size_t n = m.msg_len;
      if (n == 0) continue;  // zero-length datagram carries nothing
      ++stats_.datagrams_received;
      stats_.bytes_received += n;
      split_and_forward({rx_slots_[i].data(), n});
    }
    if (batch.completed < recv_batch_) return;  // queue drained mid-batch
  }
}

void UdpChannel::on_readable_legacy() {
  std::array<std::uint8_t, 65535> buf;
  for (;;) {
    std::size_t n = 0;
    switch (rx_.recv(buf, &n)) {
      case UdpSocket::IoResult::Ok:
        break;
      case UdpSocket::IoResult::WouldBlock:
        return;  // drained
      case UdpSocket::IoResult::Refused:
        ++stats_.recv_refused;
        continue;
      case UdpSocket::IoResult::Error:
        ++stats_.recv_errors;
        return;
    }
    if (n == 0) continue;
    ++stats_.datagrams_received;
    stats_.bytes_received += n;
    split_and_forward({buf.data(), n});
  }
}

void UdpChannel::split_and_forward(std::span<const std::uint8_t> datagram) {
  // Split the datagram back into frames in place. Framing only (no key):
  // the keyed proto::Receiver upstream re-decodes each frame and owns
  // the malformed/auth-failure accounting, so a tampered frame is
  // counted exactly once, by the component the tests assert on.
  std::span<const std::uint8_t> rest = datagram;
  while (!rest.empty()) {
    const auto extent = proto::frame_extent(rest);
    if (extent.has_value()) {
      ++stats_.frames_forwarded;
      if (on_frame_) on_frame_(rest.first(*extent));
      rest = rest.subspan(*extent);
    } else {
      // Undecodable head: forward the remainder whole so the receiver
      // sees (and counts) the malformation, then move to the next
      // datagram — frame boundaries inside garbage are unknowable.
      ++stats_.unparsed_forwarded;
      if (on_frame_) on_frame_(rest);
      break;
    }
  }
}

}  // namespace mcss::transport
