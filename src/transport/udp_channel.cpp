#include "transport/udp_channel.hpp"

#include <array>
#include <utility>

#include "net/sim_time.hpp"
#include "protocol/wire.hpp"
#include "util/ensure.hpp"

namespace mcss::transport {

UdpChannel::UdpChannel(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
                       std::uint16_t rx_port, std::string name,
                       std::size_t max_datagram_bytes)
    : name_(std::move(name)),
      max_datagram_bytes_(max_datagram_bytes),
      rx_(UdpSocket::bound_loopback(rx_port)),
      tx_(UdpSocket::bound_loopback(0)),
      wheel_(wheel),
      impair_(config, rng, wheel,
              [this](std::vector<std::uint8_t> frame) {
                release(std::move(frame));
              }),
      // Seed the retry pacer from (not with) the impairment stream so the
      // two stay independent. Waits are short: kernel buffers drain fast.
      retry_backoff_({.base_ns = 500'000, .cap_ns = 20'000'000,
                      .multiplier = 2.0},
                     Rng(rng())) {
  MCSS_ENSURE(max_datagram_bytes_ >= proto::kHeaderSize + proto::kTagSize,
              "max datagram too small for one frame");
  tx_.connect_loopback(rx_.local_port());
}

bool UdpChannel::try_send(std::vector<std::uint8_t> frame,
                          std::int64_t now_ns) {
  last_now_ns_ = now_ns;
  return impair_.offer(std::move(frame), now_ns);
}

bool UdpChannel::ready(std::int64_t now_ns) const noexcept {
  (void)now_ns;
  // Bytes parked behind a full kernel buffer count against the watermark
  // exactly as queued-at-the-serializer bytes do: both are backlog the
  // scheduler should steer new shares away from.
  return impair_.queued_bytes() + pending_out_bytes_ <
         (impair_.config().ready_watermark_bytes != 0
              ? impair_.config().ready_watermark_bytes
              : std::max<std::size_t>(1,
                                      impair_.config().queue_capacity_bytes / 2));
}

std::int64_t UdpChannel::backlog_ns(std::int64_t now_ns) const noexcept {
  std::int64_t t = impair_.backlog_ns(now_ns);
  if (pending_out_bytes_ > 0) {
    // Parked bytes have already been paced; charge them at line rate as a
    // proxy for the kernel buffer draining.
    t += net::from_seconds(static_cast<double>(pending_out_bytes_) * 8.0 /
                           impair_.config().rate_bps);
  }
  return t;
}

void UdpChannel::release(std::vector<std::uint8_t> frame) {
  pending_out_bytes_ += frame.size();
  pending_out_.push_back(std::move(frame));
  flush();
}

void UdpChannel::flush() {
  std::vector<std::uint8_t> datagram;
  while (!pending_out_.empty()) {
    // Coalesce consecutive released frames into one datagram. The head
    // frame always goes (even if it alone exceeds the budget — UDP will
    // take it or EMSGSIZE will tell us); later frames join while they fit.
    std::size_t take = 1;
    std::size_t total = pending_out_.front().size();
    while (take < pending_out_.size() &&
           total + pending_out_[take].size() <= max_datagram_bytes_) {
      total += pending_out_[take].size();
      ++take;
    }
    datagram.clear();
    datagram.reserve(total);
    for (std::size_t i = 0; i < take; ++i) {
      datagram.insert(datagram.end(), pending_out_[i].begin(),
                      pending_out_[i].end());
    }

    switch (tx_.send(datagram)) {
      case UdpSocket::IoResult::Ok:
        ++stats_.datagrams_sent;
        stats_.bytes_sent += datagram.size();
        stats_.frames_coalesced += take - 1;
        break;
      case UdpSocket::IoResult::WouldBlock:
        // Kernel buffer full: park everything and wait for EPOLLOUT,
        // with a backoff-paced wheel retry as a backstop.
        ++stats_.send_wouldblock;
        arm_retry();
        return;
      case UdpSocket::IoResult::Refused:
        // ICMP port unreachable from an earlier datagram: best-effort
        // loss, not an error. The shares are gone; the threshold scheme
        // absorbs it.
        ++stats_.send_refused;
        break;
      case UdpSocket::IoResult::Error:
        ++stats_.send_errors;
        break;
    }
    // Sent (or dropped): retire the frames this datagram carried.
    for (std::size_t i = 0; i < take; ++i) {
      pending_out_bytes_ -= pending_out_.front().size();
      pending_out_.pop_front();
    }
    // The kernel accepted (or definitively rejected) a datagram, so the
    // congestion episode is over; the next one starts from the base wait.
    retry_backoff_.reset();
  }
}

void UdpChannel::arm_retry() {
  if (retry_armed_) return;
  retry_armed_ = true;
  wheel_.schedule_at(last_now_ns_ + retry_backoff_.next(), [this] {
    retry_armed_ = false;
    if (!pending_out_.empty()) {
      ++stats_.send_retries;
      flush();
    }
  });
}

void UdpChannel::on_writable() { flush(); }

void UdpChannel::on_readable() {
  std::array<std::uint8_t, 65535> buf;
  for (;;) {
    std::size_t n = 0;
    switch (rx_.recv(buf, &n)) {
      case UdpSocket::IoResult::Ok:
        break;
      case UdpSocket::IoResult::WouldBlock:
        return;  // drained
      case UdpSocket::IoResult::Refused:
        ++stats_.recv_refused;
        continue;  // pending ICMP error consumed; keep draining
      case UdpSocket::IoResult::Error:
        ++stats_.recv_errors;
        return;
    }
    if (n == 0) continue;  // zero-length datagram carries nothing
    ++stats_.datagrams_received;
    stats_.bytes_received += n;

    // Split the datagram back into frames. Framing only (no key): the
    // keyed proto::Receiver upstream re-decodes each frame and owns the
    // malformed/auth-failure accounting, so a tampered frame is counted
    // exactly once, by the component the tests assert on.
    std::span<const std::uint8_t> rest(buf.data(), n);
    while (!rest.empty()) {
      std::size_t consumed = 0;
      const auto frame = proto::decode_prefix(rest, &consumed);
      if (frame.has_value()) {
        ++stats_.frames_forwarded;
        if (on_frame_) {
          on_frame_(std::vector<std::uint8_t>(
              rest.begin(), rest.begin() + static_cast<std::ptrdiff_t>(consumed)));
        }
        rest = rest.subspan(consumed);
      } else {
        // Undecodable head: forward the remainder whole so the receiver
        // sees (and counts) the malformation, then move to the next
        // datagram — frame boundaries inside garbage are unknowable.
        ++stats_.unparsed_forwarded;
        if (on_frame_) {
          on_frame_(std::vector<std::uint8_t>(rest.begin(), rest.end()));
        }
        break;
      }
    }
  }
}

}  // namespace mcss::transport
