#include "transport/shared_link_loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/ensure.hpp"

namespace mcss::transport {

SharedLinkLoss::SharedLinkLoss(SharedLinkLossConfig config, Rng rng)
    : config_(config), rng_(rng) {
  MCSS_ENSURE(config_.mean_good_ns > 0, "mean good sojourn must be positive");
  MCSS_ENSURE(config_.mean_bad_ns > 0, "mean bad sojourn must be positive");
  MCSS_ENSURE(config_.drop_in_bad >= 0.0 && config_.drop_in_bad <= 1.0,
              "drop_in_bad must be in [0, 1]");
  // The chain starts good; draw the first sojourn now so advance()
  // does not flip to bad at time zero.
  state_until_ns_ = sojourn(config_.mean_good_ns);
}

std::int64_t SharedLinkLoss::sojourn(std::int64_t mean_ns) {
  // Exponential sojourn via inversion; clamp the uniform away from 0 so
  // the log stays finite, and floor at 1 ns so the chain always moves.
  const double u = std::max(rng_.uniform(), 1e-12);
  const double ns = -static_cast<double>(mean_ns) * std::log(u);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(ns));
}

void SharedLinkLoss::advance(std::int64_t now_ns) {
  while (state_until_ns_ <= now_ns) {
    bad_ = !bad_;
    if (bad_) ++stats_.bursts;
    state_until_ns_ += sojourn(bad_ ? config_.mean_bad_ns : config_.mean_good_ns);
  }
}

bool SharedLinkLoss::should_drop(std::int64_t now_ns) {
  ++stats_.frames_seen;
  advance(now_ns);
  if (!bad_) return false;
  if (!rng_.bernoulli(config_.drop_in_bad)) return false;
  ++stats_.frames_dropped;
  return true;
}

}  // namespace mcss::transport
