// Readiness multiplexer: epoll on Linux, poll(2) everywhere.
//
// The paper's ReMICSS "chooses the first m channels which are ready for
// writing" straight from epoll (Section V); this is that readiness
// source. One Poller watches every channel socket of a LiveEndpoint;
// wait() parks the pump loop until a socket turns readable/writable or
// the impairment timer wheel needs service.
//
// Both backends are level-triggered, and both are compiled on Linux: the
// epoll path is the default, the poll path is the portability fallback
// and is forced with MCSS_LIVE_POLLER=poll (which is how CI keeps the
// fallback honest without a non-Linux runner). Write interest is toggled
// per-fd only while a channel actually has unflushed bytes — a
// level-triggered EPOLLOUT on an idle UDP socket is always ready and
// would spin the loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace mcss::transport {

class Poller {
 public:
  enum class Backend { Epoll, Poll };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< EPOLLERR/POLLERR (e.g. pending ICMP error)
  };

  /// Backend::Epoll on Linux unless MCSS_LIVE_POLLER=poll; Backend::Poll
  /// elsewhere.
  [[nodiscard]] static Backend default_backend();

  explicit Poller(Backend backend = default_backend());
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// Register `fd` with the given interest set. An fd is added once;
  /// change interest with modify().
  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = indefinitely, 0 = poll-and-return)
  /// for readiness. Appends one Event per ready fd to `out` (which is
  /// cleared first) and returns the event count. EINTR retries.
  std::size_t wait(int timeout_ms, std::vector<Event>& out);

 private:
  struct Impl;
  Backend backend_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcss::transport
