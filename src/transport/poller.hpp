// Readiness multiplexer: epoll on Linux, poll(2) everywhere.
//
// The paper's ReMICSS "chooses the first m channels which are ready for
// writing" straight from epoll (Section V); this is that readiness
// source. One Poller watches every channel socket of a LiveEndpoint;
// wait() parks the pump loop until a socket turns readable/writable or
// the impairment timer wheel needs service.
//
// All backends are level-triggered (io_uring's multishot poll is made
// level-equivalent by re-arming; see uring_poller.hpp), and all three
// compile on Linux: epoll is the default, poll is the portability
// fallback, io_uring is the batched-submission path. MCSS_LIVE_POLLER
// forces one at runtime (epoll|poll|uring — which is how CI keeps every
// backend honest without a non-Linux runner). Asking for uring on a
// kernel that refuses (seccomp ENOSYS, EPERM) falls back to epoll with
// one logged reason; backend() reports what is actually running. Write
// interest is toggled per-fd only while a channel actually has
// unflushed bytes — a level-triggered EPOLLOUT on an idle UDP socket is
// always ready and would spin the loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mcss::transport {

class Poller {
 public:
  enum class Backend { Epoll, Poll, Uring };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< EPOLLERR/POLLERR (e.g. pending ICMP error)
  };

  /// Backend::Epoll on Linux unless MCSS_LIVE_POLLER forces poll or
  /// uring; Backend::Poll elsewhere. An env value of "uring" is returned
  /// as requested even when the kernel may refuse — the constructor does
  /// the probe-and-fallback so the refusal reason gets logged exactly
  /// once where it happens.
  [[nodiscard]] static Backend default_backend();

  explicit Poller(Backend backend = default_backend());
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// The backend actually in use (after any uring→epoll fallback).
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// Register `fd` with the given interest set. An fd is added once;
  /// change interest with modify().
  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = indefinitely, 0 = poll-and-return)
  /// for readiness. Appends one Event per ready fd to `out` (which is
  /// cleared first) and returns the event count. EINTR retries.
  std::size_t wait(int timeout_ms, std::vector<Event>& out);

  /// Number of wait() calls that reached the kernel — the poller's
  /// contribution to syscalls_per_packet in the live bench.
  [[nodiscard]] std::uint64_t wait_calls() const noexcept {
    return wait_calls_;
  }

  /// Hand a contiguous buffer arena (the FramePool) to the backend.
  /// Only the uring backend does anything with it
  /// (IORING_REGISTER_BUFFERS, pre-pinning the pages the RX slots live
  /// in); epoll/poll ignore it. Returns whether a registration took.
  bool register_buffers(std::span<const std::uint8_t> arena) noexcept;

 private:
  struct Impl;
  Backend backend_;
  std::uint64_t wait_calls_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcss::transport
