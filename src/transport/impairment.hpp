// Userspace netem: per-channel impairment for live loopback sockets.
//
// The paper's testbed shapes each physical channel with Linux htb (rate)
// and netem (loss/delay/jitter). Reproducing that needs root and a real
// qdisc; this shim applies the same model in userspace, *before* the
// datagram reaches the socket, so the Section VI channel mix runs on any
// unprivileged loopback:
//
//   - serialization: a frame of B bytes holds the link 8B/rate_bps
//     seconds; frames queue FIFO behind the serializer (htb),
//   - a bounded transmit queue with tail drop (htb's queue),
//   - independent Bernoulli loss per frame, decided when the frame leaves
//     the serializer (netem loss),
//   - constant delay plus uniform jitter in [0, jitter], applied after
//     serialization (netem delay/jitter; jitter may reorder),
//   - optional corrupt (one random bit flip) and duplicate knobs.
//
// This is the same model net::SimChannel implements on simulated time —
// it reuses net::ChannelConfig and net::ChannelStats verbatim — except
// "time" is monotonic wall nanoseconds and "events" are TimerWheel
// callbacks instead of simulator events. That symmetry is the point: a
// live run and a sim run of the same workload::Setup are impaired by the
// same arithmetic, so bench/live_eval can compare measured against
// LP-predicted exactly as Section VI does against the testbed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/sim_channel.hpp"
#include "transport/frame_pool.hpp"
#include "transport/shared_link_loss.hpp"
#include "transport/timer_wheel.hpp"
#include "util/rng.hpp"

namespace mcss::transport {

class Impairment {
 public:
  /// Receives each surviving frame at its impaired release time, along
  /// with that release time (monotonic ns) — the channel batches many
  /// released frames into one sendmmsg, and each frame keeps its OWN
  /// release stamp so per-frame queue-wait accounting survives batching.
  using ReleaseFn = std::function<void(FrameRef, std::int64_t)>;

  /// `rng` seeds this channel's private loss/jitter stream. The wheel is
  /// shared across channels and must outlive the Impairment.
  Impairment(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
             ReleaseFn release);

  Impairment(const Impairment&) = delete;
  Impairment& operator=(const Impairment&) = delete;

  /// Offer a frame at monotonic time `now_ns`. Returns false (tail drop)
  /// when the transmit queue cannot take it; otherwise the frame will
  /// serialize, possibly be lost, and otherwise be released to `release`
  /// serialization + delay + jitter later.
  ///
  /// Fast path: when the serializer is idle and the frame's whole
  /// serialization + delay + jitter charge rounds to zero (a transparent
  /// channel, i.e. the bench's unimpaired configuration), the frame is
  /// released inline — no wheel entry, no deferred closure, no
  /// allocation — with draw order identical to the scheduled path.
  bool offer(FrameRef frame, std::int64_t now_ns);

  /// Shared-link loss mode: route this channel over `shared` (a link
  /// its path shares with other channels). Consulted at serializer
  /// departure, BEFORE the private Bernoulli loss, so drops correlate
  /// across every Impairment subscribed to the same instance — the
  /// live mirror of a topo shared link. Pass nullptr to detach; the
  /// instance must outlive the channel. Not owned.
  void set_shared_loss(SharedLinkLoss* shared) noexcept { shared_ = shared; }
  [[nodiscard]] SharedLinkLoss* shared_loss() const noexcept {
    return shared_;
  }

  /// epoll-style writability: backlog below the watermark (mirrors
  /// SimChannel::ready()).
  [[nodiscard]] bool ready() const noexcept {
    return queued_bytes_ < watermark_;
  }

  /// Time to drain everything at or behind the serializer — the dynamic
  /// scheduler's "least backlog" key (mirrors SimChannel::backlog_time()).
  [[nodiscard]] std::int64_t backlog_ns(std::int64_t now_ns) const noexcept {
    return serializer_free_at_ > now_ns ? serializer_free_at_ - now_ns : 0;
  }

  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return queued_bytes_;
  }
  [[nodiscard]] const net::ChannelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const net::ChannelStats& stats() const noexcept {
    return stats_;
  }

 private:
  void depart(FrameRef frame, std::int64_t departure_ns);
  [[nodiscard]] std::int64_t serialization_ns(std::size_t bytes) const noexcept;

  net::ChannelConfig config_;
  Rng rng_;
  TimerWheel& wheel_;
  ReleaseFn release_;
  SharedLinkLoss* shared_ = nullptr;  ///< optional, not owned
  std::size_t watermark_ = 0;
  std::size_t queued_bytes_ = 0;          ///< offered, not yet departed
  std::int64_t serializer_free_at_ = 0;   ///< monotonic ns
  net::ChannelStats stats_;
};

}  // namespace mcss::transport
