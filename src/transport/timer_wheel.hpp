// Hashed timer wheel for the impairment shim.
//
// The userspace netem needs one timer per in-flight frame (departure +
// delay + jitter), thousands per second, nearly all within a few tens of
// milliseconds — the classic timer-wheel workload (Varghese & Lauck).
// A binary heap would pay O(log n) per frame; the wheel pays O(1) to
// schedule and amortized O(1) to fire:
//
//   - time is bucketed into `tick_ns` slots arranged in a ring,
//   - schedule_at() drops the timer into slot (deadline / tick) % slots,
//   - advance(now) walks the ring from the last serviced tick to now's,
//     firing entries whose deadline has passed and carrying entries from
//     later rotations (deadline more than slots*tick ahead) around.
//
// Deadlines are absolute monotonic nanoseconds (wall_clock.hpp), so the
// wheel composes with the poller: wait(min(next_deadline - now, ...)).
// Firing order within one advance() is deadline order (ties: schedule
// order), matching the discrete-event simulator's (time, seq) rule so a
// live run replays impairment decisions in the same relative order the
// sim would.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcss::transport {

class TimerWheel {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancel(). Never 0 — store kNoTimer for "nothing armed".
  using TimerId = std::uint64_t;
  static constexpr TimerId kNoTimer = 0;

  /// `tick_ns` is the firing granularity (timers fire within one tick of
  /// their deadline); `slots` * `tick_ns` is one rotation. Defaults: 0.5 ms
  /// ticks, 1024 slots = 512 ms per rotation, far beyond any netem-style
  /// delay this shim injects.
  explicit TimerWheel(std::int64_t tick_ns = 500'000, std::size_t slots = 1024);

  /// Schedule `fn` at absolute time `deadline_ns`. Deadlines in the past
  /// fire on the next advance(). O(1). The returned handle cancels the
  /// timer; callers that never cancel may ignore it.
  TimerId schedule_at(std::int64_t deadline_ns, Callback fn);

  /// Cancel a pending timer: its callback will NOT run. Returns true
  /// when `id` was pending; false when it already fired, was already
  /// cancelled, or never existed (a safe no-op, so teardown paths can
  /// cancel unconditionally). O(slot occupancy). Callable from within a
  /// firing callback — a timer cancelled by an earlier callback of the
  /// same advance() batch is suppressed, which is the whole point: a
  /// flow torn down between arm and fire must not have the stale
  /// callback touch its freed state.
  bool cancel(TimerId id);

  /// Fire every timer with deadline <= now_ns, in deadline order (ties in
  /// schedule order). Returns the number fired. Callbacks may schedule
  /// new timers; a new timer already due fires within this same call.
  std::size_t advance(std::int64_t now_ns);

  /// Earliest pending deadline, or nullopt when the wheel is empty.
  /// Exact; costs O(slots + pending), which is fine for its one use —
  /// bounding the pump loop's poll timeout once per iteration.
  [[nodiscard]] std::optional<std::int64_t> next_deadline() const;

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::int64_t tick_ns() const noexcept { return tick_ns_; }

 private:
  struct Entry {
    std::int64_t deadline_ns = 0;
    std::uint64_t seq = 0;  ///< schedule order, the tie-break
    Callback fn;
  };

  std::int64_t tick_ns_;
  std::vector<std::vector<Entry>> slots_;
  std::int64_t current_tick_;  ///< everything before this tick has fired
  bool started_ = false;       ///< current_tick_ anchors on first use
  std::uint64_t next_seq_ = 1;  ///< 0 is kNoTimer
  std::size_t pending_ = 0;
  /// seq -> slot index for every pending timer: cancel() erases the
  /// entry from its slot eagerly, so slots never accumulate dead
  /// entries and next_deadline()/pending() stay exact.
  std::unordered_map<std::uint64_t, std::uint32_t> live_;
  /// Timers cancelled while sitting in the current advance() due batch
  /// (already pulled out of their slot): the firing loop skips them.
  std::unordered_set<std::uint64_t> cancelled_inflight_;

  void anchor(std::int64_t t_ns);
  [[nodiscard]] std::size_t slot_of(std::int64_t tick) const noexcept {
    return static_cast<std::size_t>(tick) % slots_.size();
  }
};

}  // namespace mcss::transport
