#include "transport/live_endpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/wire.hpp"
#include "sss/shamir.hpp"
#include "transport/wall_clock.hpp"
#include "util/ensure.hpp"

namespace mcss::transport {

std::uint16_t port_base_from_env(std::uint16_t fallback) {
  const char* env = std::getenv("MCSS_LIVE_PORT_BASE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v > 65535) return fallback;
  return static_cast<std::uint16_t>(v);
}

std::size_t batch_from_env(std::size_t fallback) {
  const char* env = std::getenv("MCSS_LIVE_BATCH");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0 || v > 1024) return fallback;
  return static_cast<std::size_t>(v);
}

LiveEndpoint::LiveEndpoint(LiveConfig config)
    : config_(std::move(config)),
      epoch_ns_(monotonic_ns()),
      poller_(config_.poller_backend),
      rng_(config_.seed),
      receiver_(timeline_,
                [&]() {
                  // A keyed endpoint keys its receiver unless the caller
                  // already set a (possibly different) receiver key.
                  proto::ReceiverConfig rc = config_.receiver;
                  if (config_.auth_key && !rc.auth_key) {
                    rc.auth_key = config_.auth_key;
                  }
                  return rc;
                }()) {
  MCSS_ENSURE(!config_.channels.empty(), "live endpoint needs channels");
  MCSS_ENSURE(config_.channels.size() <= 32, "at most 32 channels");
  MCSS_ENSURE(config_.send_batch >= 1 && config_.recv_batch >= 1,
              "batch depths must be at least 1");
  if (config_.port_base != 0) {
    // Channel i binds port_base + i, plus one feedback lane when
    // reliability is on. uint16_t arithmetic would otherwise wrap
    // silently and bind a channel at a low port (or 0 = ephemeral).
    const std::size_t last_lane = config_.channels.size() -
                                  (config_.reliability.enabled ? 0 : 1);
    MCSS_ENSURE(static_cast<std::size_t>(config_.port_base) + last_lane <=
                    65535,
                "port_base + channels (and feedback lane) exceeds 65535: "
                "the port range would wrap");
  }

  // One arena for every channel: TX frames are encoded straight into
  // slots, RX pins recv_batch slots per channel. Auto-sizing leaves
  // ample slack for frames parked at the impairment serializer.
  {
    const std::size_t slot_bytes =
        config_.pool_slot_bytes != 0
            ? config_.pool_slot_bytes
            : std::max<std::size_t>(2048, 2 * config_.max_datagram_bytes);
    const std::size_t lanes = config_.channels.size() +
                              (config_.reliability.enabled ? 1 : 0);
    const std::size_t slots =
        config_.pool_slots != 0
            ? config_.pool_slots
            : lanes * (config_.recv_batch + 4 * config_.send_batch) + 64;
    pool_ = std::make_unique<FramePool>(slot_bytes, slots);
  }
  // Reassembly partials share the arena too: small-k partials live in
  // slots, so steady-state RX appends never touch the heap.
  receiver_.set_arena(pool_.get());
  // On the uring backend, pre-register the arena with the ring
  // (IORING_REGISTER_BUFFERS) so the pages RX slots live in are pinned
  // once instead of per syscall; epoll/poll ignore this.
  poller_.register_buffers({pool_->arena_data(), pool_->arena_bytes()});

  scheduler_ = config_.scheduler
                   ? std::move(config_.scheduler)
                   : std::make_unique<proto::DynamicScheduler>(
                         config_.kappa, config_.mu,
                         static_cast<int>(config_.channels.size()));

  receiver_.set_deliver(
      [this](std::uint64_t id, std::vector<std::uint8_t> payload) {
        const auto it = sent_at_ns_.find(id);
        if (it != sent_at_ns_.end()) {
          delay_.add(net::to_seconds(now_ns() - it->second));
          sent_at_ns_.erase(it);
        }
        if (builder_) builder_->on_delivered(id, now_ns());
        if (deliver_) deliver_(id, std::move(payload));
      });

  channels_.reserve(config_.channels.size());
  write_interest_.assign(config_.channels.size(), false);
  for (std::size_t i = 0; i < config_.channels.size(); ++i) {
    const auto& spec = config_.channels[i];
    const std::uint16_t port =
        config_.port_base != 0
            ? static_cast<std::uint16_t>(config_.port_base + i)
            : 0;
    auto ch = std::make_unique<UdpChannel>(
        spec.config, rng_.fork(), wheel_, *pool_, port, spec.name,
        config_.max_datagram_bytes, config_.send_batch, config_.recv_batch);
    ch->set_on_frame([this, i](std::span<const std::uint8_t> frame) {
      // Keep the receiver's clock caught up before it stamps first_seen.
      sync_timeline(now_ns());
      if (builder_) {
        // Classify for the per-channel report counters the way the
        // receiver will: a parseable head is a share frame, anything
        // else is an undecodable blob the channel mangled.
        builder_->on_channel_frame(i,
                                   proto::frame_extent(frame).has_value());
      }
      // Span straight from the receive slot: the receiver copies only
      // the share payload it retains.
      receiver_.on_frame(frame);
    });
    poller_.add(ch->rx_fd(), /*want_read=*/true, /*want_write=*/false);
    poller_.add(ch->tx_fd(), /*want_read=*/false, /*want_write=*/false);
    fd_to_channel_[ch->rx_fd()] = i;
    fd_to_channel_[ch->tx_fd()] = i;
    channels_.push_back(std::move(ch));
  }

  if (config_.reliability.enabled) {
    const std::size_t n = channels_.size();
    builder_.emplace(feedback::ReportBuilderConfig{
        .num_channels = n,
        .sack_window_words = config_.reliability.sack_window_words,
        .max_delay_samples = config_.reliability.max_delay_samples});
    manager_ = std::make_unique<feedback::RetransmitManager>(
        config_.reliability.retransmit, rng_.fork());
    manager_->set_retransmit([this](std::uint64_t id, std::uint8_t generation,
                                    const std::vector<std::uint8_t>& payload,
                                    int k) {
      resend(id, generation, payload, k);
    });

    // The feedback channel rides the same wheel/poller machinery as the
    // share channels; report datagrams fail share-frame parsing at the
    // channel, so they arrive whole via the unparsed-forward path.
    const std::uint16_t fb_port =
        config_.port_base != 0
            ? static_cast<std::uint16_t>(config_.port_base + n)
            : 0;
    feedback_ch_ = std::make_unique<UdpChannel>(
        config_.reliability.feedback_channel, rng_.fork(), wheel_, *pool_,
        fb_port, "feedback", config_.max_datagram_bytes, config_.send_batch,
        config_.recv_batch);
    feedback_ch_->set_on_frame([this](std::span<const std::uint8_t> datagram) {
      manager_->on_report_datagram(datagram, now_ns(),
                                   config_.reliability.report_auth_key
                                       ? &*config_.reliability.report_auth_key
                                       : nullptr);
      fold_closed();
    });
    poller_.add(feedback_ch_->rx_fd(), /*want_read=*/true,
                /*want_write=*/false);
    poller_.add(feedback_ch_->tx_fd(), /*want_read=*/false,
                /*want_write=*/false);
    fd_to_channel_[feedback_ch_->rx_fd()] = n;
    fd_to_channel_[feedback_ch_->tx_fd()] = n;

    MCSS_ENSURE(config_.reliability.report_interval_ns > 0,
                "report interval must be positive");
    wheel_.schedule_at(now_ns() + config_.reliability.report_interval_ns,
                       [this] { emit_report(); });
  }

  if (config_.telemetry.enabled) init_telemetry();
}

void LiveEndpoint::init_telemetry() {
  obs::runtime::RuntimeTelemetryConfig tcfg = config_.telemetry;
  if (tcfg.privacy.channel_risks.empty()) {
    // Uniform adversary prior (see SessionEndpoint::init_telemetry).
    tcfg.privacy.channel_risks.assign(channels_.size(), 0.1);
  }
  telemetry_ = std::make_unique<obs::runtime::RuntimeTelemetry>(tcfg);
  telemetry_->server().set_fd_hooks(
      [this](int fd, bool r, bool w) { poller_.add(fd, r, w); },
      [this](int fd, bool r, bool w) { poller_.modify(fd, r, w); },
      [this](int fd) { poller_.remove(fd); });
  // The single protocol pipeline shows up in /flows as pseudo-flow 0.
  telemetry_->sampler().set_flow_probes(
      [](std::vector<std::uint32_t>& out) {
        out.clear();
        out.push_back(0);
      },
      [this](std::uint32_t cid, obs::runtime::FlowSample& out) {
        out.cid = cid;
        out.queued_packets = queue_.size();
        out.receiver_bytes = receiver_.buffered_bytes();
        out.packets_sent = sender_stats_.packets_sent;
        out.packets_delivered = receiver_.stats().packets_delivered;
        if (manager_) {
          out.outstanding = manager_->outstanding();
          out.rto_ns = manager_->current_rto_ns();
          out.retransmits = manager_->stats().retransmits;
          out.exposure_width = manager_->widest_exposure();
        }
        return true;
      });
  telemetry_->sampler().set_publish([this](obs::Registry& registry) {
    registry.set(registry.gauge("mcss_live_queued_packets"),
                 static_cast<double>(queue_.size()));
    telemetry_->health().set_pool_occupancy(pool_->in_use(),
                                            pool_->capacity());
    telemetry_->privacy().publish_gauges();
  });
  arm_sampler_timer();
}

void LiveEndpoint::arm_sampler_timer() {
  // Wake-up only — run_for polls the sampler each iteration (see
  // SessionEndpoint::arm_sampler_timer for the cadence rationale).
  const std::int64_t now = now_ns();
  const std::int64_t due = telemetry_->sampler().sampling()
                               ? now + 1'000'000
                               : telemetry_->sampler().next_due_ns(now);
  wheel_.schedule_at(std::max(due, now + 1), [this] { arm_sampler_timer(); });
}

void LiveEndpoint::fold_closed() {
  if (!telemetry_ || !manager_) return;
  const auto closed = manager_->drain_closed();
  if (closed.empty()) return;
  closed_scratch_.clear();
  closed_scratch_.reserve(closed.size());
  for (const feedback::ClosedPacket& packet : closed) {
    closed_scratch_.push_back({packet.k, packet.initial_mask,
                               packet.exposure_mask, packet.retransmits,
                               packet.acked, packet.initial_link_mask,
                               packet.link_exposure_mask});
  }
  telemetry_->privacy().on_closed(closed_scratch_);
}

std::int64_t LiveEndpoint::now_ns() const {
  return monotonic_ns() - epoch_ns_;
}

void LiveEndpoint::sync_timeline(std::int64_t now) {
  if (now > timeline_.now()) timeline_.run_until(now);
}

bool LiveEndpoint::send(std::vector<std::uint8_t> payload) {
  ++sender_stats_.packets_offered;
  MCSS_ENSURE(payload.size() <= proto::kMaxPayload,
              "packet exceeds maximum payload");
  if (queue_.size() >= config_.max_queue_packets) {
    ++sender_stats_.packets_rejected;
    return false;
  }
  queue_.push_back(std::move(payload));
  return true;
}

void LiveEndpoint::pump(std::int64_t now) {
  while (!queue_.empty()) {
    // Pool backpressure: one decision fans out to at most one share per
    // channel, each serialized straight into an arena slot that stays
    // live until the frame clears impairment and sendmmsg retires it.
    // Without headroom for that fan-out, park the packet in the send
    // queue instead of dispatching shares encode_and_send would have to
    // drop; departures free slots and the next pump resumes.
    if (pool_->available() < channels_.size()) {
      ++pool_defers_;
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("pool_defer", "sender", now, 0, "queued",
                                      queue_.size());
      }
      return;
    }
    view_scratch_.resize(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      view_scratch_[i] = {channels_[i]->ready(now),
                          channels_[i]->backlog_ns(now)};
    }
    const auto decision = scheduler_->next(view_scratch_);
    if (!decision) {
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("schedule_defer", "sender", now, 0,
                                      "queued", queue_.size());
      }
      return;  // wait for channels to drain
    }
    std::vector<std::uint8_t> payload = std::move(queue_.front());
    queue_.pop_front();
    dispatch(std::move(payload), *decision, now);
  }
}

void LiveEndpoint::dispatch(std::vector<std::uint8_t> payload,
                            const proto::ShareDecision& decision,
                            std::int64_t now) {
  const int m = static_cast<int>(decision.channels.size());
  const int k = decision.k;
  MCSS_INVARIANT(k >= 1 && k <= m, "scheduler produced invalid (k, m)");

  const std::uint64_t id = next_packet_id_++;
  ++sender_stats_.packets_sent;
  sender_stats_.sum_k += k;
  sender_stats_.sum_m += m;
  sent_at_ns_[id] = now;
  sent_order_.push_back({id, now});
  if (manager_) {
    manager_->on_packet_sent(id, k, payload, decision.channels, now);
  }

  if (obs::trace_enabled()) {
    obs::Tracer::global().async_begin("packet", "packet", id, now, "k",
                                      static_cast<std::uint64_t>(k), "m",
                                      static_cast<std::uint64_t>(m));
  }

  // Fast path: one arena slot per share, header written first, then
  // sss::split_into computes the share bytes STRAIGHT into the slots'
  // payload regions — no Share vectors, no per-share copy, nothing
  // allocated per packet after warmup. Falls back to the split()-based
  // path when the pool cannot cover the whole fan-out (the pump gate
  // makes that rare) or a frame would not fit a slot.
  const bool keyed = config_.auth_key.has_value();
  const std::size_t need = proto::encoded_size(payload.size(), 0, keyed);
  bool fast = need <= pool_->slot_bytes();
  if (fast) {
    tx_slots_.clear();
    tx_spans_.clear();
    for (int j = 0; j < m; ++j) {
      FrameRef slot = pool_->acquire();
      if (!slot) {
        fast = false;
        tx_slots_.clear();  // hand the acquired slots back
        tx_spans_.clear();
        break;
      }
      slot.resize(need);
      proto::FrameMeta meta;
      meta.packet_id = id;
      meta.k = static_cast<std::uint8_t>(k);
      meta.share_index = static_cast<std::uint8_t>(j + 1);
      const std::size_t off =
          proto::encode_header_into(meta, payload.size(), slot.span(), keyed);
      tx_spans_.push_back(slot.span().subspan(off, payload.size()));
      tx_slots_.push_back(std::move(slot));
    }
  }
  if (fast) {
    sss::split_into(payload, k, tx_spans_, split_scratch_, rng_);
    for (int j = 0; j < m; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      if (keyed) proto::seal_frame(tx_slots_[idx].span(), *config_.auth_key);
      const auto ch_index =
          static_cast<std::size_t>(decision.channels[idx]);
      ++sender_stats_.shares_sent;
      if (obs::trace_enabled()) {
        obs::Tracer::global().async_begin(
            "share", "share",
            obs::share_span_id(id, static_cast<std::uint8_t>(j + 1)), now,
            "channel", ch_index);
      }
      if (!channels_[ch_index]->try_send(std::move(tx_slots_[idx]), now)) {
        ++sender_stats_.shares_dropped_at_channel;
        if (obs::trace_enabled()) {
          obs::Tracer::global().async_end(
              "share", "share",
              obs::share_span_id(id, static_cast<std::uint8_t>(j + 1)), now);
        }
      }
    }
    tx_slots_.clear();
    tx_spans_.clear();
    return;
  }

  auto shares = sss::split(payload, k, m, rng_);
  for (int j = 0; j < m; ++j) {
    proto::ShareFrame frame;
    frame.packet_id = id;
    frame.k = static_cast<std::uint8_t>(k);
    frame.share_index = shares[static_cast<std::size_t>(j)].index;
    frame.payload = std::move(shares[static_cast<std::size_t>(j)].data);
    const auto ch_index = static_cast<std::size_t>(
        decision.channels[static_cast<std::size_t>(j)]);
    ++sender_stats_.shares_sent;
    if (obs::trace_enabled()) {
      obs::Tracer::global().async_begin(
          "share", "share", obs::share_span_id(id, frame.share_index), now,
          "channel", ch_index);
    }
    if (!encode_and_send(frame, *channels_[ch_index], now)) {
      ++sender_stats_.shares_dropped_at_channel;
      if (obs::trace_enabled()) {
        obs::Tracer::global().async_end(
            "share", "share", obs::share_span_id(id, frame.share_index), now);
      }
    }
  }
}

bool LiveEndpoint::encode_and_send(const proto::ShareFrame& frame,
                                   UdpChannel& channel, std::int64_t now) {
  const crypto::SipHashKey* key =
      config_.auth_key ? &*config_.auth_key : nullptr;
  const std::size_t need = proto::encoded_size(frame, key != nullptr);
  if (need > pool_->slot_bytes()) {
    // A frame too large for the arena cannot travel the pooled path;
    // degrade is drop-with-stat (size the pool for your payloads).
    ++pool_oversize_drops_;
    return false;
  }
  FrameRef slot = pool_->acquire();
  if (!slot) return false;  // exhaustion already counted by the pool
  slot.resize(need);
  // Serialize once, straight into the arena — the frame's bytes are
  // never copied again until the kernel gathers them into a datagram.
  proto::encode_into(frame, slot.span(), key);
  return channel.try_send(std::move(slot), now);
}

void LiveEndpoint::update_write_interest() {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const bool want = channels_[i]->wants_write();
    if (want != write_interest_[i]) {
      poller_.modify(channels_[i]->tx_fd(), /*want_read=*/false,
                     /*want_write=*/want);
      write_interest_[i] = want;
    }
  }
  if (feedback_ch_) {
    const bool want = feedback_ch_->wants_write();
    if (want != feedback_write_interest_) {
      poller_.modify(feedback_ch_->tx_fd(), /*want_read=*/false,
                     /*want_write=*/want);
      feedback_write_interest_ = want;
    }
  }
}

int LiveEndpoint::poll_timeout_ms(std::int64_t now,
                                  std::int64_t deadline) const {
  std::int64_t until = deadline - now;
  if (const auto next = wheel_.next_deadline()) {
    until = std::min(until, *next - now);
  }
  until = std::max<std::int64_t>(until, 0);
  // Round up so a 0.3 ms timer does not busy-poll, but cap the sleep so
  // the loop re-checks the wall deadline at a reasonable cadence.
  const std::int64_t ms = (until + 999'999) / 1'000'000;
  return static_cast<int>(std::min<std::int64_t>(ms, 100));
}

void LiveEndpoint::run_for(std::int64_t wall_ns) {
  MCSS_ENSURE(wall_ns >= 0, "run_for needs a nonnegative duration");
  const std::int64_t deadline = now_ns() + wall_ns;
  for (;;) {
    const std::int64_t now = now_ns();
    sync_timeline(now);
    wheel_.advance(now);
    if (manager_) {
      manager_->advance(now);
      fold_closed();
    }
    pump(now);
    // One flush per pump iteration: everything the wheel advance just
    // released (plus anything the transparent fast path handed over
    // during pump) leaves in a single sendmmsg per channel.
    for (const auto& ch : channels_) ch->flush(now);
    if (feedback_ch_) feedback_ch_->flush(now);
    update_write_interest();
    if (telemetry_) {
      telemetry_->poll(now_ns());
      telemetry_->health().on_pump(now_ns() - now);
    }
    if (now >= deadline) break;

    // RTO deadlines bound the sleep alongside the wheel and the wall
    // deadline, so a due retransmission never waits for traffic.
    std::int64_t wake = deadline;
    if (manager_) {
      if (const auto rto = manager_->next_deadline()) {
        wake = std::min(wake, *rto);
      }
    }
    const int timeout_ms = poll_timeout_ms(now, wake);
    const std::int64_t wait_start = telemetry_ ? now_ns() : 0;
    poller_.wait(timeout_ms, events_);
    if (telemetry_) {
      telemetry_->health().on_wait(timeout_ms, now_ns() - wait_start);
    }
    for (const Poller::Event& ev : events_) {
      const auto it = fd_to_channel_.find(ev.fd);
      if (it == fd_to_channel_.end()) {
        if (telemetry_) {
          telemetry_->on_poller_event(ev.fd, ev.readable || ev.error,
                                      ev.writable || ev.error);
        }
        continue;
      }
      UdpChannel& ch = it->second < channels_.size()
                           ? *channels_[it->second]
                           : *feedback_ch_;
      if (ev.fd == ch.rx_fd() && (ev.readable || ev.error)) {
        // POLLERR on the RX fd means a pending ICMP error; recv() drains
        // and counts it alongside any queued datagrams.
        ch.on_readable();
      }
      if (ev.fd == ch.tx_fd() && (ev.writable || ev.error)) {
        ch.on_writable(now_ns());
      }
    }
  }

  // Forget send timestamps nothing can deliver anymore (the receiver has
  // long evicted those partials), so a lossy run does not grow the map.
  const std::int64_t horizon =
      now_ns() - 4 * std::max<std::int64_t>(
                         config_.receiver.reassembly_timeout, 1);
  while (!sent_order_.empty() && sent_order_.front().second < horizon) {
    sent_at_ns_.erase(sent_order_.front().first);
    sent_order_.pop_front();
  }
}

void LiveEndpoint::emit_report() {
  const std::int64_t now = now_ns();
  auto report = builder_->build(now);
  auto bytes = feedback::encode_report(report,
                                       config_.reliability.report_auth_key
                                           ? &*config_.reliability.report_auth_key
                                           : nullptr);
  ++reports_sent_;
  if (!feedback_ch_->try_send(std::span<const std::uint8_t>(bytes), now)) {
    ++reports_dropped_at_channel_;
  }
  wheel_.schedule_at(now + config_.reliability.report_interval_ns,
                     [this] { emit_report(); });
}

void LiveEndpoint::resend(std::uint64_t id, std::uint8_t generation,
                          const std::vector<std::uint8_t>& payload, int k) {
  const std::int64_t now = now_ns();
  const int n = static_cast<int>(channels_.size());
  const int m = std::min(n, k + config_.reliability.retransmit_extra);
  const std::uint32_t exposure = manager_->exposure_mask(id).value_or(0);

  // Privacy-aware channel choice: already-exposed channels first (free
  // for the adversary model), then unexposed by index. The live config
  // has no per-channel risk estimate; index order is the deterministic
  // fallback, matching ReliableLink with an empty risk vector.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const bool ea = (exposure >> a) & 1u;
    const bool eb = (exposure >> b) & 1u;
    if (ea != eb) return ea;
    return a < b;
  });
  order.resize(static_cast<std::size_t>(m));

  ++sender_stats_.packets_retransmitted;
  if (obs::trace_enabled()) {
    obs::Tracer::global().instant("retransmit", "sender", now, id,
                                  "generation",
                                  static_cast<std::uint64_t>(generation), "m",
                                  static_cast<std::uint64_t>(m));
  }
  auto shares = sss::split(payload, k, m, rng_);
  for (int j = 0; j < m; ++j) {
    proto::ShareFrame frame;
    frame.packet_id = id;
    frame.k = static_cast<std::uint8_t>(k);
    frame.share_index = shares[static_cast<std::size_t>(j)].index;
    frame.generation = generation;
    frame.payload = std::move(shares[static_cast<std::size_t>(j)].data);
    const auto ch_index = static_cast<std::size_t>(order[static_cast<std::size_t>(j)]);
    ++sender_stats_.shares_retransmitted;
    if (!encode_and_send(frame, *channels_[ch_index], now)) {
      ++sender_stats_.shares_dropped_at_channel;
    }
  }
  manager_->note_exposure(id, order);
}

void LiveEndpoint::publish_metrics(obs::Registry& registry) const {
  proto::publish(registry, sender_stats_);
  scheduler_->publish_metrics(registry);
  receiver_.publish_metrics(registry);

  if (manager_) {
    feedback::publish(registry, manager_->stats());
    const auto add_fb = [&](std::string_view name, std::uint64_t value) {
      registry.add(registry.counter(name), value);
    };
    add_fb("mcss_live_reports_sent", reports_sent_);
    add_fb("mcss_live_reports_dropped_at_channel",
           reports_dropped_at_channel_);
  }

  UdpChannelStats sockets;
  std::uint64_t syscalls = poller_.wait_calls();
  std::vector<const UdpChannel*> all_channels;
  all_channels.reserve(channels_.size() + 1);
  for (const auto& ch : channels_) all_channels.push_back(ch.get());
  if (feedback_ch_) all_channels.push_back(feedback_ch_.get());
  for (const UdpChannel* ch : all_channels) {
    net::publish(registry, ch->impair_stats());
    const UdpChannelStats& s = ch->stats();
    sockets.datagrams_sent += s.datagrams_sent;
    sockets.datagrams_received += s.datagrams_received;
    sockets.bytes_sent += s.bytes_sent;
    sockets.bytes_received += s.bytes_received;
    sockets.frames_coalesced += s.frames_coalesced;
    sockets.send_wouldblock += s.send_wouldblock;
    sockets.send_retries += s.send_retries;
    sockets.send_refused += s.send_refused;
    sockets.send_errors += s.send_errors;
    sockets.sendmmsg_short += s.sendmmsg_short;
    sockets.recv_refused += s.recv_refused;
    sockets.recv_errors += s.recv_errors;
    sockets.recv_truncated += s.recv_truncated;
    sockets.frames_forwarded += s.frames_forwarded;
    sockets.unparsed_forwarded += s.unparsed_forwarded;
    sockets.frames_dropped_pool += s.frames_dropped_pool;
    syscalls += ch->syscalls_send() + ch->syscalls_recv();
  }
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_live_datagrams_sent", sockets.datagrams_sent);
  add("mcss_live_datagrams_received", sockets.datagrams_received);
  add("mcss_live_bytes_sent", sockets.bytes_sent);
  add("mcss_live_bytes_received", sockets.bytes_received);
  add("mcss_live_frames_coalesced", sockets.frames_coalesced);
  add("mcss_live_send_wouldblock", sockets.send_wouldblock);
  add("mcss_live_send_retries", sockets.send_retries);
  add("mcss_live_send_refused", sockets.send_refused);
  add("mcss_live_send_errors", sockets.send_errors);
  add("mcss_live_sendmmsg_short", sockets.sendmmsg_short);
  add("mcss_live_recv_refused", sockets.recv_refused);
  add("mcss_live_recv_errors", sockets.recv_errors);
  add("mcss_live_recv_truncated", sockets.recv_truncated);
  add("mcss_live_frames_forwarded", sockets.frames_forwarded);
  add("mcss_live_unparsed_forwarded", sockets.unparsed_forwarded);
  add("mcss_live_frames_dropped_pool", sockets.frames_dropped_pool);

  // The bench's syscalls_per_packet numerator: every kernel crossing the
  // transport makes — send/sendmmsg, recv/recvmmsg, and poller waits.
  add("mcss_transport_syscalls_total", syscalls);

  const FramePool::Stats& ps = pool_->stats();
  add("mcss_live_pool_acquired", ps.acquired);
  add("mcss_live_pool_exhausted", ps.exhausted);
  add("mcss_live_pool_oversize_drops", pool_oversize_drops_);
  add("mcss_live_pool_defers", pool_defers_);
  registry.set(registry.gauge("mcss_live_pool_high_water"),
               static_cast<double>(ps.high_water));
  registry.set(registry.gauge("mcss_live_pool_slots"),
               static_cast<double>(pool_->capacity()));
}

}  // namespace mcss::transport
