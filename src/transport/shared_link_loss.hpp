// Correlated loss from a shared physical link, for the live path.
//
// The routed simulator (src/topo) gets shared-link correlation for
// free: frames of every channel crossing a link contend for one
// serializer and one loss stream. The live Impairment shim models each
// channel independently, and independent Bernoulli draws stay
// independent no matter how the RNGs are seeded — so correlation has
// to come from SHARED STATE. SharedLinkLoss is that state: a two-state
// (good/bad) continuous-time chain — the link-level Gilbert model —
// advanced lazily on the monotonic clock. Every Impairment subscribed
// to the same instance consults the same chain at frame departure, so
// when the link enters a bad sojourn (a tap, a flap, a congested
// span), drops co-occur across all subscribed channels within the
// same wall-clock window — exactly the signature a shared tapped link
// produces and per-channel netem cannot.
//
// Sojourns are exponential with the configured means; frames departing
// during a bad sojourn drop with probability drop_in_bad (1.0 = hard
// outage burst). The long-run drop fraction each subscriber sees is
//   drop_in_bad * mean_bad / (mean_good + mean_bad).
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace mcss::transport {

struct SharedLinkLossConfig {
  std::int64_t mean_good_ns = 50'000'000;  ///< mean between-burst gap
  std::int64_t mean_bad_ns = 2'000'000;    ///< mean burst length
  double drop_in_bad = 1.0;  ///< per-frame drop probability while bad
};

struct SharedLinkLossStats {
  std::uint64_t bursts = 0;          ///< good -> bad transitions
  std::uint64_t frames_dropped = 0;  ///< across all subscribers
  std::uint64_t frames_seen = 0;
};

class SharedLinkLoss {
 public:
  /// `rng` drives sojourn lengths and in-burst drops; the chain starts
  /// in the good state at time 0 and materializes sojourns on demand.
  SharedLinkLoss(SharedLinkLossConfig config, Rng rng);

  SharedLinkLoss(const SharedLinkLoss&) = delete;
  SharedLinkLoss& operator=(const SharedLinkLoss&) = delete;

  /// Advance the chain to `now_ns` and decide one frame's fate. Called
  /// by each subscribed Impairment at serializer departure; `now_ns`
  /// must be monotone across ALL subscribers (they share one clock).
  [[nodiscard]] bool should_drop(std::int64_t now_ns);

  /// Chain state after the most recent should_drop.
  [[nodiscard]] bool in_burst() const noexcept { return bad_; }

  [[nodiscard]] const SharedLinkLossStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const SharedLinkLossConfig& config() const noexcept {
    return config_;
  }

 private:
  void advance(std::int64_t now_ns);
  [[nodiscard]] std::int64_t sojourn(std::int64_t mean_ns);

  SharedLinkLossConfig config_;
  Rng rng_;
  bool bad_ = false;
  std::int64_t state_until_ns_ = 0;  ///< current sojourn's end
  SharedLinkLossStats stats_;
};

}  // namespace mcss::transport
