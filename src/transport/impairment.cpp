#include "transport/impairment.hpp"

#include <algorithm>
#include <utility>

#include "net/sim_time.hpp"
#include "util/ensure.hpp"

namespace mcss::transport {

Impairment::Impairment(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
                       ReleaseFn release)
    : config_(config),
      rng_(rng),
      wheel_(wheel),
      release_(std::move(release)) {
  MCSS_ENSURE(config_.rate_bps > 0.0, "channel rate must be positive");
  MCSS_ENSURE(config_.loss >= 0.0 && config_.loss < 1.0,
              "channel loss must be in [0, 1)");
  MCSS_ENSURE(config_.delay >= 0, "channel delay must be nonnegative");
  MCSS_ENSURE(config_.jitter >= 0, "jitter must be nonnegative");
  MCSS_ENSURE(config_.corrupt >= 0.0 && config_.corrupt < 1.0,
              "corruption probability must be in [0, 1)");
  MCSS_ENSURE(config_.duplicate >= 0.0 && config_.duplicate < 1.0,
              "duplication probability must be in [0, 1)");
  MCSS_ENSURE(config_.queue_capacity_bytes > 0,
              "queue capacity must be positive");
  MCSS_ENSURE(release_ != nullptr, "impairment needs a release sink");
  watermark_ = config_.ready_watermark_bytes != 0
                   ? config_.ready_watermark_bytes
                   : std::max<std::size_t>(1, config_.queue_capacity_bytes / 2);
}

std::int64_t Impairment::serialization_ns(std::size_t bytes) const noexcept {
  const double seconds = static_cast<double>(bytes) * 8.0 / config_.rate_bps;
  return net::from_seconds(seconds);
}

bool Impairment::offer(FrameRef frame, std::int64_t now_ns) {
  ++stats_.frames_offered;
  MCSS_ENSURE(frame && frame.size() > 0, "cannot send an empty frame");
  if (queued_bytes_ + frame.size() > config_.queue_capacity_bytes) {
    ++stats_.frames_dropped_queue;
    return false;
  }
  queued_bytes_ += frame.size();
  stats_.bytes_queued_total += frame.size();
  ++stats_.frames_queued;

  // Charge the serializer up front: FIFO means this frame departs once
  // everything already accepted has, so its departure time is known at
  // offer time. The wheel fires departures in deadline order, which is
  // exactly arrival order here (the serializer is monotone).
  const std::int64_t start = std::max(serializer_free_at_, now_ns);
  const std::int64_t departure = start + serialization_ns(frame.size());
  serializer_free_at_ = departure;
  if (departure <= now_ns) {
    // Transparent-channel fast path: the serializer was idle and the
    // charge rounded to zero, so the frame departs right now — skip the
    // wheel and its type-erased closure (the hot path's only heap
    // allocation). Draw order matches the scheduled path exactly: the
    // wheel would have fired this departure before any later offer.
    depart(std::move(frame), departure);
    return true;
  }
  wheel_.schedule_at(departure, [this, departure,
                                 f = std::move(frame)]() mutable {
    depart(std::move(f), departure);
  });
  return true;
}

void Impairment::depart(FrameRef frame, std::int64_t departure_ns) {
  queued_bytes_ -= frame.size();
  // Shared-link burst loss first: the shared chain advances on the
  // departure clock, so channels subscribed to one link drop together
  // inside the same bad sojourn (see transport/shared_link_loss.hpp).
  if (shared_ != nullptr && shared_->should_drop(departure_ns)) {
    ++stats_.frames_dropped_shared_link;
    return;
  }
  // netem-equivalent loss: decided as the frame leaves the serializer,
  // with the same draw order as SimChannel so the two impairment paths
  // stay behaviorally interchangeable.
  if (rng_.bernoulli(config_.loss)) {
    ++stats_.frames_dropped_loss;
    return;
  }
  if (rng_.bernoulli(config_.corrupt)) {
    ++stats_.frames_corrupted;
    const auto bit = rng_.uniform_int(frame.size() * 8);
    frame.data()[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  const int copies = rng_.bernoulli(config_.duplicate) ? 2 : 1;
  if (copies == 2) ++stats_.frames_duplicated;
  for (int copy = 0; copy < copies; ++copy) {
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.size();
    // Jitter draws independently per copy, so duplicates (and successive
    // frames) can reorder, as with real netem. Duplicates SHARE the
    // pooled slot (refcount, not copy) — both releases read the same
    // post-corruption bytes, which is what the old copying path produced.
    std::int64_t extra = config_.delay;
    if (config_.jitter > 0) {
      extra += static_cast<std::int64_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(config_.jitter) + 1));
    }
    const std::int64_t release_at = departure_ns + extra;
    if (extra == 0) {
      // No netem delay to model: hand the frame straight to the channel
      // (the second leg of the transparent fast path).
      release_(copy + 1 < copies ? frame : std::move(frame), release_at);
      continue;
    }
    wheel_.schedule_at(release_at,
                       [this, release_at,
                        f = copy + 1 < copies ? frame : std::move(frame)]() mutable {
      release_(std::move(f), release_at);
    });
  }
}

}  // namespace mcss::transport
