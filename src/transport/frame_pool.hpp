// Forwarding header: FramePool moved to util/frame_pool.hpp when the
// protocol receiver (a layer below transport) grew arena-backed partial
// storage. Transport code keeps using transport::FramePool/FrameRef.
#pragma once

#include "util/frame_pool.hpp"

namespace mcss::transport {

using FramePool = util::FramePool;
using FrameRef = util::FrameRef;

}  // namespace mcss::transport
