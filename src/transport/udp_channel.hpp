// One live channel: impairment shim in front of a loopback UDP pair.
//
// A UdpChannel is the live-transport analogue of net::SimChannel — same
// config, same stats, same epoll-style ready()/backlog contract the
// DynamicScheduler consumes — but frames actually cross the kernel, and
// they cross it in batches:
//
//   try_send(FrameRef)                       sender side
//     -> Impairment (rate pacing, loss, delay+jitter on the TimerWheel)
//     -> pending ring (pool-backed frames the shim has released, each
//        carrying its own release stamp)
//     -> flush(): greedy-coalesce frames into datagrams of
//        <= max_datagram_bytes as iovec GATHERS (no assembly copy), then
//        one sendmmsg(2) moves up to send_batch datagrams; a short
//        return retires only the completed datagrams and requeues the
//        tail; EAGAIN parks everything until the poller reports
//        writability; ECONNREFUSED counts as loss
//   on_readable()                            receiver side
//     -> one recvmmsg(2) fills up to recv_batch persistent pool slots;
//        repeat until the socket drains
//     -> wire::frame_extent() splits each datagram back into frames IN
//        PLACE (framing only, no copy), forwarding spans upward so a
//        keyed proto::Receiver keeps sole authority over auth/malformed
//        accounting and copies only the payloads it retains
//
// After pool warmup the whole path — release, coalesce, sendmmsg,
// recvmmsg, split, forward — performs zero heap allocations; the
// transport suite asserts that with an operator-new counting hook.
//
// send_batch == 1 selects the LEGACY path deliberately: one send()/
// recv() per datagram with assembly and per-frame materialization,
// byte-compatible with the pre-batching transport. bench/live_eval uses
// it as the honest before/after baseline, and it is the fallback story
// if batching ever misbehaves (MCSS_LIVE_BATCH=1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/sim_channel.hpp"
#include "transport/frame_pool.hpp"
#include "transport/impairment.hpp"
#include "transport/timer_wheel.hpp"
#include "transport/udp_socket.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace mcss::transport {

/// Socket-layer counters (the impairment layer keeps net::ChannelStats).
struct UdpChannelStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_coalesced = 0;   ///< frames packed after the first
  std::uint64_t send_wouldblock = 0;    ///< EAGAIN events (datagram kept)
  std::uint64_t send_retries = 0;       ///< backoff-paced re-flush attempts
  std::uint64_t send_refused = 0;       ///< ECONNREFUSED (counted as loss)
  std::uint64_t send_errors = 0;        ///< other errno (datagram dropped)
  std::uint64_t sendmmsg_short = 0;     ///< batch cut short mid-way (tail requeued)
  std::uint64_t recv_refused = 0;       ///< pending ICMP error drained
  std::uint64_t recv_errors = 0;
  std::uint64_t recv_truncated = 0;     ///< datagram overflowed its pool slot
  std::uint64_t frames_forwarded = 0;   ///< parsed frames handed upward
  std::uint64_t unparsed_forwarded = 0; ///< undecodable tails handed upward
  std::uint64_t frames_dropped_pool = 0;///< pool/ring exhausted (tail drop)
};

class UdpChannel {
 public:
  /// Receives the raw bytes of one frame (or one undecodable datagram
  /// tail) from the RX socket. The span views a pool receive slot and is
  /// only valid for the duration of the call — consumers that retain
  /// bytes must copy them (proto::Receiver copies exactly the payload it
  /// stores, nothing else).
  using FrameFn = std::function<void(std::span<const std::uint8_t>)>;

  /// Binds the RX socket to 127.0.0.1:`rx_port` (0 = ephemeral) and
  /// connects an ephemeral TX socket to it. `rng` seeds the impairment's
  /// private loss/jitter stream; the wheel and pool are shared across
  /// channels and must outlive the channel. `send_batch` caps datagrams
  /// per sendmmsg, `recv_batch` caps datagrams per recvmmsg (and is the
  /// number of receive slots pinned from the pool for this channel's
  /// lifetime); send_batch == 1 selects the legacy unbatched path.
  UdpChannel(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
             FramePool& pool, std::uint16_t rx_port, std::string name = {},
             std::size_t max_datagram_bytes = 1400,
             std::size_t send_batch = 32, std::size_t recv_batch = 32);

  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;
  ~UdpChannel();

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }

  /// Offer a pool-backed frame at monotonic time `now_ns`. False = tail
  /// drop at the impairment queue (mirrors SimChannel::try_send).
  bool try_send(FrameRef frame, std::int64_t now_ns);

  /// Copying convenience: stage `frame` into a pool slot first. False
  /// additionally covers pool exhaustion (counted in
  /// stats().frames_dropped_pool) — degrade is drop-with-stat, never a
  /// hot-path malloc.
  bool try_send(std::span<const std::uint8_t> frame, std::int64_t now_ns);

  /// epoll-style writability for the scheduler: impairment backlog plus
  /// socket-parked bytes below the watermark.
  [[nodiscard]] bool ready(std::int64_t now_ns) const noexcept;

  /// The dynamic scheduler's "least backlog" key: serializer backlog plus
  /// an estimate for bytes parked behind a full kernel buffer.
  [[nodiscard]] std::int64_t backlog_ns(std::int64_t now_ns) const noexcept;

  /// Drain the RX socket, splitting datagrams into frames. Called by the
  /// endpoint when the poller reports the RX fd readable.
  void on_readable();

  /// Retry parked datagrams. Called when the poller reports the TX fd
  /// writable (and harmlessly any other time). `now_ns` stamps the
  /// per-frame queue-wait observations.
  void on_writable(std::int64_t now_ns);

  /// Send whatever the impairment has released. The endpoint calls this
  /// once per pump iteration so frames released close together (one
  /// wheel advance) leave in one sendmmsg; release() also self-flushes
  /// whenever a full batch is pending, so backlogs never wait for the
  /// next pump.
  void flush(std::int64_t now_ns);

  /// True while frames are parked waiting for kernel buffer space — the
  /// endpoint mirrors this into the poller's EPOLLOUT interest
  /// (level-triggered EPOLLOUT on an idle UDP socket would spin).
  [[nodiscard]] bool wants_write() const noexcept { return ring_count_ > 0; }

  [[nodiscard]] int tx_fd() const noexcept { return tx_.fd(); }
  [[nodiscard]] int rx_fd() const noexcept { return rx_.fd(); }
  [[nodiscard]] std::uint16_t rx_port() const { return rx_.local_port(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const net::ChannelConfig& config() const noexcept {
    return impair_.config();
  }
  [[nodiscard]] const net::ChannelStats& impair_stats() const noexcept {
    return impair_.stats();
  }
  [[nodiscard]] const UdpChannelStats& stats() const noexcept {
    return stats_;
  }
  /// Kernel-crossing syscall counts (send+sendmmsg / recv+recvmmsg), the
  /// numerator of the bench's syscalls_per_packet column.
  [[nodiscard]] std::uint64_t syscalls_send() const noexcept {
    return tx_.syscalls_send();
  }
  [[nodiscard]] std::uint64_t syscalls_recv() const noexcept {
    return rx_.syscalls_recv();
  }

  /// Test hooks: the underlying sockets (e.g. inject_wouldblock, tiny
  /// SO_SNDBUF).
  [[nodiscard]] UdpSocket& tx_socket() noexcept { return tx_; }
  [[nodiscard]] UdpSocket& rx_socket() noexcept { return rx_; }
  /// Release stamps of the frames retired by the most recent flush(), in
  /// send order — lets tests pin that a batch leaving in ONE sendmmsg
  /// still carries per-frame (distinct) departure times.
  [[nodiscard]] std::span<const std::int64_t> last_flush_release_ns()
      const noexcept {
    return {last_flush_release_ns_.data(), last_flush_release_ns_.size()};
  }

 private:
  struct Pending {
    FrameRef ref;
    std::int64_t release_ns = 0;
  };

  void release(FrameRef frame, std::int64_t release_ns);
  void flush_batched(std::int64_t now_ns);
  void flush_legacy(std::int64_t now_ns);
  void on_readable_batched();
  void on_readable_legacy();
  void split_and_forward(std::span<const std::uint8_t> datagram);
  void arm_retry();
  void retire_front_frames(std::size_t frames, std::int64_t now_ns, bool sent);
  [[nodiscard]] Pending& ring_at(std::size_t i) noexcept {
    return ring_[(ring_head_ + i) % ring_.size()];
  }

  std::string name_;
  std::size_t max_datagram_bytes_;
  std::size_t send_batch_;
  std::size_t recv_batch_;
  UdpSocket rx_;
  UdpSocket tx_;
  TimerWheel& wheel_;
  FramePool& pool_;
  Impairment impair_;
  FrameFn on_frame_;

  /// Frames released by the impairment, not yet accepted by the kernel.
  /// Fixed-capacity ring (bounded by pool capacity plus duplicates), so
  /// parking under backpressure never allocates.
  std::vector<Pending> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t pending_out_bytes_ = 0;

  /// Persistent sendmmsg/recvmmsg scaffolding, sized once in the
  /// constructor: flush() and on_readable() re-fill these in place.
  std::vector<mmsghdr> tx_msgs_;
  std::vector<iovec> tx_iovs_;
  std::vector<std::size_t> tx_takes_;   ///< frames per built datagram
  std::vector<mmsghdr> rx_msgs_;
  std::vector<iovec> rx_iovs_;
  std::vector<FrameRef> rx_slots_;      ///< pool slots pinned for RX reuse
  std::vector<std::int64_t> last_flush_release_ns_;

  /// EAGAIN recovery: EPOLLOUT is the primary wake-up, but a wheel-timer
  /// re-flush paced by decorrelated-jitter backoff backstops pollers
  /// whose write interest only updates between waits. Reset on progress.
  Backoff retry_backoff_;
  bool retry_armed_ = false;
  std::int64_t last_now_ns_ = 0;  ///< latest time seen by try_send()
  UdpChannelStats stats_;
};

}  // namespace mcss::transport
