// One live channel: impairment shim in front of a loopback UDP pair.
//
// A UdpChannel is the live-transport analogue of net::SimChannel — same
// config, same stats, same epoll-style ready()/backlog contract the
// DynamicScheduler consumes — but frames actually cross the kernel:
//
//   try_send(frame)                          sender side
//     -> Impairment (rate pacing, loss, delay+jitter on the TimerWheel)
//     -> pending_out_ (frames the shim has released)
//     -> flush(): coalesce into datagrams <= max_datagram_bytes, send()
//        on the connected TX socket; EAGAIN parks the rest until the
//        poller reports writability, ECONNREFUSED counts as loss
//   on_readable()                            receiver side
//     -> recv() on the bound RX socket until EAGAIN
//     -> wire::decode_prefix() splits each datagram back into frames
//        (unkeyed: framing only), forwarding the raw bytes upward so a
//        keyed proto::Receiver keeps sole authority over auth/malformed
//        accounting
//
// Coalescing is why decode_prefix exists: several shares released in the
// same pump share one datagram, and the receive path must parse them
// back out one frame at a time. A datagram whose head does not parse is
// forwarded whole so the Receiver counts it malformed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/sim_channel.hpp"
#include "transport/impairment.hpp"
#include "transport/timer_wheel.hpp"
#include "transport/udp_socket.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace mcss::transport {

/// Socket-layer counters (the impairment layer keeps net::ChannelStats).
struct UdpChannelStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_coalesced = 0;   ///< frames packed after the first
  std::uint64_t send_wouldblock = 0;    ///< EAGAIN events (datagram kept)
  std::uint64_t send_retries = 0;       ///< backoff-paced re-flush attempts
  std::uint64_t send_refused = 0;       ///< ECONNREFUSED (counted as loss)
  std::uint64_t send_errors = 0;        ///< other errno (datagram dropped)
  std::uint64_t recv_refused = 0;       ///< pending ICMP error drained
  std::uint64_t recv_errors = 0;
  std::uint64_t frames_forwarded = 0;   ///< parsed frames handed upward
  std::uint64_t unparsed_forwarded = 0; ///< undecodable tails handed upward
};

class UdpChannel {
 public:
  /// Receives the raw bytes of one frame (or one undecodable datagram
  /// tail) from the RX socket.
  using FrameFn = std::function<void(std::vector<std::uint8_t>)>;

  /// Binds the RX socket to 127.0.0.1:`rx_port` (0 = ephemeral) and
  /// connects an ephemeral TX socket to it. `rng` seeds the impairment's
  /// private loss/jitter stream; the wheel is shared across channels.
  UdpChannel(net::ChannelConfig config, Rng rng, TimerWheel& wheel,
             std::uint16_t rx_port, std::string name = {},
             std::size_t max_datagram_bytes = 1400);

  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }

  /// Offer a frame at monotonic time `now_ns`. False = tail drop at the
  /// impairment queue (mirrors SimChannel::try_send).
  bool try_send(std::vector<std::uint8_t> frame, std::int64_t now_ns);

  /// epoll-style writability for the scheduler: impairment backlog plus
  /// socket-parked bytes below the watermark.
  [[nodiscard]] bool ready(std::int64_t now_ns) const noexcept;

  /// The dynamic scheduler's "least backlog" key: serializer backlog plus
  /// an estimate for bytes parked behind a full kernel buffer.
  [[nodiscard]] std::int64_t backlog_ns(std::int64_t now_ns) const noexcept;

  /// Drain the RX socket, splitting datagrams into frames. Called by the
  /// endpoint when the poller reports the RX fd readable.
  void on_readable();

  /// Retry parked datagrams. Called when the poller reports the TX fd
  /// writable (and harmlessly any other time).
  void on_writable();

  /// True while a datagram is parked waiting for kernel buffer space —
  /// the endpoint mirrors this into the poller's EPOLLOUT interest
  /// (level-triggered EPOLLOUT on an idle UDP socket would spin).
  [[nodiscard]] bool wants_write() const noexcept {
    return !pending_out_.empty();
  }

  [[nodiscard]] int tx_fd() const noexcept { return tx_.fd(); }
  [[nodiscard]] int rx_fd() const noexcept { return rx_.fd(); }
  [[nodiscard]] std::uint16_t rx_port() const { return rx_.local_port(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const net::ChannelConfig& config() const noexcept {
    return impair_.config();
  }
  [[nodiscard]] const net::ChannelStats& impair_stats() const noexcept {
    return impair_.stats();
  }
  [[nodiscard]] const UdpChannelStats& stats() const noexcept {
    return stats_;
  }

  /// Test hooks: the underlying sockets (e.g. inject_wouldblock, tiny
  /// SO_SNDBUF).
  [[nodiscard]] UdpSocket& tx_socket() noexcept { return tx_; }
  [[nodiscard]] UdpSocket& rx_socket() noexcept { return rx_; }

 private:
  void flush();
  void release(std::vector<std::uint8_t> frame);
  void arm_retry();

  std::string name_;
  std::size_t max_datagram_bytes_;
  UdpSocket rx_;
  UdpSocket tx_;
  TimerWheel& wheel_;
  Impairment impair_;
  FrameFn on_frame_;
  /// Frames released by the impairment, not yet accepted by the kernel.
  std::deque<std::vector<std::uint8_t>> pending_out_;
  std::size_t pending_out_bytes_ = 0;
  /// EAGAIN recovery: EPOLLOUT is the primary wake-up, but a wheel-timer
  /// re-flush paced by decorrelated-jitter backoff backstops pollers
  /// whose write interest only updates between waits. Reset on progress.
  Backoff retry_backoff_;
  bool retry_armed_ = false;
  std::int64_t last_now_ns_ = 0;  ///< latest time seen by try_send()
  UdpChannelStats stats_;
};

}  // namespace mcss::transport
