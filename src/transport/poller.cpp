#include "transport/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <system_error>

#include "transport/uring_poller.hpp"
#include "util/ensure.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#define MCSS_HAVE_EPOLL 1
#else
#define MCSS_HAVE_EPOLL 0
#endif

namespace mcss::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

struct Poller::Impl {
  // epoll state
  int epfd = -1;
#if MCSS_HAVE_EPOLL
  std::vector<epoll_event> ready;
#endif
  // io_uring state (null unless backend is Uring)
  std::unique_ptr<UringCore> uring;
  // poll state
  std::vector<pollfd> fds;

  [[nodiscard]] std::vector<pollfd>::iterator find(int fd) {
    return std::find_if(fds.begin(), fds.end(),
                        [fd](const pollfd& p) { return p.fd == fd; });
  }
};

Poller::Backend Poller::default_backend() {
#if MCSS_HAVE_EPOLL
  const char* forced = std::getenv("MCSS_LIVE_POLLER");
  if (forced != nullptr && std::strcmp(forced, "poll") == 0) {
    return Backend::Poll;
  }
  if (forced != nullptr && std::strcmp(forced, "uring") == 0) {
    return Backend::Uring;
  }
  return Backend::Epoll;
#else
  return Backend::Poll;
#endif
}

Poller::Poller(Backend backend)
    : backend_(backend), impl_(std::make_unique<Impl>()) {
  if (backend_ == Backend::Uring) {
    try {
      impl_->uring = std::make_unique<UringCore>();
    } catch (const std::exception& e) {
      // Graceful degrade: a kernel refusing io_uring (seccomp ENOSYS,
      // EPERM, memlock) must not kill the endpoint — run on epoll and
      // say so once, visibly.
#if MCSS_HAVE_EPOLL
      backend_ = Backend::Epoll;
#else
      backend_ = Backend::Poll;
#endif
      std::fprintf(stderr,
                   "mcss: io_uring poller unavailable (%s); "
                   "falling back to %s\n",
                   e.what(), backend_ == Backend::Epoll ? "epoll" : "poll");
    }
  }
#if MCSS_HAVE_EPOLL
  if (backend_ == Backend::Epoll) {
    impl_->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (impl_->epfd < 0) throw_errno("epoll_create1");
  }
#else
  MCSS_ENSURE(backend_ != Backend::Epoll, "epoll backend requires Linux");
  if (backend_ != Backend::Uring) {
    MCSS_ENSURE(backend_ == Backend::Poll, "unknown poller backend");
  }
#endif
}

Poller::~Poller() {
  if (impl_->epfd >= 0) ::close(impl_->epfd);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  MCSS_ENSURE(fd >= 0, "adding an invalid fd");
  if (backend_ == Backend::Uring) {
    impl_->uring->add(fd, want_read, want_write);
    return;
  }
#if MCSS_HAVE_EPOLL
  if (backend_ == Backend::Epoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(impl_->epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
    return;
  }
#endif
  MCSS_ENSURE(impl_->find(fd) == impl_->fds.end(), "fd already registered");
  pollfd p{};
  p.fd = fd;
  p.events = static_cast<short>((want_read ? POLLIN : 0) |
                                (want_write ? POLLOUT : 0));
  impl_->fds.push_back(p);
}

void Poller::modify(int fd, bool want_read, bool want_write) {
  if (backend_ == Backend::Uring) {
    impl_->uring->modify(fd, want_read, want_write);
    return;
  }
#if MCSS_HAVE_EPOLL
  if (backend_ == Backend::Epoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(impl_->epfd, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(MOD)");
    }
    return;
  }
#endif
  const auto it = impl_->find(fd);
  MCSS_ENSURE(it != impl_->fds.end(), "modifying an unregistered fd");
  it->events = static_cast<short>((want_read ? POLLIN : 0) |
                                  (want_write ? POLLOUT : 0));
}

void Poller::remove(int fd) {
  if (backend_ == Backend::Uring) {
    impl_->uring->remove(fd);
    return;
  }
#if MCSS_HAVE_EPOLL
  if (backend_ == Backend::Epoll) {
    epoll_event ev{};  // non-null for pre-2.6.9 kernels, per epoll_ctl(2)
    if (::epoll_ctl(impl_->epfd, EPOLL_CTL_DEL, fd, &ev) < 0) {
      throw_errno("epoll_ctl(DEL)");
    }
    return;
  }
#endif
  const auto it = impl_->find(fd);
  MCSS_ENSURE(it != impl_->fds.end(), "removing an unregistered fd");
  impl_->fds.erase(it);
}

std::size_t Poller::wait(int timeout_ms, std::vector<Event>& out) {
  out.clear();
  ++wait_calls_;
  if (backend_ == Backend::Uring) {
    return impl_->uring->wait(timeout_ms, out);
  }
#if MCSS_HAVE_EPOLL
  if (backend_ == Backend::Epoll) {
    impl_->ready.resize(64);
    int n;
    do {
      n = ::epoll_wait(impl_->epfd, impl_->ready.data(),
                       static_cast<int>(impl_->ready.size()), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = impl_->ready[static_cast<std::size_t>(i)];
      Event e;
      e.fd = ev.data.fd;
      e.readable = (ev.events & EPOLLIN) != 0;
      e.writable = (ev.events & EPOLLOUT) != 0;
      e.error = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  int n;
  do {
    n = ::poll(impl_->fds.data(), impl_->fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("poll");
  for (const pollfd& p : impl_->fds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

bool Poller::register_buffers(std::span<const std::uint8_t> arena) noexcept {
  if (backend_ != Backend::Uring) return false;
  return impl_->uring->register_buffers(arena.data(), arena.size());
}

}  // namespace mcss::transport
