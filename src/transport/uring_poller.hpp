// io_uring readiness core — the third Poller backend.
//
// Raw syscalls (io_uring_setup/io_uring_enter/io_uring_register) and
// hand-mmapped SQ/CQ rings: the container deliberately carries no
// liburing, and the ring protocol is small enough to speak directly.
//
// Shape: readiness-mode io_uring. Each registered fd gets an
// IORING_OP_POLL_ADD, re-armed after every delivered completion. The
// re-arm SQEs batch into the next io_uring_enter, so steady state is
// still one syscall per wakeup — and because arming re-runs vfs_poll
// immediately, an fd with undrained data re-reports on the next wait,
// which is exactly epoll's level-triggered contract. (Multishot poll —
// IORING_POLL_ADD_MULTI — was measured here first and rejected: it
// posts one CQE per WAKEUP, not per level, so a socket with unread
// data goes silent after the first event and the backend stops being
// substitutable for epoll. Multishot RECEIVE into registered buffers
// is the documented follow-up; see DESIGN.md.) Timed waits piggyback
// an IORING_OP_TIMEOUT SQE with count=1 — it completes on the first
// CQE or the deadline, whichever is first, so no stale timers
// accumulate.
//
// user_data packs (generation << 32 | fd). modify()/remove() cancel via
// IORING_OP_POLL_REMOVE and bump the generation; CQEs from a cancelled
// arming carry the old generation and are dropped on drain, so a
// re-registered fd never sees ghost readiness from its previous life.
//
// register_buffers() wires the FramePool arena to the ring
// (IORING_REGISTER_BUFFERS) so a future fixed-buffer receive path
// (IORING_OP_RECV with registered buffers) needs no code motion; the
// datagram moves themselves stay on recvmmsg/sendmmsg for now, which
// keeps all three poller backends behaviourally identical (DESIGN.md,
// "frame lifecycle").
//
// Construction THROWS when the kernel refuses (ENOSYS under seccomp,
// EPERM, resource limits); Poller catches that and falls back to epoll
// with a logged reason. supported() is the cheap cached probe for
// skip-or-run decisions in tests and CI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "transport/poller.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define MCSS_HAVE_URING 1
#else
#define MCSS_HAVE_URING 0
#endif

namespace mcss::transport {

class UringCore {
 public:
  /// Can this kernel give us a ring at all? Probes once (setup+close),
  /// caches the answer for the process.
  [[nodiscard]] static bool supported() noexcept;

  /// Throws std::system_error when ring setup fails.
  UringCore();
  ~UringCore();
  UringCore(const UringCore&) = delete;
  UringCore& operator=(const UringCore&) = delete;

  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);
  std::size_t wait(int timeout_ms, std::vector<Poller::Event>& out);

  /// IORING_REGISTER_BUFFERS over one contiguous arena (the FramePool).
  /// Best-effort: a kernel refusing (memlock limits) just leaves the
  /// ring unregistered. Returns whether registration took.
  bool register_buffers(const void* data, std::size_t bytes) noexcept;

  [[nodiscard]] bool buffers_registered() const noexcept {
    return buffers_registered_;
  }

 private:
  struct Reg {
    bool want_read = false;
    bool want_write = false;
    std::uint32_t gen = 0;
    bool armed = false;
  };

  void push_poll_add(int fd, Reg& reg);
  void push_poll_remove(std::uint64_t target_user_data);
  void push_timeout(int timeout_ms);
  void* next_sqe();  // returns io_uring_sqe*, flushing if the SQ is full
  void enter(unsigned min_complete, bool getevents);
  void drain(std::vector<Poller::Event>& out);

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqes_bytes_ = 0;
  bool single_mmap_ = false;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;

  unsigned pending_submit_ = 0;
  bool buffers_registered_ = false;
  std::uint32_t next_gen_ = 1;
  // fd -> registration; fds are small ints, the table is tiny (one per
  // channel socket), lookups happen once per CQE.
  std::vector<Reg> regs_;        // indexed by fd
  std::vector<bool> reg_live_;   // indexed by fd
  // 16-byte timespec the pending TIMEOUT SQE points into; must outlive
  // the op, hence a member.
  long long timeout_ts_[2] = {0, 0};
};

}  // namespace mcss::transport
