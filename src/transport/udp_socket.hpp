// Nonblocking loopback UDP socket, RAII-wrapped.
//
// The live transport's unit of I/O: one socket per channel direction,
// always 127.0.0.1, always O_NONBLOCK. The wrapper normalizes the errno
// zoo of nonblocking UDP into a small result enum the channel state
// machine can switch on:
//
//   WouldBlock     EAGAIN/EWOULDBLOCK — kernel send buffer full; keep
//                  the datagram and wait for writability
//   Refused        ECONNREFUSED — a previous datagram drew an ICMP port
//                  unreachable (peer not bound yet, or gone). For a
//                  best-effort share channel this is loss, not an error
//   Error          anything else (EMSGSIZE, ENOBUFS, ...) — drop and count
//
// Tests can inject WouldBlock deterministically (inject_wouldblock):
// loopback drains so fast that a real EAGAIN is timing-dependent, but
// the backpressure path must be exercised on every CI run.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

namespace mcss::transport {

class UdpSocket {
 public:
  enum class IoResult {
    Ok,
    WouldBlock,
    Refused,
    Error,
  };

  /// An invalid (closed) socket; use the factories.
  UdpSocket() = default;

  /// Nonblocking UDP socket bound to 127.0.0.1:`port` (0 = kernel picks;
  /// read it back with local_port()). Throws std::system_error on failure.
  [[nodiscard]] static UdpSocket bound_loopback(std::uint16_t port);

  UdpSocket(UdpSocket&& other) noexcept { *this = std::move(other); }
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint16_t local_port() const;

  /// Fix the peer to 127.0.0.1:`port` so send() needs no address and the
  /// socket receives ICMP errors (ECONNREFUSED) for dead peers.
  void connect_loopback(std::uint16_t port);

  /// Send one datagram. On Ok the whole datagram was accepted (UDP never
  /// short-writes a datagram).
  [[nodiscard]] IoResult send(std::span<const std::uint8_t> datagram);

  /// Receive one datagram into `buf`; `*received` gets its length.
  /// WouldBlock when nothing is queued. A datagram longer than `buf` is
  /// truncated by the kernel (size your buffer for the max datagram).
  [[nodiscard]] IoResult recv(std::span<std::uint8_t> buf,
                              std::size_t* received);

  /// Kernel buffer knobs (SO_SNDBUF / SO_RCVBUF), for the backpressure
  /// tests; the kernel doubles and clamps the value it actually applies.
  void set_send_buffer(int bytes);
  void set_recv_buffer(int bytes);

  /// Make the next `count` send() calls report WouldBlock without
  /// touching the kernel (deterministic EAGAIN for tests).
  void inject_wouldblock(int count) noexcept { inject_wouldblock_ = count; }

 private:
  int fd_ = -1;
  int inject_wouldblock_ = 0;
};

}  // namespace mcss::transport
