// Nonblocking loopback UDP socket, RAII-wrapped.
//
// The live transport's unit of I/O: one socket per channel direction,
// always 127.0.0.1, always O_NONBLOCK. The wrapper normalizes the errno
// zoo of nonblocking UDP into a small result enum the channel state
// machine can switch on:
//
//   WouldBlock     EAGAIN/EWOULDBLOCK — kernel send buffer full; keep
//                  the datagram and wait for writability
//   Refused        ECONNREFUSED — a previous datagram drew an ICMP port
//                  unreachable (peer not bound yet, or gone). For a
//                  best-effort share channel this is loss, not an error
//   Error          anything else (EMSGSIZE, ENOBUFS, ...) — drop and count
//
// Tests can inject WouldBlock deterministically (inject_wouldblock):
// loopback drains so fast that a real EAGAIN is timing-dependent, but
// the backpressure path must be exercised on every CI run.
#pragma once

#include <sys/socket.h>

#include <cstdint>
#include <span>
#include <utility>

namespace mcss::transport {

class UdpSocket {
 public:
  enum class IoResult {
    Ok,
    WouldBlock,
    Refused,
    Error,
  };

  /// Outcome of one sendmmsg/recvmmsg call. `completed` datagrams were
  /// moved; when completed < the batch size, `result` explains why the
  /// batch stopped short *if the kernel told us* — a short sendmmsg
  /// return reports Ok and leaves the failing datagram's errno for the
  /// next call, per sendmmsg(2), so callers requeue the tail and retry.
  struct BatchResult {
    IoResult result = IoResult::Ok;
    unsigned completed = 0;
  };

  /// An invalid (closed) socket; use the factories.
  UdpSocket() = default;

  /// Nonblocking UDP socket bound to 127.0.0.1:`port` (0 = kernel picks;
  /// read it back with local_port()). Throws std::system_error on failure.
  [[nodiscard]] static UdpSocket bound_loopback(std::uint16_t port);

  UdpSocket(UdpSocket&& other) noexcept { *this = std::move(other); }
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint16_t local_port() const;

  /// Fix the peer to 127.0.0.1:`port` so send() needs no address and the
  /// socket receives ICMP errors (ECONNREFUSED) for dead peers.
  void connect_loopback(std::uint16_t port);

  /// Send one datagram. On Ok the whole datagram was accepted (UDP never
  /// short-writes a datagram).
  [[nodiscard]] IoResult send(std::span<const std::uint8_t> datagram);

  /// Receive one datagram into `buf`; `*received` gets its length.
  /// WouldBlock when nothing is queued. A datagram longer than `buf` is
  /// truncated by the kernel (size your buffer for the max datagram).
  [[nodiscard]] IoResult recv(std::span<std::uint8_t> buf,
                              std::size_t* received);

  /// Send up to msgs.size() datagrams in one sendmmsg(2). The caller owns
  /// the mmsghdr/iovec arrays (persistent, reused across calls — this
  /// layer allocates nothing). Error mapping matches send(): a failure on
  /// the FIRST datagram surfaces as {WouldBlock|Refused|Error, 0}; a
  /// failure on a later slot makes the kernel stop and return the count
  /// sent so far — reported here as {Ok, n<size}, with the slot's errno
  /// surfacing at the head of the next call. msg_len is filled per sent
  /// datagram (UDP never short-writes, so it is informational).
  [[nodiscard]] BatchResult send_many(std::span<mmsghdr> msgs);

  /// Receive up to msgs.size() datagrams in one recvmmsg(2). Each
  /// mmsghdr's iovec must point at a receive slot; on return, slot i of
  /// the first `completed` has msg_len bytes (check msg_flags & MSG_TRUNC
  /// for oversized datagrams). {WouldBlock, 0} when nothing is queued;
  /// {Ok, n<size} means the queue drained mid-batch (no need to call
  /// again until the poller reports readable).
  [[nodiscard]] BatchResult recv_many(std::span<mmsghdr> msgs);

  /// Syscalls actually issued (send/sendmmsg and recv/recvmmsg that
  /// reached the kernel, including ones that returned EAGAIN; EINTR
  /// retries count each attempt). The batched fast path's whole point is
  /// driving syscalls_send()/packet toward 1/batch — the bench reads
  /// these.
  [[nodiscard]] std::uint64_t syscalls_send() const noexcept {
    return syscalls_send_;
  }
  [[nodiscard]] std::uint64_t syscalls_recv() const noexcept {
    return syscalls_recv_;
  }

  /// Kernel buffer knobs (SO_SNDBUF / SO_RCVBUF), for the backpressure
  /// tests; the kernel doubles and clamps the value it actually applies.
  void set_send_buffer(int bytes);
  void set_recv_buffer(int bytes);

  /// Make the next `count` send()/send_many() calls report WouldBlock
  /// without touching the kernel (deterministic EAGAIN for tests). A
  /// batched call consumes ONE injection and completes zero datagrams —
  /// modelling EAGAIN on slot 0.
  void inject_wouldblock(int count) noexcept { inject_wouldblock_ = count; }

  /// Make the next send_many() really send only the first `k` datagrams
  /// and return short ({Ok, k}), as the kernel does when a mid-batch slot
  /// fails — a real short return needs a timing-dependent mid-batch
  /// EAGAIN, but the requeue-the-tail path must run on every CI run.
  /// One-shot; 0 disarms. Ignored by send().
  void inject_accept_limit(int k) noexcept {
    inject_accept_limit_ = k;
    inject_accept_armed_ = true;
  }

 private:
  int fd_ = -1;
  int inject_wouldblock_ = 0;
  int inject_accept_limit_ = 0;
  bool inject_accept_armed_ = false;
  std::uint64_t syscalls_send_ = 0;
  std::uint64_t syscalls_recv_ = 0;
};

}  // namespace mcss::transport
