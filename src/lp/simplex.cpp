#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/ensure.hpp"

namespace mcss::lp {

namespace {

// Dense tableau:
//   rows_ x (num_cols_ + 1) matrix; last column is the RHS.
//   Row `r` is the equation for basic variable basis_[r].
//   A separate cost row holds reduced costs for the current phase.
class Tableau {
 public:
  Tableau(const Problem& problem, double tol) : tol_(tol) {
    const std::size_t n = problem.objective.size();
    const std::size_t m = problem.constraints.size();
    num_structural_ = n;

    // Column layout: [structural | slack/surplus | artificial | rhs].
    // Count slack/surplus columns first.
    std::size_t num_slack = 0;
    for (const auto& c : problem.constraints) {
      if (c.rel != Relation::Equal) ++num_slack;
    }
    // Worst case every row needs an artificial; trim later.
    num_cols_ = n + num_slack;
    const std::size_t artificial_base = num_cols_;

    rows_.assign(m, std::vector<double>(n + num_slack + m + 1, 0.0));
    basis_.assign(m, SIZE_MAX);

    std::size_t slack_col = n;
    std::size_t art_col = artificial_base;
    for (std::size_t r = 0; r < m; ++r) {
      const Constraint& c = problem.constraints[r];
      MCSS_ENSURE(c.coeffs.size() <= n,
                  "constraint has more coefficients than the objective");
      double sign = 1.0;
      Relation rel = c.rel;
      if (c.rhs < 0.0) {
        // Normalize to nonnegative RHS, flipping the relation.
        sign = -1.0;
        if (rel == Relation::LessEqual) {
          rel = Relation::GreaterEqual;
        } else if (rel == Relation::GreaterEqual) {
          rel = Relation::LessEqual;
        }
      }
      for (std::size_t j = 0; j < c.coeffs.size(); ++j) {
        MCSS_ENSURE(std::isfinite(c.coeffs[j]), "non-finite constraint coefficient");
        rows_[r][j] = sign * c.coeffs[j];
      }
      rows_[r].back() = sign * c.rhs;

      switch (rel) {
        case Relation::LessEqual:
          rows_[r][slack_col] = 1.0;
          basis_[r] = slack_col++;
          break;
        case Relation::GreaterEqual:
          rows_[r][slack_col] = -1.0;
          ++slack_col;
          [[fallthrough]];
        case Relation::Equal:
          rows_[r][art_col] = 1.0;
          basis_[r] = art_col++;
          break;
      }
    }
    num_artificial_ = art_col - artificial_base;
    artificial_base_ = artificial_base;
    num_cols_ = art_col;
    // Shrink rows to the columns actually used (+ rhs).
    for (auto& row : rows_) {
      row[num_cols_] = row.back();
      row.resize(num_cols_ + 1);
    }
  }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_structural() const noexcept { return num_structural_; }
  [[nodiscard]] bool has_artificials() const noexcept { return num_artificial_ > 0; }
  [[nodiscard]] bool is_artificial(std::size_t col) const noexcept {
    return col >= artificial_base_;
  }

  // Phase 1: minimize the sum of artificial variables. Returns the phase-1
  // objective (infeasibility measure) or NaN on iteration limit.
  double run_phase1(std::size_t max_iters, std::size_t& iters) {
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = artificial_base_; j < num_cols_; ++j) cost[j] = 1.0;
    build_cost_row(cost);
    if (!optimize(max_iters, iters, /*allow_artificial_entering=*/true)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return -cost_row_.back();  // cost row stores -objective in rhs slot
  }

  // Pivot any artificial variables still basic (at zero) out of the basis
  // when a structural/slack column with a nonzero coefficient exists.
  void expel_artificials() {
    for (std::size_t r = 0; r < num_rows(); ++r) {
      if (!is_artificial(basis_[r])) continue;
      for (std::size_t j = 0; j < artificial_base_; ++j) {
        if (std::abs(rows_[r][j]) > tol_) {
          pivot(r, j);
          break;
        }
      }
      // If no pivot column exists the row is redundant (all-zero over real
      // columns); the artificial stays basic at value 0, which is harmless
      // as long as artificials never re-enter.
    }
  }

  // Phase 2: minimize the real objective. Returns false on unbounded.
  enum class Phase2Result { Optimal, Unbounded, IterationLimit };
  Phase2Result run_phase2(const std::vector<double>& objective,
                          std::size_t max_iters, std::size_t& iters) {
    std::vector<double> cost(num_cols_, 0.0);
    std::copy(objective.begin(), objective.end(), cost.begin());
    build_cost_row(cost);
    if (!optimize(max_iters, iters, /*allow_artificial_entering=*/false)) {
      return unbounded_ ? Phase2Result::Unbounded : Phase2Result::IterationLimit;
    }
    return Phase2Result::Optimal;
  }

  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(num_structural_, 0.0);
    for (std::size_t r = 0; r < num_rows(); ++r) {
      if (basis_[r] < num_structural_) {
        x[basis_[r]] = rows_[r].back();
      }
    }
    return x;
  }

 private:
  // Compute reduced costs for the given cost vector under the current basis.
  void build_cost_row(const std::vector<double>& cost) {
    cost_row_.assign(num_cols_ + 1, 0.0);
    std::copy(cost.begin(), cost.end(), cost_row_.begin());
    for (std::size_t r = 0; r < num_rows(); ++r) {
      const double cb = cost[basis_[r]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        cost_row_[j] -= cb * rows_[r][j];
      }
    }
  }

  // Bland's rule simplex loop. Returns true on optimal; on false, check
  // `unbounded_` to distinguish unboundedness from the iteration limit.
  bool optimize(std::size_t max_iters, std::size_t& iters,
                bool allow_artificial_entering) {
    unbounded_ = false;
    for (std::size_t it = 0; it < max_iters; ++it) {
      // Entering column: smallest index with reduced cost < -tol (Bland).
      std::size_t enter = SIZE_MAX;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (!allow_artificial_entering && is_artificial(j)) continue;
        if (cost_row_[j] < -tol_) {
          enter = j;
          break;
        }
      }
      if (enter == SIZE_MAX) {
        iters += it;
        return true;  // optimal
      }

      // Leaving row: minimum ratio, ties broken by smallest basic index.
      std::size_t leave = SIZE_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < num_rows(); ++r) {
        const double a = rows_[r][enter];
        if (a > tol_) {
          const double ratio = rows_[r].back() / a;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               (leave == SIZE_MAX || basis_[r] < basis_[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == SIZE_MAX) {
        unbounded_ = true;
        iters += it;
        return false;
      }
      pivot(leave, enter);
    }
    iters += max_iters;
    return false;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = rows_[row][col];
    for (double& v : rows_[row]) v /= p;
    for (std::size_t r = 0; r < num_rows(); ++r) {
      if (r == row) continue;
      const double factor = rows_[r][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        rows_[r][j] -= factor * rows_[row][j];
      }
      rows_[r][col] = 0.0;  // clamp numerical residue
    }
    const double cf = cost_row_[col];
    if (cf != 0.0) {
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        cost_row_[j] -= cf * rows_[row][j];
      }
      cost_row_[col] = 0.0;
    }
    basis_[row] = col;
  }

  std::vector<std::vector<double>> rows_;
  std::vector<double> cost_row_;
  std::vector<std::size_t> basis_;
  std::size_t num_structural_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t artificial_base_ = 0;
  std::size_t num_artificial_ = 0;
  double tol_ = 1e-9;
  bool unbounded_ = false;
};

}  // namespace

Solution solve(const Problem& problem, const Options& options) {
  for (const double c : problem.objective) {
    MCSS_ENSURE(std::isfinite(c), "non-finite objective coefficient");
  }
  for (const auto& con : problem.constraints) {
    MCSS_ENSURE(std::isfinite(con.rhs), "non-finite constraint rhs");
  }

  Solution sol;
  const std::size_t n = problem.objective.size();
  const std::size_t m = problem.constraints.size();
  std::size_t max_iters = options.max_iterations;
  if (max_iters == 0) {
    // Bland's rule terminates finitely; this is a generous safety valve.
    max_iters = 200 * (n + m + 10) * (n + m + 10);
  }

  // Internally always minimize; flip the sign for maximization.
  std::vector<double> objective = problem.objective;
  if (problem.sense == Sense::Maximize) {
    for (double& c : objective) c = -c;
  }

  Tableau tableau(problem, options.tolerance);

  if (tableau.has_artificials()) {
    const double infeas = tableau.run_phase1(max_iters, sol.iterations);
    if (std::isnan(infeas)) {
      sol.status = Status::IterationLimit;
      return sol;
    }
    // Scale feasibility tolerance mildly with problem size.
    if (infeas > options.tolerance * static_cast<double>(1 + n + m) * 100) {
      sol.status = Status::Infeasible;
      return sol;
    }
    tableau.expel_artificials();
  }

  switch (tableau.run_phase2(objective, max_iters, sol.iterations)) {
    case Tableau::Phase2Result::Unbounded:
      sol.status = Status::Unbounded;
      return sol;
    case Tableau::Phase2Result::IterationLimit:
      sol.status = Status::IterationLimit;
      return sol;
    case Tableau::Phase2Result::Optimal:
      break;
  }

  sol.status = Status::Optimal;
  sol.x = tableau.extract_solution();
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j) value += problem.objective[j] * sol.x[j];
  sol.objective = value;
  return sol;
}

}  // namespace mcss::lp
