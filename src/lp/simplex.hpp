// Dense two-phase primal simplex.
//
// Solves  min/max c^T x  subject to  A x {<=,=,>=} b,  x >= 0.
//
// This is the solver behind the paper's Section IV-B and IV-D share
// schedule programs (optimize privacy/loss/delay for given kappa and mu,
// optionally constrained to the maximum achievable rate). Those programs
// are small — for n = 5 channels the IV-D program has 80 variables and 7
// rows — so a dense tableau with Bland's anti-cycling rule is simple,
// exact enough, and fast. No external LP library is used.
#pragma once

#include <cstddef>
#include <vector>

namespace mcss::lp {

enum class Relation { LessEqual, Equal, GreaterEqual };
enum class Sense { Minimize, Maximize };

enum class Status {
  Optimal,         ///< solution found
  Infeasible,      ///< constraint set is empty
  Unbounded,       ///< objective unbounded in the feasible direction
  IterationLimit,  ///< safety valve tripped (pathological input)
};

/// One linear constraint: coeffs . x  rel  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::Equal;
  double rhs = 0.0;
};

/// A complete LP. All variables are implicitly nonnegative; constraints
/// shorter than `objective` are zero-padded.
struct Problem {
  Sense sense = Sense::Minimize;
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  /// Convenience builders.
  Problem& add(std::vector<double> coeffs, Relation rel, double rhs) {
    constraints.push_back({std::move(coeffs), rel, rhs});
    return *this;
  }
};

struct Options {
  double tolerance = 1e-9;
  /// 0 means "choose automatically" (a generous polynomial in problem size).
  std::size_t max_iterations = 0;
};

struct Solution {
  Status status = Status::Infeasible;
  std::vector<double> x;       ///< primal values (empty unless Optimal)
  double objective = 0.0;      ///< objective value in the problem's sense
  std::size_t iterations = 0;  ///< total pivots across both phases
};

/// Solve the given problem. Never throws on solver-level outcomes — they
/// are reported via Status — but throws PreconditionError on malformed
/// input (e.g. a constraint longer than the objective, or non-finite
/// coefficients).
[[nodiscard]] Solution solve(const Problem& problem, const Options& options = {});

}  // namespace mcss::lp
