// GF(2^16) arithmetic.
//
// The byte field caps Shamir at 255 shares; GF(2^16) lifts that to
// 65535, for deployments with very large channel counts (e.g. share
// distribution across a CDN-scale fan-out) and for 16-bit symbols.
// Construction: GF(2)[x] modulo the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B), with log/antilog tables built
// once at startup (the 65535-entry loop is too large for constexpr
// evaluation; an internal invariant verifies the generator's order at
// initialization).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mcss::gf16 {

using Elem16 = std::uint16_t;

/// a + b (== a - b).
[[nodiscard]] Elem16 add(Elem16 a, Elem16 b) noexcept;
/// a * b.
[[nodiscard]] Elem16 mul(Elem16 a, Elem16 b) noexcept;
/// Multiplicative inverse; throws PreconditionError for 0.
[[nodiscard]] Elem16 inv(Elem16 a);
/// a / b; throws PreconditionError when b == 0.
[[nodiscard]] Elem16 div(Elem16 a, Elem16 b);
/// a^e, 0^0 = 1.
[[nodiscard]] Elem16 pow(Elem16 a, unsigned e) noexcept;

/// Horner evaluation, constant term first.
[[nodiscard]] Elem16 poly_eval(std::span<const Elem16> coeffs, Elem16 x) noexcept;

/// Region axpy: dst[i] ^= scalar * src[i] for i in [0, n).
///
/// The 2^16 field is too large for the 256x256-row tables the byte
/// field uses (a full product table would be 8 GiB), so this hoists
/// log(scalar) out of the loop and runs a branch-free masked
/// exp[log(src)+log(scalar)] stream — still one pass per slice, which
/// is what the slice-major sharer needs. dst == src allowed.
void mul_acc_buf(Elem16* dst, const Elem16* src, Elem16 scalar,
                 std::size_t n) noexcept;

/// Lagrange basis weights at x = 0 for distinct nonzero abscissae.
[[nodiscard]] std::vector<Elem16> lagrange_weights_at_zero(
    std::span<const Elem16> xs);
/// Interpolate the constant term through the given points.
[[nodiscard]] Elem16 lagrange_at_zero(std::span<const Elem16> xs,
                                      std::span<const Elem16> ys);

}  // namespace mcss::gf16
