// GF(2^16) arithmetic.
//
// The byte field caps Shamir at 255 shares; GF(2^16) lifts that to
// 65535, for deployments with very large channel counts (e.g. share
// distribution across a CDN-scale fan-out) and for 16-bit symbols.
// Construction: GF(2)[x] modulo the primitive polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B), with log/antilog tables built
// once at startup (the 65535-entry loop is too large for constexpr
// evaluation; an internal invariant verifies the generator's order at
// initialization).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mcss::gf16 {

using Elem16 = std::uint16_t;

/// a + b (== a - b).
[[nodiscard]] Elem16 add(Elem16 a, Elem16 b) noexcept;
/// a * b.
[[nodiscard]] Elem16 mul(Elem16 a, Elem16 b) noexcept;
/// Multiplicative inverse; throws PreconditionError for 0.
[[nodiscard]] Elem16 inv(Elem16 a);
/// a / b; throws PreconditionError when b == 0.
[[nodiscard]] Elem16 div(Elem16 a, Elem16 b);
/// a^e, 0^0 = 1.
[[nodiscard]] Elem16 pow(Elem16 a, unsigned e) noexcept;

/// Horner evaluation, constant term first.
[[nodiscard]] Elem16 poly_eval(std::span<const Elem16> coeffs, Elem16 x) noexcept;

/// Lagrange basis weights at x = 0 for distinct nonzero abscissae.
[[nodiscard]] std::vector<Elem16> lagrange_weights_at_zero(
    std::span<const Elem16> xs);
/// Interpolate the constant term through the given points.
[[nodiscard]] Elem16 lagrange_at_zero(std::span<const Elem16> xs,
                                      std::span<const Elem16> ys);

}  // namespace mcss::gf16
