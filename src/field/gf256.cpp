#include "field/gf256.hpp"

namespace mcss::gf {

Elem poly_eval(std::span<const Elem> coeffs, Elem x) noexcept {
  Elem acc = 0;
  for (std::size_t i = coeffs.size(); i > 0; --i) {
    acc = add(mul(acc, x), coeffs[i - 1]);
  }
  return acc;
}

namespace {

void check_abscissae(std::span<const Elem> xs) {
  MCSS_ENSURE(!xs.empty(), "at least one point is required");
  MCSS_ENSURE(xs.size() <= 255, "GF(256) admits at most 255 nonzero abscissae");
  bool seen[256] = {};
  for (const Elem x : xs) {
    MCSS_ENSURE(x != 0, "abscissa 0 is reserved for the secret");
    MCSS_ENSURE(!seen[x], "duplicate abscissa");
    seen[x] = true;
  }
}

}  // namespace

void lagrange_weights_at_zero(std::span<const Elem> xs, std::span<Elem> out) {
  check_abscissae(xs);
  MCSS_ENSURE(out.size() >= xs.size(), "weight output span too small");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // weight_i = prod_{j != i} x_j / (x_j - x_i); subtraction is XOR.
    Elem num = 1;
    Elem den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = mul(num, xs[j]);
      den = mul(den, add(xs[j], xs[i]));
    }
    out[i] = div(num, den);
  }
}

Elem lagrange_at_zero(std::span<const Elem> xs, std::span<const Elem> ys) {
  MCSS_ENSURE(xs.size() == ys.size(), "point count mismatch");
  std::array<Elem, 255> weights{};
  lagrange_weights_at_zero(xs, weights);
  Elem acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = add(acc, mul(weights[i], ys[i]));
  }
  return acc;
}

}  // namespace mcss::gf
