#include "field/gf256.hpp"

namespace mcss::gf {

Elem poly_eval(std::span<const Elem> coeffs, Elem x) noexcept {
  Elem acc = 0;
  for (std::size_t i = coeffs.size(); i > 0; --i) {
    acc = add(mul(acc, x), coeffs[i - 1]);
  }
  return acc;
}

namespace {

void check_abscissae(std::span<const Elem> xs) {
  MCSS_ENSURE(!xs.empty(), "at least one point is required");
  MCSS_ENSURE(xs.size() <= 255, "GF(256) admits at most 255 nonzero abscissae");
  bool seen[256] = {};
  for (const Elem x : xs) {
    MCSS_ENSURE(x != 0, "abscissa 0 is reserved for the secret");
    MCSS_ENSURE(!seen[x], "duplicate abscissa");
    seen[x] = true;
  }
}

}  // namespace

std::array<Elem, 255> lagrange_weights_at_zero(std::span<const Elem> xs) {
  check_abscissae(xs);
  std::array<Elem, 255> weights{};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // weight_i = prod_{j != i} x_j / (x_j - x_i); subtraction is XOR.
    Elem num = 1;
    Elem den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = mul(num, xs[j]);
      den = mul(den, add(xs[j], xs[i]));
    }
    weights[i] = div(num, den);
  }
  return weights;
}

Elem lagrange_at_zero(std::span<const Elem> xs, std::span<const Elem> ys) {
  MCSS_ENSURE(xs.size() == ys.size(), "point count mismatch");
  const auto weights = lagrange_weights_at_zero(xs);
  Elem acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = add(acc, mul(weights[i], ys[i]));
  }
  return acc;
}

}  // namespace mcss::gf
