#include "field/gf256_bulk.hpp"

#include <array>
#include <cstdint>
#include <cstring>

#include "util/ensure.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MCSS_GF_BULK_X86 1
#include <immintrin.h>
#endif

namespace mcss::gf::bulk {

namespace {

// full[s] is the 256-byte product row of s; nib[s] packs the two PSHUFB
// lookup tables for s — 16 low-nibble products followed by 16 high-nibble
// products — so one aligned 32-byte load feeds the SIMD kernels.
struct MulTables {
  std::array<std::array<Elem, 256>, 256> full{};
  alignas(32) std::array<std::array<Elem, 32>, 256> nib{};
};

constexpr MulTables build_mul_tables() {
  MulTables t{};
  for (int s = 0; s < 256; ++s) {
    auto& row = t.full[static_cast<std::size_t>(s)];
    for (int b = 0; b < 256; ++b) {
      row[static_cast<std::size_t>(b)] =
          mul(static_cast<Elem>(s), static_cast<Elem>(b));
    }
    auto& nib = t.nib[static_cast<std::size_t>(s)];
    for (int i = 0; i < 16; ++i) {
      nib[static_cast<std::size_t>(i)] = row[static_cast<std::size_t>(i)];
      nib[static_cast<std::size_t>(i) + 16] =
          row[static_cast<std::size_t>(i << 4)];
    }
  }
  return t;
}

constexpr MulTables tables = build_mul_tables();

// ------------------------------------------------------------- portable

void mul_buf_portable(Elem* dst, const Elem* src, Elem scalar,
                      std::size_t n) noexcept {
  const Elem* row = tables.full[scalar].data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    dst[i + 0] = row[src[i + 0]];
    dst[i + 1] = row[src[i + 1]];
    dst[i + 2] = row[src[i + 2]];
    dst[i + 3] = row[src[i + 3]];
    dst[i + 4] = row[src[i + 4]];
    dst[i + 5] = row[src[i + 5]];
    dst[i + 6] = row[src[i + 6]];
    dst[i + 7] = row[src[i + 7]];
  }
  for (; i < n; ++i) dst[i] = row[src[i]];
}

void mul_acc_buf_portable(Elem* dst, const Elem* src, Elem scalar,
                          std::size_t n) noexcept {
  const Elem* row = tables.full[scalar].data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    dst[i + 0] ^= row[src[i + 0]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
    dst[i + 4] ^= row[src[i + 4]];
    dst[i + 5] ^= row[src[i + 5]];
    dst[i + 6] ^= row[src[i + 6]];
    dst[i + 7] ^= row[src[i + 7]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

// ----------------------------------------------------------------- simd

#ifdef MCSS_GF_BULK_X86

__attribute__((target("ssse3"))) void mul_buf_ssse3(Elem* dst, const Elem* src,
                                                    Elem scalar,
                                                    std::size_t n) noexcept {
  const Elem* nib = tables.nib[scalar].data();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(l, h));
  }
  const Elem* row = tables.full[scalar].data();
  for (; i < n; ++i) dst[i] = row[src[i]];
}

__attribute__((target("ssse3"))) void mul_acc_buf_ssse3(
    Elem* dst, const Elem* src, Elem scalar, std::size_t n) noexcept {
  const Elem* nib = tables.nib[scalar].data();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(l, h)));
  }
  const Elem* row = tables.full[scalar].data();
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void mul_buf_avx2(Elem* dst, const Elem* src,
                                                  Elem scalar,
                                                  std::size_t n) noexcept {
  const Elem* nib = tables.nib[scalar].data();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    const __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(l, h));
  }
  const Elem* row = tables.full[scalar].data();
  for (; i < n; ++i) dst[i] = row[src[i]];
}

__attribute__((target("avx2"))) void mul_acc_buf_avx2(Elem* dst,
                                                      const Elem* src,
                                                      Elem scalar,
                                                      std::size_t n) noexcept {
  const Elem* nib = tables.nib[scalar].data();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    const __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(l, h)));
  }
  const Elem* row = tables.full[scalar].data();
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

#endif  // MCSS_GF_BULK_X86

Kernel detect_kernel() noexcept {
#ifdef MCSS_GF_BULK_X86
  if (__builtin_cpu_supports("avx2")) return Kernel::Avx2;
  if (__builtin_cpu_supports("ssse3")) return Kernel::Ssse3;
#endif
  return Kernel::Portable;
}

using KernelFn = void (*)(Elem*, const Elem*, Elem, std::size_t) noexcept;

struct Dispatch {
  Kernel kernel = Kernel::Portable;
  KernelFn mul = &mul_buf_portable;
  KernelFn mul_acc = &mul_acc_buf_portable;
};

Dispatch make_dispatch() noexcept {
  Dispatch d;
  d.kernel = detect_kernel();
#ifdef MCSS_GF_BULK_X86
  switch (d.kernel) {
    case Kernel::Avx2:
      d.mul = &mul_buf_avx2;
      d.mul_acc = &mul_acc_buf_avx2;
      break;
    case Kernel::Ssse3:
      d.mul = &mul_buf_ssse3;
      d.mul_acc = &mul_acc_buf_ssse3;
      break;
    case Kernel::Portable:
      break;
  }
#endif
  return d;
}

const Dispatch dispatch = make_dispatch();

KernelFn forced_fn(Kernel k, bool acc) {
  MCSS_ENSURE(kernel_supported(k), "requested GF(256) kernel not supported on this host");
  switch (k) {
#ifdef MCSS_GF_BULK_X86
    case Kernel::Avx2:
      return acc ? &mul_acc_buf_avx2 : &mul_buf_avx2;
    case Kernel::Ssse3:
      return acc ? &mul_acc_buf_ssse3 : &mul_buf_ssse3;
#else
    case Kernel::Avx2:
    case Kernel::Ssse3:
#endif
    case Kernel::Portable:
    default:
      return acc ? &mul_acc_buf_portable : &mul_buf_portable;
  }
}

}  // namespace

const char* kernel_name(Kernel k) noexcept {
  switch (k) {
    case Kernel::Avx2:
      return "avx2";
    case Kernel::Ssse3:
      return "ssse3";
    case Kernel::Portable:
    default:
      return "portable";
  }
}

Kernel active_kernel() noexcept { return dispatch.kernel; }

bool kernel_supported(Kernel k) noexcept {
  if (k == Kernel::Portable) return true;
#ifdef MCSS_GF_BULK_X86
  if (k == Kernel::Avx2) return __builtin_cpu_supports("avx2") != 0;
  if (k == Kernel::Ssse3) return __builtin_cpu_supports("ssse3") != 0;
#endif
  return false;
}

void mul_buf(Elem* dst, const Elem* src, Elem scalar, std::size_t n) noexcept {
  if (scalar == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (scalar == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  dispatch.mul(dst, src, scalar, n);
}

void mul_acc_buf(Elem* dst, const Elem* src, Elem scalar,
                 std::size_t n) noexcept {
  if (scalar == 0) return;
  if (scalar == 1) {
    xor_buf(dst, src, n);
    return;
  }
  dispatch.mul_acc(dst, src, scalar, n);
}

void xor_buf(Elem* dst, const Elem* src, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_buf(Kernel k, Elem* dst, const Elem* src, Elem scalar,
             std::size_t n) {
  forced_fn(k, false)(dst, src, scalar, n);
}

void mul_acc_buf(Kernel k, Elem* dst, const Elem* src, Elem scalar,
                 std::size_t n) {
  forced_fn(k, true)(dst, src, scalar, n);
}

std::span<const Elem, 256> mul_row(Elem scalar) noexcept {
  return std::span<const Elem, 256>(tables.full[scalar]);
}

}  // namespace mcss::gf::bulk
