// GF(2^8) arithmetic.
//
// The Galois field with 256 elements, constructed as GF(2)[x] modulo the
// AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B). Addition is XOR;
// multiplication and inversion go through compile-time log/antilog tables
// indexed by powers of the generator 0x03. This is the field under
// byte-wise Shamir secret sharing: each byte of a secret is shared
// independently, with share indices x = 1..255 as evaluation points.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/ensure.hpp"

namespace mcss::gf {

/// Field element; plain byte so spans of secrets/shares need no conversion.
using Elem = std::uint8_t;

namespace detail {

struct Tables {
  // exp_ is doubled so mul can index log[a]+log[b] without a mod-255.
  std::array<Elem, 510> exp_{};
  std::array<std::uint16_t, 256> log_{};
};

constexpr Tables build_tables() {
  Tables t{};
  std::uint16_t value = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp_[static_cast<std::size_t>(i)] = static_cast<Elem>(value);
    t.exp_[static_cast<std::size_t>(i) + 255] = static_cast<Elem>(value);
    t.log_[value] = static_cast<std::uint16_t>(i);
    // Multiply by the generator 0x03 = x + 1: value*2 ^ value, reduced.
    std::uint16_t doubled = static_cast<std::uint16_t>(value << 1);
    if (doubled & 0x100) doubled ^= 0x11B;
    value = static_cast<std::uint16_t>(doubled ^ value);
  }
  t.log_[0] = 0;  // log(0) is undefined; mul() guards the zero cases.
  return t;
}

inline constexpr Tables tables = build_tables();

}  // namespace detail

/// a + b (== a - b) in GF(2^8).
[[nodiscard]] constexpr Elem add(Elem a, Elem b) noexcept {
  return static_cast<Elem>(a ^ b);
}

/// a * b in GF(2^8).
[[nodiscard]] constexpr Elem mul(Elem a, Elem b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::tables.exp_[static_cast<std::size_t>(detail::tables.log_[a]) +
                             detail::tables.log_[b]];
}

/// Multiplicative inverse; throws PreconditionError for 0.
[[nodiscard]] constexpr Elem inv(Elem a) {
  MCSS_ENSURE(a != 0, "0 has no multiplicative inverse in GF(256)");
  return detail::tables.exp_[255 - detail::tables.log_[a]];
}

/// a / b; throws PreconditionError when b == 0.
[[nodiscard]] constexpr Elem div(Elem a, Elem b) {
  MCSS_ENSURE(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  return detail::tables.exp_[static_cast<std::size_t>(detail::tables.log_[a]) + 255 -
                             detail::tables.log_[b]];
}

/// a^e with e >= 0 (0^0 defined as 1).
[[nodiscard]] constexpr Elem pow(Elem a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto le = static_cast<std::uint32_t>(detail::tables.log_[a]) * e % 255u;
  return detail::tables.exp_[le];
}

/// Evaluate the polynomial with the given coefficients (constant term
/// first: c[0] + c[1] x + ... + c[n-1] x^{n-1}) at x, via Horner's rule.
[[nodiscard]] Elem poly_eval(std::span<const Elem> coeffs, Elem x) noexcept;

/// Lagrange interpolation at x = 0.
///
/// Given k distinct abscissae xs and matching ordinates ys, returns the
/// value at 0 of the unique degree-(k-1) polynomial through the points —
/// exactly the Shamir reconstruction step. Throws PreconditionError on
/// size mismatch, empty input, duplicate abscissae, or a zero abscissa
/// (0 is reserved for the secret itself).
[[nodiscard]] Elem lagrange_at_zero(std::span<const Elem> xs,
                                    std::span<const Elem> ys);

/// Lagrange basis weights at x = 0: out[i] such that
/// secret = sum_i out[i] * y_i for any ordinates on the same abscissae.
/// Lets callers reconstruct many byte positions with one weight setup.
/// Writes exactly xs.size() weights into `out` (which must be at least
/// that large); taking an output span avoids the fixed 255-byte
/// by-value array the old interface copied on every reconstruct.
void lagrange_weights_at_zero(std::span<const Elem> xs, std::span<Elem> out);

}  // namespace mcss::gf
