#include "field/gf_linalg.hpp"

#include "field/gf256_bulk.hpp"
#include "util/ensure.hpp"

namespace mcss::gf {

namespace {

/// Reduce `m` (augmented with `rhs` when non-null) to row-echelon form in
/// place; returns the rank over the first `pivot_cols` columns (pivots are
/// never chosen beyond that bound — essential when `m` is an [A | I]
/// augmentation and only A's rank matters). Partial pivoting is
/// unnecessary over a finite field — any nonzero pivot is exact.
std::size_t eliminate(Matrix& m, std::vector<Elem>* rhs,
                      std::size_t pivot_cols) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < pivot_cols && pivot_row < rows; ++col) {
    // Find a nonzero pivot in this column.
    std::size_t found = rows;
    for (std::size_t r = pivot_row; r < rows; ++r) {
      if (m.at(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows) continue;
    // Swap into place.
    if (found != pivot_row) {
      for (std::size_t c = 0; c < cols; ++c) {
        std::swap(m.at(found, c), m.at(pivot_row, c));
      }
      if (rhs != nullptr) std::swap((*rhs)[found], (*rhs)[pivot_row]);
    }
    // Normalize the pivot row (one region scale over the row suffix).
    const Elem inv_pivot = inv(m.at(pivot_row, col));
    Elem* pivot = &m.at(pivot_row, col);
    bulk::mul_buf(pivot, pivot, inv_pivot, cols - col);
    if (rhs != nullptr) {
      (*rhs)[pivot_row] = mul((*rhs)[pivot_row], inv_pivot);
    }
    // Clear the column everywhere else (one region axpy per row).
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row) continue;
      const Elem factor = m.at(r, col);
      if (factor == 0) continue;
      bulk::mul_acc_buf(&m.at(r, col), pivot, factor, cols - col);
      if (rhs != nullptr) {
        (*rhs)[r] = add((*rhs)[r], mul(factor, (*rhs)[pivot_row]));
      }
    }
    ++pivot_row;
  }
  return pivot_row;
}

}  // namespace

std::size_t rank(Matrix m) { return eliminate(m, nullptr, m.cols()); }

std::optional<std::vector<Elem>> solve(Matrix a, std::vector<Elem> b) {
  MCSS_ENSURE(a.rows() == a.cols(), "solve requires a square matrix");
  MCSS_ENSURE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();
  if (eliminate(a, &b, n) < n) return std::nullopt;  // singular
  // eliminate() produces reduced row-echelon form: b IS the solution.
  return b;
}

std::optional<Matrix> invert(const Matrix& a) {
  MCSS_ENSURE(a.rows() == a.cols(), "invert requires a square matrix");
  const std::size_t n = a.rows();
  // Augment [A | I] and reduce.
  Matrix aug(n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug.at(r, c) = a.at(r, c);
    aug.at(r, n + r) = 1;
  }
  if (eliminate(aug, nullptr, n) < n) return std::nullopt;
  Matrix result(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) result.at(r, c) = aug.at(r, n + c);
  }
  return result;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  MCSS_ENSURE(a.cols() == b.rows(), "dimension mismatch");
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Elem lhs = a.at(r, k);
      if (lhs == 0) continue;
      // out_row ^= lhs * b_row: a region axpy over the whole row.
      bulk::mul_acc_buf(out.row(r), b.row(k), lhs, b.cols());
    }
  }
  return out;
}

}  // namespace mcss::gf
