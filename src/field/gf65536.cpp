#include "field/gf65536.hpp"

#include <algorithm>
#include <array>
#include <memory>

#include "util/ensure.hpp"

namespace mcss::gf16 {

namespace {

struct Tables {
  // exp_ doubled so mul can index log[a] + log[b] without a modulus.
  std::array<Elem16, 131070> exp_;
  std::array<std::uint32_t, 65536> log_;

  Tables() {
    std::uint32_t value = 1;
    for (std::uint32_t i = 0; i < 65535; ++i) {
      exp_[i] = static_cast<Elem16>(value);
      exp_[i + 65535] = static_cast<Elem16>(value);
      log_[value] = i;
      value <<= 1;
      if (value & 0x10000) value ^= 0x1100B;
    }
    log_[0] = 0;  // log(0) undefined; mul() guards zero operands.
    // x is a generator iff its order is exactly 2^16 - 1: the multiply-by-x
    // walk must return to 1 only after the full cycle.
    MCSS_INVARIANT(value == 1, "0x1100B is not primitive (generator order wrong)");
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

Elem16 add(Elem16 a, Elem16 b) noexcept { return a ^ b; }

Elem16 mul(Elem16 a, Elem16 b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

Elem16 inv(Elem16 a) {
  MCSS_ENSURE(a != 0, "0 has no multiplicative inverse in GF(65536)");
  const Tables& t = tables();
  return t.exp_[65535 - t.log_[a]];
}

Elem16 div(Elem16 a, Elem16 b) {
  MCSS_ENSURE(b != 0, "division by zero in GF(65536)");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + 65535 - t.log_[b]];
}

Elem16 pow(Elem16 a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const auto le = static_cast<std::uint64_t>(t.log_[a]) * e % 65535u;
  return t.exp_[le];
}

Elem16 poly_eval(std::span<const Elem16> coeffs, Elem16 x) noexcept {
  Elem16 acc = 0;
  for (std::size_t i = coeffs.size(); i > 0; --i) {
    acc = add(mul(acc, x), coeffs[i - 1]);
  }
  return acc;
}

void mul_acc_buf(Elem16* dst, const Elem16* src, Elem16 scalar,
                 std::size_t n) noexcept {
  if (scalar == 0) return;
  const Tables& t = tables();
  const std::uint32_t ls = t.log_[scalar];
  for (std::size_t i = 0; i < n; ++i) {
    const Elem16 v = src[i];
    // log_[0] == 0 makes exp_[ls] a valid (wrong) read for v == 0; the
    // mask zeroes the contribution without a branch in the loop body.
    const auto mask = static_cast<Elem16>(-static_cast<Elem16>(v != 0));
    dst[i] ^= static_cast<Elem16>(t.exp_[ls + t.log_[v]] & mask);
  }
}

std::vector<Elem16> lagrange_weights_at_zero(std::span<const Elem16> xs) {
  MCSS_ENSURE(!xs.empty(), "at least one point is required");
  // Duplicate detection via sorted copy: xs can be up to 65535 long.
  {
    std::vector<Elem16> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      MCSS_ENSURE(sorted[i] != 0, "abscissa 0 is reserved for the secret");
      MCSS_ENSURE(i == 0 || sorted[i] != sorted[i - 1], "duplicate abscissa");
    }
  }
  std::vector<Elem16> weights(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    Elem16 num = 1;
    Elem16 den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = mul(num, xs[j]);
      den = mul(den, add(xs[j], xs[i]));
    }
    weights[i] = div(num, den);
  }
  return weights;
}

Elem16 lagrange_at_zero(std::span<const Elem16> xs, std::span<const Elem16> ys) {
  MCSS_ENSURE(xs.size() == ys.size(), "point count mismatch");
  const auto weights = lagrange_weights_at_zero(xs);
  Elem16 acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = add(acc, mul(weights[i], ys[i]));
  }
  return acc;
}

}  // namespace mcss::gf16
