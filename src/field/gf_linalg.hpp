// Linear algebra over GF(2^8).
//
// Gaussian elimination, rank, and linear solving in the byte field —
// the substrate for Blakley's hyperplane-intersection secret sharing
// (each reconstruction is a k x k solve) and generally useful for
// erasure-code style constructions.
#pragma once

#include <optional>
#include <vector>

#include "field/gf256.hpp"

namespace mcss::gf {

/// Dense row-major matrix over GF(2^8).
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] Elem& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Elem at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous row storage — rows are the unit the bulk GF(256)
  /// kernels stream over during elimination and multiply.
  [[nodiscard]] Elem* row(std::size_t r) noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const Elem* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Elem> data_;
};

/// Rank via Gaussian elimination (copy; the input is untouched).
[[nodiscard]] std::size_t rank(Matrix m);

/// Solve A x = b for square A. Returns nullopt when A is singular.
[[nodiscard]] std::optional<std::vector<Elem>> solve(Matrix a,
                                                     std::vector<Elem> b);

/// Inverse of a square matrix; nullopt when singular.
[[nodiscard]] std::optional<Matrix> invert(const Matrix& a);

/// A * B (dimensions must agree; throws otherwise).
[[nodiscard]] Matrix multiply(const Matrix& a, const Matrix& b);

}  // namespace mcss::gf
