// Bulk (region) arithmetic over GF(2^8).
//
// Shamir split/reconstruct, XOR sharing, and Gaussian elimination all
// reduce to two region primitives over byte buffers:
//
//   mul_buf:     dst[i]  = scalar * src[i]          (region scale)
//   mul_acc_buf: dst[i] ^= scalar * src[i]          (GF axpy)
//
// The scalar is constant across a whole buffer, so instead of the
// per-byte log/exp walk in gf::mul (two dependent loads plus a zero
// branch), each call grabs the 256-byte product row of a compile-time
// 256x256 multiplication table and streams through the buffer
// branch-free. On x86 a runtime-dispatched SSSE3/AVX2 path goes
// further: the row is split into two 16-entry nibble tables and each
// product becomes two PSHUFB lookups, 16 or 32 bytes per step — the
// standard erasure-coding region kernel (cf. gf-complete / ISA-L).
// Everything falls back to the portable blocked loop on other ISAs.
//
// All kernels are element-wise pure, so dst == src (in-place) is
// explicitly supported; partially overlapping buffers are not.
#pragma once

#include <cstddef>
#include <span>

#include "field/gf256.hpp"

namespace mcss::gf::bulk {

/// Kernel implementations, in increasing order of capability.
enum class Kernel {
  Portable,  ///< blocked 256-byte-row loop; always available
  Ssse3,     ///< 16 bytes/step via PSHUFB nibble tables
  Avx2,      ///< 32 bytes/step via VPSHUFB nibble tables
};

/// Human-readable kernel name ("portable", "ssse3", "avx2").
[[nodiscard]] const char* kernel_name(Kernel k) noexcept;

/// The kernel the auto-dispatched entry points resolved to on this host.
[[nodiscard]] Kernel active_kernel() noexcept;

/// Whether `k` can run on this host (Portable always can).
[[nodiscard]] bool kernel_supported(Kernel k) noexcept;

/// dst[i] = scalar * src[i] for i in [0, n). dst == src allowed.
void mul_buf(Elem* dst, const Elem* src, Elem scalar, std::size_t n) noexcept;

/// dst[i] ^= scalar * src[i] for i in [0, n). dst == src allowed.
void mul_acc_buf(Elem* dst, const Elem* src, Elem scalar,
                 std::size_t n) noexcept;

/// dst[i] ^= src[i] for i in [0, n) — the scalar == 1 axpy.
void xor_buf(Elem* dst, const Elem* src, std::size_t n) noexcept;

/// Forced-kernel variants for property tests and benchmarks; throw
/// PreconditionError when `k` is unsupported on this host. Unlike the
/// auto entry points these never shortcut scalar 0/1, so they exercise
/// the general table path for every scalar.
void mul_buf(Kernel k, Elem* dst, const Elem* src, Elem scalar,
             std::size_t n);
void mul_acc_buf(Kernel k, Elem* dst, const Elem* src, Elem scalar,
                 std::size_t n);

/// The 256-byte product row for `scalar`: row[b] == scalar * b.
[[nodiscard]] std::span<const Elem, 256> mul_row(Elem scalar) noexcept;

/// Span conveniences; sizes must match (dst may equal src).
inline void mul_buf(std::span<Elem> dst, std::span<const Elem> src,
                    Elem scalar) noexcept {
  mul_buf(dst.data(), src.data(), scalar, dst.size() < src.size()
                                              ? dst.size()
                                              : src.size());
}
inline void mul_acc_buf(std::span<Elem> dst, std::span<const Elem> src,
                        Elem scalar) noexcept {
  mul_acc_buf(dst.data(), src.data(), scalar,
              dst.size() < src.size() ? dst.size() : src.size());
}
inline void xor_buf(std::span<Elem> dst, std::span<const Elem> src) noexcept {
  xor_buf(dst.data(), src.data(),
          dst.size() < src.size() ? dst.size() : src.size());
}

}  // namespace mcss::gf::bulk
