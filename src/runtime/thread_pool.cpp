#include "runtime/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/ensure.hpp"

namespace mcss::runtime {

namespace {

thread_local bool t_on_worker = false;

std::atomic<unsigned> g_thread_override{0};  // 0 = not overridden

unsigned threads_from_environment() noexcept {
  const char* env = std::getenv("MCSS_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1 && parsed <= 4096) {
      return static_cast<unsigned>(parsed);
    }
    // Malformed values fall through to the hardware default rather than
    // silently serializing a sweep the user asked to parallelize.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace

unsigned configured_threads() noexcept {
  const unsigned override = g_thread_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  static const unsigned from_env = threads_from_environment();
  return from_env;
}

void set_threads(unsigned n) noexcept {
  g_thread_override.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads) {
  MCSS_ENSURE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MCSS_ENSURE(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::on_worker() noexcept { return t_on_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

}  // namespace mcss::runtime
