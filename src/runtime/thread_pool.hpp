// Deterministic parallel execution substrate.
//
// The evaluation sweeps (Figs. 3-7, the ablations, the planner's
// (kappa, mu) grid search) are hundreds of fully independent
// deterministic simulations: every point owns its own net::Simulator
// and seeded Rng, so points may run concurrently without sharing any
// mutable state. This layer provides the minimal machinery for that:
// a fixed-size FIFO thread pool (no work stealing — tasks are grabbed
// from a single queue, results are committed in index order by the
// caller), so sweep output is bitwise identical to the sequential run
// regardless of thread count.
//
// Parallelism is selected by the MCSS_THREADS environment variable
// (or set_threads()); MCSS_THREADS=1 is the exact legacy path — no
// pool is created and everything runs inline on the calling thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcss::runtime {

/// Worker-thread count used by the parallel helpers: the set_threads()
/// override if any, else the MCSS_THREADS environment variable, else
/// std::thread::hardware_concurrency(). Always >= 1. The environment is
/// read once and cached.
[[nodiscard]] unsigned configured_threads() noexcept;

/// Programmatic override of MCSS_THREADS (tests, --threads flags).
/// Call before the first parallel helper use to also size the shared
/// pool; later calls still select the inline path when n == 1.
void set_threads(unsigned n) noexcept;

/// Fixed-size thread pool with a single FIFO task queue. Destruction
/// drains the queue and joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; some worker runs it eventually.
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when the calling thread is a pool worker (any pool). The
  /// parallel helpers use this to run nested parallelism inline instead
  /// of deadlocking on their own pool.
  [[nodiscard]] static bool on_worker() noexcept;

  /// Process-wide pool, created lazily on first use and sized by
  /// configured_threads() at that moment. Never touched (and never
  /// created) when configured_threads() == 1.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mcss::runtime
