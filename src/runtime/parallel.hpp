// Deterministic parallel-for with ordered result collection.
//
// for_each_ordered(count, compute, commit) evaluates compute(i) for
// every i in [0, count) concurrently on the shared pool, while the
// calling thread invokes commit(i, result) strictly in index order,
// streaming: index i is committed as soon as BOTH compute(i) has
// finished and every j < i has been committed. Because commits are
// serialized on the caller in a fixed order, anything commit does
// (printing a table row, folding into an accumulator, appending to a
// JSON-lines file) produces output bitwise identical to the sequential
// run, for any thread count.
//
// compute must be safe to call concurrently from several threads for
// distinct indices (sweep points owning their own Simulator/Rng are);
// commit is only ever called from the calling thread. Exceptions from
// either cancel the remaining work and are rethrown to the caller.
//
// When configured_threads() == 1, when there is at most one index, or
// when already running on a pool worker (nested parallelism), both
// helpers degrade to a plain sequential loop on the calling thread —
// the exact legacy path, no pool, no synchronization.
//
// Observability: on the parallel path each pump captures the metric
// deltas its compute(i) accumulated in the worker's thread-local shard
// (obs::Registry::take_local) and the caller merges them in index order
// right before commit(i). The sequential path performs the SAME
// per-index capture+merge at the outermost loop level, so the registry
// reduces per point in index order on both paths — registry contents
// (including order-sensitive double sums, where floating-point
// addition is not associative) are bitwise identical for any
// MCSS_THREADS value. Nested loops (inside a compute) skip the capture;
// their deltas fold into the enclosing point's shard in stream order,
// again identically on both paths. Metrics recorded by commit itself
// stay in the caller's live shard and only reach the committed state at
// the next snapshot, so commit-side recording carries no ordering
// guarantee. With no metrics recorded the captured shards are empty and
// the capture is a few moves per index.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace mcss::runtime {

namespace detail {
/// Depth of for_each_ordered frames on this thread; the sequential path
/// captures metric shards only at depth 1 (the outermost sweep level),
/// mirroring the parallel path where only pumps capture.
inline thread_local unsigned sweep_depth = 0;

struct SweepDepthGuard {
  SweepDepthGuard() { ++sweep_depth; }
  ~SweepDepthGuard() { --sweep_depth; }
  SweepDepthGuard(const SweepDepthGuard&) = delete;
  SweepDepthGuard& operator=(const SweepDepthGuard&) = delete;
};
}  // namespace detail

template <typename ComputeFn, typename CommitFn>
void for_each_ordered(std::size_t count, ComputeFn&& compute,
                      CommitFn&& commit) {
  using T = std::decay_t<std::invoke_result_t<ComputeFn&, std::size_t>>;

  const unsigned threads = configured_threads();
  if (threads <= 1 || count <= 1 || ThreadPool::on_worker()) {
    // On a pool worker this is a nested loop: the enclosing pump owns
    // the shard capture, so never capture here.
    const bool capture = !ThreadPool::on_worker();
    for (std::size_t i = 0; i < count; ++i) {
      T value = [&] {
        detail::SweepDepthGuard depth;
        return compute(i);
      }();
      if (capture && detail::sweep_depth == 0) {
        auto& registry = obs::Registry::global();
        registry.merge(registry.take_local());
      }
      commit(i, std::move(value));
    }
    return;
  }

  struct Slot {
    T value;
    obs::MetricShard metrics;
  };
  struct State {
    std::mutex mutex;
    std::condition_variable progress;
    std::vector<std::optional<Slot>> results;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::size_t pumps_running = 0;
    std::exception_ptr error;
  };
  State state;
  state.results.resize(count);

  // Each pump task claims indices from the shared counter until they run
  // out; index-claim order varies run to run but lands each result in
  // its own slot, so ordering is restored at commit time.
  const auto pump = [&state, &compute, count] {
    for (;;) {
      if (state.cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        // The worker's shard is empty on entry (drained after the
        // previous claim), so what take_local() returns is exactly the
        // deltas compute(i) produced.
        Slot result{compute(i), obs::Registry::global().take_local()};
        std::lock_guard<std::mutex> lock(state.mutex);
        state.results[i].emplace(std::move(result));
        state.progress.notify_all();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
        state.cancelled.store(true, std::memory_order_relaxed);
        state.progress.notify_all();
      }
    }
    std::lock_guard<std::mutex> lock(state.mutex);
    --state.pumps_running;
    state.progress.notify_all();
  };

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t pumps =
      std::min<std::size_t>(std::min<std::size_t>(threads, pool.size()), count);
  state.pumps_running = pumps;
  for (std::size_t p = 0; p < pumps; ++p) pool.submit(pump);

  std::unique_lock<std::mutex> lock(state.mutex);
  for (std::size_t i = 0; i < count; ++i) {
    state.progress.wait(
        lock, [&] { return state.error || state.results[i].has_value(); });
    if (state.error) break;
    Slot slot = std::move(*state.results[i]);
    state.results[i].reset();
    lock.unlock();
    // Merge index i's metric deltas before any j > i: registry state
    // evolves in index order, matching the sequential run exactly.
    obs::Registry::global().merge(slot.metrics);
    try {
      commit(i, std::move(slot.value));
    } catch (...) {
      lock.lock();
      if (!state.error) state.error = std::current_exception();
      state.cancelled.store(true, std::memory_order_relaxed);
      break;
    }
    lock.lock();
  }
  // Drain the pumps before the stack frame (state, compute) goes away.
  state.cancelled.store(true, std::memory_order_relaxed);
  state.progress.wait(lock, [&] { return state.pumps_running == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

/// body(i) for every i in [0, count), concurrently; blocks until all
/// have run. body must tolerate concurrent invocation for distinct i.
template <typename Body>
void parallel_for_indexed(std::size_t count, Body&& body) {
  for_each_ordered(
      count,
      [&body](std::size_t i) {
        body(i);
        return 0;
      },
      [](std::size_t, int) {});
}

}  // namespace mcss::runtime
