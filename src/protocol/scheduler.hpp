// Share schedulers: who decides (k, M) for each outgoing packet.
//
// The paper evaluates ReMICSS's *dynamic share schedule* — "instead of
// deciding M ahead of time, the sender chooses the first m channels which
// are ready for writing" (Section V) — against the explicit schedules the
// model's linear programs produce. Both are implementations of the same
// interface, so the sender is policy-agnostic and the ablation benches
// can swap them freely:
//
//   DynamicScheduler       epoll-style: dithered (k, m), first m ready
//                          channels by least backlog (ReMICSS default)
//   StaticScheduler        samples an explicit ShareSchedule (e.g. the
//                          IV-D LP solution); waits until its chosen M is
//                          writable
//   FixedScheduler         constant (k, m = n): MICSS semantics (k = n)
//                          or courier-mode threshold schemes (k < n)
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "net/sim_time.hpp"
#include "protocol/dither.hpp"
#include "util/rng.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::proto {

/// Sender-visible state of one channel at decision time.
struct ChannelView {
  bool ready = false;          ///< epoll-style writability
  net::SimTime backlog = 0;    ///< time to drain what is already queued
};

/// The decision for one packet: threshold and the channel indices that
/// will each carry exactly one share (|channels| = m).
struct ShareDecision {
  int k = 1;
  std::vector<int> channels;
};

/// Strategy interface. next() may return nullopt, meaning "no acceptable
/// channel subset is writable — call again after a writability event".
/// Implementations must re-offer the SAME logical decision until it is
/// accepted, so that deferrals do not skew the (kappa, mu) averages.
class ShareScheduler {
 public:
  virtual ~ShareScheduler() = default;
  [[nodiscard]] virtual std::optional<ShareDecision> next(
      std::span<const ChannelView> channels) = 0;

  /// Publish any scheduler-internal stats into the registry (end-of-run
  /// hook; the default scheduler kinds have none).
  virtual void publish_metrics(obs::Registry& registry) const {
    (void)registry;
  }
};

/// ReMICSS dynamic schedule: (k, m) from error-diffusion dithering of
/// (kappa, mu); M = the m ready channels with the least backlog.
class DynamicScheduler final : public ShareScheduler {
 public:
  DynamicScheduler(double kappa, double mu, int num_channels);
  [[nodiscard]] std::optional<ShareDecision> next(
      std::span<const ChannelView> channels) override;

 private:
  KappaMuDither dither_;
  std::optional<KmPair> pending_;
};

struct StaticSchedulerStats {
  /// Parked decisions dropped to keep sampling when the pool was full of
  /// undispatchable entries. Each eviction slightly skews the realized
  /// schedule away from the target distribution, so it is surfaced.
  std::uint64_t parked_evicted = 0;
  /// Parked decisions that later became writable and were dispatched.
  std::uint64_t parked_dispatched = 0;
};

/// Add these totals into the registry under mcss_scheduler_* names.
void publish(obs::Registry& registry, const StaticSchedulerStats& stats);

/// Explicit schedule: samples (k, M) from a ShareSchedule. A sampled
/// decision whose M is not fully writable is parked in a small reorder
/// pool while later samples proceed (packets are independent symbols, so
/// reordering is harmless) — without this, one busy slow channel
/// head-of-line-blocks every other channel. When the pool fills with
/// decisions that never become dispatchable, the oldest is evicted
/// (counted in stats()) so sampling keeps going — a full pool must not
/// wedge the sender while other subsets are writable.
class StaticScheduler final : public ShareScheduler {
 public:
  /// `pool_limit` bounds how many sampled-but-blocked decisions may be
  /// parked, and how many fresh samples one next() call may draw.
  StaticScheduler(ShareSchedule schedule, Rng rng, std::size_t pool_limit = 32);
  [[nodiscard]] std::optional<ShareDecision> next(
      std::span<const ChannelView> channels) override;

  [[nodiscard]] const StaticSchedulerStats& stats() const noexcept {
    return stats_;
  }

  void publish_metrics(obs::Registry& registry) const override;

 private:
  ShareSchedule schedule_;
  Rng rng_;
  std::vector<ScheduleEntry> parked_;
  std::size_t pool_limit_;
  StaticSchedulerStats stats_;
};

/// Constant (k, m = n) over all channels; k = n gives MICSS semantics.
class FixedScheduler final : public ShareScheduler {
 public:
  FixedScheduler(int k, int num_channels);
  [[nodiscard]] std::optional<ShareDecision> next(
      std::span<const ChannelView> channels) override;

 private:
  int k_;
  int num_channels_;
};

}  // namespace mcss::proto
