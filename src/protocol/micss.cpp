#include "protocol/micss.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "protocol/wire.hpp"
#include "sss/xor_sharing.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {

namespace {
constexpr std::uint16_t kAckMagic = 0x414D;  // "MA"
constexpr std::size_t kAckSize = 12;
}  // namespace

std::vector<std::uint8_t> encode_ack(const AckFrame& ack) {
  MCSS_ENSURE(ack.share_index >= 1, "share index 0 is reserved");
  std::vector<std::uint8_t> out;
  out.reserve(kAckSize);
  out.push_back(static_cast<std::uint8_t>(kAckMagic & 0xFF));
  out.push_back(static_cast<std::uint8_t>(kAckMagic >> 8));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(ack.packet_id >> (8 * i)));
  }
  out.push_back(ack.share_index);
  out.push_back(0);  // pad to 12 bytes
  return out;
}

std::optional<AckFrame> decode_ack(std::span<const std::uint8_t> buf) {
  if (buf.size() != kAckSize) return std::nullopt;
  if ((buf[0] | (buf[1] << 8)) != kAckMagic) return std::nullopt;
  AckFrame ack;
  for (int i = 7; i >= 0; --i) {
    ack.packet_id = (ack.packet_id << 8) | buf[2 + static_cast<std::size_t>(i)];
  }
  ack.share_index = buf[10];
  if (ack.share_index == 0 || buf[11] != 0) return std::nullopt;
  return ack;
}

// ---------------------------------------------------------------- sender

MicssSender::MicssSender(net::Simulator& sim,
                         std::vector<net::SimChannel*> data_out,
                         std::vector<net::SimChannel*> ack_in, Rng rng,
                         MicssConfig config)
    : sim_(sim), data_out_(std::move(data_out)), rng_(rng), config_(config) {
  MCSS_ENSURE(!data_out_.empty(), "MICSS needs at least one channel");
  MCSS_ENSURE(ack_in.size() == data_out_.size(),
              "each data channel needs a matching ack channel");
  MCSS_ENSURE(config_.rto > 0, "RTO must be positive");
  MCSS_ENSURE(config_.window_packets > 0, "window must be positive");
  for (net::SimChannel* ch : ack_in) {
    MCSS_ENSURE(ch != nullptr, "null ack channel");
    ch->set_receiver([this](std::vector<std::uint8_t> f) {
      on_ack_frame(std::move(f));
    });
  }
}

bool MicssSender::send(std::vector<std::uint8_t> payload) {
  ++stats_.packets_offered;
  if (pending_.size() >= config_.window_packets) {
    ++stats_.packets_rejected;
    return false;
  }

  const std::uint64_t id = next_packet_id_++;
  const auto n = static_cast<int>(data_out_.size());
  const auto shares = sss::xor_split(payload, n, rng_);

  PendingPacket packet;
  packet.frames.resize(static_cast<std::size_t>(n));
  packet.acked.assign(static_cast<std::size_t>(n), false);
  packet.unacked = n;
  for (int j = 0; j < n; ++j) {
    ShareFrame frame;
    frame.packet_id = id;
    frame.k = static_cast<std::uint8_t>(n);  // perfect scheme: need them all
    frame.share_index = shares[static_cast<std::size_t>(j)].index;
    frame.payload = shares[static_cast<std::size_t>(j)].data;
    packet.frames[static_cast<std::size_t>(j)] = encode(frame);
    ++stats_.shares_sent;
    // Reliable transport: a queue-full drop is just an early "loss" that
    // the RTO recovers, so the return value is intentionally ignored.
    (void)data_out_[static_cast<std::size_t>(j)]->try_send(
        packet.frames[static_cast<std::size_t>(j)]);
  }
  pending_.emplace(id, std::move(packet));
  arm_retransmit(id);
  return true;
}

void MicssSender::arm_retransmit(std::uint64_t id) {
  sim_.schedule_in(config_.rto, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // fully acknowledged meanwhile
    PendingPacket& packet = it->second;
    for (std::size_t j = 0; j < packet.frames.size(); ++j) {
      if (!packet.acked[j]) {
        ++stats_.retransmissions;
        (void)data_out_[j]->try_send(packet.frames[j]);
      }
    }
    arm_retransmit(id);
  });
}

void MicssSender::on_ack_frame(std::vector<std::uint8_t> raw) {
  const auto ack = decode_ack(raw);
  if (!ack) return;
  const auto it = pending_.find(ack->packet_id);
  if (it == pending_.end()) return;
  PendingPacket& packet = it->second;
  const std::size_t j = static_cast<std::size_t>(ack->share_index) - 1;
  if (j >= packet.acked.size() || packet.acked[j]) return;
  packet.acked[j] = true;
  if (--packet.unacked == 0) {
    pending_.erase(it);
    ++stats_.packets_completed;
  }
}

// ---------------------------------------------------------------- receiver

MicssReceiver::MicssReceiver(net::Simulator& sim,
                             std::vector<net::SimChannel*> data_in,
                             std::vector<net::SimChannel*> ack_out)
    : sim_(sim), ack_out_(std::move(ack_out)), n_(data_in.size()) {
  MCSS_ENSURE(n_ >= 1, "MICSS needs at least one channel");
  MCSS_ENSURE(ack_out_.size() == n_, "ack channel count mismatch");
  for (net::SimChannel* ch : data_in) {
    MCSS_ENSURE(ch != nullptr, "null data channel");
    ch->set_receiver([this](std::vector<std::uint8_t> f) {
      on_data_frame(std::move(f));
    });
  }
}

void MicssReceiver::send_ack(std::uint64_t id, std::uint8_t index) {
  ++stats_.acks_sent;
  const std::size_t j = static_cast<std::size_t>(index - 1) % ack_out_.size();
  (void)ack_out_[j]->try_send(encode_ack({id, index}));
}

void MicssReceiver::on_data_frame(std::vector<std::uint8_t> raw) {
  const auto frame = decode(raw);
  if (!frame) return;
  ++stats_.shares_received;
  const std::uint64_t id = frame->packet_id;
  const std::size_t j = static_cast<std::size_t>(frame->share_index) - 1;
  if (j >= n_) return;

  // Always (re-)acknowledge: the previous ack may have been lost.
  send_ack(id, frame->share_index);

  if (completed_.contains(id)) {
    ++stats_.duplicate_shares;
    return;
  }
  auto [it, created] = partials_.try_emplace(id);
  Partial& partial = it->second;
  if (created) partial.shares.resize(n_);
  if (partial.shares[j].has_value()) {
    ++stats_.duplicate_shares;
    return;
  }
  partial.shares[j] = std::move(frame->payload);
  if (++partial.have < n_) return;

  // All n shares present: reconstruct with the perfect scheme.
  std::vector<sss::Share> shares;
  shares.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    shares.push_back({static_cast<std::uint8_t>(i + 1),
                      std::move(*partial.shares[i])});
  }
  auto payload = sss::xor_reconstruct(shares);
  ++stats_.packets_delivered;
  stats_.bytes_delivered += payload.size();
  partials_.erase(it);
  completed_.insert(id);
  completed_order_.push_back(id);
  while (completed_order_.size() > 8192) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
  if (deliver_) deliver_(id, std::move(payload));
}

void publish(obs::Registry& registry, const MicssSenderStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_micss_sender_packets_offered", stats.packets_offered);
  add("mcss_micss_sender_packets_rejected", stats.packets_rejected);
  add("mcss_micss_sender_packets_completed", stats.packets_completed);
  add("mcss_micss_sender_shares_sent", stats.shares_sent);
  add("mcss_micss_sender_retransmissions", stats.retransmissions);
}

void publish(obs::Registry& registry, const MicssReceiverStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_micss_receiver_shares_received", stats.shares_received);
  add("mcss_micss_receiver_duplicate_shares", stats.duplicate_shares);
  add("mcss_micss_receiver_packets_delivered", stats.packets_delivered);
  add("mcss_micss_receiver_bytes_delivered", stats.bytes_delivered);
  add("mcss_micss_receiver_acks_sent", stats.acks_sent);
}

}  // namespace mcss::proto
