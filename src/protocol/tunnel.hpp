// IP interception shim (the DIBS role).
//
// The real ReMICSS uses the DIBS bump-in-the-stack to transparently
// intercept IP traffic, making the protocol transport-agnostic: "able to
// carry any IP-based communication and not only TCP" (Section V). This
// module is that boundary, network-layer semantics included:
//
//   IpDatagram       a minimal IP-like datagram (addresses, protocol,
//                    payload) with a strict codec
//   TunnelIngress    wraps datagrams and feeds them to a ReMICSS Sender
//   TunnelEgress     unwraps delivered packets, demultiplexes by flow
//                    (src, dst, protocol), and — for flows that want it —
//                    restores ordering with a bounded reorder buffer and
//                    gap timeout, so a TCP-like flow sees an in-order
//                    byte stream while UDP-like flows get datagrams as
//                    they arrive. Flows are isolated: one flow's loss
//                    never stalls another.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "protocol/sender.hpp"

namespace mcss::proto {

/// A minimal IP-like datagram.
struct IpDatagram {
  std::array<std::uint8_t, 4> src{};
  std::array<std::uint8_t, 4> dst{};
  std::uint8_t protocol = 17;  ///< 6 = TCP-like, 17 = UDP-like
  std::vector<std::uint8_t> payload;

  friend bool operator==(const IpDatagram&, const IpDatagram&) = default;
};

/// Flow identity used for demultiplexing and sequencing.
struct FlowKey {
  std::array<std::uint8_t, 4> src{};
  std::array<std::uint8_t, 4> dst{};
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// Serialize a datagram with a per-flow sequence number (assigned by the
/// ingress). Layout: ver(1) proto(1) src(4) dst(4) seq(4) len(2) payload.
[[nodiscard]] std::vector<std::uint8_t> encode_datagram(const IpDatagram& dg,
                                                        std::uint32_t seq);
struct DecodedDatagram {
  IpDatagram datagram;
  std::uint32_t seq = 0;
};
[[nodiscard]] std::optional<DecodedDatagram> decode_datagram(
    std::span<const std::uint8_t> buf);

/// Ingress: assigns per-flow sequence numbers and submits to the Sender.
class TunnelIngress {
 public:
  explicit TunnelIngress(Sender& sender) : sender_(sender) {}

  /// Returns false on sender backpressure (datagram dropped, like a full
  /// NIC ring).
  bool send(const IpDatagram& datagram);

  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const noexcept { return dropped_; }

 private:
  Sender& sender_;
  std::map<FlowKey, std::uint32_t> next_seq_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

struct EgressConfig {
  /// Restore per-flow ordering for these protocol numbers (default: 6,
  /// the TCP-like protocol). Others are delivered as they arrive.
  std::vector<std::uint8_t> ordered_protocols{6};
  /// Out-of-order datagrams wait at most this long for the gap to fill.
  net::SimTime gap_timeout = net::from_millis(200);
  /// Per-flow reorder buffer bound; overflow skips the gap immediately.
  std::size_t max_buffered = 256;
};

struct EgressStats {
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t malformed = 0;
  std::uint64_t reordered_held = 0;   ///< arrived early, buffered
  std::uint64_t gaps_skipped = 0;     ///< sequence holes given up on
  std::uint64_t duplicates_dropped = 0;
};

/// Add these totals into the registry under mcss_egress_* names.
void publish(obs::Registry& registry, const EgressStats& stats);

/// Egress: feed with the Receiver's delivered payloads (see attach()).
class TunnelEgress {
 public:
  using DeliverFn = std::function<void(const IpDatagram&)>;

  TunnelEgress(net::Simulator& sim, EgressConfig config, DeliverFn deliver);

  /// Wire into a Receiver: receiver.set_deliver(egress.receiver_hook()).
  [[nodiscard]] std::function<void(std::uint64_t, std::vector<std::uint8_t>)>
  receiver_hook();

  /// Feed one reconstructed tunnel payload directly (test entry point).
  void on_packet(std::span<const std::uint8_t> packet);

  [[nodiscard]] const EgressStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t buffered() const noexcept;

 private:
  struct FlowState {
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, IpDatagram> pending;
    std::uint64_t generation = 0;  ///< bumps cancel stale gap timers
  };

  [[nodiscard]] bool is_ordered(std::uint8_t protocol) const noexcept;
  void release_in_order(const FlowKey& key, FlowState& flow);
  void arm_gap_timer(const FlowKey& key, FlowState& flow);

  net::Simulator& sim_;
  EgressConfig config_;
  DeliverFn deliver_;
  std::map<FlowKey, FlowState> flows_;
  EgressStats stats_;
};

}  // namespace mcss::proto
