// IP interception shim (the DIBS role).
//
// The real ReMICSS uses the DIBS bump-in-the-stack to transparently
// intercept IP traffic, making the protocol transport-agnostic: "able to
// carry any IP-based communication and not only TCP" (Section V). This
// module is that boundary, network-layer semantics included:
//
//   IpDatagram       a minimal IP-like datagram (addresses, protocol,
//                    payload) with a strict codec
//   TunnelIngress    wraps datagrams and feeds them to a ReMICSS Sender
//   TunnelEgress     unwraps delivered packets, demultiplexes by flow
//                    (src, dst, protocol), and — for flows that want it —
//                    restores ordering with a bounded reorder buffer and
//                    gap timeout, so a TCP-like flow sees an in-order
//                    byte stream while UDP-like flows get datagrams as
//                    they arrive. Flows are isolated: one flow's loss
//                    never stalls another.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "protocol/sender.hpp"

namespace mcss::proto {

/// A minimal IP-like datagram.
struct IpDatagram {
  std::array<std::uint8_t, 4> src{};
  std::array<std::uint8_t, 4> dst{};
  std::uint8_t protocol = 17;  ///< 6 = TCP-like, 17 = UDP-like
  std::vector<std::uint8_t> payload;

  friend bool operator==(const IpDatagram&, const IpDatagram&) = default;
};

/// Flow identity used for demultiplexing and sequencing.
struct FlowKey {
  std::array<std::uint8_t, 4> src{};
  std::array<std::uint8_t, 4> dst{};
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// Serial-number (RFC 1982 style) ordering for the 32-bit per-flow
/// sequence space: `a` precedes `b` when the wrapped distance from a to
/// b is under 2^31. A long-lived flow wraps past 2^32 (at 100 Mbps of
/// 1 KB datagrams that is under four days); plain `<` would then treat
/// every post-wrap datagram as ancient history and stall the flow, so
/// all egress sequence comparisons go through these.
[[nodiscard]] constexpr bool seq_before(std::uint32_t a,
                                        std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// Comparator for reorder-buffer maps. Only a strict weak ordering while
/// all keys fit in a half-space window (< 2^31 apart) — guaranteed here
/// because the buffer holds at most max_buffered (~hundreds) consecutive
/// sequence numbers.
struct SeqSerialLess {
  [[nodiscard]] constexpr bool operator()(std::uint32_t a,
                                          std::uint32_t b) const noexcept {
    return seq_before(a, b);
  }
};

/// Serialize a datagram with a per-flow sequence number (assigned by the
/// ingress). Layout: ver(1) proto(1) src(4) dst(4) seq(4) len(2) payload.
[[nodiscard]] std::vector<std::uint8_t> encode_datagram(const IpDatagram& dg,
                                                        std::uint32_t seq);
struct DecodedDatagram {
  IpDatagram datagram;
  std::uint32_t seq = 0;
};
[[nodiscard]] std::optional<DecodedDatagram> decode_datagram(
    std::span<const std::uint8_t> buf);

/// Ingress: assigns per-flow sequence numbers and submits to the Sender.
class TunnelIngress {
 public:
  explicit TunnelIngress(Sender& sender) : sender_(sender) {}

  /// Returns false on sender backpressure (datagram dropped, like a full
  /// NIC ring).
  bool send(const IpDatagram& datagram);

  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const noexcept { return dropped_; }

  /// Pre-position the next sequence number assigned to a flow (pairs with
  /// TunnelEgress::prime_flow for wraparound tests / session resumption).
  void prime_flow(const FlowKey& key, std::uint32_t next_seq) {
    next_seq_[key] = next_seq;
  }

 private:
  Sender& sender_;
  std::map<FlowKey, std::uint32_t> next_seq_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

struct EgressConfig {
  /// Restore per-flow ordering for these protocol numbers (default: 6,
  /// the TCP-like protocol). Others are delivered as they arrive.
  std::vector<std::uint8_t> ordered_protocols{6};
  /// Out-of-order datagrams wait at most this long for the gap to fill.
  net::SimTime gap_timeout = net::from_millis(200);
  /// Per-flow reorder buffer bound; overflow skips the gap immediately.
  std::size_t max_buffered = 256;
};

struct EgressStats {
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t malformed = 0;
  std::uint64_t reordered_held = 0;   ///< arrived early, buffered
  std::uint64_t gaps_skipped = 0;     ///< sequence holes given up on
  std::uint64_t duplicates_dropped = 0;
};

/// Add these totals into the registry under mcss_egress_* names.
void publish(obs::Registry& registry, const EgressStats& stats);

/// Egress: feed with the Receiver's delivered payloads (see attach()).
class TunnelEgress {
 public:
  using DeliverFn = std::function<void(const IpDatagram&)>;

  TunnelEgress(net::Simulator& sim, EgressConfig config, DeliverFn deliver);

  /// Wire into a Receiver: receiver.set_deliver(egress.receiver_hook()).
  [[nodiscard]] std::function<void(std::uint64_t, std::vector<std::uint8_t>)>
  receiver_hook();

  /// Feed one reconstructed tunnel payload directly (test entry point).
  void on_packet(std::span<const std::uint8_t> packet);

  /// Pre-position a flow's expected sequence number (session resumption
  /// and the wraparound regression tests; reaching seq 2^32 - 1 honestly
  /// takes four billion datagrams). Creates the flow if absent; any
  /// pending datagrams whose turn has now come are released.
  void prime_flow(const FlowKey& key, std::uint32_t next_seq);

  [[nodiscard]] const EgressStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t buffered() const noexcept;

 private:
  struct FlowState {
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, IpDatagram, SeqSerialLess> pending;
    std::uint64_t generation = 0;  ///< bumps cancel stale gap timers
  };

  [[nodiscard]] bool is_ordered(std::uint8_t protocol) const noexcept;
  void release_in_order(const FlowKey& key, FlowState& flow);
  void arm_gap_timer(const FlowKey& key, FlowState& flow);

  net::Simulator& sim_;
  EgressConfig config_;
  DeliverFn deliver_;
  std::map<FlowKey, FlowState> flows_;
  EgressStats stats_;
};

}  // namespace mcss::proto
