// ReMICSS receiving side.
//
// Shares of many packets arrive interleaved, reordered, duplicated, and
// partially lost. The receiver keeps a reassembly table keyed by packet
// id — the design borrowed from IP fragment reassembly (Section V):
// partial packets are evicted after a timeout, total buffered memory is
// bounded (oldest partials evicted first), and recently completed ids are
// remembered so late duplicate shares do not resurrect finished packets.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/siphash.hpp"
#include "net/channel_port.hpp"
#include "net/cpu_model.hpp"
#include "net/simulator.hpp"
#include "sss/share.hpp"
#include "util/frame_pool.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::proto {

struct ReceiverConfig {
  /// Partial packets older than this are evicted (IP-reassembly timeout).
  net::SimTime reassembly_timeout = net::from_millis(500);
  /// Bound on total buffered share bytes across all partial packets.
  std::size_t memory_limit_bytes = 8u << 20;
  /// How many completed packet ids to remember for duplicate suppression.
  std::size_t completed_history = 8192;
  /// When set, only frames carrying a valid SipHash-2-4 tag under this key
  /// are accepted; tampered and unauthenticated frames are dropped and
  /// counted in stats().auth_failures.
  std::optional<crypto::SipHashKey> auth_key;
  /// When set, reassembly partials store their share bytes in slots of
  /// this pool (one slot per partial: k index bytes, then k regions of
  /// share_size bytes) instead of heap-allocating per appended share.
  /// Partials too big for a slot, or arriving while the pool is
  /// exhausted, fall back to the heap — a policy degradation, never a
  /// drop. The pool must outlive the receiver. Not owned.
  util::FramePool* arena = nullptr;
};

struct ReceiverStats {
  std::uint64_t frames_received = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t auth_failures = 0;          ///< bad/missing tag (keyed mode)
  std::uint64_t duplicate_shares = 0;       ///< same (id, index) twice
  std::uint64_t late_shares = 0;            ///< for an already-completed id
  std::uint64_t conflicting_metadata = 0;   ///< k or length disagrees
  std::uint64_t packets_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t packets_evicted_timeout = 0;
  std::uint64_t packets_evicted_memory = 0;
  /// Shares dropped because the memory cap could not be met even after
  /// evicting every other partial (the incoming share alone, or the
  /// partial it extends, would exceed the limit).
  std::uint64_t shares_dropped_memory = 0;
  /// Shares of an older generation than the stored partial, dropped —
  /// shares of different re-splits never combine (see wire.hpp).
  std::uint64_t stale_generation_shares = 0;
  /// Partials whose buffered shares were discarded because a newer
  /// generation (a retransmission) arrived and restarted reassembly.
  std::uint64_t partials_superseded = 0;
  /// Partials whose share storage landed in an arena slot vs. the heap
  /// fallback (pool exhausted, partial too big for a slot, or no arena
  /// configured). Arena appends are allocation-free.
  std::uint64_t partials_in_arena = 0;
  std::uint64_t partials_on_heap = 0;
};

/// Add these totals into the registry under mcss_receiver_* names.
void publish(obs::Registry& registry, const ReceiverStats& stats);

class Receiver {
 public:
  /// Delivery callback: (packet id, reconstructed payload).
  using DeliverFn = std::function<void(std::uint64_t, std::vector<std::uint8_t>)>;

  explicit Receiver(net::Simulator& sim, ReceiverConfig config = {},
                    net::CpuModel* cpu = nullptr);
  ~Receiver();

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// Late-bind the partial-storage arena (see ReceiverConfig::arena) —
  /// for owners whose pool is constructed after the receiver. Only legal
  /// while no partials are pending.
  void set_arena(util::FramePool* arena);

  /// Install this receiver as the delivery target of a channel.
  void attach(net::ChannelPort& channel);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Feed one raw frame viewed in place — the live transport's batched
  /// RX path hands spans into pool-backed receive slots, and only the
  /// share payload the receiver actually retains is copied (into the
  /// reassembly partial, by decode). The span need not outlive the call.
  void on_frame(std::span<const std::uint8_t> frame);

  /// Owning-buffer convenience (the attach() path; public for tests).
  void on_frame(std::vector<std::uint8_t> frame) {
    on_frame(std::span<const std::uint8_t>(frame));
  }

  [[nodiscard]] const ReceiverStats& stats() const noexcept { return stats_; }

  /// Publish this receiver's stats into the registry (end-of-run hook).
  void publish_metrics(obs::Registry& registry) const;
  [[nodiscard]] std::size_t pending_packets() const noexcept { return partials_.size(); }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffered_bytes_; }
  /// Size of the oldest-first eviction bookkeeping; always equals
  /// pending_packets() (ids are unlinked the moment a packet completes
  /// or is evicted — exposed so tests can pin the invariant).
  [[nodiscard]] std::size_t tracked_partials() const noexcept {
    return creation_order_.size();
  }

 private:
  struct Partial {
    std::uint8_t k = 1;
    std::uint8_t generation = 0;  ///< re-split count of the stored shares
    std::uint8_t count = 0;       ///< shares stored so far
    std::size_t share_size = 0;
    /// Arena storage: k index bytes, then k share regions of share_size
    /// each. Null = heap fallback via `shares`.
    util::FrameRef slot;
    std::vector<sss::Share> shares;  ///< heap fallback storage
    net::SimTime first_seen = 0;
    /// This partial's node in creation_order_, for O(1) unlink.
    std::list<std::uint64_t>::iterator order_it;

    [[nodiscard]] bool in_arena() const noexcept {
      return static_cast<bool>(slot);
    }
  };

  /// Acquire storage for a (re)started partial: an arena slot when it
  /// fits and the pool has room, the heap vector otherwise.
  void init_storage(Partial& partial);
  [[nodiscard]] bool has_share(const Partial& partial,
                               std::uint8_t index) const;
  void append_share(Partial& partial, std::uint8_t index,
                    std::span<const std::uint8_t> payload);

  void arm_eviction_timer(std::uint64_t id);
  void complete(std::uint64_t id, Partial& partial);
  void evict(std::uint64_t id, std::uint64_t* counter);
  /// Evict oldest partials (never `exclude`) until `incoming_bytes` more
  /// fit under the cap; false when they cannot be made to fit.
  bool make_room(std::size_t incoming_bytes,
                 std::optional<std::uint64_t> exclude);
  void remember_completed(std::uint64_t id);

  net::Simulator& sim_;
  ReceiverConfig config_;
  net::CpuModel* cpu_;
  DeliverFn deliver_;

  std::unordered_map<std::uint64_t, Partial> partials_;
  std::list<std::uint64_t> creation_order_;  // for oldest-first eviction
  std::size_t buffered_bytes_ = 0;
  std::unordered_set<std::uint64_t> completed_;
  std::deque<std::uint64_t> completed_order_;
  ReceiverStats stats_;
  /// Liveness token captured by timers parked in sim_: the simulator has
  /// no cancellation, and with the session layer many receivers share
  /// one long-lived timeline — a receiver destroyed with timers pending
  /// (flow teardown) must make those callbacks no-ops, not
  /// use-after-frees.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mcss::proto
