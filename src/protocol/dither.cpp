#include "protocol/dither.hpp"

#include <cmath>

namespace mcss::proto {

KappaMuDither::KappaMuDither(double kappa, double mu, int n_max)
    : kappa_(kappa), mu_(mu) {
  MCSS_ENSURE(kappa >= 1.0 && kappa <= mu && mu <= static_cast<double>(n_max),
              "parameters must satisfy 1 <= kappa <= mu <= n");

  const auto kf = static_cast<int>(std::floor(kappa + 1e-12));
  const auto mf = static_cast<int>(std::floor(mu + 1e-12));
  const int kc = std::min(kf + 1, n_max);
  const int mc = std::min(mf + 1, n_max);
  const double frac_k = kappa - kf;
  const double frac_m = mu - mf;

  // Theorem 5 corner chain (see optimal.cpp for the derivation of which
  // chain keeps k <= m).
  if (frac_m >= frac_k) {
    corners_[0] = {{kf, mf}, 1.0 - frac_m, 0};
    corners_[1] = {{kf, mc}, frac_m - frac_k, 0};
    corners_[2] = {{kc, mc}, frac_k, 0};
  } else {
    MCSS_INVARIANT(kc <= mf, "corner chain violates k <= m");
    corners_[0] = {{kf, mf}, 1.0 - frac_k, 0};
    corners_[1] = {{kc, mf}, frac_k - frac_m, 0};
    corners_[2] = {{kc, mc}, frac_m, 0};
  }
  num_corners_ = 3;
}

KmPair KappaMuDither::next() noexcept {
  // Largest remainder: pick the corner furthest behind its quota.
  ++total_;
  int best = -1;
  double best_deficit = -1.0;
  for (int i = 0; i < num_corners_; ++i) {
    const Corner& c = corners_[static_cast<std::size_t>(i)];
    if (c.target <= 0.0) continue;
    const double deficit =
        c.target * static_cast<double>(total_) - static_cast<double>(c.used);
    if (deficit > best_deficit) {
      best_deficit = deficit;
      best = i;
    }
  }
  Corner& chosen = corners_[static_cast<std::size_t>(best)];
  ++chosen.used;
  return chosen.pair;
}

}  // namespace mcss::proto
