#include "protocol/receiver.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "obs/trace.hpp"
#include "protocol/wire.hpp"
#include "sss/shamir.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {

namespace {

/// Sim-time from a packet's first share arriving to its k-th (the
/// reassembly wait). Invalid while metrics are disabled.
obs::HistogramId reassembly_wait_hist() {
  if (!obs::metrics_enabled()) return {};
  return obs::Registry::global().histogram(
      "mcss_receiver_reassembly_wait_seconds", obs::exp_bounds(1e-6, 2.0, 24));
}

/// Wall-clock cost of one Shamir reconstruction.
obs::HistogramId reconstruct_hist() {
  if (!obs::metrics_enabled()) return {};
  return obs::Registry::global().histogram(
      "mcss_receiver_reconstruct_seconds", obs::exp_bounds(1e-8, 4.0, 16));
}

}  // namespace

void publish(obs::Registry& registry, const ReceiverStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_receiver_frames_received", stats.frames_received);
  add("mcss_receiver_malformed_frames", stats.malformed_frames);
  add("mcss_receiver_auth_failures", stats.auth_failures);
  add("mcss_receiver_duplicate_shares", stats.duplicate_shares);
  add("mcss_receiver_late_shares", stats.late_shares);
  add("mcss_receiver_conflicting_metadata", stats.conflicting_metadata);
  add("mcss_receiver_packets_delivered", stats.packets_delivered);
  add("mcss_receiver_bytes_delivered", stats.bytes_delivered);
  add("mcss_receiver_packets_evicted_timeout", stats.packets_evicted_timeout);
  add("mcss_receiver_packets_evicted_memory", stats.packets_evicted_memory);
  add("mcss_receiver_shares_dropped_memory", stats.shares_dropped_memory);
  add("mcss_receiver_stale_generation_shares", stats.stale_generation_shares);
  add("mcss_receiver_partials_superseded", stats.partials_superseded);
  add("mcss_receiver_partials_in_arena", stats.partials_in_arena);
  add("mcss_receiver_partials_on_heap", stats.partials_on_heap);
}

void Receiver::publish_metrics(obs::Registry& registry) const {
  publish(registry, stats_);
}

Receiver::Receiver(net::Simulator& sim, ReceiverConfig config,
                   net::CpuModel* cpu)
    : sim_(sim), config_(config), cpu_(cpu) {
  MCSS_ENSURE(config_.reassembly_timeout > 0, "timeout must be positive");
  MCSS_ENSURE(config_.memory_limit_bytes > 0, "memory limit must be positive");
}

Receiver::~Receiver() {
  // Timers this receiver parked in the (possibly shared, longer-lived)
  // simulator hold the token, check it, and stand down.
  *alive_ = false;
}

void Receiver::set_arena(util::FramePool* arena) {
  MCSS_ENSURE(partials_.empty(),
              "set_arena requires no pending partials (storage layouts "
              "would mix)");
  config_.arena = arena;
}

void Receiver::attach(net::ChannelPort& channel) {
  channel.set_receiver([this](std::vector<std::uint8_t> f) {
    on_frame(std::move(f));
  });
}

void Receiver::on_frame(std::span<const std::uint8_t> raw) {
  ++stats_.frames_received;
  DecodeStatus decode_status = DecodeStatus::Ok;
  // Zero-copy parse: the payload stays a span into `raw` and is copied
  // exactly once, straight into the partial's storage, on append.
  const auto frame = decode_view(
      raw, config_.auth_key ? &*config_.auth_key : nullptr, &decode_status);
  if (!frame) {
    if (decode_status == DecodeStatus::AuthFailed) {
      ++stats_.auth_failures;
    } else {
      ++stats_.malformed_frames;
    }
    return;
  }
  const std::uint64_t id = frame->packet_id;
  if (obs::trace_enabled()) {
    // Ends the span the sender opened when it enqueued this share.
    obs::Tracer::global().async_end(
        "share", "share", obs::share_span_id(id, frame->share_index),
        sim_.now());
  }
  if (completed_.contains(id)) {
    ++stats_.late_shares;
    return;
  }

  auto it = partials_.find(id);
  if (it == partials_.end()) {
    if (!make_room(frame->payload.size(), std::nullopt)) {
      ++stats_.shares_dropped_memory;
      return;
    }
    Partial partial;
    partial.k = frame->k;
    partial.generation = frame->generation;
    partial.share_size = frame->payload.size();
    partial.first_seen = sim_.now();
    it = partials_.emplace(id, std::move(partial)).first;
    init_storage(it->second);
    it->second.order_it = creation_order_.insert(creation_order_.end(), id);
    if (obs::trace_enabled()) {
      obs::Tracer::global().async_begin("reassembly", "receiver", id,
                                        sim_.now(), "k", frame->k);
    }
    arm_eviction_timer(id);
  }

  Partial& partial = it->second;
  if (frame->generation != partial.generation) {
    // RFC 1982 serial order on the 8-bit generation, so an ARQ session
    // surviving 255 re-splits wraps cleanly.
    const bool newer =
        static_cast<std::uint8_t>(frame->generation - partial.generation) <
        0x80;
    if (!newer) {
      ++stats_.stale_generation_shares;
      return;
    }
    // A retransmission re-split the packet: stored shares are from a
    // different random polynomial and can never combine with this one.
    // Restart the partial around the new generation, and give it a fresh
    // reassembly lease — with ARQ, a packet legitimately outlives one
    // reassembly timeout while retransmissions are still arriving (the
    // superseded timer finds first_seen moved and stands down).
    buffered_bytes_ -= partial.share_size * partial.count;
    partial.shares.clear();
    partial.slot.reset();
    partial.count = 0;
    partial.k = frame->k;
    partial.generation = frame->generation;
    partial.share_size = frame->payload.size();
    partial.first_seen = sim_.now();
    init_storage(partial);
    ++stats_.partials_superseded;
    arm_eviction_timer(id);
  }
  if (frame->k != partial.k || frame->payload.size() != partial.share_size) {
    ++stats_.conflicting_metadata;
    return;
  }
  if (has_share(partial, frame->share_index)) {
    ++stats_.duplicate_shares;
    return;
  }

  // The cap must hold for APPENDS too, not only for new partials — an
  // existing packet accumulating shares grows buffered_bytes_ all the
  // same. The partial being extended is never its own victim; if even
  // evicting everything else cannot fit the share, drop the share.
  if (!make_room(frame->payload.size(), id)) {
    ++stats_.shares_dropped_memory;
    return;
  }
  buffered_bytes_ += frame->payload.size();
  append_share(partial, frame->share_index, frame->payload);
  if (partial.count >= partial.k) {
    complete(id, partial);
  }
}

void Receiver::init_storage(Partial& partial) {
  // One arena slot holds the whole partial: k index bytes up front, then
  // k share regions of share_size each. Appends are then a byte write
  // plus a memcpy — no heap. Partials that cannot fit a slot (or find
  // the pool exhausted) degrade to per-share heap vectors.
  const std::size_t need =
      static_cast<std::size_t>(partial.k) * (1 + partial.share_size);
  if (config_.arena != nullptr && need <= config_.arena->slot_bytes()) {
    partial.slot = config_.arena->acquire();
  }
  if (partial.in_arena()) {
    partial.slot.resize(need);
    ++stats_.partials_in_arena;
  } else {
    partial.shares.reserve(partial.k);
    ++stats_.partials_on_heap;
  }
}

bool Receiver::has_share(const Partial& partial, std::uint8_t index) const {
  if (partial.in_arena()) {
    const std::uint8_t* indices = partial.slot.data();
    for (std::uint8_t i = 0; i < partial.count; ++i) {
      if (indices[i] == index) return true;
    }
    return false;
  }
  return std::any_of(
      partial.shares.begin(), partial.shares.end(),
      [index](const sss::Share& s) { return s.index == index; });
}

void Receiver::append_share(Partial& partial, std::uint8_t index,
                            std::span<const std::uint8_t> payload) {
  if (partial.in_arena()) {
    std::uint8_t* base = partial.slot.data();
    base[partial.count] = index;
    if (!payload.empty()) {
      std::memcpy(base + partial.k +
                      static_cast<std::size_t>(partial.count) *
                          partial.share_size,
                  payload.data(), payload.size());
    }
  } else {
    partial.shares.push_back(
        {index, std::vector<std::uint8_t>(payload.begin(), payload.end())});
  }
  ++partial.count;
}

void Receiver::arm_eviction_timer(std::uint64_t id) {
  // IP-reassembly-style timer: if the packet is still partial when it
  // fires, evict it. first_seen disambiguates both id reuse (never
  // happens with 64-bit ids) and generation supersedes that renewed the
  // lease after this timer was armed.
  // `alive` outlives the receiver (the simulator may be shared and
  // longer-lived — session-layer flows come and go); a timer surviving
  // its receiver stands down instead of touching freed state.
  sim_.schedule_in(config_.reassembly_timeout,
                   [this, alive = alive_, id, born = sim_.now()] {
                     if (!*alive) return;
                     auto p = partials_.find(id);
                     if (p != partials_.end() && p->second.first_seen == born) {
                       evict(id, &stats_.packets_evicted_timeout);
                     }
                   });
}

void Receiver::complete(std::uint64_t id, Partial& partial) {
  const net::SimTime now = sim_.now();
  if (obs::metrics_enabled()) {
    obs::Registry::global().observe(reassembly_wait_hist(),
                                    net::to_seconds(now - partial.first_seen));
  }

  std::vector<std::uint8_t> payload;
  {
    obs::ScopeTimer reconstruct_timer(reconstruct_hist());
    if (partial.in_arena()) {
      // Views straight into the arena slot; k <= 255 bounds the stack
      // array. complete() fires on the k-th append, so count == k.
      sss::ShareView views[255];
      const std::uint8_t* base = partial.slot.data();
      for (std::size_t i = 0; i < partial.k; ++i) {
        views[i] = {base[i],
                    {base + partial.k + i * partial.share_size,
                     partial.share_size}};
      }
      payload = sss::reconstruct_views(
          std::span<const sss::ShareView>(views, partial.k));
    } else {
      payload = sss::reconstruct_first_k(partial.shares, partial.k);
    }
  }

  net::SimTime done = now;
  if (cpu_ != nullptr) {
    done = cpu_->submit(cpu_->reconstruct_ops(partial.k));
  }
  if (obs::trace_enabled()) {
    obs::Tracer::global().async_end("reassembly", "receiver", id, now);
    // Sim-time reconstruction charge, then the end of the packet span
    // the sender opened at dispatch.
    obs::Tracer::global().complete("reconstruct", "receiver", now,
                                   std::max<net::SimTime>(0, done - now), id,
                                   "k", partial.k);
    obs::Tracer::global().async_end("packet", "packet", id, done);
  }
  ++stats_.packets_delivered;
  stats_.bytes_delivered += payload.size();
  if (deliver_) {
    if (done <= sim_.now()) {
      deliver_(id, std::move(payload));
    } else {
      sim_.schedule_at(
          done, [this, alive = alive_, id, p = std::move(payload)]() mutable {
            if (!*alive) return;
            deliver_(id, std::move(p));
          });
    }
  }

  buffered_bytes_ -= partial.share_size * partial.count;
  creation_order_.erase(partial.order_it);
  partials_.erase(id);
  remember_completed(id);
}

void Receiver::evict(std::uint64_t id, std::uint64_t* counter) {
  const auto it = partials_.find(id);
  MCSS_INVARIANT(it != partials_.end(), "evicting a packet that is not pending");
  buffered_bytes_ -= it->second.share_size * it->second.count;
  creation_order_.erase(it->second.order_it);
  partials_.erase(it);
  ++*counter;
  if (obs::trace_enabled()) {
    obs::Tracer::global().instant(counter == &stats_.packets_evicted_timeout
                                      ? "evict_timeout"
                                      : "evict_memory",
                                  "receiver", sim_.now(), id);
    obs::Tracer::global().async_end("reassembly", "receiver", id, sim_.now());
  }
}

bool Receiver::make_room(std::size_t incoming_bytes,
                         std::optional<std::uint64_t> exclude) {
  auto it = creation_order_.begin();
  while (buffered_bytes_ + incoming_bytes > config_.memory_limit_bytes &&
         it != creation_order_.end()) {
    const std::uint64_t victim = *it;
    ++it;  // advance before evict() unlinks the node behind us
    if (exclude && victim == *exclude) continue;
    evict(victim, &stats_.packets_evicted_memory);
  }
  return buffered_bytes_ + incoming_bytes <= config_.memory_limit_bytes;
}

void Receiver::remember_completed(std::uint64_t id) {
  completed_.insert(id);
  completed_order_.push_back(id);
  while (completed_order_.size() > config_.completed_history) {
    completed_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

}  // namespace mcss::proto
