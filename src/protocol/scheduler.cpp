#include "protocol/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/ensure.hpp"
#include "util/subset.hpp"

namespace mcss::proto {

// ---------------------------------------------------------------- Dynamic

DynamicScheduler::DynamicScheduler(double kappa, double mu, int num_channels)
    : dither_(kappa, mu, num_channels) {}

std::optional<ShareDecision> DynamicScheduler::next(
    std::span<const ChannelView> channels) {
  if (!pending_) pending_ = dither_.next();
  const int m = pending_->m;

  // Ready channels sorted by least backlog (ties by index for determinism).
  std::vector<int> ready;
  for (int i = 0; i < static_cast<int>(channels.size()); ++i) {
    if (channels[static_cast<std::size_t>(i)].ready) ready.push_back(i);
  }
  if (static_cast<int>(ready.size()) < m) return std::nullopt;
  // The index tiebreak is explicit, not delegated to sort stability:
  // equal-backlog channels (common at startup, when every backlog is 0)
  // must pick the same M on every stdlib, or sweep outputs diverge
  // between toolchains. A total order also keeps the choice stable if
  // the sort is ever swapped for an unstable partial_sort.
  std::sort(ready.begin(), ready.end(), [&](int a, int b) {
    const net::SimTime ba = channels[static_cast<std::size_t>(a)].backlog;
    const net::SimTime bb = channels[static_cast<std::size_t>(b)].backlog;
    return ba != bb ? ba < bb : a < b;
  });
  ready.resize(static_cast<std::size_t>(m));

  ShareDecision d{pending_->k, std::move(ready)};
  pending_.reset();
  return d;
}

// ---------------------------------------------------------------- Static

StaticScheduler::StaticScheduler(ShareSchedule schedule, Rng rng,
                                 std::size_t pool_limit)
    : schedule_(std::move(schedule)), rng_(rng), pool_limit_(pool_limit) {
  MCSS_ENSURE(pool_limit_ >= 1, "pool limit must be at least 1");
}

std::optional<ShareDecision> StaticScheduler::next(
    std::span<const ChannelView> channels) {
  const auto dispatchable = [&](const ScheduleEntry& e) {
    bool all_ready = true;
    for_each_member(e.channels, [&](int i) {
      if (!channels[static_cast<std::size_t>(i)].ready) all_ready = false;
    });
    return all_ready;
  };

  // Oldest parked decision whose subset has become writable goes first.
  for (std::size_t i = 0; i < parked_.size(); ++i) {
    if (dispatchable(parked_[i])) {
      ShareDecision d{parked_[i].k, mask_members(parked_[i].channels)};
      parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
      ++stats_.parked_dispatched;
      return d;
    }
  }

  // Draw fresh samples, parking blocked ones. Bounded to pool_limit_
  // draws per call; a full pool evicts its oldest entry rather than
  // stopping the draw — otherwise pool_limit_ permanently-undispatchable
  // entries would pin the scheduler at "wait" forever, deadlocking the
  // sender even when subsets the schedule can still sample are writable.
  for (std::size_t draw = 0; draw < pool_limit_; ++draw) {
    const ScheduleEntry e = schedule_.sample(rng_);
    if (dispatchable(e)) {
      return ShareDecision{e.k, mask_members(e.channels)};
    }
    if (parked_.size() >= pool_limit_) {
      parked_.erase(parked_.begin());
      ++stats_.parked_evicted;
    }
    parked_.push_back(e);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- Fixed

FixedScheduler::FixedScheduler(int k, int num_channels)
    : k_(k), num_channels_(num_channels) {
  MCSS_ENSURE(k >= 1 && k <= num_channels, "need 1 <= k <= n");
}

std::optional<ShareDecision> FixedScheduler::next(
    std::span<const ChannelView> channels) {
  MCSS_ENSURE(static_cast<int>(channels.size()) == num_channels_,
              "channel count changed");
  for (const ChannelView& c : channels) {
    if (!c.ready) return std::nullopt;
  }
  ShareDecision d;
  d.k = k_;
  d.channels.resize(static_cast<std::size_t>(num_channels_));
  std::iota(d.channels.begin(), d.channels.end(), 0);
  return d;
}

// ------------------------------------------------------------- metrics

void publish(obs::Registry& registry, const StaticSchedulerStats& stats) {
  registry.add(registry.counter("mcss_scheduler_parked_evicted"),
               stats.parked_evicted);
  registry.add(registry.counter("mcss_scheduler_parked_dispatched"),
               stats.parked_dispatched);
}

void StaticScheduler::publish_metrics(obs::Registry& registry) const {
  publish(registry, stats_);
}

}  // namespace mcss::proto
