#include "protocol/sender.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/scope_timer.hpp"
#include "obs/trace.hpp"
#include "protocol/wire.hpp"
#include "sss/shamir.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {

namespace {

/// Wall-clock cost of one Shamir split; invalid (observe is a no-op)
/// while metrics are disabled, so the hot path pays one branch.
obs::HistogramId split_hist() {
  if (!obs::metrics_enabled()) return {};
  return obs::Registry::global().histogram("mcss_sender_split_seconds",
                                           obs::exp_bounds(1e-8, 4.0, 16));
}

}  // namespace

void publish(obs::Registry& registry, const SenderStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_sender_packets_offered", stats.packets_offered);
  add("mcss_sender_packets_rejected", stats.packets_rejected);
  add("mcss_sender_packets_sent", stats.packets_sent);
  add("mcss_sender_shares_sent", stats.shares_sent);
  add("mcss_sender_shares_dropped_at_channel",
      stats.shares_dropped_at_channel);
  add("mcss_sender_packets_retransmitted", stats.packets_retransmitted);
  add("mcss_sender_shares_retransmitted", stats.shares_retransmitted);
  registry.set(registry.gauge("mcss_sender_achieved_kappa"),
               stats.achieved_kappa());
  registry.set(registry.gauge("mcss_sender_achieved_mu"),
               stats.achieved_mu());
}

void Sender::publish_metrics(obs::Registry& registry) const {
  publish(registry, stats_);
  scheduler_->publish_metrics(registry);
}

Sender::Sender(net::Simulator& sim, std::vector<net::ChannelPort*> channels,
               std::unique_ptr<ShareScheduler> scheduler, Rng rng,
               net::CpuModel* cpu, SenderConfig config)
    : sim_(sim),
      channels_(std::move(channels)),
      scheduler_(std::move(scheduler)),
      rng_(rng),
      cpu_(cpu),
      config_(config) {
  MCSS_ENSURE(!channels_.empty(), "sender needs at least one channel");
  MCSS_ENSURE(channels_.size() <= 32, "at most 32 channels");
  MCSS_ENSURE(scheduler_ != nullptr, "sender needs a scheduler");
  for (net::ChannelPort* ch : channels_) {
    MCSS_ENSURE(ch != nullptr, "null channel");
    ch->set_writable_callback([this] { pump(); });
  }
}

void Sender::set_scheduler(std::unique_ptr<ShareScheduler> scheduler) {
  MCSS_ENSURE(scheduler != nullptr, "scheduler must not be null");
  scheduler_ = std::move(scheduler);
  pump();  // the new policy may accept what the old one deferred
}

bool Sender::send(std::vector<std::uint8_t> payload) {
  ++stats_.packets_offered;
  MCSS_ENSURE(payload.size() <= kMaxPayload, "packet exceeds maximum payload");
  if (queue_.size() >= config_.max_queue_packets) {
    ++stats_.packets_rejected;
    return false;
  }
  queue_.push_back(std::move(payload));
  pump();
  return true;
}

void Sender::pump() {
  while (!queue_.empty()) {
    // CPU pacing: never run ahead of the host's splitting capacity.
    if (cpu_ != nullptr && !cpu_->config().unlimited &&
        cpu_->busy_until() > sim_.now()) {
      if (!pump_scheduled_) {
        pump_scheduled_ = true;
        sim_.schedule_at(cpu_->busy_until(), [this] {
          pump_scheduled_ = false;
          pump();
        });
      }
      return;
    }

    std::vector<ChannelView> view(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      view[i] = {channels_[i]->ready(), channels_[i]->backlog_time()};
    }
    const auto decision = scheduler_->next(view);
    if (!decision) {
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("schedule_defer", "sender", sim_.now(),
                                      0, "queued", queue_.size());
      }
      return;  // wait for a writability event
    }

    std::vector<std::uint8_t> payload = std::move(queue_.front());
    queue_.pop_front();
    dispatch(std::move(payload), *decision);
  }
}

void Sender::dispatch(std::vector<std::uint8_t> payload,
                      const ShareDecision& decision) {
  const int m = static_cast<int>(decision.channels.size());
  const int k = decision.k;
  MCSS_INVARIANT(k >= 1 && k <= m, "scheduler produced invalid (k, m)");

  const std::uint64_t id = next_packet_id_++;
  ++stats_.packets_sent;
  stats_.sum_k += k;
  stats_.sum_m += m;
  if (dispatch_hook_) {
    dispatch_hook_(id, k, payload, decision.channels);
  }

  const net::SimTime now = sim_.now();
  if (obs::trace_enabled()) {
    // Packet lifecycle span; the receiver ends it at delivery. The
    // schedule decision rides along as args.
    obs::Tracer::global().async_begin("packet", "packet", id, now, "k",
                                      static_cast<std::uint64_t>(k), "m",
                                      static_cast<std::uint64_t>(m));
  }

  // Charge the host for the split before the shares can leave.
  net::SimTime ready_at = now;
  if (cpu_ != nullptr) {
    ready_at = cpu_->submit(cpu_->split_ops(k, m));
  }

  std::vector<sss::Share> shares;
  {
    obs::ScopeTimer split_timer(split_hist());
    shares = sss::split(payload, k, m, rng_);
  }
  if (obs::trace_enabled()) {
    // Sim-time cost of the split: the CPU-model charge (zero without a
    // CPU model, where splitting is instantaneous in sim time).
    obs::Tracer::global().complete("split", "sender", now,
                                   std::max<net::SimTime>(0, ready_at - now),
                                   id, "k", static_cast<std::uint64_t>(k),
                                   "m", static_cast<std::uint64_t>(m));
  }
  for (int j = 0; j < m; ++j) {
    ShareFrame frame;
    frame.packet_id = id;
    frame.k = static_cast<std::uint8_t>(k);
    frame.share_index = shares[static_cast<std::size_t>(j)].index;
    frame.payload = shares[static_cast<std::size_t>(j)].data;
    auto bytes =
        encode(frame, config_.auth_key ? &*config_.auth_key : nullptr);
    const auto ch_index =
        static_cast<std::size_t>(decision.channels[static_cast<std::size_t>(j)]);
    net::ChannelPort* ch = channels_[ch_index];
    ++stats_.shares_sent;
    const std::uint64_t span = obs::share_span_id(id, frame.share_index);
    if (obs::trace_enabled()) {
      // Share lifecycle span: enqueue here, ended at the receiver (or
      // never, for shares the network loses).
      obs::Tracer::global().async_begin("share", "share", span, now,
                                        "channel", ch_index);
    }
    if (ready_at <= sim_.now()) {
      if (!ch->try_send(std::move(bytes))) {
        ++stats_.shares_dropped_at_channel;
        if (obs::trace_enabled()) {
          obs::Tracer::global().async_end("share", "share", span, sim_.now());
        }
      }
    } else {
      sim_.schedule_at(ready_at,
                       [this, ch, span, b = std::move(bytes)]() mutable {
        if (!ch->try_send(std::move(b))) {
          ++stats_.shares_dropped_at_channel;
          if (obs::trace_enabled()) {
            obs::Tracer::global().async_end("share", "share", span,
                                            sim_.now());
          }
        }
      });
    }
  }
}

void Sender::resend(std::uint64_t id, std::uint8_t generation,
                    std::span<const std::uint8_t> payload, int k,
                    std::span<const int> channels) {
  const int m = static_cast<int>(channels.size());
  MCSS_ENSURE(generation != 0, "retransmissions must bump the generation");
  MCSS_ENSURE(k >= 1 && k <= m, "resend needs a valid (k, m)");

  ++stats_.packets_retransmitted;
  const net::SimTime now = sim_.now();
  if (obs::trace_enabled()) {
    obs::Tracer::global().instant("retransmit", "sender", now, id, "generation",
                                  static_cast<std::uint64_t>(generation), "m",
                                  static_cast<std::uint64_t>(m));
  }

  // Fresh randomness: a new polynomial per retransmission, never a
  // replay of the original share bytes (see wire.hpp on generations).
  std::vector<sss::Share> shares;
  {
    obs::ScopeTimer split_timer(split_hist());
    shares = sss::split(payload, k, m, rng_);
  }
  for (int j = 0; j < m; ++j) {
    ShareFrame frame;
    frame.packet_id = id;
    frame.k = static_cast<std::uint8_t>(k);
    frame.share_index = shares[static_cast<std::size_t>(j)].index;
    frame.generation = generation;
    frame.payload = shares[static_cast<std::size_t>(j)].data;
    auto bytes = encode(frame, config_.auth_key ? &*config_.auth_key : nullptr);
    const auto ch_index =
        static_cast<std::size_t>(channels[static_cast<std::size_t>(j)]);
    MCSS_ENSURE(ch_index < channels_.size(), "resend channel out of range");
    ++stats_.shares_retransmitted;
    if (!channels_[ch_index]->try_send(std::move(bytes))) {
      ++stats_.shares_dropped_at_channel;
    }
  }
}

}  // namespace mcss::proto
