// ReMICSS sending side.
//
// Accepts source packets (the "sequence of source symbols"), consults its
// ShareScheduler for a (k, M) decision per packet, splits the packet into
// m = |M| Shamir shares, and transmits exactly one share per channel of M.
// Best-effort end to end: a share the channel cannot take is simply lost
// (the threshold scheme absorbs up to m - k losses; Section V).
//
// Pacing. The sender is event-driven: it pumps its queue whenever a packet
// arrives or a channel becomes writable, and — when an endpoint CPU model
// is attached — no faster than the host can split packets, which is what
// caps throughput in the high-bandwidth experiments (Figures 6-7).
#pragma once

#include <concepts>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/siphash.hpp"
#include "net/channel_port.hpp"
#include "net/cpu_model.hpp"
#include "net/simulator.hpp"
#include "protocol/scheduler.hpp"
#include "util/rng.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::proto {

struct SenderConfig {
  /// Source packets buffered while waiting for writable channels; send()
  /// returns false (backpressure) beyond this.
  std::size_t max_queue_packets = 256;
  /// When set, every share frame carries a SipHash-2-4 tag under this key
  /// (authenticated mode; pair with the same key on the receiver).
  std::optional<crypto::SipHashKey> auth_key;
};

struct SenderStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_rejected = 0;  ///< backpressure at the send queue
  std::uint64_t packets_sent = 0;      ///< split + shares handed to channels
  std::uint64_t shares_sent = 0;
  std::uint64_t shares_dropped_at_channel = 0;  ///< try_send refused
  std::uint64_t packets_retransmitted = 0;  ///< resend() calls (ARQ layer)
  std::uint64_t shares_retransmitted = 0;   ///< shares sent by resend()
  double sum_k = 0.0;  ///< achieved kappa = sum_k / packets_sent
  double sum_m = 0.0;  ///< achieved mu    = sum_m / packets_sent

  [[nodiscard]] double achieved_kappa() const noexcept {
    return packets_sent ? sum_k / static_cast<double>(packets_sent) : 0.0;
  }
  [[nodiscard]] double achieved_mu() const noexcept {
    return packets_sent ? sum_m / static_cast<double>(packets_sent) : 0.0;
  }
};

/// Add these totals into the registry under mcss_sender_* names
/// (counters for the event counts, gauges for achieved kappa/mu).
void publish(obs::Registry& registry, const SenderStats& stats);

class Sender {
 public:
  /// The sender owns the TX side of the given channels: it installs their
  /// writability callbacks. `cpu` may be null (infinite processing).
  Sender(net::Simulator& sim, std::vector<net::ChannelPort*> channels,
         std::unique_ptr<ShareScheduler> scheduler, Rng rng,
         net::CpuModel* cpu = nullptr, SenderConfig config = {});

  /// Convenience: accept a vector of any concrete port type (the sim
  /// call sites hold std::vector<net::SimChannel*>, the routed ones
  /// std::vector<topo::RoutedChannel*>).
  template <std::derived_from<net::ChannelPort> Ch>
  Sender(net::Simulator& sim, const std::vector<Ch*>& channels,
         std::unique_ptr<ShareScheduler> scheduler, Rng rng,
         net::CpuModel* cpu = nullptr, SenderConfig config = {})
      : Sender(sim,
               std::vector<net::ChannelPort*>(channels.begin(), channels.end()),
               std::move(scheduler), rng, cpu, config) {}

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  /// Offer one source packet. Returns false when the send queue is full.
  bool send(std::vector<std::uint8_t> payload);

  /// Swap the share scheduler mid-session (adaptive control). Queued
  /// packets simply use the new policy; per-packet state is self-contained.
  void set_scheduler(std::unique_ptr<ShareScheduler> scheduler);

  /// Observer for every dispatched packet: (id, k, payload, channel
  /// indices carrying one share each). The reliability layer uses it to
  /// record outstanding packets and their initial channel exposure.
  using DispatchFn =
      std::function<void(std::uint64_t id, int k,
                         std::span<const std::uint8_t> payload,
                         std::span<const int> channels)>;
  void set_dispatch_hook(DispatchFn fn) { dispatch_hook_ = std::move(fn); }

  /// ARQ retransmission path: re-split `payload` with FRESH randomness
  /// into |channels| shares under threshold k, tag the frames with
  /// `generation` (must be nonzero), and hand one share to each listed
  /// channel. Bypasses the scheduler, the send queue, and the CPU pacing
  /// model — retransmit volume is bounded by the RetransmitManager's
  /// budget, and the decision of *when* and *where* belongs to the
  /// reliability layer (src/feedback), not the share scheduler.
  void resend(std::uint64_t id, std::uint8_t generation,
              std::span<const std::uint8_t> payload, int k,
              std::span<const int> channels);

  [[nodiscard]] const SenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queued_packets() const noexcept { return queue_.size(); }

  /// Publish this sender's stats plus its scheduler's (if any) into the
  /// registry. End-of-run hook; counters aggregate across calls.
  void publish_metrics(obs::Registry& registry) const;

 private:
  void pump();
  void dispatch(std::vector<std::uint8_t> payload, const ShareDecision& decision);

  net::Simulator& sim_;
  std::vector<net::ChannelPort*> channels_;
  std::unique_ptr<ShareScheduler> scheduler_;
  Rng rng_;
  net::CpuModel* cpu_;
  SenderConfig config_;

  std::deque<std::vector<std::uint8_t>> queue_;
  std::uint64_t next_packet_id_ = 1;
  bool pump_scheduled_ = false;
  SenderStats stats_;
  DispatchFn dispatch_hook_;
};

}  // namespace mcss::proto
