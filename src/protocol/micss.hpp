// MICSS baseline: reliable, maximum-privacy multichannel secrecy.
//
// The protocol ReMICSS was redesigned from (Section V). Characteristics
// reproduced here:
//   - perfect (XOR n-of-n) secret sharing: kappa = mu = n always, the one
//     configuration MICSS offers for a given channel set,
//   - reliable share transport: every share is acknowledged on a reverse
//     channel and retransmitted after an RTO until acknowledged — losing
//     ANY share stalls the packet and consumes extra channel capacity,
//   - a bounded in-flight window: when it fills (because some share of an
//     old packet keeps being lost), the sender blocks.
//
// The ablation bench contrasts this with ReMICSS's best-effort threshold
// shares, which tolerate m - k losses without retransmission.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/sim_channel.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace mcss::proto {

/// Share acknowledgment frame (reverse direction), 13 bytes.
struct AckFrame {
  std::uint64_t packet_id = 0;
  std::uint8_t share_index = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode_ack(const AckFrame& ack);
[[nodiscard]] std::optional<AckFrame> decode_ack(
    std::span<const std::uint8_t> buf);

struct MicssConfig {
  net::SimTime rto = net::from_millis(50);   ///< retransmission timeout
  std::size_t window_packets = 64;           ///< max unacknowledged packets
};

struct MicssSenderStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_rejected = 0;  ///< window full (stalled)
  std::uint64_t packets_completed = 0; ///< fully acknowledged
  std::uint64_t shares_sent = 0;       ///< first transmissions
  std::uint64_t retransmissions = 0;
};

/// Add these totals into the registry under mcss_micss_sender_* names.
void publish(obs::Registry& registry, const MicssSenderStats& stats);

class MicssSender {
 public:
  /// `data_out[i]` carries share i+1; `ack_in[i]` is the matching reverse
  /// channel (this sender attaches itself as their receiver).
  MicssSender(net::Simulator& sim, std::vector<net::SimChannel*> data_out,
              std::vector<net::SimChannel*> ack_in, Rng rng,
              MicssConfig config = {});

  MicssSender(const MicssSender&) = delete;
  MicssSender& operator=(const MicssSender&) = delete;

  /// Offer a packet; false when the reliable window is full.
  bool send(std::vector<std::uint8_t> payload);

  [[nodiscard]] const MicssSenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return pending_.size(); }

 private:
  struct PendingPacket {
    std::vector<std::vector<std::uint8_t>> frames;  // encoded, per share
    std::vector<bool> acked;
    int unacked = 0;
  };

  void on_ack_frame(std::vector<std::uint8_t> raw);
  void arm_retransmit(std::uint64_t id);

  net::Simulator& sim_;
  std::vector<net::SimChannel*> data_out_;
  Rng rng_;
  MicssConfig config_;
  std::map<std::uint64_t, PendingPacket> pending_;
  std::uint64_t next_packet_id_ = 1;
  MicssSenderStats stats_;
};

struct MicssReceiverStats {
  std::uint64_t shares_received = 0;
  std::uint64_t duplicate_shares = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t acks_sent = 0;
};

/// Add these totals into the registry under mcss_micss_receiver_* names.
void publish(obs::Registry& registry, const MicssReceiverStats& stats);

class MicssReceiver {
 public:
  using DeliverFn = std::function<void(std::uint64_t, std::vector<std::uint8_t>)>;

  /// `data_in[i]` delivers share i+1; `ack_out[i]` is the reverse channel
  /// acknowledgments leave on.
  MicssReceiver(net::Simulator& sim, std::vector<net::SimChannel*> data_in,
                std::vector<net::SimChannel*> ack_out);

  MicssReceiver(const MicssReceiver&) = delete;
  MicssReceiver& operator=(const MicssReceiver&) = delete;

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  [[nodiscard]] const MicssReceiverStats& stats() const noexcept { return stats_; }

 private:
  struct Partial {
    std::vector<std::optional<std::vector<std::uint8_t>>> shares;
    std::size_t have = 0;
  };

  void on_data_frame(std::vector<std::uint8_t> raw);
  void send_ack(std::uint64_t id, std::uint8_t index);

  net::Simulator& sim_;
  std::vector<net::SimChannel*> ack_out_;
  std::size_t n_;
  DeliverFn deliver_;
  std::map<std::uint64_t, Partial> partials_;
  std::unordered_set<std::uint64_t> completed_;
  std::deque<std::uint64_t> completed_order_;
  MicssReceiverStats stats_;
};

}  // namespace mcss::proto
