// ReMICSS share wire format.
//
// Each share travels as one frame:
//
//   offset  size  field
//        0     2  magic 0x524D ("RM")
//        2     1  version (1)
//        3     1  threshold k required to reconstruct the packet
//        4     8  packet id (little endian) — sender-assigned, increasing
//       12     1  share index (the GF(256) abscissa, 1..255)
//       13     1  flags (bit 0: authenticated, bit 1: generation byte,
//                 bit 2: connection id)
//       14     2  payload length (little endian)
//       16     1  generation (retransmission count)  [flag bit 1 only]
//       16+g    4  connection id (little endian)      [flag bit 2 only]
//       16+g+c   -  payload (the share bytes; same length as the packet)
//       ...tail  8  SipHash-2-4 tag over all preceding bytes [flag bit 0]
//
// (g is 1 when flag bit 1 is set, else 0; c is 4 when flag bit 2 is set,
// else 0. Generation 0 frames omit the generation byte and connection 0
// frames omit the connection id, so the single-flow original-transmission
// encoding is byte-identical to frames from before the reliability and
// session layers existed.)
//
// The connection id multiplexes many independent ReMICSS flows over one
// shared channel set (the session layer's flow table key). Packet ids,
// generations, and acks are all scoped WITHIN a connection: shares of
// equal packet id but different connection ids belong to different
// secrets and must never meet in one reassembly buffer — the demux
// happens before the receiver, keyed on this field.
//
// The generation counts how many times the sender has RE-SPLIT this
// packet: shares of different generations come from different random
// polynomials and must never be combined (k shares of mixed generations
// reconstruct garbage), so the receiver keeps only the newest generation
// of a partial. Retransmissions always carry fresh share randomness —
// resending the original share bytes would hand an eavesdropper the
// exact symbol it already missed.
//
// The header carries k and the packet id because a best-effort receiver
// sees shares of many packets interleaved, reordered, and duplicated
// (Section V: "the receiver will typically be waiting for shares of many
// packets at once"). Decoding is strict: any malformed frame is rejected
// as a whole. Reads that may carry several back-to-back frames (the live
// transport coalesces small frames into one datagram) parse them one at
// a time with decode_prefix().
//
// The authenticated mode extends the paper's passive threat model to
// active (Byzantine) channels: without it, a single flipped bit in any
// share silently corrupts the whole reconstructed packet.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/siphash.hpp"

namespace mcss::proto {

inline constexpr std::uint16_t kMagic = 0x524D;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTagSize = 8;
inline constexpr std::size_t kMaxPayload = 0xFFFF;
inline constexpr std::uint8_t kFlagAuthenticated = 0x01;
inline constexpr std::uint8_t kFlagGeneration = 0x02;
inline constexpr std::uint8_t kFlagConnectionId = 0x04;
inline constexpr std::size_t kConnectionIdSize = 4;

/// Parsed header + payload of one share frame.
struct ShareFrame {
  std::uint64_t packet_id = 0;
  std::uint8_t k = 1;
  std::uint8_t share_index = 1;
  /// Re-split count: 0 = original transmission, n = n-th retransmission.
  /// Shares only combine within one generation (see header comment).
  std::uint8_t generation = 0;
  /// Flow this share belongs to; 0 = the single-flow (pre-session)
  /// encoding, which omits the field on the wire.
  std::uint32_t connection_id = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const ShareFrame&, const ShareFrame&) = default;
};

/// Zero-copy view of one decoded share frame: all header fields plus a
/// span into the caller's buffer where the payload sits. This is the
/// hot-path decode result — the session demux routes on connection_id
/// and the receiver copies the payload bytes straight into its partial
/// storage, so no std::vector ever materializes per share.
struct FrameView {
  std::uint64_t packet_id = 0;
  std::uint8_t k = 1;
  std::uint8_t share_index = 1;
  std::uint8_t generation = 0;
  std::uint32_t connection_id = 0;
  std::span<const std::uint8_t> payload;
};

/// Serialize a share frame. Throws PreconditionError when the payload
/// exceeds kMaxPayload, k is 0, or the share index is 0. With a key, the
/// frame is tagged (authenticated mode).
[[nodiscard]] std::vector<std::uint8_t> encode(
    const ShareFrame& frame, const crypto::SipHashKey* key = nullptr);

/// Exact on-wire size of `frame` as encode() would produce it.
[[nodiscard]] std::size_t encoded_size(const ShareFrame& frame,
                                       bool keyed) noexcept;

/// Serialize straight into caller-owned storage (a FramePool slot on the
/// live transport's fast path — no per-share vector). Preconditions match
/// encode(); additionally `dst` must hold encoded_size() bytes. Returns
/// the bytes written.
std::size_t encode_into(const ShareFrame& frame, std::span<std::uint8_t> dst,
                        const crypto::SipHashKey* key = nullptr);

/// Header fields of a frame whose payload the caller writes in place —
/// the sender's split-into-slot path, where sss::split_into fills the
/// payload region directly and no ShareFrame (or its payload vector)
/// ever exists.
struct FrameMeta {
  std::uint64_t packet_id = 0;
  std::uint8_t k = 1;
  std::uint8_t share_index = 1;
  std::uint8_t generation = 0;
  std::uint32_t connection_id = 0;
};

/// On-wire size of a frame with `payload_len` payload bytes.
[[nodiscard]] std::size_t encoded_size(std::size_t payload_len,
                                       std::uint8_t generation, bool keyed,
                                       std::uint32_t connection_id = 0) noexcept;

/// Write the header (and generation byte) of a frame into `dst` and
/// return the offset where the caller must place `payload_len` payload
/// bytes. `dst` must hold the full encoded_size(); in keyed mode the
/// caller finishes the frame with seal_frame() AFTER the payload is in
/// place — the tag covers it.
std::size_t encode_header_into(const FrameMeta& meta, std::size_t payload_len,
                               std::span<std::uint8_t> dst, bool keyed);

/// Compute the SipHash tag over everything before the trailing kTagSize
/// bytes of `dst` (the complete frame) and write it there.
void seal_frame(std::span<std::uint8_t> dst, const crypto::SipHashKey& key);

enum class DecodeStatus {
  Ok,
  Malformed,   ///< bad magic/version/lengths/reserved fields
  AuthFailed,  ///< tag missing, tag invalid, or unauthenticated frame
               ///< received while a key is required
};

/// Parse a frame. Returns nullopt on any malformation (and on
/// authentication failure when a key is given); the reason is reported
/// through `status` when non-null. A receiver configured with a key
/// REJECTS unauthenticated frames — downgrade attempts are failures.
/// Strict: the buffer must hold exactly one frame (trailing bytes are a
/// malformation). Delegates to decode_prefix.
[[nodiscard]] std::optional<ShareFrame> decode(
    std::span<const std::uint8_t> buf, const crypto::SipHashKey* key = nullptr,
    DecodeStatus* status = nullptr);

/// Parse ONE frame from the head of `buf` and report how many bytes it
/// occupied through `consumed`, leaving any trailing bytes (the next
/// frame, or junk) for the caller. This is the receive-path entry point
/// for transports whose reads can coalesce frames (a recv() that returns
/// two back-to-back datagram payloads, or a batched live-transport
/// datagram): strict decode() would reject the whole buffer and drop
/// every frame in it.
///
/// On success `*consumed` is the full frame size (header + payload +
/// tag). On failure `*consumed` is 0 — a malformed head gives no safe
/// resynchronization point, so the caller should discard the buffer (and
/// count it; see DecodeStatus). Authentication semantics match decode().
[[nodiscard]] std::optional<ShareFrame> decode_prefix(
    std::span<const std::uint8_t> buf, std::size_t* consumed,
    const crypto::SipHashKey* key = nullptr, DecodeStatus* status = nullptr);

/// Zero-copy decode_prefix: identical framing/authentication semantics,
/// but the result's payload is a span INTO `buf` (valid only while `buf`
/// is) instead of an owned vector. This is the session/receiver hot
/// path — one parse, no allocation, demux on connection_id, and the
/// consumer copies only the bytes it retains.
[[nodiscard]] std::optional<FrameView> decode_prefix_view(
    std::span<const std::uint8_t> buf, std::size_t* consumed,
    const crypto::SipHashKey* key = nullptr, DecodeStatus* status = nullptr);

/// Strict zero-copy decode: exactly one frame in `buf` (trailing bytes
/// are a malformation), payload viewed in place.
[[nodiscard]] std::optional<FrameView> decode_view(
    std::span<const std::uint8_t> buf, const crypto::SipHashKey* key = nullptr,
    DecodeStatus* status = nullptr);

/// Framing-only prefix scan: validates the fixed header (magic, version,
/// k, index, flags, lengths) at the head of `buf` and returns the total
/// frame extent (header + extension + payload + tag) WITHOUT copying the
/// payload or checking authentication. This is the datagram-split
/// primitive for the batched live transport: splitting a coalesced
/// datagram must not allocate, and auth stays the keyed Receiver's job.
/// nullopt when the head is not a complete well-formed frame.
[[nodiscard]] std::optional<std::size_t> frame_extent(
    std::span<const std::uint8_t> buf) noexcept;

}  // namespace mcss::proto
