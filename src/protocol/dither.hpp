// Deterministic (kappa, mu) dithering.
//
// Secret sharing needs integer parameters, but the protocol targets
// real-valued averages (Section III-C: parameters "vary from symbol to
// symbol so that the average ... may be real numbers"). KappaMuDither
// emits one integer pair (k, m) per symbol with 1 <= k <= m guaranteed
// per symbol and long-run averages exactly (kappa, mu).
//
// Construction: the target point is expressed as a mixture of (at most)
// three corner points of its unit cell — the same chain used in the
// Theorem 5 proof, which keeps k <= m at every corner — and corners are
// emitted by largest-remainder selection, a deterministic low-discrepancy
// dither with O(1) state. After N symbols each corner has been used
// floor/ceil(p_i * N) times, so the averages converge as O(1/N).
#pragma once

#include <array>
#include <cstdint>

#include "util/ensure.hpp"

namespace mcss::proto {

/// One integer parameter choice for a symbol.
struct KmPair {
  int k = 1;
  int m = 1;
};

class KappaMuDither {
 public:
  /// Requires 1 <= kappa <= mu <= n_max.
  KappaMuDither(double kappa, double mu, int n_max);

  /// Parameters for the next symbol.
  [[nodiscard]] KmPair next() noexcept;

  [[nodiscard]] double kappa() const noexcept { return kappa_; }
  [[nodiscard]] double mu() const noexcept { return mu_; }

 private:
  struct Corner {
    KmPair pair;
    double target = 0.0;  // long-run proportion
    std::int64_t used = 0;
  };

  double kappa_;
  double mu_;
  std::array<Corner, 3> corners_{};
  int num_corners_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace mcss::proto
