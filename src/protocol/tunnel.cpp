#include "protocol/tunnel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/ensure.hpp"

namespace mcss::proto {

namespace {
constexpr std::uint8_t kTunnelVersion = 1;
constexpr std::size_t kTunnelHeader = 1 + 1 + 4 + 4 + 4 + 2;
}  // namespace

std::vector<std::uint8_t> encode_datagram(const IpDatagram& dg,
                                          std::uint32_t seq) {
  MCSS_ENSURE(dg.payload.size() <= 0xFFFF, "datagram payload too large");
  std::vector<std::uint8_t> out;
  out.reserve(kTunnelHeader + dg.payload.size());
  out.push_back(kTunnelVersion);
  out.push_back(dg.protocol);
  out.insert(out.end(), dg.src.begin(), dg.src.end());
  out.insert(out.end(), dg.dst.begin(), dg.dst.end());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(dg.payload.size() & 0xFF));
  out.push_back(static_cast<std::uint8_t>(dg.payload.size() >> 8));
  out.insert(out.end(), dg.payload.begin(), dg.payload.end());
  return out;
}

std::optional<DecodedDatagram> decode_datagram(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kTunnelHeader) return std::nullopt;
  if (buf[0] != kTunnelVersion) return std::nullopt;
  DecodedDatagram out;
  out.datagram.protocol = buf[1];
  std::copy_n(buf.begin() + 2, 4, out.datagram.src.begin());
  std::copy_n(buf.begin() + 6, 4, out.datagram.dst.begin());
  out.seq = 0;
  for (int i = 3; i >= 0; --i) {
    out.seq = (out.seq << 8) | buf[10 + static_cast<std::size_t>(i)];
  }
  const std::size_t len = static_cast<std::size_t>(buf[14]) |
                          (static_cast<std::size_t>(buf[15]) << 8);
  if (buf.size() != kTunnelHeader + len) return std::nullopt;
  out.datagram.payload.assign(buf.begin() + kTunnelHeader, buf.end());
  return out;
}

// ---------------------------------------------------------------- ingress

bool TunnelIngress::send(const IpDatagram& datagram) {
  const FlowKey key{datagram.src, datagram.dst, datagram.protocol};
  std::uint32_t& seq = next_seq_[key];
  if (!sender_.send(encode_datagram(datagram, seq))) {
    ++dropped_;
    return false;  // the sequence number is NOT consumed on drop
  }
  ++seq;
  ++sent_;
  return true;
}

// ---------------------------------------------------------------- egress

TunnelEgress::TunnelEgress(net::Simulator& sim, EgressConfig config,
                           DeliverFn deliver)
    : sim_(sim), config_(std::move(config)), deliver_(std::move(deliver)) {
  MCSS_ENSURE(deliver_ != nullptr, "egress needs a delivery callback");
  MCSS_ENSURE(config_.gap_timeout > 0, "gap timeout must be positive");
  MCSS_ENSURE(config_.max_buffered > 0, "reorder buffer must be positive");
}

std::function<void(std::uint64_t, std::vector<std::uint8_t>)>
TunnelEgress::receiver_hook() {
  return [this](std::uint64_t, std::vector<std::uint8_t> packet) {
    on_packet(packet);
  };
}

bool TunnelEgress::is_ordered(std::uint8_t protocol) const noexcept {
  return std::find(config_.ordered_protocols.begin(),
                   config_.ordered_protocols.end(),
                   protocol) != config_.ordered_protocols.end();
}

std::size_t TunnelEgress::buffered() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, flow] : flows_) total += flow.pending.size();
  return total;
}

void TunnelEgress::on_packet(std::span<const std::uint8_t> packet) {
  auto decoded = decode_datagram(packet);
  if (!decoded) {
    ++stats_.malformed;
    return;
  }
  IpDatagram& dg = decoded->datagram;
  if (!is_ordered(dg.protocol)) {
    ++stats_.datagrams_delivered;
    deliver_(dg);
    return;
  }

  const FlowKey key{dg.src, dg.dst, dg.protocol};
  FlowState& flow = flows_[key];

  if (seq_before(decoded->seq, flow.next_seq)) {
    ++stats_.duplicates_dropped;  // late duplicate of something released
    return;
  }
  if (flow.pending.contains(decoded->seq)) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (decoded->seq != flow.next_seq) ++stats_.reordered_held;
  flow.pending.emplace(decoded->seq, std::move(dg));

  release_in_order(key, flow);

  if (!flow.pending.empty()) {
    // Overflow policy: skip the gap rather than buffer unboundedly.
    if (flow.pending.size() > config_.max_buffered) {
      ++stats_.gaps_skipped;
      flow.next_seq = flow.pending.begin()->first;
      release_in_order(key, flow);
    }
    if (!flow.pending.empty()) arm_gap_timer(key, flow);
  }
}

void TunnelEgress::prime_flow(const FlowKey& key, std::uint32_t next_seq) {
  FlowState& flow = flows_[key];
  flow.next_seq = next_seq;
  release_in_order(key, flow);
}

void TunnelEgress::release_in_order(const FlowKey& key, FlowState& flow) {
  (void)key;
  while (!flow.pending.empty() &&
         flow.pending.begin()->first == flow.next_seq) {
    ++stats_.datagrams_delivered;
    deliver_(flow.pending.begin()->second);
    flow.pending.erase(flow.pending.begin());
    ++flow.next_seq;
  }
  // Any progress (or new arrival) invalidates outstanding gap timers.
  ++flow.generation;
}

void TunnelEgress::arm_gap_timer(const FlowKey& key, FlowState& flow) {
  const std::uint64_t generation = flow.generation;
  sim_.schedule_in(config_.gap_timeout, [this, key, generation] {
    const auto it = flows_.find(key);
    if (it == flows_.end()) return;
    FlowState& f = it->second;
    if (f.generation != generation || f.pending.empty()) return;
    // The gap did not fill in time: give up on the missing datagrams.
    ++stats_.gaps_skipped;
    f.next_seq = f.pending.begin()->first;
    release_in_order(key, f);
    if (!f.pending.empty()) arm_gap_timer(key, f);
  });
}

void publish(obs::Registry& registry, const EgressStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_egress_datagrams_delivered", stats.datagrams_delivered);
  add("mcss_egress_malformed", stats.malformed);
  add("mcss_egress_reordered_held", stats.reordered_held);
  add("mcss_egress_gaps_skipped", stats.gaps_skipped);
  add("mcss_egress_duplicates_dropped", stats.duplicates_dropped);
}

}  // namespace mcss::proto
