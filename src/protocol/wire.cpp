#include "protocol/wire.hpp"

#include <cstring>

#include "util/ensure.hpp"

namespace mcss::proto {

namespace {

[[nodiscard]] std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

[[nodiscard]] std::uint64_t get64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  }
  return v;
}

template <typename T>
std::optional<T> fail(DecodeStatus* status, DecodeStatus why) {
  if (status != nullptr) *status = why;
  return std::nullopt;
}

}  // namespace

std::size_t encoded_size(const ShareFrame& frame, bool keyed) noexcept {
  return encoded_size(frame.payload.size(), frame.generation, keyed,
                      frame.connection_id);
}

std::size_t encoded_size(std::size_t payload_len, std::uint8_t generation,
                         bool keyed, std::uint32_t connection_id) noexcept {
  return kHeaderSize + (generation != 0 ? 1 : 0) +
         (connection_id != 0 ? kConnectionIdSize : 0) + payload_len +
         (keyed ? kTagSize : 0);
}

std::size_t encode_header_into(const FrameMeta& meta, std::size_t payload_len,
                               std::span<std::uint8_t> dst, bool keyed) {
  MCSS_ENSURE(payload_len <= kMaxPayload, "share payload too large");
  MCSS_ENSURE(meta.k >= 1, "threshold must be at least 1");
  MCSS_ENSURE(meta.share_index >= 1, "share index 0 is reserved");
  MCSS_ENSURE(dst.size() >= encoded_size(payload_len, meta.generation, keyed,
                                         meta.connection_id),
              "encode destination too small");

  std::uint8_t flags = keyed ? kFlagAuthenticated : 0;
  // Generation 0 omits the extension byte: original transmissions stay
  // byte-identical to the pre-reliability encoding. Connection 0 (the
  // single-flow encoding) likewise omits the connection id.
  if (meta.generation != 0) flags |= kFlagGeneration;
  if (meta.connection_id != 0) flags |= kFlagConnectionId;

  std::uint8_t* p = dst.data();
  p[0] = static_cast<std::uint8_t>(kMagic & 0xFF);
  p[1] = static_cast<std::uint8_t>(kMagic >> 8);
  p[2] = kVersion;
  p[3] = meta.k;
  for (int i = 0; i < 8; ++i) {
    p[4 + i] = static_cast<std::uint8_t>(meta.packet_id >> (8 * i));
  }
  p[12] = meta.share_index;
  p[13] = flags;
  p[14] = static_cast<std::uint8_t>(payload_len & 0xFF);
  p[15] = static_cast<std::uint8_t>(payload_len >> 8);
  std::size_t at = kHeaderSize;
  if (meta.generation != 0) p[at++] = meta.generation;
  if (meta.connection_id != 0) {
    for (int i = 0; i < 4; ++i) {
      p[at++] = static_cast<std::uint8_t>(meta.connection_id >> (8 * i));
    }
  }
  return at;
}

void seal_frame(std::span<std::uint8_t> dst, const crypto::SipHashKey& key) {
  MCSS_ENSURE(dst.size() >= kHeaderSize + kTagSize,
              "seal_frame needs a full keyed frame");
  const std::size_t at = dst.size() - kTagSize;
  const auto tag = crypto::siphash24_tag(dst.first(at), key);
  std::memcpy(dst.data() + at, tag.data(), tag.size());
}

std::size_t encode_into(const ShareFrame& frame, std::span<std::uint8_t> dst,
                        const crypto::SipHashKey* key) {
  const FrameMeta meta{frame.packet_id, frame.k, frame.share_index,
                       frame.generation, frame.connection_id};
  const bool keyed = key != nullptr;
  std::size_t at = encode_header_into(meta, frame.payload.size(), dst, keyed);
  if (!frame.payload.empty()) {
    std::memcpy(dst.data() + at, frame.payload.data(), frame.payload.size());
  }
  at += frame.payload.size();
  if (keyed) {
    seal_frame(dst.first(at + kTagSize), *key);
    at += kTagSize;
  }
  return at;
}

std::vector<std::uint8_t> encode(const ShareFrame& frame,
                                 const crypto::SipHashKey* key) {
  std::vector<std::uint8_t> out(encoded_size(frame, key != nullptr));
  encode_into(frame, out, key);
  return out;
}

std::optional<std::size_t> frame_extent(
    std::span<const std::uint8_t> buf) noexcept {
  if (buf.size() < kHeaderSize) return std::nullopt;
  if (get16(buf, 0) != kMagic) return std::nullopt;
  if (buf[2] != kVersion) return std::nullopt;
  if (buf[3] == 0 || buf[12] == 0) return std::nullopt;  // k, share index
  const std::uint8_t flags = buf[13];
  if ((flags & ~(kFlagAuthenticated | kFlagGeneration | kFlagConnectionId)) !=
      0) {
    return std::nullopt;  // unknown flag bits
  }
  const std::size_t ext = (flags & kFlagGeneration) != 0 ? 1 : 0;
  const std::size_t cid =
      (flags & kFlagConnectionId) != 0 ? kConnectionIdSize : 0;
  const std::size_t expected =
      kHeaderSize + ext + cid + get16(buf, 14) +
      ((flags & kFlagAuthenticated) != 0 ? kTagSize : 0);
  if (buf.size() < expected) return std::nullopt;
  // Canonical encoding: generation 0 omits the extension byte and
  // connection 0 omits the connection id.
  if (ext != 0 && buf[kHeaderSize] == 0) return std::nullopt;
  if (cid != 0) {
    std::uint32_t id = 0;
    for (int i = 3; i >= 0; --i) {
      id = (id << 8) | buf[kHeaderSize + ext + static_cast<std::size_t>(i)];
    }
    if (id == 0) return std::nullopt;
  }
  return expected;
}

std::optional<FrameView> decode_prefix_view(std::span<const std::uint8_t> buf,
                                            std::size_t* consumed,
                                            const crypto::SipHashKey* key,
                                            DecodeStatus* status) {
  MCSS_ENSURE(consumed != nullptr, "decode_prefix needs a consumed out-param");
  *consumed = 0;
  if (status != nullptr) *status = DecodeStatus::Ok;
  // Framing (magic, version, k/index, flags, lengths, canonical
  // generation/connection) is frame_extent's single source of truth;
  // this function adds authentication and field extraction on top.
  const auto extent = frame_extent(buf);
  if (!extent) return fail<FrameView>(status, DecodeStatus::Malformed);

  FrameView view;
  view.k = buf[3];
  view.packet_id = get64(buf, 4);
  view.share_index = buf[12];
  const std::uint8_t flags = buf[13];
  const bool authenticated = (flags & kFlagAuthenticated) != 0;
  // Extension bytes between header and payload (retransmissions carry a
  // generation; multiplexed flows carry a connection id).
  const std::size_t ext = (flags & kFlagGeneration) != 0 ? 1 : 0;
  const std::size_t cid =
      (flags & kFlagConnectionId) != 0 ? kConnectionIdSize : 0;
  const std::size_t len = get16(buf, 14);
  const std::size_t body = kHeaderSize + ext + cid + len;
  if (ext != 0) view.generation = buf[kHeaderSize];
  if (cid != 0) {
    std::uint32_t id = 0;
    for (int i = 3; i >= 0; --i) {
      id = (id << 8) | buf[kHeaderSize + ext + static_cast<std::size_t>(i)];
    }
    view.connection_id = id;
  }

  if (key != nullptr) {
    // A keyed receiver refuses unauthenticated frames outright.
    if (!authenticated) return fail<FrameView>(status, DecodeStatus::AuthFailed);
    const auto computed = crypto::siphash24_tag(buf.first(body), *key);
    if (!crypto::tag_equal(computed, buf.subspan(body, kTagSize))) {
      return fail<FrameView>(status, DecodeStatus::AuthFailed);
    }
  } else if (authenticated) {
    // Tag present but no key to check it: parse the frame, ignore the tag.
    // (Useful for passive observation tooling; the keyed path is what the
    // protocol itself uses.)
  }

  view.payload = buf.subspan(kHeaderSize + ext + cid, len);
  *consumed = *extent;
  return view;
}

std::optional<FrameView> decode_view(std::span<const std::uint8_t> buf,
                                     const crypto::SipHashKey* key,
                                     DecodeStatus* status) {
  std::size_t consumed = 0;
  auto view = decode_prefix_view(buf, &consumed, key, status);
  if (view && consumed != buf.size()) {
    // Strict mode: trailing bytes after the one frame are a malformation.
    return fail<FrameView>(status, DecodeStatus::Malformed);
  }
  return view;
}

std::optional<ShareFrame> decode_prefix(std::span<const std::uint8_t> buf,
                                        std::size_t* consumed,
                                        const crypto::SipHashKey* key,
                                        DecodeStatus* status) {
  const auto view = decode_prefix_view(buf, consumed, key, status);
  if (!view) return std::nullopt;
  ShareFrame frame;
  frame.packet_id = view->packet_id;
  frame.k = view->k;
  frame.share_index = view->share_index;
  frame.generation = view->generation;
  frame.connection_id = view->connection_id;
  frame.payload.assign(view->payload.begin(), view->payload.end());
  return frame;
}

std::optional<ShareFrame> decode(std::span<const std::uint8_t> buf,
                                 const crypto::SipHashKey* key,
                                 DecodeStatus* status) {
  std::size_t consumed = 0;
  auto frame = decode_prefix(buf, &consumed, key, status);
  if (frame && consumed != buf.size()) {
    // Strict mode: trailing bytes after the one frame are a malformation.
    return fail<ShareFrame>(status, DecodeStatus::Malformed);
  }
  return frame;
}

}  // namespace mcss::proto
