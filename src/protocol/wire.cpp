#include "protocol/wire.hpp"

#include "util/ensure.hpp"

namespace mcss::proto {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

[[nodiscard]] std::uint64_t get64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  }
  return v;
}

std::optional<ShareFrame> fail(DecodeStatus* status, DecodeStatus why) {
  if (status != nullptr) *status = why;
  return std::nullopt;
}

}  // namespace

std::vector<std::uint8_t> encode(const ShareFrame& frame,
                                 const crypto::SipHashKey* key) {
  MCSS_ENSURE(frame.payload.size() <= kMaxPayload, "share payload too large");
  MCSS_ENSURE(frame.k >= 1, "threshold must be at least 1");
  MCSS_ENSURE(frame.share_index >= 1, "share index 0 is reserved");

  std::uint8_t flags = key != nullptr ? kFlagAuthenticated : 0;
  // Generation 0 omits the extension byte: original transmissions stay
  // byte-identical to the pre-reliability encoding.
  if (frame.generation != 0) flags |= kFlagGeneration;

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + 1 + frame.payload.size() + (key ? kTagSize : 0));
  put16(out, kMagic);
  out.push_back(kVersion);
  out.push_back(frame.k);
  put64(out, frame.packet_id);
  out.push_back(frame.share_index);
  out.push_back(flags);
  put16(out, static_cast<std::uint16_t>(frame.payload.size()));
  if (frame.generation != 0) out.push_back(frame.generation);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  if (key != nullptr) {
    const auto tag = crypto::siphash24_tag(out, *key);
    out.insert(out.end(), tag.begin(), tag.end());
  }
  return out;
}

std::optional<ShareFrame> decode_prefix(std::span<const std::uint8_t> buf,
                                        std::size_t* consumed,
                                        const crypto::SipHashKey* key,
                                        DecodeStatus* status) {
  MCSS_ENSURE(consumed != nullptr, "decode_prefix needs a consumed out-param");
  *consumed = 0;
  if (status != nullptr) *status = DecodeStatus::Ok;
  if (buf.size() < kHeaderSize) return fail(status, DecodeStatus::Malformed);
  if (get16(buf, 0) != kMagic) return fail(status, DecodeStatus::Malformed);
  if (buf[2] != kVersion) return fail(status, DecodeStatus::Malformed);

  ShareFrame frame;
  frame.k = buf[3];
  frame.packet_id = get64(buf, 4);
  frame.share_index = buf[12];
  if (frame.k == 0 || frame.share_index == 0) {
    return fail(status, DecodeStatus::Malformed);
  }
  const std::uint8_t flags = buf[13];
  if ((flags & ~(kFlagAuthenticated | kFlagGeneration)) != 0) {
    return fail(status, DecodeStatus::Malformed);  // unknown flag bits
  }
  const bool authenticated = (flags & kFlagAuthenticated) != 0;
  // Extension byte between header and payload (retransmissions only).
  const std::size_t ext = (flags & kFlagGeneration) != 0 ? 1 : 0;

  const std::size_t len = get16(buf, 14);
  const std::size_t body = kHeaderSize + ext + len;
  const std::size_t expected = body + (authenticated ? kTagSize : 0);
  if (buf.size() < expected) return fail(status, DecodeStatus::Malformed);
  if (ext != 0) {
    frame.generation = buf[kHeaderSize];
    // Generation 0 with the flag set would make one frame encodable two
    // ways; the canonical encoding omits the byte, so reject the other.
    if (frame.generation == 0) return fail(status, DecodeStatus::Malformed);
  }

  if (key != nullptr) {
    // A keyed receiver refuses unauthenticated frames outright.
    if (!authenticated) return fail(status, DecodeStatus::AuthFailed);
    const auto computed = crypto::siphash24_tag(buf.first(body), *key);
    if (!crypto::tag_equal(computed, buf.subspan(body, kTagSize))) {
      return fail(status, DecodeStatus::AuthFailed);
    }
  } else if (authenticated) {
    // Tag present but no key to check it: parse the frame, ignore the tag.
    // (Useful for passive observation tooling; the keyed path is what the
    // protocol itself uses.)
  }

  frame.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + ext),
                       buf.begin() + static_cast<std::ptrdiff_t>(body));
  *consumed = expected;
  return frame;
}

std::optional<ShareFrame> decode(std::span<const std::uint8_t> buf,
                                 const crypto::SipHashKey* key,
                                 DecodeStatus* status) {
  std::size_t consumed = 0;
  auto frame = decode_prefix(buf, &consumed, key, status);
  if (frame && consumed != buf.size()) {
    // Strict mode: trailing bytes after the one frame are a malformation.
    return fail(status, DecodeStatus::Malformed);
  }
  return frame;
}

}  // namespace mcss::proto
