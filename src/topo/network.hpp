// Routed delivery over a Topology, on either DES backend.
//
// Network instantiates one SimLink per topology link and one
// RoutedChannel per path, then routes: when a frame leaves link
// l's serializer it propagates for l's delay and either enters the
// next link of its channel's path or, at the sink, fires the
// channel's receiver. RoutedChannel implements net::ChannelPort, so
// proto::Sender / proto::Receiver / feedback::ReliableLink drive a
// routed topology exactly as they drive flat SimChannels.
//
// Backends:
//
//   Network(Simulator&, ...)             every link schedules on one
//                                        sequential simulator.
//   Network(PartitionedSimulator&, node_lp, ...)
//     router per LP: node_lp[n] names the LP that owns node n; a link
//     lives on its SOURCE node's LP (its queue and serializer run
//     there). Propagation crosses LPs via LogicalProcess::send, so
//     every link whose endpoints map to different LPs must have
//     delay >= the engine's lookahead — link delay IS the lookahead,
//     which is what keeps MCSS_THREADS=N bitwise identical to =1
//     (validated at construction). Per-link loss RNGs fork from the
//     root in link-id order, so streams are thread-count independent.
//
// Endpoint placement contract: the Sender (and anything calling
// try_send on a RoutedChannel) must run on the source node's LP; the
// Receiver runs on the sink node's LP.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/channel_port.hpp"
#include "net/parallel_sim/partitioned_sim.hpp"
#include "net/sim_time.hpp"
#include "net/simulator.hpp"
#include "topo/sim_link.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace mcss::obs {
class Registry;
}

namespace mcss::topo {

class Network;

/// One logical channel = one path through the Network. The ChannelPort
/// surface reflects the INGRESS link (the hop the sender contends on):
/// ready/backlog/writability are the first link's; downstream queueing
/// is invisible at the ingress, as on a real multihop path.
class RoutedChannel final : public net::ChannelPort {
 public:
  RoutedChannel(const RoutedChannel&) = delete;
  RoutedChannel& operator=(const RoutedChannel&) = delete;

  bool try_send(std::vector<std::uint8_t> frame) override;
  [[nodiscard]] bool ready() const noexcept override;
  [[nodiscard]] net::SimTime backlog_time() const noexcept override;
  void set_receiver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void set_writable_callback(WritableFn fn) override {
    writable_ = std::move(fn);
  }

  [[nodiscard]] int id() const noexcept { return id_; }
  /// End-to-end propagation delay of the path (sum of link delays).
  [[nodiscard]] net::SimTime path_delay() const noexcept {
    return path_delay_;
  }

 private:
  friend class Network;
  RoutedChannel(int id, SimLink* ingress, net::SimTime path_delay)
      : id_(id), ingress_(ingress), path_delay_(path_delay) {}

  int id_ = 0;
  SimLink* ingress_ = nullptr;
  net::SimTime path_delay_ = 0;
  DeliverFn deliver_;
  WritableFn writable_;
};

struct NetworkStats {
  std::uint64_t frames_forwarded = 0;  ///< mid-path next-hop handoffs
  std::uint64_t frames_dropped_midpath = 0;  ///< next hop's queue refused
  std::uint64_t frames_delivered_end = 0;    ///< reached the sink
};

class Network {
 public:
  /// Sequential backend: all links on `sim`. `rng` seeds the per-link
  /// loss streams (forked in link-id order).
  Network(net::Simulator& sim, Topology topo, Rng rng);

  /// Partitioned backend: node_lp[n] is the LP owning node n (size
  /// num_nodes, values < psim.num_lps()). Cross-LP links must have
  /// delay >= psim.lookahead().
  Network(net::psim::PartitionedSimulator& psim,
          std::vector<std::uint32_t> node_lp, Topology topo, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] RoutedChannel& channel(int i);
  [[nodiscard]] SimLink& link(int id);
  [[nodiscard]] int num_channels() const noexcept {
    return static_cast<int>(channels_.size());
  }

  /// The channels as ports, for Sender/ReliableLink construction.
  [[nodiscard]] std::vector<net::ChannelPort*> channel_ports();

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// Aggregate every link's counters plus network totals and topology
  /// gauges into the registry under mcss_topo_* names.
  void publish_metrics(obs::Registry& registry) const;

 private:
  void build(Rng rng);
  [[nodiscard]] net::Simulator& sim_for_node(int node);
  void on_depart(int link_id, int channel, std::vector<std::uint8_t> frame);
  void arrive(int next_link, int channel, std::vector<std::uint8_t> frame);

  Topology topo_;
  net::Simulator* single_sim_ = nullptr;         // sequential backend
  net::psim::PartitionedSimulator* psim_ = nullptr;  // partitioned backend
  std::vector<std::uint32_t> node_lp_;
  std::vector<std::unique_ptr<SimLink>> links_;
  std::vector<std::unique_ptr<RoutedChannel>> channels_;
  /// next_[l][c]: link after l on channel c's path; kDeliver at the
  /// sink, kOffPath when c never crosses l.
  static constexpr int kDeliver = -1;
  static constexpr int kOffPath = -2;
  std::vector<std::vector<int>> next_;
  NetworkStats stats_;
};

}  // namespace mcss::topo
