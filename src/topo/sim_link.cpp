#include "topo/sim_link.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "util/ensure.hpp"

namespace mcss::topo {

void publish(obs::Registry& registry, const LinkStats& stats) {
  const auto add = [&](std::string_view name, std::uint64_t value) {
    registry.add(registry.counter(name), value);
  };
  add("mcss_topo_link_frames_offered", stats.frames_offered);
  add("mcss_topo_link_frames_queued", stats.frames_queued);
  add("mcss_topo_link_frames_dropped_queue", stats.frames_dropped_queue);
  add("mcss_topo_link_frames_dropped_loss", stats.frames_dropped_loss);
  add("mcss_topo_link_frames_delivered", stats.frames_delivered);
  add("mcss_topo_link_bytes_delivered", stats.bytes_delivered);
  add("mcss_topo_link_bytes_queued_total", stats.bytes_queued_total);
}

SimLink::SimLink(net::Simulator& sim, LinkSpec spec, Rng rng, int id)
    : sim_(sim), spec_(spec), rng_(rng), id_(id) {
  MCSS_ENSURE(spec_.rate_bps > 0.0, "link rate must be positive");
  MCSS_ENSURE(spec_.loss >= 0.0 && spec_.loss < 1.0, "link loss in [0, 1)");
  MCSS_ENSURE(spec_.queue_capacity_bytes > 0, "queue capacity must be positive");
  watermark_ = std::max<std::size_t>(1, spec_.queue_capacity_bytes / 2);
}

net::SimTime SimLink::serialization_time(std::size_t bytes) const noexcept {
  const double seconds = static_cast<double>(bytes) * 8.0 / spec_.rate_bps;
  return net::from_seconds(seconds);
}

net::SimTime SimLink::backlog_time() const noexcept {
  net::SimTime t = std::max<net::SimTime>(0, serializer_free_at_ - sim_.now());
  t += serialization_time(queued_bytes_ - serializing_bytes_);
  return t;
}

bool SimLink::try_send(int channel, std::vector<std::uint8_t> frame) {
  ++stats_.frames_offered;
  MCSS_ENSURE(!frame.empty(), "cannot send an empty frame");
  if (queued_bytes_ + frame.size() > spec_.queue_capacity_bytes) {
    ++stats_.frames_dropped_queue;
    return false;
  }
  queued_bytes_ += frame.size();
  stats_.bytes_queued_total += frame.size();
  ++stats_.frames_queued;
  was_ready_ = ready();
  queue_.push_back({channel, std::move(frame)});
  if (!transmitting_) start_transmission();
  return true;
}

void SimLink::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const std::size_t bytes = queue_.front().bytes.size();
  serializing_bytes_ = bytes;
  const net::SimTime done = sim_.now() + serialization_time(bytes);
  serializer_free_at_ = done;
  sim_.schedule_at(done, [this] {
    QueuedFrame frame = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= frame.bytes.size();
    serializing_bytes_ = 0;

    // netem-equivalent loss: decided as the frame leaves the serializer.
    if (rng_.bernoulli(spec_.loss)) {
      ++stats_.frames_dropped_loss;
    } else {
      ++stats_.frames_delivered;
      stats_.bytes_delivered += frame.bytes.size();
      if (depart_) depart_(frame.channel, std::move(frame.bytes));
    }

    if (!was_ready_ && ready()) {
      was_ready_ = true;
      for (const auto& fn : writable_) fn();
    } else {
      was_ready_ = ready();
    }
    start_transmission();
  });
}

}  // namespace mcss::topo
